package eccparity

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// lintedDocs are the markdown files the docs-lint CI step keeps honest:
// every local link target must exist and every documented CLI flag must
// still be defined by a cmd/* binary.
var lintedDocs = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGES.md"}

var mdLinkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks verifies every non-external markdown link in the
// linted docs: relative targets must exist on disk, and #anchors (bare or
// trailing) must match a heading's GitHub-style slug in the target file.
func TestMarkdownLinks(t *testing.T) {
	for _, doc := range lintedDocs {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range mdLinkRE.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, anchor, _ := strings.Cut(target, "#")
			file := doc
			if path != "" {
				file = filepath.Join(filepath.Dir(doc), path)
				if _, err := os.Stat(file); err != nil {
					t.Errorf("%s: broken link %q: %v", doc, target, err)
					continue
				}
			}
			if anchor != "" && strings.HasSuffix(file, ".md") {
				if !hasAnchor(t, file, anchor) {
					t.Errorf("%s: link %q: no heading slugs to %q in %s", doc, target, anchor, file)
				}
			}
		}
	}
}

// hasAnchor reports whether any heading in the markdown file slugifies to
// anchor (GitHub rules, simplified: lowercase, punctuation dropped,
// spaces → hyphens).
func hasAnchor(t *testing.T, file, anchor string) bool {
	t.Helper()
	body, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if slugify(heading) == strings.ToLower(anchor) {
			return true
		}
	}
	return false
}

func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Binaries whose fenced-block invocations are flag-checked, and the Go
// toolchain flags that may legitimately appear in docs without being
// defined by any cmd/* binary.
var (
	binaryLineRE = regexp.MustCompile(`(^|[ /])(eccsim|eccsimd|faultmc|tracegen)( |$)`)
	flagTokenRE  = regexp.MustCompile(`(^|\s)(-[a-z][a-z0-9-]*)`)
	codeSpanRE   = regexp.MustCompile("`([^`]+)`")
	flagDefRE    = regexp.MustCompile(`(?:flag|fs)\.(?:String|Int64|Int|Bool|Float64|Duration)(?:Var)?\((?:&[^,]+,\s*)?"([a-z][a-z0-9-]*)"`)

	goToolFlags = map[string]bool{
		"-race": true, "-bench": true, "-benchmem": true, "-benchtime": true,
		"-run": true, "-v": true, "-count": true, "-cpu": true, "-top": true,
	}
)

// definedFlags collects every flag name registered by the cmd/* binaries
// (including the shared internal/cliflags set), prefixed with "-".
func definedFlags(t *testing.T) map[string]bool {
	t.Helper()
	defined := map[string]bool{}
	sources, err := filepath.Glob("cmd/*/*.go")
	if err != nil {
		t.Fatal(err)
	}
	sources = append(sources, "internal/cliflags/cliflags.go")
	for _, src := range sources {
		body, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range flagDefRE.FindAllStringSubmatch(string(body), -1) {
			defined["-"+m[1]] = true
		}
	}
	if len(defined) == 0 {
		t.Fatal("no flag definitions found under cmd/* — the extraction regex is broken")
	}
	return defined
}

// TestDocumentedFlagsExist greps the linted docs for CLI flags — inline
// code spans that lead with a dash, and fenced-block invocations of the
// repo's binaries — and fails if any mentioned flag is no longer defined
// by a cmd/* binary. This is the stale-flag check: renaming or deleting a
// flag without updating the docs breaks CI.
func TestDocumentedFlagsExist(t *testing.T) {
	defined := definedFlags(t)
	check := func(doc string, line int, token string) {
		if !goToolFlags[token] && !defined[token] {
			t.Errorf("%s:%d: documented flag %q is not defined by any cmd/* binary", doc, line, token)
		}
	}
	for _, doc := range lintedDocs {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		inFence := false
		for i, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				// Only lines invoking one of the repo's binaries are
				// flag-checked; go test/tool lines are out of scope.
				if binaryLineRE.MatchString(line) && !strings.Contains(line, "go test") {
					for _, m := range flagTokenRE.FindAllStringSubmatch(line, -1) {
						check(doc, i+1, m[2])
					}
				}
				continue
			}
			for _, span := range codeSpanRE.FindAllStringSubmatch(line, -1) {
				if !strings.HasPrefix(span[1], "-") {
					continue
				}
				for _, m := range flagTokenRE.FindAllStringSubmatch(span[1], -1) {
					check(doc, i+1, m[2])
				}
			}
		}
	}
}
