// Quickstart: the ECC Parity mechanism end to end on real bytes.
//
// Builds a four-channel memory system using LOT-ECC5 as the base ECC with
// the ECC Parity overlay, writes data, kills a DRAM device in one channel,
// and shows the overlay detecting the error, reconstructing the line's
// correction bits from the cross-channel ECC parity, and recovering the
// exact data — even though the correction bits were never stored.
package main

import (
	"bytes"
	"fmt"
	"log"

	"eccparity/internal/core"
	"eccparity/internal/ecc"
)

func main() {
	sys := core.NewSystem(core.Config{
		Base:             ecc.NewLOTECC5(), // chipkill-class, 5 chips per rank
		Channels:         4,
		BanksPerChannel:  4,
		RowsPerBank:      8,
		SlotsPerRow:      4,
		CounterThreshold: 4,
	})

	// Write a recognizable line into channel 1.
	addr := core.LineAddr{Channel: 1, Bank: 2, Row: 3, Slot: 0}
	data := bytes.Repeat([]byte("ECCParity!"), 7)[:sys.LineSize()]
	if err := sys.Write(addr, data); err != nil {
		log.Fatalf("write: %v", err)
	}
	// Fill neighbours so the parity group is populated.
	for ch := 0; ch < 4; ch++ {
		for slot := 0; slot < 4; slot++ {
			a := core.LineAddr{Channel: ch, Bank: 2, Row: 3, Slot: slot}
			if a == addr {
				continue
			}
			if err := sys.Write(a, bytes.Repeat([]byte{byte(16*ch + slot)}, sys.LineSize())); err != nil {
				log.Fatalf("write %+v: %v", a, err)
			}
		}
	}

	fmt.Println("1. Clean read:")
	got, err := sys.Read(addr)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("   %q... (errors detected so far: %d)\n", got[:20], sys.Stats.ErrorsDetected)

	fmt.Println("2. Killing device 0 of channel 1, bank 2, row 3 (stuck bits)...")
	sys.InjectFault(core.InjectedFault{Channel: 1, Bank: 2, Row: 3, Shard: 0, Mask: 0x5A})

	fmt.Println("3. Read through the fault:")
	got, err = sys.Read(addr)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("   %q...\n", got[:20])
	fmt.Printf("   recovered intact: %v\n", bytes.Equal(got, data))
	fmt.Printf("   errors detected: %d, corrected: %d\n", sys.Stats.ErrorsDetected, sys.Stats.ErrorsCorrected)
	fmt.Printf("   correction bits reconstructed from ECC parity: %d time(s)\n", sys.Stats.Reconstructions)
	fmt.Printf("   pages retired by the OS (faulty + parity-sharing peers): %d\n", sys.Stats.PagesRetired)

	fmt.Println("4. Capacity overhead of this protection (Table III):")
	r := ecc.R(ecc.NewLOTECC5())
	fmt.Printf("   LOT-ECC5 alone:            %.1f%%\n", 100*ecc.NewLOTECC5().Overheads().Total())
	fmt.Printf("   + ECC Parity, 4 channels:  %.1f%%\n", 100*core.StaticOverhead(r, 4))
	fmt.Printf("   + ECC Parity, 8 channels:  %.1f%%\n", 100*core.StaticOverhead(r, 8))
}
