// EPI study: a compact version of the paper's Figs. 10–17 on two
// contrasting workloads — one memory-intensive and random (mcf-like), one
// highly sequential (streamcluster-like) — comparing LOT-ECC5+ECC Parity
// against the commercial and research baselines on quad-equivalent systems.
package main

import (
	"fmt"

	"eccparity/internal/sim"
)

func main() {
	schemes := []string{"chipkill36", "chipkill18", "lotecc9", "multiecc", "lotecc5", "lotecc5+parity", "raim", "raim+parity"}
	workloads := []string{"mcf", "streamcluster"}

	fmt.Println("Quad-equivalent systems, 400K measured cycles, 8 cores")
	fmt.Printf("%-10s %-30s %9s %9s %9s %7s %10s\n",
		"workload", "scheme", "EPI(pJ)", "dyn(pJ)", "bg(pJ)", "IPC", "acc/kinstr")
	for _, wl := range workloads {
		for _, key := range schemes {
			r := sim.Run(sim.DefaultConfig(key, sim.QuadEq, wl))
			fmt.Printf("%-10s %-30s %9.0f %9.0f %9.0f %7.2f %10.1f\n",
				wl, sim.SchemeByKey(key).Display, r.EPI, r.DynamicEPI, r.BackgroundEPI,
				r.IPC, 1000*r.AccessesPerInstr)
		}
		fmt.Println()
	}

	// Headline numbers in the paper's format.
	fmt.Println("EPI reductions of LOT-ECC5 + ECC Parity (cf. Fig. 10):")
	ev := sim.NewEvaluation(sim.QuadEq,
		[]string{"chipkill36", "chipkill18", "lotecc9", "multiecc", "lotecc5", "lotecc5+parity"},
		workloads)
	cmp := ev.Fig10EPI()
	for _, row := range cmp.Rows {
		fmt.Printf("  %-14s", row.Workload)
		for _, b := range cmp.Baselines {
			fmt.Printf("  vs %s: %5.1f%%", b, row.Value[b])
		}
		fmt.Println()
	}
}
