// Scrub study: how the memory scrub interval trades reliability against
// overhead (the paper's §VI-C / Fig. 18 analysis). For each candidate
// detection window it reports the probability that faults accumulate in
// more than one channel inside a single window over a 7-year life — the
// event ECC parities cannot cover — and the resulting uncorrectable-error
// interval under the paper's pessimistic assumption, alongside the scrub
// traffic cost.
package main

import (
	"fmt"

	"eccparity/internal/faultmodel"
)

func main() {
	topo := faultmodel.PaperTopology(8)
	life := 7 * faultmodel.HoursPerYear

	// A 32GB-per-channel system scrubbed once per window: reading every
	// line costs capacity/bandwidth time.
	const memBytesPerChannel = 32e9
	const scrubBW = 1e9 // bytes/s budgeted for background scrubbing

	fmt.Println("Eight-channel system, 44 FIT/chip (field-measured average), 7-year life")
	fmt.Printf("%-12s %-22s %-26s %s\n", "window", "P(>1 channel faults)", "uncorrectable interval", "scrub duty cycle")
	for _, w := range []float64{1, 2, 4, 8, 24, 72, 168} {
		p := faultmodel.ProbMultiChannelInWindow(44, topo, w, life)
		// Pessimistic: every multi-channel window event is uncorrectable.
		var interval string
		if p > 0 {
			interval = fmt.Sprintf("once per %.0f years", 7/p)
		} else {
			interval = "never"
		}
		scrubSeconds := memBytesPerChannel / scrubBW
		duty := scrubSeconds / (w * 3600)
		fmt.Printf("%9.0f h  %20.6f  %-26s %6.2f%%\n", w, p, interval, 100*duty)
	}
	fmt.Println("\nPaper reference: an 8h window at a pessimistic 100 FIT/chip gives 0.0002 —")
	fmt.Printf("our model: %.6f — one extra uncorrectable error per ~35,000 years,\n",
		faultmodel.ProbMultiChannelInWindow(100, topo, 8, life))
	fmt.Println("against a common target of one per 10 years per server.")
}
