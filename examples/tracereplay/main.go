// Trace replay: record a workload once, replay it through two different
// resilience schemes, and show that (a) replay is bit-identical to the
// live generator and (b) a shared trace makes scheme comparisons
// input-identical — the role the paper's SimPoint checkpoints play.
package main

import (
	"bytes"
	"fmt"
	"log"

	"eccparity/internal/sim"
	"eccparity/internal/workload"
)

func main() {
	cfg := sim.DefaultConfig("lotecc5+parity", sim.QuadEq, "milc")
	cfg.MeasureCycles = 200000
	cfg.WarmupAccesses = 25000

	fmt.Println("1. Recording milc (8 cores) to an in-memory trace...")
	traces := make([][]byte, cfg.Cores)
	perCore := cfg.WarmupAccesses + 50000
	for i := 0; i < cfg.Cores; i++ {
		var buf bytes.Buffer
		g := workload.NewGenerator(cfg.Workload, i, cfg.Seed)
		if err := workload.WriteTrace(&buf, g, perCore); err != nil {
			log.Fatal(err)
		}
		traces[i] = buf.Bytes()
	}
	fmt.Printf("   %d accesses/core, %.1f bytes/access encoded\n",
		perCore, float64(len(traces[0]))/float64(perCore))

	sources := func() []workload.Source {
		out := make([]workload.Source, cfg.Cores)
		for i := range out {
			tr, err := workload.ReadTrace(bytes.NewReader(traces[i]))
			if err != nil {
				log.Fatal(err)
			}
			out[i] = tr
		}
		return out
	}

	fmt.Println("2. Live generator vs trace replay (must be identical):")
	live := sim.Run(cfg)
	cfg.Sources = sources()
	replayed := sim.Run(cfg)
	fmt.Printf("   live:   EPI %.1f pJ, IPC %.3f\n", live.EPI, live.IPC)
	fmt.Printf("   replay: EPI %.1f pJ, IPC %.3f (identical: %v)\n",
		replayed.EPI, replayed.IPC, live.EPI == replayed.EPI && live.IPC == replayed.IPC)

	fmt.Println("3. Same trace through the 36-device commercial baseline:")
	base := sim.DefaultConfig("chipkill36", sim.QuadEq, "milc")
	base.MeasureCycles = cfg.MeasureCycles
	base.WarmupAccesses = cfg.WarmupAccesses
	base.Sources = sources()
	b := sim.Run(base)
	fmt.Printf("   chipkill36: EPI %.1f pJ | LOT-ECC5+Parity: EPI %.1f pJ → %.1f%% reduction\n",
		b.EPI, replayed.EPI, 100*(b.EPI-replayed.EPI)/b.EPI)
}
