// Fault-injection lifetime study: seven simulated years of device faults
// (sampled from the Sridharan-style DDR3 fault mix) applied to a functional
// ECC-Parity system, with periodic scrubbing driving the paper's §III-C
// machinery: page retirement for small faults, bank-pair marking and
// correction-bit materialization for device-level faults, and the resulting
// end-of-life capacity overhead (Table III's EOL column, Fig. 8's fraction).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"eccparity/internal/core"
	"eccparity/internal/ecc"
	"eccparity/internal/faultmodel"
)

func main() {
	const channels = 4
	sys := core.NewSystem(core.Config{
		Base:             ecc.NewLOTECC5(),
		Channels:         channels,
		BanksPerChannel:  8,
		RowsPerBank:      6,
		SlotsPerRow:      3,
		CounterThreshold: 4,
	})

	// Fill memory with data.
	rng := rand.New(rand.NewSource(42))
	for ch := 0; ch < channels; ch++ {
		for b := 0; b < 8; b++ {
			for row := 0; row < 6; row++ {
				for slot := 0; slot < 3; slot++ {
					d := make([]byte, sys.LineSize())
					rng.Read(d)
					if err := sys.Write(core.LineAddr{Channel: ch, Bank: b, Row: row, Slot: slot}, d); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}

	// Sample a 7-year fault sequence. The topology is scaled down to the
	// functional system's size; rates are inflated so a short demo shows
	// several faults.
	topo := faultmodel.Topology{Channels: channels, RanksPerChannel: 1, ChipsPerRank: 5, BanksPerRank: 8}
	// Inflate the per-chip FIT so the scaled-down demo system sees a
	// handful of faults in its 7 years (≈6 expected over 20 devices).
	rates := faultmodel.DefaultRates().Scaled(5000)
	model := faultmodel.NewModel(topo, rates)
	faults := model.SampleLifetime(rand.New(rand.NewSource(7)), 7*faultmodel.HoursPerYear)
	fmt.Printf("Sampled %d device faults over 7 years (inflated rates for the demo)\n\n", len(faults))

	scrubEvery := 30.0 * 24 // hours
	next := scrubEvery
	for _, f := range faults {
		// Run scheduled scrubs before this fault lands.
		for next < f.Time {
			sys.Scrub()
			next += scrubEvery
		}
		// Translate the sampled fault into a persistent injected fault.
		inj := core.InjectedFault{
			Channel: f.Channel,
			Bank:    f.Bank,
			Row:     -1,
			Shard:   f.Chip % 4,
			Mask:    byte(1 + rng.Intn(255)),
		}
		if !f.Type.IsLarge() {
			inj.Row = rng.Intn(6) // small faults confined to one row
		}
		sys.InjectFault(inj)
		fmt.Printf("t=%7.0fh  %-10s fault in channel %d bank %d\n", f.Time, f.Type, f.Channel, f.Bank)
	}
	found, unc := sys.Scrub()
	fmt.Printf("\nFinal scrub: %d erroneous lines, %d uncorrectable\n", found, unc)

	st := sys.Stats
	fmt.Printf("\nLifetime summary:\n")
	fmt.Printf("  errors detected:        %d\n", st.ErrorsDetected)
	fmt.Printf("  errors corrected:       %d\n", st.ErrorsCorrected)
	fmt.Printf("  parity reconstructions: %d\n", st.Reconstructions)
	fmt.Printf("  stored-bit corrections: %d\n", st.StoredBitsUses)
	fmt.Printf("  pages retired:          %d\n", st.PagesRetired)
	fmt.Printf("  bank pairs marked:      %d\n", st.PairsMarked)
	fmt.Printf("  uncorrectable events:   %d\n", st.Uncorrectable)

	frac := sys.Health().MarkedFraction()
	r := ecc.R(ecc.NewLOTECC5())
	fmt.Printf("\nEnd of life: %.1f%% of memory protected by materialized correction bits\n", 100*frac)
	fmt.Printf("Capacity overhead: %.2f%% static → %.2f%% EOL\n",
		100*core.StaticOverhead(r, channels), 100*core.EOLOverhead(r, channels, frac))
}
