package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Reconnect/retry backoff bounds: the first retry waits about
// reconnectBase, each subsequent one doubles, capped at reconnectCap, and
// every delay is jittered so a fleet of clients watching the same server
// does not reconnect in lockstep after a restart.
const (
	reconnectBase = 100 * time.Millisecond
	reconnectCap  = 5 * time.Second
)

// jittered scales d by a uniform factor in [0.5, 1.0). Durations too short
// to halve (d < 2ns, including 0) are returned as-is: rand.Int63n panics on
// a non-positive bound, and there is nothing useful to jitter at that scale.
func jittered(d time.Duration) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)))
}

// sleepCtx waits for d or until ctx is done, reporting whether the full
// wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// callbackError marks an error returned by a WatchSweep callback so the
// reconnect loop surfaces it verbatim instead of retrying it.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }
func (e *callbackError) Unwrap() error { return e.err }

// Client is a thin, dependency-free client for the eccsimd v1 API. The
// zero-ish value from NewClient is ready to use; methods are safe for
// concurrent use.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8087".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient when nil.
	HTTPClient *http.Client
}

// NewClient returns a Client for the daemon at baseURL (trailing slash
// tolerated).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Submit posts an experiment config. A cache hit returns Cached=true with
// no job; otherwise poll (or Wait on) the returned JobID.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/experiments", req, &out)
	return out, err
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// Cancel asks the server to cancel a job. A queued job becomes terminal
// immediately; a running job's engine is interrupted at its next context
// checkpoint (milliseconds). The returned status is the state at response
// time — poll or Wait to observe the terminal "canceled". Canceling an
// already-terminal job is a no-op returning its final state.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// Result fetches a content-addressed result document.
func (c *Client) Result(ctx context.Context, hash string) (Result, error) {
	var out Result
	err := c.do(ctx, http.MethodGet, "/v1/results/"+hash, nil, &out)
	return out, err
}

// ResultBytes fetches the raw result document — the byte-identical form
// the determinism contract is stated over.
func (c *Client) ResultBytes(ctx context.Context, hash string) ([]byte, error) {
	resp, err := c.send(ctx, http.MethodGet, "/v1/results/"+hash, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Experiments lists the registered experiment ids.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var out ExperimentList
	if err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out); err != nil {
		return nil, err
	}
	return out.Experiments, nil
}

// ListSchemes lists the resilience scheme registry: every key a
// scheme-aware submission (SubmitRequest.Scheme) or sweep scheme axis
// accepts, with each scheme's constructor options.
func (c *Client) ListSchemes(ctx context.Context) ([]SchemeInfo, error) {
	var out SchemeList
	if err := c.do(ctx, http.MethodGet, "/v1/schemes", nil, &out); err != nil {
		return nil, err
	}
	return out.Schemes, nil
}

// Wait polls a job every poll interval (default 50ms when ≤ 0) until it
// reaches a terminal state or ctx is done. The terminal snapshot is
// returned even for failed/canceled jobs; only transport and ctx errors
// are errors.
func (c *Client) Wait(ctx context.Context, jobID string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		js, err := c.Job(ctx, jobID)
		if err != nil {
			return JobStatus{}, err
		}
		if Terminal(js.Status) {
			return js, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return js, ctx.Err()
		}
	}
}

// Run is the submit→wait→fetch convenience: it returns the Result document
// whether it was cached or freshly computed, and surfaces a failed or
// canceled job as an error.
func (c *Client) Run(ctx context.Context, req SubmitRequest, poll time.Duration) (Result, error) {
	sr, err := c.Submit(ctx, req)
	if err != nil {
		return Result{}, err
	}
	hash := sr.ResultHash
	if !sr.Cached {
		js, err := c.Wait(ctx, sr.JobID, poll)
		if err != nil {
			return Result{}, err
		}
		if js.Status != StatusDone {
			return Result{}, fmt.Errorf("api: job %s finished %s: %s", js.ID, js.Status, js.Error)
		}
		if js.ResultHash != "" {
			hash = js.ResultHash
		}
	}
	return c.Result(ctx, hash)
}

// SubmitSweep posts a base config plus axes; the server expands the
// cross-product and runs every point. When every point was already cached
// the returned status is terminal immediately; otherwise poll Sweep or
// block on WaitSweep.
func (c *Client) SubmitSweep(ctx context.Context, req SweepRequest) (SweepStatus, error) {
	var out SweepStatus
	err := c.do(ctx, http.MethodPost, "/v1/sweeps", req, &out)
	return out, err
}

// Sweep fetches a sweep's current status. A wait > 0 long-polls: the server
// holds the request until a point completes, the sweep turns terminal, or
// wait elapses — one round trip per progress step instead of poll-spinning.
func (c *Client) Sweep(ctx context.Context, id string, wait time.Duration) (SweepStatus, error) {
	path := "/v1/sweeps/" + id
	if wait > 0 {
		path += "?wait=" + wait.String()
	}
	var out SweepStatus
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// CancelSweep cancels every non-terminal point of a sweep: queued points
// end immediately, running engines stop at their next context checkpoint
// (milliseconds). Idempotent; the returned status is the state at response
// time, so briefly-still-running points may need one more Sweep call to
// observe "canceled".
func (c *Client) CancelSweep(ctx context.Context, id string) (SweepStatus, error) {
	var out SweepStatus
	err := c.do(ctx, http.MethodDelete, "/v1/sweeps/"+id, nil, &out)
	return out, err
}

// WatchSweep streams a sweep's per-point completions: it opens the chunked
// NDJSON event stream (GET /v1/sweeps/{id}?watch=), invokes fn for every
// "point" event as it arrives — the first finished points surface in
// milliseconds, long before the grid completes — and reconnects watch-sized
// windows until the sweep turns terminal or ctx is done. The terminal
// aggregate status is returned; a non-nil error from fn aborts the stream
// and is returned verbatim. wait ≤ 0 defaults to 10s windows.
//
// Transport failures and mid-stream cuts (a server restart, a dropped
// proxy) are retried with capped exponential backoff plus jitter rather
// than a tight reconnect loop; the delay resets after any successful
// window. API-level errors (*Error, e.g. an unknown sweep id) abort
// immediately.
func (c *Client) WatchSweep(ctx context.Context, id string, wait time.Duration, fn func(SweepPoint) error) (SweepStatus, error) {
	if wait <= 0 {
		wait = 10 * time.Second
	}
	// Every window replays the already-terminal points first (so a late
	// watcher sees the full picture); dedupe by index so fn observes each
	// point exactly once across reconnects.
	seen := map[int]bool{}
	delay := reconnectBase
	for {
		st, err := c.watchOnce(ctx, id, wait, seen, fn)
		switch {
		case err == nil:
			delay = reconnectBase
			if Terminal(st.Status) {
				return st, nil
			}
			if err := ctx.Err(); err != nil {
				return st, err
			}
		default:
			var cbErr *callbackError
			if errors.As(err, &cbErr) {
				return SweepStatus{}, cbErr.err
			}
			var apiErr *Error
			if errors.As(err, &apiErr) {
				return SweepStatus{}, err
			}
			if ctx.Err() != nil {
				return SweepStatus{}, ctx.Err()
			}
			if !sleepCtx(ctx, jittered(delay)) {
				return SweepStatus{}, ctx.Err()
			}
			if delay *= 2; delay > reconnectCap {
				delay = reconnectCap
			}
		}
	}
}

// watchOnce consumes one watch window and returns its closing aggregate
// status.
func (c *Client) watchOnce(ctx context.Context, id string, wait time.Duration, seen map[int]bool, fn func(SweepPoint) error) (SweepStatus, error) {
	resp, err := c.send(ctx, http.MethodGet, "/v1/sweeps/"+id+"?watch="+wait.String(), nil)
	if err != nil {
		return SweepStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return SweepStatus{}, decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	var last SweepStatus
	sawFinal := false
	for {
		var ev SweepEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return SweepStatus{}, fmt.Errorf("api: decode sweep event: %w", err)
		}
		switch {
		case ev.Type == "point" && ev.Point != nil:
			if !seen[ev.Point.Index] {
				seen[ev.Point.Index] = true
				if fn != nil {
					if err := fn(*ev.Point); err != nil {
						return SweepStatus{}, &callbackError{err}
					}
				}
			}
		case ev.Type == "sweep" && ev.Sweep != nil:
			last, sawFinal = *ev.Sweep, true
		}
	}
	if !sawFinal {
		return SweepStatus{}, fmt.Errorf("api: sweep %s event stream ended without a final sweep event", id)
	}
	return last, nil
}

// WaitSweep long-polls a sweep until it reaches a terminal aggregate state
// or ctx is done. Each round waits up to wait on the server side (default
// 10s when ≤ 0). The terminal status is returned even when points failed or
// were canceled; only transport and ctx errors are errors.
func (c *Client) WaitSweep(ctx context.Context, id string, wait time.Duration) (SweepStatus, error) {
	if wait <= 0 {
		wait = 10 * time.Second
	}
	for {
		st, err := c.Sweep(ctx, id, wait)
		if err != nil {
			return SweepStatus{}, err
		}
		if Terminal(st.Status) {
			return st, nil
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
	}
}

// RunSweep is the batched submit→wait→fetch convenience: it submits the
// sweep, long-polls it to completion, and returns the terminal status plus
// one Result per point, index-aligned with Points. A sweep that ends with
// failed or canceled points returns the status and an error (with nil
// results) so a partial grid is never mistaken for the full figure.
func (c *Client) RunSweep(ctx context.Context, req SweepRequest, wait time.Duration) (SweepStatus, []Result, error) {
	st, err := c.SubmitSweep(ctx, req)
	if err != nil {
		return SweepStatus{}, nil, err
	}
	if !Terminal(st.Status) {
		if st, err = c.WaitSweep(ctx, st.ID, wait); err != nil {
			return st, nil, err
		}
	}
	if st.Status != StatusDone {
		return st, nil, fmt.Errorf("api: sweep %s finished %s (%d/%d points done)",
			st.ID, st.Status, st.Progress.Done, st.Progress.Total)
	}
	results := make([]Result, len(st.Points))
	for i, pt := range st.Points {
		res, err := c.Result(ctx, pt.ResultHash)
		if err != nil {
			return st, nil, fmt.Errorf("api: sweep %s point %d: %w", st.ID, i, err)
		}
		results[i] = res
	}
	return st, results, nil
}

// do sends one request and decodes the 2xx body into out (skipped when out
// is nil); non-2xx responses decode the error envelope into *Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	resp, err := c.send(ctx, method, path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decode %s %s response: %w", method, path, err)
	}
	return nil
}

func (c *Client) send(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("api: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil && method == http.MethodGet {
		if retry, ok := c.redirectRetry(ctx, path, err); ok {
			return retry, nil
		}
	}
	return resp, err
}

// redirectRetry handles a failed cross-node redirect hop: a clustered
// server may answer a read with 307 to the owning replica, and that
// replica can die between issuing the redirect and the client following
// it. When the transport error's URL points at a different host than
// BaseURL, the origin is retried once with no_redirect=1 — it then
// proxies or answers definitively itself.
func (c *Client) redirectRetry(ctx context.Context, path string, err error) (*http.Response, bool) {
	var ue *url.Error
	if !errors.As(err, &ue) || strings.HasPrefix(ue.URL, c.BaseURL+"/") || ue.URL == c.BaseURL {
		return nil, false
	}
	if !sleepCtx(ctx, jittered(reconnectBase)) {
		return nil, false
	}
	sep := "?"
	if strings.Contains(path, "?") {
		sep = "&"
	}
	req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path+sep+"no_redirect=1", nil)
	if rerr != nil {
		return nil, false
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, rerr := hc.Do(req)
	if rerr != nil {
		return nil, false
	}
	return resp, true
}

// decodeError turns a non-2xx response into an *Error, falling back to the
// raw body when the envelope doesn't parse (e.g. a proxy's HTML).
func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env ErrorEnvelope
	if err := json.Unmarshal(b, &env); err == nil && env.Error.Code != "" {
		return &Error{StatusCode: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
	}
	return &Error{StatusCode: resp.StatusCode, Code: CodeInternal,
		Message: fmt.Sprintf("unexpected response: %s", strings.TrimSpace(string(b)))}
}
