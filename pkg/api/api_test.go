package api

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestJobStatusJSONShape pins the wire shape of job timestamps: a job that
// has not started or finished omits those keys entirely — the zero-time
// serialization ("0001-01-01T00:00:00Z") this replaced must never reappear.
func TestJobStatusJSONShape(t *testing.T) {
	created := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	queued, err := json.Marshal(JobStatus{ID: "job-1", Status: StatusQueued, Created: created})
	if err != nil {
		t.Fatal(err)
	}
	s := string(queued)
	if strings.Contains(s, "0001-01-01") {
		t.Fatalf("queued job serializes a zero time: %s", s)
	}
	for _, absent := range []string{`"started"`, `"finished"`, `"error"`, `"result_hash"`} {
		if strings.Contains(s, absent) {
			t.Errorf("queued job JSON should omit %s: %s", absent, s)
		}
	}
	for _, present := range []string{`"id":"job-1"`, `"status":"queued"`, `"created":"2026-08-05T12:00:00Z"`} {
		if !strings.Contains(s, present) {
			t.Errorf("queued job JSON missing %s: %s", present, s)
		}
	}

	started := created.Add(time.Second)
	finished := created.Add(2 * time.Second)
	done, err := json.Marshal(JobStatus{
		ID: "job-1", Status: StatusDone, Created: created,
		Started: &started, Finished: &finished, ResultHash: "abc",
	})
	if err != nil {
		t.Fatal(err)
	}
	s = string(done)
	for _, present := range []string{`"started":"2026-08-05T12:00:01Z"`, `"finished":"2026-08-05T12:00:02Z"`} {
		if !strings.Contains(s, present) {
			t.Errorf("done job JSON missing %s: %s", present, s)
		}
	}

	// Round trip: the omitted fields come back as nil pointers, the set ones
	// as the same instants.
	var back JobStatus
	if err := json.Unmarshal(queued, &back); err != nil {
		t.Fatal(err)
	}
	if back.Started != nil || back.Finished != nil {
		t.Errorf("queued round trip: started=%v finished=%v, want nil", back.Started, back.Finished)
	}
	if err := json.Unmarshal(done, &back); err != nil {
		t.Fatal(err)
	}
	if back.Started == nil || !back.Started.Equal(started) || back.Finished == nil || !back.Finished.Equal(finished) {
		t.Errorf("done round trip: started=%v finished=%v", back.Started, back.Finished)
	}
}

// TestSweepRequestJSONShape pins the sweep request wire form: empty axes are
// omitted, set ones appear under their knob name.
func TestSweepRequestJSONShape(t *testing.T) {
	b, err := json.Marshal(SweepRequest{
		Base: SubmitRequest{Experiment: "fig8", Trials: 40},
		Axes: SweepAxes{Seed: []int64{1, 2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, present := range []string{`"base":{"experiment":"fig8","trials":40}`, `"seed":[1,2,3]`} {
		if !strings.Contains(s, present) {
			t.Errorf("sweep request JSON missing %s: %s", present, s)
		}
	}
	for _, absent := range []string{`"cycles"`, `"warmup"`, `"experiment":[`} {
		if strings.Contains(s, absent) {
			t.Errorf("sweep request JSON should omit unset axis %s: %s", absent, s)
		}
	}
}

func TestTerminal(t *testing.T) {
	for status, want := range map[string]bool{
		StatusQueued: false, StatusRunning: false,
		StatusDone: true, StatusFailed: true, StatusCanceled: true,
		"": false,
	} {
		if Terminal(status) != want {
			t.Errorf("Terminal(%q) = %v, want %v", status, !want, want)
		}
	}
}
