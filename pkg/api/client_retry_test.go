package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyTransport fails the first failures round trips with a transport
// error, then delegates to the real transport.
type flakyTransport struct {
	failures int32
	attempts int32
	base     http.RoundTripper
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	n := atomic.AddInt32(&f.attempts, 1)
	if n <= atomic.LoadInt32(&f.failures) {
		return nil, errors.New("connection refused (simulated)")
	}
	return f.base.RoundTrip(r)
}

func watchServer(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv
}

func writeEvent(t *testing.T, w http.ResponseWriter, ev SweepEvent) {
	t.Helper()
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(w, "%s\n", b)
}

func finalSweep(status string, pts ...SweepPoint) SweepEvent {
	st := SweepStatus{ID: "sw-1", Status: status, Points: pts,
		Progress: SweepProgress{Total: len(pts), Done: len(pts)}}
	return SweepEvent{Type: "sweep", Sweep: &st}
}

// WatchSweep must survive transport failures by reconnecting with backoff —
// not returning the first dial error — and still deliver every point
// exactly once.
func TestWatchSweepReconnectsAfterTransportErrors(t *testing.T) {
	pt := SweepPoint{Index: 0, Status: StatusDone, ResultHash: strings.Repeat("a", 64)}
	srv := watchServer(t, func(w http.ResponseWriter, r *http.Request) {
		writeEvent(t, w, SweepEvent{Type: "point", Point: &pt})
		writeEvent(t, w, finalSweep(StatusDone, pt))
	})
	ft := &flakyTransport{failures: 3, base: http.DefaultTransport}
	c := NewClient(srv.URL)
	c.HTTPClient = &http.Client{Transport: ft}

	start := time.Now()
	var calls int32
	st, err := c.WatchSweep(context.Background(), "sw-1", time.Second, func(SweepPoint) error {
		atomic.AddInt32(&calls, 1)
		return nil
	})
	if err != nil {
		t.Fatalf("WatchSweep: %v", err)
	}
	if st.Status != StatusDone || atomic.LoadInt32(&calls) != 1 {
		t.Fatalf("status=%s calls=%d, want done/1", st.Status, calls)
	}
	if got := atomic.LoadInt32(&ft.attempts); got != 4 {
		t.Fatalf("attempts = %d, want 4 (3 failures + 1 success)", got)
	}
	// Three jittered backoffs of ~100/200/400ms sleep at least half of each:
	// a tight reconnect loop would finish in microseconds.
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Fatalf("elapsed = %v: reconnects were not backed off", elapsed)
	}
}

// A mid-stream cut (window ends without the final sweep event — e.g. the
// server restarted) is retried, and points already delivered are not
// replayed to the callback.
func TestWatchSweepResumesAfterMidStreamCut(t *testing.T) {
	pt0 := SweepPoint{Index: 0, Status: StatusDone, ResultHash: strings.Repeat("a", 64)}
	pt1 := SweepPoint{Index: 1, Status: StatusDone, ResultHash: strings.Repeat("b", 64)}
	var windows int32
	srv := watchServer(t, func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&windows, 1) == 1 {
			// First window: one point, then the stream dies mid-flight.
			writeEvent(t, w, SweepEvent{Type: "point", Point: &pt0})
			return
		}
		// Reconnect replays the terminal point, then completes.
		writeEvent(t, w, SweepEvent{Type: "point", Point: &pt0})
		writeEvent(t, w, SweepEvent{Type: "point", Point: &pt1})
		writeEvent(t, w, finalSweep(StatusDone, pt0, pt1))
	})
	c := NewClient(srv.URL)
	var got []int
	st, err := c.WatchSweep(context.Background(), "sw-1", time.Second, func(p SweepPoint) error {
		got = append(got, p.Index)
		return nil
	})
	if err != nil {
		t.Fatalf("WatchSweep: %v", err)
	}
	if st.Status != StatusDone || atomic.LoadInt32(&windows) != 2 {
		t.Fatalf("status=%s windows=%d", st.Status, windows)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("callback indexes = %v, want [0 1] exactly once each", got)
	}
}

// API-level errors (unknown sweep id) must fail fast, not retry.
func TestWatchSweepAPIErrorAbortsImmediately(t *testing.T) {
	var hits int32
	srv := watchServer(t, func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":{"code":"not_found","message":"no such sweep"}}`)
	})
	c := NewClient(srv.URL)
	start := time.Now()
	_, err := c.WatchSweep(context.Background(), "nope", time.Second, nil)
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want *Error 404", err)
	}
	if atomic.LoadInt32(&hits) != 1 || time.Since(start) > 2*time.Second {
		t.Fatalf("hits=%d elapsed=%v: API error was retried", hits, time.Since(start))
	}
}

// A callback error aborts the stream and comes back verbatim — it must not
// be mistaken for a transport error and retried.
func TestWatchSweepCallbackErrorVerbatim(t *testing.T) {
	pt := SweepPoint{Index: 0, Status: StatusDone}
	var hits int32
	srv := watchServer(t, func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&hits, 1)
		writeEvent(t, w, SweepEvent{Type: "point", Point: &pt})
		writeEvent(t, w, finalSweep(StatusDone, pt))
	})
	c := NewClient(srv.URL)
	sentinel := errors.New("stop right there")
	_, err := c.WatchSweep(context.Background(), "sw-1", time.Second, func(SweepPoint) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel verbatim", err)
	}
	if atomic.LoadInt32(&hits) != 1 {
		t.Fatalf("hits = %d: callback error triggered a reconnect", hits)
	}
}

// Context cancellation during a backoff sleep returns promptly.
func TestWatchSweepCtxCancelDuringBackoff(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens here
	c.HTTPClient = &http.Client{Timeout: 100 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.WatchSweep(ctx, "sw-1", time.Second, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v; backoff sleep is not ctx-aware", elapsed)
	}
}

// A GET whose cross-node redirect hop dies is retried against the origin
// with no_redirect=1, so the origin can proxy or answer definitively.
func TestRedirectRetryFallsBackToOrigin(t *testing.T) {
	// An address that refuses connections: a listener we closed.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	res := Result{Hash: strings.Repeat("c", 64), Experiment: "fig8"}
	var direct, noRedirect int32
	origin := watchServer(t, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("no_redirect") == "1" {
			atomic.AddInt32(&noRedirect, 1)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(res)
			return
		}
		atomic.AddInt32(&direct, 1)
		http.Redirect(w, r, deadURL+r.URL.Path, http.StatusTemporaryRedirect)
	})
	c := NewClient(origin.URL)
	got, err := c.Result(context.Background(), res.Hash)
	if err != nil {
		t.Fatalf("Result after dead redirect hop: %v", err)
	}
	if got.Hash != res.Hash || got.Experiment != "fig8" {
		t.Fatalf("got %+v, want %+v", got, res)
	}
	if atomic.LoadInt32(&direct) != 1 || atomic.LoadInt32(&noRedirect) != 1 {
		t.Fatalf("direct=%d noRedirect=%d, want 1/1", direct, noRedirect)
	}
}

// A plain connection failure to the origin itself is NOT retried with
// no_redirect — the retry is reserved for failed redirect hops.
func TestNoRedirectRetryOnOriginFailure(t *testing.T) {
	c := NewClient("http://127.0.0.1:1")
	c.HTTPClient = &http.Client{Timeout: 100 * time.Millisecond}
	_, err := c.Result(context.Background(), strings.Repeat("d", 64))
	if err == nil {
		t.Fatal("expected a transport error")
	}
}
