package api

import (
	"testing"
	"time"
)

// jittered must never panic — rand.Int63n requires a positive bound, and
// backoff arithmetic can legitimately produce sub-2ns durations — and must
// stay inside [d/2, d) whenever d is large enough to jitter.
func TestJitteredEdgeDurations(t *testing.T) {
	cases := []struct {
		name string
		d    time.Duration
	}{
		{"zero", 0},
		{"one_ns", 1},              // d/2 == 0: the old Int63n(0) panic
		{"negative", -time.Second}, // defensive: a miscomputed backoff
		{"two_ns", 2},
		{"three_ns", 3},
		{"odd_ms", 99_999_999},
		{"base", 100 * time.Millisecond},
		{"cap", 5 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 100; i++ {
				got := jittered(tc.d)
				if tc.d < 2 {
					if got != tc.d {
						t.Fatalf("jittered(%v) = %v, want the input unchanged", tc.d, got)
					}
					continue
				}
				if got < tc.d/2 || got >= tc.d {
					t.Fatalf("jittered(%v) = %v, want in [%v, %v)", tc.d, got, tc.d/2, tc.d)
				}
			}
		})
	}
}
