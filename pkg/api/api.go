// Package api defines the versioned wire types of the eccsimd v1 HTTP API,
// shared by the server (internal/serve) and the Go client in this package,
// so the two cannot drift. The types mirror the JSON on the wire exactly;
// anything semantic — determinism, normalization, cache identity — is
// documented on the field it applies to.
//
// The v1 surface:
//
//	POST   /v1/experiments      SubmitRequest → SubmitResponse (202, or 200 on cache hit)
//	GET    /v1/experiments      ExperimentList
//	GET    /v1/schemes          SchemeList
//	GET    /v1/jobs/{id}        JobStatus
//	DELETE /v1/jobs/{id}        cancel a job → JobStatus
//	GET    /v1/results/{hash}   Result document (content-addressed)
//	POST   /v1/sweeps           SweepRequest → SweepStatus (202, or 200 when fully cached)
//	GET    /v1/sweeps/{id}      SweepStatus; ?wait=5s long-polls for progress;
//	                            ?watch=30s streams SweepEvent lines (NDJSON)
//	DELETE /v1/sweeps/{id}      cancel every non-terminal point → SweepStatus
//
// Errors are an envelope with a machine-readable code:
//
//	{"error": {"code": "queue_full", "message": "queue full, retry later"}}
package api

import (
	"encoding/json"
	"fmt"
	"time"
)

// Version is the API version prefix all v1 routes share.
const Version = "v1"

// Job lifecycle states, as reported by JobStatus.Status. A job moves
// queued → running → exactly one of done / failed / canceled. A deadline
// expiry reports failed (with a deadline message); an explicit cancel
// reports canceled.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Terminal reports whether status is a final job state.
func Terminal(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCanceled
}

// Priority classes carried by SubmitRequest.Priority. Dispatch between
// classes is weight-proportional (roughly 8:2:1 when all are backlogged),
// not strict, so no class can be starved. An empty priority means
// PriorityInteractive for single submissions and PrioritySweep for sweep
// points — the defaults keep pre-priority clients byte-compatible and keep
// big grids from starving interactive callers.
const (
	PriorityInteractive = "interactive"
	PrioritySweep       = "sweep"
	PriorityBatch       = "batch"
)

// ValidPriority reports whether p names a priority class ("" included,
// meaning "use the endpoint's default").
func ValidPriority(p string) bool {
	switch p {
	case "", PriorityInteractive, PrioritySweep, PriorityBatch:
		return true
	}
	return false
}

// SubmitRequest is the POST /v1/experiments body. Zero-valued knobs
// normalize to the full-fidelity defaults of cmd/eccsim (a zero seed means
// seed 1), so partial requests collapse to one canonical identity before
// hashing.
type SubmitRequest struct {
	// Experiment is a registered experiment id (GET /v1/experiments).
	Experiment string  `json:"experiment"`
	Cycles     float64 `json:"cycles,omitempty"`
	Warmup     int     `json:"warmup,omitempty"`
	Trials     int     `json:"trials,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	CSV        bool    `json:"csv,omitempty"`
	// Scheme selects the resilience scheme of scheme-aware experiments
	// (GET /v1/schemes lists them; empty means the experiment's default —
	// and IS the experiment's default, so the two spellings share one cache
	// identity). Scheme-blind experiments reject a non-empty Scheme.
	Scheme string `json:"scheme,omitempty"`
	// SchemeOptions is the scheme's constructor-options JSON object (the
	// schemes listing documents each scheme's options). The server
	// canonicalizes it before hashing, so formatting differences never
	// split the cache. Only valid alongside a scheme that declares options.
	SchemeOptions json.RawMessage `json:"scheme_options,omitempty"`
	// TimeoutSeconds bounds the job's execution time, counted from when a
	// worker starts it. The server's configured default acts as a ceiling:
	// the effective deadline is the smaller of the two. Zero inherits the
	// server default. Deliberately NOT part of the result's cache identity —
	// the same config computes the same bytes however long it was allowed
	// to take.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Priority selects the scheduling class (see the Priority* constants).
	// Empty means the endpoint default: interactive for single submissions,
	// sweep for sweep points. Like TimeoutSeconds, priority is NOT part of
	// the result's cache identity — the same config produces byte-identical
	// results whatever class computed them.
	Priority string `json:"priority,omitempty"`
	// Submitter is the fairness identity: the scheduler gives every
	// (submitter, group) pair its own FIFO lane, so two submitters'
	// backlogs interleave instead of queueing behind each other. Empty is
	// the shared anonymous lane. Also excluded from cache identity.
	Submitter string `json:"submitter,omitempty"`
}

// SubmitResponse answers POST /v1/experiments. On a cache hit (HTTP 200)
// Cached is true, Status is "done" and JobID is empty — the result is
// immediately fetchable at /v1/results/{ResultHash}. Otherwise (HTTP 202)
// poll /v1/jobs/{JobID}.
type SubmitResponse struct {
	JobID      string `json:"job_id,omitempty"`
	Status     string `json:"status"`
	ResultHash string `json:"result_hash"`
	Cached     bool   `json:"cached"`
}

// JobStatus answers GET (and DELETE) /v1/jobs/{id}. Started and Finished
// are pointers so a job that has not reached those transitions omits the
// fields instead of serializing the zero time ("0001-01-01T00:00:00Z", the
// shape bug this replaced); a nil pointer means "not yet".
type JobStatus struct {
	ID         string     `json:"id"`
	Status     string     `json:"status"`
	Error      string     `json:"error,omitempty"`
	ResultHash string     `json:"result_hash,omitempty"`
	Created    time.Time  `json:"created"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
}

// Params is the normalized experiment identity inside a Result. Workers is
// absent by design: results are worker-count invariant. Scheme and
// SchemeOptions appear only when a scheme-aware experiment selected a
// non-default configuration (SchemeOptions in canonical form); requests
// that predate the scheme layer keep their exact serialized identity.
type Params struct {
	Cycles        float64 `json:"cycles"`
	Warmup        int     `json:"warmup"`
	Trials        int     `json:"trials"`
	Seed          int64   `json:"seed"`
	CSV           bool    `json:"csv,omitempty"`
	Scheme        string  `json:"scheme,omitempty"`
	SchemeOptions string  `json:"scheme_options,omitempty"`
}

// Report is one experiment's rendered output: the exact text the eccsim /
// faultmc CLIs print plus the structured rows behind it. Data's shape is
// figure-specific; clients that care unmarshal it into their own types.
type Report struct {
	Experiment string          `json:"experiment"`
	Title      string          `json:"title"`
	Text       string          `json:"text"`
	Data       json.RawMessage `json:"data,omitempty"`
}

// Result is the content-addressed document served by /v1/results/{hash}:
// Hash is the SHA-256 of the normalized (experiment, params) config, and
// the same hash always maps to byte-identical document bytes.
type Result struct {
	Hash       string `json:"hash"`
	Experiment string `json:"experiment"`
	Params     Params `json:"params"`
	Report     Report `json:"report"`
}

// SweepRequest is the POST /v1/sweeps body: one base config plus the axes
// to sweep. The server expands base × axes into the cross-product of point
// configs, runs each point as its own content-addressed job, and reports
// the whole batch as one SweepStatus. Base.TimeoutSeconds applies to every
// point individually.
type SweepRequest struct {
	Base SubmitRequest `json:"base"`
	Axes SweepAxes     `json:"axes"`
}

// SweepAxes lists, per knob, the values to sweep. A non-empty axis replaces
// the base value with each listed entry; an empty axis keeps the base
// value. The sweep is the cross-product of all non-empty axes, expanded in
// declaration order (experiment outermost, seed innermost). Points are
// normalized before identity, so axes that collapse to duplicate configs
// are rejected rather than silently double-computed.
type SweepAxes struct {
	Experiment []string  `json:"experiment,omitempty"`
	Scheme     []string  `json:"scheme,omitempty"`
	Cycles     []float64 `json:"cycles,omitempty"`
	Warmup     []int     `json:"warmup,omitempty"`
	Trials     []int     `json:"trials,omitempty"`
	Seed       []int64   `json:"seed,omitempty"`
}

// SweepPoint is one expanded configuration's live state inside a
// SweepStatus. Cached means the point was served from the result cache at
// sweep submission and never became a job (JobID empty, Status done); every
// point's result — cached or computed — is fetchable at
// /v1/results/{ResultHash} once its Status is done.
type SweepPoint struct {
	Index      int    `json:"index"`
	Experiment string `json:"experiment"`
	Params     Params `json:"params"`
	JobID      string `json:"job_id,omitempty"`
	Status     string `json:"status"`
	Error      string `json:"error,omitempty"`
	ResultHash string `json:"result_hash"`
	Cached     bool   `json:"cached,omitempty"`
}

// SweepProgress aggregates a sweep's point counts. Cached counts the subset
// of Done that was served from cache at submission.
type SweepProgress struct {
	Total    int `json:"total"`
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	Cached   int `json:"cached"`
}

// SweepStatus answers POST /v1/sweeps and GET/DELETE /v1/sweeps/{id}. The
// aggregate Status is "running" until every point is terminal, then
// "canceled" if any point was canceled, "failed" if any point failed,
// otherwise "done".
type SweepStatus struct {
	ID       string        `json:"id"`
	Status   string        `json:"status"`
	Created  time.Time     `json:"created"`
	Progress SweepProgress `json:"progress"`
	Points   []SweepPoint  `json:"points"`
}

// SweepEvent is one line of the chunked event stream served by
// GET /v1/sweeps/{id}?watch=<duration>: newline-delimited JSON, one event
// per line, flushed as it happens so a client sees the first finished
// points milliseconds after they complete instead of after the whole grid.
//
// Event order: first one "point" event per already-terminal point (so a
// late watcher still sees the full picture), then a "point" event as each
// remaining point reaches a terminal state, then exactly one final "sweep"
// event carrying the aggregate status — emitted when the sweep turns
// terminal or the watch window elapses, whichever comes first.
type SweepEvent struct {
	// Type is "point" (Point is set) or "sweep" (Sweep is set; final line).
	Type string `json:"type"`
	// Point is the terminal point the event announces.
	Point *SweepPoint `json:"point,omitempty"`
	// Sweep is the aggregate status closing the stream.
	Sweep *SweepStatus `json:"sweep,omitempty"`
}

// ExperimentInfo is one registry entry in GET /v1/experiments. Scheme
// fields appear only on scheme-aware experiments.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// SchemeAware reports whether the experiment honours SubmitRequest.Scheme.
	SchemeAware bool `json:"scheme_aware,omitempty"`
	// DefaultScheme is what an empty Scheme resolves to.
	DefaultScheme string `json:"default_scheme,omitempty"`
}

// ExperimentList answers GET /v1/experiments.
type ExperimentList struct {
	Experiments []ExperimentInfo `json:"experiments"`
}

// SchemeOption documents one constructor option of a scheme.
type SchemeOption struct {
	Name        string `json:"name"`
	Type        string `json:"type"`
	Description string `json:"description"`
}

// SchemeInfo is one scheme registry entry in GET /v1/schemes.
type SchemeInfo struct {
	Key         string `json:"key"`
	Description string `json:"description"`
	// ChipKillCorrect reports whether the scheme corrects any single-chip
	// failure.
	ChipKillCorrect bool `json:"chip_kill_correct"`
	// Options lists the constructor options SubmitRequest.SchemeOptions may
	// set for this scheme (absent for fixed schemes).
	Options []SchemeOption `json:"options,omitempty"`
}

// SchemeList answers GET /v1/schemes, in key order.
type SchemeList struct {
	Schemes []SchemeInfo `json:"schemes"`
}

// Machine-readable error codes carried in the error envelope.
const (
	// CodeInvalidRequest: malformed body, unknown field, or out-of-range
	// knob (HTTP 400).
	CodeInvalidRequest = "invalid_request"
	// CodeUnknownExperiment: the experiment id is not registered (HTTP 400).
	CodeUnknownExperiment = "unknown_experiment"
	// CodeUnknownScheme: the scheme is not registered, its options are
	// invalid, or the experiment does not take a scheme (HTTP 400).
	CodeUnknownScheme = "unknown_scheme"
	// CodeBudgetTooLarge: cycles/warmup/trials exceed the guardrails, or a
	// sweep expands past the server's point cap (HTTP 400).
	CodeBudgetTooLarge = "budget_too_large"
	// CodeQueueFull: the bounded queue is saturated; retry after the
	// Retry-After header's delay (HTTP 429).
	CodeQueueFull = "queue_full"
	// CodeDraining: the server is shutting down and accepts no new work
	// (HTTP 503).
	CodeDraining = "draining"
	// CodeNotFound: no such job or result (HTTP 404).
	CodeNotFound = "not_found"
	// CodeInternal: unexpected server-side failure (HTTP 500).
	CodeInternal = "internal"
)

// ErrorDetail is the machine-readable error payload.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the JSON body of every non-2xx response.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// Error is the client-side form of an API error response.
type Error struct {
	StatusCode int    // HTTP status
	Code       string // one of the Code* constants
	Message    string
}

// Error renders the message, code and HTTP status in one line.
func (e *Error) Error() string {
	return fmt.Sprintf("api: %s (%s, http %d)", e.Message, e.Code, e.StatusCode)
}
