// Command eccsim regenerates the ECC Parity paper's evaluation tables and
// figures from the simulator. Each experiment is addressed by its paper id:
//
//	eccsim -exp fig1      # capacity overhead breakdown
//	eccsim -exp table2    # evaluated ECC configurations
//	eccsim -exp table3    # capacity overheads incl. end-of-life Monte Carlo
//	eccsim -exp fig9      # workload bandwidth characterization
//	eccsim -exp fig10     # memory EPI reduction, quad-equivalent systems
//	eccsim -exp fig11     # memory EPI reduction, dual-equivalent systems
//	eccsim -exp fig12     # dynamic EPI reduction (quad)
//	eccsim -exp fig13     # background EPI reduction (quad)
//	eccsim -exp fig14     # performance normalized (quad)
//	eccsim -exp fig15     # performance normalized (dual)
//	eccsim -exp fig16     # accesses per instruction normalized (quad)
//	eccsim -exp fig17     # accesses per instruction normalized (dual)
//	eccsim -exp table1    # core microarchitecture
//	eccsim -exp counters  # §III-E error-counter SRAM budget
//	eccsim -exp hpcstall  # §VI-B HPC stall estimate
//	eccsim -exp undetected# §VI-D undetectable error estimate
//	eccsim -exp all       # everything above
//
// Use -cycles and -warmup to trade fidelity for speed. -workers bounds the
// worker pool the simulation grid and Monte Carlo fan out over (default
// NumCPU) and -seed fixes the workload/Monte Carlo seed. Results depend
// only on the seed, never on the worker count: the same seed emits
// byte-identical stdout at any -workers value. Progress goes to stderr.
//
// The experiments themselves live in internal/sim/report; this command is
// one of its front ends (cmd/eccsimd serves the same registry over HTTP).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"eccparity/internal/cliflags"
	"eccparity/internal/sim/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1..fig18, table1..table3, counters, hpcstall, undetected, all)")
	cycles := flag.Float64("cycles", 400000, "measured cycles per simulation")
	warmup := flag.Int("warmup", 60000, "per-core LLC warmup accesses")
	trials := flag.Int("trials", 2000, "Monte Carlo trials for EOL studies")
	common := cliflags.Register(flag.CommandLine)
	flag.BoolVar(&csvOut, "csv", false, "emit comparison figures as CSV rows")
	flag.Parse()

	if err := cliflags.CheckTrials(*trials); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := common.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stopProf, err := common.StartProfiling()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Ctrl-C / SIGTERM cancels the context; the engine observes it at its
	// next checkpoint and the run stops within milliseconds, mid-experiment.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runErr := runExperiments(ctx, *exp, runParams{
		Cycles:   *cycles,
		Warmup:   *warmup,
		Trials:   *trials,
		Seed:     common.Seed,
		Workers:  common.Workers,
		Progress: os.Stderr,
	})
	stopProf()
	switch {
	case errors.Is(runErr, errUnknownExperiment):
		fmt.Fprintf(os.Stderr, "unknown experiment %q (fig2/fig8/fig18 live in cmd/faultmc)\n", *exp)
		os.Exit(2)
	case errors.Is(runErr, context.Canceled):
		fmt.Fprintln(os.Stderr, "eccsim: interrupted")
		os.Exit(130)
	case runErr != nil:
		fmt.Fprintf(os.Stderr, "eccsim: %v\n", runErr)
		os.Exit(1)
	}
}

// errUnknownExperiment marks an id outside the eccsim registry.
var errUnknownExperiment = errors.New("unknown experiment")

// csvOut switches the comparison figures to machine-readable CSV.
var csvOut bool

// runParams carries the CLI knobs into the experiment dispatcher; the golden
// regression test drives the same path at a reduced budget.
type runParams struct {
	Cycles   float64
	Warmup   int
	Trials   int
	Seed     int64
	Workers  int
	Progress io.Writer
}

// runExperiments dispatches one experiment id (or "all") through the
// internal/sim/report registry. Unknown ids return errUnknownExperiment;
// a canceled ctx returns its error with nothing further printed. Stdout
// depends only on the params, never on scheduling.
func runExperiments(ctx context.Context, exp string, p runParams) error {
	r := report.NewRunner(report.Params{
		Cycles: p.Cycles, Warmup: p.Warmup, Trials: p.Trials,
		Seed: p.Seed, Workers: p.Workers, CSV: csvOut,
	}, p.Progress)
	ids := report.EccsimIDs()
	if exp != "all" {
		if !known(exp) {
			return fmt.Errorf("%w: %q", errUnknownExperiment, exp)
		}
		ids = []string{exp}
	}
	for _, id := range ids {
		rep, err := r.RunContext(ctx, id)
		if err != nil {
			return err
		}
		os.Stdout.WriteString(rep.Text)
	}
	return nil
}

// known reports whether exp is an eccsim experiment (fig2/fig8/fig18 are
// registered but belong to cmd/faultmc, which this CLI still redirects to).
func known(exp string) bool {
	for _, id := range report.EccsimIDs() {
		if id == exp {
			return true
		}
	}
	return false
}
