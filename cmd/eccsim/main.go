// Command eccsim regenerates the ECC Parity paper's evaluation tables and
// figures from the simulator. Each experiment is addressed by its paper id:
//
//	eccsim -exp fig1      # capacity overhead breakdown
//	eccsim -exp table2    # evaluated ECC configurations
//	eccsim -exp table3    # capacity overheads incl. end-of-life Monte Carlo
//	eccsim -exp fig9      # workload bandwidth characterization
//	eccsim -exp fig10     # memory EPI reduction, quad-equivalent systems
//	eccsim -exp fig11     # memory EPI reduction, dual-equivalent systems
//	eccsim -exp fig12     # dynamic EPI reduction (quad)
//	eccsim -exp fig13     # background EPI reduction (quad)
//	eccsim -exp fig14     # performance normalized (quad)
//	eccsim -exp fig15     # performance normalized (dual)
//	eccsim -exp fig16     # accesses per instruction normalized (quad)
//	eccsim -exp fig17     # accesses per instruction normalized (dual)
//	eccsim -exp table1    # core microarchitecture
//	eccsim -exp counters  # §III-E error-counter SRAM budget
//	eccsim -exp hpcstall  # §VI-B HPC stall estimate
//	eccsim -exp undetected# §VI-D undetectable error estimate
//	eccsim -exp all       # everything above
//
// The daemon-first scheme-aware experiments (schemeeval, faultinject,
// harpprofile) run here too when named explicitly; -scheme and
// -scheme-options select their resilience scheme:
//
//	eccsim -exp faultinject -scheme ondie+raim18
//	eccsim -exp schemeeval -scheme ondie+chipkill -scheme-options '{"passthrough":true}'
//
// Use -cycles and -warmup to trade fidelity for speed. -workers bounds the
// worker pool the simulation grid and Monte Carlo fan out over (default
// NumCPU) and -seed fixes the workload/Monte Carlo seed. Results depend
// only on the seed, never on the worker count: the same seed emits
// byte-identical stdout at any -workers value. Progress goes to stderr.
//
// The experiments themselves live in internal/sim/report; this command is
// one of its front ends (cmd/eccsimd serves the same registry over HTTP).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"eccparity/internal/cliflags"
	"eccparity/internal/sim/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1..fig18, table1..table3, counters, hpcstall, undetected, all)")
	cycles := flag.Float64("cycles", 400000, "measured cycles per simulation")
	warmup := flag.Int("warmup", 60000, "per-core LLC warmup accesses")
	trials := flag.Int("trials", 2000, "Monte Carlo trials for EOL studies")
	scheme := flag.String("scheme", "", "resilience scheme for scheme-aware experiments (empty = experiment default; eccsimd's GET /v1/schemes lists keys)")
	schemeOptions := flag.String("scheme-options", "", `scheme constructor options JSON, e.g. '{"passthrough":true}'`)
	common := cliflags.Register(flag.CommandLine)
	flag.BoolVar(&csvOut, "csv", false, "emit comparison figures as CSV rows")
	flag.Parse()

	if err := cliflags.CheckTrials(*trials); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := common.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stopProf, err := common.StartProfiling()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Ctrl-C / SIGTERM cancels the context; the engine observes it at its
	// next checkpoint and the run stops within milliseconds, mid-experiment.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runErr := runExperiments(ctx, *exp, runParams{
		Cycles:        *cycles,
		Warmup:        *warmup,
		Trials:        *trials,
		Seed:          common.Seed,
		Workers:       common.Workers,
		Scheme:        *scheme,
		SchemeOptions: *schemeOptions,
		Progress:      os.Stderr,
	})
	stopProf()
	switch {
	case errors.Is(runErr, errUnknownExperiment):
		fmt.Fprintf(os.Stderr, "unknown experiment %q (fig2/fig8/fig18 live in cmd/faultmc)\n", *exp)
		os.Exit(2)
	case errors.Is(runErr, context.Canceled):
		fmt.Fprintln(os.Stderr, "eccsim: interrupted")
		os.Exit(130)
	case runErr != nil:
		fmt.Fprintf(os.Stderr, "eccsim: %v\n", runErr)
		os.Exit(1)
	}
}

// errUnknownExperiment marks an id outside the eccsim registry.
var errUnknownExperiment = errors.New("unknown experiment")

// csvOut switches the comparison figures to machine-readable CSV.
var csvOut bool

// runParams carries the CLI knobs into the experiment dispatcher; the golden
// regression test drives the same path at a reduced budget.
type runParams struct {
	Cycles        float64
	Warmup        int
	Trials        int
	Seed          int64
	Workers       int
	Scheme        string
	SchemeOptions string
	Progress      io.Writer
}

// runExperiments dispatches one experiment id (or "all") through the
// internal/sim/report registry. Unknown ids return errUnknownExperiment;
// a canceled ctx returns its error with nothing further printed. Stdout
// depends only on the params, never on scheduling.
func runExperiments(ctx context.Context, exp string, p runParams) error {
	params := report.Params{
		Cycles: p.Cycles, Warmup: p.Warmup, Trials: p.Trials,
		Seed: p.Seed, Workers: p.Workers, CSV: csvOut,
		Scheme: p.Scheme, SchemeOptions: p.SchemeOptions,
	}
	ids := report.EccsimIDs()
	if exp != "all" {
		if !known(exp) {
			return fmt.Errorf("%w: %q", errUnknownExperiment, exp)
		}
		ids = []string{exp}
	}
	// Scheme flags are validated and canonicalized through the same
	// normalization path the daemon hashes; experiments that take no scheme
	// run with the exact params they always have (the golden byte pin).
	if exp == "all" {
		if params.Scheme != "" || params.SchemeOptions != "" {
			return fmt.Errorf("-scheme/-scheme-options apply to a single scheme-aware experiment (%v), not -exp all", report.ServeIDs())
		}
	} else if params.Scheme != "" || params.SchemeOptions != "" || report.SchemeAware(exp) {
		norm, err := params.NormalizedFor(exp)
		if err != nil {
			return err
		}
		params = norm
	}
	r := report.NewRunner(params, p.Progress)
	for _, id := range ids {
		rep, err := r.RunContext(ctx, id)
		if err != nil {
			return err
		}
		os.Stdout.WriteString(rep.Text)
	}
	return nil
}

// known reports whether exp runs in this CLI: the historical `-exp all` set
// plus the daemon-first scheme-aware ids (fig2/fig8/fig18 are registered
// but belong to cmd/faultmc, which this CLI still redirects to).
func known(exp string) bool {
	for _, id := range report.EccsimIDs() {
		if id == exp {
			return true
		}
	}
	for _, id := range report.ServeIDs() {
		if id == exp {
			return true
		}
	}
	return false
}
