// Command eccsim regenerates the ECC Parity paper's evaluation tables and
// figures from the simulator. Each experiment is addressed by its paper id:
//
//	eccsim -exp fig1      # capacity overhead breakdown
//	eccsim -exp table2    # evaluated ECC configurations
//	eccsim -exp table3    # capacity overheads incl. end-of-life Monte Carlo
//	eccsim -exp fig9      # workload bandwidth characterization
//	eccsim -exp fig10     # memory EPI reduction, quad-equivalent systems
//	eccsim -exp fig11     # memory EPI reduction, dual-equivalent systems
//	eccsim -exp fig12     # dynamic EPI reduction (quad)
//	eccsim -exp fig13     # background EPI reduction (quad)
//	eccsim -exp fig14     # performance normalized (quad)
//	eccsim -exp fig15     # performance normalized (dual)
//	eccsim -exp fig16     # accesses per instruction normalized (quad)
//	eccsim -exp fig17     # accesses per instruction normalized (dual)
//	eccsim -exp table1    # core microarchitecture
//	eccsim -exp counters  # §III-E error-counter SRAM budget
//	eccsim -exp hpcstall  # §VI-B HPC stall estimate
//	eccsim -exp undetected# §VI-D undetectable error estimate
//	eccsim -exp all       # everything above
//
// Use -cycles and -warmup to trade fidelity for speed. -workers bounds the
// worker pool the simulation grid and Monte Carlo fan out over (default
// NumCPU) and -seed fixes the workload/Monte Carlo seed. Results depend
// only on the seed, never on the worker count: the same seed emits
// byte-identical stdout at any -workers value. Progress goes to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"eccparity/internal/cpu"
	"eccparity/internal/ecc"
	"eccparity/internal/faultmodel"
	"eccparity/internal/prof"
	"eccparity/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1..fig18, table1..table3, counters, hpcstall, undetected, all)")
	cycles := flag.Float64("cycles", 400000, "measured cycles per simulation")
	warmup := flag.Int("warmup", 60000, "per-core LLC warmup accesses")
	trials := flag.Int("trials", 2000, "Monte Carlo trials for EOL studies")
	seed := flag.Int64("seed", 1, "workload and Monte Carlo seed")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines for simulation grids and Monte Carlo (<=0: NumCPU)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.BoolVar(&csvOut, "csv", false, "emit comparison figures as CSV rows")
	flag.Parse()

	if *trials < 1 {
		fmt.Fprintf(os.Stderr, "-trials must be >= 1 (got %d)\n", *trials)
		os.Exit(2)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ok := runExperiments(*exp, runParams{
		Cycles:   *cycles,
		Warmup:   *warmup,
		Trials:   *trials,
		Seed:     *seed,
		Workers:  *workers,
		Progress: os.Stderr,
	})
	stopProf()
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (fig2/fig8/fig18 live in cmd/faultmc)\n", *exp)
		os.Exit(2)
	}
}

// runParams carries the CLI knobs into the experiment dispatcher; the golden
// regression test drives the same path at a reduced budget.
type runParams struct {
	Cycles   float64
	Warmup   int
	Trials   int
	Seed     int64
	Workers  int
	Progress io.Writer
}

// runExperiments dispatches one experiment id (or "all") and reports whether
// the id was known. Stdout depends only on the params, never on scheduling.
func runExperiments(exp string, p runParams) bool {
	opts := []sim.Option{
		sim.WithCycles(p.Cycles), sim.WithWarmup(p.Warmup),
		sim.WithSeed(p.Seed), sim.WithWorkers(p.Workers),
	}
	if p.Progress != nil {
		opts = append(opts, sim.WithProgress(p.Progress))
	}
	es := &evalSet{opts: opts, cache: map[sim.SystemClass]*sim.Evaluation{}}

	run := map[string]func(){
		"fig1":       fig1,
		"table1":     table1,
		"table2":     table2,
		"table3":     func() { table3(p.Trials, p.Seed, p.Workers) },
		"fig9":       func() { fig9(opts) },
		"fig10":      func() { figEPI(es, sim.QuadEq) },
		"fig11":      func() { figEPI(es, sim.DualEq) },
		"fig12":      func() { figDyn(es) },
		"fig13":      func() { figBg(es) },
		"fig14":      func() { figPerf(es, sim.QuadEq) },
		"fig15":      func() { figPerf(es, sim.DualEq) },
		"fig16":      func() { figAcc(es, sim.QuadEq) },
		"fig17":      func() { figAcc(es, sim.DualEq) },
		"counters":   counters,
		"hpcstall":   hpcStall,
		"undetected": undetected,
		"mixedrank":  mixedRank,
	}
	if exp == "all" {
		keys := make([]string, 0, len(run))
		for k := range run {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			run[k]()
		}
		return true
	}
	fn, ok := run[exp]
	if !ok {
		return false
	}
	fn()
	return true
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// evalSet shares one (scheme × workload) matrix per system class across
// figures when running -exp all; each runExperiments call gets its own.
type evalSet struct {
	opts  []sim.Option
	cache map[sim.SystemClass]*sim.Evaluation
}

func (es *evalSet) get(class sim.SystemClass) *sim.Evaluation {
	if ev, ok := es.cache[class]; ok {
		return ev
	}
	ev := sim.NewEvaluation(class, nil, nil, es.opts...)
	es.cache[class] = ev
	return ev
}

func fig1() {
	header("Fig. 1 — capacity overhead breakdown (detection vs correction bits)")
	for _, r := range sim.Fig1CapacityBreakdown() {
		fmt.Printf("%-38s detection %5.1f%%  correction %5.1f%%  total %5.1f%%\n",
			r.Scheme, 100*r.Detection, 100*r.Correction, 100*(r.Detection+r.Correction))
	}
}

func table1() {
	header("Table I — processor microarchitecture")
	p := cpu.DefaultParams()
	fmt.Printf("Issue width %d | bounded MLP %d | LLC hit %d cycles | 8 cores, 2GHz\n",
		p.IssueWidth, p.MaxOutstanding, p.LLCHitCycles)
	fmt.Println("L2 (LLC): 8MB, 16 ways, 64B/128B lines per scheme")
}

func table2() {
	header("Table II — evaluated ECC configurations")
	fmt.Printf("%-32s %-14s %5s %10s %9s %9s\n", "", "Rank", "Line", "Ranks/Chan", "Channels", "I/O pins")
	for _, key := range []string{"chipkill36", "chipkill18", "lotecc5", "lotecc9", "multiecc", "lotecc5+parity", "raim", "raim+parity"} {
		sc := sim.SchemeByKey(key)
		g := sc.Base.Geometry()
		fmt.Printf("%-32s %-14s %4dB %10d %5d,%3d %5d,%4d\n",
			sc.Display, g.RankConfig, g.LineSize, g.RanksPerChannel,
			g.ChannelsDualEq, g.ChannelsQuadEq, g.PinsDualEq, g.PinsQuadEq)
	}
}

func table3(trials int, seed int64, workers int) {
	header("Table III — capacity overheads (EOL = end of life)")
	for _, r := range sim.Table3Capacity(trials, seed, workers) {
		if r.EOL > 0 {
			fmt.Printf("%-40s %5.1f%%, EOL avg: %5.1f%%\n", r.Config, 100*r.Overhead, 100*r.EOL)
		} else {
			fmt.Printf("%-40s %5.1f%%\n", r.Config, 100*r.Overhead)
		}
	}
}

func fig9(opts []sim.Option) {
	header("Fig. 9 — workload bandwidth utilization (dual-channel commercial ECC)")
	rows := sim.Fig9Bandwidth(opts...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Utilization > rows[j].Utilization })
	for _, r := range rows {
		bin := "Bin1"
		if r.Bin2 {
			bin = "Bin2"
		}
		fmt.Printf("%-15s %s  %5.1f%% of peak  (%.1f GB/s)\n", r.Workload, bin, 100*r.Utilization, r.GBs)
	}
}

// csvOut switches the comparison figures to machine-readable CSV.
var csvOut bool

func printComparison(c sim.Comparison, unit string) {
	if csvOut {
		fmt.Printf("workload")
		for _, b := range c.Baselines {
			fmt.Printf(",vs_%s", b)
		}
		fmt.Println()
		for _, row := range c.Rows {
			fmt.Printf("%s", row.Workload)
			for _, b := range c.Baselines {
				fmt.Printf(",%.3f", row.Value[b])
			}
			fmt.Println()
		}
		for _, agg := range []struct {
			label string
			m     map[string]float64
		}{{"bin1_mean", c.Bin1Mean}, {"bin2_mean", c.Bin2Mean}, {"mean", c.Mean}} {
			fmt.Printf("%s", agg.label)
			for _, b := range c.Baselines {
				fmt.Printf(",%.3f", agg.m[b])
			}
			fmt.Println()
		}
		return
	}
	fmt.Printf("%-15s", "workload")
	for _, b := range c.Baselines {
		fmt.Printf(" %14s", "vs "+b)
	}
	fmt.Println()
	for _, row := range c.Rows {
		fmt.Printf("%-15s", row.Workload)
		for _, b := range c.Baselines {
			fmt.Printf(" %13.1f%s", row.Value[b], unit)
		}
		fmt.Println()
	}
	for _, label := range []string{"Bin1 mean", "Bin2 mean", "mean"} {
		fmt.Printf("%-15s", label)
		for _, b := range c.Baselines {
			var v float64
			switch label {
			case "Bin1 mean":
				v = c.Bin1Mean[b]
			case "Bin2 mean":
				v = c.Bin2Mean[b]
			default:
				v = c.Mean[b]
			}
			fmt.Printf(" %13.1f%s", v, unit)
		}
		fmt.Println()
	}
}

func figEPI(es *evalSet, class sim.SystemClass) {
	header(fmt.Sprintf("Fig. %s — memory EPI reduction, %s systems", figNo(class, "10", "11"), class))
	ev := es.get(class)
	fmt.Println("LOT-ECC5 + ECC Parity:")
	printComparison(ev.Fig10EPI(), "%")
	fmt.Println("RAIM + ECC Parity:")
	printComparison(ev.FigRAIMEPI(), "%")
}

func figDyn(es *evalSet) {
	header("Fig. 12 — dynamic EPI reduction, quad-equivalent systems")
	ev := es.get(sim.QuadEq)
	printComparison(ev.Fig12Dynamic(), "%")
	fmt.Println("RAIM + ECC Parity:")
	printComparison(ev.Fig12DynamicRAIM(), "%")
}

func figBg(es *evalSet) {
	header("Fig. 13 — background EPI reduction, quad-equivalent systems")
	ev := es.get(sim.QuadEq)
	printComparison(ev.Fig13Background(), "%")
}

func figPerf(es *evalSet, class sim.SystemClass) {
	header(fmt.Sprintf("Fig. %s — performance normalized to baselines, %s systems", figNo(class, "14", "15"), class))
	ev := es.get(class)
	printComparison(ev.Fig14Perf(), "x")
	fmt.Println("RAIM + ECC Parity:")
	printComparison(ev.Fig14PerfRAIM(), "x")
}

func figAcc(es *evalSet, class sim.SystemClass) {
	header(fmt.Sprintf("Fig. %s — memory accesses per instruction normalized (lower is better), %s systems", figNo(class, "16", "17"), class))
	ev := es.get(class)
	printComparison(ev.Fig16Accesses(), "x")
}

func figNo(class sim.SystemClass, quad, dual string) string {
	if class == sim.QuadEq {
		return quad
	}
	return dual
}

func counters() {
	header("§III-E — error-counter SRAM budget")
	fmt.Printf("512GB system, 1024 rank-level banks: %dB of on-chip counters (0.5B per pair)\n",
		faultmodel.CounterSRAMBytes(1024)*2)
	fmt.Printf("Max pages retired before a pair saturates (threshold 4, 8 channels): %d\n",
		faultmodel.MaxRetiredPages(4, 8))
}

func hpcStall() {
	header("§VI-B — HPC system stall estimate")
	cfg := faultmodel.DefaultHPCConfig()
	fmt.Printf("2PB system, 128GB/node, 1GB/s NIC: stalled %.2f%% of the time (paper: 0.35%%)\n",
		100*cfg.StallFraction())
}

func mixedRank() {
	header("§VI-A — mixed narrow/wide ranks (2 wide + 2 narrow per channel, 8 channels)")
	fmt.Println("hot%   dyn pJ/access   vs all-narrow   capacity vs all-narrow   ECC overhead (parity vs none)")
	hots := []float64{0, 0.5, 0.8, 0.9, 0.95, 1.0}
	for i, r := range sim.MixedRankSweep() {
		fmt.Printf("%4.0f%%  %13.0f   %12.2fx   %21.2fx   %.1f%% vs %.1f%%\n",
			100*hots[i], r.Blended, r.BlendedVsAllNarrow, r.RelativeCapacity,
			100*r.OverheadWithParity, 100*r.OverheadWithoutParity)
	}
}

func undetected() {
	header("§VI-D — undetectable error rate, modified LOT-ECC5 encoding")
	years := faultmodel.UndetectedErrorYears(faultmodel.PaperTopology(8), faultmodel.DefaultRates(), 4)
	fmt.Printf("One undetected error per %.0f years (paper: ~300,000; target: 1000)\n", years)
	_ = ecc.NewLOTECC5()
}
