package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"io"
	"os"
	"testing"
)

// goldenAllHash is the SHA-256 of `eccsim -exp all` stdout at the reduced
// budget below, captured from the pre-optimization engine (PR 1 state,
// commit 1dad368) at seed 1. The hot-path rework of the simulation engine
// must keep every byte of this output identical: the hash pins both the
// determinism guarantee and the numeric equivalence of the optimized
// engine, at any worker count.
const goldenAllHash = "0949639dce5f84f86933a2a77eb4e9f759e640ec4663adff796c42c0a33a68e8"

// goldenParams is the reduced budget: big enough that every experiment
// exercises its real code path (warmed cache, ECC/XOR steady state, Monte
// Carlo percentiles), small enough to run under -race in CI.
var goldenParams = runParams{
	Cycles:  8000,
	Warmup:  1000,
	Trials:  40,
	Seed:    1,
	Workers: 1,
}

// goldenRun executes the full experiment dispatcher with stdout captured
// and returns the SHA-256 of everything it printed.
func goldenRun(t *testing.T, workers int) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()

	h := sha256.New()
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(h, r)
		done <- err
	}()

	p := goldenParams
	p.Workers = workers
	runErr := runExperiments(context.Background(), "all", p)
	w.Close()
	os.Stdout = old
	if err := <-done; err != nil {
		t.Fatalf("draining stdout: %v", err)
	}
	if runErr != nil {
		t.Fatalf("runExperiments: %v", runErr)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenOutputSeed1 asserts that the full `-exp all` pipeline emits
// byte-identical stdout to the unoptimized engine at seed 1, both serially
// and with a fan-out pool — the end-to-end determinism + numeric
// equivalence regression for the hot-path optimization work.
func TestGoldenOutputSeed1(t *testing.T) {
	for _, workers := range []int{1, 4} {
		if got := goldenRun(t, workers); got != goldenAllHash {
			t.Errorf("workers=%d: stdout hash %s, want %s (engine output diverged from the golden baseline)",
				workers, got, goldenAllHash)
		}
	}
}

func TestRunExperimentsRejectsUnknownID(t *testing.T) {
	p := goldenParams
	p.Progress = io.Discard
	if err := runExperiments(context.Background(), "fig99", p); !errors.Is(err, errUnknownExperiment) {
		t.Fatalf("err = %v, want errUnknownExperiment", err)
	}
}

// TestRunExperimentsCanceledPrintsNothing: a pre-canceled context stops the
// dispatcher before any simulation output reaches stdout.
func TestRunExperimentsCanceledPrintsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := goldenParams
	p.Progress = io.Discard
	if err := runExperiments(ctx, "fig9", p); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
