package main

import (
	"context"
	"io"
	"os"
	"strings"
	"testing"
)

// captureRun executes runExperiments with stdout captured and returns what
// it printed.
func captureRun(t *testing.T, exp string, p runParams) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	var sb strings.Builder
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(&sb, r)
		done <- err
	}()
	runErr := runExperiments(context.Background(), exp, p)
	w.Close()
	os.Stdout = old
	if err := <-done; err != nil {
		t.Fatalf("draining stdout: %v", err)
	}
	return sb.String(), runErr
}

// TestSchemeFlagSelectsScheme: the daemon-first ids run from this CLI when
// named explicitly, and -scheme changes which scheme they evaluate.
func TestSchemeFlagSelectsScheme(t *testing.T) {
	p := goldenParams
	p.Trials = 8
	p.Progress = io.Discard

	p.Scheme = "ondie-sec"
	out, err := captureRun(t, "faultinject", p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "on-die SEC") || !strings.Contains(out, "chip-kill") {
		t.Errorf("faultinject -scheme ondie-sec output:\n%s", out)
	}

	p.Scheme = ""
	base, err := captureRun(t, "faultinject", p)
	if err != nil {
		t.Fatal(err)
	}
	if base == out {
		t.Error("default scheme and ondie-sec produced identical output")
	}
}

// TestSchemeFlagValidation: scheme flags on scheme-blind experiments and
// unknown schemes fail before any output, and -exp all rejects them.
func TestSchemeFlagValidation(t *testing.T) {
	p := goldenParams
	p.Trials = 8
	p.Progress = io.Discard

	p.Scheme = "chipkill36"
	if out, err := captureRun(t, "fig1", p); err == nil || out != "" {
		t.Errorf("scheme on a scheme-blind experiment: err=%v out=%q, want error with no output", err, out)
	}
	if out, err := captureRun(t, "all", p); err == nil || out != "" {
		t.Errorf("-exp all with a scheme: err=%v out=%q, want error with no output", err, out)
	}
	p.Scheme = "nope"
	if _, err := captureRun(t, "faultinject", p); err == nil {
		t.Error("unknown scheme must error")
	}
}
