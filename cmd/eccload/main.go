// Command eccload is the serving-latency load generator for eccsimd: it
// drives a daemon with the adversarial mix the fair scheduler exists for —
// one large low-priority sweep saturating the queue while a steady trickle
// of interactive submissions races it — and reports interactive latency
// percentiles (p50/p95/p99), request rate, and sweep throughput as
// machine-readable JSON.
//
// By default it self-hosts: each measured arm gets a fresh in-process
// daemon (no network noise, no cross-arm cache pollution) and both
// schedulers are measured back to back, fifo first:
//
//	eccload -sweep-points 1000 -probes 40 -out bench.json
//
// Point it at a running daemon instead with -addr (one arm, no restart):
//
//	eccload -addr http://localhost:8344 -scheduler fair
//
// Interactive probes use an analytic experiment with a unique seed per
// probe, so every probe is a real compute job (the content-addressed cache
// never short-circuits it). The sweep is watched over the streaming
// ?watch= endpoint, which doubles as a load test of chunked delivery: the
// report records how many point events arrived and the time to the first.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"eccparity/internal/serve"
	"eccparity/pkg/api"
)

type config struct {
	addr        string
	scheduler   string
	sweepPoints int
	sweepExp    string
	sweepTrials int
	cycles      float64
	warmup      int
	probes      int
	interval    time.Duration
	probeExp    string
	priority    string
	jobWorkers  int
	out         string
}

// armReport is one scheduler's measurement.
type armReport struct {
	Scheduler string `json:"scheduler"`

	// Interactive probe latencies, submit → terminal, milliseconds.
	Probes         int     `json:"probes"`
	ProbeErrors    int     `json:"probe_errors"`
	P50Ms          float64 `json:"interactive_p50_ms"`
	P95Ms          float64 `json:"interactive_p95_ms"`
	P99Ms          float64 `json:"interactive_p99_ms"`
	MaxMs          float64 `json:"interactive_max_ms"`
	InteractiveRPS float64 `json:"interactive_rps"`

	// Sweep side: total wall time and aggregate throughput.
	SweepPoints   int     `json:"sweep_points"`
	SweepWallMs   float64 `json:"sweep_wall_ms"`
	PointsPerS    float64 `json:"points_per_s"`
	StreamEvents  int     `json:"stream_events"`
	FirstStreamMs float64 `json:"first_stream_event_ms"`
}

type report struct {
	Date    string `json:"date"`
	Command string `json:"command"`
	Host    struct {
		GOOS         string `json:"goos"`
		GOARCH       string `json:"goarch"`
		VisibleCores int    `json:"visible_cores"`
	} `json:"host"`
	Benchmark string `json:"benchmark"`
	Load      struct {
		SweepPoints     int     `json:"sweep_points"`
		SweepExperiment string  `json:"sweep_experiment"`
		SweepTrials     int     `json:"sweep_trials"`
		Cycles          float64 `json:"cycles"`
		Warmup          int     `json:"warmup"`
		Probes          int     `json:"probes"`
		ProbeExperiment string  `json:"probe_experiment"`
		IntervalMs      float64 `json:"probe_interval_ms"`
		JobWorkers      int     `json:"job_workers"`
	} `json:"load"`
	Results []armReport `json:"results"`

	// Cross-arm summary, present when both schedulers were measured.
	P95SpeedupFIFOOverFair float64 `json:"interactive_p95_speedup,omitempty"`
	ThroughputRatio        float64 `json:"throughput_fair_over_fifo,omitempty"`
	Acceptance             *struct {
		Criterion string `json:"criterion"`
		Met       bool   `json:"met"`
	} `json:"acceptance,omitempty"`
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "measure a running daemon at this base URL (empty: self-host one per arm)")
	flag.StringVar(&cfg.scheduler, "scheduler", "both", "arm(s) to measure when self-hosting: fair, fifo, or both (with -addr, a label for the report)")
	flag.IntVar(&cfg.sweepPoints, "sweep-points", 1000, "points in the background sweep")
	flag.StringVar(&cfg.sweepExp, "sweep-experiment", "fig8", "experiment the sweep grids over")
	flag.IntVar(&cfg.sweepTrials, "sweep-trials", 5, "Monte Carlo trials per sweep point (keep small: the backlog, not the point cost, is under test)")
	flag.Float64Var(&cfg.cycles, "cycles", 20000, "simulated cycles per sweep point")
	flag.IntVar(&cfg.warmup, "warmup", 2000, "warmup cycles per sweep point")
	flag.IntVar(&cfg.probes, "probes", 40, "interactive submissions raced against the sweep")
	flag.DurationVar(&cfg.interval, "interval", 150*time.Millisecond, "gap between interactive submissions")
	flag.StringVar(&cfg.probeExp, "probe-experiment", "fig1", "experiment the interactive probes submit (analytic → cheap; unique seeds defeat the cache)")
	flag.StringVar(&cfg.priority, "priority", "interactive", "priority class the probes submit under (interactive, sweep, or batch)")
	flag.IntVar(&cfg.jobWorkers, "job-workers", 2, "job workers for self-hosted daemons")
	flag.StringVar(&cfg.out, "out", "", "write the JSON report here (empty: stdout)")
	flag.Parse()

	if cfg.sweepPoints < 1 || cfg.probes < 1 {
		log.Fatal("-sweep-points and -probes must be positive")
	}

	var arms []string
	switch {
	case cfg.addr != "":
		arms = []string{cfg.scheduler}
	case cfg.scheduler == "both":
		arms = []string{"fifo", "fair"}
	case cfg.scheduler == "fair" || cfg.scheduler == "fifo":
		arms = []string{cfg.scheduler}
	default:
		log.Fatalf("-scheduler must be fair, fifo, or both: got %q", cfg.scheduler)
	}

	rep := report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		Command:   fmt.Sprintf("eccload -sweep-points %d -probes %d -interval %v -scheduler %s", cfg.sweepPoints, cfg.probes, cfg.interval, cfg.scheduler),
		Benchmark: "ServingLatencyUnderSweep",
	}
	rep.Host.GOOS = runtime.GOOS
	rep.Host.GOARCH = runtime.GOARCH
	rep.Host.VisibleCores = runtime.NumCPU()
	rep.Load.SweepPoints = cfg.sweepPoints
	rep.Load.SweepExperiment = cfg.sweepExp
	rep.Load.SweepTrials = cfg.sweepTrials
	rep.Load.Cycles = cfg.cycles
	rep.Load.Warmup = cfg.warmup
	rep.Load.Probes = cfg.probes
	rep.Load.ProbeExperiment = cfg.probeExp
	rep.Load.IntervalMs = float64(cfg.interval) / float64(time.Millisecond)
	rep.Load.JobWorkers = cfg.jobWorkers

	ctx := context.Background()
	for _, arm := range arms {
		ar, err := runArm(ctx, cfg, arm)
		if err != nil {
			log.Fatalf("arm %s: %v", arm, err)
		}
		log.Printf("%s: interactive p50=%.0fms p95=%.0fms p99=%.0fms, sweep %.1f points/s",
			arm, ar.P50Ms, ar.P95Ms, ar.P99Ms, ar.PointsPerS)
		rep.Results = append(rep.Results, ar)
	}

	if len(rep.Results) == 2 {
		fifo, fair := rep.Results[0], rep.Results[1]
		if fair.P95Ms > 0 {
			rep.P95SpeedupFIFOOverFair = fifo.P95Ms / fair.P95Ms
		}
		if fifo.PointsPerS > 0 {
			rep.ThroughputRatio = fair.PointsPerS / fifo.PointsPerS
		}
		rep.Acceptance = &struct {
			Criterion string `json:"criterion"`
			Met       bool   `json:"met"`
		}{
			Criterion: "interactive p95 under a concurrent sweep >= 5x better than FIFO, sweep throughput within 5%",
			Met:       rep.P95SpeedupFIFOOverFair >= 5 && rep.ThroughputRatio >= 0.95,
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	out = append(out, '\n')
	if cfg.out == "" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(cfg.out, out, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("report written to %s", cfg.out)
}

// runArm measures one scheduler: start (or dial) a daemon, launch the big
// sweep, race interactive probes against it, wait for both, report.
func runArm(ctx context.Context, cfg config, arm string) (armReport, error) {
	ar := armReport{Scheduler: arm, SweepPoints: cfg.sweepPoints}

	base := cfg.addr
	if base == "" {
		s, err := serve.New(serve.Options{
			Workers:        1,
			JobWorkers:     cfg.jobWorkers,
			QueueCap:       cfg.sweepPoints + cfg.probes + 64,
			MaxSweepPoints: cfg.sweepPoints,
			FIFO:           arm == "fifo",
		})
		if err != nil {
			return ar, err
		}
		ts := httptest.NewServer(s.Handler())
		defer func() {
			ts.Close()
			drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Drain(drainCtx)
		}()
		base = ts.URL
	}
	c := api.NewClient(base)

	seeds := make([]int64, cfg.sweepPoints)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	sweepStart := time.Now()
	sw, err := c.SubmitSweep(ctx, api.SweepRequest{
		Base: api.SubmitRequest{
			Experiment: cfg.sweepExp,
			Cycles:     cfg.cycles,
			Warmup:     cfg.warmup,
			Trials:     cfg.sweepTrials,
			Submitter:  "eccload-sweep",
		},
		Axes: api.SweepAxes{Seed: seeds},
	})
	if err != nil {
		return ar, fmt.Errorf("submit sweep: %w", err)
	}

	// Watch the sweep over the streaming endpoint while probes race it.
	var (
		sweepDone = make(chan error, 1)
		streamMu  sync.Mutex
	)
	go func() {
		_, err := c.WatchSweep(ctx, sw.ID, 30*time.Second, func(p api.SweepPoint) error {
			streamMu.Lock()
			ar.StreamEvents++
			if ar.FirstStreamMs == 0 {
				ar.FirstStreamMs = float64(time.Since(sweepStart)) / float64(time.Millisecond)
			}
			streamMu.Unlock()
			return nil
		})
		sweepDone <- err
	}()

	// Interactive probes: one goroutine each, launched on a fixed cadence,
	// every probe a distinct seed so it is computed, never cache-served.
	lat := make([]float64, 0, cfg.probes)
	var (
		latMu  sync.Mutex
		wg     sync.WaitGroup
		errors int
	)
	probeStart := time.Now()
	for i := 0; i < cfg.probes; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			t0 := time.Now()
			_, err := c.Run(ctx, api.SubmitRequest{
				Experiment: cfg.probeExp,
				Seed:       seed,
				Priority:   cfg.priority,
				Submitter:  "eccload-probe",
			}, 25*time.Millisecond)
			latMu.Lock()
			defer latMu.Unlock()
			if err != nil {
				errors++
				return
			}
			lat = append(lat, float64(time.Since(t0))/float64(time.Millisecond))
		}(int64(1_000_000 + i))
		time.Sleep(cfg.interval)
	}
	wg.Wait()
	probeWall := time.Since(probeStart)

	if err := <-sweepDone; err != nil {
		return ar, fmt.Errorf("watch sweep: %w", err)
	}
	sweepWall := time.Since(sweepStart)

	ar.Probes = len(lat)
	ar.ProbeErrors = errors
	ar.P50Ms = percentile(lat, 50)
	ar.P95Ms = percentile(lat, 95)
	ar.P99Ms = percentile(lat, 99)
	if len(lat) > 0 {
		sort.Float64s(lat)
		ar.MaxMs = lat[len(lat)-1]
	}
	ar.InteractiveRPS = float64(len(lat)) / probeWall.Seconds()
	ar.SweepWallMs = float64(sweepWall) / float64(time.Millisecond)
	ar.PointsPerS = float64(cfg.sweepPoints) / sweepWall.Seconds()
	return ar, nil
}

// percentile returns the p-th percentile (nearest-rank) of xs in place.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	rank := int(float64(len(xs))*p/100+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(xs) {
		rank = len(xs) - 1
	}
	return xs[rank]
}
