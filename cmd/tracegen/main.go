// Command tracegen records workload access traces to disk and inspects
// them. Traces make simulations exactly repeatable and shareable — the
// moral equivalent of the paper's SimPoint checkpoints:
//
//	tracegen -workload mcf -out /tmp/mcf -n 200000    # one file per core
//	tracegen -inspect /tmp/mcf.core0.trace
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"eccparity/internal/workload"
)

func main() {
	name := flag.String("workload", "", "workload to record (see -list)")
	out := flag.String("out", "", "output path prefix; .coreN.trace is appended")
	n := flag.Int("n", 100000, "accesses per core")
	cores := flag.Int("cores", 8, "number of cores")
	seed := flag.Int64("seed", 1, "generator seed")
	inspect := flag.String("inspect", "", "print statistics of an existing trace")
	list := flag.Bool("list", false, "list workloads")
	flag.Parse()

	switch {
	case *list:
		for _, s := range workload.Specs() {
			bin := "Bin1"
			if s.Bin2 {
				bin = "Bin2"
			}
			fmt.Printf("%-15s %s APKI=%.0f ws=%dMB seq=%.2f wf=%.2f\n",
				s.Name, bin, s.APKI, s.WorkingSetBytes>>20, s.Seq, s.WriteFrac)
		}
	case *inspect != "":
		inspectTrace(*inspect)
	case *name != "" && *out != "":
		// Ctrl-C / SIGTERM stops between core files, leaving no torn trace.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		record(ctx, *name, *out, *n, *cores, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func record(ctx context.Context, name, out string, n, cores int, seed int64) {
	spec, ok := workload.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", name)
		os.Exit(2)
	}
	for core := 0; core < cores; core++ {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "tracegen: interrupted")
			os.Exit(130)
		}
		path := fmt.Sprintf("%s.core%d.trace", out, core)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		g := workload.NewGenerator(spec, core, seed)
		if err := workload.WriteTrace(f, g, n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d accesses)\n", path, n)
	}
}

func inspectTrace(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := workload.ReadTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var instr, writes, seq uint64
	var prev uint64
	for i := 0; i < tr.Len(); i++ {
		a := tr.Next()
		instr += uint64(a.InstrGap)
		if a.Write {
			writes++
		}
		if i > 0 && a.Addr == prev+workload.LineBytes {
			seq++
		}
		prev = a.Addr
	}
	fmt.Printf("%s: %d accesses, %d instructions\n", path, tr.Len(), instr)
	fmt.Printf("  APKI %.1f | writes %.1f%% | sequential %.1f%%\n",
		float64(tr.Len())/float64(instr)*1000,
		100*float64(writes)/float64(tr.Len()),
		100*float64(seq)/float64(tr.Len()-1))
}
