package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDiffSingleFilePasses(t *testing.T) {
	dir := t.TempDir()
	f := writeBench(t, dir, "BENCH_2026-01-01.json",
		`{"benchmark":"A","speedup":7.4,"acceptance":{"criterion":"x","met":true}}`)
	ok, report, err := diff([]string{f}, 0.10)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v report=%q", ok, err, report)
	}
	if !strings.Contains(report, "only sample") {
		t.Errorf("report should note single sample: %q", report)
	}
}

func TestDiffRegressionFails(t *testing.T) {
	dir := t.TempDir()
	a := writeBench(t, dir, "BENCH_2026-01-01.json", `{"benchmark":"A","speedup":7.4}`)
	b := writeBench(t, dir, "BENCH_2026-02-01.json", `{"benchmark":"A","speedup":5.0}`)
	ok, report, err := diff([]string{a, b}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("32%% drop must fail at 10%% tolerance: %q", report)
	}
	if !strings.Contains(report, "speedup regressed") {
		t.Errorf("report should name the metric: %q", report)
	}
}

func TestDiffWithinToleranceAndImprovementPass(t *testing.T) {
	dir := t.TempDir()
	a := writeBench(t, dir, "BENCH_2026-01-01.json",
		`{"benchmark":"A","speedup":7.4,"results":[{"name":"n1","points_per_s":40}]}`)
	b := writeBench(t, dir, "BENCH_2026-02-01.json",
		`{"benchmark":"A","speedup":7.0,"results":[{"name":"n1","points_per_s":44}]}`)
	ok, report, err := diff([]string{a, b}, 0.10)
	if err != nil || !ok {
		t.Fatalf("5%% drop and an improvement must pass: ok=%v err=%v report=%q", ok, err, report)
	}
}

func TestDiffFamiliesAreIsolated(t *testing.T) {
	// A slow family-B sample must not be compared against family A's
	// numbers, whatever the filename ordering says.
	dir := t.TempDir()
	a := writeBench(t, dir, "BENCH_2026-01-01.json", `{"benchmark":"A","speedup":7.4}`)
	b := writeBench(t, dir, "BENCH_2026-02-01_serving.json",
		`{"benchmark":"B","interactive_p95_speedup":6.1,"results":[{"scheduler":"fair","points_per_s":40}]}`)
	ok, report, err := diff([]string{a, b}, 0.10)
	if err != nil || !ok {
		t.Fatalf("distinct families must not cross-compare: ok=%v err=%v report=%q", ok, err, report)
	}
}

func TestDiffFailedAcceptanceFails(t *testing.T) {
	dir := t.TempDir()
	f := writeBench(t, dir, "BENCH_2026-01-01.json",
		`{"benchmark":"A","speedup":2.0,"acceptance":{"criterion":">= 5x","met":false}}`)
	ok, report, err := diff([]string{f}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("met:false must fail the gate: %q", report)
	}
}

func TestDiffSchedulerKeyedResults(t *testing.T) {
	// Serving-bench results carry "scheduler" instead of "name"; a
	// throughput drop there must still be caught.
	dir := t.TempDir()
	a := writeBench(t, dir, "BENCH_2026-01-01_serving.json",
		`{"benchmark":"B","results":[{"scheduler":"fair","points_per_s":40}]}`)
	b := writeBench(t, dir, "BENCH_2026-02-01_serving.json",
		`{"benchmark":"B","results":[{"scheduler":"fair","points_per_s":20}]}`)
	ok, report, err := diff([]string{a, b}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if ok || !strings.Contains(report, "points_per_s/fair") {
		t.Fatalf("halved throughput must fail: ok=%v report=%q", ok, report)
	}
}
