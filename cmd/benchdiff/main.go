// Command benchdiff is the repo's performance regression gate: it reads
// every committed BENCH_*.json, groups them by their "benchmark" field
// (different benchmark families measure different things and must never be
// cross-compared), and within each family checks the newest file against
// the previous one. A higher-is-better headline metric — speedup,
// interactive_p95_speedup, per-result points_per_s — that dropped by more
// than the tolerance band fails the gate, as does a newest file whose own
// acceptance block says "met": false.
//
//	benchdiff             # compare BENCH_*.json in the current directory
//	benchdiff -tolerance 0.15 -dir bench/
//
// Exit status: 0 when every family passes, 1 on a regression or failed
// acceptance, 2 on usage or parse errors. Raw latency numbers are
// deliberately not compared — they are machine-dependent and lower-is-
// better; the speedup ratios derived from same-machine A/B arms are the
// stable signal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_*.json files")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative drop in a higher-is-better metric before failing (0.10 = 10%)")
	flag.Parse()

	files, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(files) == 0 {
		fmt.Println("benchdiff: no BENCH_*.json files, nothing to gate")
		return
	}
	ok, report, err := diff(files, *tolerance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Print(report)
	if !ok {
		os.Exit(1)
	}
}

// benchFile is the subset of a BENCH_*.json benchdiff understands. All
// fields are optional: a family only gates on the metrics it records.
type benchFile struct {
	Date      string `json:"date"`
	Benchmark string `json:"benchmark"`

	Speedup    float64 `json:"speedup"`
	P95Speedup float64 `json:"interactive_p95_speedup"`

	Results []struct {
		Name       string  `json:"name"`
		Scheduler  string  `json:"scheduler"`
		PointsPerS float64 `json:"points_per_s"`
	} `json:"results"`

	Acceptance *struct {
		Criterion string `json:"criterion"`
		Met       bool   `json:"met"`
	} `json:"acceptance"`
}

// metrics flattens a benchFile into named higher-is-better scalars.
func (b *benchFile) metrics() map[string]float64 {
	m := map[string]float64{}
	if b.Speedup > 0 {
		m["speedup"] = b.Speedup
	}
	if b.P95Speedup > 0 {
		m["interactive_p95_speedup"] = b.P95Speedup
	}
	for i, r := range b.Results {
		if r.PointsPerS <= 0 {
			continue
		}
		key := r.Name
		if key == "" {
			key = r.Scheduler
		}
		if key == "" {
			key = fmt.Sprintf("result[%d]", i)
		}
		m["points_per_s/"+key] = r.PointsPerS
	}
	return m
}

// diff runs the gate over the given files and returns pass/fail plus a
// human-readable report. Files are grouped by benchmark family; within a
// family, lexically-sorted filenames order them (the BENCH_<date> naming
// convention makes that chronological), and the newest is checked against
// its predecessor.
func diff(files []string, tolerance float64) (bool, string, error) {
	type entry struct {
		path string
		b    benchFile
	}
	families := map[string][]entry{}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return false, "", err
		}
		var b benchFile
		if err := json.Unmarshal(raw, &b); err != nil {
			return false, "", fmt.Errorf("%s: %w", f, err)
		}
		fam := b.Benchmark
		if fam == "" {
			fam = "(unnamed)"
		}
		families[fam] = append(families[fam], entry{path: f, b: b})
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)

	ok := true
	var out string
	for _, fam := range names {
		es := families[fam]
		sort.Slice(es, func(i, j int) bool { return es[i].path < es[j].path })
		newest := es[len(es)-1]

		if a := newest.b.Acceptance; a != nil && !a.Met {
			ok = false
			out += fmt.Sprintf("FAIL %s: %s does not meet its own acceptance criterion (%s)\n",
				fam, filepath.Base(newest.path), a.Criterion)
		}
		if len(es) == 1 {
			out += fmt.Sprintf("ok   %s: %s is the only sample, nothing to compare\n",
				fam, filepath.Base(newest.path))
			continue
		}
		prev := es[len(es)-2]
		newM, prevM := newest.b.metrics(), prev.b.metrics()
		keys := make([]string, 0, len(prevM))
		for k := range prevM {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		famOK := true
		for _, k := range keys {
			nv, present := newM[k]
			if !present {
				// A metric the newest file dropped is suspicious but not a
				// regression: families may legitimately reshape. Report it.
				out += fmt.Sprintf("note %s: metric %s present in %s but absent in %s\n",
					fam, k, filepath.Base(prev.path), filepath.Base(newest.path))
				continue
			}
			floor := prevM[k] * (1 - tolerance)
			if nv < floor {
				ok, famOK = false, false
				out += fmt.Sprintf("FAIL %s: %s regressed %.4g → %.4g (floor %.4g at %.0f%% tolerance)\n",
					fam, k, prevM[k], nv, floor, tolerance*100)
			}
		}
		if famOK {
			out += fmt.Sprintf("ok   %s: %s vs %s within %.0f%% tolerance\n",
				fam, filepath.Base(newest.path), filepath.Base(prev.path), tolerance*100)
		}
	}
	return ok, out, nil
}
