// Command faultmc runs the reliability Monte Carlo studies of the ECC
// Parity paper:
//
//	faultmc -exp fig2    # mean time between faults in different channels
//	faultmc -exp fig8    # EOL fraction of memory with materialized correction bits
//	faultmc -exp fig18   # P(multi-channel faults within one scrub window)
//	faultmc -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"eccparity/internal/faultmodel"
	"eccparity/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig2, fig8, fig18, all")
	trials := flag.Int("trials", 4000, "Monte Carlo trials")
	seed := flag.Int64("seed", 1, "Monte Carlo seed")
	flag.Parse()

	switch *exp {
	case "fig2":
		fig2()
	case "fig8":
		fig8(*trials, *seed)
	case "fig18":
		fig18()
	case "all":
		fig2()
		fig8(*trials, *seed)
		fig18()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func fig2() {
	fmt.Println("=== Fig. 2 — mean time between faults in different channels ===")
	fmt.Println("(8 channels × 4 ranks × 9 chips, exponential failure distribution)")
	for _, r := range sim.Fig2ChannelFaultGaps() {
		fmt.Printf("%6.0f FIT/chip: %8.0f days\n", r.FITPerChip, r.MeanDays)
	}
	// Cross-check one point against Monte Carlo.
	topo := faultmodel.PaperTopology(8)
	mc := faultmodel.MeasureChannelFaultGaps(44, topo, 40, 1)
	fmt.Printf("Monte Carlo cross-check at 44 FIT: %.0f days (analytic %.0f)\n",
		mc/24, faultmodel.MeanTimeBetweenChannelFaults(44, topo)/24)
}

func fig8(trials int, seed int64) {
	fmt.Println("\n=== Fig. 8 — fraction of memory with stored correction bits after 7 years ===")
	for _, r := range sim.Fig8EOLFractions(trials, seed) {
		fmt.Printf("%2d channels: mean %5.2f%%   99.9th pct %5.2f%%\n",
			r.Channels, 100*r.Mean, 100*r.P999)
	}
}

func fig18() {
	fmt.Println("\n=== Fig. 18 — P(faults in >1 channel within one detection window, 7-year life) ===")
	last := 0.0
	for _, r := range sim.Fig18ScrubWindows() {
		if r.FITPerChip != last {
			fmt.Printf("-- %.0f FIT/chip --\n", r.FITPerChip)
			last = r.FITPerChip
		}
		fmt.Printf("window %6.0f h: %.6f\n", r.WindowHours, r.Probability)
	}
	fmt.Println("(paper reference point: 8h window at 100 FIT → 0.0002)")
}
