// Command faultmc runs the reliability Monte Carlo studies of the ECC
// Parity paper:
//
//	faultmc -exp fig2    # mean time between faults in different channels
//	faultmc -exp fig8    # EOL fraction of memory with materialized correction bits
//	faultmc -exp fig18   # P(multi-channel faults within one scrub window)
//	faultmc -exp all
//
// -workers bounds the Monte Carlo worker pool (default NumCPU) and -seed
// fixes the campaign seed. Results depend only on the seed, never on the
// worker count: the same seed emits byte-identical stdout at any -workers
// value. Progress goes to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"eccparity/internal/faultmodel"
	"eccparity/internal/prof"
	"eccparity/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig2, fig8, fig18, all")
	trials := flag.Int("trials", 4000, "Monte Carlo trials")
	seed := flag.Int64("seed", 1, "Monte Carlo seed")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines for Monte Carlo trials (<=0: NumCPU)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *trials < 1 {
		fmt.Fprintf(os.Stderr, "-trials must be >= 1 (got %d)\n", *trials)
		os.Exit(2)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	switch *exp {
	case "fig2":
		fig2(*workers)
	case "fig8":
		fig8(*trials, *seed, *workers)
	case "fig18":
		fig18()
	case "all":
		fig2(*workers)
		fig8(*trials, *seed, *workers)
		fig18()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// stage emits a progress line on stderr and returns a func that stamps the
// stage's wall-clock time when the work is done.
func stage(format string, args ...any) func() {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	start := time.Now()
	return func() { fmt.Fprintf(os.Stderr, "  done in %v\n", time.Since(start).Round(time.Millisecond)) }
}

func fig2(workers int) {
	fmt.Println("=== Fig. 2 — mean time between faults in different channels ===")
	fmt.Println("(8 channels × 4 ranks × 9 chips, exponential failure distribution)")
	for _, r := range sim.Fig2ChannelFaultGaps() {
		fmt.Printf("%6.0f FIT/chip: %8.0f days\n", r.FITPerChip, r.MeanDays)
	}
	// Cross-check one point against Monte Carlo.
	done := stage("fig2: Monte Carlo cross-check, 40 trials, workers=%d", workers)
	topo := faultmodel.PaperTopology(8)
	mc := faultmodel.MeasureChannelFaultGaps(44, topo, 40, 1, workers)
	done()
	fmt.Printf("Monte Carlo cross-check at 44 FIT: %.0f days (analytic %.0f)\n",
		mc/24, faultmodel.MeanTimeBetweenChannelFaults(44, topo)/24)
}

func fig8(trials int, seed int64, workers int) {
	fmt.Println("\n=== Fig. 8 — fraction of memory with stored correction bits after 7 years ===")
	done := stage("fig8: %d trials × 4 channel counts, seed=%d, workers=%d", trials, seed, workers)
	rows := sim.Fig8EOLFractions(trials, seed, workers)
	done()
	for _, r := range rows {
		fmt.Printf("%2d channels: mean %5.2f%%   99.9th pct %5.2f%%\n",
			r.Channels, 100*r.Mean, 100*r.P999)
	}
}

func fig18() {
	fmt.Println("\n=== Fig. 18 — P(faults in >1 channel within one detection window, 7-year life) ===")
	last := 0.0
	for _, r := range sim.Fig18ScrubWindows() {
		if r.FITPerChip != last {
			fmt.Printf("-- %.0f FIT/chip --\n", r.FITPerChip)
			last = r.FITPerChip
		}
		fmt.Printf("window %6.0f h: %.6f\n", r.WindowHours, r.Probability)
	}
	fmt.Println("(paper reference point: 8h window at 100 FIT → 0.0002)")
}
