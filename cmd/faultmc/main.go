// Command faultmc runs the reliability Monte Carlo studies of the ECC
// Parity paper:
//
//	faultmc -exp fig2    # mean time between faults in different channels
//	faultmc -exp fig8    # EOL fraction of memory with materialized correction bits
//	faultmc -exp fig18   # P(multi-channel faults within one scrub window)
//	faultmc -exp all
//
// -workers bounds the Monte Carlo worker pool (default NumCPU) and -seed
// fixes the campaign seed. Results depend only on the seed, never on the
// worker count: the same seed emits byte-identical stdout at any -workers
// value. Progress goes to stderr.
//
// The experiments themselves live in internal/sim/report; this command is
// one of its front ends (cmd/eccsimd serves the same registry over HTTP).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"eccparity/internal/cliflags"
	"eccparity/internal/sim/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig2, fig8, fig18, all")
	trials := flag.Int("trials", 4000, "Monte Carlo trials")
	common := cliflags.Register(flag.CommandLine)
	flag.Parse()

	if err := cliflags.CheckTrials(*trials); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := common.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stopProf, err := common.StartProfiling()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	ids := report.FaultmcIDs()
	if *exp != "all" {
		ids = nil
		for _, id := range report.FaultmcIDs() {
			if id == *exp {
				ids = []string{id}
			}
		}
		if ids == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}
	// Ctrl-C / SIGTERM cancels the campaigns at the next worker-pool poll.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r := report.NewRunner(report.Params{
		Trials: *trials, Seed: common.Seed, Workers: common.Workers,
	}, os.Stderr)
	for _, id := range ids {
		rep, err := r.RunContext(ctx, id)
		if errors.Is(err, context.Canceled) {
			stopProf()
			fmt.Fprintln(os.Stderr, "faultmc: interrupted")
			os.Exit(130)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		os.Stdout.WriteString(rep.Text)
	}
}
