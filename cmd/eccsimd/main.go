// Command eccsimd is the experiment-serving daemon: a long-running HTTP
// service that accepts the paper's experiments as JSON requests, executes
// them on a bounded job queue, and memoizes every result in a
// content-addressed cache (same normalized config ⇒ same SHA-256 ⇒ same
// bytes, served without recomputation).
//
//	eccsimd -addr :8344 -cache-dir eccsimd-cache
//
//	curl -s localhost:8344/v1/experiments \
//	    -d '{"experiment":"fig8","trials":2000,"seed":1}'   # → job id + result hash
//	curl -s localhost:8344/v1/jobs/job-1                    # → poll status
//	curl -s localhost:8344/v1/results/<hash>                # → result document
//	curl -s localhost:8344/v1/sweeps \
//	    -d '{"base":{"experiment":"fig8"},"axes":{"seed":[1,2,3]}}'  # → batched grid
//	curl -s 'localhost:8344/v1/sweeps/sweep-1?wait=10s'     # → long-poll progress
//	curl -s localhost:8344/metrics                          # → Prometheus text
//
// SIGTERM/SIGINT drains gracefully: the listener stops, queued and running
// jobs finish (up to -drain-timeout), results land in the cache, then the
// process exits. See internal/serve for the API, internal/jobqueue and
// internal/resultcache for the machinery.
//
// Multi-node: -peers + -node-id join a static consistent-hash fleet and
// -blob-dir adds a shared result tier on a common mount, so replicas serve
// each other's results byte-identically (see internal/cluster and
// internal/blob):
//
//	eccsimd -addr :8344 -node-id a \
//	    -peers 'a=http://h1:8344,b=http://h2:8344,c=http://h3:8344' \
//	    -blob-dir /mnt/shared/eccsimd-blobs -cache-dir /var/cache/eccsimd
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"eccparity/internal/blob"
	"eccparity/internal/blob/ec"
	"eccparity/internal/cliflags"
	"eccparity/internal/cluster"
	"eccparity/internal/serve"
)

// parseECGeometry parses the -blob-ec value: "k,m" with k ≥ 1 data shards
// and m ≥ 1 parity shards. Range limits live in ec.New; this only enforces
// the flag's shape.
func parseECGeometry(s string) (k, m int, err error) {
	ks, ms, ok := strings.Cut(s, ",")
	if ok {
		k, err = strconv.Atoi(strings.TrimSpace(ks))
		if err == nil {
			m, err = strconv.Atoi(strings.TrimSpace(ms))
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-blob-ec must be 'k,m', e.g. 4,2: got %q", s)
	}
	if k < 1 || m < 1 {
		return 0, 0, fmt.Errorf("-blob-ec needs k >= 1 and m >= 1: got %d,%d", k, m)
	}
	return k, m, nil
}

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines inside each experiment's simulation/Monte Carlo pool")
	jobWorkers := flag.Int("job-workers", 2, "experiments executing concurrently")
	queueCap := flag.Int("queue-cap", 16, "bounded submission backlog")
	cacheDir := flag.String("cache-dir", "", "directory for the on-disk result cache (empty: in-memory only)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "on-disk cache byte budget; LRU entries are evicted past it (0: unbounded)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job execution deadline, also the ceiling for per-request timeout_seconds (0: none)")
	maxSweepPoints := flag.Int("max-sweep-points", serve.MaxSweepPointsDefault, "maximum points one sweep may expand to")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long a shutdown waits for in-flight jobs before canceling stragglers")
	progress := flag.Bool("progress", false, "emit per-experiment progress tickers on stderr")
	scheduler := flag.String("scheduler", "fair", "dispatch policy: fair (weighted classes + per-submitter lanes) or fifo (single global queue; A/B baseline)")
	nodeID := flag.String("node-id", "", "this replica's id in -peers (required with -peers)")
	peersFlag := flag.String("peers", "", "full replica list as id=baseURL pairs, e.g. 'a=http://h1:8344,b=http://h2:8344' (empty: single node)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the consistent-hash ring (must match across the fleet)")
	blobDir := flag.String("blob-dir", "", "shared blob directory for the cross-replica result tier, e.g. an NFS mount (empty: none); with -blob-ec, a comma-separated list of exactly k+m shard roots or a single base dir to derive them under")
	blobEC := flag.String("blob-ec", "", "erasure-code the shared blob tier as 'k,m' (k data + m parity shards per result); reads survive any m lost or corrupt shard roots")
	flag.Parse()

	for _, f := range []struct {
		name string
		n    int
	}{{"-workers", *workers}, {"-job-workers", *jobWorkers}, {"-queue-cap", *queueCap}, {"-max-sweep-points", *maxSweepPoints}} {
		if err := cliflags.CheckPositive(f.name, f.n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *cacheMaxBytes < 0 {
		fmt.Fprintln(os.Stderr, "-cache-max-bytes must be non-negative")
		os.Exit(2)
	}
	if *scheduler != "fair" && *scheduler != "fifo" {
		fmt.Fprintf(os.Stderr, "-scheduler must be fair or fifo: got %q\n", *scheduler)
		os.Exit(2)
	}
	var peers []cluster.Node
	switch {
	case *peersFlag != "":
		var err error
		if peers, err = cluster.ParsePeers(*peersFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *nodeID == "" {
			fmt.Fprintln(os.Stderr, "-peers requires -node-id naming this replica's entry")
			os.Exit(2)
		}
	case *nodeID != "":
		fmt.Fprintln(os.Stderr, "-node-id is only meaningful with -peers")
		os.Exit(2)
	}
	opts := serve.Options{
		Workers:        *workers,
		JobWorkers:     *jobWorkers,
		QueueCap:       *queueCap,
		CacheDir:       *cacheDir,
		CacheMaxBytes:  *cacheMaxBytes,
		JobTimeout:     *jobTimeout,
		MaxSweepPoints: *maxSweepPoints,
		FIFO:           *scheduler == "fifo",
		NodeID:         *nodeID,
		Peers:          peers,
		VNodes:         *vnodes,
	}
	if *progress {
		opts.Progress = os.Stderr
	}
	var ecK, ecM int
	switch {
	case *blobEC != "" && *blobDir == "":
		fmt.Fprintln(os.Stderr, "-blob-ec requires -blob-dir naming the shard roots")
		os.Exit(2)
	case *blobEC != "":
		k, m, err := parseECGeometry(*blobEC)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ecK, ecM = k, m
		dirs := strings.Split(*blobDir, ",")
		if len(dirs) == 1 {
			dirs = ec.DeriveRoots(dirs[0], k+m)
		} else if len(dirs) != k+m {
			fmt.Fprintf(os.Stderr, "-blob-ec %d,%d needs exactly %d shard roots in -blob-dir, got %d\n", k, m, k+m, len(dirs))
			os.Exit(2)
		}
		backend, err := ec.OpenFS(k, m, dirs)
		if err != nil {
			log.Fatal(err)
		}
		opts.Blob = backend
	case *blobDir != "":
		fs, err := blob.NewFS(*blobDir)
		if err != nil {
			log.Fatal(err)
		}
		opts.Blob = fs
	}
	s, err := serve.New(opts)
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("eccsimd listening on %s (job workers %d, queue cap %d, scheduler %s, cache dir %q)",
		*addr, *jobWorkers, *queueCap, *scheduler, *cacheDir)
	if *blobEC != "" {
		log.Printf("shared blob tier erasure-coded %d+%d over %q: reads survive any %d lost shard roots",
			ecK, ecM, *blobDir, ecM)
	}
	if len(peers) > 0 {
		log.Printf("clustered as node %q: %d replicas, %d vnodes, shared blob dir %q",
			*nodeID, len(peers), *vnodes, *blobDir)
	}

	select {
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills immediately

	log.Printf("shutdown signal received, draining (timeout %v)", *drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := s.Drain(shutCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("drain timed out: remaining jobs canceled")
		} else {
			log.Printf("drain: %v", err)
		}
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}
