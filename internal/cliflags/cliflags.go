// Package cliflags holds the flag plumbing shared by every experiment
// binary: the -seed/-workers knobs of the deterministic runners and the
// -cpuprofile/-memprofile pair wired to internal/prof. Factoring it here
// keeps the CLIs' contracts identical — same defaults, same usage strings,
// same validation — instead of drifting per command.
package cliflags

import (
	"flag"
	"fmt"
	"runtime"

	"eccparity/internal/prof"
)

// Common is the flag set every experiment CLI shares. Register binds it to
// a FlagSet; Validate rejects nonsense before any work starts.
type Common struct {
	Seed       int64
	Workers    int
	CPUProfile string
	MemProfile string
}

// Register binds the shared flags to fs (use flag.CommandLine in main) and
// returns the struct the parsed values land in.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.Int64Var(&c.Seed, "seed", 1, "workload and Monte Carlo seed (results depend only on this, never on -workers)")
	fs.IntVar(&c.Workers, "workers", runtime.NumCPU(), "worker goroutines for simulation grids and Monte Carlo (default NumCPU)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	return c
}

// Validate checks the parsed values. Call it right after flag.Parse.
func (c *Common) Validate() error {
	return CheckWorkers(c.Workers)
}

// StartProfiling begins CPU/heap profiling per the parsed flags and returns
// the stop function that must run on clean exit.
func (c *Common) StartProfiling() (stop func(), err error) {
	return prof.Start(c.CPUProfile, c.MemProfile)
}

// CheckPositive rejects values below 1 for a count-valued flag.
func CheckPositive(flagName string, n int) error {
	if n < 1 {
		return fmt.Errorf("%s must be >= 1 (got %d)", flagName, n)
	}
	return nil
}

// CheckWorkers rejects worker counts below 1. The library layer clamps ≤0
// to NumCPU for programmatic callers, but at the CLI an explicit
// -workers 0 or negative is a typo, not a request for NumCPU — fail loudly
// instead of silently substituting a different pool size.
func CheckWorkers(n int) error { return CheckPositive("-workers", n) }

// CheckTrials rejects non-positive Monte Carlo trial counts.
func CheckTrials(n int) error { return CheckPositive("-trials", n) }
