package cliflags

import (
	"flag"
	"runtime"
	"testing"
)

func TestRegisterDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 1 {
		t.Errorf("default seed = %d, want 1", c.Seed)
	}
	if c.Workers != runtime.NumCPU() {
		t.Errorf("default workers = %d, want NumCPU (%d)", c.Workers, runtime.NumCPU())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
}

func TestRegisterParsesValues(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := Register(fs)
	if err := fs.Parse([]string{"-seed", "42", "-workers", "3", "-cpuprofile", "cpu.pprof"}); err != nil {
		t.Fatal(err)
	}
	if c.Seed != 42 || c.Workers != 3 || c.CPUProfile != "cpu.pprof" {
		t.Errorf("parsed %+v, want seed=42 workers=3 cpuprofile=cpu.pprof", c)
	}
}

func TestCheckWorkersRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if err := CheckWorkers(n); err == nil {
			t.Errorf("CheckWorkers(%d) = nil, want error", n)
		}
	}
	if err := CheckWorkers(1); err != nil {
		t.Errorf("CheckWorkers(1) = %v, want nil", err)
	}
}

func TestCheckTrialsRejectsNonPositive(t *testing.T) {
	if err := CheckTrials(0); err == nil {
		t.Error("CheckTrials(0) = nil, want error")
	}
	if err := CheckTrials(1); err != nil {
		t.Errorf("CheckTrials(1) = %v, want nil", err)
	}
}
