// Package resultcache is a content-addressed store for experiment results.
// Because every experiment in this repo is deterministic in its config
// (seed included, worker count excluded — see internal/sim/report), the
// canonical SHA-256 of the config fully identifies the result bytes: the
// cache never needs invalidation, a hit is byte-identical to the original
// run by construction, and concurrent identical requests can share one
// execution (singleflight).
//
// Layout: an in-memory map in front of an optional on-disk directory of
// <hash>.json files written atomically, so a daemon restart keeps its
// corpus. Each disk entry is framed with a payload checksum ("eccrc1
// <sha256hex>\n<payload>") so a truncated or bit-flipped file is detected
// on read, deleted, and treated as a miss — the result is recomputed, never
// served corrupted. The disk layer is bounded: when a byte budget is set,
// least-recently-used entries are evicted to stay under it.
//
// Behind the local tiers an optional shared tier (internal/blob) turns the
// cache into the fleet-wide store of a multi-node deployment: reads fall
// through memory → local disk → shared blob, a shared hit is pulled into
// the local tiers (read-through fill), and a freshly computed result is
// published to the shared tier asynchronously (write-behind, so the compute
// path never blocks on a network mount). The shared tier inherits the same
// safety rules as the disk tier: blobs are checksummed frames, a corrupt
// frame is deleted and recomputed locally — never served and never left to
// poison other replicas — and singleflight still collapses concurrent
// identical requests on this replica whichever tier ends up serving them.
package resultcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"eccparity/internal/blob"
)

// Key returns the canonical content address of a config value: the SHA-256
// hex of its encoding/json serialization. Struct fields marshal in
// declaration order and map keys sort, so the encoding — and therefore the
// address — is deterministic. Callers must hash a fully normalized config
// (defaults filled in) so that equivalent requests collapse to one key.
func Key(config any) (string, error) {
	b, err := json.Marshal(config)
	if err != nil {
		return "", fmt.Errorf("resultcache: marshal config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// validKey guards the on-disk path: keys are exactly 64 hex chars.
var validKey = regexp.MustCompile(`^[0-9a-f]{64}$`)

// diskMagic opens every disk entry, followed by the hex SHA-256 of the
// payload and a newline. Bumping the version string invalidates the corpus
// wholesale (old entries fail the frame check and recompute).
const diskMagic = "eccrc1 "

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Hits: served from memory or disk without computing.
	Hits uint64
	// Misses: the value had to be computed.
	Misses uint64
	// Coalesced: callers that waited on another caller's in-flight
	// computation of the same key instead of recomputing (singleflight).
	Coalesced uint64
	// Evicted: disk entries removed to stay under the byte budget.
	Evicted uint64
	// Corrupt: disk entries that failed their checksum frame and were
	// deleted (each one recomputes as a miss).
	Corrupt uint64
	// SharedHits: lookups served by the shared blob tier (each one also
	// counts in Hits and fills the local tiers).
	SharedHits uint64
	// SharedPublished: results successfully published to the shared tier.
	SharedPublished uint64
	// SharedCorrupt: shared blobs that failed their checksum frame; the
	// backend deleted them and the result was recomputed locally.
	SharedCorrupt uint64
	// SharedErrors: shared-tier reads or publishes that failed for
	// transport/IO reasons (the tier was treated as unavailable).
	SharedErrors uint64
	// SharedRepaired: shards of the erasure-coded shared tier rewritten
	// with reconstructed bytes after reads served through missing or
	// corrupt shards (0 unless the backend reports repair stats — see
	// blob.RepairStatter and internal/blob/ec).
	SharedRepaired uint64
	// ShardErrors: per-shard failures inside the erasure-coded shared tier
	// that the stripe absorbed without the operation failing (0 unless the
	// backend reports repair stats).
	ShardErrors uint64
	// Entries currently held in memory.
	Entries int
	// DiskEntries / DiskBytes describe the on-disk layer (0 when disabled).
	DiskEntries int
	DiskBytes   int64
}

// flight is one in-progress computation other callers can wait on. val and
// err are written before done is closed, which orders them for waiters.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// diskEntry is one LRU index record; list front = most recently used.
type diskEntry struct {
	key  string
	size int64
}

// Cache is safe for concurrent use.
type Cache struct {
	dir      string // "" = memory only
	maxBytes int64  // 0 = unbounded disk

	// shared is the optional fleet-wide tier behind the local ones; nil
	// keeps the cache purely local. pubWG tracks in-flight write-behind
	// publishes; pubSem bounds how many run at once so a slow mount cannot
	// pile up goroutines.
	shared blob.Backend
	pubWG  sync.WaitGroup
	pubSem chan struct{}

	mu       sync.Mutex
	mem      map[string][]byte
	inflight map[string]*flight

	// Disk LRU index, guarded by mu: index maps key → element whose Value
	// is *diskEntry; bytes is the framed size sum of everything indexed.
	lru   *list.List
	index map[string]*list.Element
	bytes int64

	hits, misses, coalesced, evicted, corrupt          atomic.Uint64
	sharedHits, sharedPub, sharedCorrupt, sharedErrors atomic.Uint64
}

// Option configures optional cache behavior at construction.
type Option func(*Cache)

// WithShared attaches a shared blob backend as the tier behind the local
// memory and disk layers: reads fall through to it, shared hits fill the
// local tiers, and computed results are published to it write-behind. A nil
// backend is ignored (single-node behavior unchanged).
func WithShared(b blob.Backend) Option {
	return func(c *Cache) {
		if b != nil {
			c.shared = b
		}
	}
}

// New creates a cache. A nonempty dir enables the on-disk layer (created if
// missing); dir == "" keeps results in memory only. maxDiskBytes bounds the
// on-disk layer: when a write would push the directory past the budget,
// least-recently-used entries are evicted first (0 = unbounded). The
// existing corpus is indexed at startup, oldest-first by mtime, and trimmed
// to the budget immediately.
func New(dir string, maxDiskBytes int64, opts ...Option) (*Cache, error) {
	c := &Cache{
		dir: dir, maxBytes: maxDiskBytes,
		mem: map[string][]byte{}, inflight: map[string]*flight{},
		lru: list.New(), index: map[string]*list.Element{},
		pubSem: make(chan struct{}, 4),
	}
	for _, o := range opts {
		o(c)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
		if err := c.loadIndex(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.evictLocked()
		c.mu.Unlock()
	}
	return c, nil
}

// loadIndex scans dir for well-formed entry names and rebuilds the LRU in
// mtime order, so a restarted daemon evicts its stalest results first.
func (c *Cache) loadIndex() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	type rec struct {
		key   string
		size  int64
		mtime int64
	}
	recs := []rec{}
	for _, e := range entries {
		key, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || !validKey.MatchString(key) || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		recs = append(recs, rec{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].mtime < recs[j].mtime })
	for _, r := range recs {
		// Oldest first: each PushFront leaves the newest at the front.
		c.index[r.key] = c.lru.PushFront(&diskEntry{key: r.key, size: r.size})
		c.bytes += r.size
	}
	return nil
}

// Get returns the cached bytes for key, consulting memory then disk, and
// counts a hit when found. Missing keys are not counted as misses (only a
// computation is): use GetOrCompute for the read-through path.
func (c *Cache) Get(key string) ([]byte, bool) {
	if v, ok := c.lookup(key); ok {
		c.hits.Add(1)
		return v, true
	}
	return nil, false
}

// Peek is Get without touching the hit counter — for serving /v1/results
// fetches, which would otherwise inflate the hit ratio.
func (c *Cache) Peek(key string) ([]byte, bool) {
	return c.lookup(key)
}

func (c *Cache) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	if v, ok := c.mem[key]; ok {
		c.mu.Unlock()
		return clone(v), true
	}
	c.mu.Unlock()
	b, ok := c.readDisk(key)
	if !ok {
		b, ok = c.readShared(key)
	}
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	c.mem[key] = b
	c.mu.Unlock()
	return clone(b), true
}

// GetOrCompute returns the bytes for key, running compute exactly once per
// key no matter how many callers arrive concurrently: the first caller
// computes, the rest wait and share its result (or its error). hit reports
// whether this caller's bytes were served without running compute itself.
//
// ctx cancels this caller's wait and is the context compute runs under; a
// canceled computation settles with its error, caches nothing (memory or
// disk), and leaves the key open for the next caller to recompute.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func(ctx context.Context) ([]byte, error)) (val []byte, hit bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if v, ok := c.mem[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return clone(v), true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			// This caller gives up; the flight keeps running for the others.
			return nil, false, ctx.Err()
		}
		if f.err != nil {
			return nil, false, f.err
		}
		c.coalesced.Add(1)
		return clone(f.val), true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	// Disk check outside the lock: a restart's corpus counts as a hit. The
	// shared tier is consulted after local disk (read-through): a result
	// another replica computed is a hit here too, and the fill below makes
	// the next lookup purely local.
	if b, ok := c.readDisk(key); ok {
		c.settle(key, f, b, nil)
		c.hits.Add(1)
		return clone(b), true, nil
	}
	if b, ok := c.readShared(key); ok {
		c.settle(key, f, b, nil)
		c.hits.Add(1)
		return clone(b), true, nil
	}

	c.misses.Add(1)
	v, cerr := compute(ctx)
	if cerr == nil {
		c.persist(key, v)
		c.publishShared(key, v)
	}
	c.settle(key, f, v, cerr)
	if cerr != nil {
		return nil, false, cerr
	}
	return clone(v), false, nil
}

// settle publishes a flight's outcome: successful values land in memory,
// waiters are released, and the key is open for retry on error.
func (c *Cache) settle(key string, f *flight, v []byte, err error) {
	f.val, f.err = v, err
	c.mu.Lock()
	if err == nil {
		c.mem[key] = clone(v)
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
}

// readDisk reads and verifies one disk entry. A file that fails the frame
// check — wrong magic, bad hex, checksum mismatch from truncation or bit
// rot — is deleted and reported as a miss so the caller recomputes. A valid
// read touches the entry in the LRU.
func (c *Cache) readDisk(key string) ([]byte, bool) {
	if c.dir == "" || !validKey.MatchString(key) {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	payload, ok := decodeFrame(b)
	if !ok {
		c.corrupt.Add(1)
		os.Remove(c.path(key))
		c.mu.Lock()
		c.dropIndexLocked(key)
		c.mu.Unlock()
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	return payload, true
}

// readShared reads one entry from the shared blob tier and, on a hit,
// fills the local disk tier so the next lookup stays off the shared mount.
// A corrupt blob has already been deleted by the backend (see
// blob.ErrCorrupt) and is a miss: the caller recomputes locally, and the
// write-behind publish of that recompute repairs the shared tier with good
// bytes. Transport errors degrade to a miss too — a flaky mount slows the
// fleet down to per-replica recomputation, it never breaks it.
func (c *Cache) readShared(key string) ([]byte, bool) {
	if c.shared == nil || !validKey.MatchString(key) {
		return nil, false
	}
	b, err := c.shared.Get(context.Background(), key)
	switch {
	case err == nil:
		c.sharedHits.Add(1)
		c.persist(key, b)
		return b, true
	case errors.Is(err, blob.ErrCorrupt):
		c.sharedCorrupt.Add(1)
	case errors.Is(err, blob.ErrNotFound):
		// plain miss
	default:
		c.sharedErrors.Add(1)
	}
	return nil, false
}

// publishShared queues a write-behind publish of a freshly computed value
// to the shared tier: the compute path returns immediately, a bounded
// number of publisher goroutines push in the background, and FlushShared
// waits for the backlog (the daemon flushes on drain so a clean shutdown
// leaves everything it computed visible to the fleet). Publish failures are
// counted and dropped — the local tiers still serve the value, and any
// replica that misses the shared tier recomputes deterministically.
func (c *Cache) publishShared(key string, v []byte) {
	if c.shared == nil || !validKey.MatchString(key) {
		return
	}
	val := clone(v)
	c.pubWG.Add(1)
	go func() {
		defer c.pubWG.Done()
		c.pubSem <- struct{}{}
		defer func() { <-c.pubSem }()
		if err := c.shared.Put(context.Background(), key, val); err != nil {
			c.sharedErrors.Add(1)
			return
		}
		c.sharedPub.Add(1)
	}()
}

// FlushShared blocks until every queued write-behind publish has settled.
// Call it before shutdown (and in tests) to make the shared tier catch up
// with everything this replica computed.
func (c *Cache) FlushShared() {
	c.pubWG.Wait()
}

// persist writes the framed value to disk atomically (tmp + rename) so a
// crashed write can never surface as a truncated result, then evicts LRU
// entries past the byte budget. Best-effort: the in-memory layer still
// serves the value if the disk write fails.
func (c *Cache) persist(key string, v []byte) {
	if c.dir == "" || !validKey.MatchString(key) {
		return
	}
	framed := encodeFrame(v)
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		os.Remove(name)
		return
	}
	c.mu.Lock()
	c.dropIndexLocked(key) // overwrite: replace any stale size
	c.index[key] = c.lru.PushFront(&diskEntry{key: key, size: int64(len(framed))})
	c.bytes += int64(len(framed))
	c.evictLocked()
	c.mu.Unlock()
}

// evictLocked removes least-recently-used disk entries until the layer fits
// the byte budget (mu held). Evicted results survive in memory if resident,
// and can always be recomputed — determinism makes eviction safe.
func (c *Cache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*diskEntry)
		os.Remove(c.path(e.key))
		c.dropIndexLocked(e.key)
		c.evicted.Add(1)
	}
}

// dropIndexLocked removes key from the LRU index if present (mu held).
func (c *Cache) dropIndexLocked(key string) {
	if el, ok := c.index[key]; ok {
		c.bytes -= el.Value.(*diskEntry).size
		c.lru.Remove(el)
		delete(c.index, key)
	}
}

// encodeFrame wraps a payload in the checksummed disk format.
func encodeFrame(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(diskMagic)+64+1+len(payload))
	out = append(out, diskMagic...)
	out = append(out, hex.EncodeToString(sum[:])...)
	out = append(out, '\n')
	return append(out, payload...)
}

// decodeFrame verifies the frame and returns the payload, or ok=false for
// anything malformed — wrong magic, short file, checksum mismatch.
func decodeFrame(b []byte) ([]byte, bool) {
	rest, ok := strings.CutPrefix(string(b), diskMagic)
	if !ok || len(rest) < 65 || rest[64] != '\n' {
		return nil, false
	}
	payload := []byte(rest[65:])
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != rest[:64] {
		return nil, false
	}
	return payload, true
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries := len(c.mem)
	diskEntries := c.lru.Len()
	diskBytes := c.bytes
	c.mu.Unlock()
	var repair blob.RepairStats
	if rs, ok := c.shared.(blob.RepairStatter); ok {
		repair = rs.RepairStats()
	}
	return Stats{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Coalesced:       c.coalesced.Load(),
		Evicted:         c.evicted.Load(),
		Corrupt:         c.corrupt.Load(),
		SharedHits:      c.sharedHits.Load(),
		SharedPublished: c.sharedPub.Load(),
		SharedCorrupt:   c.sharedCorrupt.Load(),
		SharedErrors:    c.sharedErrors.Load(),
		SharedRepaired:  repair.Repaired,
		ShardErrors:     repair.ShardErrors,
		Entries:         entries,
		DiskEntries:     diskEntries,
		DiskBytes:       diskBytes,
	}
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
