// Package resultcache is a content-addressed store for experiment results.
// Because every experiment in this repo is deterministic in its config
// (seed included, worker count excluded — see internal/sim/report), the
// canonical SHA-256 of the config fully identifies the result bytes: the
// cache never needs invalidation, a hit is byte-identical to the original
// run by construction, and concurrent identical requests can share one
// execution (singleflight).
//
// Layout: an in-memory map in front of an optional on-disk directory of
// <hash>.json files written atomically, so a daemon restart keeps its
// corpus.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"sync/atomic"
)

// Key returns the canonical content address of a config value: the SHA-256
// hex of its encoding/json serialization. Struct fields marshal in
// declaration order and map keys sort, so the encoding — and therefore the
// address — is deterministic. Callers must hash a fully normalized config
// (defaults filled in) so that equivalent requests collapse to one key.
func Key(config any) (string, error) {
	b, err := json.Marshal(config)
	if err != nil {
		return "", fmt.Errorf("resultcache: marshal config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// validKey guards the on-disk path: keys are exactly 64 hex chars.
var validKey = regexp.MustCompile(`^[0-9a-f]{64}$`)

// Stats is a snapshot of the cache's counters.
type Stats struct {
	// Hits: served from memory or disk without computing.
	Hits uint64
	// Misses: the value had to be computed.
	Misses uint64
	// Coalesced: callers that waited on another caller's in-flight
	// computation of the same key instead of recomputing (singleflight).
	Coalesced uint64
	// Entries currently held in memory.
	Entries int
}

// flight is one in-progress computation other callers can wait on. val and
// err are written before done is closed, which orders them for waiters.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is safe for concurrent use.
type Cache struct {
	dir string // "" = memory only

	mu       sync.Mutex
	mem      map[string][]byte
	inflight map[string]*flight

	hits, misses, coalesced atomic.Uint64
}

// New creates a cache. A nonempty dir enables the on-disk layer (created
// if missing); dir == "" keeps results in memory only.
func New(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
	}
	return &Cache{dir: dir, mem: map[string][]byte{}, inflight: map[string]*flight{}}, nil
}

// Get returns the cached bytes for key, consulting memory then disk, and
// counts a hit when found. Missing keys are not counted as misses (only a
// computation is): use GetOrCompute for the read-through path.
func (c *Cache) Get(key string) ([]byte, bool) {
	if v, ok := c.lookup(key); ok {
		c.hits.Add(1)
		return v, true
	}
	return nil, false
}

// Peek is Get without touching the hit counter — for serving /v1/results
// fetches, which would otherwise inflate the hit ratio.
func (c *Cache) Peek(key string) ([]byte, bool) {
	return c.lookup(key)
}

func (c *Cache) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	if v, ok := c.mem[key]; ok {
		c.mu.Unlock()
		return clone(v), true
	}
	c.mu.Unlock()
	if c.dir == "" || !validKey.MatchString(key) {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	c.mu.Lock()
	c.mem[key] = b
	c.mu.Unlock()
	return clone(b), true
}

// GetOrCompute returns the bytes for key, running compute exactly once per
// key no matter how many callers arrive concurrently: the first caller
// computes, the rest wait and share its result (or its error). hit reports
// whether this caller's bytes were served without running compute itself.
func (c *Cache) GetOrCompute(key string, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	c.mu.Lock()
	if v, ok := c.mem[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return clone(v), true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		c.coalesced.Add(1)
		return clone(f.val), true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	// Disk check outside the lock: a restart's corpus counts as a hit.
	if c.dir != "" && validKey.MatchString(key) {
		if b, err := os.ReadFile(c.path(key)); err == nil {
			c.settle(key, f, b, nil)
			c.hits.Add(1)
			return clone(b), true, nil
		}
	}

	c.misses.Add(1)
	v, cerr := compute()
	if cerr == nil {
		c.persist(key, v)
	}
	c.settle(key, f, v, cerr)
	if cerr != nil {
		return nil, false, cerr
	}
	return clone(v), false, nil
}

// settle publishes a flight's outcome: successful values land in memory,
// waiters are released, and the key is open for retry on error.
func (c *Cache) settle(key string, f *flight, v []byte, err error) {
	f.val, f.err = v, err
	c.mu.Lock()
	if err == nil {
		c.mem[key] = clone(v)
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
}

// persist writes the value to disk atomically (tmp + rename) so a crashed
// write can never surface as a truncated result. Best-effort: the in-memory
// layer still serves the value if the disk write fails.
func (c *Cache) persist(key string, v []byte) {
	if c.dir == "" || !validKey.MatchString(key) {
		return
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(v); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		os.Remove(name)
	}
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries := len(c.mem)
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Entries:   entries,
	}
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
