package resultcache

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"eccparity/internal/blob"
)

// newShared returns an FS blob backend rooted in a fresh temp dir, plus the
// dir itself so tests can plant corrupt frames directly.
func newShared(t *testing.T) (*blob.FS, string) {
	t.Helper()
	dir := t.TempDir()
	b, err := blob.NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	return b, dir
}

func mustKey(t *testing.T, v any) string {
	t.Helper()
	k, err := Key(v)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// noCompute is a compute func that must never run.
func noCompute(t *testing.T) func(context.Context) ([]byte, error) {
	return func(context.Context) ([]byte, error) {
		t.Error("compute ran; expected a tier hit")
		return nil, errors.New("unexpected compute")
	}
}

// A result computed through one cache must be served — byte-identical, no
// recompute — by a second cache that shares only the blob tier: the
// cross-replica read path of the cluster.
func TestSharedTierCrossCacheHit(t *testing.T) {
	shared, _ := newShared(t)
	a, err := New(t.TempDir(), 0, WithShared(shared))
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, map[string]string{"experiment": "fig8"})
	want := []byte(`{"experiment":"fig8","rows":[1,2,3]}`)
	if _, hit, err := a.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		return want, nil
	}); err != nil || hit {
		t.Fatalf("first compute: hit=%v err=%v", hit, err)
	}
	a.FlushShared()
	if s := a.Stats(); s.SharedPublished != 1 {
		t.Fatalf("SharedPublished = %d, want 1", s.SharedPublished)
	}

	b, err := New(t.TempDir(), 0, WithShared(shared))
	if err != nil {
		t.Fatal(err)
	}
	got, hit, err := b.GetOrCompute(context.Background(), key, noCompute(t))
	if err != nil || !hit {
		t.Fatalf("cross-cache read: hit=%v err=%v", hit, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cross-cache bytes = %q, want %q", got, want)
	}
	s := b.Stats()
	if s.SharedHits != 1 || s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("stats after shared hit = %+v", s)
	}
	// Read-through fill: the hit landed in b's local disk tier, so a
	// restarted replica on the same cache dir serves it with no shared
	// backend at all.
	if s.DiskEntries != 1 {
		t.Fatalf("DiskEntries = %d, want 1 (read-through fill)", s.DiskEntries)
	}
}

// Get (the fast submission path) must also fall through to the shared tier.
func TestGetFallsThroughToShared(t *testing.T) {
	shared, _ := newShared(t)
	key := mustKey(t, "get-path")
	want := []byte("payload")
	if err := shared.Put(context.Background(), key, want); err != nil {
		t.Fatal(err)
	}
	c, err := New("", 0, WithShared(shared))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if s := c.Stats(); s.SharedHits != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// blobPath mirrors blob.FS's fan-out layout so tests can damage files.
func blobPath(dir, key string) string {
	return filepath.Join(dir, key[:2], key+".blob")
}

// plant writes raw bytes at a key's blob path, creating the fan-out dir.
func plant(t *testing.T, dir, key string, raw []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(blobPath(dir, key)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blobPath(dir, key), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// The corruption contract under tiering: a truncated or garbage blob frame
// is deleted, the result is recomputed locally, and the write-behind
// publish repairs the shared tier with good bytes — corruption never
// propagates and never poisons other replicas.
func TestCorruptSharedBlobRecomputedAndRepaired(t *testing.T) {
	want := []byte(`{"good":"bytes"}`)
	cases := map[string]func(key string) []byte{
		"truncated": func(string) []byte { return blob.EncodeFrame(want)[:30] },
		"garbage":   func(string) []byte { return []byte("complete nonsense") },
		"bitflip": func(string) []byte {
			f := blob.EncodeFrame(want)
			f[len(f)-1] ^= 0x01
			return f
		},
	}
	for name, damage := range cases {
		t.Run(name, func(t *testing.T) {
			shared, sharedDir := newShared(t)
			key := mustKey(t, "corrupt-"+name)
			plant(t, sharedDir, key, damage(key))

			c, err := New(t.TempDir(), 0, WithShared(shared))
			if err != nil {
				t.Fatal(err)
			}
			computes := 0
			got, hit, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
				computes++
				return want, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if hit || computes != 1 {
				t.Fatalf("hit=%v computes=%d, want local recompute", hit, computes)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("bytes = %q, want %q", got, want)
			}
			s := c.Stats()
			if s.SharedCorrupt != 1 {
				t.Fatalf("SharedCorrupt = %d, want 1", s.SharedCorrupt)
			}

			// The recompute's publish must repair the shared tier: the blob
			// now decodes cleanly and serves a fresh replica.
			c.FlushShared()
			raw, err := os.ReadFile(blobPath(sharedDir, key))
			if err != nil {
				t.Fatalf("shared blob not republished: %v", err)
			}
			payload, ok := blob.DecodeFrame(raw)
			if !ok || !bytes.Equal(payload, want) {
				t.Fatalf("republished frame bad: ok=%v payload=%q", ok, payload)
			}
			fresh, err := New(t.TempDir(), 0, WithShared(shared))
			if err != nil {
				t.Fatal(err)
			}
			got2, hit2, err := fresh.GetOrCompute(context.Background(), key, noCompute(t))
			if err != nil || !hit2 || !bytes.Equal(got2, want) {
				t.Fatalf("repaired read: hit=%v err=%v bytes=%q", hit2, err, got2)
			}
		})
	}
}

// A corrupt shared blob observed through plain Get is deleted, reported as
// a miss, and never reaches the local tiers.
func TestCorruptSharedBlobGetIsMiss(t *testing.T) {
	shared, sharedDir := newShared(t)
	key := mustKey(t, "get-corrupt")
	plant(t, sharedDir, key, []byte("junk"))
	c, err := New(t.TempDir(), 0, WithShared(shared))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("Get served a corrupt shared blob")
	}
	if _, err := os.Stat(blobPath(sharedDir, key)); !os.IsNotExist(err) {
		t.Fatal("corrupt shared blob not deleted")
	}
	if s := c.Stats(); s.SharedCorrupt != 1 || s.Entries != 0 || s.DiskEntries != 0 {
		t.Fatalf("stats = %+v: corruption leaked into local tiers", s)
	}
}

// failingBackend simulates a dead shared mount: every operation errors.
type failingBackend struct{}

func (failingBackend) Put(context.Context, string, []byte) error { return errors.New("mount gone") }
func (failingBackend) Get(context.Context, string) ([]byte, error) {
	return nil, errors.New("mount gone")
}
func (failingBackend) Delete(context.Context, string) error   { return errors.New("mount gone") }
func (failingBackend) List(context.Context) ([]string, error) { return nil, errors.New("mount gone") }

// An unavailable shared tier degrades to local-only operation: computes
// succeed, errors are counted, nothing fails.
func TestSharedTierUnavailableDegrades(t *testing.T) {
	c, err := New("", 0, WithShared(failingBackend{}))
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, "degraded")
	want := []byte("still works")
	got, hit, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		return want, nil
	})
	if err != nil || hit || !bytes.Equal(got, want) {
		t.Fatalf("compute under dead mount: hit=%v err=%v bytes=%q", hit, err, got)
	}
	c.FlushShared()
	s := c.Stats()
	if s.SharedErrors < 2 { // one failed read, one failed publish
		t.Fatalf("SharedErrors = %d, want >= 2", s.SharedErrors)
	}
	if s.SharedPublished != 0 {
		t.Fatalf("SharedPublished = %d, want 0", s.SharedPublished)
	}
	// The local tiers still serve it.
	if _, ok := c.Get(key); !ok {
		t.Fatal("local tier lost the value")
	}
}

// Singleflight must hold across tiers: concurrent identical requests on one
// replica produce exactly one compute even when the shared tier is enabled.
func TestSingleflightAcrossTiers(t *testing.T) {
	shared, _ := newShared(t)
	c, err := New("", 0, WithShared(shared))
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, "flight")
	var mu sync.Mutex
	computes := 0
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			v, _, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				return []byte("one"), nil
			})
			if err != nil || !bytes.Equal(v, []byte("one")) {
				t.Errorf("GetOrCompute = %q, %v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (singleflight across tiers)", computes)
	}
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", s.Misses)
	}
}
