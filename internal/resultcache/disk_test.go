package resultcache

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestCorruptDiskEntryRecomputes is the satellite regression: a cached file
// that rots on disk — here a single flipped bit in the payload — must not
// be served. The read detects the checksum mismatch, deletes the file, and
// the entry recomputes as a miss.
func TestCorruptDiskEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	key, _ := Key(map[string]int{"seed": 7})
	orig := []byte(`{"experiment":"fig8","text":"rows"}`)

	c1, err := New(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c1.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) { return orig, nil }); err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit on disk, past the "eccrc1 <hex>\n" frame header.
	path := filepath.Join(dir, key+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh instance (no memory copy) must recompute, not serve rot.
	c2, err := New(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	recomputed := false
	v, hit, err := c2.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		recomputed = true
		return orig, nil
	})
	if err != nil || hit || !recomputed {
		t.Fatalf("corrupt entry: hit=%v recomputed=%v err=%v, want miss+recompute", hit, recomputed, err)
	}
	if !bytes.Equal(v, orig) {
		t.Fatalf("recomputed bytes %q != original %q", v, orig)
	}
	if s := c2.Stats(); s.Corrupt != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 1 corrupt / 1 miss", s)
	}
	// The rotten file was replaced by the recomputed entry's valid frame.
	b2, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("recomputed entry not re-persisted: %v", err)
	}
	if payload, ok := decodeFrame(b2); !ok || !bytes.Equal(payload, orig) {
		t.Fatalf("re-persisted frame invalid: ok=%v payload=%q", ok, payload)
	}
}

// TestTruncatedDiskEntryRecomputes covers the crash-torn-write shape of
// corruption: a file cut mid-payload fails the frame check the same way.
func TestTruncatedDiskEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	key, _ := Key(map[string]int{"seed": 8})
	c1, _ := New(dir, 0)
	orig := []byte("0123456789abcdef0123456789abcdef")
	c1.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) { return orig, nil })

	path := filepath.Join(dir, key+".json")
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-10], 0o644)

	c2, _ := New(dir, 0)
	if _, ok := c2.Peek(key); ok {
		t.Fatal("Peek served a truncated entry")
	}
	if s := c2.Stats(); s.Corrupt != 1 {
		t.Errorf("corrupt = %d, want 1", s.Corrupt)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("truncated file not deleted: %v", err)
	}
}

// TestDiskEvictionLRU: with a byte budget, the least-recently-used entries
// leave disk first, and a read refreshes an entry's recency.
func TestDiskEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	frameSize := int64(len(encodeFrame(payload)))

	// Budget for exactly three entries.
	c, err := New(dir, 3*frameSize)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 4)
	for i := range keys {
		keys[i], _ = Key(map[string]int{"i": i})
	}
	for _, k := range keys[:3] {
		if _, _, err := c.GetOrCompute(context.Background(), k, func(context.Context) ([]byte, error) { return payload, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Touch keys[0] and keys[2] via a fresh instance so recency comes from
	// disk reads (startup mtime order can tie), then insert a fourth entry:
	// keys[1] is now unambiguously the LRU and must go.
	c2, err := New(dir, 3*frameSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{keys[0], keys[2]} {
		if _, ok := c2.Peek(k); !ok {
			t.Fatal("warm entry missing")
		}
	}
	if _, _, err := c2.GetOrCompute(context.Background(), keys[3], func(context.Context) ([]byte, error) { return payload, nil }); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, keys[1]+".json")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("LRU entry %s survived eviction: %v", keys[1][:8], err)
	}
	for _, k := range []string{keys[0], keys[2], keys[3]} {
		if _, err := os.Stat(filepath.Join(dir, k+".json")); err != nil {
			t.Errorf("entry %s evicted out of order: %v", k[:8], err)
		}
	}
	s := c2.Stats()
	if s.Evicted != 1 || s.DiskEntries != 3 || s.DiskBytes != 3*frameSize {
		t.Errorf("stats = %+v, want 1 evicted / 3 entries / %d bytes", s, 3*frameSize)
	}
}

// TestStartupTrimsOversizedCorpus: an existing corpus larger than the
// budget is trimmed (oldest first) when the cache opens.
func TestStartupTrimsOversizedCorpus(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("y"), 50)
	frameSize := int64(len(encodeFrame(payload)))
	c1, _ := New(dir, 0)
	for i := 0; i < 5; i++ {
		k, _ := Key(map[string]int{"i": i})
		c1.GetOrCompute(context.Background(), k, func(context.Context) ([]byte, error) { return payload, nil })
	}

	c2, err := New(dir, 2*frameSize)
	if err != nil {
		t.Fatal(err)
	}
	if s := c2.Stats(); s.DiskEntries != 2 || s.Evicted != 3 {
		t.Errorf("stats after trim = %+v, want 2 entries / 3 evicted", s)
	}
}

// TestCanceledComputeCachesNothing: a computation that returns its
// context's error must leave no trace — no memory entry, no disk file —
// so the next caller recomputes cleanly.
func TestCanceledComputeCachesNothing(t *testing.T) {
	dir := t.TempDir()
	c, _ := New(dir, 0)
	key, _ := Key(map[string]int{"seed": 9})

	ctx, cancel := context.WithCancel(context.Background())
	_, _, err := c.GetOrCompute(ctx, key, func(ctx context.Context) ([]byte, error) {
		cancel()
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, ok := c.Peek(key); ok {
		t.Fatal("canceled run left a memory entry")
	}
	if _, err := os.Stat(filepath.Join(dir, key+".json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("canceled run left a disk file: %v", err)
	}

	// Resubmission recomputes and caches normally.
	want := []byte("fresh")
	v, hit, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) { return want, nil })
	if err != nil || hit || !bytes.Equal(v, want) {
		t.Fatalf("resubmit: v=%q hit=%v err=%v", v, hit, err)
	}
}

// TestWaiterCancelLeavesFlightRunning: a coalesced waiter that gives up
// gets ctx.Err() immediately, while the leader's computation completes and
// caches for everyone else.
func TestWaiterCancelLeavesFlightRunning(t *testing.T) {
	c, _ := New("", 0)
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
			<-gate
			return []byte("v"), nil
		})
	}()
	// Wait until the leader's flight is registered.
	for {
		c.mu.Lock()
		_, inflight := c.inflight["k"]
		c.mu.Unlock()
		if inflight {
			break
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, "k", func(context.Context) ([]byte, error) {
		t.Error("waiter ran compute despite in-flight leader")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(gate)
	<-leaderDone
	if v, ok := c.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("leader result lost: ok=%v v=%q", ok, v)
	}
}

// TestOldFormatEntriesRecompute: pre-frame (raw payload) files from before
// the checksum format fail the frame check and recompute rather than being
// served with unverifiable integrity.
func TestOldFormatEntriesRecompute(t *testing.T) {
	dir := t.TempDir()
	key, _ := Key(map[string]int{"legacy": 1})
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte(`{"old":"format"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, _ := New(dir, 0)
	want := []byte(`{"new":"format"}`)
	v, hit, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) { return want, nil })
	if err != nil || hit || !bytes.Equal(v, want) {
		t.Fatalf("legacy entry: v=%q hit=%v err=%v, want recompute", v, hit, err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{{}, []byte("a"), bytes.Repeat([]byte{0}, 1000)} {
		got, ok := decodeFrame(encodeFrame(payload))
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("round trip failed for %d-byte payload", len(payload))
		}
	}
	if _, ok := decodeFrame([]byte("garbage")); ok {
		t.Error("decodeFrame accepted garbage")
	}
	if _, ok := decodeFrame(nil); ok {
		t.Error("decodeFrame accepted nil")
	}
}
