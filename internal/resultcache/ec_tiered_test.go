package resultcache

import (
	"bytes"
	"context"
	"os"
	"testing"

	"eccparity/internal/blob"
	"eccparity/internal/blob/ec"
)

// newECShared builds a k=4,m=2 erasure-coded shared tier over six fresh
// shard roots and returns both the backend and the root dirs so tests can
// damage individual shards.
func newECShared(t *testing.T) (*ec.Backend, []string) {
	t.Helper()
	dirs := ec.DeriveRoots(t.TempDir(), 6)
	b, err := ec.OpenFS(4, 2, dirs)
	if err != nil {
		t.Fatal(err)
	}
	return b, dirs
}

// reopenEC returns a fresh backend over the same shard roots — fresh repair
// counters, same on-disk state — modeling another replica on the mount.
func reopenEC(t *testing.T, dirs []string) *ec.Backend {
	t.Helper()
	b, err := ec.OpenFS(4, 2, dirs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// publishEC computes a result through a throwaway cache backed by the EC
// tier and flushes the write-behind publish, seeding all k+m shards.
func publishEC(t *testing.T, shared blob.Backend, key string, val []byte) {
	t.Helper()
	c, err := New(t.TempDir(), 0, WithShared(shared))
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		return val, nil
	}); err != nil || hit {
		t.Fatalf("seed compute: hit=%v err=%v", hit, err)
	}
	c.FlushShared()
	if s := c.Stats(); s.SharedPublished != 1 {
		t.Fatalf("SharedPublished = %d, want 1", s.SharedPublished)
	}
}

// Losing up to m shard roots is invisible to callers: the read is still a
// shared hit with byte-identical payload and zero recomputes, and the
// degraded read surfaces in SharedRepaired rather than in any error counter.
func TestECSharedDegradedReadIsHitWithRepair(t *testing.T) {
	shared, dirs := newECShared(t)
	key := mustKey(t, map[string]string{"experiment": "fig8", "ec": "degraded"})
	want := []byte(`{"experiment":"fig8","rows":[4,2]}`)
	publishEC(t, shared, key, want)

	// Kill two whole shard roots — the worst in-budget failure.
	for _, d := range dirs[1:3] {
		if err := os.RemoveAll(d); err != nil {
			t.Fatal(err)
		}
	}

	c, err := New(t.TempDir(), 0, WithShared(reopenEC(t, dirs)))
	if err != nil {
		t.Fatal(err)
	}
	got, hit, err := c.GetOrCompute(context.Background(), key, noCompute(t))
	if err != nil || !hit {
		t.Fatalf("degraded read: hit=%v err=%v", hit, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("degraded bytes = %q, want %q", got, want)
	}
	s := c.Stats()
	if s.SharedHits != 1 || s.Misses != 0 || s.SharedCorrupt != 0 || s.SharedErrors != 0 {
		t.Fatalf("stats after degraded hit = %+v", s)
	}
	if s.SharedRepaired == 0 {
		t.Fatalf("SharedRepaired = 0, want > 0 (degraded read must rebuild lost shards)")
	}
}

// Beyond the parity budget the EC tier reports ErrCorrupt like any other
// backend: the caller recomputes, counts SharedCorrupt, and the write-behind
// publish re-seeds a full stripe that fresh replicas then hit.
func TestECSharedBeyondBudgetRecomputesAndRepairs(t *testing.T) {
	shared, dirs := newECShared(t)
	key := mustKey(t, "ec-beyond-budget")
	want := []byte(`{"good":"bytes"}`)
	publishEC(t, shared, key, want)

	// m+1 roots gone: only 3 of k=4 data-equivalent shards survive.
	for _, d := range dirs[:3] {
		if err := os.RemoveAll(d); err != nil {
			t.Fatal(err)
		}
	}

	c, err := New(t.TempDir(), 0, WithShared(reopenEC(t, dirs)))
	if err != nil {
		t.Fatal(err)
	}
	computes := 0
	got, hit, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		computes++
		return want, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hit || computes != 1 || !bytes.Equal(got, want) {
		t.Fatalf("beyond-budget read: hit=%v computes=%d bytes=%q", hit, computes, got)
	}
	if s := c.Stats(); s.SharedCorrupt != 1 {
		t.Fatalf("SharedCorrupt = %d, want 1 (stats %+v)", s.SharedCorrupt, s)
	}

	// The recompute's publish rebuilds the full stripe; a fresh replica
	// with an empty local cache serves it without computing.
	c.FlushShared()
	fresh, err := New(t.TempDir(), 0, WithShared(reopenEC(t, dirs)))
	if err != nil {
		t.Fatal(err)
	}
	got2, hit2, err := fresh.GetOrCompute(context.Background(), key, noCompute(t))
	if err != nil || !hit2 || !bytes.Equal(got2, want) {
		t.Fatalf("repaired read: hit=%v err=%v bytes=%q", hit2, err, got2)
	}
}

// Shard roots that error (dead mounts, not clean misses) are transport
// failures: the cache counts SharedErrors, recomputes locally, and the EC
// backend must not delete the surviving shards — they become readable again
// when the mounts return.
func TestECSharedTransportErrorsDegrade(t *testing.T) {
	shared, dirs := newECShared(t)
	key := mustKey(t, "ec-transport")
	want := []byte("still served locally")
	publishEC(t, shared, key, want)

	// Rebuild the backend with m+1 roots replaced by erroring mounts: one
	// surviving shard is below k, and the errors make it a transport
	// failure rather than a corruption verdict.
	roots := make([]blob.Backend, 6)
	for i, d := range dirs {
		if i < 5 {
			roots[i] = failingBackend{}
			continue
		}
		fsRoot, err := blob.NewFS(d)
		if err != nil {
			t.Fatal(err)
		}
		roots[i] = fsRoot
	}
	degraded, err := ec.New(4, 2, roots)
	if err != nil {
		t.Fatal(err)
	}

	c, err := New(t.TempDir(), 0, WithShared(degraded))
	if err != nil {
		t.Fatal(err)
	}
	computes := 0
	got, hit, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		computes++
		return want, nil
	})
	if err != nil || hit || computes != 1 || !bytes.Equal(got, want) {
		t.Fatalf("transport-degraded read: hit=%v err=%v computes=%d bytes=%q", hit, err, computes, got)
	}
	c.FlushShared() // publish also fails: < k roots writable
	s := c.Stats()
	if s.SharedErrors < 2 { // failed read + failed publish
		t.Fatalf("SharedErrors = %d, want >= 2 (stats %+v)", s.SharedErrors, s)
	}
	if s.SharedCorrupt != 0 {
		t.Fatalf("SharedCorrupt = %d, want 0: transport errors must not count as corruption", s.SharedCorrupt)
	}
	if s.ShardErrors == 0 {
		t.Fatalf("ShardErrors = 0, want > 0 (per-shard failures must surface in Stats)")
	}

	// The surviving shard was NOT deleted: with all mounts back, the
	// original stripe reconstructs (one shard plus the k+m-1 healthy roots
	// untouched by this degraded backend still hold their shards).
	healed, err := reopenEC(t, dirs).Get(context.Background(), key)
	if err != nil || !bytes.Equal(healed, want) {
		t.Fatalf("after mounts return: err=%v bytes=%q, want original payload", err, healed)
	}
}
