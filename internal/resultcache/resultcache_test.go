package resultcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyDeterministicAndSensitive(t *testing.T) {
	type cfg struct {
		Experiment string  `json:"experiment"`
		Seed       int64   `json:"seed"`
		Cycles     float64 `json:"cycles"`
	}
	a1, err := Key(cfg{"fig1", 1, 8000})
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := Key(cfg{"fig1", 1, 8000})
	b, _ := Key(cfg{"fig1", 2, 8000})
	if a1 != a2 {
		t.Errorf("same config hashed differently: %s vs %s", a1, a2)
	}
	if a1 == b {
		t.Error("different seeds collapsed to one key")
	}
	if !validKey.MatchString(a1) {
		t.Errorf("key %q is not 64 hex chars", a1)
	}
}

// TestSingleflight is the satellite-task regression: N concurrent
// submissions of the same key execute the underlying computation exactly
// once, and every caller gets the same bytes.
func TestSingleflight(t *testing.T) {
	c, err := New("", 0)
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	gate := make(chan struct{})
	const callers = 32

	var wg sync.WaitGroup
	vals := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute(context.Background(), "k1", func(context.Context) ([]byte, error) {
				computes.Add(1)
				<-gate // hold the flight open until all callers have arrived
				return []byte("payload"), nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for %d concurrent callers, want 1", n, callers)
	}
	for i, v := range vals {
		if !bytes.Equal(v, []byte("payload")) {
			t.Fatalf("caller %d got %q", i, v)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1", s.Misses)
	}
	if s.Hits+s.Coalesced != callers-1 {
		t.Errorf("hits(%d)+coalesced(%d) = %d, want %d", s.Hits, s.Coalesced, s.Hits+s.Coalesced, callers-1)
	}
}

// TestHitReturnsOriginalBytes: a cache hit returns bytes identical to the
// original run, and the caller cannot corrupt the cached copy.
func TestHitReturnsOriginalBytes(t *testing.T) {
	c, _ := New("", 0)
	orig := []byte(`{"experiment":"fig8","text":"=== Fig. 8 ==="}`)
	v1, hit, err := c.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) { return orig, nil })
	if err != nil || hit {
		t.Fatalf("first call: hit=%v err=%v, want miss/nil", hit, err)
	}
	v1[0] = 'X' // a caller mutating its copy must not poison the cache
	v2, hit, err := c.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) {
		t.Fatal("compute ran on a warm key")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("second call: hit=%v err=%v, want hit/nil", hit, err)
	}
	if !bytes.Equal(v2, orig) {
		t.Fatalf("cache hit bytes %q != original %q", v2, orig)
	}
	if v3, ok := c.Get("k"); !ok || !bytes.Equal(v3, orig) {
		t.Fatalf("Get: ok=%v bytes=%q", ok, v3)
	}
}

func TestDiskPersistenceAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	key, _ := Key(map[string]int{"seed": 1})
	c1, err := New(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig := []byte("result-bytes")
	if _, _, err := c1.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) { return orig, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".json")); err != nil {
		t.Fatalf("result not persisted: %v", err)
	}

	// A fresh instance (daemon restart) serves the bytes without computing.
	c2, _ := New(dir, 0)
	v, hit, err := c2.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		t.Fatal("compute ran despite on-disk result")
		return nil, nil
	})
	if err != nil || !hit || !bytes.Equal(v, orig) {
		t.Fatalf("restart read: hit=%v err=%v bytes=%q", hit, err, v)
	}
	if s := c2.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Errorf("restart stats = %+v, want 1 hit 0 misses", s)
	}
}

func TestComputeErrorSharedAndRetryable(t *testing.T) {
	c, _ := New("", 0)
	boom := errors.New("boom")
	calls := 0
	if _, _, err := c.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) { calls++; return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Errors are not cached: the next caller retries.
	v, hit, err := c.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) { calls++; return []byte("ok"), nil })
	if err != nil || hit || !bytes.Equal(v, []byte("ok")) {
		t.Fatalf("retry: v=%q hit=%v err=%v", v, hit, err)
	}
	if calls != 2 {
		t.Errorf("compute calls = %d, want 2", calls)
	}
}

func TestPeekDoesNotCountHits(t *testing.T) {
	c, _ := New("", 0)
	c.GetOrCompute(context.Background(), "k", func(context.Context) ([]byte, error) { return []byte("v"), nil })
	before := c.Stats().Hits
	if v, ok := c.Peek("k"); !ok || string(v) != "v" {
		t.Fatalf("Peek: ok=%v v=%q", ok, v)
	}
	if _, ok := c.Peek("absent"); ok {
		t.Error("Peek(absent) = true")
	}
	if after := c.Stats().Hits; after != before {
		t.Errorf("Peek changed hit counter: %d → %d", before, after)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	c, _ := New(t.TempDir(), 0)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key, _ := Key(map[string]int{"i": i})
			want := []byte(fmt.Sprintf("val-%d", i))
			for j := 0; j < 4; j++ {
				v, _, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) { return want, nil })
				if err != nil || !bytes.Equal(v, want) {
					t.Errorf("key %d: v=%q err=%v", i, v, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if s := c.Stats(); s.Entries != 16 || s.Misses != 16 {
		t.Errorf("stats = %+v, want 16 entries / 16 misses", s)
	}
}
