package cache

import (
	"testing"
	"testing/quick"
)

func TestHitAfterMiss(t *testing.T) {
	c := New(8<<20, 16, 64)
	hit, _, _ := c.Access(0x1000, Data, false)
	if hit {
		t.Fatal("first access must miss")
	}
	hit, _, _ = c.Access(0x1000, Data, false)
	if !hit {
		t.Fatal("second access must hit")
	}
	if c.Stats().Hits[Data] != 1 || c.Stats().Misses[Data] != 1 {
		t.Fatalf("stats wrong: %+v", c.Stats())
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	c := New(8<<20, 16, 128)
	c.Access(0x1000, Data, false)
	if hit, _, _ := c.Access(0x1040, Data, false); !hit {
		t.Fatal("offset within a 128B line must hit — this is the large-line spatial-locality effect")
	}
}

func TestKindsDoNotAlias(t *testing.T) {
	c := New(8<<20, 16, 64)
	c.Access(0x2000, Data, false)
	if hit, _, _ := c.Access(0x2000, XOR, false); hit {
		t.Fatal("same address with different kind must not hit")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := New(1<<10, 1, 64) // 16 sets, direct mapped: easy conflicts
	c.Access(0x0, Data, true)
	// Same set: addresses 16 lines apart.
	_, victim, evicted := c.Access(16*64, Data, false)
	if !evicted || !victim.Dirty || victim.Addr != 0 || victim.Kind != Data {
		t.Fatalf("dirty victim not reported: %+v (evicted=%v)", victim, evicted)
	}
	if c.Stats().Evictions[Data] != 1 {
		t.Fatal("eviction not counted")
	}
}

func TestCleanEvictionReported(t *testing.T) {
	c := New(1<<10, 1, 64)
	c.Access(0x0, Data, false)
	_, victim, evicted := c.Access(16*64, Data, false)
	if !evicted || victim.Dirty {
		t.Fatalf("clean victim mis-reported: %+v (evicted=%v)", victim, evicted)
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(2*64, 2, 64) // 1 set, 2 ways
	c.Access(0, Data, false)
	c.Access(64, Data, false)
	c.Access(0, Data, false) // touch 0: 64 becomes LRU
	_, victim, evicted := c.Access(128, Data, false)
	if !evicted || victim.Addr != 64 {
		t.Fatalf("LRU victim should be 64, got %+v (evicted=%v)", victim, evicted)
	}
}

func TestWriteSetsDirty(t *testing.T) {
	c := New(2*64, 2, 64)
	c.Access(0, Data, false)
	c.Access(0, Data, true) // hit-write dirties
	c.Access(64, Data, false)
	_, victim, evicted := c.Access(128, Data, false) // evicts 0
	if !evicted || !victim.Dirty {
		t.Fatalf("hit-write must dirty the line: %+v (evicted=%v)", victim, evicted)
	}
}

func TestProbeDoesNotAllocate(t *testing.T) {
	c := New(8<<20, 16, 64)
	if c.Probe(0x3000, ECC) {
		t.Fatal("probe of absent line")
	}
	if c.Stats().Misses[ECC] != 0 {
		t.Fatal("probe must not count as a miss")
	}
	c.Access(0x3000, ECC, false)
	if !c.Probe(0x3000, ECC) {
		t.Fatal("probe of present line")
	}
}

func TestAllocateMatchesProbeThenAccess(t *testing.T) {
	// Allocate is the prefetcher's Probe-then-Access pair fused into one
	// scan: a present line is left untouched, an absent one fills exactly
	// like a missing Access.
	c := New(2*64, 2, 64)
	if present, _, _ := c.Allocate(0, Data); present {
		t.Fatal("allocate of absent line must report absent")
	}
	if !c.Probe(0, Data) {
		t.Fatal("allocate must fill the line")
	}
	if c.Stats().Misses[Data] != 1 {
		t.Fatalf("allocate miss not counted: %+v", c.Stats())
	}
	// Present line: no hit count, no LRU promotion.
	c.Access(64, Data, false)
	if present, _, _ := c.Allocate(0, Data); !present {
		t.Fatal("allocate of present line must report present")
	}
	if c.Stats().Hits[Data] != 0 {
		t.Fatal("allocate of present line must not count a hit")
	}
	// 0 was not promoted by Allocate, so it is still the LRU victim.
	_, victim, evicted := c.Access(128, Data, false)
	if !evicted || victim.Addr != 0 {
		t.Fatalf("allocate must not touch LRU order: victim %+v (evicted=%v)", victim, evicted)
	}
	// Allocate can itself evict.
	c2 := New(1<<10, 1, 64)
	c2.Access(0, Data, true)
	if _, v, ev := c2.Allocate(16*64, Data); !ev || v.Addr != 0 || !v.Dirty {
		t.Fatalf("allocate eviction wrong: %+v (evicted=%v)", v, ev)
	}
}

func TestFlushDirty(t *testing.T) {
	c := New(1<<12, 4, 64)
	c.Access(0, Data, true)
	c.Access(64, XOR, true)
	c.Access(128, ECC, false)
	var flushed []Evicted
	c.FlushDirty(func(e Evicted) { flushed = append(flushed, e) })
	if len(flushed) != 2 {
		t.Fatalf("flushed %d lines, want 2 dirty", len(flushed))
	}
	// Flushing twice must be a no-op.
	n := 0
	c.FlushDirty(func(Evicted) { n++ })
	if n != 0 {
		t.Fatal("second flush must find nothing dirty")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two sets must panic")
		}
	}()
	New(3*64, 1, 64)
}

func TestWorkingSetBehaviour(t *testing.T) {
	// A working set within capacity converges to ~0 miss rate; one at 2×
	// capacity thrashes. This anchors the workload calibration.
	c := New(1<<16, 16, 64) // 64KB
	small := 512            // lines = 32KB
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < small; i++ {
			c.Access(uint64(i*64), Data, false)
		}
	}
	if mr := c.Stats().MissRate(Data); mr > 0.3 {
		t.Fatalf("fitting working set miss rate %v", mr)
	}
	c2 := New(1<<16, 16, 64)
	big := 2048 // 128KB working set in a 64KB cache
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < big; i++ {
			c2.Access(uint64(i*64), Data, false)
		}
	}
	if mr := c2.Stats().MissRate(Data); mr < 0.9 {
		t.Fatalf("thrashing working set miss rate %v", mr)
	}
}

func TestAccessInvariants(t *testing.T) {
	// Property: hits+misses equals accesses; evictions ≤ misses.
	c := New(1<<14, 8, 64)
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			c.Access(uint64(a)*64, Data, a%3 == 0)
		}
		s := c.Stats()
		return s.Evictions[Data] <= s.Misses[Data]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
