package cache

import (
	"testing"

	"eccparity/internal/raceflag"
)

// TestAccessSteadyStateAllocs pins the zero-allocation property of the
// access path: misses, hits, evictions and prefetch fills must all run
// without touching the heap, since the simulation engine performs tens of
// millions of them per run.
func TestAccessSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	c := New(1<<16, 16, 64)
	addr := uint64(0)
	n := testing.AllocsPerRun(1000, func() {
		c.Access(addr, Data, true)  // miss (evicting once the cache fills)
		c.Access(addr, Data, false) // hit
		c.Allocate(addr+64, Data)   // prefetch-style fill
		addr += 64
	})
	if n != 0 {
		t.Fatalf("access path allocates %v per op, want 0", n)
	}
}
