// Package cache implements the shared last-level cache model: set
// associative, LRU, write-back/write-allocate, with unified handling of
// demand data lines and the ECC-related lines the paper's optimizations
// cache alongside them (Fig. 7): ECC lines (stored correction bits / GEC)
// and XOR cachelines (compacted parity-update accumulators).
//
// ECC-related lines are inserted with the same insertion and replacement
// policy as data lines, as §IV-C of the paper models.
//
// The cache sits on the simulator's hottest path (every warmup and demand
// access scans one set), so the layout is tuned hard: each way is a single
// uint64 packing the line address, kind, dirty and valid bits, and each
// set keeps its ways physically ordered most-recently-used first. LRU
// needs no timestamps — a hit rotates its way to the front, an insert
// lands at the front, and the victim is simply the last way. Valid ways
// always form a prefix (lines are never invalidated), so scans stop at
// the first zero key and a whole 16-way set spans two cache lines.
package cache

import "fmt"

// Kind classifies a cached line.
type Kind int

// Line kinds.
const (
	Data Kind = iota
	ECC       // a line of stored ECC correction bits (or GEC/T2EC)
	XOR       // an XOR cacheline accumulating parity updates (Eq. 1)
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case ECC:
		return "ecc"
	case XOR:
		return "xor"
	}
	return "?"
}

// Evicted describes a line pushed out by an allocation.
type Evicted struct {
	Addr  uint64
	Kind  Kind
	Dirty bool
}

// Stats counts cache events per line kind.
type Stats struct {
	Hits      [numKinds]uint64
	Misses    [numKinds]uint64
	Evictions [numKinds]uint64
}

// MissRate returns the miss rate for a kind.
func (s *Stats) MissRate(k Kind) float64 {
	total := s.Hits[k] + s.Misses[k]
	if total == 0 {
		return 0
	}
	return float64(s.Misses[k]) / float64(total)
}

// A way's key packs the line address (bits 3+), the kind+1 (bits 1-2, so
// key==0 means invalid) and the dirty flag (bit 0).
const dirtyBit = 1

// packKey builds the clean-line key for (lineAddr, kind).
func packKey(la uint64, kind Kind) uint64 {
	return la<<3 | uint64(kind+1)<<1
}

// unpack recovers the eviction record from a valid key.
func unpack(key uint64, lineBytes int) Evicted {
	return Evicted{
		Addr:  (key >> 3) * uint64(lineBytes),
		Kind:  Kind((key>>1)&3) - 1,
		Dirty: key&dirtyBit != 0,
	}
}

// Cache is a set-associative LRU cache indexed by byte address.
type Cache struct {
	keys      []uint64 // nsets × ways, flat; each set MRU-first
	ways      int
	lineBytes int
	lineShift uint
	setMask   uint64
	stats     Stats
}

// New builds a cache. sizeBytes/lineBytes/ways must yield a power-of-two
// set count and lineBytes must be a power of two.
func New(sizeBytes, ways, lineBytes int) *Cache {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic(fmt.Sprintf("cache: line size %d not a power of two", lineBytes))
	}
	lines := sizeBytes / lineBytes
	nsets := lines / ways
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nsets))
	}
	var shift uint
	for 1<<shift != lineBytes {
		shift++
	}
	return &Cache{
		keys:      make([]uint64, nsets*ways),
		ways:      ways,
		lineBytes: lineBytes,
		lineShift: shift,
		setMask:   uint64(nsets - 1),
	}
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Geometry reports the construction parameters (size, ways, line bytes), so
// a pooling caller can decide whether this cache can be Reset and reused
// for a new configuration instead of reallocated.
func (c *Cache) Geometry() (sizeBytes, ways, lineBytes int) {
	return len(c.keys) * c.lineBytes, c.ways, c.lineBytes
}

// Reset invalidates every line and zeroes the counters, returning the
// cache to its exact post-New state without reallocating the (potentially
// megabyte-scale) key array.
func (c *Cache) Reset() {
	clear(c.keys)
	c.stats = Stats{}
}

// Stats returns the event counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// set returns the ways of the set holding line address la, MRU first.
func (c *Cache) set(la uint64) []uint64 {
	base := int(la&c.setMask) * c.ways
	return c.keys[base : base+c.ways]
}

// insert places a new line at the set's MRU position. vi is the way being
// consumed: the first invalid way, or the LRU tail when the set is full.
// Everything above it slides down one position.
func (c *Cache) insert(set []uint64, want uint64, kind Kind, vi int) (victim Evicted, evicted bool) {
	c.stats.Misses[kind]++
	if old := set[vi]; old != 0 {
		victim = unpack(old, c.lineBytes)
		evicted = true
		c.stats.Evictions[victim.Kind]++
	}
	copy(set[1:vi+1], set[:vi])
	set[0] = want
	return victim, evicted
}

// Access looks up addr; on a miss it allocates, possibly evicting. The
// victim (valid only when evicted is true) lets the caller issue the
// writeback and any ECC-maintenance traffic; its Dirty field says whether
// a writeback is due.
//
// Recency order is positional: the hit path rotates the touched way to
// the front of the set. This is observably identical to timestamp LRU —
// the victim choice depends only on the relative recency of the ways, and
// which of several invalid ways a fill consumes is never visible.
func (c *Cache) Access(addr uint64, kind Kind, write bool) (hit bool, victim Evicted, evicted bool) {
	la := addr >> c.lineShift
	set := c.set(la)
	want := packKey(la, kind)
	vi := c.ways - 1
	for i, k := range set {
		if k&^uint64(dirtyBit) == want {
			if write {
				k |= dirtyBit
			}
			copy(set[1:i+1], set[:i])
			set[0] = k
			c.stats.Hits[kind]++
			return true, Evicted{}, false
		}
		if k == 0 {
			vi = i
			break
		}
	}
	if write {
		want |= dirtyBit
	}
	victim, evicted = c.insert(set, want, kind, vi)
	return false, victim, evicted
}

// Allocate fills addr like a missing Access would, but leaves an already
// present line completely untouched — no LRU promotion, no hit count —
// exactly as if the caller had Probed first and skipped the Access. This
// is the prefetcher's probe-then-fill pair fused into one set scan.
func (c *Cache) Allocate(addr uint64, kind Kind) (present bool, victim Evicted, evicted bool) {
	la := addr >> c.lineShift
	set := c.set(la)
	want := packKey(la, kind)
	vi := c.ways - 1
	for i, k := range set {
		if k&^uint64(dirtyBit) == want {
			return true, Evicted{}, false
		}
		if k == 0 {
			vi = i
			break
		}
	}
	victim, evicted = c.insert(set, want, kind, vi)
	return false, victim, evicted
}

// Probe reports whether addr is cached with the given kind, without
// touching LRU state or allocating.
func (c *Cache) Probe(addr uint64, kind Kind) bool {
	la := addr >> c.lineShift
	want := packKey(la, kind)
	for _, k := range c.set(la) {
		if k&^uint64(dirtyBit) == want {
			return true
		}
		if k == 0 {
			return false
		}
	}
	return false
}

// FlushDirty evicts every dirty line, invoking fn for each; used at the end
// of a simulation to drain pending writebacks.
func (c *Cache) FlushDirty(fn func(Evicted)) {
	for i, k := range c.keys {
		if k&dirtyBit != 0 {
			fn(unpack(k, c.lineBytes))
			c.keys[i] = k &^ dirtyBit
		}
	}
}
