// Package cache implements the shared last-level cache model: set
// associative, LRU, write-back/write-allocate, with unified handling of
// demand data lines and the ECC-related lines the paper's optimizations
// cache alongside them (Fig. 7): ECC lines (stored correction bits / GEC)
// and XOR cachelines (compacted parity-update accumulators).
//
// ECC-related lines are inserted with the same insertion and replacement
// policy as data lines, as §IV-C of the paper models.
package cache

import "fmt"

// Kind classifies a cached line.
type Kind int

// Line kinds.
const (
	Data Kind = iota
	ECC       // a line of stored ECC correction bits (or GEC/T2EC)
	XOR       // an XOR cacheline accumulating parity updates (Eq. 1)
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case ECC:
		return "ecc"
	case XOR:
		return "xor"
	}
	return "?"
}

// Evicted describes a line pushed out by an allocation.
type Evicted struct {
	Addr  uint64
	Kind  Kind
	Dirty bool
}

// Stats counts cache events per line kind.
type Stats struct {
	Hits      [numKinds]uint64
	Misses    [numKinds]uint64
	Evictions [numKinds]uint64
}

// MissRate returns the miss rate for a kind.
func (s *Stats) MissRate(k Kind) float64 {
	total := s.Hits[k] + s.Misses[k]
	if total == 0 {
		return 0
	}
	return float64(s.Misses[k]) / float64(total)
}

type entry struct {
	valid bool
	tag   uint64 // line address (addr / lineBytes)
	kind  Kind
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative LRU cache indexed by byte address.
type Cache struct {
	sets      [][]entry
	ways      int
	lineBytes int
	setMask   uint64
	tick      uint64
	stats     Stats
}

// New builds a cache. sizeBytes/lineBytes/ways must yield a power-of-two
// set count.
func New(sizeBytes, ways, lineBytes int) *Cache {
	lines := sizeBytes / lineBytes
	nsets := lines / ways
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nsets))
	}
	sets := make([][]entry, nsets)
	backing := make([]entry, nsets*ways)
	for i := range sets {
		sets[i], backing = backing[:ways], backing[ways:]
	}
	return &Cache{sets: sets, ways: ways, lineBytes: lineBytes, setMask: uint64(nsets - 1)}
}

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Stats returns the event counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// lineAddr converts a byte address to a line address.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr / uint64(c.lineBytes) }

// Access looks up addr; on a miss it allocates, possibly evicting. The
// returned Evicted (nil if none, or the victim was clean and the caller
// asked only for dirty victims via its Dirty field) lets the caller issue
// the writeback and any ECC-maintenance traffic.
func (c *Cache) Access(addr uint64, kind Kind, write bool) (hit bool, victim *Evicted) {
	la := c.lineAddr(addr)
	set := c.sets[la&c.setMask]
	c.tick++
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == la && e.kind == kind {
			e.used = c.tick
			if write {
				e.dirty = true
			}
			c.stats.Hits[kind]++
			return true, nil
		}
	}
	c.stats.Misses[kind]++
	// Choose victim: invalid way first, else LRU.
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].used < set[vi].used {
			vi = i
		}
	}
	v := &set[vi]
	if v.valid {
		victim = &Evicted{Addr: v.tag * uint64(c.lineBytes), Kind: v.kind, Dirty: v.dirty}
		c.stats.Evictions[v.kind]++
	}
	*v = entry{valid: true, tag: la, kind: kind, dirty: write, used: c.tick}
	return false, victim
}

// Probe reports whether addr is cached with the given kind, without
// touching LRU state or allocating.
func (c *Cache) Probe(addr uint64, kind Kind) bool {
	la := c.lineAddr(addr)
	set := c.sets[la&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == la && set[i].kind == kind {
			return true
		}
	}
	return false
}

// FlushDirty evicts every dirty line, invoking fn for each; used at the end
// of a simulation to drain pending writebacks.
func (c *Cache) FlushDirty(fn func(Evicted)) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			e := &c.sets[si][wi]
			if e.valid && e.dirty {
				fn(Evicted{Addr: e.tag * uint64(c.lineBytes), Kind: e.kind, Dirty: true})
				e.dirty = false
			}
		}
	}
}
