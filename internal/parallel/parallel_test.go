package parallel

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		got, err := Map(context.Background(), 57, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 57 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	_, err := Map(context.Background(), 40, workers, func(_ context.Context, i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", p, workers)
	}
}

func TestMapZeroTasks(t *testing.T) {
	got, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		t.Fatal("must not run")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapErrorCancelsRemaining(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Map(context.Background(), 1000, 2, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("error did not cancel the campaign: %d tasks ran", n)
	}
}

func TestMapPanicCaptured(t *testing.T) {
	_, err := Map(context.Background(), 10, 4, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "task 5 panicked: kaboom") {
		t.Fatalf("panic not captured: %v", err)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := Map(ctx, 100, 4, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran under a cancelled context", ran.Load())
	}
}

func TestCollect(t *testing.T) {
	got := Collect(9, 4, func(i int) string { return strings.Repeat("x", i) })
	for i, s := range got {
		if len(s) != i {
			t.Fatalf("result[%d] = %q", i, s)
		}
	}
}

func TestCollectRepanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Collect must re-raise task panics")
		}
	}()
	Collect(4, 2, func(i int) int {
		if i == 2 {
			panic("inner")
		}
		return i
	})
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), 100, 8, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestWorkersClamp(t *testing.T) {
	if w := Workers(0, 10); w < 1 {
		t.Fatalf("default workers %d", w)
	}
	if w := Workers(64, 3); w != 3 {
		t.Fatalf("workers not clamped to task count: %d", w)
	}
	if w := Workers(2, 10); w != 2 {
		t.Fatalf("explicit workers changed: %d", w)
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "trials", 3)
	p.Step()
	p.Step()
	p.Step()
	out := buf.String()
	if !strings.Contains(out, "trials 3/3") {
		t.Fatalf("missing final tick: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("final tick must end the line: %q", out)
	}
	var nilP *Progress
	nilP.Step() // must not panic
	if NewProgress(nil, "x", 5) != nil || NewProgress(&buf, "x", 0) != nil {
		t.Fatal("degenerate progress must be the nil no-op")
	}
}
