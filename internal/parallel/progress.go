package parallel

import (
	"fmt"
	"io"
	"sync"
)

// Progress is a done/total ticker for long campaigns, redrawn in place with
// carriage returns (the CLIs point it at stderr so stdout stays
// byte-identical at any worker count). All methods are safe for concurrent
// use, and a nil *Progress is a valid no-op — callers thread it through
// unconditionally.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	label string
	total int
	done  int
}

// NewProgress builds a ticker writing to w; a nil writer or non-positive
// total returns the nil no-op Progress.
func NewProgress(w io.Writer, label string, total int) *Progress {
	if w == nil || total <= 0 {
		return nil
	}
	return &Progress{w: w, label: label, total: total}
}

// Step records one completed task and redraws the line; the final step
// terminates it with a newline.
func (p *Progress) Step() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	fmt.Fprintf(p.w, "\r%s %d/%d", p.label, p.done, p.total)
	if p.done >= p.total {
		fmt.Fprintln(p.w)
	}
}
