// Package parallel provides the bounded worker-pool runner behind every
// fan-out in this repository: the Monte Carlo campaigns of the fault model
// (Figs. 2/8/18 and Table III's EOL columns run thousands of independent
// lifetimes) and the (scheme × workload) simulation grids of the evaluation
// (Figs. 9–17 run sixteen independent simulations per scheme).
//
// The contract that matters for reproducibility: tasks are identified by
// index, results are collected in index order, and nothing a task computes
// may depend on scheduling. Callers that need randomness derive one RNG per
// task index (see faultmodel.TrialSeed), so a campaign's output is
// bit-identical at any worker count — workers=1 and workers=NumCPU produce
// the same bytes.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers clamps a requested worker count to [1, n]: values ≤ 0 select
// runtime.NumCPU(), and the pool never exceeds n, the number of tasks.
func Workers(requested, n int) int {
	if requested <= 0 {
		requested = runtime.NumCPU()
	}
	if requested > n {
		requested = n
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// and returns the n results in index order. The first error — or the first
// captured panic, converted to an error carrying the task index and stack —
// cancels the context seen by the remaining tasks and is returned after all
// running tasks drain. Tasks not yet started when the failure occurs are
// skipped (their result slots keep T's zero value).
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	var next atomic.Int64
	var firstErr error
	var failOnce sync.Once
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				res, err := capture(ctx, i, fn)
				if err != nil {
					fail(err)
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	return results, firstErr
}

// capture invokes fn for one task, converting a panic into an error so a
// single bad task cannot kill the whole campaign's process.
func capture[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: task %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(ctx, i)
}

// Collect is Map for infallible tasks: no context, no errors. It is the
// form the Monte Carlo and simulation grids use. A panic inside fn is
// re-raised in the caller (wrapped with the task index and stack).
func Collect[T any](n, workers int, fn func(i int) T) []T {
	out, err := CollectCtx(context.Background(), n, workers, fn)
	if err != nil {
		// Background is never canceled, so this is unreachable; keep the
		// panic-restore contract anyway.
		panic(err)
	}
	return out
}

// CollectCtx is Collect with cancellation: infallible tasks, but the pool
// polls ctx between tasks and returns ctx's error once it is canceled (the
// result slice is partial and must be discarded). Tasks themselves are
// short by contract — one Monte Carlo trial, one grid cell — so the
// between-task poll bounds how long a cancel can be outstanding; long
// tasks (e.g. sim.RunContext cells) additionally poll ctx internally. A
// panic inside fn is re-raised in the caller, as in Collect.
func CollectCtx[T any](ctx context.Context, n, workers int, fn func(i int) T) ([]T, error) {
	out, err := Map(ctx, n, workers, func(_ context.Context, i int) (T, error) {
		return fn(i), nil
	})
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		// fn returns no errors, so anything else is a captured panic.
		panic(err)
	}
	return out, err
}

// ForEach runs fn over [0, n) with Map's pooling, cancellation and panic
// capture, discarding results.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, n, workers, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
