package ec

import (
	"bytes"
	"context"
	"testing"

	"eccparity/internal/blob"
	"eccparity/internal/gf"
)

// BenchmarkECEncodeDecode measures the pure striping cost of the (4,2)
// geometry on a result-document-sized payload: encode all six shards, then
// reconstruct from four survivors (two data shards erased — the worst
// in-budget case, every missing shard needing matrix inversion).
func BenchmarkECEncodeDecode(b *testing.B) {
	const payloadLen = 64 << 10
	const k, m = 4, 2
	st := gf.NewStriper(k, m)
	shardLen := (payloadLen + k - 1) / k

	payload := bytes.Repeat([]byte("eccparity stripe benchmark body."), payloadLen/32)
	shards := make([][]byte, k+m)
	backing := make([][]byte, k+m)
	for i := range shards {
		backing[i] = make([]byte, shardLen)
		if i < k {
			copy(backing[i], payload[i*shardLen:min((i+1)*shardLen, payloadLen)])
		}
		shards[i] = backing[i]
	}

	b.SetBytes(payloadLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range shards {
			shards[j] = backing[j]
		}
		if err := st.EncodeShards(shards); err != nil {
			b.Fatal(err)
		}
		shards[0], shards[2] = nil, nil
		if err := st.ReconstructShards(shards); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedGetDegraded measures the full degraded read path the
// resultcache sees when m shard roots are dead mounts: fetch the surviving
// shards from disk, vote the stripe group, reconstruct, verify the
// end-to-end checksum, and skip the unreachable roots during repair. The
// dead mounts keep the tier permanently degraded, so every iteration pays
// the reconstruction — the steady state a half-failed fleet lives in.
func BenchmarkSharedGetDegraded(b *testing.B) {
	const payloadLen = 64 << 10
	dirs := DeriveRoots(b.TempDir(), 6)
	healthy, err := OpenFS(4, 2, dirs)
	if err != nil {
		b.Fatal(err)
	}
	key := testKey("bench-degraded")
	payload := bytes.Repeat([]byte("degraded read benchmark payload."), payloadLen/32)
	if err := healthy.Put(context.Background(), key, payload); err != nil {
		b.Fatal(err)
	}

	roots := make([]blob.Backend, 6)
	for i, d := range dirs {
		if i == 1 || i == 4 {
			roots[i] = failRoot{}
			continue
		}
		fs, err := blob.NewFS(d)
		if err != nil {
			b.Fatal(err)
		}
		roots[i] = fs
	}
	degraded, err := New(4, 2, roots)
	if err != nil {
		b.Fatal(err)
	}

	b.SetBytes(payloadLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := degraded.Get(context.Background(), key)
		if err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			b.Fatal("degraded read returned wrong bytes")
		}
	}
}
