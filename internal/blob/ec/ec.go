// Package ec is the erasure-coded shared result tier: a blob.Backend that
// stripes every payload into k data + m parity shards (systematic
// Reed–Solomon over GF(2^8), internal/gf.Striper) and spreads them over
// k+m independent backend roots — shard directories on distinct machines
// or mounts in production. Get reconstructs the payload from any k
// surviving shards, so up to m lost, corrupt, or unreachable roots degrade
// a read to a rebuild instead of a recompute — the paper's ECC-parity
// move, one parity resource amortized across N independent channels,
// applied to the fleet's result store instead of a memory system.
//
// A read that served through damage repairs it: reconstructed shards are
// rewritten to their roots best-effort, so one degraded Get heals the
// stripe for every replica that follows. All shard-level failures and
// repairs are counted and surfaced through blob.RepairStatter.
package ec

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"

	"eccparity/internal/blob"
	"eccparity/internal/gf"
)

// shardMagic opens every shard payload, ahead of the space-separated
// geometry (k, m, shard index), the unpadded payload length, and the
// payload's SHA-256 — everything Get needs to regroup a stripe and verify
// the reconstruction end to end. Each shard is additionally framed and
// checksummed by its own root backend, so a torn shard write is detected
// there; the header's hash guards the cross-shard reassembly.
const shardMagic = "eccsh1"

// Backend stripes payloads across len(roots) == k+m blob backends. Safe
// for concurrent use when the roots are (blob.FS is).
type Backend struct {
	k, m    int
	roots   []blob.Backend
	striper *gf.Striper

	repaired    atomic.Uint64
	shardErrors atomic.Uint64
}

// New builds an erasure-coded backend over exactly k+m roots. Root order
// is part of the stripe layout and must match across every replica that
// shares the tier.
func New(k, m int, roots []blob.Backend) (*Backend, error) {
	if k < 1 || m < 1 || k+m > 255 {
		return nil, fmt.Errorf("ec: invalid geometry k=%d m=%d (need k ≥ 1, m ≥ 1, k+m ≤ 255)", k, m)
	}
	if len(roots) != k+m {
		return nil, fmt.Errorf("ec: %d shard roots for a (%d data + %d parity) stripe; need exactly %d", len(roots), k, m, k+m)
	}
	return &Backend{k: k, m: m, roots: roots, striper: gf.NewStriper(k, m)}, nil
}

// OpenFS builds an erasure-coded backend over filesystem roots: one
// blob.FS per directory in dirs (len(dirs) must be k+m). DeriveRoots
// produces the conventional single-base layout.
func OpenFS(k, m int, dirs []string) (*Backend, error) {
	roots := make([]blob.Backend, len(dirs))
	for i, d := range dirs {
		fs, err := blob.NewFS(d)
		if err != nil {
			return nil, fmt.Errorf("ec: shard root %d: %w", i, err)
		}
		roots[i] = fs
	}
	return New(k, m, roots)
}

// DeriveRoots returns the conventional shard-root paths under one base
// directory: <base>/shard-00 … <base>/shard-<n-1>. A deployment with
// genuinely independent mounts passes explicit roots instead.
func DeriveRoots(base string, n int) []string {
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("shard-%02d", i))
	}
	return dirs
}

// K returns the data shard count.
func (b *Backend) K() int { return b.k }

// M returns the parity shard count.
func (b *Backend) M() int { return b.m }

// RepairStats implements blob.RepairStatter.
func (b *Backend) RepairStats() blob.RepairStats {
	return blob.RepairStats{Repaired: b.repaired.Load(), ShardErrors: b.shardErrors.Load()}
}

// shardLen returns the per-shard byte count for a payload of plen bytes.
func (b *Backend) shardLen(plen int) int {
	return (plen + b.k - 1) / b.k
}

// encodeShard wraps one shard's bytes in the stripe header.
func encodeShard(k, m, idx, plen int, sum string, body []byte) []byte {
	head := fmt.Sprintf("%s %d %d %d %d %s\n", shardMagic, k, m, idx, plen, sum)
	out := make([]byte, 0, len(head)+len(body))
	out = append(out, head...)
	return append(out, body...)
}

// shardHeader is the parsed stripe header of one shard.
type shardHeader struct {
	k, m, idx, plen int
	sum             string
}

// stripeID is the part of the header every shard of one stripe must agree
// on; shards are grouped by it before reconstruction.
func (h shardHeader) stripeID() string {
	return fmt.Sprintf("%d/%d/%d/%s", h.k, h.m, h.plen, h.sum)
}

// decodeShard splits a stored shard into header and body, ok=false for
// anything malformed.
func decodeShard(raw []byte) (shardHeader, []byte, bool) {
	var h shardHeader
	nl := -1
	for i, c := range raw {
		if c == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return h, nil, false
	}
	var magic string
	n, err := fmt.Sscanf(string(raw[:nl]), "%s %d %d %d %d %s", &magic, &h.k, &h.m, &h.idx, &h.plen, &h.sum)
	if err != nil || n != 6 || magic != shardMagic || h.plen < 0 || len(h.sum) != 64 {
		return h, nil, false
	}
	return h, raw[nl+1:], true
}

// Put implements blob.Backend: encode the payload into k+m shards and
// write one to each root. A write that lands at least k shards succeeds —
// the stripe is reconstructable and a later degraded read repairs the
// holes — with the failures counted as shard errors; fewer than k landed
// shards is a failed publish.
func (b *Backend) Put(ctx context.Context, key string, payload []byte) error {
	if !blob.ValidKey(key) {
		return blob.ErrBadKey
	}
	sum := sha256.Sum256(payload)
	sumHex := hex.EncodeToString(sum[:])
	size := b.shardLen(len(payload))
	padded := make([]byte, b.k*size)
	copy(padded, payload)
	shards := make([][]byte, b.k+b.m)
	for i := 0; i < b.k; i++ {
		shards[i] = padded[i*size : (i+1)*size]
	}
	for j := 0; j < b.m; j++ {
		shards[b.k+j] = make([]byte, size)
	}
	if err := b.striper.EncodeShards(shards); err != nil {
		return fmt.Errorf("ec: %w", err)
	}
	written := 0
	var firstErr error
	for i, root := range b.roots {
		if err := root.Put(ctx, key, encodeShard(b.k, b.m, i, len(payload), sumHex, shards[i])); err != nil {
			b.shardErrors.Add(1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		written++
	}
	if written < b.k {
		return fmt.Errorf("ec: only %d/%d shards written (need %d): %w", written, len(b.roots), b.k, firstErr)
	}
	return nil
}

// shardState classifies one root's fetch outcome during Get.
type shardState int

const (
	shardOK      shardState = iota // fetched and well-formed
	shardMissing                   // root answered ErrNotFound
	shardCorrupt                   // unreadable header, wrong index, or root reported ErrCorrupt
	shardErrored                   // transport/IO failure — the root is unreachable, not empty
)

// Get implements blob.Backend: fetch every root's shard, group the
// well-formed ones by stripe identity, and reconstruct the payload from
// the largest consistent group when it has at least k members — serving
// straight through up to m missing or corrupt shards. Reconstructed reads
// verify the header's payload SHA-256 end to end and then repair the
// damaged roots with the rebuilt shards.
//
// With fewer than k usable shards the error mirrors the single-copy
// contract: any unreachable root makes the whole read a transport error
// (the stripe may still be whole — nothing is deleted); otherwise leftover
// inconsistent shards are deleted and reported as ErrCorrupt, and a fully
// absent stripe is ErrNotFound.
func (b *Backend) Get(ctx context.Context, key string) ([]byte, error) {
	if !blob.ValidKey(key) {
		return nil, blob.ErrBadKey
	}
	n := len(b.roots)
	states := make([]shardState, n)
	headers := make([]shardHeader, n)
	bodies := make([][]byte, n)
	var transportErr error
	for i, root := range b.roots {
		raw, err := root.Get(ctx, key)
		switch {
		case err == nil:
			h, body, ok := decodeShard(raw)
			if !ok || h.idx != i || h.k != b.k || h.m != b.m || len(body) != b.shardLen(h.plen) {
				states[i] = shardCorrupt
				b.shardErrors.Add(1)
				continue
			}
			states[i], headers[i], bodies[i] = shardOK, h, body
		case errors.Is(err, blob.ErrNotFound):
			states[i] = shardMissing
		case errors.Is(err, blob.ErrCorrupt):
			// The root already deleted the damaged shard.
			states[i] = shardCorrupt
			b.shardErrors.Add(1)
		default:
			states[i] = shardErrored
			b.shardErrors.Add(1)
			if transportErr == nil {
				transportErr = err
			}
		}
	}

	// Group consistent shards by stripe identity and take the largest
	// group: shards left over from an older geometry or a different payload
	// generation lose the vote and are treated as corrupt.
	groups := map[string][]int{}
	for i := range b.roots {
		if states[i] == shardOK {
			id := headers[i].stripeID()
			groups[id] = append(groups[id], i)
		}
	}
	var best []int
	for _, members := range groups {
		if len(members) > len(best) {
			best = members
		}
	}

	if len(best) < b.k {
		if transportErr != nil {
			return nil, fmt.Errorf("ec: %w", transportErr)
		}
		sawShards := false
		for i := range b.roots {
			if states[i] != shardMissing {
				sawShards = true
			}
		}
		if !sawShards {
			return nil, blob.ErrNotFound
		}
		// An unreconstructable remnant: delete the stragglers so the next
		// read is a clean miss, mirroring the single-copy corrupt contract.
		for _, root := range b.roots {
			root.Delete(ctx, key)
		}
		return nil, blob.ErrCorrupt
	}

	head := headers[best[0]]
	inGroup := make([]bool, n)
	for _, i := range best {
		inGroup[i] = true
	}
	shards := make([][]byte, n)
	for _, i := range best {
		shards[i] = bodies[i]
	}
	degraded := len(best) < n
	if err := b.striper.ReconstructShards(shards); err != nil {
		return nil, fmt.Errorf("ec: %w", err)
	}
	padded := make([]byte, 0, b.k*b.shardLen(head.plen))
	for i := 0; i < b.k; i++ {
		padded = append(padded, shards[i]...)
	}
	if head.plen > len(padded) {
		return nil, blob.ErrCorrupt
	}
	payload := padded[:head.plen]
	if sum := sha256.Sum256(payload); hex.EncodeToString(sum[:]) != head.sum {
		// The stripe reassembled into wrong bytes — unrecoverable; delete
		// it so the caller's recompute can republish a clean one.
		for _, root := range b.roots {
			root.Delete(ctx, key)
		}
		return nil, blob.ErrCorrupt
	}

	if degraded {
		b.repair(ctx, key, head, shards, inGroup, states)
	}
	return payload, nil
}

// repair rewrites the shards a degraded Get reconstructed, skipping roots
// whose fetch failed with a transport error (the mount is down; writing
// would fail too). Best-effort: a failed rewrite is counted and left for
// the next degraded read.
func (b *Backend) repair(ctx context.Context, key string, head shardHeader, shards [][]byte, inGroup []bool, states []shardState) {
	for i, root := range b.roots {
		if inGroup[i] || states[i] == shardErrored {
			continue
		}
		if err := root.Put(ctx, key, encodeShard(b.k, b.m, i, head.plen, head.sum, shards[i])); err != nil {
			b.shardErrors.Add(1)
			continue
		}
		b.repaired.Add(1)
	}
}

// Delete implements blob.Backend: remove the key's shard from every root.
// Missing shards are not errors; the first transport failure is returned
// after every root has been tried.
func (b *Backend) Delete(ctx context.Context, key string) error {
	if !blob.ValidKey(key) {
		return blob.ErrBadKey
	}
	var firstErr error
	for _, root := range b.roots {
		if err := root.Delete(ctx, key); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// List implements blob.Backend: every key whose shard count across the
// reachable roots is at least k — i.e. every reconstructable stripe.
// Unreachable roots are skipped (and counted) as long as at least k roots
// answered; fewer and the listing itself fails.
func (b *Backend) List(ctx context.Context) ([]string, error) {
	counts := map[string]int{}
	answered := 0
	var firstErr error
	for _, root := range b.roots {
		keys, err := root.List(ctx)
		if err != nil {
			b.shardErrors.Add(1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		answered++
		for _, k := range keys {
			counts[k]++
		}
	}
	if answered < b.k {
		return nil, fmt.Errorf("ec: only %d/%d shard roots listable (need %d): %w", answered, len(b.roots), b.k, firstErr)
	}
	var out []string
	for k, c := range counts {
		if c >= b.k {
			out = append(out, k)
		}
	}
	return out, nil
}
