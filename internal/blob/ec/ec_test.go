package ec

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"eccparity/internal/blob"
)

func testKey(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// newECFS builds a (k, m) backend over fresh FS shard roots under one base
// temp dir, returning the backend and the root directories.
func newECFS(t *testing.T, k, m int) (*Backend, []string) {
	t.Helper()
	dirs := DeriveRoots(t.TempDir(), k+m)
	b, err := OpenFS(k, m, dirs)
	if err != nil {
		t.Fatal(err)
	}
	return b, dirs
}

// shardPath mirrors blob.FS's fan-out layout inside one shard root.
func shardPath(root, key string) string {
	return filepath.Join(root, key[:2], key+".blob")
}

func TestECRoundTrip(t *testing.T) {
	ctx := context.Background()
	b, _ := newECFS(t, 4, 2)
	payloads := [][]byte{
		[]byte{},
		[]byte("x"),
		[]byte("exactly sixteen!"),              // multiple of k
		[]byte(`{"experiment":"fig8","n":17}`),  // non-multiple
		bytes.Repeat([]byte("stripe me "), 500), // multi-KB
	}
	for i, want := range payloads {
		k := testKey(fmt.Sprintf("rt-%d", i))
		if err := b.Put(ctx, k, want); err != nil {
			t.Fatalf("payload %d: Put: %v", i, err)
		}
		got, err := b.Get(ctx, k)
		if err != nil {
			t.Fatalf("payload %d: Get: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("payload %d: Get = %q, want %q", i, got, want)
		}
	}
	if s := b.RepairStats(); s.Repaired != 0 || s.ShardErrors != 0 {
		t.Fatalf("clean round trips recorded damage: %+v", s)
	}
}

func TestECGetNotFound(t *testing.T) {
	b, _ := newECFS(t, 2, 1)
	if _, err := b.Get(context.Background(), testKey("missing")); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
}

func TestECBadKey(t *testing.T) {
	b, _ := newECFS(t, 2, 1)
	ctx := context.Background()
	if err := b.Put(ctx, "nope", nil); !errors.Is(err, blob.ErrBadKey) {
		t.Fatalf("Put = %v, want ErrBadKey", err)
	}
	if _, err := b.Get(ctx, "nope"); !errors.Is(err, blob.ErrBadKey) {
		t.Fatalf("Get = %v, want ErrBadKey", err)
	}
	if err := b.Delete(ctx, "nope"); !errors.Is(err, blob.ErrBadKey) {
		t.Fatalf("Delete = %v, want ErrBadKey", err)
	}
}

// The core guarantee, exhaustively: at k=4, m=2, deleting ANY two shard
// roots leaves every payload readable byte-identically, the degraded read
// repairs the deleted shards, and the following read is clean.
func TestECAnyTwoRootsLostStillServesAndRepairs(t *testing.T) {
	ctx := context.Background()
	want := []byte(`{"rows":[1,2,3],"pad":"abcdefghijklmnopqrstuvwxyz"}`)
	const n = 6
	for a := 0; a < n; a++ {
		for c := a + 1; c < n; c++ {
			t.Run(fmt.Sprintf("lost_%d_%d", a, c), func(t *testing.T) {
				b, dirs := newECFS(t, 4, 2)
				k := testKey(fmt.Sprintf("loss-%d-%d", a, c))
				if err := b.Put(ctx, k, want); err != nil {
					t.Fatal(err)
				}
				for _, i := range []int{a, c} {
					if err := os.RemoveAll(dirs[i]); err != nil {
						t.Fatal(err)
					}
				}
				got, err := b.Get(ctx, k)
				if err != nil {
					t.Fatalf("degraded Get: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("degraded Get = %q, want %q", got, want)
				}
				if s := b.RepairStats(); s.Repaired != 2 {
					t.Fatalf("Repaired = %d, want 2", s.Repaired)
				}
				// The repair healed the stripe: both shard files are back
				// and a fresh backend over the same roots reads cleanly.
				for _, i := range []int{a, c} {
					if _, err := os.Stat(shardPath(dirs[i], k)); err != nil {
						t.Fatalf("shard root %d not repaired: %v", i, err)
					}
				}
				fresh, err := OpenFS(4, 2, dirs)
				if err != nil {
					t.Fatal(err)
				}
				if got, err := fresh.Get(ctx, k); err != nil || !bytes.Equal(got, want) {
					t.Fatalf("post-repair Get = %q, %v", got, err)
				}
				if s := fresh.RepairStats(); s.Repaired != 0 || s.ShardErrors != 0 {
					t.Fatalf("post-repair read still degraded: %+v", s)
				}
			})
		}
	}
}

// Up to m corrupt shards are voted out, served through, and repaired; the
// roots' own frame checks delete the bit-rotted files.
func TestECCorruptShardsServedAndRepaired(t *testing.T) {
	ctx := context.Background()
	b, dirs := newECFS(t, 4, 2)
	want := []byte("payload that outlives bit rot in two of six shards")
	k := testKey("corrupt-2")
	if err := b.Put(ctx, k, want); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 4} {
		if err := os.WriteFile(shardPath(dirs[i], k), []byte("garbage, not a frame"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := b.Get(ctx, k)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Get through 2 corrupt shards = %q, %v", got, err)
	}
	s := b.RepairStats()
	if s.Repaired != 2 || s.ShardErrors != 2 {
		t.Fatalf("stats = %+v, want 2 repaired / 2 shard errors", s)
	}
	// Healed: every shard decodes again.
	fresh, _ := OpenFS(4, 2, dirs)
	if got, err := fresh.Get(ctx, k); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("post-repair Get = %q, %v", got, err)
	}
}

// A shard left over from an older geometry loses the stripe vote and is
// replaced, not trusted.
func TestECStaleGeometryShardVotedOut(t *testing.T) {
	ctx := context.Background()
	b, dirs := newECFS(t, 4, 2)
	want := []byte("current generation bytes")
	k := testKey("stale-geom")
	if err := b.Put(ctx, k, want); err != nil {
		t.Fatal(err)
	}
	// Plant a well-framed shard with mismatched geometry in root 0 — as if
	// the fleet was re-deployed from (5,1) to (4,2) without wiping the tier.
	stale, err := blob.NewFS(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := stale.Put(ctx, k, encodeShard(5, 1, 0, 3, testKey("other"), []byte("x"))); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get(ctx, k)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Get with stale shard = %q, %v", got, err)
	}
	if s := b.RepairStats(); s.Repaired != 1 {
		t.Fatalf("stale shard not repaired: %+v", s)
	}
}

// More than m destroyed shards is unrecoverable: ErrCorrupt, and the
// leftover shards are deleted so the next read is a clean miss — exactly
// the single-copy backend's corrupt contract.
func TestECTooManyCorruptIsErrCorruptAndCleansUp(t *testing.T) {
	ctx := context.Background()
	b, dirs := newECFS(t, 4, 2)
	want := []byte("three dead shards cannot be survived at m=2")
	k := testKey("corrupt-3")
	if err := b.Put(ctx, k, want); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 5} {
		if err := os.WriteFile(shardPath(dirs[i], k), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Get(ctx, k); !errors.Is(err, blob.ErrCorrupt) {
		t.Fatalf("Get = %v, want ErrCorrupt", err)
	}
	for i, d := range dirs {
		if _, err := os.Stat(shardPath(d, k)); !os.IsNotExist(err) {
			t.Fatalf("shard %d not cleaned up after unrecoverable stripe", i)
		}
	}
	if _, err := b.Get(ctx, k); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("second Get = %v, want ErrNotFound", err)
	}
}

// failRoot simulates an unreachable shard root (a dead mount): every
// operation returns a transport error.
type failRoot struct{}

var errMountGone = errors.New("mount gone")

func (failRoot) Put(context.Context, string, []byte) error   { return errMountGone }
func (failRoot) Get(context.Context, string) ([]byte, error) { return nil, errMountGone }
func (failRoot) Delete(context.Context, string) error        { return errMountGone }
func (failRoot) List(context.Context) ([]string, error)      { return nil, errMountGone }

// mixedRoots builds a (4,2) backend whose listed root indices are dead
// mounts; the rest are FS roots seeded by a healthy twin backend.
func mixedRoots(t *testing.T, dead ...int) (healthy, mixed *Backend, key string, want []byte) {
	t.Helper()
	dirs := DeriveRoots(t.TempDir(), 6)
	healthy, err := OpenFS(4, 2, dirs)
	if err != nil {
		t.Fatal(err)
	}
	want = []byte("bytes behind a partially dead tier")
	key = testKey("transport")
	if err := healthy.Put(context.Background(), key, want); err != nil {
		t.Fatal(err)
	}
	roots := make([]blob.Backend, 6)
	for i, d := range dirs {
		fs, err := blob.NewFS(d)
		if err != nil {
			t.Fatal(err)
		}
		roots[i] = fs
	}
	for _, i := range dead {
		roots[i] = failRoot{}
	}
	mixed, err = New(4, 2, roots)
	if err != nil {
		t.Fatal(err)
	}
	return healthy, mixed, key, want
}

// Up to m unreachable roots: the read serves from the survivors. The dead
// roots are NOT written to (repair skips them) and nothing is deleted.
func TestECTransportErrorsWithinBudgetServe(t *testing.T) {
	_, mixed, key, want := mixedRoots(t, 1, 4)
	got, err := mixed.Get(context.Background(), key)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Get with 2 dead mounts = %q, %v", got, err)
	}
	s := mixed.RepairStats()
	if s.ShardErrors != 2 {
		t.Fatalf("ShardErrors = %d, want 2", s.ShardErrors)
	}
	if s.Repaired != 0 {
		t.Fatalf("Repaired = %d, want 0 (dead mounts must not be repair targets)", s.Repaired)
	}
}

// More than m unreachable roots: the read is a transport error — never
// ErrNotFound or ErrCorrupt, and the surviving shards must not be deleted
// (the stripe is probably fine; the mounts are not).
func TestECTransportErrorsBeyondBudgetFailWithoutDeleting(t *testing.T) {
	healthy, mixed, key, want := mixedRoots(t, 0, 2, 3)
	_, err := mixed.Get(context.Background(), key)
	if err == nil || errors.Is(err, blob.ErrNotFound) || errors.Is(err, blob.ErrCorrupt) {
		t.Fatalf("Get with 3 dead mounts = %v, want a transport error", err)
	}
	// The healthy twin still reads everything: no shard was deleted.
	got, err := healthy.Get(context.Background(), key)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("healthy Get after failed degraded read = %q, %v", got, err)
	}
}

// A publish that lands at least k shards succeeds (degraded write), and a
// later read heals the hole once the root returns; fewer than k landed
// shards is a failed publish.
func TestECPutDegradedWrites(t *testing.T) {
	ctx := context.Background()
	dirs := DeriveRoots(t.TempDir(), 6)
	roots := make([]blob.Backend, 6)
	for i, d := range dirs {
		fs, err := blob.NewFS(d)
		if err != nil {
			t.Fatal(err)
		}
		roots[i] = fs
	}
	roots[5] = failRoot{}
	b, err := New(4, 2, roots)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("degraded-put")
	want := []byte("five of six shards land")
	if err := b.Put(ctx, key, want); err != nil {
		t.Fatalf("Put with 1 dead root = %v, want success", err)
	}
	if s := b.RepairStats(); s.ShardErrors != 1 {
		t.Fatalf("ShardErrors = %d, want 1", s.ShardErrors)
	}
	if got, err := b.Get(ctx, key); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("Get after degraded put = %q, %v", got, err)
	}

	// 3 dead roots at k=4: the stripe can never reach k shards.
	for _, i := range []int{1, 3} {
		roots[i] = failRoot{}
	}
	b2, err := New(4, 2, roots)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Put(ctx, testKey("failed-put"), want); err == nil {
		t.Fatal("Put with only 3 writable roots succeeded; want error")
	}
}

func TestECDeleteIdempotent(t *testing.T) {
	ctx := context.Background()
	b, dirs := newECFS(t, 2, 1)
	key := testKey("del")
	if err := b.Delete(ctx, key); err != nil {
		t.Fatalf("Delete(missing) = %v", err)
	}
	if err := b.Put(ctx, key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(ctx, key); err != nil {
		t.Fatal(err)
	}
	for i, d := range dirs {
		if _, err := os.Stat(shardPath(d, key)); !os.IsNotExist(err) {
			t.Fatalf("shard %d survived Delete", i)
		}
	}
	if _, err := b.Get(ctx, key); !errors.Is(err, blob.ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
}

// List returns only reconstructable stripes, skips stray files planted in
// shard roots, tolerates up to m unreachable roots, and fails below k.
func TestECList(t *testing.T) {
	ctx := context.Background()
	b, dirs := newECFS(t, 4, 2)
	keys := []string{testKey("l1"), testKey("l2"), testKey("l3")}
	for _, k := range keys {
		if err := b.Put(ctx, k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Strays in the shard roots are skipped, not listed and not errors.
	os.WriteFile(filepath.Join(dirs[0], "README"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dirs[1], keys[0][:2], "stray.txt"), []byte("x"), 0o644)
	// A stripe degraded below k members must not be listed.
	partial := testKey("gone")
	if err := b.Put(ctx, partial, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs[:3] {
		os.Remove(shardPath(d, partial))
	}

	got, err := b.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}

	// m unreachable roots: still listable. k+ unreachable: error.
	roots := make([]blob.Backend, 6)
	for i, d := range dirs {
		fs, _ := blob.NewFS(d)
		roots[i] = fs
	}
	roots[0], roots[5] = failRoot{}, failRoot{}
	degraded, _ := New(4, 2, roots)
	if got, err := degraded.List(ctx); err != nil || len(got) != len(keys) {
		t.Fatalf("degraded List = %v, %v", got, err)
	}
	roots[1] = failRoot{}
	dead, _ := New(4, 2, roots)
	if _, err := dead.List(ctx); err == nil {
		t.Fatal("List with 3 dead roots succeeded; want error")
	}
}

func TestECNewValidation(t *testing.T) {
	if _, err := New(0, 2, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(4, 0, nil); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := New(200, 100, make([]blob.Backend, 300)); err == nil {
		t.Fatal("k+m > 255 accepted")
	}
	if _, err := New(4, 2, make([]blob.Backend, 5)); err == nil {
		t.Fatal("root count != k+m accepted")
	}
}
