package blob

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func key(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	ctx := context.Background()
	fs, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key("hello")
	payload := []byte(`{"result": 42}`)
	if err := fs.Put(ctx, k, payload); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get(ctx, k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}
	// Overwrite is allowed and atomic.
	if err := fs.Put(ctx, k, payload); err != nil {
		t.Fatal(err)
	}
	if got, err = fs.Get(ctx, k); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get after overwrite = %q, %v", got, err)
	}
}

func TestGetNotFound(t *testing.T) {
	fs, _ := NewFS(t.TempDir())
	if _, err := fs.Get(context.Background(), key("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
}

func TestBadKeyRejected(t *testing.T) {
	fs, _ := NewFS(t.TempDir())
	ctx := context.Background()
	for _, k := range []string{"", "abc", "../../../../etc/passwd", key("x") + "0"} {
		if err := fs.Put(ctx, k, []byte("p")); !errors.Is(err, ErrBadKey) {
			t.Errorf("Put(%q) = %v, want ErrBadKey", k, err)
		}
		if _, err := fs.Get(ctx, k); !errors.Is(err, ErrBadKey) {
			t.Errorf("Get(%q) = %v, want ErrBadKey", k, err)
		}
		if err := fs.Delete(ctx, k); !errors.Is(err, ErrBadKey) {
			t.Errorf("Delete(%q) = %v, want ErrBadKey", k, err)
		}
	}
}

// A corrupted blob — truncated or bit-flipped — must be detected, deleted,
// and reported as ErrCorrupt, never returned.
func TestCorruptFrameDetectedAndDeleted(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	fs, _ := NewFS(dir)
	cases := map[string][]byte{
		key("truncated"): EncodeFrame([]byte("the full payload"))[:20],
		key("bitflip"):   flipLastByte(EncodeFrame([]byte("the full payload"))),
		key("garbage"):   []byte("not a frame at all"),
		key("badmagic"):  append([]byte("xxxxx1 "), EncodeFrame([]byte("p"))[7:]...),
	}
	for name, data := range cases {
		p := filepath.Join(dir, name[:2], name+".blob")
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Get(ctx, name); !errors.Is(err, ErrCorrupt) {
			t.Errorf("Get(%s) = %v, want ErrCorrupt", name, err)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("corrupt blob %s not deleted", name)
		}
		// Second read: the corpse is gone, so it's a plain miss.
		if _, err := fs.Get(ctx, name); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%s) after delete = %v, want ErrNotFound", name, err)
		}
	}
}

func flipLastByte(b []byte) []byte {
	out := append([]byte(nil), b...)
	out[len(out)-1] ^= 0xff
	return out
}

// A crash between CreateTemp and rename strands a tmp file; NewFS must
// sweep such orphans from the root (legacy location) and the fan-out
// subdirectories (current location) so they cannot accumulate forever.
func TestNewFSSweepsTmpOrphans(t *testing.T) {
	dir := t.TempDir()
	k := key("orphaned")
	sub := filepath.Join(dir, k[:2])
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	orphans := []string{
		filepath.Join(dir, k+".tmp123456"), // legacy root-level orphan
		filepath.Join(sub, k+".tmp789"),    // fan-out orphan
	}
	for _, p := range orphans {
		if err := os.WriteFile(p, []byte("half-written frame"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A real blob in the same fan-out dir must survive the sweep.
	fs0, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs0.Put(context.Background(), k, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	for _, p := range orphans {
		if err := os.WriteFile(p, []byte("half-written frame"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := NewFS(dir); err != nil {
		t.Fatal(err)
	}
	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived NewFS sweep", p)
		}
	}
	if got, err := fs0.Get(context.Background(), k); err != nil || string(got) != "keep me" {
		t.Fatalf("real blob damaged by sweep: %q, %v", got, err)
	}
}

// Put must never leave tmp files behind on the success path, and the tmp
// it uses must live in the key's fan-out directory (same-dir rename).
func TestPutLeavesNoTmpFiles(t *testing.T) {
	dir := t.TempDir()
	fs0, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := key("clean")
	if err := fs0.Put(context.Background(), k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			t.Errorf("tmp file %s left after successful Put", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The corrupt-delete race (TOCTOU): Get reads a corrupt frame, a
// concurrent Put renames a good blob into place, and Get's cleanup must
// NOT delete the new good blob. The race is forced deterministically via
// the corrupt-read hook, which runs between the read and the delete.
func TestCorruptDeleteRaceKeepsConcurrentPut(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	fs0, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := key("raced")
	good := []byte("the freshly published good payload")
	p := filepath.Join(dir, k[:2], k+".blob")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("corrupt junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs0.corruptReadHook = func(hk string) {
		if hk != k {
			t.Fatalf("hook key %q, want %q", hk, k)
		}
		// The interleaved writer: a replica publishing good bytes between
		// this reader's read and its delete.
		if err := fs0.Put(ctx, k, good); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs0.Get(ctx, k); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of corrupt frame = %v, want ErrCorrupt", err)
	}
	fs0.corruptReadHook = nil
	// Before the fix, the unconditional os.Remove deleted the concurrent
	// Put's blob and this read reported ErrNotFound.
	got, err := fs0.Get(ctx, k)
	if err != nil {
		t.Fatalf("Get after raced publish = %v, want the good blob", err)
	}
	if !bytes.Equal(got, good) {
		t.Fatalf("Get = %q, want %q", got, good)
	}
}

func TestDeleteIdempotent(t *testing.T) {
	ctx := context.Background()
	fs, _ := NewFS(t.TempDir())
	k := key("gone")
	if err := fs.Delete(ctx, k); err != nil {
		t.Fatalf("Delete(missing) = %v, want nil", err)
	}
	if err := fs.Put(ctx, k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(ctx, k); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get(ctx, k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
}

func TestList(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	fs, _ := NewFS(dir)
	want := []string{key("a"), key("b"), key("c")}
	for _, k := range want {
		if err := fs.Put(ctx, k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Stray files and tmp orphans must not be listed.
	os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, want[0][:2], "stray.txt"), []byte("x"), 0o644)
	got, err := fs.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

func TestCanceledContext(t *testing.T) {
	fs, _ := NewFS(t.TempDir())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k := key("ctx")
	if err := fs.Put(ctx, k, []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Put = %v, want context.Canceled", err)
	}
	if _, err := fs.Get(ctx, k); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get = %v, want context.Canceled", err)
	}
}
