package blob

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// FS is the filesystem Backend: one framed file per key under a root
// directory, fanned out into 256 subdirectories by the key's first hex byte
// so a large corpus never piles a million entries into one directory. The
// root can be a local path or a shared mount (NFS, SMB, a fuse'd object
// store) — writes are tmp-file + rename, which is atomic on POSIX
// filesystems and gives NFS readers the all-or-nothing visibility the
// Backend contract requires.
type FS struct {
	root string
}

// NewFS opens (creating if needed) a filesystem backend rooted at dir.
func NewFS(dir string) (*FS, error) {
	if dir == "" {
		return nil, fmt.Errorf("blob: empty backend directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	return &FS{root: dir}, nil
}

// path fans key out under root: <root>/<key[0:2]>/<key>.blob.
func (f *FS) path(key string) string {
	return filepath.Join(f.root, key[:2], key+".blob")
}

// Put implements Backend. The frame is written to a tmp file in the root
// and renamed into place, so a crash mid-write leaves only a tmp orphan,
// never a truncated blob under a valid key.
func (f *FS) Put(ctx context.Context, key string, payload []byte) error {
	if !ValidKey(key) {
		return ErrBadKey
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(f.path(key)), 0o755); err != nil {
		return fmt.Errorf("blob: %w", err)
	}
	tmp, err := os.CreateTemp(f.root, key+".tmp*")
	if err != nil {
		return fmt.Errorf("blob: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(EncodeFrame(payload)); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("blob: %w", err)
	}
	if err := os.Rename(name, f.path(key)); err != nil {
		os.Remove(name)
		return fmt.Errorf("blob: %w", err)
	}
	return nil
}

// Get implements Backend: read, verify the frame, and on any frame failure
// delete the damaged file and report ErrCorrupt so the caller recomputes
// instead of serving garbage — a corrupt blob must never outlive its first
// read, or it would poison every replica that trusts the shared tier.
func (f *FS) Get(ctx context.Context, key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, ErrBadKey
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(f.path(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	payload, ok := DecodeFrame(b)
	if !ok {
		os.Remove(f.path(key))
		return nil, ErrCorrupt
	}
	return payload, nil
}

// Delete implements Backend.
func (f *FS) Delete(ctx context.Context, key string) error {
	if !ValidKey(key) {
		return ErrBadKey
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := os.Remove(f.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("blob: %w", err)
	}
	return nil
}

// List implements Backend: every well-formed key found under the fan-out
// directories. Tmp orphans and stray files are skipped, not errors.
func (f *FS) List(ctx context.Context) ([]string, error) {
	var keys []string
	dirs, err := os.ReadDir(f.root)
	if err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	for _, d := range dirs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !d.IsDir() || len(d.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(f.root, d.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			key, ok := strings.CutSuffix(e.Name(), ".blob")
			if ok && ValidKey(key) && strings.HasPrefix(key, d.Name()) {
				keys = append(keys, key)
			}
		}
	}
	return keys, nil
}
