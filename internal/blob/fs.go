package blob

import (
	"context"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// FS is the filesystem Backend: one framed file per key under a root
// directory, fanned out into 256 subdirectories by the key's first hex byte
// so a large corpus never piles a million entries into one directory. The
// root can be a local path or a shared mount (NFS, SMB, a fuse'd object
// store) — writes are tmp-file + rename, which is atomic on POSIX
// filesystems and gives NFS readers the all-or-nothing visibility the
// Backend contract requires.
type FS struct {
	root string

	// corruptReadHook, when non-nil, runs after Get has read a frame that
	// fails verification and before it decides whether to delete the file.
	// Test-only: it lets the corrupt-delete race be forced deterministically
	// (a concurrent Put renaming a good blob into place at exactly that
	// moment).
	corruptReadHook func(key string)
}

// NewFS opens (creating if needed) a filesystem backend rooted at dir and
// sweeps tmp orphans: a crash between CreateTemp and the rename leaves a
// "<key>.tmp*" file behind, and nothing else would ever delete it.
func NewFS(dir string) (*FS, error) {
	if dir == "" {
		return nil, fmt.Errorf("blob: empty backend directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	f := &FS{root: dir}
	f.sweepOrphans()
	return f, nil
}

// sweepOrphans removes leftover tmp files from crashed writes, in the root
// (where older versions created them) and in the fan-out subdirectories
// (where Put creates them now). Best-effort: an orphan that cannot be
// removed is left for the next open.
func (f *FS) sweepOrphans() {
	sweepDir := func(dir string) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return
		}
		for _, e := range entries {
			if !e.IsDir() && strings.Contains(e.Name(), ".tmp") {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	sweepDir(f.root)
	dirs, err := os.ReadDir(f.root)
	if err != nil {
		return
	}
	for _, d := range dirs {
		if d.IsDir() && len(d.Name()) == 2 {
			sweepDir(filepath.Join(f.root, d.Name()))
		}
	}
}

// path fans key out under root: <root>/<key[0:2]>/<key>.blob.
func (f *FS) path(key string) string {
	return filepath.Join(f.root, key[:2], key+".blob")
}

// Put implements Backend. The frame is written to a tmp file in the key's
// own fan-out subdirectory and renamed into place: same-directory rename is
// atomic even when the fan-out dir is a different filesystem than an
// ill-chosen tmp location would be, and a crash mid-write leaves the orphan
// where NewFS's sweep finds it — never a truncated blob under a valid key.
func (f *FS) Put(ctx context.Context, key string, payload []byte) error {
	if !ValidKey(key) {
		return ErrBadKey
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(f.path(key)), 0o755); err != nil {
		return fmt.Errorf("blob: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(f.path(key)), key+".tmp*")
	if err != nil {
		return fmt.Errorf("blob: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(EncodeFrame(payload)); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("blob: %w", err)
	}
	if err := os.Rename(name, f.path(key)); err != nil {
		os.Remove(name)
		return fmt.Errorf("blob: %w", err)
	}
	return nil
}

// Get implements Backend: read, verify the frame, and on any frame failure
// delete the damaged file and report ErrCorrupt so the caller recomputes
// instead of serving garbage — a corrupt blob must never outlive its first
// read, or it would poison every replica that trusts the shared tier.
//
// The delete is conditional: between reading the corrupt frame and
// removing it, a concurrent Put can atomically rename a *good* blob into
// place (publishes are concurrent across the whole fleet), and an
// unconditional remove would destroy the fresh copy. The file's size and
// mtime are captured from the same open handle the bytes came from and
// compared against the path just before removal — if they changed, the
// corpse we read is already gone and the new blob is left alone.
func (f *FS) Get(ctx context.Context, key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, ErrBadKey
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	file, err := os.Open(f.path(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	readInfo, err := file.Stat()
	if err != nil {
		file.Close()
		return nil, fmt.Errorf("blob: %w", err)
	}
	b, err := io.ReadAll(file)
	file.Close()
	if err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	payload, ok := DecodeFrame(b)
	if !ok {
		if f.corruptReadHook != nil {
			f.corruptReadHook(key)
		}
		f.removeIfUnchanged(key, readInfo)
		return nil, ErrCorrupt
	}
	return payload, nil
}

// removeIfUnchanged deletes the key's file only if its size and mtime still
// match the handle the corrupt bytes were read from; a mismatch means a
// concurrent Put already replaced it and the replacement must survive.
func (f *FS) removeIfUnchanged(key string, readInfo fs.FileInfo) {
	now, err := os.Stat(f.path(key))
	if err != nil {
		return // already gone (or unreadable): nothing safe to do
	}
	if now.Size() != readInfo.Size() || !now.ModTime().Equal(readInfo.ModTime()) {
		return
	}
	os.Remove(f.path(key))
}

// Delete implements Backend.
func (f *FS) Delete(ctx context.Context, key string) error {
	if !ValidKey(key) {
		return ErrBadKey
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := os.Remove(f.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("blob: %w", err)
	}
	return nil
}

// List implements Backend: every well-formed key found under the fan-out
// directories. Tmp orphans and stray files are skipped, not errors.
func (f *FS) List(ctx context.Context) ([]string, error) {
	var keys []string
	dirs, err := os.ReadDir(f.root)
	if err != nil {
		return nil, fmt.Errorf("blob: %w", err)
	}
	for _, d := range dirs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !d.IsDir() || len(d.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(f.root, d.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			key, ok := strings.CutSuffix(e.Name(), ".blob")
			if ok && ValidKey(key) && strings.HasPrefix(key, d.Name()) {
				keys = append(keys, key)
			}
		}
	}
	return keys, nil
}
