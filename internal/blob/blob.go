// Package blob defines the pluggable shared-storage backend behind the
// result cache's second tier: a flat content-addressed namespace of
// checksummed payloads keyed by 64-hex-char SHA-256 addresses (the same
// keys internal/resultcache already uses). A backend is anything the whole
// fleet can reach — the filesystem implementation in this package covers an
// NFS/SMB shared mount out of the box and is layout-compatible with an
// S3-style object store (one object per key, atomic visibility, no partial
// reads).
//
// Every payload is framed ("eccbl1 " + SHA-256 hex + "\n" + payload) so a
// torn write, truncation, or bit rot on the shared medium is detected at
// read time and surfaced as ErrCorrupt rather than served: determinism
// makes every blob recomputable, so the only unforgivable failure is
// silently returning wrong bytes.
package blob

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"regexp"
	"strings"
)

// Errors a Backend reports. Anything else is a transport/IO failure the
// caller should treat as "tier unavailable", not as data state.
var (
	// ErrNotFound: no blob stored under the key.
	ErrNotFound = errors.New("blob: not found")
	// ErrCorrupt: a blob existed but failed its checksum frame; the backend
	// has already deleted it (it is unrecoverable and recomputable).
	ErrCorrupt = errors.New("blob: corrupt frame")
	// ErrBadKey: the key is not a 64-char lowercase hex string.
	ErrBadKey = errors.New("blob: key must be 64 lowercase hex chars")
)

// Backend is a content-addressed blob store shared across replicas. All
// methods are safe for concurrent use by many processes; Put must be atomic
// (a reader sees the whole framed blob or nothing).
type Backend interface {
	// Put stores payload under key, framing it with a checksum. Overwriting
	// an existing key is allowed and must remain atomic (same-key payloads
	// are byte-identical by construction, so last-writer-wins is safe).
	Put(ctx context.Context, key string, payload []byte) error
	// Get returns the payload stored under key, verifying its frame. A
	// missing key returns ErrNotFound; a frame failure returns ErrCorrupt
	// after deleting the damaged blob.
	Get(ctx context.Context, key string) ([]byte, error)
	// Delete removes key. Deleting a missing key is not an error.
	Delete(ctx context.Context, key string) error
	// List returns every stored key, in unspecified order.
	List(ctx context.Context) ([]string, error)
}

// RepairStats counts the degraded-mode activity of a backend that can
// serve reads through partial damage (the erasure-coded wrapper in
// internal/blob/ec). Plain single-copy backends don't implement it.
type RepairStats struct {
	// Repaired: shards rewritten with reconstructed bytes after a read
	// served through missing or corrupt shards.
	Repaired uint64
	// ShardErrors: per-shard reads or writes that failed (missing, corrupt,
	// or unreachable shard roots) while the operation as a whole still
	// succeeded or degraded gracefully.
	ShardErrors uint64
}

// RepairStatter is implemented by backends that track RepairStats;
// internal/resultcache surfaces them as SharedRepaired/ShardErrors.
type RepairStatter interface {
	RepairStats() RepairStats
}

// validKey matches the content-address namespace: exactly 64 hex chars.
var validKey = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ValidKey reports whether key is a well-formed content address.
func ValidKey(key string) bool { return validKey.MatchString(key) }

// frameMagic opens every stored blob; the version byte is part of it, so
// bumping the string orphans (and lazily recomputes) the whole corpus.
const frameMagic = "eccbl1 "

// EncodeFrame wraps payload in the checksummed wire/disk format shared by
// every backend: magic, SHA-256 hex of the payload, newline, payload.
func EncodeFrame(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(frameMagic)+64+1+len(payload))
	out = append(out, frameMagic...)
	out = append(out, hex.EncodeToString(sum[:])...)
	out = append(out, '\n')
	return append(out, payload...)
}

// DecodeFrame verifies a framed blob and returns its payload, or ok=false
// for anything malformed: wrong magic, short file, checksum mismatch.
func DecodeFrame(b []byte) ([]byte, bool) {
	rest, ok := strings.CutPrefix(string(b), frameMagic)
	if !ok || len(rest) < 65 || rest[64] != '\n' {
		return nil, false
	}
	payload := []byte(rest[65:])
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != rest[:64] {
		return nil, false
	}
	return payload, true
}
