//go:build !race

package raceflag

// Enabled reports that the race detector is compiled in.
const Enabled = false
