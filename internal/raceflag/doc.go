// Package raceflag exposes whether the binary was built with the race
// detector, so allocation-count regression tests (testing.AllocsPerRun)
// can skip themselves under `go test -race` — the detector's
// instrumentation allocates and would make a 0-allocs/op assertion flaky.
package raceflag
