package dram

import "testing"

func TestChipModels(t *testing.T) {
	for _, w := range []Width{X4, X8, X16} {
		c := Chip2GbDDR3(w)
		if c.Width != w || c.VDD != 1.5 || c.CapacityGb != 2 {
			t.Fatalf("bad chip model for width %d: %+v", w, c)
		}
	}
}

func TestUnsupportedWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width 32 must panic")
		}
	}()
	Chip2GbDDR3(Width(32))
}

func TestWiderChipsDrawMoreBurstCurrent(t *testing.T) {
	t4 := Chip2GbDDR3(X4).Currents
	t8 := Chip2GbDDR3(X8).Currents
	t16 := Chip2GbDDR3(X16).Currents
	if !(t4.IDD4R < t8.IDD4R && t8.IDD4R < t16.IDD4R) {
		t.Fatal("IDD4R must grow with width")
	}
}

func TestEnergiesPositive(t *testing.T) {
	tm := DDR3Timing1GHz()
	for _, w := range []Width{X4, X8, X16} {
		c := Chip2GbDDR3(w)
		for name, e := range map[string]float64{
			"activate": c.ActivateEnergy(tm),
			"read":     c.ReadBurstEnergy(tm),
			"write":    c.WriteBurstEnergy(tm),
			"refresh":  c.RefreshEnergy(tm),
		} {
			if e <= 0 {
				t.Errorf("x%d %s energy %v must be positive", w, name, e)
			}
		}
	}
}

func TestRankEnergyOrdering(t *testing.T) {
	// The paper's central energy claim: a 36×x4 rank costs far more per
	// access than a 4×x16+1×x8 rank. Verify the per-access dynamic energy
	// ordering: chipkill36 rank > 2× LOT-ECC5 rank (it delivers 2× data,
	// but even per 64B it must be well above).
	tm := DDR3Timing1GHz()
	x4 := Chip2GbDDR3(X4)
	x8 := Chip2GbDDR3(X8)
	x16 := Chip2GbDDR3(X16)
	ck36 := 36 * (x4.ActivateEnergy(tm) + x4.ReadBurstEnergy(tm)) // 128B
	lot5 := 4*(x16.ActivateEnergy(tm)+x16.ReadBurstEnergy(tm)) +
		x8.ActivateEnergy(tm) + x8.ReadBurstEnergy(tm) // 64B
	if ck36/2 < 2*lot5 {
		t.Fatalf("chipkill36 per-64B access (%.0f pJ) must be >2× LOT-ECC5 (%.0f pJ)", ck36/2, lot5)
	}
}

func TestBackgroundStateOrdering(t *testing.T) {
	c := Chip2GbDDR3(X8)
	pd := c.BackgroundPower(StatePowerDown)
	pre := c.BackgroundPower(StatePrechargeStandby)
	act := c.BackgroundPower(StateActiveStandby)
	if !(pd < pre && pre < act) {
		t.Fatalf("power ordering wrong: pd=%v pre=%v act=%v", pd, pre, act)
	}
}

func TestBackgroundEnergyLinearInTime(t *testing.T) {
	c := Chip2GbDDR3(X4)
	tm := DDR3Timing1GHz()
	e1 := c.BackgroundEnergy(StatePowerDown, 100, tm)
	e2 := c.BackgroundEnergy(StatePowerDown, 200, tm)
	if e2 != 2*e1 {
		t.Fatal("background energy must be linear in residency")
	}
}

func TestReadLatency(t *testing.T) {
	tm := DDR3Timing1GHz()
	if got := tm.ReadLatency(); got != 14+14+4 {
		t.Fatalf("close-page read latency %d, want 32", got)
	}
}

func TestSpeedBinTradeoff(t *testing.T) {
	// §V-D: a 16% faster bin should cost a mild (≈5%) energy increase.
	chip, tm := SpeedBin(Chip2GbDDR3(X8), DDR3Timing1GHz(), 1.16)
	base := Chip2GbDDR3(X8)
	baseTm := DDR3Timing1GHz()
	if tm.TCKNs >= baseTm.TCKNs {
		t.Fatal("faster bin must shorten the clock")
	}
	// Energy per activate in the faster bin: higher current over shorter
	// time; the net increase must be modest (the full-system EPI cost of
	// the 16% bin is ≈5%, checked in BenchmarkSpeedBinTradeoff).
	eBase := base.ActivateEnergy(baseTm)
	eFast := chip.ActivateEnergy(tm)
	ratio := eFast / eBase
	if ratio < 1.0 || ratio > 1.25 {
		t.Fatalf("speed-bin activate energy ratio %v, want ≈1.0–1.25", ratio)
	}
}
