package dram

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestOnDieSECGeometry(t *testing.T) {
	for _, tc := range []struct{ dataBytes, wantChecks int }{
		{1, 4}, {4, 6}, {8, 7}, {16, 8},
	} {
		c := NewOnDieSEC(tc.dataBytes)
		if c.CheckBits() != tc.wantChecks {
			t.Errorf("%dB fetch: got %d check bits, want %d", tc.dataBytes, c.CheckBits(), tc.wantChecks)
		}
	}
}

// TestOnDieSECSingleBit: every single-bit flip — data or check — is
// corrected back to the encoded word, invisibly.
func TestOnDieSECSingleBit(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, dataBytes := range []int{4, 8, 16} {
		c := NewOnDieSEC(dataBytes)
		data := make([]byte, dataBytes)
		r.Read(data)
		checks := c.Encode(data)
		for bit := 0; bit < c.DataBits(); bit++ {
			d := append([]byte(nil), data...)
			ch := append([]byte(nil), checks...)
			flipBit(d, bit)
			res := c.Scrub(d, ch)
			if res.Outcome != ScrubCorrected || res.Bit != bit {
				t.Fatalf("%dB data bit %d: %+v", dataBytes, bit, res)
			}
			if !bytes.Equal(d, data) {
				t.Fatalf("%dB data bit %d: scrub did not restore data", dataBytes, bit)
			}
		}
		for bit := 0; bit < c.CheckBits(); bit++ {
			d := append([]byte(nil), data...)
			ch := append([]byte(nil), checks...)
			flipBit(ch, bit)
			res := c.Scrub(d, ch)
			if res.Outcome != ScrubCorrected || res.Bit != -1 {
				t.Fatalf("%dB check bit %d: %+v", dataBytes, bit, res)
			}
			if !bytes.Equal(d, data) || !bytes.Equal(ch, checks) {
				t.Fatalf("%dB check bit %d: scrub did not restore codeword", dataBytes, bit)
			}
		}
	}
}

// TestOnDieSECDoubleBit: a SEC code never corrects a double-bit error
// back to the truth — it either flags it or miscorrects a third bit. The
// post-scrub word must never silently equal a word that differs from the
// truth by exactly the applied correction (that would mean the model hid
// the distortion the HARP experiment measures).
func TestOnDieSECDoubleBit(t *testing.T) {
	c := NewOnDieSEC(8)
	r := rand.New(rand.NewSource(22))
	data := make([]byte, 8)
	r.Read(data)
	checks := c.Encode(data)
	miscorrected, detected := 0, 0
	for trial := 0; trial < 200; trial++ {
		a := r.Intn(c.DataBits())
		b := r.Intn(c.DataBits())
		if a == b {
			continue
		}
		d := append([]byte(nil), data...)
		ch := append([]byte(nil), checks...)
		flipBit(d, a)
		flipBit(d, b)
		res := c.Scrub(d, ch)
		switch res.Outcome {
		case ScrubClean:
			t.Fatalf("double flip (%d,%d) scrubbed clean", a, b)
		case ScrubCorrected:
			if bytes.Equal(d, data) {
				t.Fatalf("double flip (%d,%d) corrected to truth — impossible at distance 3", a, b)
			}
			miscorrected++
		case ScrubDetected:
			detected++
		}
	}
	if miscorrected == 0 || detected == 0 {
		t.Fatalf("double-bit campaign should see both miscorrections (%d) and detections (%d)", miscorrected, detected)
	}
}

// TestWithOnDieECC: the energy hook raises exactly the dynamic energies,
// leaves background power alone, and a zero overhead is the identity.
func TestWithOnDieECC(t *testing.T) {
	base := Chip2GbDDR3(X8)
	tm := TimingForWidth(X8)
	same := base.WithOnDieECC(0)
	if same != base {
		t.Fatal("zero overhead must be the identity")
	}
	ecc := base.WithOnDieECC(NewOnDieSEC(8).Overhead())
	if !(ecc.ActivateEnergy(tm) > base.ActivateEnergy(tm)) {
		t.Error("activate energy should rise with on-die ECC")
	}
	if !(ecc.ReadBurstEnergy(tm) > base.ReadBurstEnergy(tm)) {
		t.Error("read burst energy should rise with on-die ECC")
	}
	if !(ecc.WriteBurstEnergy(tm) > base.WriteBurstEnergy(tm)) {
		t.Error("write burst energy should rise with on-die ECC")
	}
	for _, st := range []PowerState{StateActiveStandby, StatePrechargeStandby, StatePowerDown} {
		if ecc.BackgroundPower(st) != base.BackgroundPower(st) {
			t.Errorf("background power in state %v must not change", st)
		}
	}
}
