// Package dram models DDR3 DRAM devices: per-speed-bin timing parameters
// and a Micron-power-calculator-style energy model driven by IDD currents.
// It reproduces the DRAMsim power methodology the paper's evaluation uses:
// dynamic energy integrates per-command current deltas (activate, read
// burst, write burst), background energy integrates state-residency power
// (active standby, precharge standby, precharge power-down) plus refresh.
//
// All energies are in picojoules and all times in controller clock cycles
// unless a name says otherwise. With a 1 GHz DRAM clock (the paper's 2Gb
// DDR3 with 1 GHz I/O), one cycle is one nanosecond, and the identity
// mA × V × ns = pJ keeps the arithmetic transparent.
package dram

import "fmt"

// Width is a DRAM device I/O width in bits.
type Width int

// Supported device widths.
const (
	X4  Width = 4
	X8  Width = 8
	X16 Width = 16
)

// IDD holds the datasheet supply currents of one device, in milliamps.
// Names follow the Micron DDR3 datasheet.
type IDD struct {
	IDD0  float64 // one activate-precharge cycle
	IDD2N float64 // precharge standby
	IDD2P float64 // precharge power-down (slow exit) — the "sleep" state
	IDD3N float64 // active standby
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5  float64 // burst refresh
}

// Chip is one DRAM device model.
type Chip struct {
	Width       Width
	CapacityGb  float64
	VDD         float64
	Currents    IDD
	IOEnergyBit float64 // I/O + termination energy per transferred bit, pJ
}

// Chip2GbDDR3 returns the 2Gb DDR3 device model for the requested width,
// with currents patterned on the Micron 2Gb DDR3 SDRAM datasheet (die
// revision D) that the paper's DRAMsim configuration uses. Wider devices
// draw more burst and activate current; that asymmetry is exactly what
// makes few-wide-chip ranks (LOT-ECC5) cheaper per access than many-narrow-
// chip ranks (36-device chipkill), because energy per access scales with
// the CHIP COUNT of the rank while per-chip burst current grows only
// mildly with width.
func Chip2GbDDR3(w Width) Chip {
	// Background currents (IDD2N/IDD2P/IDD3N) are close to width-
	// independent in the datasheet — they are leakage and peripheral
	// dominated — while the burst and activate currents grow with width.
	var c IDD
	switch w {
	case X4:
		c = IDD{IDD0: 85, IDD2N: 40, IDD2P: 10, IDD3N: 45, IDD4R: 135, IDD4W: 140, IDD5: 210}
	case X8:
		c = IDD{IDD0: 85, IDD2N: 40, IDD2P: 10, IDD3N: 45, IDD4R: 150, IDD4W: 155, IDD5: 215}
	case X16:
		c = IDD{IDD0: 100, IDD2N: 45, IDD2P: 10, IDD3N: 52, IDD4R: 195, IDD4W: 205, IDD5: 220}
	default:
		panic(fmt.Sprintf("dram: unsupported width %d", w))
	}
	return Chip{Width: w, CapacityGb: 2, VDD: 1.5, Currents: c, IOEnergyBit: 5}
}

// Timing holds the DDR3 timing parameters in clock cycles.
type Timing struct {
	TCKNs  float64 // clock period, ns
	CL     int     // CAS latency
	CWL    int     // CAS write latency
	TRCD   int     // activate to read/write
	TRP    int     // precharge
	TRAS   int     // activate to precharge
	TRC    int     // activate to activate, same bank
	TBurst int     // burst duration (BL8 = 4 cycles at DDR)
	TRTP   int     // read to precharge
	TWR    int     // write recovery
	TRFC   int     // refresh cycle
	TREFI  int     // refresh interval
	TXP    int     // power-down exit
	TRRD   int     // activate to activate, different bank
}

// DDR3Timing1GHz returns the timing set for the paper's 1 GHz-clock DDR3
// configuration (2000 MT/s data rate), with the x8 device's activate
// spacing. Use TimingForWidth for a rank's actual device width.
func DDR3Timing1GHz() Timing {
	return Timing{
		TCKNs: 1.0, CL: 14, CWL: 10, TRCD: 14, TRP: 14, TRAS: 33, TRC: 47,
		TBurst: 4, TRTP: 8, TWR: 15, TRFC: 160, TREFI: 7800, TXP: 7, TRRD: 5,
	}
}

// TimingForWidth adapts the activate-spacing constraints to the device
// width: narrower devices have smaller pages and so shorter tRRD/tFAW
// windows (x4 ≈ 1KB pages, tRRD 4ns; x16 ≈ 2KB pages, tRRD 6ns). The
// controller derives tFAW as 5·tRRD.
func TimingForWidth(w Width) Timing {
	t := DDR3Timing1GHz()
	switch w {
	case X4:
		t.TRRD = 4
	case X8:
		t.TRRD = 5
	case X16:
		t.TRRD = 6
	}
	return t
}

// ReadLatency returns the cycles from a row-closed request arrival to the
// last data beat under the close-page policy: activate, CAS, burst.
func (t Timing) ReadLatency() int { return t.TRCD + t.CL + t.TBurst }

// SpeedBin derives a faster (or slower) bin: frequency scaled by factor,
// currents scaled per the empirical sensitivity the paper invokes in §V-D
// (a 16% faster bin costs ≈5% more energy per instruction).
func SpeedBin(chip Chip, timing Timing, factor float64) (Chip, Timing) {
	timing.TCKNs /= factor
	cur := &chip.Currents
	// Faster bins run at higher drive strength/voltage margin: dynamic
	// currents grow FASTER than frequency (net energy per operation rises
	// ≈5–6% for a 16% faster bin, matching the paper's estimate), while
	// background currents grow sublinearly.
	for _, p := range []*float64{&cur.IDD0, &cur.IDD4R, &cur.IDD4W, &cur.IDD5} {
		*p *= 1 + 1.45*(factor-1)
	}
	for _, p := range []*float64{&cur.IDD2N, &cur.IDD2P, &cur.IDD3N} {
		*p *= 1 + 0.8*(factor-1)
	}
	return chip, timing
}

// ActivateEnergy returns the per-chip energy of one activate-precharge
// pair in pJ: the IDD0 draw over tRC minus the standby current that would
// have flowed anyway (Micron power-calc formulation).
func (c Chip) ActivateEnergy(t Timing) float64 {
	i := c.Currents
	overhead := i.IDD0*float64(t.TRC) - (i.IDD3N*float64(t.TRAS) + i.IDD2N*float64(t.TRC-t.TRAS))
	return overhead * c.VDD * t.TCKNs
}

// ReadBurstEnergy returns the per-chip energy of one BL8 read burst in pJ,
// including I/O energy for the bits this chip transfers.
func (c Chip) ReadBurstEnergy(t Timing) float64 {
	i := c.Currents
	core := (i.IDD4R - i.IDD3N) * c.VDD * float64(t.TBurst) * t.TCKNs
	bits := float64(c.Width) * 2 * float64(t.TBurst) // DDR: 2 beats/cycle
	return core + bits*c.IOEnergyBit
}

// WriteBurstEnergy returns the per-chip energy of one BL8 write burst in pJ.
func (c Chip) WriteBurstEnergy(t Timing) float64 {
	i := c.Currents
	core := (i.IDD4W - i.IDD3N) * c.VDD * float64(t.TBurst) * t.TCKNs
	bits := float64(c.Width) * 2 * float64(t.TBurst)
	return core + bits*c.IOEnergyBit
}

// RefreshEnergy returns the per-chip energy of one refresh cycle in pJ.
func (c Chip) RefreshEnergy(t Timing) float64 {
	i := c.Currents
	return (i.IDD5 - i.IDD2N) * c.VDD * float64(t.TRFC) * t.TCKNs
}

// PowerState is a rank background state.
type PowerState int

// Background states tracked by the energy model.
const (
	StateActiveStandby PowerState = iota // a row is open
	StatePrechargeStandby
	StatePowerDown // precharge power-down: the paper's "sleep mode"
)

// BackgroundPower returns the per-chip background power of a state in mW.
func (c Chip) BackgroundPower(s PowerState) float64 {
	i := c.Currents
	switch s {
	case StateActiveStandby:
		return i.IDD3N * c.VDD
	case StatePrechargeStandby:
		return i.IDD2N * c.VDD
	case StatePowerDown:
		return i.IDD2P * c.VDD
	default:
		panic("dram: unknown power state")
	}
}

// BackgroundEnergy returns the per-chip energy of residing in state s for
// the given number of cycles, in pJ.
func (c Chip) BackgroundEnergy(s PowerState, cycles float64, t Timing) float64 {
	return c.BackgroundPower(s) * cycles * t.TCKNs
}
