package dram

// On-die ECC: modern DRAM devices (DDR5, LPDDR4 and onward) correct
// single-bit array faults inside the chip with a per-fetch Hamming SEC
// code, invisibly to the memory controller. The rank-level scheme
// therefore never observes the raw array error profile — it sees the
// POST-correction profile, in which single-bit faults vanish and
// multi-bit faults may be silently distorted into different multi-bit
// patterns (a miscorrection flips a third, previously-good bit). That
// masking/distortion is the effect the HARP profiler experiment measures
// and the cross-layer (on-die + rank-level) schemes in internal/ecc are
// built around, so the codec lives here, in the chip model.

import "fmt"

// OnDieSEC is a single-error-correcting Hamming code over one chip's
// per-access data fetch. Positions are the classic 1-indexed Hamming
// layout: check bits sit at power-of-two positions, data bits fill the
// rest, and the syndrome of a single flipped bit IS its position. The
// codec is pure and stateless after construction; one instance serves any
// number of goroutines.
type OnDieSEC struct {
	dataBits  int
	checkBits int
	n         int   // total code length in bits
	posOfData []int // data bit index -> Hamming position (1-based)
	dataOfPos []int // Hamming position -> data bit index, -1 for checks
}

// NewOnDieSEC builds the code for a per-access fetch of dataBytes bytes.
// The check-bit count r is the smallest satisfying 2^r >= dataBits+r+1 —
// 7 checks for the 8-byte (71,64) fetch of a DDR5-style x8 device.
func NewOnDieSEC(dataBytes int) *OnDieSEC {
	if dataBytes <= 0 {
		panic(fmt.Sprintf("dram: on-die SEC data size must be positive (got %d)", dataBytes))
	}
	dataBits := dataBytes * 8
	r := 1
	for (1 << r) < dataBits+r+1 {
		r++
	}
	c := &OnDieSEC{dataBits: dataBits, checkBits: r, n: dataBits + r}
	c.posOfData = make([]int, dataBits)
	c.dataOfPos = make([]int, c.n+1)
	for i := range c.dataOfPos {
		c.dataOfPos[i] = -1
	}
	i := 0
	for pos := 1; pos <= c.n; pos++ {
		if pos&(pos-1) == 0 { // power of two: check-bit position
			continue
		}
		c.posOfData[i] = pos
		c.dataOfPos[pos] = i
		i++
	}
	return c
}

// DataBits returns the protected data width in bits.
func (c *OnDieSEC) DataBits() int { return c.dataBits }

// CheckBits returns the check-bit count of the code.
func (c *OnDieSEC) CheckBits() int { return c.checkBits }

// CheckBytes returns the stored check-bit footprint in whole bytes.
func (c *OnDieSEC) CheckBytes() int { return (c.checkBits + 7) / 8 }

// Overhead returns the in-array redundancy fraction (check bits per data
// bit) — the knob Chip.WithOnDieECC charges energy for.
func (c *OnDieSEC) Overhead() float64 { return float64(c.checkBits) / float64(c.dataBits) }

func getBit(b []byte, i int) int  { return int(b[i>>3]>>(i&7)) & 1 }
func flipBit(b []byte, i int)     { b[i>>3] ^= 1 << (i & 7) }
func setBit(b []byte, i, v int)   { b[i>>3] = b[i>>3]&^(1<<(i&7)) | byte(v)<<(i&7) }
func (c *OnDieSEC) checkLen() int { return c.CheckBytes() }

// syndrome XORs the Hamming positions of every set bit: data bits at
// their mapped positions, check bit j at position 2^j.
func (c *OnDieSEC) syndrome(data, checks []byte) int {
	s := 0
	for i := 0; i < c.dataBits; i++ {
		if getBit(data, i) != 0 {
			s ^= c.posOfData[i]
		}
	}
	for j := 0; j < c.checkBits; j++ {
		if getBit(checks, j) != 0 {
			s ^= 1 << j
		}
	}
	return s
}

// Encode computes the check bits of a clean data fetch: each check bit is
// chosen so the codeword's total syndrome is zero.
func (c *OnDieSEC) Encode(data []byte) []byte {
	if len(data)*8 != c.dataBits {
		panic(fmt.Sprintf("dram: on-die SEC encode: got %d data bytes, want %d", len(data), c.dataBits/8))
	}
	checks := make([]byte, c.checkLen())
	s := 0
	for i := 0; i < c.dataBits; i++ {
		if getBit(data, i) != 0 {
			s ^= c.posOfData[i]
		}
	}
	for j := 0; j < c.checkBits; j++ {
		setBit(checks, j, (s>>j)&1)
	}
	return checks
}

// ScrubOutcome classifies one on-die decode.
type ScrubOutcome int

// Scrub outcomes. A SEC code cannot distinguish a true single-bit error
// from a multi-bit error whose syndrome aliases a valid position: both
// report ScrubCorrected. In the aliasing case the "correction" flips a
// third, previously-good bit — the miscorrection distortion HARP profiles
// for — which only a caller with ground truth can observe.
const (
	// ScrubClean: zero syndrome, nothing touched.
	ScrubClean ScrubOutcome = iota
	// ScrubCorrected: the syndrome named a code position and that bit was
	// flipped in place (possibly a miscorrection under a multi-bit error).
	ScrubCorrected
	// ScrubDetected: the syndrome names no position — the error is
	// visible but beyond the code; data is left untouched.
	ScrubDetected
)

// String names the outcome.
func (o ScrubOutcome) String() string {
	switch o {
	case ScrubClean:
		return "clean"
	case ScrubCorrected:
		return "corrected"
	case ScrubDetected:
		return "detected"
	}
	return "unknown"
}

// ScrubResult reports what one Scrub did. Bit is the flipped DATA bit
// index, or -1 when nothing was flipped or the repair landed on a check
// bit (invisible to the controller either way).
type ScrubResult struct {
	Outcome ScrubOutcome
	Bit     int
}

// Scrub runs the in-chip decode over a fetched (data, checks) pair,
// repairing a correctable bit in place — in data or in checks — exactly as
// the device's read path would before driving the I/O pins. The caller's
// slices are mutated; pass copies to model a read that leaves the array
// untouched.
func (c *OnDieSEC) Scrub(data, checks []byte) ScrubResult {
	s := c.syndrome(data, checks)
	switch {
	case s == 0:
		return ScrubResult{Outcome: ScrubClean, Bit: -1}
	case s <= c.n:
		if i := c.dataOfPos[s]; i >= 0 {
			flipBit(data, i)
			return ScrubResult{Outcome: ScrubCorrected, Bit: i}
		}
		// A check-bit position: repair the stored check bit. The data the
		// chip drives out was never wrong.
		for j := 0; j < c.checkBits; j++ {
			if 1<<j == s {
				flipBit(checks, j)
				break
			}
		}
		return ScrubResult{Outcome: ScrubCorrected, Bit: -1}
	default:
		return ScrubResult{Outcome: ScrubDetected, Bit: -1}
	}
}

// WithOnDieECC charges a chip for an on-die ECC array: every activate and
// burst moves (1+overhead)× the bits through the core, so the dynamic
// current components scale by the code's redundancy fraction while the
// leakage-dominated background currents stay put. The I/O energy is
// untouched — check bits never cross the pins. The receiver is unchanged
// (Chip is a value); the default chips carry no on-die code, keeping every
// pre-existing configuration's energy byte-identical.
func (c Chip) WithOnDieECC(overhead float64) Chip {
	if overhead < 0 {
		panic(fmt.Sprintf("dram: on-die ECC overhead must be non-negative (got %g)", overhead))
	}
	cur := &c.Currents
	cur.IDD0 *= 1 + overhead
	cur.IDD4R = cur.IDD3N + (cur.IDD4R-cur.IDD3N)*(1+overhead)
	cur.IDD4W = cur.IDD3N + (cur.IDD4W-cur.IDD3N)*(1+overhead)
	cur.IDD5 = cur.IDD2N + (cur.IDD5-cur.IDD2N)*(1+overhead)
	return c
}
