// Package mem implements the multi-channel memory controller model: per-bank
// close-page scheduling with bank- and bus-level contention, rank power-down
// (sleep) management, and DRAMsim-style energy accounting on top of the
// device model in internal/dram.
//
// Time is measured in DRAM clock cycles as float64. The controller models
// the command-level constraints the paper's DRAMsim configuration exercises:
// bank occupancy (tRC under close-page auto-precharge, row-hit reuse under
// open-page), activate spacing (tRRD and the four-activate tFAW window),
// write-to-read turnaround, per-rank staggered refresh blackouts (tREFI /
// tRFC), a backfilling data-bus slot allocator (one burst per tBurst), and
// rank power-down with tXP wake cost — yielding the bank-level-parallelism
// and sleep-residency effects behind Figs. 10–15.
package mem

import (
	"fmt"

	"eccparity/internal/dram"
	"eccparity/internal/stats"
)

// Config describes one memory system build-out.
type Config struct {
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	Chips           []dram.Chip // device mix of one rank
	Timing          dram.Timing
	// PowerDownThreshold is the idle time in cycles after which a rank
	// enters precharge power-down. The close-page policy exists precisely
	// to make this effective (paper §IV-B).
	PowerDownThreshold float64
	LineBytes          int
	// OpenPage keeps rows open after an access instead of auto-precharging
	// (the paper evaluates close-page; open-page is an ablation). Row hits
	// skip the activate and its energy; row misses pay precharge+activate.
	OpenPage bool
}

// DefaultBanksPerRank is the DDR3 bank count.
const DefaultBanksPerRank = 8

// DefaultPowerDownThreshold is the idle-to-sleep threshold in cycles.
// Close-page auto-precharge leaves a rank precharged right after tRC, so
// the controller can gate the clock almost immediately — this aggressive
// sleep policy is what the paper's close-page configuration is chosen for
// (§IV-B).
const DefaultPowerDownThreshold = 12

// AccessClass tags a request for the traffic breakdown.
type AccessClass int

// Traffic classes: demand traffic vs the ECC-maintenance overhead streams.
const (
	ClassData AccessClass = iota
	ClassECC              // ECC line / GEC / parity-line maintenance
	ClassScrub
	numClasses
)

// Stats accumulates controller-level counters and energy in picojoules.
type Stats struct {
	Reads  [numClasses]uint64
	Writes [numClasses]uint64
	// Dynamic energy: activate plus read/write burst.
	ActivateEnergy float64
	BurstEnergy    float64
	// Background energy: standby, power-down and refresh.
	StandbyEnergy   float64
	PowerDownEnergy float64
	RefreshEnergy   float64
	// Latency bookkeeping for reads (demand class only).
	ReadLatencySum   float64
	ReadLatencyCount uint64
	// ReadLatencyHist captures the demand-read latency distribution.
	ReadLatencyHist stats.Histogram
	// RowHits counts open-page row-buffer hits (zero under close-page).
	RowHits uint64
	// SleepCycles accumulates rank-cycles spent in power-down.
	SleepCycles float64
}

// TotalReads sums reads across classes.
func (s *Stats) TotalReads() uint64 {
	var n uint64
	for _, v := range s.Reads {
		n += v
	}
	return n
}

// TotalWrites sums writes across classes.
func (s *Stats) TotalWrites() uint64 {
	var n uint64
	for _, v := range s.Writes {
		n += v
	}
	return n
}

// DynamicEnergy returns activate+burst energy in pJ.
func (s *Stats) DynamicEnergy() float64 { return s.ActivateEnergy + s.BurstEnergy }

// BackgroundEnergy returns standby+power-down+refresh energy in pJ.
func (s *Stats) BackgroundEnergy() float64 {
	return s.StandbyEnergy + s.PowerDownEnergy + s.RefreshEnergy
}

// TotalEnergy returns all energy in pJ.
func (s *Stats) TotalEnergy() float64 { return s.DynamicEnergy() + s.BackgroundEnergy() }

// rankState tracks one rank's occupancy and background integration.
type rankState struct {
	lastT       float64 // background integrated up to here
	activeUntil float64 // end of the last access's tRAS window (row open)
	busyUntil   float64 // end of the last access's tRC window
}

// Controller is the memory system model.
type Controller struct {
	cfg   Config
	stats Stats

	bankBusy [][]float64 // [channel][rank*banks+bank] busy-until
	openRow  [][]int     // [channel][bank index]: open row (-1 closed), open-page only
	bus      []*busAllocator
	ranks    [][]rankState
	// Inter-command constraint state (the DRAMsim command-level checks).
	lastActs  [][]actWindow // [channel][rank]: recent activates for tRRD/tFAW
	lastWrEnd [][]float64   // [channel][rank]: end of last write burst (tWTR)
	nextRefr  [][]float64   // [channel][rank]: next scheduled refresh start

	// Precomputed per-access rank energies.
	eAct, eRead, eWrite float64
	// Per-rank background power by state (mW) and refresh energy.
	pActive, pStandby, pPowerDown float64
	eRefreshPerRank               float64
}

// NewController builds a controller for the configuration.
func NewController(cfg Config) *Controller {
	c := &Controller{}
	c.Reset(cfg)
	return c
}

// Reset re-initializes the controller for cfg, exactly as NewController
// would, reusing the per-channel state arrays when the topology (channels,
// ranks, banks) matches the previous configuration. The energy
// coefficients are always recomputed (cheap), so a reused controller may
// change device mix, timing or policy between runs. The data-bus rings
// keep any grown capacity — slot allocation is capacity-independent — so a
// reused controller produces bit-identical timing to a fresh one.
func (c *Controller) Reset(cfg Config) {
	if cfg.Channels <= 0 || cfg.RanksPerChannel <= 0 || cfg.BanksPerRank <= 0 || len(cfg.Chips) == 0 {
		panic(fmt.Sprintf("mem: invalid config %+v", cfg))
	}
	sameShape := c.cfg.Channels == cfg.Channels &&
		c.cfg.RanksPerChannel == cfg.RanksPerChannel &&
		c.cfg.BanksPerRank == cfg.BanksPerRank &&
		c.bankBusy != nil
	c.cfg = cfg
	c.stats = Stats{}
	if !sameShape {
		c.bankBusy = make([][]float64, cfg.Channels)
		c.bus = make([]*busAllocator, cfg.Channels)
		c.openRow = make([][]int, cfg.Channels)
		c.ranks = make([][]rankState, cfg.Channels)
		c.lastActs = make([][]actWindow, cfg.Channels)
		c.lastWrEnd = make([][]float64, cfg.Channels)
		c.nextRefr = make([][]float64, cfg.Channels)
		for ch := 0; ch < cfg.Channels; ch++ {
			c.bankBusy[ch] = make([]float64, cfg.RanksPerChannel*cfg.BanksPerRank)
			c.openRow[ch] = make([]int, cfg.RanksPerChannel*cfg.BanksPerRank)
			c.bus[ch] = newBusAllocator(cfg.Timing.TBurst)
			c.ranks[ch] = make([]rankState, cfg.RanksPerChannel)
			c.lastActs[ch] = make([]actWindow, cfg.RanksPerChannel)
			c.lastWrEnd[ch] = make([]float64, cfg.RanksPerChannel)
			c.nextRefr[ch] = make([]float64, cfg.RanksPerChannel)
		}
	}
	for ch := 0; ch < cfg.Channels; ch++ {
		clear(c.bankBusy[ch])
		for i := range c.openRow[ch] {
			c.openRow[ch][i] = -1
		}
		c.bus[ch].reset(cfg.Timing.TBurst)
		clear(c.ranks[ch])
		for r := range c.lastActs[ch] {
			c.lastActs[ch][r].reset()
			c.lastActs[ch][r].idx = 0
		}
		for r := range c.lastWrEnd[ch] {
			c.lastWrEnd[ch][r] = negInf
		}
		for r := range c.nextRefr[ch] {
			// Stagger refresh across ranks, as controllers do.
			c.nextRefr[ch][r] = float64(cfg.Timing.TREFI) * (1 + float64(r)/float64(cfg.RanksPerChannel))
		}
	}
	c.eAct, c.eRead, c.eWrite = 0, 0, 0
	c.pActive, c.pStandby, c.pPowerDown = 0, 0, 0
	c.eRefreshPerRank = 0
	for _, chip := range cfg.Chips {
		c.eAct += chip.ActivateEnergy(cfg.Timing)
		c.eRead += chip.ReadBurstEnergy(cfg.Timing)
		c.eWrite += chip.WriteBurstEnergy(cfg.Timing)
		c.pActive += chip.BackgroundPower(dram.StateActiveStandby)
		c.pStandby += chip.BackgroundPower(dram.StatePrechargeStandby)
		c.pPowerDown += chip.BackgroundPower(dram.StatePowerDown)
		c.eRefreshPerRank += chip.RefreshEnergy(cfg.Timing)
	}
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns the accumulated statistics (call Finish first to close the
// background-energy integration).
func (c *Controller) Stats() *Stats { return &c.stats }

// Access issues one line-sized request under the close-page policy (row 0).
// It returns the cycle at which read data is available (or the write burst
// completes). The caller provides the physical location; address mapping
// lives in the simulator.
func (c *Controller) Access(now float64, channel, rank, bank int, write bool, class AccessClass) float64 {
	return c.AccessRow(now, channel, rank, bank, 0, write, class)
}

// AccessRow issues one request with an explicit row address, enabling the
// open-page policy's row-hit detection.
func (c *Controller) AccessRow(now float64, channel, rank, bank, row int, write bool, class AccessClass) float64 {
	t := c.cfg.Timing
	rs := &c.ranks[channel][rank]

	// Integrate this rank's background energy up to the arrival.
	wasAsleep := c.integrateRank(rs, now)

	start := now
	if wasAsleep {
		start += float64(t.TXP)
	}
	bi := rank*c.cfg.BanksPerRank + bank
	if bb := c.bankBusy[channel][bi]; bb > start {
		start = bb
	}

	// Row-buffer handling: under open-page, a hit skips the activate and
	// a conflict pays precharge before activating; under close-page every
	// access activates a closed row.
	rowHit := false
	preDelay := 0.0
	if c.cfg.OpenPage {
		switch c.openRow[channel][bi] {
		case row:
			rowHit = true
		case -1:
			// Bank closed: plain activate.
		default:
			preDelay = float64(t.TRP) // conflict: precharge first
		}
		c.openRow[channel][bi] = row
	}

	if !rowHit {
		// DRAMsim-style inter-command constraints on the activate:
		// tRRD (rank-level activate spacing), tFAW (≤4 activates per
		// rolling window), write-to-read turnaround, refresh blackouts.
		start = c.lastActs[channel][rank].constrain(start, t)
		if wr := c.lastWrEnd[channel][rank] + float64(t.TWR); !write && wr > start {
			start = wr
		}
		start = c.refreshDelay(channel, rank, start)
		c.lastActs[channel][rank].record(start + preDelay)
	}

	// CAS position: after the activate (row miss) or immediately (row
	// hit); the data burst must win a free slot on the channel bus, which
	// pipelines across banks. The allocator backfills idle slots, so a
	// bank-delayed request never blocks the rest of the channel.
	casDone := start
	if !rowHit {
		casDone = start + preDelay + float64(t.TRCD)
	}
	var earliest float64
	if write {
		earliest = casDone + float64(t.CWL)
	} else {
		earliest = casDone + float64(t.CL)
	}
	burstStart := c.bus[channel].alloc(earliest)
	done := burstStart + float64(t.TBurst)
	if write {
		c.lastWrEnd[channel][rank] = done
	}

	// Bank occupancy: close-page holds the bank for the full row cycle
	// (plus write recovery); open-page frees the bank for new CAS commands
	// right after the burst, but keeps the row (and rank) active.
	var busy float64
	if c.cfg.OpenPage {
		busy = done
		if write {
			busy += float64(t.TWR)
		}
		if a := done + float64(t.TRAS); a > rs.activeUntil {
			rs.activeUntil = a
		}
	} else {
		busy = start + float64(t.TRC)
		if write {
			if wb := burstStart + float64(t.TBurst) + float64(t.TWR) + float64(t.TRP); wb > busy {
				busy = wb
			}
		}
		if a := start + float64(t.TRAS); a > rs.activeUntil {
			rs.activeUntil = a
		}
	}
	c.bankBusy[channel][bi] = busy
	if busy > rs.busyUntil {
		rs.busyUntil = busy
	}

	// Dynamic energy: row hits skip the activate and its energy.
	if rowHit {
		c.stats.RowHits++
	} else {
		c.stats.ActivateEnergy += c.eAct
	}
	if write {
		c.stats.BurstEnergy += c.eWrite
		c.stats.Writes[class]++
	} else {
		c.stats.BurstEnergy += c.eRead
		c.stats.Reads[class]++
		if class == ClassData {
			c.stats.ReadLatencySum += done - now
			c.stats.ReadLatencyCount++
			c.stats.ReadLatencyHist.Add(done - now)
		}
	}
	return done
}

// Release tells the controller that no future Access/AccessRow will arrive
// with a `now` earlier than the given time, letting every channel's bus
// allocator retire the slot bookkeeping below that horizon. The engine
// calls this as its global arrival floor advances; correctness only, no
// timing effect.
func (c *Controller) Release(now float64) {
	floor := int64(now / float64(c.cfg.Timing.TBurst))
	for _, b := range c.bus {
		b.retire(floor)
	}
}

// negInf marks "never happened" for constraint registers.
const negInf = -1e18

// actWindow tracks the four most recent activate times of a rank for the
// tRRD and tFAW constraints (at most four activates per tFAW window).
type actWindow struct {
	times [4]float64
	idx   int
}

// reset marks all slots as never-activated.
func (w *actWindow) reset() {
	for i := range w.times {
		w.times[i] = negInf
	}
}

// constrain returns the earliest time ≥ start at which a new activate may
// issue to this rank.
func (w *actWindow) constrain(start float64, t dram.Timing) float64 {
	last := w.times[(w.idx+3)%4]
	if v := last + float64(t.TRRD); v > start {
		start = v
	}
	// The oldest of the last four activates bounds the tFAW window.
	tfaw := 4 * float64(t.TRRD) * 1.25 // DDR3: tFAW ≈ 5·tRRD
	if v := w.times[w.idx] + tfaw; v > start {
		start = v
	}
	return start
}

// record notes an activate at time at.
func (w *actWindow) record(at float64) {
	w.times[w.idx] = at
	w.idx = (w.idx + 1) % 4
}

// refreshDelay pushes start past any refresh blackout and advances the
// rank's refresh schedule (all-bank refresh every tREFI, lasting tRFC).
func (c *Controller) refreshDelay(channel, rank int, start float64) float64 {
	t := c.cfg.Timing
	for c.nextRefr[channel][rank] <= start {
		refStart := c.nextRefr[channel][rank]
		refEnd := refStart + float64(t.TRFC)
		if start < refEnd {
			start = refEnd
		}
		c.nextRefr[channel][rank] += float64(t.TREFI)
	}
	return start
}

// integrateRank accumulates background energy for [rs.lastT, now] and
// reports whether the rank was in power-down when the new request arrived.
func (c *Controller) integrateRank(rs *rankState, now float64) bool {
	if now <= rs.lastT {
		return false
	}
	t := c.cfg.Timing
	asleep := false

	// Row-open portion (up to tRAS after the last activate) bills active
	// standby; the precharge tail of the tRC window bills precharge
	// standby — close-page auto-precharge closes the row at tRAS.
	from := rs.lastT
	if rs.activeUntil > from {
		end := rs.activeUntil
		if end > now {
			end = now
		}
		c.stats.StandbyEnergy += c.pActive * (end - from) * t.TCKNs
		from = end
	}
	if rs.busyUntil > from {
		end := rs.busyUntil
		if end > now {
			end = now
		}
		c.stats.StandbyEnergy += c.pStandby * (end - from) * t.TCKNs
		from = end
	}
	if from < now {
		idle := now - from
		if idle <= c.cfg.PowerDownThreshold {
			c.stats.StandbyEnergy += c.pStandby * idle * t.TCKNs
		} else {
			c.stats.StandbyEnergy += c.pStandby * c.cfg.PowerDownThreshold * t.TCKNs
			sleep := idle - c.cfg.PowerDownThreshold
			c.stats.PowerDownEnergy += c.pPowerDown * sleep * t.TCKNs
			c.stats.SleepCycles += sleep
			asleep = true
		}
	}
	rs.lastT = now
	return asleep
}

// Finish closes background integration at endCycle and adds refresh energy
// for the whole run. Call exactly once, after the last Access.
func (c *Controller) Finish(endCycle float64) {
	for ch := range c.ranks {
		for r := range c.ranks[ch] {
			c.integrateRank(&c.ranks[ch][r], endCycle)
		}
	}
	refreshes := endCycle / float64(c.cfg.Timing.TREFI)
	totalRanks := float64(c.cfg.Channels * c.cfg.RanksPerChannel)
	c.stats.RefreshEnergy += refreshes * totalRanks * c.eRefreshPerRank
}

// AvgReadLatency returns the mean demand-read latency in cycles.
func (s *Stats) AvgReadLatency() float64 {
	if s.ReadLatencyCount == 0 {
		return 0
	}
	return s.ReadLatencySum / float64(s.ReadLatencyCount)
}
