package mem

// busAllocator hands out data-bus time slots of tBurst cycles each. Unlike
// a single "free after X" frontier, it backfills: a request whose bank was
// busy far into the future takes a slot at its own ready time without
// blocking earlier idle slots for everyone else. This models an
// out-of-order command scheduler's data bus exactly at burst granularity.
//
// Implementation: slot index → next-free-slot forwarding pointers with
// path compression (the disjoint-set "allocate successive integers" trick),
// so alloc is amortized near-O(1) and memory is one map entry per used
// slot.
type busAllocator struct {
	slotCycles float64
	next       map[int64]int64
}

func newBusAllocator(tBurst int) *busAllocator {
	return &busAllocator{slotCycles: float64(tBurst), next: make(map[int64]int64)}
}

// alloc reserves the first free slot starting at or after `earliest` and
// returns its start time in cycles.
func (b *busAllocator) alloc(earliest float64) float64 {
	s := int64(earliest / b.slotCycles)
	if float64(s)*b.slotCycles < earliest {
		s++
	}
	s = b.find(s)
	b.next[s] = s + 1
	return float64(s) * b.slotCycles
}

// find follows forwarding pointers to the first free slot ≥ s, compressing
// the path as it goes.
func (b *busAllocator) find(s int64) int64 {
	root := s
	for {
		n, used := b.next[root]
		if !used {
			break
		}
		root = n
	}
	// Path compression.
	for s != root {
		n := b.next[s]
		b.next[s] = root
		s = n
	}
	return root
}
