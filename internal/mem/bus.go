package mem

// busAllocator hands out data-bus time slots of tBurst cycles each. Unlike
// a single "free after X" frontier, it backfills: a request whose bank was
// busy far into the future takes a slot at its own ready time without
// blocking earlier idle slots for everyone else. This models an
// out-of-order command scheduler's data bus exactly at burst granularity.
//
// Implementation: slot index → next-free-slot forwarding pointers with
// path compression (the disjoint-set "allocate successive integers" trick),
// so alloc is amortized near-O(1). The pointers live in a power-of-two ring
// of int64 indexed by slot&mask (0 = free) rather than a hash map: the
// allocator is the controller's hottest data structure and the ring drops
// both the hashing cost and the per-entry allocations. The ring covers
// slots [base, base+len); retire advances base once the caller guarantees
// no request can arrive early enough to claim the slots below it, and the
// ring doubles if an in-flight window ever outgrows it.
type busAllocator struct {
	slotCycles float64
	next       []int64 // next[s&mask]: first maybe-free slot > s, 0 = free
	mask       int64
	base       int64 // slots below base are retired (always allocated)
}

// initialBusSlots must be a power of two; 1024 slots cover an 8-cycle-burst
// window of 8192 cycles, beyond any in-flight spread the engine produces.
const initialBusSlots = 1024

func newBusAllocator(tBurst int) *busAllocator {
	return &busAllocator{
		slotCycles: float64(tBurst),
		next:       make([]int64, initialBusSlots),
		mask:       initialBusSlots - 1,
	}
}

// reset empties the ring for a new run. A grown ring keeps its capacity:
// slot allocation is capacity-independent (the ring only bounds how many
// in-flight slots can be tracked at once, never which slot a request
// gets), so reuse cannot change timing.
func (b *busAllocator) reset(tBurst int) {
	b.slotCycles = float64(tBurst)
	clear(b.next)
	b.base = 0
}

// alloc reserves the first free slot starting at or after `earliest` and
// returns its start time in cycles.
func (b *busAllocator) alloc(earliest float64) float64 {
	s := int64(earliest / b.slotCycles)
	if float64(s)*b.slotCycles < earliest {
		s++
	}
	if s < b.base {
		s = b.base
	}
	s = b.find(s)
	b.next[s&b.mask] = s + 1
	return float64(s) * b.slotCycles
}

// find follows forwarding pointers to the first free slot ≥ s, compressing
// the path as it goes.
func (b *busAllocator) find(s int64) int64 {
	root := s
	for {
		if root-b.base >= int64(len(b.next)) {
			b.grow(root)
		}
		n := b.next[root&b.mask]
		if n == 0 {
			break
		}
		root = n
	}
	// Path compression.
	for s != root {
		i := s & b.mask
		n := b.next[i]
		b.next[i] = root
		s = n
	}
	return root
}

// grow doubles the ring until slot s fits in [base, base+len).
func (b *busAllocator) grow(s int64) {
	size := int64(len(b.next))
	for s-b.base >= size {
		size *= 2
	}
	bigger := make([]int64, size)
	for i, v := range b.next {
		if v != 0 {
			// Recover the absolute slot this ring index held. Exactly one
			// slot in [base, base+oldLen) maps to index i.
			slot := b.base&^b.mask | int64(i)
			if slot < b.base {
				slot += b.mask + 1
			}
			bigger[slot&(size-1)] = v
		}
	}
	b.next = bigger
	b.mask = size - 1
}

// retire marks every slot below `floor` as permanently allocated and frees
// its bookkeeping. The caller guarantees no future alloc will ask for an
// earliest time inside a retired slot.
func (b *busAllocator) retire(floor int64) {
	if floor <= b.base {
		return
	}
	if floor-b.base >= int64(len(b.next)) {
		clear(b.next)
		b.base = floor
		return
	}
	for s := b.base; s < floor; s++ {
		b.next[s&b.mask] = 0
	}
	b.base = floor
}
