package mem

import (
	"testing"
	"testing/quick"
)

func TestBusAllocatorSequential(t *testing.T) {
	b := newBusAllocator(4)
	if got := b.alloc(0); got != 0 {
		t.Fatalf("first slot %v", got)
	}
	if got := b.alloc(0); got != 4 {
		t.Fatalf("second slot %v", got)
	}
	if got := b.alloc(0); got != 8 {
		t.Fatalf("third slot %v", got)
	}
}

func TestBusAllocatorBackfill(t *testing.T) {
	b := newBusAllocator(4)
	// A far-future reservation must not block earlier slots.
	if got := b.alloc(1000); got != 1000 {
		t.Fatalf("future slot %v", got)
	}
	if got := b.alloc(0); got != 0 {
		t.Fatalf("backfill slot %v, want 0", got)
	}
	if got := b.alloc(998); got != 1004 {
		t.Fatalf("slot adjacent to reservation %v, want 1004", got)
	}
}

func TestBusAllocatorRoundsUp(t *testing.T) {
	b := newBusAllocator(4)
	if got := b.alloc(3); got != 4 {
		t.Fatalf("unaligned request got %v, want 4", got)
	}
	if got := b.alloc(4); got != 8 {
		t.Fatalf("got %v, want 8", got)
	}
}

func TestBusAllocatorNoDoubleBooking(t *testing.T) {
	f := func(reqs []uint16) bool {
		b := newBusAllocator(4)
		seen := map[float64]bool{}
		for _, r := range reqs {
			s := b.alloc(float64(r % 1000))
			if s < float64(r%1000) {
				return false // allocated before the request was ready
			}
			if seen[s] {
				return false // same slot handed out twice
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBusAllocator(b *testing.B) {
	a := newBusAllocator(4)
	for i := 0; i < b.N; i++ {
		a.alloc(float64(i % 4096))
	}
}
