package mem

import (
	"math"
	"testing"

	"eccparity/internal/dram"
)

func testConfig(channels, ranks int, chips []dram.Chip) Config {
	return Config{
		Channels:           channels,
		RanksPerChannel:    ranks,
		BanksPerRank:       DefaultBanksPerRank,
		Chips:              chips,
		Timing:             dram.DDR3Timing1GHz(),
		PowerDownThreshold: DefaultPowerDownThreshold,
		LineBytes:          64,
	}
}

func x8Rank(n int) []dram.Chip {
	chips := make([]dram.Chip, n)
	for i := range chips {
		chips[i] = dram.Chip2GbDDR3(dram.X8)
	}
	return chips
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-channel config must panic")
		}
	}()
	NewController(Config{})
}

func TestSingleReadLatency(t *testing.T) {
	c := NewController(testConfig(1, 1, x8Rank(9)))
	tm := dram.DDR3Timing1GHz()
	done := c.Access(0, 0, 0, 0, false, ClassData)
	want := float64(tm.TRCD + tm.CL + tm.TBurst)
	if done != want {
		t.Fatalf("idle-system read latency %v, want %v", done, want)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	c := NewController(testConfig(1, 1, x8Rank(9)))
	tm := dram.DDR3Timing1GHz()
	first := c.Access(0, 0, 0, 0, false, ClassData)
	second := c.Access(1, 0, 0, 0, false, ClassData)
	if second < float64(tm.TRC)+float64(tm.TRCD+tm.CL+tm.TBurst) {
		t.Fatalf("same-bank back-to-back read finished at %v, too early (first %v)", second, first)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	c := NewController(testConfig(1, 1, x8Rank(9)))
	tm := dram.DDR3Timing1GHz()
	_ = c.Access(0, 0, 0, 0, false, ClassData)
	second := c.Access(1, 0, 0, 1, false, ClassData)
	// Bank-parallel: the second activate waits only for tRRD (not tRC),
	// and the data bus pipelines, so the second read completes well before
	// a serialized tRC would allow.
	latest := 1.0 + float64(tm.TRRD+tm.TRCD+tm.CL+2*tm.TBurst)
	if second > latest {
		t.Fatalf("bank-parallel read finished at %v, want ≤ %v", second, latest)
	}
	serialized := float64(tm.TRC + tm.TRCD + tm.CL + tm.TBurst)
	if second >= serialized {
		t.Fatalf("bank-parallel read at %v should beat same-bank serialization (%v)", second, serialized)
	}
}

func TestBusSerializesBursts(t *testing.T) {
	c := NewController(testConfig(1, 1, x8Rank(9)))
	tm := dram.DDR3Timing1GHz()
	var last float64
	for i := 0; i < 8; i++ {
		last = c.Access(0, 0, 0, i, false, ClassData)
	}
	// Eight simultaneous requests to eight banks: the bus delivers one
	// burst per tBurst, so the last finishes no earlier than first-latency
	// + 7 bursts.
	min := float64(tm.TRCD+tm.CL+tm.TBurst) + 7*float64(tm.TBurst)
	if last < min {
		t.Fatalf("burst pipeline too fast: %v < %v", last, min)
	}
}

func TestChannelsIndependent(t *testing.T) {
	c := NewController(testConfig(2, 1, x8Rank(9)))
	d0 := c.Access(0, 0, 0, 0, false, ClassData)
	d1 := c.Access(0, 1, 0, 0, false, ClassData)
	if d0 != d1 {
		t.Fatalf("independent channels must not interfere: %v vs %v", d0, d1)
	}
}

func TestWakePenaltyAfterSleep(t *testing.T) {
	cfg := testConfig(1, 1, x8Rank(9))
	c := NewController(cfg)
	tm := cfg.Timing
	_ = c.Access(0, 0, 0, 0, false, ClassData)
	// Arrive long after the power-down threshold.
	arrive := float64(tm.TRC) + cfg.PowerDownThreshold + 10000
	done := c.Access(arrive, 0, 0, 0, false, ClassData)
	want := arrive + float64(tm.TXP) + float64(tm.TRCD+tm.CL+tm.TBurst)
	// The burst may round up to the next bus slot boundary.
	if done < want || done >= want+float64(tm.TBurst) {
		t.Fatalf("post-sleep read done %v, want %v..%v (incl. tXP)", done, want, want+float64(tm.TBurst))
	}
	if c.Stats().SleepCycles <= 0 {
		t.Fatal("sleep residency not recorded")
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := testConfig(1, 1, x8Rank(9))
	c := NewController(cfg)
	c.Access(0, 0, 0, 0, false, ClassData)
	c.Access(100, 0, 0, 1, true, ClassECC)
	c.Finish(10000)
	s := c.Stats()
	if s.Reads[ClassData] != 1 || s.Writes[ClassECC] != 1 {
		t.Fatalf("class counters wrong: %+v", s)
	}
	chip := dram.Chip2GbDDR3(dram.X8)
	wantAct := 2 * 9 * chip.ActivateEnergy(cfg.Timing)
	if math.Abs(s.ActivateEnergy-wantAct)/wantAct > 1e-9 {
		t.Fatalf("activate energy %v, want %v", s.ActivateEnergy, wantAct)
	}
	wantBurst := 9 * (chip.ReadBurstEnergy(cfg.Timing) + chip.WriteBurstEnergy(cfg.Timing))
	if math.Abs(s.BurstEnergy-wantBurst)/wantBurst > 1e-9 {
		t.Fatalf("burst energy %v, want %v", s.BurstEnergy, wantBurst)
	}
	if s.RefreshEnergy <= 0 || s.StandbyEnergy <= 0 {
		t.Fatalf("background energy missing: %+v", s)
	}
}

func TestIdleSystemSleepsMostly(t *testing.T) {
	// A rank left idle for a long horizon must accumulate nearly all of
	// its background energy in the power-down state.
	cfg := testConfig(1, 1, x8Rank(9))
	c := NewController(cfg)
	c.Access(0, 0, 0, 0, false, ClassData)
	c.Finish(1e6)
	s := c.Stats()
	if s.PowerDownEnergy < 10*s.StandbyEnergy {
		t.Fatalf("idle rank should sleep: pd=%v standby=%v", s.PowerDownEnergy, s.StandbyEnergy)
	}
}

func TestBiggerRankCostsMoreEnergy(t *testing.T) {
	// 36 chips vs 9 chips per rank: same access stream, ≈4× the dynamic
	// energy. This is the paper's core energy mechanism.
	small := NewController(testConfig(1, 1, x8Rank(9)))
	big := NewController(testConfig(1, 1, x8Rank(36)))
	for i := 0; i < 100; i++ {
		small.Access(float64(i*100), 0, 0, i%8, i%3 == 0, ClassData)
		big.Access(float64(i*100), 0, 0, i%8, i%3 == 0, ClassData)
	}
	small.Finish(20000)
	big.Finish(20000)
	ratio := big.Stats().DynamicEnergy() / small.Stats().DynamicEnergy()
	if math.Abs(ratio-4) > 0.01 {
		t.Fatalf("dynamic energy ratio %v, want ≈4", ratio)
	}
}

func TestAvgReadLatency(t *testing.T) {
	c := NewController(testConfig(1, 1, x8Rank(9)))
	c.Access(0, 0, 0, 0, false, ClassData)
	c.Access(0, 0, 0, 0, false, ClassECC) // ECC reads excluded from latency stat
	s := c.Stats()
	if s.ReadLatencyCount != 1 {
		t.Fatalf("latency samples %d, want 1", s.ReadLatencyCount)
	}
	if s.AvgReadLatency() <= 0 {
		t.Fatal("missing latency")
	}
}

func TestMapperDistribution(t *testing.T) {
	m := NewAddressMapper(4, 2, 8, 64)
	counts := make(map[int]int)
	bankCounts := make(map[int]int)
	for p := 0; p < 1024; p++ {
		for l := 0; l < 4; l++ {
			addr := uint64(p)*4096 + uint64(l)*64
			loc := m.Map(addr)
			counts[loc.Channel]++
			bankCounts[loc.Bank]++
			if loc.Channel < 0 || loc.Channel >= 4 || loc.Rank < 0 || loc.Rank >= 2 ||
				loc.Bank < 0 || loc.Bank >= 8 {
				t.Fatalf("mapping out of range: %+v", loc)
			}
		}
	}
	for ch := 0; ch < 4; ch++ {
		if counts[ch] != 1024 {
			t.Fatalf("channel %d got %d lines, want even spread", ch, counts[ch])
		}
	}
	for b := 0; b < 4; b++ {
		if bankCounts[b] == 0 {
			t.Fatalf("bank %d unused", b)
		}
	}
}

func TestMapperAdjacentPagesDifferentChannels(t *testing.T) {
	m := NewAddressMapper(4, 2, 8, 64)
	l0 := m.Map(0)
	l1 := m.Map(4096)
	if l0.Channel == l1.Channel {
		t.Fatal("adjacent pages must land on different channels")
	}
}

func TestMapperAdjacentLinesDifferentBanks(t *testing.T) {
	m := NewAddressMapper(4, 2, 8, 64)
	l0 := m.Map(0)
	l1 := m.Map(64)
	if l0.Bank == l1.Bank {
		t.Fatal("adjacent lines within a page must spread across banks")
	}
}

func TestTRRDSpacesActivates(t *testing.T) {
	cfg := testConfig(1, 1, x8Rank(9))
	c := NewController(cfg)
	tm := cfg.Timing
	first := c.Access(0, 0, 0, 0, false, ClassData)
	second := c.Access(0, 0, 0, 1, false, ClassData)
	// The second activate must wait tRRD even though its bank is free.
	if min := float64(tm.TRRD + tm.TRCD + tm.CL); second < min {
		t.Fatalf("second read %v ignores tRRD (first %v)", second, first)
	}
}

func TestTFAWLimitsActivateBursts(t *testing.T) {
	cfg := testConfig(1, 1, x8Rank(9))
	c := NewController(cfg)
	tm := cfg.Timing
	// Five simultaneous requests to five banks of one rank: the fifth
	// activate must fall outside the tFAW window of the first four.
	var fifth float64
	for i := 0; i < 5; i++ {
		fifth = c.Access(0, 0, 0, i, false, ClassData)
	}
	tfaw := 5 * float64(tm.TRRD)
	if min := tfaw + float64(tm.TRCD+tm.CL+tm.TBurst); fifth < min {
		t.Fatalf("fifth read %v violates tFAW (want ≥ %v)", fifth, min)
	}
}

func TestMoreRanksDodgeTFAW(t *testing.T) {
	// The rank-level-parallelism performance effect (§V-C): spreading the
	// same five requests across two ranks finishes sooner than one rank.
	one := NewController(testConfig(1, 1, x8Rank(9)))
	two := NewController(testConfig(1, 2, x8Rank(9)))
	var lastOne, lastTwo float64
	for i := 0; i < 6; i++ {
		lastOne = one.Access(0, 0, 0, i, false, ClassData)
		lastTwo = two.Access(0, 0, i%2, i/2, false, ClassData)
	}
	if lastTwo >= lastOne {
		t.Fatalf("two ranks (%v) must beat one rank (%v) under tFAW pressure", lastTwo, lastOne)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	cfg := testConfig(1, 1, x8Rank(9))
	c := NewController(cfg)
	tm := cfg.Timing
	wDone := c.Access(0, 0, 0, 0, true, ClassData)
	rDone := c.Access(wDone, 0, 0, 1, false, ClassData)
	// The read's activate must respect the write-to-read turnaround.
	if min := wDone + float64(tm.TWR); rDone-float64(tm.TRCD+tm.CL+tm.TBurst) < min-0.001 {
		t.Fatalf("read after write at %v ignores tWTR-class turnaround (write done %v)", rDone, wDone)
	}
}

func TestRefreshBlackoutDelaysAccess(t *testing.T) {
	cfg := testConfig(1, 1, x8Rank(9))
	c := NewController(cfg)
	tm := cfg.Timing
	// Arrive exactly when the rank's first refresh is scheduled.
	at := float64(tm.TREFI)
	done := c.Access(at, 0, 0, 0, false, ClassData)
	if done < at+float64(tm.TRFC) {
		t.Fatalf("access during refresh finished at %v, want ≥ %v", done, at+float64(tm.TRFC))
	}
	// Well clear of any refresh, latency is nominal again.
	at2 := at + float64(tm.TREFI)/2
	done2 := c.Access(at2, 0, 0, 1, false, ClassData)
	if done2 > at2+float64(tm.TXP+tm.TRCD+tm.CL+2*tm.TBurst) {
		t.Fatalf("access between refreshes too slow: %v", done2-at2)
	}
}

func TestRefreshStaggeredAcrossRanks(t *testing.T) {
	cfg := testConfig(1, 4, x8Rank(9))
	c := NewController(cfg)
	tm := cfg.Timing
	// Rank 0 refreshes at tREFI; rank 2 is offset and must not be blacked
	// out at that moment.
	at := float64(tm.TREFI)
	d0 := c.Access(at, 0, 0, 0, false, ClassData)
	d2 := c.Access(at, 0, 2, 0, false, ClassData)
	if d0 <= d2 {
		t.Fatalf("rank 0 should be refreshing (done %v) while rank 2 is free (done %v)", d0, d2)
	}
}

func TestReadLatencyHistogram(t *testing.T) {
	c := NewController(testConfig(1, 1, x8Rank(9)))
	for i := 0; i < 50; i++ {
		c.Access(float64(i*200), 0, 0, i%8, false, ClassData)
	}
	h := &c.Stats().ReadLatencyHist
	if h.N != 50 {
		t.Fatalf("histogram samples %d, want 50", h.N)
	}
	if h.Mean() != c.Stats().AvgReadLatency() {
		t.Fatalf("histogram mean %v disagrees with AvgReadLatency %v", h.Mean(), c.Stats().AvgReadLatency())
	}
	if h.Percentile(99) < h.Percentile(50) {
		t.Fatal("latency percentiles inverted")
	}
}

func TestOpenPageRowHit(t *testing.T) {
	cfg := testConfig(1, 1, x8Rank(9))
	cfg.OpenPage = true
	c := NewController(cfg)
	tm := cfg.Timing
	first := c.AccessRow(0, 0, 0, 0, 5, false, ClassData)
	second := c.AccessRow(first, 0, 0, 0, 5, false, ClassData)
	// A row hit skips the activate: CAS latency only.
	if want := first + float64(tm.CL+2*tm.TBurst); second > want {
		t.Fatalf("row hit at %v, want ≤ %v", second, want)
	}
	if c.Stats().RowHits != 1 {
		t.Fatalf("row hits %d", c.Stats().RowHits)
	}
	// Row hits skip activate energy: exactly one activate so far.
	chip := dram.Chip2GbDDR3(dram.X8)
	if got := c.Stats().ActivateEnergy; got != 9*chip.ActivateEnergy(tm) {
		t.Fatalf("activate energy %v, want one activate", got)
	}
}

func TestOpenPageRowConflict(t *testing.T) {
	cfg := testConfig(1, 1, x8Rank(9))
	cfg.OpenPage = true
	c := NewController(cfg)
	tm := cfg.Timing
	first := c.AccessRow(0, 0, 0, 0, 5, false, ClassData)
	conflict := c.AccessRow(first, 0, 0, 0, 9, false, ClassData)
	// A conflict pays precharge + activate on top of CAS.
	if min := first + float64(tm.TRP+tm.TRCD+tm.CL+tm.TBurst); conflict < min {
		t.Fatalf("row conflict at %v, want ≥ %v", conflict, min)
	}
	if c.Stats().RowHits != 0 {
		t.Fatal("conflict counted as hit")
	}
}

func TestClosePageNeverRowHits(t *testing.T) {
	c := NewController(testConfig(1, 1, x8Rank(9)))
	for i := 0; i < 5; i++ {
		c.AccessRow(float64(i*200), 0, 0, 0, 7, false, ClassData)
	}
	if c.Stats().RowHits != 0 {
		t.Fatal("close-page must not register row hits")
	}
}

func TestRowBufferFriendlyMap(t *testing.T) {
	m := NewAddressMapper(4, 2, 8, 64)
	m.RowBufferFriendly = true
	l0 := m.Map(0)
	l1 := m.Map(64)
	if l0 != l1 {
		t.Fatalf("lines of one page must share a row: %+v vs %+v", l0, l1)
	}
	// Different pages on the same channel land on different banks.
	l2 := m.Map(4 * 4096) // next page on channel 0
	if l2.Bank == l0.Bank && l2.Row == l0.Row {
		t.Fatal("pages must spread across banks/rows")
	}
}
