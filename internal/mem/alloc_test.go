package mem

import (
	"testing"

	"eccparity/internal/raceflag"
)

// TestAccessRowSteadyStateAllocs pins the zero-allocation property of the
// controller's request path, including the bus-slot allocator and the
// Release retirement sweep.
func TestAccessRowSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	c := NewController(testConfig(2, 2, x8Rank(9)))
	now := 0.0
	i := 0
	n := testing.AllocsPerRun(2000, func() {
		c.AccessRow(now, i%2, (i/2)%2, i%DefaultBanksPerRank, i%7, i%3 == 0, ClassData)
		c.Release(now)
		now += 3.1
		i++
	})
	if n != 0 {
		t.Fatalf("AccessRow allocates %v per op, want 0", n)
	}
}
