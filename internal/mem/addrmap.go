package mem

// AddressMapper implements the paper's device address mapping policy:
// adjacent physical pages interleave across channels (balancing channel
// bandwidth), and within a channel a high-performance map spreads
// consecutive lines across banks and ranks to maximize bank-level
// parallelism (DRAMsim's High_Performance_Map).
type AddressMapper struct {
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	LineBytes       int
	PageBytes       int
	// RowBufferFriendly keeps all lines of a page in one bank row (for
	// the open-page ablation) instead of interleaving lines across banks
	// (the close-page high-performance map).
	RowBufferFriendly bool
}

// NewAddressMapper builds a mapper with 4KB pages.
func NewAddressMapper(channels, ranks, banks, lineBytes int) *AddressMapper {
	return &AddressMapper{
		Channels:        channels,
		RanksPerChannel: ranks,
		BanksPerRank:    banks,
		LineBytes:       lineBytes,
		PageBytes:       4096,
	}
}

// Location is a physical placement of one memory line.
type Location struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
}

// Map places a byte address.
func (m *AddressMapper) Map(addr uint64) Location {
	line := addr / uint64(m.LineBytes)
	page := addr / uint64(m.PageBytes)
	channel := int(page % uint64(m.Channels))
	// Within the channel: interleave consecutive lines of a page across
	// banks, and consecutive pages across ranks, so independent streams
	// land on independent banks.
	chPage := page / uint64(m.Channels)
	if m.RowBufferFriendly {
		bank := int(chPage % uint64(m.BanksPerRank))
		rest := chPage / uint64(m.BanksPerRank)
		rank := int(rest % uint64(m.RanksPerChannel))
		row := int(rest / uint64(m.RanksPerChannel))
		return Location{Channel: channel, Rank: rank, Bank: bank, Row: row}
	}
	lineInPage := line % uint64(m.PageBytes/m.LineBytes)
	bank := int(lineInPage % uint64(m.BanksPerRank))
	rank := int(chPage % uint64(m.RanksPerChannel))
	row := int(chPage / uint64(m.RanksPerChannel))
	return Location{Channel: channel, Rank: rank, Bank: bank, Row: row}
}
