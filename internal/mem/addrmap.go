package mem

import (
	"fmt"
	"math/bits"
)

// AddressMapper implements the paper's device address mapping policy:
// adjacent physical pages interleave across channels (balancing channel
// bandwidth), and within a channel a high-performance map spreads
// consecutive lines across banks and ranks to maximize bank-level
// parallelism (DRAMsim's High_Performance_Map).
type AddressMapper struct {
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	LineBytes       int
	PageBytes       int
	// RowBufferFriendly keeps all lines of a page in one bank row (for
	// the open-page ablation) instead of interleaving lines across banks
	// (the close-page high-performance map).
	RowBufferFriendly bool

	// Map sits on the simulation's hot path, where general 64-bit
	// division is the most expensive ALU operation it would perform —
	// and every geometry divisor except (sometimes) the channel count is
	// a power of two, so the divides reduce to the shifts and masks
	// precomputed here.
	ready                bool
	lineShift, pageShift uint
	lpMask               uint64 // lines per page − 1
	chShift              uint
	chPow2               bool
	bankShift            uint
	bankPow2             bool
	rankShift            uint
	rankPow2             bool
}

// NewAddressMapper builds a mapper with 4KB pages.
func NewAddressMapper(channels, ranks, banks, lineBytes int) *AddressMapper {
	m := &AddressMapper{
		Channels:        channels,
		RanksPerChannel: ranks,
		BanksPerRank:    banks,
		LineBytes:       lineBytes,
		PageBytes:       4096,
	}
	m.precompute()
	return m
}

// Location is a physical placement of one memory line.
type Location struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
}

func pow2Shift(v int) (uint, bool) {
	if v <= 0 || v&(v-1) != 0 {
		return 0, false
	}
	return uint(bits.TrailingZeros64(uint64(v))), true
}

// precompute derives the shift/mask fast paths from the public geometry.
func (m *AddressMapper) precompute() {
	var ok bool
	if m.lineShift, ok = pow2Shift(m.LineBytes); !ok {
		panic(fmt.Sprintf("mem: line size %d not a power of two", m.LineBytes))
	}
	if m.pageShift, ok = pow2Shift(m.PageBytes); !ok {
		panic(fmt.Sprintf("mem: page size %d not a power of two", m.PageBytes))
	}
	m.lpMask = uint64(m.PageBytes/m.LineBytes - 1)
	m.chShift, m.chPow2 = pow2Shift(m.Channels)
	m.bankShift, m.bankPow2 = pow2Shift(m.BanksPerRank)
	m.rankShift, m.rankPow2 = pow2Shift(m.RanksPerChannel)
	m.ready = true
}

// divMod divides n by the possibly-non-power-of-two divisor d given its
// pow2Shift result; in the general case the compiler folds quotient and
// remainder into a single DIV.
func divMod(n uint64, d int, shift uint, pow2 bool) (q, r uint64) {
	if pow2 {
		return n >> shift, n & (uint64(d) - 1)
	}
	q = n / uint64(d)
	return q, n - q*uint64(d)
}

// Map places a byte address.
func (m *AddressMapper) Map(addr uint64) Location {
	if !m.ready {
		// Mapper built as a struct literal rather than NewAddressMapper.
		m.precompute()
	}
	page := addr >> m.pageShift
	chPage, channel := divMod(page, m.Channels, m.chShift, m.chPow2)
	// Within the channel: interleave consecutive lines of a page across
	// banks, and consecutive pages across ranks, so independent streams
	// land on independent banks.
	if m.RowBufferFriendly {
		rest, bank := divMod(chPage, m.BanksPerRank, m.bankShift, m.bankPow2)
		row, rank := divMod(rest, m.RanksPerChannel, m.rankShift, m.rankPow2)
		return Location{Channel: int(channel), Rank: int(rank), Bank: int(bank), Row: int(row)}
	}
	lineInPage := (addr >> m.lineShift) & m.lpMask
	_, bank := divMod(lineInPage, m.BanksPerRank, m.bankShift, m.bankPow2)
	row, rank := divMod(chPage, m.RanksPerChannel, m.rankShift, m.rankPow2)
	return Location{Channel: int(channel), Rank: int(rank), Bank: int(bank), Row: int(row)}
}
