// Package prof wires the -cpuprofile/-memprofile CLI flags to
// runtime/pprof so every command can emit profiles on a clean exit.
// Future performance work should start from one of these profiles rather
// than a guess:
//
//	eccsim -exp fig10 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling if cpuPath is nonempty and returns a stop
// function that must run on clean exit: it finishes the CPU profile and, if
// memPath is nonempty, writes a heap profile (after a GC, so the profile
// shows live memory rather than garbage).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: create mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: write mem profile: %v\n", err)
			}
		}
	}, nil
}
