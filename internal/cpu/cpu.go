// Package cpu models the processor cores of Table I: two-issue out-of-order
// cores with a 64-entry ROB and 32/32 LSQ. The model is a bounded-MLP
// abstraction: a core executes compute instructions at its issue width,
// overlaps up to MaxOutstanding memory-level-parallel misses, and stalls
// when the miss window (the ROB's capacity to slide past outstanding loads)
// is full. Stores retire into the write path without stalling the core.
//
// This is the coupling the paper's evaluation actually exercises: memory
// latency and bandwidth throttle instruction throughput; everything else
// about the pipeline is irrelevant to the memory-system comparison.
package cpu

// Params mirrors Table I.
type Params struct {
	IssueWidth     int     // issue slots per cycle
	BaseCPI        float64 // dependency-limited cycles per instruction
	MaxOutstanding int     // concurrent misses a core can tolerate (bounded MLP)
	LLCHitCycles   int     // hit latency charged when the miss window is full
}

// DefaultParams returns the paper's core configuration: 2-wide, ROB 64,
// LSQ 32/32. A 64-entry ROB with a 32-entry load queue sustains roughly
// eight overlapped misses. Although the machine can issue two instructions
// per cycle, dependent chains hold SPEC-class code near one instruction
// per cycle outside of memory stalls, which BaseCPI captures.
func DefaultParams() Params {
	return Params{IssueWidth: 2, BaseCPI: 1.0, MaxOutstanding: 8, LLCHitCycles: 10}
}

// Core is one core's timing state. The zero value is not usable; use New.
type Core struct {
	p            Params
	time         float64
	instructions uint64
	// outstanding holds completion times of in-flight misses, oldest first.
	outstanding []float64
	// StallCycles accumulates time spent blocked on the miss window.
	StallCycles float64
}

// New builds a core.
func New(p Params) *Core {
	return &Core{p: p, outstanding: make([]float64, 0, p.MaxOutstanding)}
}

// Time returns the core-local clock in cycles.
func (c *Core) Time() float64 { return c.time }

// Instructions returns the retired instruction count.
func (c *Core) Instructions() uint64 { return c.instructions }

// AdvanceCompute retires n compute instructions at the dependency-limited
// rate (never faster than the issue width allows).
func (c *Core) AdvanceCompute(n int) {
	cpi := c.p.BaseCPI
	if min := 1 / float64(c.p.IssueWidth); cpi < min {
		cpi = min
	}
	c.time += float64(n) * cpi
	c.instructions += uint64(n)
}

// BeginMiss reserves a miss slot, stalling the core until the oldest
// outstanding miss completes if the window is full. It returns the cycle at
// which the new miss may issue. Call CompleteMiss with the controller's
// completion time afterwards.
func (c *Core) BeginMiss() float64 {
	c.drain()
	if len(c.outstanding) >= c.p.MaxOutstanding {
		oldest := c.outstanding[0]
		if oldest > c.time {
			c.StallCycles += oldest - c.time
			c.time = oldest
		}
		c.outstanding = c.outstanding[1:]
	}
	return c.time
}

// CompleteMiss records the completion time of the miss issued at BeginMiss.
func (c *Core) CompleteMiss(done float64) {
	// Keep the list sorted (completion times are near-monotonic; a simple
	// insertion keeps the oldest-first invariant exact).
	i := len(c.outstanding)
	c.outstanding = append(c.outstanding, done)
	for i > 0 && c.outstanding[i-1] > done {
		c.outstanding[i] = c.outstanding[i-1]
		i--
	}
	c.outstanding[i] = done
}

// Hit charges an LLC hit. Hits are normally overlapped; when the miss
// window is saturated the core is latency-bound and pays the hit latency.
func (c *Core) Hit() {
	c.drain()
	if len(c.outstanding) >= c.p.MaxOutstanding {
		c.time += float64(c.p.LLCHitCycles)
	}
}

// drain retires misses that completed before the current core time.
func (c *Core) drain() {
	for len(c.outstanding) > 0 && c.outstanding[0] <= c.time {
		c.outstanding = c.outstanding[1:]
	}
}

// Drain waits for every outstanding miss (end of simulation).
func (c *Core) Drain() {
	if n := len(c.outstanding); n > 0 {
		last := c.outstanding[n-1]
		if last > c.time {
			c.StallCycles += last - c.time
			c.time = last
		}
		c.outstanding = c.outstanding[:0]
	}
}
