// Package cpu models the processor cores of Table I: two-issue out-of-order
// cores with a 64-entry ROB and 32/32 LSQ. The model is a bounded-MLP
// abstraction: a core executes compute instructions at its issue width,
// overlaps up to MaxOutstanding memory-level-parallel misses, and stalls
// when the miss window (the ROB's capacity to slide past outstanding loads)
// is full. Stores retire into the write path without stalling the core.
//
// This is the coupling the paper's evaluation actually exercises: memory
// latency and bandwidth throttle instruction throughput; everything else
// about the pipeline is irrelevant to the memory-system comparison.
package cpu

// Params mirrors Table I.
type Params struct {
	IssueWidth     int     // issue slots per cycle
	BaseCPI        float64 // dependency-limited cycles per instruction
	MaxOutstanding int     // concurrent misses a core can tolerate (bounded MLP)
	LLCHitCycles   int     // hit latency charged when the miss window is full
}

// DefaultParams returns the paper's core configuration: 2-wide, ROB 64,
// LSQ 32/32. A 64-entry ROB with a 32-entry load queue sustains roughly
// eight overlapped misses. Although the machine can issue two instructions
// per cycle, dependent chains hold SPEC-class code near one instruction
// per cycle outside of memory stalls, which BaseCPI captures.
func DefaultParams() Params {
	return Params{IssueWidth: 2, BaseCPI: 1.0, MaxOutstanding: 8, LLCHitCycles: 10}
}

// Core is one core's timing state. The zero value is not usable; use New.
type Core struct {
	p            Params
	time         float64
	instructions uint64
	// out is a ring buffer of in-flight miss completion times, sorted
	// oldest-first starting at head. A fixed ring (rather than a slice
	// re-sliced from the front) keeps the per-access window operations
	// free of copying and reallocation.
	out  []float64
	head int
	n    int
	// StallCycles accumulates time spent blocked on the miss window.
	StallCycles float64
}

// New builds a core.
func New(p Params) *Core {
	c := &Core{}
	c.Reset(p)
	return c
}

// Reset returns the core to the exact post-New(p) state, reusing the miss
// ring when its capacity already matches (the ring only ever grows under
// pathological unpaced use, so a reset to the initial capacity keeps a
// reused core's trajectory identical to a fresh one).
func (c *Core) Reset(p Params) {
	capacity := p.MaxOutstanding
	if capacity < 1 {
		capacity = 1
	}
	if len(c.out) != capacity {
		c.out = make([]float64, capacity)
	}
	c.p = p
	c.time = 0
	c.instructions = 0
	c.head = 0
	c.n = 0
	c.StallCycles = 0
}

// Time returns the core-local clock in cycles.
func (c *Core) Time() float64 { return c.time }

// Instructions returns the retired instruction count.
func (c *Core) Instructions() uint64 { return c.instructions }

// AdvanceCompute retires n compute instructions at the dependency-limited
// rate (never faster than the issue width allows).
func (c *Core) AdvanceCompute(n int) {
	cpi := c.p.BaseCPI
	if min := 1 / float64(c.p.IssueWidth); cpi < min {
		cpi = min
	}
	c.time += float64(n) * cpi
	c.instructions += uint64(n)
}

// BeginMiss reserves a miss slot, stalling the core until the oldest
// outstanding miss completes if the window is full. It returns the cycle at
// which the new miss may issue. Call CompleteMiss with the controller's
// completion time afterwards.
func (c *Core) BeginMiss() float64 {
	c.drain()
	if c.n >= c.p.MaxOutstanding {
		oldest := c.out[c.head]
		if oldest > c.time {
			c.StallCycles += oldest - c.time
			c.time = oldest
		}
		c.pop()
	}
	return c.time
}

// CompleteMiss records the completion time of the miss issued at BeginMiss.
func (c *Core) CompleteMiss(done float64) {
	if c.n == len(c.out) {
		c.grow()
	}
	// Keep the ring sorted (completion times are near-monotonic; a simple
	// insertion keeps the oldest-first invariant exact).
	i := c.n
	c.n++
	for i > 0 && c.out[c.idx(i-1)] > done {
		c.out[c.idx(i)] = c.out[c.idx(i-1)]
		i--
	}
	c.out[c.idx(i)] = done
}

// Hit charges an LLC hit. Hits are normally overlapped; when the miss
// window is saturated the core is latency-bound and pays the hit latency.
func (c *Core) Hit() {
	c.drain()
	if c.n >= c.p.MaxOutstanding {
		c.time += float64(c.p.LLCHitCycles)
	}
}

// idx maps a logical window position (0 = oldest) to a ring slot.
func (c *Core) idx(i int) int {
	i += c.head
	if i >= len(c.out) {
		i -= len(c.out)
	}
	return i
}

// pop discards the oldest in-flight miss.
func (c *Core) pop() {
	c.head++
	if c.head == len(c.out) {
		c.head = 0
	}
	c.n--
}

// grow doubles the ring; only reachable when callers push more completions
// than MaxOutstanding without BeginMiss pacing them.
func (c *Core) grow() {
	bigger := make([]float64, 2*len(c.out))
	for i := 0; i < c.n; i++ {
		bigger[i] = c.out[c.idx(i)]
	}
	c.out = bigger
	c.head = 0
}

// drain retires misses that completed before the current core time.
func (c *Core) drain() {
	for c.n > 0 && c.out[c.head] <= c.time {
		c.pop()
	}
}

// Drain waits for every outstanding miss (end of simulation).
func (c *Core) Drain() {
	if c.n > 0 {
		last := c.out[c.idx(c.n-1)]
		if last > c.time {
			c.StallCycles += last - c.time
			c.time = last
		}
		c.head = 0
		c.n = 0
	}
}
