package cpu

import "testing"

func TestComputeAdvancesAtBaseCPI(t *testing.T) {
	c := New(DefaultParams())
	c.AdvanceCompute(100)
	if c.Time() != 100*DefaultParams().BaseCPI {
		t.Fatalf("100 instr at CPI %v: got %v cycles", DefaultParams().BaseCPI, c.Time())
	}
	if c.Instructions() != 100 {
		t.Fatalf("instructions %d", c.Instructions())
	}
	// The issue width caps throughput even for an optimistic BaseCPI.
	wide := New(Params{IssueWidth: 2, BaseCPI: 0.1, MaxOutstanding: 4, LLCHitCycles: 10})
	wide.AdvanceCompute(100)
	if wide.Time() != 50 {
		t.Fatalf("issue width must floor CPI at 0.5: got %v", wide.Time())
	}
}

func TestMissesOverlapUpToWindow(t *testing.T) {
	p := DefaultParams()
	c := New(p)
	// A window's worth of misses, each 200 cycles: all overlap, no stall.
	for i := 0; i < p.MaxOutstanding; i++ {
		at := c.BeginMiss()
		c.CompleteMiss(at + 200)
	}
	if c.Time() != 0 {
		t.Fatalf("full window must not stall, time=%v", c.Time())
	}
	// One more miss blocks until the oldest completes.
	at := c.BeginMiss()
	if at != 200 {
		t.Fatalf("overflow miss must wait for oldest, issued at %v", at)
	}
	if c.StallCycles != 200 {
		t.Fatalf("stall cycles %v", c.StallCycles)
	}
}

func TestDrainRetiresCompleted(t *testing.T) {
	c := New(DefaultParams())
	at := c.BeginMiss()
	c.CompleteMiss(at + 10)
	c.AdvanceCompute(100) // time 100 > 10: miss retired
	at = c.BeginMiss()
	if at != 100 {
		t.Fatalf("miss should issue immediately at 100, got %v", at)
	}
	c.CompleteMiss(at + 10)
	c.Drain()
	if c.Time() != 110 {
		t.Fatalf("drain must wait for last completion, time=%v", c.Time())
	}
}

func TestHitLatencyOnlyWhenSaturated(t *testing.T) {
	p := DefaultParams()
	c := New(p)
	c.Hit()
	if c.Time() != 0 {
		t.Fatalf("unsaturated hit must be hidden, time=%v", c.Time())
	}
	for i := 0; i < p.MaxOutstanding; i++ {
		at := c.BeginMiss()
		c.CompleteMiss(at + 1000)
	}
	c.Hit()
	if c.Time() != float64(p.LLCHitCycles) {
		t.Fatalf("saturated hit must cost latency, time=%v", c.Time())
	}
}

func TestCompletionOrderMaintained(t *testing.T) {
	// Out-of-order completions must still retire oldest-completion-first.
	c := New(Params{IssueWidth: 2, MaxOutstanding: 2, LLCHitCycles: 10})
	a := c.BeginMiss()
	c.CompleteMiss(a + 500) // slow miss
	b := c.BeginMiss()
	c.CompleteMiss(b + 100) // fast miss completes first
	at := c.BeginMiss()     // window full: waits for the FAST one (oldest completion)
	if at != 100 {
		t.Fatalf("third miss should wait until 100, got %v", at)
	}
}

func TestLongerLatencyLowersIPC(t *testing.T) {
	run := func(lat float64) float64 {
		c := New(DefaultParams())
		for i := 0; i < 1000; i++ {
			c.AdvanceCompute(16)
			at := c.BeginMiss()
			c.CompleteMiss(at + lat)
		}
		c.Drain()
		return float64(c.Instructions()) / c.Time()
	}
	fast, slow := run(50), run(400)
	if slow >= fast {
		t.Fatalf("IPC must drop with memory latency: fast=%v slow=%v", fast, slow)
	}
	if slow > 0.5*fast {
		t.Fatalf("8x latency must hurt substantially: fast=%v slow=%v", fast, slow)
	}
}
