// Package stats provides the small numeric helpers shared by the
// experiment runners: means, geometric means, percentiles and reduction
// percentages, all defensive about empty inputs.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values, or 0 for empty
// input. Non-positive entries are skipped.
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on a
// copy of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	rank := int(math.Ceil(p/100*float64(len(c)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(c) {
		rank = len(c) - 1
	}
	return c[rank]
}

// ReductionPct returns the percentage reduction of new versus old:
// 100·(old−new)/old. Positive means new is smaller (better, for energy).
func ReductionPct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (old - new) / old
}
