package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean(1,4) = %v", got)
	}
	// Non-positive entries are skipped.
	if got := GeoMean([]float64{-1, 0, 4}); got != 4 {
		t.Fatalf("geomean with junk = %v", got)
	}
	if GeoMean([]float64{0, -2}) != 0 {
		t.Fatal("all-junk geomean must be 0")
	}
}

func TestGeoMeanLeqMean(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("p50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 100) != 5 || Percentile(xs, 0) != 1 {
		t.Fatal("extremes wrong")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("percentile sorted the caller's slice")
	}
}

func TestReductionPct(t *testing.T) {
	if ReductionPct(0, 5) != 0 {
		t.Fatal("zero base must yield 0")
	}
	if got := ReductionPct(200, 100); got != 50 {
		t.Fatalf("got %v", got)
	}
	if got := ReductionPct(100, 120); got != -20 {
		t.Fatalf("negative reduction: got %v", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.String() != "empty" || h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram misbehaves")
	}
	for _, v := range []float64{1, 2, 4, 8, 100} {
		h.Add(v)
	}
	if h.N != 5 || h.MaxV != 100 {
		t.Fatalf("n=%d max=%v", h.N, h.MaxV)
	}
	if m := h.Mean(); m != 23 {
		t.Fatalf("mean %v", m)
	}
	if p := h.Percentile(100); p != 100 {
		t.Fatalf("p100 %v", p)
	}
	if p := h.Percentile(50); p < 2 || p > 8 {
		t.Fatalf("p50 bound %v", p)
	}
	if h.String() == "" {
		t.Fatal("summary empty")
	}
}

func TestHistogramClampsNegatives(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.N != 1 || h.Sum != 0 {
		t.Fatalf("negative sample not clamped: %+v", h)
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Add(float64(i))
	}
	prev := 0.0
	for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentiles not monotone at p%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

// TestHistogramPercentileEdges pins the p-clamping contract: out-of-range p
// behaves like the nearest bound (a negative p used to convert to a huge
// unsigned rank), p=0 still lands in the smallest occupied bucket, and
// bucket edges never exceed the observed maximum — including bucket 0's
// edge of 1.0 over sub-1 samples.
func TestHistogramPercentileEdges(t *testing.T) {
	var empty Histogram
	for _, p := range []float64{-10, 0, 50, 100, 200} {
		if v := empty.Percentile(p); v != 0 {
			t.Errorf("empty p%v = %v, want 0", p, v)
		}
	}

	var h Histogram
	for _, v := range []float64{2, 4, 8} {
		h.Add(v)
	}
	if lo, p0 := h.Percentile(-5), h.Percentile(0); lo != p0 {
		t.Errorf("p-5 = %v, want clamped to p0 = %v", lo, p0)
	}
	if hi, p100 := h.Percentile(200), h.Percentile(100); hi != p100 {
		t.Errorf("p200 = %v, want clamped to p100 = %v", hi, p100)
	}
	if v := h.Percentile(0); v < 2 || v > 4 {
		t.Errorf("p0 = %v, want the smallest sample's bucket edge in [2,4]", v)
	}

	var sub Histogram
	sub.Add(0.25) // bucket 0's nominal edge is 1.0, above the observed max
	for _, p := range []float64{0, 50, 100} {
		if v := sub.Percentile(p); v != 0.25 {
			t.Errorf("sub-1 sample p%v = %v, want clamped to max 0.25", p, v)
		}
	}
}

func TestHistogramHugeValues(t *testing.T) {
	var h Histogram
	h.Add(math.MaxFloat64) // must not panic or index out of range
	if h.Percentile(100) != math.MaxFloat64 {
		t.Fatal("max lost")
	}
}
