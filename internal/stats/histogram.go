package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a power-of-two-bucketed histogram for latency-style
// distributions: cheap to update on the simulator's hot path, accurate
// enough for percentile reporting. Bucket i holds values in [2^i, 2^(i+1)).
type Histogram struct {
	Buckets [40]uint64
	N       uint64
	Sum     float64
	MaxV    float64
}

// Add records one sample (negative samples are clamped to zero).
func (h *Histogram) Add(v float64) {
	if v < 0 {
		v = 0
	}
	h.N++
	h.Sum += v
	if v > h.MaxV {
		h.MaxV = v
	}
	i := 0
	if v >= 1 {
		i = int(math.Log2(v)) + 1
		if i >= len(h.Buckets) {
			i = len(h.Buckets) - 1
		}
	}
	h.Buckets[i]++
}

// Mean returns the average sample.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Percentile returns an upper bound of the p-th percentile: the top edge
// of the bucket containing it, never exceeding the observed maximum. p is
// clamped to [0, 100] (a negative p would otherwise convert to a huge
// unsigned rank); an empty histogram reports 0.
func (h *Histogram) Percentile(p float64) float64 {
	if h.N == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.N)))
	if rank == 0 {
		// p = 0: the smallest sample still lives in some bucket.
		rank = 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen >= rank {
			if i == len(h.Buckets)-1 {
				// The overflow bucket has no meaningful upper edge.
				return h.MaxV
			}
			edge := 1.0
			if i > 0 {
				edge = math.Pow(2, float64(i))
			}
			if edge > h.MaxV {
				return h.MaxV
			}
			return edge
		}
	}
	return h.MaxV
}

// String renders a compact summary.
func (h *Histogram) String() string {
	if h.N == 0 {
		return "empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50≤%.0f p99≤%.0f max=%.0f",
		h.N, h.Mean(), h.Percentile(50), h.Percentile(99), h.MaxV)
	return b.String()
}
