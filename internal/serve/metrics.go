package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"eccparity/internal/blob"
	"eccparity/internal/jobqueue"
	"eccparity/internal/stats"
)

// metrics aggregates the daemon's observability state. Queue depth and
// cache counters are read live from their owners at scrape time; only the
// per-experiment latency histograms live here (internal/stats.Histogram is
// not safe for concurrent use, so a mutex guards them).
type metrics struct {
	mu      sync.Mutex
	latency map[string]*stats.Histogram // experiment id → compute latency, ms

	// rejectedFull counts 429 backpressure responses; cancelRequests counts
	// accepted DELETE /v1/jobs cancellations.
	rejectedFull   atomic.Uint64
	cancelRequests atomic.Uint64

	// Sweep counters: sweeps accepted, points they expanded to, points
	// served from cache at submission, points computed by sweep jobs, and
	// DELETE /v1/sweeps cancellations.
	sweepsSubmitted     atomic.Uint64
	sweepPointsExpanded atomic.Uint64
	sweepPointsCached   atomic.Uint64
	sweepPointsComputed atomic.Uint64
	sweepCancels        atomic.Uint64

	// Cluster counters (peer.go): submissions forwarded to their ring
	// owner, forwards that fell back to local execution, reads proxied to
	// peers, sweep points adopted from unreachable owners, and result
	// reads answered with a 307 to the hash owner. Emitted only when the
	// server is clustered, so single-node /metrics output is unchanged.
	peerForwarded       atomic.Uint64
	peerForwardFallback atomic.Uint64
	peerProxiedReads    atomic.Uint64
	peerAdoptedPoints   atomic.Uint64
	resultsRedirected   atomic.Uint64
}

func newMetrics() *metrics {
	return &metrics{latency: map[string]*stats.Histogram{}}
}

// observe records one experiment computation's latency in milliseconds.
func (m *metrics) observe(experiment string, ms float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latency[experiment]
	if !ok {
		h = &stats.Histogram{}
		m.latency[experiment] = h
	}
	h.Add(ms)
}

// meanLatencyMS returns the mean observed compute latency for one
// experiment, or — for experiment "" — across all experiments. 0 means no
// observations yet.
func (m *metrics) meanLatencyMS(experiment string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if experiment != "" {
		if h, ok := m.latency[experiment]; ok {
			return h.Mean()
		}
		return 0
	}
	var sum float64
	var n uint64
	for _, h := range m.latency {
		sum += h.Sum
		n += h.N
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// handleMetrics renders the Prometheus text exposition format. Everything
// the acceptance criteria name is here: queue depth, jobs in flight, cache
// hit/miss/coalesced counters (hit ratio is hits+coalesced over lookups),
// and per-experiment latency histograms on the simulator's power-of-two
// buckets.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("eccsimd_queue_depth", "Jobs waiting in the bounded submission queue.", s.queue.Depth())
	gauge("eccsimd_jobs_inflight", "Experiment jobs currently executing.", s.queue.InFlight())

	// Scheduler observability: per-class backlog, how long jobs of each
	// class sit queued, and the age of the oldest still-queued job — the
	// starvation signal (a class whose oldest age grows without bound is
	// not being dispatched).
	fmt.Fprintf(&b, "# HELP eccsimd_queue_class_depth Jobs waiting, by scheduling class.\n# TYPE eccsimd_queue_class_depth gauge\n")
	for _, c := range jobqueue.Classes() {
		fmt.Fprintf(&b, "eccsimd_queue_class_depth{class=%q} %d\n", c.String(), s.queue.ClassDepth(c))
	}
	fmt.Fprintf(&b, "# HELP eccsimd_queue_oldest_age_seconds Age of the oldest still-queued job, by scheduling class (0 when the class is empty).\n# TYPE eccsimd_queue_oldest_age_seconds gauge\n")
	for _, c := range jobqueue.Classes() {
		age := 0.0
		if d, ok := s.queue.OldestQueuedAge(c); ok {
			age = d.Seconds()
		}
		fmt.Fprintf(&b, "eccsimd_queue_oldest_age_seconds{class=%q} %.6f\n", c.String(), age)
	}
	b.WriteString("# HELP eccsimd_queue_wait_ms Time jobs spent queued before dispatch, by scheduling class.\n")
	b.WriteString("# TYPE eccsimd_queue_wait_ms histogram\n")
	for _, c := range jobqueue.Classes() {
		h := s.queue.QueueWait(c)
		writeHistogram(&b, "eccsimd_queue_wait_ms", fmt.Sprintf("class=%q", c.String()), &h)
	}

	qc := s.queue.Stats()
	counter("eccsimd_jobs_submitted_total", "Jobs accepted into the queue.", qc.Submitted)
	fmt.Fprintf(&b, "# HELP eccsimd_jobs_total Jobs by terminal status.\n# TYPE eccsimd_jobs_total counter\n")
	fmt.Fprintf(&b, "eccsimd_jobs_total{status=\"done\"} %d\n", qc.Done)
	fmt.Fprintf(&b, "eccsimd_jobs_total{status=\"failed\"} %d\n", qc.Failed)
	fmt.Fprintf(&b, "eccsimd_jobs_total{status=\"canceled\"} %d\n", qc.Canceled)
	counter("eccsimd_rejected_full_total", "Submissions rejected with 429 because the queue was saturated.", s.metrics.rejectedFull.Load())
	counter("eccsimd_cancel_requests_total", "Accepted DELETE /v1/jobs cancellations.", s.metrics.cancelRequests.Load())

	counter("eccsimd_sweeps_total", "Sweeps accepted via POST /v1/sweeps.", s.metrics.sweepsSubmitted.Load())
	counter("eccsimd_sweep_points_expanded_total", "Points the accepted sweeps expanded to.", s.metrics.sweepPointsExpanded.Load())
	counter("eccsimd_sweep_points_cached_total", "Sweep points served from the result cache at submission (no job).", s.metrics.sweepPointsCached.Load())
	counter("eccsimd_sweep_points_computed_total", "Sweep points computed by their own job (cache misses).", s.metrics.sweepPointsComputed.Load())
	counter("eccsimd_sweep_cancel_requests_total", "DELETE /v1/sweeps cancellations.", s.metrics.sweepCancels.Load())

	cs := s.cache.Stats()
	counter("eccsimd_cache_hits_total", "Requests served from the result cache (memory or disk).", cs.Hits)
	counter("eccsimd_cache_misses_total", "Requests that had to compute their result.", cs.Misses)
	counter("eccsimd_cache_coalesced_total", "Requests that shared another request's in-flight computation.", cs.Coalesced)
	counter("eccsimd_cache_evicted_total", "Disk entries evicted to stay under the byte budget.", cs.Evicted)
	counter("eccsimd_cache_corrupt_total", "Disk entries that failed their checksum and were recomputed.", cs.Corrupt)
	gauge("eccsimd_cache_entries", "Results held in memory.", cs.Entries)
	gauge("eccsimd_cache_disk_entries", "Results held on disk.", cs.DiskEntries)
	gauge("eccsimd_cache_disk_bytes", "Bytes used by the on-disk result layer.", cs.DiskBytes)
	ratio := 0.0
	if total := cs.Hits + cs.Coalesced + cs.Misses; total > 0 {
		ratio = float64(cs.Hits+cs.Coalesced) / float64(total)
	}
	gauge("eccsimd_cache_hit_ratio", "Fraction of lookups served without recomputation.", fmt.Sprintf("%.6f", ratio))

	// Shared-tier and cluster metrics are emitted only when those features
	// are on, keeping single-node scrape output byte-compatible.
	if s.opts.Blob != nil {
		counter("eccsimd_cache_shared_hits_total", "Lookups served from the shared blob tier.", cs.SharedHits)
		counter("eccsimd_cache_shared_published_total", "Results published (write-behind) to the shared blob tier.", cs.SharedPublished)
		counter("eccsimd_cache_shared_corrupt_total", "Shared blobs that failed their checksum and were deleted.", cs.SharedCorrupt)
		counter("eccsimd_cache_shared_errors_total", "Shared-tier reads or publishes that failed (tier unreachable).", cs.SharedErrors)
		// Erasure-coded tiers additionally report repair activity; a plain
		// single-copy -blob-dir keeps its scrape output unchanged.
		if _, ok := s.opts.Blob.(blob.RepairStatter); ok {
			counter("eccsimd_cache_shared_repaired_total", "Shards rewritten with reconstructed bytes after degraded shared-tier reads.", cs.SharedRepaired)
			counter("eccsimd_cache_shard_errors_total", "Per-shard failures the erasure-coded shared tier absorbed.", cs.ShardErrors)
		}
	}
	if s.clustered() {
		ring := s.peers.ring
		gauge("eccsimd_cluster_nodes", "Replicas in the static member list.", len(ring.Nodes()))
		gauge("eccsimd_cluster_ring_vnodes", "Virtual nodes per replica on the consistent-hash ring.", ring.VNodes())
		gauge("eccsimd_cluster_owned_fraction", "Fraction of content-address space this replica owns.",
			fmt.Sprintf("%.6f", ring.OwnedFraction(s.peers.self.ID)))
		counter("eccsimd_peer_forwarded_total", "Submissions forwarded to their ring owner.", s.metrics.peerForwarded.Load())
		counter("eccsimd_peer_forward_fallback_total", "Forwards that fell back to local execution (owner unreachable or saturated).", s.metrics.peerForwardFallback.Load())
		counter("eccsimd_peer_proxied_reads_total", "Job/sweep/result reads proxied to the replica holding the record.", s.metrics.peerProxiedReads.Load())
		counter("eccsimd_peer_adopted_points_total", "Sweep points adopted locally after their owner stopped answering.", s.metrics.peerAdoptedPoints.Load())
		counter("eccsimd_results_redirected_total", "Result reads answered with a 307 redirect to the hash owner.", s.metrics.resultsRedirected.Load())
	}

	b.WriteString("# HELP eccsimd_experiment_latency_ms Experiment computation latency (cache misses only).\n")
	b.WriteString("# TYPE eccsimd_experiment_latency_ms histogram\n")
	s.metrics.mu.Lock()
	ids := make([]string, 0, len(s.metrics.latency))
	for id := range s.metrics.latency {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		writeHistogram(&b, "eccsimd_experiment_latency_ms", fmt.Sprintf("experiment=%q", id), s.metrics.latency[id])
	}
	s.metrics.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// writeHistogram converts one stats.Histogram to Prometheus histogram
// lines under the given metric name and label pair (`key="value"`).
// Bucket 0 holds [0,1) and bucket i holds [2^(i-1), 2^i), so the
// cumulative upper edges are le="1","2","4",… up to the last occupied
// bucket, then le="+Inf".
func writeHistogram(b *strings.Builder, name, label string, h *stats.Histogram) {
	top := 0
	for i, c := range h.Buckets {
		if c > 0 {
			top = i
		}
	}
	var cum uint64
	edge := 1.0
	for i := 0; i <= top; i++ {
		cum += h.Buckets[i]
		fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", name, label, trimFloat(edge), cum)
		edge *= 2
	}
	fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, label, h.N)
	fmt.Fprintf(b, "%s_sum{%s} %g\n", name, label, h.Sum)
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, label, h.N)
}

// trimFloat renders bucket edges as integers ("1", "2", "4096").
func trimFloat(v float64) string {
	return fmt.Sprintf("%.0f", v)
}
