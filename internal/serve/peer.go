package serve

// Clustering: when Options.Peers lists more than this replica, the daemon
// joins a static consistent-hash fleet (internal/cluster). Every submission
// is owned by exactly one replica — the ring owner of its content address —
// so identical configs submitted anywhere in the fleet coalesce on one
// node's singleflight and compute once. The router keeps the single-node
// wire contract intact:
//
//   - Non-owned submissions are forwarded server-side to the owner; the
//     client sees the same 200/202 bodies it would single-node, plus an
//     X-Eccsimd-Served-By header naming the replica that answered.
//   - Job and sweep ids gain a "<node>:" prefix so reads and cancels can be
//     routed straight to the node that holds the record, from any replica.
//   - Result reads miss-redirect (307) to the hash owner, or proxy-fan-out
//     when the client asks for no_redirect=1 (the pkg/api client does after
//     a redirect hop fails — e.g. the owner died after redirecting).
//   - Every failure degrades toward local execution: an unreachable owner
//     means the receiving replica computes the point itself. Determinism
//     makes that safe — the same config yields byte-identical results on
//     any replica, so the worst case is duplicated work, never divergence.
//
// Forwarded requests carry X-Eccsimd-Relay naming the forwarding node; a
// relayed request is always handled locally, which bounds every forwarding
// chain at one hop and makes routing loops impossible.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"eccparity/internal/cluster"
	"eccparity/pkg/api"
)

// Relay headers. relayHeader marks a peer-forwarded request (value: the
// forwarding node's id) and pins handling to the receiving node; servedBy
// tells the client which replica actually answered.
const (
	relayHeader    = "X-Eccsimd-Relay"
	servedByHeader = "X-Eccsimd-Served-By"
)

// peerSubmitTimeout bounds one forwarded submission or remote job poll —
// both are queue/metadata operations, never computes, so seconds suffice.
const peerSubmitTimeout = 10 * time.Second

// peering is the per-server cluster state: this replica's identity, the
// ring, and the HTTP client used for peer traffic. nil on a single-node
// server, which disables every clustered code path.
type peering struct {
	self cluster.Node
	ring *cluster.Ring
	// hc has no global timeout: proxied sweep watches stream for up to the
	// watch window. Per-call deadlines come from request contexts.
	hc *http.Client
}

func newPeering(nodeID string, peers []cluster.Node, vnodes int) (*peering, error) {
	ring, err := cluster.New(peers, vnodes)
	if err != nil {
		return nil, err
	}
	self, ok := ring.Lookup(nodeID)
	if !ok {
		return nil, fmt.Errorf("serve: node id %q is not in the peer list", nodeID)
	}
	return &peering{self: self, ring: ring, hc: &http.Client{}}, nil
}

// clustered reports whether this server is part of a fleet.
func (s *Server) clustered() bool { return s.peers != nil }

// owner returns the ring owner of a content address and whether it is this
// replica. Single-node servers own everything.
func (s *Server) owner(key string) (cluster.Node, bool) {
	if !s.clustered() {
		return cluster.Node{}, true
	}
	n := s.peers.ring.Owner(key)
	return n, n.ID == s.peers.self.ID
}

// wireID namespaces a local job/sweep id for the cluster wire ("a1:job-3")
// so ids stay unambiguous fleet-wide. Single-node ids are unchanged — the
// PR-7 wire format byte for byte.
func (s *Server) wireID(local string) string {
	if !s.clustered() {
		return local
	}
	return s.peers.self.ID + ":" + local
}

// routeID splits a wire id into its owning node and local id. An unprefixed
// id (or any id on a single-node server) routes locally, so clients from
// the pre-cluster era keep working against the node they talk to.
func (s *Server) routeID(wire string) (node, local string, remote bool) {
	if !s.clustered() {
		return "", wire, false
	}
	node, local, ok := strings.Cut(wire, ":")
	if !ok {
		return "", wire, false
	}
	return node, local, node != s.peers.self.ID
}

// relayed reports whether r was forwarded by a peer — such requests must be
// handled locally (one-hop bound).
func relayed(r *http.Request) bool { return r.Header.Get(relayHeader) != "" }

// peerDo sends one request to a peer with the relay header set, so the
// receiver handles it locally instead of forwarding again.
func (p *peering) peerDo(ctx context.Context, method, url string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set(relayHeader, p.self.ID)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return p.hc.Do(req)
}

// forwardSubmit relays a decoded submission to its owner replica and copies
// the owner's response through verbatim. Returns false when the owner was
// unreachable — the caller then executes locally (fallback beats failure:
// determinism makes duplicate computation safe).
func (s *Server) forwardSubmit(w http.ResponseWriter, r *http.Request, owner cluster.Node, req api.SubmitRequest) bool {
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(r.Context(), peerSubmitTimeout)
	defer cancel()
	resp, err := s.peers.peerDo(ctx, http.MethodPost, owner.Addr+"/v1/experiments", body)
	if err != nil {
		s.metrics.peerForwardFallback.Add(1)
		return false
	}
	defer resp.Body.Close()
	s.metrics.peerForwarded.Add(1)
	w.Header().Set(servedByHeader, owner.ID)
	copyResponse(w, resp)
	return true
}

// proxyToNode forwards the incoming request as-is (path, query, body) to a
// named peer and streams the response back, flushing per chunk so proxied
// NDJSON watch streams stay live. Unknown or unreachable peers answer 502 —
// the record genuinely lives there, so nothing local can satisfy the read.
func (s *Server) proxyToNode(w http.ResponseWriter, r *http.Request, nodeID string) {
	node, ok := s.peers.ring.Lookup(nodeID)
	if !ok {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "unknown replica %q in id %q", nodeID, r.URL.Path)
		return
	}
	var body []byte
	if r.Body != nil {
		body, _ = io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	}
	url := node.Addr + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	resp, err := s.peers.peerDo(r.Context(), r.Method, url, body)
	if err != nil {
		httpError(w, http.StatusBadGateway, api.CodeInternal, "replica %s unreachable: %v", nodeID, err)
		return
	}
	defer resp.Body.Close()
	s.metrics.peerProxiedReads.Add(1)
	w.Header().Set(servedByHeader, nodeID)
	copyResponse(w, resp)
}

// copyResponse relays status, content type and body, flushing after every
// chunk so streamed bodies (sweep watches) pass through unbuffered.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// proxyResultRead is the no_redirect fan-out: the local cache missed, so
// ask every other replica directly (relay-tagged, so they answer from their
// own caches). First 200 wins. Used when the client explicitly declined a
// redirect — typically because it already followed one into a dead node.
func (s *Server) proxyResultRead(w http.ResponseWriter, r *http.Request, hash string) bool {
	for _, n := range s.peers.ring.Nodes() {
		if n.ID == s.peers.self.ID {
			continue
		}
		ctx, cancel := context.WithTimeout(r.Context(), peerSubmitTimeout)
		resp, err := s.peers.peerDo(ctx, http.MethodGet, n.Addr+"/v1/results/"+hash+"?no_redirect=1", nil)
		if err != nil {
			cancel()
			continue
		}
		if resp.StatusCode == http.StatusOK {
			s.metrics.peerProxiedReads.Add(1)
			w.Header().Set(servedByHeader, n.ID)
			copyResponse(w, resp)
			resp.Body.Close()
			cancel()
			return true
		}
		resp.Body.Close()
		cancel()
	}
	return false
}

// remoteSubmit forwards one sweep point to its owner as a relay-tagged
// single submission and reports what came back: a cache hit, an accepted
// remote job, or (on any transport/queue trouble) ok=false so the caller
// runs the point locally.
func (s *Server) remoteSubmit(ctx context.Context, owner cluster.Node, req api.SubmitRequest) (resp api.SubmitResponse, ok bool) {
	body, err := json.Marshal(req)
	if err != nil {
		return api.SubmitResponse{}, false
	}
	ctx, cancel := context.WithTimeout(ctx, peerSubmitTimeout)
	defer cancel()
	hr, err := s.peers.peerDo(ctx, http.MethodPost, owner.Addr+"/v1/experiments", body)
	if err != nil {
		s.metrics.peerForwardFallback.Add(1)
		return api.SubmitResponse{}, false
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK && hr.StatusCode != http.StatusAccepted {
		s.metrics.peerForwardFallback.Add(1)
		return api.SubmitResponse{}, false
	}
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		s.metrics.peerForwardFallback.Add(1)
		return api.SubmitResponse{}, false
	}
	s.metrics.peerForwarded.Add(1)
	return resp, true
}

// remoteJobStatus polls a remote job by its wire id on the node that owns
// it. ok=false means the owner could not answer — dead, draining, or the
// job record is gone — and the caller should adopt the point.
func (s *Server) remoteJobStatus(ctx context.Context, nodeID, wireJobID string) (api.JobStatus, bool) {
	node, found := s.peers.ring.Lookup(nodeID)
	if !found {
		return api.JobStatus{}, false
	}
	ctx, cancel := context.WithTimeout(ctx, peerSubmitTimeout)
	defer cancel()
	resp, err := s.peers.peerDo(ctx, http.MethodGet, node.Addr+"/v1/jobs/"+wireJobID, nil)
	if err != nil {
		return api.JobStatus{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.JobStatus{}, false
	}
	var js api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		return api.JobStatus{}, false
	}
	return js, true
}

// remoteCancel best-effort cancels a remote job (sweep rollback and sweep
// cancel paths). Failures are ignored: the owner may already be gone, and a
// dead node's jobs die with it.
func (s *Server) remoteCancel(ctx context.Context, nodeID, wireJobID string) {
	node, found := s.peers.ring.Lookup(nodeID)
	if !found {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, peerSubmitTimeout)
	defer cancel()
	resp, err := s.peers.peerDo(ctx, http.MethodDelete, node.Addr+"/v1/jobs/"+wireJobID, nil)
	if err != nil {
		return
	}
	resp.Body.Close()
}
