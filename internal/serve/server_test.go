package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eccparity/internal/jobqueue"
	"eccparity/pkg/api"
)

// smallBody is a reduced-budget request that exercises real simulation and
// Monte Carlo paths while staying fast enough for -race CI.
const smallBody = `{"experiment":"table3","cycles":2000,"warmup":200,"trials":8,"seed":5}`

func newServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, api.SubmitResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr api.SubmitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, sr
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// pollDone polls the job until it is terminal and asserts it finished done.
func pollDone(t *testing.T, url, jobID string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, b := getBody(t, url+"/v1/jobs/"+jobID)
		if code != http.StatusOK {
			t.Fatalf("job poll: status %d: %s", code, b)
		}
		var jr api.JobStatus
		if err := json.Unmarshal(b, &jr); err != nil {
			t.Fatal(err)
		}
		if jobqueue.Status(jr.Status).Terminal() {
			if jr.Status != string(jobqueue.StatusDone) {
				t.Fatalf("job %s finished %s: %s", jobID, jr.Status, jr.Error)
			}
			return jr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", jobID)
	return api.JobStatus{}
}

// TestEndToEnd is the tentpole acceptance flow: submit → poll → fetch, then
// an identical submission served from cache with the same hash and
// byte-identical result, all observable via /metrics.
func TestEndToEnd(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 2})

	code, first := postJSON(t, ts.URL, smallBody)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	if first.Cached || first.JobID == "" || first.ResultHash == "" {
		t.Fatalf("first submit response %+v", first)
	}
	job := pollDone(t, ts.URL, first.JobID)
	if job.ResultHash != first.ResultHash {
		t.Errorf("job hash %s != submit hash %s", job.ResultHash, first.ResultHash)
	}

	code, body1 := getBody(t, ts.URL+"/v1/results/"+first.ResultHash)
	if code != http.StatusOK {
		t.Fatalf("result fetch: status %d: %s", code, body1)
	}
	var doc api.Result
	if err := json.Unmarshal(body1, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Hash != first.ResultHash || doc.Experiment != "table3" || !strings.Contains(doc.Report.Text, "Table III") {
		t.Errorf("result doc hash=%s exp=%s", doc.Hash, doc.Experiment)
	}

	// Second identical submission: same hash, served from cache, no job.
	code, second := postJSON(t, ts.URL, smallBody)
	if code != http.StatusOK {
		t.Fatalf("second submit: status %d", code)
	}
	if !second.Cached || second.ResultHash != first.ResultHash || second.JobID != "" {
		t.Fatalf("second submit response %+v, want cached with hash %s", second, first.ResultHash)
	}
	_, body2 := getBody(t, ts.URL+"/v1/results/"+second.ResultHash)
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit bytes differ from the original result")
	}

	code, metrics := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	m := string(metrics)
	for _, want := range []string{
		"eccsimd_queue_depth 0",
		"eccsimd_jobs_inflight 0",
		"eccsimd_jobs_total{status=\"done\"} 1",
		"eccsimd_cache_hits_total 1",
		"eccsimd_cache_misses_total 1",
		"eccsimd_experiment_latency_ms_count{experiment=\"table3\"} 1",
		"eccsimd_experiment_latency_ms_bucket{experiment=\"table3\",le=\"+Inf\"} 1",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q:\n%s", want, m)
		}
	}
}

// TestWorkerCountInvariantResults asserts determinism as an API contract:
// two daemons with different internal worker pools produce the same result
// hash and byte-identical result documents for the same request.
func TestWorkerCountInvariantResults(t *testing.T) {
	run := func(workers int) (string, []byte) {
		_, ts := newServer(t, Options{Workers: workers})
		code, sr := postJSON(t, ts.URL, smallBody)
		if code != http.StatusAccepted {
			t.Fatalf("workers=%d: submit status %d", workers, code)
		}
		pollDone(t, ts.URL, sr.JobID)
		code, b := getBody(t, ts.URL+"/v1/results/"+sr.ResultHash)
		if code != http.StatusOK {
			t.Fatalf("workers=%d: fetch status %d", workers, code)
		}
		return sr.ResultHash, b
	}
	h1, b1 := run(1)
	h8, b8 := run(8)
	if h1 != h8 {
		t.Errorf("result hash differs: workers=1 %s, workers=8 %s", h1, h8)
	}
	if !bytes.Equal(b1, b8) {
		t.Error("result bytes differ between workers=1 and workers=8")
	}
}

func TestNormalizationCollapsesEquivalentRequests(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 2})
	// fig1 is analytic: cycles/trials are irrelevant but still part of the
	// normalized identity; zero values must normalize to the defaults.
	code, a := postJSON(t, ts.URL, `{"experiment":"fig1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollDone(t, ts.URL, a.JobID)
	code, b := postJSON(t, ts.URL, `{"experiment":"fig1","seed":1,"cycles":400000,"warmup":60000,"trials":2000}`)
	if code != http.StatusOK || !b.Cached || b.ResultHash != a.ResultHash {
		t.Errorf("explicit-defaults request: code=%d cached=%v hash=%s (want cache hit on %s)",
			code, b.Cached, b.ResultHash, a.ResultHash)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1})
	for name, body := range map[string]string{
		"unknown experiment": `{"experiment":"fig99"}`,
		"bad json":           `{"experiment":`,
		"unknown field":      `{"experiment":"fig1","bogus":1}`,
		"negative trials":    `{"experiment":"fig8","trials":-4}`,
		"huge budget":        fmt.Sprintf(`{"experiment":"fig8","trials":%d}`, MaxTrials+1),
	} {
		code, _ := postJSON(t, ts.URL, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1})
	if code, _ := getBody(t, ts.URL+"/v1/jobs/job-404"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/results/"+strings.Repeat("ab", 32)); code != http.StatusNotFound {
		t.Errorf("unknown result: status %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/results/../../etc/passwd"); code == http.StatusOK {
		t.Error("path traversal in result hash must not succeed")
	}
}

func TestHealthzAndList(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1})
	code, b := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(b), "ok") {
		t.Errorf("/healthz: %d %s", code, b)
	}
	code, b = getBody(t, ts.URL+"/v1/experiments")
	if code != http.StatusOK || !strings.Contains(string(b), `"fig8"`) || !strings.Contains(string(b), `"table3"`) {
		t.Errorf("/v1/experiments: %d %s", code, b)
	}
}

// TestDrainRejectsNewWorkAndFinishesOldWork mirrors the daemon's SIGTERM
// path: after Drain starts, in-flight jobs finish and land in the cache,
// and new submissions get 503.
func TestDrainRejectsNewWorkAndFinishesOldWork(t *testing.T) {
	s, ts := newServer(t, Options{Workers: 2, JobWorkers: 1})
	code, sr := postJSON(t, ts.URL, smallBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The accepted job must have completed and its result must be served.
	jr := pollDone(t, ts.URL, sr.JobID)
	if jr.ResultHash != sr.ResultHash {
		t.Errorf("drained job hash %s != %s", jr.ResultHash, sr.ResultHash)
	}
	if code, _ := getBody(t, ts.URL+"/v1/results/"+sr.ResultHash); code != http.StatusOK {
		t.Errorf("result missing after drain: status %d", code)
	}
	if code, _ := postJSON(t, ts.URL, `{"experiment":"fig1"}`); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: status %d, want 503", code)
	}
}

// TestDiskCacheSurvivesRestart: a second server over the same cache dir
// serves the first server's result as a cache hit without recomputing.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newServer(t, Options{Workers: 2, CacheDir: dir})
	code, sr := postJSON(t, ts1.URL, smallBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollDone(t, ts1.URL, sr.JobID)
	_, orig := getBody(t, ts1.URL+"/v1/results/"+sr.ResultHash)

	_, ts2 := newServer(t, Options{Workers: 2, CacheDir: dir})
	// Memory is cold but the submit fast path consults disk: the identical
	// request is answered as a cache hit with no job at all.
	code, again := postJSON(t, ts2.URL, smallBody)
	if code != http.StatusOK || !again.Cached || again.ResultHash != sr.ResultHash {
		t.Fatalf("restart submit: status %d cached=%v hash=%s, want disk hit on %s",
			code, again.Cached, again.ResultHash, sr.ResultHash)
	}
	codeB, b := getBody(t, ts2.URL+"/v1/results/"+sr.ResultHash)
	if codeB != http.StatusOK || !bytes.Equal(orig, b) {
		t.Errorf("restart result: status %d, bytes equal = %v", codeB, bytes.Equal(orig, b))
	}
	_, metrics := getBody(t, ts2.URL+"/metrics")
	if !strings.Contains(string(metrics), "eccsimd_cache_hits_total 1") {
		t.Errorf("restart /metrics should show a disk hit:\n%s", metrics)
	}
}
