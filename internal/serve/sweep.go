package serve

// Sweep endpoints: the paper's headline figures are parameter grids — the
// same experiment across channel counts, ECC schemes, and fault-rate axes —
// so the daemon accepts the whole grid as one request. POST /v1/sweeps
// expands base × axes server-side (internal/sim/report.ExpandSweep), runs
// every point as its own job on the shared bounded queue, and content-
// addresses every point individually in the result cache: overlapping
// sweeps and re-runs hit cache per point, not per sweep. Admission is
// all-or-nothing — if the queue cannot hold every uncached point, the
// already-submitted ones are canceled and the whole sweep gets the same
// 429 backpressure a single submission would.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"eccparity/internal/jobqueue"
	"eccparity/internal/resultcache"
	"eccparity/internal/sim"
	"eccparity/internal/sim/report"
	"eccparity/pkg/api"
)

// maxSweepWait caps how long one GET /v1/sweeps/{id}?wait= request may hold
// its connection; clients long-poll in rounds.
const maxSweepWait = 60 * time.Second

// remotePollInterval paces the owner polls for sweep points executing on
// peers while a wait/watch request holds the connection.
const remotePollInterval = 200 * time.Millisecond

// sweepPointRec is one expanded point's record: its config, its content
// address, and — unless it was served from cache at submission — the job
// computing it. In a fleet a point may execute on its ring owner instead:
// node/remoteJob/remote then track the remote job, and an owner that stops
// answering gets the point adopted (resubmitted locally), after which the
// point looks like any local one.
type sweepPointRec struct {
	experiment string
	params     report.Params
	hash       string
	jobID      string // local job; "" = cache hit at submit, or remote

	// Remote execution state (fleet sweeps only), guarded by sweepRec.mu.
	node      string        // replica executing the point ("" = local)
	remoteJob string        // the point's wire job id on that replica
	remote    api.JobStatus // last polled remote status
	adopting  bool          // an adoption submit is in flight
}

// sweepRec is the aggregate object behind /v1/sweeps/{id}. The point list
// and each point's config are fixed at registration; mu guards the remote
// fields, which pollRemote rewrites as owners answer or die. Live local
// status is derived from the queue per read.
type sweepRec struct {
	id      string
	created time.Time

	mu     sync.Mutex
	points []sweepPointRec
}

// liveRemote reports whether any point is still executing on a peer — the
// signal for wait/watch loops to poll (remote completions do not bump the
// local group channel).
func (sw *sweepRec) liveRemote() bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for i := range sw.points {
		if sw.points[i].node != "" && !api.Terminal(sw.points[i].remote.Status) {
			return true
		}
	}
	return false
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "invalid request body: %v", err)
		return
	}
	b := req.Base
	if b.Cycles < 0 || b.Warmup < 0 || b.Trials < 0 || b.TimeoutSeconds < 0 {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "base cycles, warmup, trials and timeout_seconds must be non-negative (zero selects the default)")
		return
	}
	if !api.ValidPriority(b.Priority) {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "unknown priority %q (valid: interactive, sweep, batch)", b.Priority)
		return
	}
	points, err := report.ExpandSweep(b.Experiment,
		report.Params{
			Cycles: b.Cycles, Warmup: b.Warmup, Trials: b.Trials, Seed: b.Seed, CSV: b.CSV,
			Scheme: b.Scheme, SchemeOptions: string(b.SchemeOptions),
		},
		report.SweepAxes{
			Experiments: req.Axes.Experiment,
			Schemes:     req.Axes.Scheme,
			Cycles:      req.Axes.Cycles,
			Warmup:      req.Axes.Warmup,
			Trials:      req.Axes.Trials,
			Seeds:       req.Axes.Seed,
		}, s.opts.MaxSweepPoints)
	if err != nil {
		var ce *sim.ConfigError
		code, status := api.CodeInvalidRequest, http.StatusBadRequest
		if errors.As(err, &ce) {
			switch ce.Field {
			case "experiment":
				code = api.CodeUnknownExperiment
			case "scheme", "scheme_options":
				code = api.CodeUnknownScheme
			case "axes":
				code = api.CodeBudgetTooLarge
			}
		}
		httpError(w, status, code, "invalid sweep: %v", err)
		return
	}
	for i, pt := range points {
		if pt.Params.Cycles > MaxCycles || pt.Params.Warmup > MaxWarmup || pt.Params.Trials > MaxTrials {
			httpError(w, http.StatusBadRequest, api.CodeBudgetTooLarge,
				"point %d (%s) budget too large (max cycles %d, warmup %d, trials %d)",
				i, pt.Experiment, MaxCycles, MaxWarmup, MaxTrials)
			return
		}
	}

	s.sweepMu.Lock()
	s.nextSweep++
	id := fmt.Sprintf("sweep-%d", s.nextSweep)
	s.sweepMu.Unlock()

	// Sweep points default to the low-priority sweep class so big grids
	// interleave behind interactive traffic instead of starving it; an
	// explicit base priority (e.g. batch) overrides. The submitter carries
	// through so two tenants' sweeps drain round-robin.
	subOpts := jobqueue.SubmitOptions{
		Group:     id,
		Submitter: b.Submitter,
		Class:     priorityClass(b.Priority, jobqueue.ClassSweep),
		Timeout:   s.effectiveTimeout(b.TimeoutSeconds),
	}
	// Point priority on the remote wire: a forwarded point is a single
	// submission over there, whose endpoint default is interactive — spell
	// out the sweep default so remote points schedule like local ones.
	pointPriority := b.Priority
	if pointPriority == "" {
		pointPriority = api.PrioritySweep
	}
	recs := make([]sweepPointRec, 0, len(points))
	cached := 0
	// All-or-nothing admission: roll the partial sweep back — local jobs by
	// group, remote points by best-effort per-job cancels — so a 429 leaves
	// nothing of it running anywhere.
	rollback := func() {
		s.queue.CancelGroup(id)
		for i := range recs {
			if recs[i].node != "" {
				s.remoteCancel(r.Context(), recs[i].node, recs[i].remoteJob)
			}
		}
	}
	for _, pt := range points {
		key, err := resultcache.Key(canonicalConfig{Experiment: pt.Experiment, Params: pt.Params})
		if err != nil {
			rollback()
			httpError(w, http.StatusInternalServerError, api.CodeInternal, "hashing config: %v", err)
			return
		}
		rec := sweepPointRec{experiment: pt.Experiment, params: pt.Params, hash: key}
		if _, ok := s.cache.Get(key); ok {
			cached++
			recs = append(recs, rec)
			continue
		}
		// Fleet routing: a point owned by another replica executes there —
		// identical points from overlapping sweeps coalesce on the owner's
		// singleflight fleet-wide. An unreachable or saturated owner falls
		// through to local execution.
		if owner, local := s.owner(key); !local && !relayed(r) {
			resp, ok := s.remoteSubmit(r.Context(), owner, api.SubmitRequest{
				Experiment: pt.Experiment,
				Cycles:     pt.Params.Cycles, Warmup: pt.Params.Warmup,
				Trials: pt.Params.Trials, Seed: pt.Params.Seed, CSV: pt.Params.CSV,
				Scheme:         pt.Params.Scheme,
				SchemeOptions:  json.RawMessage(pt.Params.SchemeOptions),
				TimeoutSeconds: b.TimeoutSeconds,
				Priority:       pointPriority,
				Submitter:      b.Submitter,
			})
			if ok {
				if resp.Cached {
					cached++
				} else {
					rec.node = owner.ID
					rec.remoteJob = resp.JobID
					rec.remote = api.JobStatus{ID: resp.JobID, Status: api.StatusQueued}
				}
				recs = append(recs, rec)
				continue
			}
		}
		jobID, err := s.queue.SubmitWith(s.pointTask(pt.Experiment, pt.Params, key, true), subOpts)
		if err != nil {
			rollback()
			switch {
			case errors.Is(err, jobqueue.ErrFull):
				s.reject429(w, pt.Experiment)
			case errors.Is(err, jobqueue.ErrClosed):
				httpError(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining")
			default:
				httpError(w, http.StatusInternalServerError, api.CodeInternal, "submit sweep point: %v", err)
			}
			return
		}
		rec.jobID = jobID
		recs = append(recs, rec)
	}

	sw := &sweepRec{id: id, created: time.Now(), points: recs}
	s.sweepMu.Lock()
	s.sweeps[id] = sw
	s.sweepMu.Unlock()
	s.metrics.sweepsSubmitted.Add(1)
	s.metrics.sweepPointsExpanded.Add(uint64(len(recs)))
	s.metrics.sweepPointsCached.Add(uint64(cached))

	st := s.sweepStatus(sw)
	code := http.StatusAccepted
	if api.Terminal(st.Status) {
		// Every point came from cache: the sweep is done at submission.
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// lookupSweep returns the registered sweep or nil.
func (s *Server) lookupSweep(id string) *sweepRec {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	return s.sweeps[id]
}

// sweepStatus derives a sweep's wire status: cached points are done by
// construction, remote points report their last polled owner status, and
// everything else reads its local job's current state from the queue.
func (s *Server) sweepStatus(sw *sweepRec) api.SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := api.SweepStatus{
		ID: s.wireID(sw.id), Created: sw.created,
		Progress: api.SweepProgress{Total: len(sw.points)},
		Points:   make([]api.SweepPoint, 0, len(sw.points)),
	}
	for i, rec := range sw.points {
		pt := api.SweepPoint{
			Index: i, Experiment: rec.experiment, ResultHash: rec.hash,
			Params: api.Params{
				Cycles: rec.params.Cycles, Warmup: rec.params.Warmup,
				Trials: rec.params.Trials, Seed: rec.params.Seed, CSV: rec.params.CSV,
				Scheme: rec.params.Scheme, SchemeOptions: rec.params.SchemeOptions,
			},
		}
		if rec.node != "" {
			pt.JobID = rec.remoteJob
			pt.Status, pt.Error = rec.remote.Status, rec.remote.Error
			if pt.Status == "" {
				pt.Status = api.StatusQueued
			}
			switch pt.Status {
			case api.StatusQueued:
				st.Progress.Queued++
			case api.StatusRunning:
				st.Progress.Running++
			case api.StatusDone:
				st.Progress.Done++
			case api.StatusFailed:
				st.Progress.Failed++
			case api.StatusCanceled:
				st.Progress.Canceled++
			}
			st.Points = append(st.Points, pt)
			continue
		}
		if rec.jobID == "" {
			pt.Status, pt.Cached = api.StatusDone, true
			st.Progress.Done++
			st.Progress.Cached++
		} else if snap, ok := s.queue.Get(rec.jobID); !ok {
			// Unreachable while jobs are never evicted; stated for safety.
			pt.Status, pt.Error = api.StatusFailed, "job record missing"
			st.Progress.Failed++
		} else {
			pt.JobID = s.wireID(rec.jobID)
			pt.Status, pt.Error = string(snap.Status), snap.Error
			switch snap.Status {
			case jobqueue.StatusQueued:
				st.Progress.Queued++
			case jobqueue.StatusRunning:
				st.Progress.Running++
			case jobqueue.StatusDone:
				st.Progress.Done++
			case jobqueue.StatusFailed:
				st.Progress.Failed++
			case jobqueue.StatusCanceled:
				st.Progress.Canceled++
			}
		}
		st.Points = append(st.Points, pt)
	}
	p := st.Progress
	switch {
	case p.Done+p.Failed+p.Canceled < p.Total:
		st.Status = api.StatusRunning
	case p.Canceled > 0:
		st.Status = api.StatusCanceled
	case p.Failed > 0:
		st.Status = api.StatusFailed
	default:
		st.Status = api.StatusDone
	}
	return st
}

// pollRemote refreshes every live remote point of a sweep and adopts the
// points whose owner can no longer answer: the point is resubmitted locally
// into the sweep's group and from then on behaves like any local point.
// Adoption is idempotent-by-content — if the dead owner actually finished
// the compute, the local re-run is served from the shared tier or
// recomputed byte-identically, so the worst case is duplicated work.
func (s *Server) pollRemote(ctx context.Context, sw *sweepRec) {
	if !s.clustered() {
		return
	}
	type probe struct {
		i         int
		node, job string
	}
	var probes []probe
	sw.mu.Lock()
	for i := range sw.points {
		rec := &sw.points[i]
		if rec.node != "" && !api.Terminal(rec.remote.Status) && !rec.adopting {
			probes = append(probes, probe{i, rec.node, rec.remoteJob})
		}
	}
	sw.mu.Unlock()
	for _, pb := range probes {
		js, ok := s.remoteJobStatus(ctx, pb.node, pb.job)
		sw.mu.Lock()
		rec := &sw.points[pb.i]
		if rec.node != pb.node || rec.adopting {
			sw.mu.Unlock() // another poller got here first
			continue
		}
		if ok {
			rec.remote = js
			sw.mu.Unlock()
			continue
		}
		rec.adopting = true
		experiment, params, hash := rec.experiment, rec.params, rec.hash
		sw.mu.Unlock()

		jobID, err := s.queue.SubmitWith(s.pointTask(experiment, params, hash, true), jobqueue.SubmitOptions{
			Group:   sw.id,
			Class:   jobqueue.ClassSweep,
			Timeout: s.opts.JobTimeout,
		})
		sw.mu.Lock()
		rec = &sw.points[pb.i]
		rec.adopting = false
		if err == nil {
			rec.node, rec.remoteJob, rec.remote = "", "", api.JobStatus{}
			rec.jobID = jobID
			s.metrics.peerAdoptedPoints.Add(1)
		}
		// A full or draining queue leaves the point remote; the next poll
		// retries the owner and, failing that, adoption.
		sw.mu.Unlock()
	}
}

// handleSweepGet serves GET /v1/sweeps/{id}. Without parameters it answers
// immediately. With ?wait=<duration> it long-polls: the response is held
// until a point reaches a terminal state (relative to the request's entry
// snapshot), the sweep turns terminal, or the wait elapses — so a client
// polling point completions costs one request per step, not a poll spin.
// With ?watch=<duration> it streams instead: newline-delimited
// api.SweepEvent JSON, one "point" line per terminal point as it lands and
// a closing "sweep" line (see handleSweepWatch).
//
// Both paths block on the sweep's own ChangedGroup channel, not the global
// broadcast: a transition in an unrelated job or another sweep neither
// wakes this handler nor triggers a rescan of this sweep's point list.
func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	node, localID, remote := s.routeID(r.PathValue("id"))
	if remote && !relayed(r) {
		// The sweep registry lives on the coordinator replica; route the
		// read (including long-polls and watch streams) straight there.
		s.proxyToNode(w, r, node)
		return
	}
	sw := s.lookupSweep(localID)
	if sw == nil {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	s.pollRemote(r.Context(), sw)
	if watchStr := r.URL.Query().Get("watch"); watchStr != "" {
		watch, err := time.ParseDuration(watchStr)
		if err != nil || watch < 0 {
			httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "watch must be a non-negative duration (e.g. 30s): got %q", watchStr)
			return
		}
		s.handleSweepWatch(w, r, sw, watch)
		return
	}
	terminalCount := func(st api.SweepStatus) int {
		return st.Progress.Done + st.Progress.Failed + st.Progress.Canceled
	}
	st := s.sweepStatus(sw)
	waitStr := r.URL.Query().Get("wait")
	if waitStr == "" {
		writeJSON(w, http.StatusOK, st)
		return
	}
	wait, err := time.ParseDuration(waitStr)
	if err != nil || wait < 0 {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "wait must be a non-negative duration (e.g. 5s): got %q", waitStr)
		return
	}
	if wait > maxSweepWait {
		wait = maxSweepWait
	}
	initial := terminalCount(st)
	timer := time.NewTimer(wait)
	defer timer.Stop()
	// Remote completions do not bump the local group channel, so a sweep
	// with points executing on peers is additionally polled on a ticker.
	tickCh := (<-chan time.Time)(nil)
	if sw.liveRemote() {
		tick := time.NewTicker(remotePollInterval)
		defer tick.Stop()
		tickCh = tick.C
	}
	expired := false
	for !expired && !api.Terminal(st.Status) && terminalCount(st) == initial {
		// Grab the group channel before re-reading status: a transition
		// between the read and the wait closes the channel we already hold,
		// so no completion can slip through unobserved.
		ch := s.queue.ChangedGroup(sw.id)
		if st = s.sweepStatus(sw); api.Terminal(st.Status) || terminalCount(st) != initial {
			break
		}
		select {
		case <-ch:
		case <-tickCh:
			s.pollRemote(r.Context(), sw)
		case <-timer.C:
			expired = true
		case <-r.Context().Done():
			return
		}
		st = s.sweepStatus(sw)
	}
	writeJSON(w, http.StatusOK, st)
}

// handleSweepWatch streams per-point completions as chunked NDJSON: one
// api.SweepEvent line per terminal point — already-terminal points first,
// then each new completion the moment its group channel bumps — and a final
// "sweep" line when the sweep turns terminal or the watch window elapses.
// Each line is flushed immediately, so a client sees its first results in
// milliseconds even when the grid takes minutes.
func (s *Server) handleSweepWatch(w http.ResponseWriter, r *http.Request, sw *sweepRec, watch time.Duration) {
	if watch > maxSweepWait {
		watch = maxSweepWait
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev api.SweepEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	timer := time.NewTimer(watch)
	defer timer.Stop()
	// Peer-executed points complete without bumping the local group
	// channel; poll their owners on a ticker while any are live.
	tickCh := (<-chan time.Time)(nil)
	if sw.liveRemote() {
		tick := time.NewTicker(remotePollInterval)
		defer tick.Stop()
		tickCh = tick.C
	}
	sent := make([]bool, len(sw.points))
	for {
		// Grab the group channel before scanning so no completion between
		// the scan and the wait is lost.
		ch := s.queue.ChangedGroup(sw.id)
		st := s.sweepStatus(sw)
		for i := range st.Points {
			if sent[i] || !api.Terminal(st.Points[i].Status) {
				continue
			}
			sent[i] = true
			if !emit(api.SweepEvent{Type: "point", Point: &st.Points[i]}) {
				return
			}
		}
		if api.Terminal(st.Status) {
			emit(api.SweepEvent{Type: "sweep", Sweep: &st})
			return
		}
		select {
		case <-ch:
		case <-tickCh:
			s.pollRemote(r.Context(), sw)
		case <-timer.C:
			emit(api.SweepEvent{Type: "sweep", Sweep: &st})
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleSweepCancel implements DELETE /v1/sweeps/{id}: every non-terminal
// point is canceled through the group plumbing — queued points end
// immediately, running engines stop at their next context checkpoint
// (milliseconds). Idempotent, like per-job DELETE.
func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	node, localID, remote := s.routeID(r.PathValue("id"))
	if remote && !relayed(r) {
		s.proxyToNode(w, r, node)
		return
	}
	sw := s.lookupSweep(localID)
	if sw == nil {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	if n := s.queue.CancelGroup(sw.id); n > 0 {
		s.metrics.sweepCancels.Add(1)
		s.metrics.cancelRequests.Add(uint64(n))
	}
	// Points executing on peers are canceled owner-side, best-effort, then
	// polled once so the response reflects what the owners acknowledged.
	sw.mu.Lock()
	type rc struct{ node, job string }
	var remotes []rc
	for i := range sw.points {
		rec := &sw.points[i]
		if rec.node != "" && !api.Terminal(rec.remote.Status) {
			remotes = append(remotes, rc{rec.node, rec.remoteJob})
		}
	}
	sw.mu.Unlock()
	for _, x := range remotes {
		s.remoteCancel(r.Context(), x.node, x.job)
		// Refresh without adoption — a cancel must never resurrect a dead
		// owner's point as a fresh local job. An unreachable owner's jobs
		// die with it, which under a cancel is the desired end state.
		js, ok := s.remoteJobStatus(r.Context(), x.node, x.job)
		sw.mu.Lock()
		for i := range sw.points {
			rec := &sw.points[i]
			if rec.node != x.node || rec.remoteJob != x.job {
				continue
			}
			if ok {
				rec.remote = js
			} else {
				rec.remote.Status = api.StatusCanceled
			}
		}
		sw.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, s.sweepStatus(sw))
}
