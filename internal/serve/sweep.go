package serve

// Sweep endpoints: the paper's headline figures are parameter grids — the
// same experiment across channel counts, ECC schemes, and fault-rate axes —
// so the daemon accepts the whole grid as one request. POST /v1/sweeps
// expands base × axes server-side (internal/sim/report.ExpandSweep), runs
// every point as its own job on the shared bounded queue, and content-
// addresses every point individually in the result cache: overlapping
// sweeps and re-runs hit cache per point, not per sweep. Admission is
// all-or-nothing — if the queue cannot hold every uncached point, the
// already-submitted ones are canceled and the whole sweep gets the same
// 429 backpressure a single submission would.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"eccparity/internal/jobqueue"
	"eccparity/internal/resultcache"
	"eccparity/internal/sim"
	"eccparity/internal/sim/report"
	"eccparity/pkg/api"
)

// maxSweepWait caps how long one GET /v1/sweeps/{id}?wait= request may hold
// its connection; clients long-poll in rounds.
const maxSweepWait = 60 * time.Second

// sweepPointRec is one expanded point's immutable record: its config, its
// content address, and — unless it was served from cache at submission —
// the job computing it.
type sweepPointRec struct {
	experiment string
	params     report.Params
	hash       string
	jobID      string // "" = cache hit at submit, no job
}

// sweepRec is the aggregate object behind /v1/sweeps/{id}. Immutable after
// registration; live status is derived from the queue per read.
type sweepRec struct {
	id      string
	created time.Time
	points  []sweepPointRec
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "invalid request body: %v", err)
		return
	}
	b := req.Base
	if b.Cycles < 0 || b.Warmup < 0 || b.Trials < 0 || b.TimeoutSeconds < 0 {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "base cycles, warmup, trials and timeout_seconds must be non-negative (zero selects the default)")
		return
	}
	points, err := report.ExpandSweep(b.Experiment,
		report.Params{Cycles: b.Cycles, Warmup: b.Warmup, Trials: b.Trials, Seed: b.Seed, CSV: b.CSV},
		report.SweepAxes{
			Experiments: req.Axes.Experiment,
			Cycles:      req.Axes.Cycles,
			Warmup:      req.Axes.Warmup,
			Trials:      req.Axes.Trials,
			Seeds:       req.Axes.Seed,
		}, s.opts.MaxSweepPoints)
	if err != nil {
		var ce *sim.ConfigError
		code, status := api.CodeInvalidRequest, http.StatusBadRequest
		if errors.As(err, &ce) {
			switch ce.Field {
			case "experiment":
				code = api.CodeUnknownExperiment
			case "axes":
				code = api.CodeBudgetTooLarge
			}
		}
		httpError(w, status, code, "invalid sweep: %v", err)
		return
	}
	for i, pt := range points {
		if pt.Params.Cycles > MaxCycles || pt.Params.Warmup > MaxWarmup || pt.Params.Trials > MaxTrials {
			httpError(w, http.StatusBadRequest, api.CodeBudgetTooLarge,
				"point %d (%s) budget too large (max cycles %d, warmup %d, trials %d)",
				i, pt.Experiment, MaxCycles, MaxWarmup, MaxTrials)
			return
		}
	}

	s.sweepMu.Lock()
	s.nextSweep++
	id := fmt.Sprintf("sweep-%d", s.nextSweep)
	s.sweepMu.Unlock()

	timeout := s.effectiveTimeout(b.TimeoutSeconds)
	recs := make([]sweepPointRec, 0, len(points))
	cached := 0
	for _, pt := range points {
		key, err := resultcache.Key(canonicalConfig{Experiment: pt.Experiment, Params: pt.Params})
		if err != nil {
			s.queue.CancelGroup(id)
			httpError(w, http.StatusInternalServerError, api.CodeInternal, "hashing config: %v", err)
			return
		}
		rec := sweepPointRec{experiment: pt.Experiment, params: pt.Params, hash: key}
		if _, ok := s.cache.Get(key); ok {
			cached++
			recs = append(recs, rec)
			continue
		}
		jobID, err := s.queue.SubmitGroup(id, s.pointTask(pt.Experiment, pt.Params, key, true), timeout)
		if err != nil {
			// All-or-nothing admission: roll the partial sweep back so a 429
			// leaves nothing of it running.
			s.queue.CancelGroup(id)
			switch {
			case errors.Is(err, jobqueue.ErrFull):
				s.reject429(w, pt.Experiment)
			case errors.Is(err, jobqueue.ErrClosed):
				httpError(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining")
			default:
				httpError(w, http.StatusInternalServerError, api.CodeInternal, "submit sweep point: %v", err)
			}
			return
		}
		rec.jobID = jobID
		recs = append(recs, rec)
	}

	sw := &sweepRec{id: id, created: time.Now(), points: recs}
	s.sweepMu.Lock()
	s.sweeps[id] = sw
	s.sweepMu.Unlock()
	s.metrics.sweepsSubmitted.Add(1)
	s.metrics.sweepPointsExpanded.Add(uint64(len(recs)))
	s.metrics.sweepPointsCached.Add(uint64(cached))

	st := s.sweepStatus(sw)
	code := http.StatusAccepted
	if api.Terminal(st.Status) {
		// Every point came from cache: the sweep is done at submission.
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// lookupSweep returns the registered sweep or nil.
func (s *Server) lookupSweep(id string) *sweepRec {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	return s.sweeps[id]
}

// sweepStatus derives a sweep's wire status from the live queue: cached
// points are done by construction, everything else reports its job's
// current state.
func (s *Server) sweepStatus(sw *sweepRec) api.SweepStatus {
	st := api.SweepStatus{
		ID: sw.id, Created: sw.created,
		Progress: api.SweepProgress{Total: len(sw.points)},
		Points:   make([]api.SweepPoint, 0, len(sw.points)),
	}
	for i, rec := range sw.points {
		pt := api.SweepPoint{
			Index: i, Experiment: rec.experiment, ResultHash: rec.hash,
			Params: api.Params{
				Cycles: rec.params.Cycles, Warmup: rec.params.Warmup,
				Trials: rec.params.Trials, Seed: rec.params.Seed, CSV: rec.params.CSV,
			},
		}
		if rec.jobID == "" {
			pt.Status, pt.Cached = api.StatusDone, true
			st.Progress.Done++
			st.Progress.Cached++
		} else if snap, ok := s.queue.Get(rec.jobID); !ok {
			// Unreachable while jobs are never evicted; stated for safety.
			pt.Status, pt.Error = api.StatusFailed, "job record missing"
			st.Progress.Failed++
		} else {
			pt.JobID = rec.jobID
			pt.Status, pt.Error = string(snap.Status), snap.Error
			switch snap.Status {
			case jobqueue.StatusQueued:
				st.Progress.Queued++
			case jobqueue.StatusRunning:
				st.Progress.Running++
			case jobqueue.StatusDone:
				st.Progress.Done++
			case jobqueue.StatusFailed:
				st.Progress.Failed++
			case jobqueue.StatusCanceled:
				st.Progress.Canceled++
			}
		}
		st.Points = append(st.Points, pt)
	}
	p := st.Progress
	switch {
	case p.Done+p.Failed+p.Canceled < p.Total:
		st.Status = api.StatusRunning
	case p.Canceled > 0:
		st.Status = api.StatusCanceled
	case p.Failed > 0:
		st.Status = api.StatusFailed
	default:
		st.Status = api.StatusDone
	}
	return st
}

// handleSweepGet serves GET /v1/sweeps/{id}. Without ?wait= it answers
// immediately. With ?wait=<duration> it long-polls: the response is held
// until a point reaches a terminal state (relative to the request's entry
// snapshot), the sweep turns terminal, or the wait elapses — so a client
// streaming point completions costs one request per step, not a poll spin.
func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	sw := s.lookupSweep(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	terminalCount := func(st api.SweepStatus) int {
		return st.Progress.Done + st.Progress.Failed + st.Progress.Canceled
	}
	st := s.sweepStatus(sw)
	waitStr := r.URL.Query().Get("wait")
	if waitStr == "" {
		writeJSON(w, http.StatusOK, st)
		return
	}
	wait, err := time.ParseDuration(waitStr)
	if err != nil || wait < 0 {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "wait must be a non-negative duration (e.g. 5s): got %q", waitStr)
		return
	}
	if wait > maxSweepWait {
		wait = maxSweepWait
	}
	initial := terminalCount(st)
	timer := time.NewTimer(wait)
	defer timer.Stop()
	expired := false
	for !expired && !api.Terminal(st.Status) && terminalCount(st) == initial {
		// Grab the change channel before re-reading status: a transition
		// between the read and the wait closes the channel we already hold,
		// so no completion can slip through unobserved.
		ch := s.queue.Changed()
		if st = s.sweepStatus(sw); api.Terminal(st.Status) || terminalCount(st) != initial {
			break
		}
		select {
		case <-ch:
		case <-timer.C:
			expired = true
		case <-r.Context().Done():
			return
		}
		st = s.sweepStatus(sw)
	}
	writeJSON(w, http.StatusOK, st)
}

// handleSweepCancel implements DELETE /v1/sweeps/{id}: every non-terminal
// point is canceled through the group plumbing — queued points end
// immediately, running engines stop at their next context checkpoint
// (milliseconds). Idempotent, like per-job DELETE.
func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sw := s.lookupSweep(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	if n := s.queue.CancelGroup(sw.id); n > 0 {
		s.metrics.sweepCancels.Add(1)
		s.metrics.cancelRequests.Add(uint64(n))
	}
	writeJSON(w, http.StatusOK, s.sweepStatus(sw))
}
