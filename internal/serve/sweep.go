package serve

// Sweep endpoints: the paper's headline figures are parameter grids — the
// same experiment across channel counts, ECC schemes, and fault-rate axes —
// so the daemon accepts the whole grid as one request. POST /v1/sweeps
// expands base × axes server-side (internal/sim/report.ExpandSweep), runs
// every point as its own job on the shared bounded queue, and content-
// addresses every point individually in the result cache: overlapping
// sweeps and re-runs hit cache per point, not per sweep. Admission is
// all-or-nothing — if the queue cannot hold every uncached point, the
// already-submitted ones are canceled and the whole sweep gets the same
// 429 backpressure a single submission would.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"eccparity/internal/jobqueue"
	"eccparity/internal/resultcache"
	"eccparity/internal/sim"
	"eccparity/internal/sim/report"
	"eccparity/pkg/api"
)

// maxSweepWait caps how long one GET /v1/sweeps/{id}?wait= request may hold
// its connection; clients long-poll in rounds.
const maxSweepWait = 60 * time.Second

// sweepPointRec is one expanded point's immutable record: its config, its
// content address, and — unless it was served from cache at submission —
// the job computing it.
type sweepPointRec struct {
	experiment string
	params     report.Params
	hash       string
	jobID      string // "" = cache hit at submit, no job
}

// sweepRec is the aggregate object behind /v1/sweeps/{id}. Immutable after
// registration; live status is derived from the queue per read.
type sweepRec struct {
	id      string
	created time.Time
	points  []sweepPointRec
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "invalid request body: %v", err)
		return
	}
	b := req.Base
	if b.Cycles < 0 || b.Warmup < 0 || b.Trials < 0 || b.TimeoutSeconds < 0 {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "base cycles, warmup, trials and timeout_seconds must be non-negative (zero selects the default)")
		return
	}
	if !api.ValidPriority(b.Priority) {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "unknown priority %q (valid: interactive, sweep, batch)", b.Priority)
		return
	}
	points, err := report.ExpandSweep(b.Experiment,
		report.Params{Cycles: b.Cycles, Warmup: b.Warmup, Trials: b.Trials, Seed: b.Seed, CSV: b.CSV},
		report.SweepAxes{
			Experiments: req.Axes.Experiment,
			Cycles:      req.Axes.Cycles,
			Warmup:      req.Axes.Warmup,
			Trials:      req.Axes.Trials,
			Seeds:       req.Axes.Seed,
		}, s.opts.MaxSweepPoints)
	if err != nil {
		var ce *sim.ConfigError
		code, status := api.CodeInvalidRequest, http.StatusBadRequest
		if errors.As(err, &ce) {
			switch ce.Field {
			case "experiment":
				code = api.CodeUnknownExperiment
			case "axes":
				code = api.CodeBudgetTooLarge
			}
		}
		httpError(w, status, code, "invalid sweep: %v", err)
		return
	}
	for i, pt := range points {
		if pt.Params.Cycles > MaxCycles || pt.Params.Warmup > MaxWarmup || pt.Params.Trials > MaxTrials {
			httpError(w, http.StatusBadRequest, api.CodeBudgetTooLarge,
				"point %d (%s) budget too large (max cycles %d, warmup %d, trials %d)",
				i, pt.Experiment, MaxCycles, MaxWarmup, MaxTrials)
			return
		}
	}

	s.sweepMu.Lock()
	s.nextSweep++
	id := fmt.Sprintf("sweep-%d", s.nextSweep)
	s.sweepMu.Unlock()

	// Sweep points default to the low-priority sweep class so big grids
	// interleave behind interactive traffic instead of starving it; an
	// explicit base priority (e.g. batch) overrides. The submitter carries
	// through so two tenants' sweeps drain round-robin.
	subOpts := jobqueue.SubmitOptions{
		Group:     id,
		Submitter: b.Submitter,
		Class:     priorityClass(b.Priority, jobqueue.ClassSweep),
		Timeout:   s.effectiveTimeout(b.TimeoutSeconds),
	}
	recs := make([]sweepPointRec, 0, len(points))
	cached := 0
	for _, pt := range points {
		key, err := resultcache.Key(canonicalConfig{Experiment: pt.Experiment, Params: pt.Params})
		if err != nil {
			s.queue.CancelGroup(id)
			httpError(w, http.StatusInternalServerError, api.CodeInternal, "hashing config: %v", err)
			return
		}
		rec := sweepPointRec{experiment: pt.Experiment, params: pt.Params, hash: key}
		if _, ok := s.cache.Get(key); ok {
			cached++
			recs = append(recs, rec)
			continue
		}
		jobID, err := s.queue.SubmitWith(s.pointTask(pt.Experiment, pt.Params, key, true), subOpts)
		if err != nil {
			// All-or-nothing admission: roll the partial sweep back so a 429
			// leaves nothing of it running.
			s.queue.CancelGroup(id)
			switch {
			case errors.Is(err, jobqueue.ErrFull):
				s.reject429(w, pt.Experiment)
			case errors.Is(err, jobqueue.ErrClosed):
				httpError(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining")
			default:
				httpError(w, http.StatusInternalServerError, api.CodeInternal, "submit sweep point: %v", err)
			}
			return
		}
		rec.jobID = jobID
		recs = append(recs, rec)
	}

	sw := &sweepRec{id: id, created: time.Now(), points: recs}
	s.sweepMu.Lock()
	s.sweeps[id] = sw
	s.sweepMu.Unlock()
	s.metrics.sweepsSubmitted.Add(1)
	s.metrics.sweepPointsExpanded.Add(uint64(len(recs)))
	s.metrics.sweepPointsCached.Add(uint64(cached))

	st := s.sweepStatus(sw)
	code := http.StatusAccepted
	if api.Terminal(st.Status) {
		// Every point came from cache: the sweep is done at submission.
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// lookupSweep returns the registered sweep or nil.
func (s *Server) lookupSweep(id string) *sweepRec {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	return s.sweeps[id]
}

// sweepStatus derives a sweep's wire status from the live queue: cached
// points are done by construction, everything else reports its job's
// current state.
func (s *Server) sweepStatus(sw *sweepRec) api.SweepStatus {
	st := api.SweepStatus{
		ID: sw.id, Created: sw.created,
		Progress: api.SweepProgress{Total: len(sw.points)},
		Points:   make([]api.SweepPoint, 0, len(sw.points)),
	}
	for i, rec := range sw.points {
		pt := api.SweepPoint{
			Index: i, Experiment: rec.experiment, ResultHash: rec.hash,
			Params: api.Params{
				Cycles: rec.params.Cycles, Warmup: rec.params.Warmup,
				Trials: rec.params.Trials, Seed: rec.params.Seed, CSV: rec.params.CSV,
			},
		}
		if rec.jobID == "" {
			pt.Status, pt.Cached = api.StatusDone, true
			st.Progress.Done++
			st.Progress.Cached++
		} else if snap, ok := s.queue.Get(rec.jobID); !ok {
			// Unreachable while jobs are never evicted; stated for safety.
			pt.Status, pt.Error = api.StatusFailed, "job record missing"
			st.Progress.Failed++
		} else {
			pt.JobID = rec.jobID
			pt.Status, pt.Error = string(snap.Status), snap.Error
			switch snap.Status {
			case jobqueue.StatusQueued:
				st.Progress.Queued++
			case jobqueue.StatusRunning:
				st.Progress.Running++
			case jobqueue.StatusDone:
				st.Progress.Done++
			case jobqueue.StatusFailed:
				st.Progress.Failed++
			case jobqueue.StatusCanceled:
				st.Progress.Canceled++
			}
		}
		st.Points = append(st.Points, pt)
	}
	p := st.Progress
	switch {
	case p.Done+p.Failed+p.Canceled < p.Total:
		st.Status = api.StatusRunning
	case p.Canceled > 0:
		st.Status = api.StatusCanceled
	case p.Failed > 0:
		st.Status = api.StatusFailed
	default:
		st.Status = api.StatusDone
	}
	return st
}

// handleSweepGet serves GET /v1/sweeps/{id}. Without parameters it answers
// immediately. With ?wait=<duration> it long-polls: the response is held
// until a point reaches a terminal state (relative to the request's entry
// snapshot), the sweep turns terminal, or the wait elapses — so a client
// polling point completions costs one request per step, not a poll spin.
// With ?watch=<duration> it streams instead: newline-delimited
// api.SweepEvent JSON, one "point" line per terminal point as it lands and
// a closing "sweep" line (see handleSweepWatch).
//
// Both paths block on the sweep's own ChangedGroup channel, not the global
// broadcast: a transition in an unrelated job or another sweep neither
// wakes this handler nor triggers a rescan of this sweep's point list.
func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	sw := s.lookupSweep(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	if watchStr := r.URL.Query().Get("watch"); watchStr != "" {
		watch, err := time.ParseDuration(watchStr)
		if err != nil || watch < 0 {
			httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "watch must be a non-negative duration (e.g. 30s): got %q", watchStr)
			return
		}
		s.handleSweepWatch(w, r, sw, watch)
		return
	}
	terminalCount := func(st api.SweepStatus) int {
		return st.Progress.Done + st.Progress.Failed + st.Progress.Canceled
	}
	st := s.sweepStatus(sw)
	waitStr := r.URL.Query().Get("wait")
	if waitStr == "" {
		writeJSON(w, http.StatusOK, st)
		return
	}
	wait, err := time.ParseDuration(waitStr)
	if err != nil || wait < 0 {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "wait must be a non-negative duration (e.g. 5s): got %q", waitStr)
		return
	}
	if wait > maxSweepWait {
		wait = maxSweepWait
	}
	initial := terminalCount(st)
	timer := time.NewTimer(wait)
	defer timer.Stop()
	expired := false
	for !expired && !api.Terminal(st.Status) && terminalCount(st) == initial {
		// Grab the group channel before re-reading status: a transition
		// between the read and the wait closes the channel we already hold,
		// so no completion can slip through unobserved.
		ch := s.queue.ChangedGroup(sw.id)
		if st = s.sweepStatus(sw); api.Terminal(st.Status) || terminalCount(st) != initial {
			break
		}
		select {
		case <-ch:
		case <-timer.C:
			expired = true
		case <-r.Context().Done():
			return
		}
		st = s.sweepStatus(sw)
	}
	writeJSON(w, http.StatusOK, st)
}

// handleSweepWatch streams per-point completions as chunked NDJSON: one
// api.SweepEvent line per terminal point — already-terminal points first,
// then each new completion the moment its group channel bumps — and a final
// "sweep" line when the sweep turns terminal or the watch window elapses.
// Each line is flushed immediately, so a client sees its first results in
// milliseconds even when the grid takes minutes.
func (s *Server) handleSweepWatch(w http.ResponseWriter, r *http.Request, sw *sweepRec, watch time.Duration) {
	if watch > maxSweepWait {
		watch = maxSweepWait
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev api.SweepEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	timer := time.NewTimer(watch)
	defer timer.Stop()
	sent := make([]bool, len(sw.points))
	for {
		// Grab the group channel before scanning so no completion between
		// the scan and the wait is lost.
		ch := s.queue.ChangedGroup(sw.id)
		st := s.sweepStatus(sw)
		for i := range st.Points {
			if sent[i] || !api.Terminal(st.Points[i].Status) {
				continue
			}
			sent[i] = true
			if !emit(api.SweepEvent{Type: "point", Point: &st.Points[i]}) {
				return
			}
		}
		if api.Terminal(st.Status) {
			emit(api.SweepEvent{Type: "sweep", Sweep: &st})
			return
		}
		select {
		case <-ch:
		case <-timer.C:
			emit(api.SweepEvent{Type: "sweep", Sweep: &st})
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleSweepCancel implements DELETE /v1/sweeps/{id}: every non-terminal
// point is canceled through the group plumbing — queued points end
// immediately, running engines stop at their next context checkpoint
// (milliseconds). Idempotent, like per-job DELETE.
func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sw := s.lookupSweep(r.PathValue("id"))
	if sw == nil {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	if n := s.queue.CancelGroup(sw.id); n > 0 {
		s.metrics.sweepCancels.Add(1)
		s.metrics.cancelRequests.Add(uint64(n))
	}
	writeJSON(w, http.StatusOK, s.sweepStatus(sw))
}
