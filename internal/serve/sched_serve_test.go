package serve

import (
	"context"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"eccparity/pkg/api"
)

// bigSweep returns an n-point seed sweep over fig9, the costliest
// experiment per cycle — at this reduced budget each point still takes
// ~25ms (far more under -race), so a single worker faces a real backlog.
func bigSweep(n int) api.SweepRequest {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(100 + i)
	}
	return api.SweepRequest{
		Base: api.SubmitRequest{Experiment: "fig9", Cycles: 100000, Warmup: 2000, Trials: 2},
		Axes: api.SweepAxes{Seed: seeds},
	}
}

// TestInteractiveOvertakesSweep is the mixed-load e2e for the fair
// scheduler: with one job worker and an 8-point sweep backlog, an
// interactive submission landing mid-sweep must be dispatched ahead of the
// remaining sweep points and finish while the sweep is still running. The
// FIFO baseline inverts the expectation — the interactive job queues
// behind the whole grid — which is exactly the regression this test
// pins against.
func TestInteractiveOvertakesSweep(t *testing.T) {
	const points = 8
	run := func(t *testing.T, fifo bool) (sweepDoneAtInteractive int, total int) {
		_, ts := newServer(t, Options{Workers: 1, JobWorkers: 1, QueueCap: points + 8, MaxSweepPoints: points, FIFO: fifo})
		c := api.NewClient(ts.URL)
		ctx := context.Background()

		st, err := c.SubmitSweep(ctx, bigSweep(points))
		if err != nil {
			t.Fatal(err)
		}
		// The sweep is queued; now race an interactive probe against it.
		code, sr := postJSON(t, ts.URL, `{"experiment":"fig1","seed":42,"priority":"interactive"}`)
		if code != http.StatusAccepted {
			t.Fatalf("interactive submit: status %d", code)
		}
		pollDone(t, ts.URL, sr.JobID)
		mid, err := c.Sweep(ctx, st.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		waitSweepTerminal(t, c, st.ID)
		return mid.Progress.Done + mid.Progress.Failed + mid.Progress.Canceled, mid.Progress.Total
	}

	t.Run("fair", func(t *testing.T) {
		done, total := run(t, false)
		if done >= total {
			t.Fatalf("interactive job finished only after all %d sweep points — fair scheduler did not prioritize it", total)
		}
	})
	t.Run("fifo-baseline", func(t *testing.T) {
		done, total := run(t, true)
		if done < total {
			t.Fatalf("FIFO baseline: interactive finished with %d/%d sweep points done; expected it to queue behind the whole grid", done, total)
		}
	})
}

// TestPriorityDoesNotChangeResultBytes pins the fairness invariance
// contract: priority and submitter steer scheduling only — the result
// hash and the result document bytes are identical whatever class
// computed them, and on one server a resubmission under a different
// priority is a cache hit, not a recomputation.
func TestPriorityDoesNotChangeResultBytes(t *testing.T) {
	body := func(priority, submitter string) string {
		return fmt.Sprintf(`{"experiment":"table3","cycles":2000,"warmup":200,"trials":8,"seed":9,"priority":%q,"submitter":%q}`, priority, submitter)
	}

	_, tsA := newServer(t, Options{Workers: 1})
	_, tsB := newServer(t, Options{Workers: 1})

	codeA, a := postJSON(t, tsA.URL, body("interactive", "alice"))
	codeB, b := postJSON(t, tsB.URL, body("batch", "bob"))
	if codeA != http.StatusAccepted || codeB != http.StatusAccepted {
		t.Fatalf("submits: %d, %d", codeA, codeB)
	}
	if a.ResultHash != b.ResultHash {
		t.Fatalf("priority leaked into cache identity: %s vs %s", a.ResultHash, b.ResultHash)
	}
	pollDone(t, tsA.URL, a.JobID)
	pollDone(t, tsB.URL, b.JobID)

	_, bytesA := getBody(t, tsA.URL+"/v1/results/"+a.ResultHash)
	_, bytesB := getBody(t, tsB.URL+"/v1/results/"+b.ResultHash)
	if string(bytesA) != string(bytesB) {
		t.Fatal("result bytes differ between priority classes")
	}

	// Same server, different class: must be served from cache.
	code, again := postJSON(t, tsA.URL, body("batch", "carol"))
	if code != http.StatusOK || !again.Cached || again.ResultHash != a.ResultHash {
		t.Fatalf("resubmission under another priority: code %d cached %v hash %s", code, again.Cached, again.ResultHash)
	}
}

// TestSubmitRejectsUnknownPriority covers the validation path on both
// endpoints.
func TestSubmitRejectsUnknownPriority(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1})
	if code, _ := postJSON(t, ts.URL, `{"experiment":"fig1","priority":"urgent"}`); code != http.StatusBadRequest {
		t.Fatalf("bogus priority on /v1/experiments: status %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"base":{"experiment":"fig1","priority":"urgent"},"axes":{"seed":[1,2]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus priority on /v1/sweeps: status %d, want 400", resp.StatusCode)
	}
}

// TestSweepWatchStreams exercises the chunked NDJSON endpoint through the
// client: every point arrives exactly once as a "point" event while the
// sweep runs, the stream closes with the terminal aggregate, and a second
// watch on the finished sweep replays the full picture for late watchers.
func TestSweepWatchStreams(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1, JobWorkers: 1})
	c := api.NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.SubmitSweep(ctx, smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	final, err := c.WatchSweep(ctx, st.ID, 2*time.Second, func(p api.SweepPoint) error {
		seen[p.Index]++
		if p.Status != api.StatusDone {
			t.Errorf("streamed point %d in non-done state %q", p.Index, p.Status)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != api.StatusDone {
		t.Fatalf("final sweep status %q", final.Status)
	}
	if len(seen) != st.Progress.Total {
		t.Fatalf("streamed %d distinct points, want %d", len(seen), st.Progress.Total)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("point %d delivered %d times over one watch", idx, n)
		}
	}

	// A late watcher on the terminal sweep still gets every point.
	replay := 0
	if _, err := c.WatchSweep(ctx, st.ID, time.Second, func(api.SweepPoint) error { replay++; return nil }); err != nil {
		t.Fatal(err)
	}
	if replay != st.Progress.Total {
		t.Fatalf("late watch replayed %d points, want %d", replay, st.Progress.Total)
	}
}

var (
	promHelpRE   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	promTypeRE   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)
)

// TestMetricsExpositionParses runs real traffic through the daemon, then
// validates /metrics line by line against the Prometheus text format: every
// line is a well-formed HELP, TYPE, or sample; every sample's family has a
// TYPE declared before it; every value parses as a float. It then checks
// the scheduler additions are present with all three classes.
func TestMetricsExpositionParses(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1, JobWorkers: 1})
	c := api.NewClient(ts.URL)
	ctx := context.Background()

	code, sr := postJSON(t, ts.URL, smallBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	pollDone(t, ts.URL, sr.JobID)
	st, err := c.SubmitSweep(ctx, smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	waitSweepTerminal(t, c, st.ID)

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	text := string(body)
	typed := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case line == "":
			t.Errorf("line %d: empty line in exposition", i+1)
		case strings.HasPrefix(line, "# HELP "):
			if !promHelpRE.MatchString(line) {
				t.Errorf("line %d: malformed HELP: %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := promTypeRE.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			typed[m[1]] = true
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unknown comment form: %q", i+1, line)
		default:
			m := promSampleRE.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed sample: %q", i+1, line)
				continue
			}
			family := m[1]
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(family, suffix); base != family && typed[base] {
					family = base
					break
				}
			}
			if !typed[family] {
				t.Errorf("line %d: sample %q has no preceding TYPE", i+1, m[1])
			}
			if _, err := strconv.ParseFloat(m[3], 64); err != nil {
				t.Errorf("line %d: value %q is not a float", i+1, m[3])
			}
		}
	}

	for _, class := range []string{"interactive", "sweep", "batch"} {
		for _, metric := range []string{"eccsimd_queue_class_depth", "eccsimd_queue_oldest_age_seconds"} {
			want := fmt.Sprintf(`%s{class=%q} `, metric, class)
			if !strings.Contains(text, want) {
				t.Errorf("missing %s sample for class %s", metric, class)
			}
		}
	}
	// The single submission dispatched as interactive, the sweep points as
	// sweep class — both wait histograms must have counted them.
	for _, want := range []string{
		`eccsimd_queue_wait_ms_count{class="interactive"}`,
		`eccsimd_queue_wait_ms_count{class="sweep"}`,
	} {
		idx := strings.Index(text, want)
		if idx < 0 {
			t.Fatalf("missing %s", want)
		}
		rest := strings.TrimSpace(strings.SplitN(text[idx+len(want):], "\n", 2)[0])
		if n, err := strconv.Atoi(rest); err != nil || n < 1 {
			t.Errorf("%s = %q, want >= 1", want, rest)
		}
	}
}
