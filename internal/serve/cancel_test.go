package serve

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"eccparity/pkg/api"
)

// longBody is a request big enough (100M-cycle grid) that it cannot finish
// during a test run — cancellation is the only way it ends. Budget is at
// the guardrail ceiling; distinct seeds keep test cases cache-disjoint.
func longBody(seed int64) api.SubmitRequest {
	return api.SubmitRequest{Experiment: "fig9", Cycles: MaxCycles, Warmup: 100, Seed: seed}
}

// TestCancelInterruptsRunningJob is the tentpole acceptance test, driven
// end-to-end through the public client: submit a job that would take hours,
// cancel it mid-flight, and require the engine to return promptly (the
// context checkpoint interval is ~1k loop iterations — milliseconds; the
// bound here is generous for -race CI). The cache must stay clean, and a
// resubmission must start a fresh computation rather than serve a partial.
func TestCancelInterruptsRunningJob(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1, JobWorkers: 1})
	c := api.NewClient(ts.URL)
	ctx := context.Background()

	sr, err := c.Submit(ctx, longBody(1))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Cached || sr.JobID == "" {
		t.Fatalf("submit response %+v", sr)
	}
	// Wait for the job to actually be executing so the cancel exercises the
	// engine interrupt, not the queued-job fast path.
	deadline := time.Now().Add(10 * time.Second)
	for {
		js, err := c.Job(ctx, sr.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if js.Status == api.StatusRunning {
			break
		}
		if api.Terminal(js.Status) {
			t.Fatalf("job finished %s before cancel: %s", js.Status, js.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	canceledAt := time.Now()
	if _, err := c.Cancel(ctx, sr.JobID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	js, err := c.Wait(waitCtx, sr.JobID, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("job did not reach a terminal state after cancel: %v", err)
	}
	t.Logf("cancel → terminal in %v", time.Since(canceledAt))
	if js.Status != api.StatusCanceled {
		t.Fatalf("status = %s (%s), want canceled", js.Status, js.Error)
	}

	// Nothing partial may be fetchable under the result hash.
	var apiErr *api.Error
	if _, err := c.Result(ctx, sr.ResultHash); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound || apiErr.Code != api.CodeNotFound {
		t.Fatalf("Result after cancel: err=%v, want 404/not_found", err)
	}

	// Resubmitting the identical config must start over, not hit the cache.
	sr2, err := c.Submit(ctx, longBody(1))
	if err != nil {
		t.Fatal(err)
	}
	if sr2.Cached {
		t.Fatal("resubmission after cancel served from cache")
	}
	if sr2.ResultHash != sr.ResultHash {
		t.Fatalf("resubmission hash %s != %s (identity must not include cancellation)", sr2.ResultHash, sr.ResultHash)
	}
	if _, err := c.Cancel(ctx, sr2.JobID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(waitCtx, sr2.JobID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

// TestQueueSaturationReturns429 pins the backpressure contract: with one
// worker occupied and the one-slot buffer full, the next submission gets
// 429, a Retry-After hint, and the queue_full error code.
func TestQueueSaturationReturns429(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1, JobWorkers: 1, QueueCap: 1})
	c := api.NewClient(ts.URL)
	ctx := context.Background()

	running, err := c.Submit(ctx, longBody(11))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first job occupies the worker so the second sits in
	// the buffer rather than starting.
	deadline := time.Now().Add(10 * time.Second)
	for {
		js, _ := c.Job(ctx, running.JobID)
		if js.Status == api.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued, err := c.Submit(ctx, longBody(12))
	if err != nil {
		t.Fatal(err)
	}

	// Saturated: worker busy + buffer full. Use the raw transport to see
	// the Retry-After header alongside the typed error.
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json",
		strings.NewReader(`{"experiment":"fig9","cycles":100000000,"warmup":100,"seed":13}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After header")
	}
	if _, err := c.Submit(ctx, longBody(14)); err == nil {
		t.Fatal("client Submit succeeded against a saturated queue")
	} else {
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != api.CodeQueueFull || apiErr.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("client error = %v, want queue_full/429", err)
		}
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "eccsimd_rejected_full_total 2") {
		t.Errorf("/metrics should count 2 rejections:\n%s", metrics)
	}

	for _, id := range []string{running.JobID, queued.JobID} {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	for _, id := range []string{running.JobID, queued.JobID} {
		if _, err := c.Wait(waitCtx, id, 2*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPerRequestDeadlineFailsJob: a tiny timeout_seconds on an hours-long
// config expires mid-run; the job lands failed (not canceled) with the
// deadline in its error, and the cache stays clean.
func TestPerRequestDeadlineFailsJob(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1, JobWorkers: 1})
	c := api.NewClient(ts.URL)
	ctx := context.Background()

	req := longBody(21)
	req.TimeoutSeconds = 0.05
	sr, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	js, err := c.Wait(waitCtx, sr.JobID, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if js.Status != api.StatusFailed || !strings.Contains(js.Error, "deadline") {
		t.Fatalf("job = %s (%q), want failed with deadline error", js.Status, js.Error)
	}
	var apiErr *api.Error
	if _, err := c.Result(ctx, sr.ResultHash); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("Result after deadline: err=%v, want 404", err)
	}
}

// TestEffectiveTimeout pins the request/server deadline resolution: the
// server default is both fallback and ceiling.
func TestEffectiveTimeout(t *testing.T) {
	s := &Server{opts: Options{JobTimeout: 10 * time.Second}}
	cases := []struct {
		seconds float64
		want    time.Duration
	}{
		{0, 10 * time.Second},    // inherit default
		{5, 5 * time.Second},     // under the ceiling: honored
		{3600, 10 * time.Second}, // over the ceiling: clamped
	}
	for _, tc := range cases {
		if got := s.effectiveTimeout(tc.seconds); got != tc.want {
			t.Errorf("effectiveTimeout(%v) = %v, want %v", tc.seconds, got, tc.want)
		}
	}
	unlimited := &Server{}
	if got := unlimited.effectiveTimeout(7); got != 7*time.Second {
		t.Errorf("no-default effectiveTimeout(7) = %v, want 7s", got)
	}
	if got := unlimited.effectiveTimeout(0); got != 0 {
		t.Errorf("no-default effectiveTimeout(0) = %v, want 0", got)
	}
}

// TestClientRunConvenience drives the submit→wait→fetch helper end to end
// on a real (small) experiment, twice: fresh compute, then cache hit.
func TestClientRunConvenience(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 2})
	c := api.NewClient(ts.URL)
	ctx := context.Background()

	req := api.SubmitRequest{Experiment: "table3", Cycles: 2000, Warmup: 200, Trials: 8, Seed: 5}
	res, err := c.Run(ctx, req, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment != "table3" || !strings.Contains(res.Report.Text, "Table III") {
		t.Fatalf("result %+v", res)
	}
	b1, err := c.ResultBytes(ctx, res.Hash)
	if err != nil {
		t.Fatal(err)
	}

	res2, err := c.Run(ctx, req, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.ResultBytes(ctx, res2.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Hash != res.Hash || string(b1) != string(b2) {
		t.Fatal("cached Run returned different hash or bytes")
	}

	exps, err := c.Experiments(ctx)
	if err != nil || len(exps) == 0 {
		t.Fatalf("Experiments: %v (%d entries)", err, len(exps))
	}
	var apiErr *api.Error
	if _, err := c.Job(ctx, "job-404"); !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Fatalf("Job(unknown) err = %v, want not_found", err)
	}
	if _, err := c.Cancel(ctx, "job-404"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("Cancel(unknown) err = %v, want 404", err)
	}
	if _, err := c.Submit(ctx, api.SubmitRequest{Experiment: "fig99"}); !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnknownExperiment {
		t.Fatalf("Submit(unknown experiment) err = %v, want unknown_experiment", err)
	}
}
