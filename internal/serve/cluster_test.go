package serve

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"eccparity/internal/blob"
	"eccparity/internal/blob/ec"
	"eccparity/internal/cluster"
	"eccparity/internal/resultcache"
	"eccparity/internal/sim/report"
	"eccparity/pkg/api"
)

// clusterNode is one live replica of a test fleet: the Server, its HTTP
// front end, and its ring identity.
type clusterNode struct {
	id   string
	url  string
	srv  *Server
	http *http.Server

	mu     sync.Mutex
	killed bool
}

// kill abruptly terminates the replica: listener closed, in-flight
// connections dropped — the closest in-process stand-in for a dead machine.
// The Server's queue keeps running (a real crash would lose it too, but the
// point under test is the peers' behavior, not the corpse's).
func (n *clusterNode) kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.killed {
		n.killed = true
		n.http.Close()
	}
}

// fsBlob returns a blob-backend factory handing every replica its own
// *blob.FS over one shared dir — the plain single-copy shared tier.
func fsBlob(dir string) func(*testing.T) blob.Backend {
	return func(t *testing.T) blob.Backend {
		t.Helper()
		fs, err := blob.NewFS(dir)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
}

// ecBlob returns a factory handing every replica a fresh erasure-coded
// backend (k=4, m=2) over the same six shard roots.
func ecBlob(dirs []string) func(*testing.T) blob.Backend {
	return func(t *testing.T) blob.Backend {
		t.Helper()
		b, err := ec.OpenFS(4, 2, dirs)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
}

// startCluster boots n replicas on loopback listeners that all know the
// full member list; newBlob, when non-nil, supplies each replica's shared
// blob tier. Listeners are opened first so every Options can carry every
// replica's real address.
func startCluster(t *testing.T, n int, newBlob func(*testing.T) blob.Backend) ([]*clusterNode, *cluster.Ring) {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]cluster.Node, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = cluster.Node{ID: string(rune('a' + i)), Addr: "http://" + ln.Addr().String()}
	}
	ring, err := cluster.New(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		o := Options{Workers: 2, NodeID: peers[i].ID, Peers: peers}
		if newBlob != nil {
			o.Blob = newBlob(t)
		}
		s, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: s.Handler()}
		nodes[i] = &clusterNode{id: peers[i].ID, url: peers[i].Addr, srv: s, http: hs}
		go hs.Serve(lns[i])
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.kill()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			nd.srv.Drain(ctx)
			cancel()
		}
	})
	return nodes, ring
}

// testParams is the reduced budget the single-node tests use, normalized
// exactly as handleSubmit does, so content addresses match the server's.
func testParams(seed int64) report.Params {
	return report.Params{Cycles: 2000, Warmup: 200, Trials: 8, Seed: seed}.Normalized()
}

func keyFor(t *testing.T, experiment string, p report.Params) string {
	t.Helper()
	key, err := resultcache.Key(canonicalConfig{Experiment: experiment, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// seedOwnedBy scans seeds until the resulting content address lands on the
// wanted replica — the white-box way to steer test traffic across the ring.
func seedOwnedBy(t *testing.T, ring *cluster.Ring, nodeID string, from int64) int64 {
	t.Helper()
	for seed := from; seed < from+10_000; seed++ {
		if ring.Owner(keyFor(t, "table3", testParams(seed))).ID == nodeID {
			return seed
		}
	}
	t.Fatalf("no seed near %d owned by %s", from, nodeID)
	return 0
}

func submitSeed(seed int64) api.SubmitRequest {
	return api.SubmitRequest{Experiment: "table3", Cycles: 2000, Warmup: 200, Trials: 8, Seed: seed}
}

// The tentpole e2e: a config submitted on replica a is routed to its ring
// owner, computed once, and afterwards every replica serves the result
// byte-identically — including a Cached=true answer for the same config
// resubmitted on a different node.
func TestClusterCrossNodeByteIdenticalServing(t *testing.T) {
	nodes, ring := startCluster(t, 3, fsBlob(t.TempDir()))
	// A seed owned by b, submitted on a: exercises the forward path.
	seed := seedOwnedBy(t, ring, "b", 1)

	ca := api.NewClient(nodes[0].url)
	ctx := context.Background()
	sr, err := ca.Submit(ctx, submitSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Cached {
		t.Fatalf("first submit unexpectedly cached: %+v", sr)
	}
	if !strings.HasPrefix(sr.JobID, "b:") {
		t.Fatalf("job id %q not namespaced to owner b", sr.JobID)
	}
	// Poll through the origin: a proxies each read to b.
	js, err := ca.Wait(ctx, sr.JobID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if js.Status != api.StatusDone {
		t.Fatalf("job finished %s: %s", js.Status, js.Error)
	}

	// Push write-behind publishes into the shared tier, then read the
	// result from every replica: all three must return the same bytes.
	for _, nd := range nodes {
		nd.srv.cache.FlushShared()
	}
	var want []byte
	for i, nd := range nodes {
		b, err := api.NewClient(nd.url).ResultBytes(ctx, sr.ResultHash)
		if err != nil {
			t.Fatalf("node %s result read: %v", nd.id, err)
		}
		if i == 0 {
			want = b
		} else if !bytes.Equal(b, want) {
			t.Fatalf("node %s served different bytes than node a", nd.id)
		}
	}
	if len(want) == 0 {
		t.Fatal("empty result document")
	}

	// The same config on replica c is a cache hit — served without any
	// recomputation, from c's shared tier or the owner's memory.
	sr2, err := api.NewClient(nodes[2].url).Submit(ctx, submitSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !sr2.Cached || sr2.ResultHash != sr.ResultHash {
		t.Fatalf("resubmit on c: cached=%v hash=%s, want cached hit of %s", sr2.Cached, sr2.ResultHash, sr.ResultHash)
	}

	if got := nodes[0].srv.metrics.peerForwarded.Load(); got == 0 {
		t.Error("node a forwarded nothing; ownership routing did not engage")
	}
	code, metrics := getBody(t, nodes[0].url+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(metrics), "eccsimd_cluster_nodes 3") {
		t.Errorf("metrics missing cluster gauges (status %d)", code)
	}
}

// An unreachable owner must not fail the submission: the receiving replica
// executes the job itself (determinism makes the duplicate compute safe).
func TestClusterForwardFallbackWhenOwnerDead(t *testing.T) {
	nodes, ring := startCluster(t, 3, nil)
	seed := seedOwnedBy(t, ring, "c", 1)
	nodes[2].kill()

	ca := api.NewClient(nodes[0].url)
	ctx := context.Background()
	sr, err := ca.Submit(ctx, submitSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sr.JobID, "a:") {
		t.Fatalf("job id %q: fallback should run locally on a", sr.JobID)
	}
	js, err := ca.Wait(ctx, sr.JobID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if js.Status != api.StatusDone {
		t.Fatalf("fallback job finished %s: %s", js.Status, js.Error)
	}
	if got := nodes[0].srv.metrics.peerForwardFallback.Load(); got == 0 {
		t.Error("peer_forward_fallback not counted")
	}
	if _, err := ca.ResultBytes(ctx, sr.ResultHash); err != nil {
		t.Fatalf("result after fallback: %v", err)
	}
}

// A 3-replica sweep must complete even when one replica is killed
// mid-sweep: its points are adopted by the coordinator and recomputed
// locally (or served from the shared tier), and every point stays
// fetchable byte-identically from the survivors.
func TestClusterSweepSurvivesReplicaDeath(t *testing.T) {
	nodes, ring := startCluster(t, 3, fsBlob(t.TempDir()))
	// Four seeds: at least one owned by the doomed replica c and one by b,
	// so the sweep genuinely spans the fleet.
	seeds := []int64{
		seedOwnedBy(t, ring, "a", 1),
		seedOwnedBy(t, ring, "b", 1000),
		seedOwnedBy(t, ring, "c", 2000),
		seedOwnedBy(t, ring, "c", 3000),
	}

	ca := api.NewClient(nodes[0].url)
	ctx := context.Background()
	st, err := ca.SubmitSweep(ctx, api.SweepRequest{
		Base: api.SubmitRequest{Experiment: "table3", Cycles: 2000, Warmup: 200, Trials: 8},
		Axes: api.SweepAxes{Seed: seeds},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(st.ID, "a:") {
		t.Fatalf("sweep id %q not namespaced to its coordinator", st.ID)
	}

	// Kill c with its points admitted but the sweep still in flight.
	nodes[2].kill()

	final, err := ca.WaitSweep(ctx, st.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != api.StatusDone {
		t.Fatalf("sweep finished %s: %+v", final.Status, final.Progress)
	}
	if final.Progress.Done != len(seeds) {
		t.Fatalf("progress %+v, want all %d points done", final.Progress, len(seeds))
	}
	if got := nodes[0].srv.metrics.peerAdoptedPoints.Load(); got == 0 {
		t.Error("no points adopted although the owner of two points died")
	}

	// Every point's result is served byte-identically by both survivors.
	for _, nd := range nodes[:2] {
		nd.srv.cache.FlushShared()
	}
	cb := api.NewClient(nodes[1].url)
	for _, pt := range final.Points {
		ba, err := ca.ResultBytes(ctx, pt.ResultHash)
		if err != nil {
			t.Fatalf("point %d on a: %v", pt.Index, err)
		}
		bb, err := cb.ResultBytes(ctx, pt.ResultHash)
		if err != nil {
			t.Fatalf("point %d on b: %v", pt.Index, err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("point %d bytes differ between replicas", pt.Index)
		}
	}
}

// Without a shared tier, a result read on a replica that never computed it
// 307-redirects to the hash owner; the stock client follows transparently.
func TestClusterResultRedirect(t *testing.T) {
	nodes, ring := startCluster(t, 2, nil)
	seed := seedOwnedBy(t, ring, "b", 1)

	ca := api.NewClient(nodes[0].url)
	ctx := context.Background()
	sr, err := ca.Submit(ctx, submitSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Wait(ctx, sr.JobID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	got, err := ca.ResultBytes(ctx, sr.ResultHash)
	if err != nil {
		t.Fatalf("redirected result read: %v", err)
	}
	direct, err := api.NewClient(nodes[1].url).ResultBytes(ctx, sr.ResultHash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, direct) {
		t.Fatal("redirected read returned different bytes than the owner")
	}
	if nodes[0].srv.metrics.resultsRedirected.Load() == 0 {
		t.Error("results_redirected not counted")
	}
}

// The erasure-coded shared tier's e2e promise: with k=4,m=2 shard roots
// under a 3-replica sweep, losing two whole roots mid-sweep is invisible —
// a fresh replica with an empty local cache afterwards serves every point
// byte-identically straight from the degraded tier, with zero recomputes
// and the lost shards rebuilt (SharedRepaired > 0).
func TestClusterECSweepSurvivesShardRootLoss(t *testing.T) {
	dirs := ec.DeriveRoots(t.TempDir(), 6)
	nodes, ring := startCluster(t, 3, ecBlob(dirs))
	seeds := []int64{
		seedOwnedBy(t, ring, "a", 1),
		seedOwnedBy(t, ring, "b", 1000),
		seedOwnedBy(t, ring, "c", 2000),
		seedOwnedBy(t, ring, "c", 3000),
	}

	ca := api.NewClient(nodes[0].url)
	ctx := context.Background()
	st, err := ca.SubmitSweep(ctx, api.SweepRequest{
		Base: api.SubmitRequest{Experiment: "table3", Cycles: 2000, Warmup: 200, Trials: 8},
		Axes: api.SweepAxes{Seed: seeds},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for at least one finished point, flush its publish so a full
	// stripe is on disk, then destroy two shard roots — one data, one
	// parity — while the rest of the sweep is still running.
	for {
		cur, err := ca.Sweep(ctx, st.ID, 100*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Progress.Done >= 1 {
			break
		}
	}
	for _, nd := range nodes {
		nd.srv.cache.FlushShared()
	}
	for _, d := range []string{dirs[1], dirs[4]} {
		os.RemoveAll(d) // first pass may race a concurrent publish
		if err := os.RemoveAll(d); err != nil {
			t.Fatal(err)
		}
	}

	final, err := ca.WaitSweep(ctx, st.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != api.StatusDone {
		t.Fatalf("sweep finished %s: %+v", final.Status, final.Progress)
	}
	if final.Progress.Done != len(seeds) {
		t.Fatalf("progress %+v, want all %d points done", final.Progress, len(seeds))
	}
	for _, nd := range nodes {
		nd.srv.cache.FlushShared()
	}

	// Reference bytes from the live fleet (owners still hold local copies).
	want := make(map[int][]byte, len(final.Points))
	for _, pt := range final.Points {
		b, err := ca.ResultBytes(ctx, pt.ResultHash)
		if err != nil {
			t.Fatalf("point %d reference read: %v", pt.Index, err)
		}
		want[pt.Index] = b
	}

	// A fresh single replica — empty memory and disk tiers, same shard
	// roots — must serve every point from the shared tier alone.
	fs, err := New(Options{Workers: 2, CacheDir: t.TempDir(), Blob: ecBlob(dirs)(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		fs.Drain(dctx)
		cancel()
	}()
	fresh := httptest.NewServer(fs.Handler())
	defer fresh.Close()
	cf := api.NewClient(fresh.URL)
	for _, pt := range final.Points {
		got, err := cf.ResultBytes(ctx, pt.ResultHash)
		if err != nil {
			t.Fatalf("point %d from fresh replica: %v", pt.Index, err)
		}
		if !bytes.Equal(got, want[pt.Index]) {
			t.Fatalf("point %d: fresh replica served different bytes", pt.Index)
		}
	}
	s := fs.cache.Stats()
	if s.Misses != 0 {
		t.Fatalf("fresh replica computed %d results; want all served from the EC tier", s.Misses)
	}
	if s.SharedRepaired == 0 {
		t.Fatal("SharedRepaired = 0: degraded reads must rebuild the lost shards")
	}
	if s.SharedCorrupt != 0 || s.SharedErrors != 0 {
		t.Fatalf("stats %+v: in-budget root loss must not count as corruption or errors", s)
	}
	code, mb := getBody(t, fresh.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(mb), "eccsimd_cache_shared_repaired_total") {
		t.Errorf("metrics missing EC repair counter (status %d)", code)
	}
}
