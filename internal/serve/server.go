// Package serve is the HTTP layer of the eccsimd daemon: it turns every
// experiment of internal/sim/report into a submit/poll/fetch API backed by
// the bounded job queue (internal/jobqueue) and the content-addressed
// result cache (internal/resultcache). The wire types — request/response
// bodies, error envelope, status strings — live in pkg/api, shared with the
// public Go client so server and client cannot drift.
//
// The API surface:
//
//	POST   /v1/experiments      submit a config; 202 + job id (200 on cache hit)
//	GET    /v1/experiments      list known experiment ids
//	GET    /v1/schemes          list the resilience scheme registry
//	GET    /v1/jobs/{id}        poll a job's status
//	DELETE /v1/jobs/{id}        cancel a job (interrupts a running engine)
//	GET    /v1/results/{hash}   fetch a result document by content address
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus-text counters and histograms
//	GET    /debug/vars          expvar (Go runtime memstats etc.)
//
// Determinism is the API contract: a request is identified by the SHA-256
// of its normalized config (seed included, worker count and timeout
// excluded), and the same hash always maps to byte-identical result bytes —
// the second identical submission is served from cache without
// recomputation. Cancellation is the flip side of the contract: a canceled
// or deadline-expired job writes nothing to the cache, so a resubmission
// recomputes from scratch rather than serving a partial result.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"eccparity/internal/blob"
	"eccparity/internal/cluster"
	"eccparity/internal/ecc"
	"eccparity/internal/jobqueue"
	"eccparity/internal/resultcache"
	"eccparity/internal/sim/report"
	"eccparity/pkg/api"
)

// Guardrails against absurd budgets taking a worker hostage. The paper's
// full budget (400k cycles, 60k warmup, 2–4k trials) sits far below all of
// them.
const (
	MaxCycles = 100_000_000
	MaxWarmup = 10_000_000
	MaxTrials = 1_000_000
)

// The 429 Retry-After hint is derived from observed compute latency (a
// queue slot frees roughly one mean compute time from now), clamped to
// these bounds so a cold server still says something sane and a pathological
// histogram cannot tell clients to go away for hours.
const (
	retryAfterFloorSeconds   = 1
	retryAfterCeilingSeconds = 60
)

// MaxSweepPointsDefault caps how many points one sweep may expand to when
// Options.MaxSweepPoints is unset.
const MaxSweepPointsDefault = 256

// Options configures a Server.
type Options struct {
	// Workers bounds each experiment's internal simulation/Monte Carlo
	// pool (≤0 = NumCPU). Excluded from result identity.
	Workers int
	// JobWorkers is the number of experiments executing concurrently
	// (default 2 — each job already fans out over Workers goroutines).
	JobWorkers int
	// QueueCap bounds the submission backlog (default 16).
	QueueCap int
	// CacheDir enables the on-disk result layer ("" = memory only).
	CacheDir string
	// CacheMaxBytes bounds the on-disk layer; least-recently-used entries
	// are evicted past it (0 = unbounded).
	CacheMaxBytes int64
	// JobTimeout is the default per-job execution deadline, counted from
	// job start, and the ceiling for per-request timeout_seconds overrides
	// (0 = no default deadline).
	JobTimeout time.Duration
	// MaxSweepPoints caps how many points one sweep may expand to
	// (default MaxSweepPointsDefault).
	MaxSweepPoints int
	// FIFO disables the fair scheduler and dispatches jobs in global
	// submission order, ignoring priority and submitter — the pre-scheduler
	// behavior, kept as the load generator's A/B baseline (-scheduler fifo).
	FIFO bool
	// Progress receives grid/campaign progress tickers (nil = silent).
	Progress io.Writer

	// NodeID and Peers turn the daemon into one replica of a static
	// consistent-hash fleet (see peer.go). Peers must list every replica
	// including this one; NodeID names this replica's entry. Leaving Peers
	// empty keeps single-node behavior — wire format and /metrics output
	// byte-identical to a non-clustered build.
	NodeID string
	Peers  []cluster.Node
	// VNodes is the virtual-node count per replica on the ring
	// (≤0 = cluster.DefaultVNodes). Must match across the fleet.
	VNodes int
	// Blob enables the shared result tier: every computed result is
	// published (write-behind) to this backend and cache misses read
	// through it, so replicas serve each other's results byte-identically.
	Blob blob.Backend
}

// Server wires the queue, cache and metrics behind one http.Handler.
type Server struct {
	opts    Options
	queue   *jobqueue.Queue
	cache   *resultcache.Cache
	metrics *metrics
	mux     *http.ServeMux
	peers   *peering // nil = single-node

	// executors is the batch-execution pool: one report.Executor per job
	// worker, checked out for the duration of one compute, so consecutive
	// points on the same worker share evaluation matrices (the sweep fast
	// path). At most JobWorkers computes run concurrently — every compute
	// happens on a queue worker goroutine — so a checkout never blocks.
	executors chan *report.Executor

	// Sweep registry: a sweep is immutable after registration (its point
	// list and job ids are fixed at submit); live point status is read from
	// the queue on demand, so sweepMu only guards the map itself.
	sweepMu   sync.Mutex
	sweeps    map[string]*sweepRec
	nextSweep uint64
}

// New builds a Server and starts its worker pool.
func New(o Options) (*Server, error) {
	if o.JobWorkers <= 0 {
		o.JobWorkers = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 16
	}
	if o.MaxSweepPoints <= 0 {
		o.MaxSweepPoints = MaxSweepPointsDefault
	}
	var cacheOpts []resultcache.Option
	if o.Blob != nil {
		cacheOpts = append(cacheOpts, resultcache.WithShared(o.Blob))
	}
	cache, err := resultcache.New(o.CacheDir, o.CacheMaxBytes, cacheOpts...)
	if err != nil {
		return nil, err
	}
	var peers *peering
	if len(o.Peers) > 0 {
		if peers, err = newPeering(o.NodeID, o.Peers, o.VNodes); err != nil {
			return nil, err
		}
	}
	newQueue := jobqueue.New
	if o.FIFO {
		newQueue = jobqueue.NewFIFO
	}
	s := &Server{
		opts:      o,
		queue:     newQueue(o.QueueCap, o.JobWorkers),
		cache:     cache,
		metrics:   newMetrics(),
		peers:     peers,
		sweeps:    map[string]*sweepRec{},
		executors: make(chan *report.Executor, o.JobWorkers),
	}
	for i := 0; i < o.JobWorkers; i++ {
		s.executors <- report.NewExecutor(o.Progress)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("GET /v1/experiments", s.handleList)
	mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux = mux
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting jobs and waits for the backlog to finish; if ctx
// expires first, straggler jobs are canceled — their engines stop at the
// next context checkpoint and nothing partial reaches the cache (see
// jobqueue.Queue.Drain). Call http.Server.Shutdown first so no new
// submissions race the close.
func (s *Server) Drain(ctx context.Context) error {
	err := s.queue.Drain(ctx)
	// Flush write-behind publishes after the backlog settles, so a SIGTERM
	// drain leaves every computed result in the shared tier for the
	// surviving replicas.
	s.cache.FlushShared()
	return err
}

// canonicalConfig is exactly what gets hashed into the result address.
// report.Params omits Workers from its JSON encoding, and TimeoutSeconds is
// never copied in, keeping the identity worker-count- and deadline-free.
type canonicalConfig struct {
	Experiment string        `json:"experiment"`
	Params     report.Params `json:"params"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "invalid request body: %v", err)
		return
	}
	if !report.Known(req.Experiment) {
		httpError(w, http.StatusBadRequest, api.CodeUnknownExperiment, "unknown experiment %q (GET /v1/experiments lists valid ids)", req.Experiment)
		return
	}
	if req.Cycles < 0 || req.Warmup < 0 || req.Trials < 0 || req.TimeoutSeconds < 0 {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "cycles, warmup, trials and timeout_seconds must be non-negative (zero selects the default)")
		return
	}
	if req.Cycles > MaxCycles || req.Warmup > MaxWarmup || req.Trials > MaxTrials {
		httpError(w, http.StatusBadRequest, api.CodeBudgetTooLarge, "budget too large (max cycles %d, warmup %d, trials %d)", MaxCycles, MaxWarmup, MaxTrials)
		return
	}
	if !api.ValidPriority(req.Priority) {
		httpError(w, http.StatusBadRequest, api.CodeInvalidRequest, "unknown priority %q (valid: interactive, sweep, batch)", req.Priority)
		return
	}

	// NormalizedFor folds the scheme fields into the canonical identity:
	// requests without a scheme normalize exactly as they always have (same
	// content-address), and equivalent scheme spellings — omitted vs explicit
	// default, options formatting — collapse to one cache entry.
	p, err := report.Params{
		Cycles: req.Cycles, Warmup: req.Warmup, Trials: req.Trials,
		Seed: req.Seed, CSV: req.CSV,
		Scheme: req.Scheme, SchemeOptions: string(req.SchemeOptions),
	}.NormalizedFor(req.Experiment)
	if err != nil {
		httpError(w, http.StatusBadRequest, api.CodeUnknownScheme, "%v (GET /v1/schemes lists valid schemes)", err)
		return
	}
	cc := canonicalConfig{Experiment: req.Experiment, Params: p}
	key, err := resultcache.Key(cc)
	if err != nil {
		httpError(w, http.StatusInternalServerError, api.CodeInternal, "hashing config: %v", err)
		return
	}

	// Fast path: already computed — no job needed. In a fleet this checks
	// memory, local disk, and the shared blob tier.
	if _, ok := s.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, api.SubmitResponse{Status: api.StatusDone, ResultHash: key, Cached: true})
		return
	}

	// Cluster routing: a submission whose content address is owned by
	// another replica is forwarded there, so identical configs submitted
	// anywhere coalesce on one node's singleflight. Relayed requests stay
	// local (one-hop bound), and an unreachable owner falls through to
	// local execution — determinism makes the duplicate compute safe.
	if owner, local := s.owner(key); !local && !relayed(r) {
		if s.forwardSubmit(w, r, owner, req) {
			return
		}
	}

	id, err := s.queue.SubmitWith(s.pointTask(req.Experiment, p, key, false), jobqueue.SubmitOptions{
		Submitter: req.Submitter,
		Origin:    r.Header.Get(relayHeader),
		Class:     priorityClass(req.Priority, jobqueue.ClassInteractive),
		Timeout:   s.effectiveTimeout(req.TimeoutSeconds),
	})
	switch {
	case errors.Is(err, jobqueue.ErrFull):
		s.reject429(w, req.Experiment)
		return
	case errors.Is(err, jobqueue.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining")
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, api.CodeInternal, "submit: %v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, api.SubmitResponse{JobID: s.wireID(id), Status: api.StatusQueued, ResultHash: key})
}

// priorityClass maps a wire priority to its scheduling class; the empty
// string takes the endpoint's default (interactive for single submissions,
// sweep for sweep points). Callers validate with api.ValidPriority first.
func priorityClass(p string, def jobqueue.Class) jobqueue.Class {
	switch p {
	case api.PriorityInteractive:
		return jobqueue.ClassInteractive
	case api.PrioritySweep:
		return jobqueue.ClassSweep
	case api.PriorityBatch:
		return jobqueue.ClassBatch
	default:
		return def
	}
}

// pointTask builds the queue task that computes one (experiment, params)
// result into the cache under key. sweepPoint tags the sweep-point compute
// counter on top of the shared latency histogram.
func (s *Server) pointTask(experiment string, p report.Params, key string, sweepPoint bool) jobqueue.Task {
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		_, hit, err := s.cache.GetOrCompute(ctx, key, func(ctx context.Context) ([]byte, error) {
			return s.compute(ctx, key, experiment, p)
		})
		if err != nil {
			return nil, err
		}
		if !hit {
			s.metrics.observe(experiment, float64(time.Since(start).Nanoseconds())/1e6)
			if sweepPoint {
				s.metrics.sweepPointsComputed.Add(1)
			}
		}
		return key, nil
	}
}

// reject429 answers a saturated-queue submission: backpressure, not
// failure — the client should retry after the hinted delay.
func (s *Server) reject429(w http.ResponseWriter, experiment string) {
	s.metrics.rejectedFull.Add(1)
	w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterFor(experiment)))
	httpError(w, http.StatusTooManyRequests, api.CodeQueueFull, "queue full, retry later")
}

// retryAfterFor derives the Retry-After hint in whole seconds from observed
// compute latency: a queue slot frees roughly one mean compute time from
// now. The submitted experiment's own histogram mean is used first, the
// all-experiment mean as fallback, and the result is clamped to the
// floor/ceiling so a cold server hints 1s and a degenerate histogram cannot
// push clients out for hours.
func (s *Server) retryAfterFor(experiment string) int {
	ms := s.metrics.meanLatencyMS(experiment)
	if ms <= 0 {
		ms = s.metrics.meanLatencyMS("")
	}
	secs := int(math.Ceil(ms / 1000))
	if secs < retryAfterFloorSeconds {
		return retryAfterFloorSeconds
	}
	if secs > retryAfterCeilingSeconds {
		return retryAfterCeilingSeconds
	}
	return secs
}

// effectiveTimeout resolves a request's timeout_seconds against the
// server's default: the default is a ceiling, a zero request inherits it.
func (s *Server) effectiveTimeout(seconds float64) time.Duration {
	req := time.Duration(seconds * float64(time.Second))
	switch {
	case req <= 0:
		return s.opts.JobTimeout
	case s.opts.JobTimeout > 0 && req > s.opts.JobTimeout:
		return s.opts.JobTimeout
	default:
		return req
	}
}

// compute runs one experiment and renders its canonical result document.
// The bytes depend only on (experiment, params-identity): report.Runner
// guarantees worker-count invariance, json.Marshal of the data rows is
// deterministic (struct order, sorted map keys), and MarshalIndent re-
// indents the embedded RawMessage uniformly. A canceled ctx propagates out
// before anything is cached.
//
// Each compute checks an Executor out of the pool, so sweep points that
// land on the same worker back to back reuse each other's evaluation
// matrices; report.Executor guarantees the rendered bytes are identical to
// a standalone Runner's.
func (s *Server) compute(ctx context.Context, key, experiment string, p report.Params) ([]byte, error) {
	p.Workers = s.opts.Workers
	var x *report.Executor
	select {
	case x = <-s.executors:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	rep, err := x.Run(ctx, experiment, p)
	s.executors <- x
	if err != nil {
		return nil, err
	}
	var data json.RawMessage
	if rep.Data != nil {
		if data, err = json.Marshal(rep.Data); err != nil {
			return nil, err
		}
	}
	doc := api.Result{
		Hash:       key,
		Experiment: experiment,
		Params: api.Params{
			Cycles: p.Cycles, Warmup: p.Warmup, Trials: p.Trials, Seed: p.Seed, CSV: p.CSV,
			Scheme: p.Scheme, SchemeOptions: p.SchemeOptions,
		},
		Report: api.Report{Experiment: rep.Experiment, Title: rep.Title, Text: rep.Text, Data: data},
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	out := api.ExperimentList{Experiments: []api.ExperimentInfo{}}
	for _, id := range report.IDs() {
		out.Experiments = append(out.Experiments, api.ExperimentInfo{
			ID: id, Title: report.Title(id),
			SchemeAware:   report.SchemeAware(id),
			DefaultScheme: report.DefaultScheme(id),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSchemes serves the resilience scheme registry: every key a
// scheme-aware submission or sweep axis accepts, with the constructor
// options each scheme takes.
func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	out := api.SchemeList{Schemes: []api.SchemeInfo{}}
	for _, e := range ecc.Entries() {
		info := api.SchemeInfo{Key: e.Key, Description: e.Description, ChipKillCorrect: e.ChipKillCorrect}
		for _, o := range e.Options {
			info.Options = append(info.Options, api.SchemeOption{Name: o.Name, Type: o.Type, Description: o.Description})
		}
		out.Schemes = append(out.Schemes, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// jobStatus converts a queue snapshot to its wire form. Zero Started and
// Finished times mean "not yet" and are omitted on the wire (nil pointers)
// rather than serialized as 0001-01-01T00:00:00Z.
func jobStatus(snap jobqueue.Snapshot) api.JobStatus {
	js := api.JobStatus{
		ID: snap.ID, Status: string(snap.Status), Error: snap.Error,
		Created: snap.Created,
	}
	if !snap.Started.IsZero() {
		t := snap.Started
		js.Started = &t
	}
	if !snap.Finished.IsZero() {
		t := snap.Finished
		js.Finished = &t
	}
	if hash, ok := snap.Result.(string); ok {
		js.ResultHash = hash
	}
	return js
}

// wireJobStatus renders a snapshot with its cluster-wire id ("a1:job-3" in
// a fleet, the bare id single-node).
func (s *Server) wireJobStatus(snap jobqueue.Snapshot) api.JobStatus {
	js := jobStatus(snap)
	js.ID = s.wireID(js.ID)
	return js
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	node, local, remote := s.routeID(r.PathValue("id"))
	if remote && !relayed(r) {
		s.proxyToNode(w, r, node)
		return
	}
	snap, ok := s.queue.Get(local)
	if !ok {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.wireJobStatus(snap))
}

// handleCancel implements DELETE /v1/jobs/{id}. A queued job is terminal in
// the response already; a running job's engine observes the cancel at its
// next context checkpoint (milliseconds), so the response may still read
// "running" — clients poll to the terminal "canceled". Idempotent: deleting
// a finished job returns its final state unchanged.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	node, id, remote := s.routeID(r.PathValue("id"))
	if remote && !relayed(r) {
		s.proxyToNode(w, r, node)
		return
	}
	if _, ok := s.queue.Get(id); !ok {
		httpError(w, http.StatusNotFound, api.CodeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if s.queue.Cancel(id) {
		s.metrics.cancelRequests.Add(1)
	}
	snap, _ := s.queue.Get(id)
	writeJSON(w, http.StatusOK, s.wireJobStatus(snap))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if b, ok := s.cache.Peek(hash); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		return
	}
	if s.clustered() && !relayed(r) {
		// The local tiers missed. The hash owner is the replica most likely
		// to hold the bytes — redirect the client there, unless it asked not
		// to (no_redirect=1: it already followed a redirect into a dead
		// node), in which case fan the read out to the peers ourselves.
		owner, local := s.owner(hash)
		if !local && r.URL.Query().Get("no_redirect") != "1" {
			s.metrics.resultsRedirected.Add(1)
			http.Redirect(w, r, owner.Addr+"/v1/results/"+hash, http.StatusTemporaryRedirect)
			return
		}
		if s.proxyResultRead(w, r, hash) {
			return
		}
	}
	httpError(w, http.StatusNotFound, api.CodeNotFound, "no result for hash %q", hash)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, `{"error":{"code":%q,"message":"encoding response: %v"}}`, api.CodeInternal, err)
		return
	}
	w.Write(append(b, '\n'))
}

func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, api.ErrorEnvelope{Error: api.ErrorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}
