// Package serve is the HTTP layer of the eccsimd daemon: it turns every
// experiment of internal/sim/report into a submit/poll/fetch API backed by
// the bounded job queue (internal/jobqueue) and the content-addressed
// result cache (internal/resultcache).
//
// The API surface:
//
//	POST /v1/experiments        submit a config; 202 + job id (200 on cache hit)
//	GET  /v1/experiments        list known experiment ids
//	GET  /v1/jobs/{id}          poll a job's status
//	GET  /v1/results/{hash}     fetch a result document by content address
//	GET  /healthz               liveness
//	GET  /metrics               Prometheus-text counters and histograms
//	GET  /debug/vars            expvar (Go runtime memstats etc.)
//
// Determinism is the API contract: a request is identified by the SHA-256
// of its normalized config (seed included, worker count excluded), and the
// same hash always maps to byte-identical result bytes — the second
// identical submission is served from cache without recomputation.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"time"

	"eccparity/internal/jobqueue"
	"eccparity/internal/resultcache"
	"eccparity/internal/sim/report"
)

// Guardrails against absurd budgets taking a worker hostage. The paper's
// full budget (400k cycles, 60k warmup, 2–4k trials) sits far below all of
// them.
const (
	MaxCycles = 100_000_000
	MaxWarmup = 10_000_000
	MaxTrials = 1_000_000
)

// Options configures a Server.
type Options struct {
	// Workers bounds each experiment's internal simulation/Monte Carlo
	// pool (≤0 = NumCPU). Excluded from result identity.
	Workers int
	// JobWorkers is the number of experiments executing concurrently
	// (default 2 — each job already fans out over Workers goroutines).
	JobWorkers int
	// QueueCap bounds the submission backlog (default 16).
	QueueCap int
	// CacheDir enables the on-disk result layer ("" = memory only).
	CacheDir string
	// Progress receives grid/campaign progress tickers (nil = silent).
	Progress io.Writer
}

// Server wires the queue, cache and metrics behind one http.Handler.
type Server struct {
	opts    Options
	queue   *jobqueue.Queue
	cache   *resultcache.Cache
	metrics *metrics
	mux     *http.ServeMux
}

// New builds a Server and starts its worker pool.
func New(o Options) (*Server, error) {
	if o.JobWorkers <= 0 {
		o.JobWorkers = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 16
	}
	cache, err := resultcache.New(o.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    o,
		queue:   jobqueue.New(o.QueueCap, o.JobWorkers),
		cache:   cache,
		metrics: newMetrics(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("GET /v1/experiments", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/results/{hash}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux = mux
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting jobs and waits for the backlog to finish (see
// jobqueue.Queue.Drain). Call http.Server.Shutdown first so no new
// submissions race the close.
func (s *Server) Drain(ctx context.Context) error {
	return s.queue.Drain(ctx)
}

// ExperimentRequest is the POST /v1/experiments body. Zero-valued knobs
// normalize to the full-fidelity defaults of cmd/eccsim (a zero seed means
// seed 1), so partial requests are canonicalized before hashing.
type ExperimentRequest struct {
	Experiment string  `json:"experiment"`
	Cycles     float64 `json:"cycles"`
	Warmup     int     `json:"warmup"`
	Trials     int     `json:"trials"`
	Seed       int64   `json:"seed"`
	CSV        bool    `json:"csv"`
}

// canonicalConfig is exactly what gets hashed into the result address.
// report.Params omits Workers from its JSON encoding, keeping the identity
// worker-count-free.
type canonicalConfig struct {
	Experiment string        `json:"experiment"`
	Params     report.Params `json:"params"`
}

// SubmitResponse answers POST /v1/experiments.
type SubmitResponse struct {
	JobID      string `json:"job_id,omitempty"`
	Status     string `json:"status"`
	ResultHash string `json:"result_hash"`
	Cached     bool   `json:"cached"`
}

// JobResponse answers GET /v1/jobs/{id}.
type JobResponse struct {
	ID         string    `json:"id"`
	Status     string    `json:"status"`
	Error      string    `json:"error,omitempty"`
	ResultHash string    `json:"result_hash,omitempty"`
	Created    time.Time `json:"created"`
	Started    time.Time `json:"started"`
	Finished   time.Time `json:"finished"`
}

// ResultDoc is the cached result document served by /v1/results/{hash}.
type ResultDoc struct {
	Hash       string        `json:"hash"`
	Experiment string        `json:"experiment"`
	Params     report.Params `json:"params"`
	Report     report.Report `json:"report"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req ExperimentRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if !report.Known(req.Experiment) {
		httpError(w, http.StatusBadRequest, "unknown experiment %q (GET /v1/experiments lists valid ids)", req.Experiment)
		return
	}
	if req.Cycles < 0 || req.Warmup < 0 || req.Trials < 0 {
		httpError(w, http.StatusBadRequest, "cycles, warmup and trials must be non-negative (zero selects the default)")
		return
	}
	if req.Cycles > MaxCycles || req.Warmup > MaxWarmup || req.Trials > MaxTrials {
		httpError(w, http.StatusBadRequest, "budget too large (max cycles %d, warmup %d, trials %d)", MaxCycles, MaxWarmup, MaxTrials)
		return
	}

	p := report.Params{
		Cycles: req.Cycles, Warmup: req.Warmup, Trials: req.Trials,
		Seed: req.Seed, CSV: req.CSV,
	}.Normalized()
	cc := canonicalConfig{Experiment: req.Experiment, Params: p}
	key, err := resultcache.Key(cc)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "hashing config: %v", err)
		return
	}

	// Fast path: already computed — no job needed.
	if _, ok := s.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, SubmitResponse{Status: string(jobqueue.StatusDone), ResultHash: key, Cached: true})
		return
	}

	exp := req.Experiment
	id, err := s.queue.Submit(func(context.Context) (any, error) {
		start := time.Now()
		_, hit, err := s.cache.GetOrCompute(key, func() ([]byte, error) {
			return s.compute(key, exp, p)
		})
		if err != nil {
			return nil, err
		}
		if !hit {
			s.metrics.observe(exp, float64(time.Since(start).Nanoseconds())/1e6)
		}
		return key, nil
	})
	switch {
	case errors.Is(err, jobqueue.ErrFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "queue full, retry later")
		return
	case errors.Is(err, jobqueue.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "submit: %v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{JobID: id, Status: string(jobqueue.StatusQueued), ResultHash: key})
}

// compute runs one experiment and renders its canonical result document.
// The bytes depend only on (experiment, params-identity): report.Runner
// guarantees worker-count invariance, json.MarshalIndent is deterministic.
func (s *Server) compute(key, experiment string, p report.Params) ([]byte, error) {
	p.Workers = s.opts.Workers
	rep, err := report.NewRunner(p, s.opts.Progress).Run(experiment)
	if err != nil {
		return nil, err
	}
	doc := ResultDoc{Hash: key, Experiment: experiment, Params: p, Report: rep}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	out := []entry{}
	for _, id := range report.IDs() {
		out = append(out, entry{ID: id, Title: report.Title(id)})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	resp := JobResponse{
		ID: snap.ID, Status: string(snap.Status), Error: snap.Error,
		Created: snap.Created, Started: snap.Started, Finished: snap.Finished,
	}
	if hash, ok := snap.Result.(string); ok {
		resp.ResultHash = hash
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	b, ok := s.cache.Peek(hash)
	if !ok {
		httpError(w, http.StatusNotFound, "no result for hash %q", hash)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, `{"error":"encoding response: %v"}`, err)
		return
	}
	w.Write(append(b, '\n'))
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
