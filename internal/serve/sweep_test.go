package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"eccparity/pkg/api"
)

// smallSweep is a 3-point seed sweep over the same reduced budget as
// smallBody; seed 5 is exactly smallBody's config, so a prior single
// submission makes that point a cache hit at sweep submission.
func smallSweep() api.SweepRequest {
	return api.SweepRequest{
		Base: api.SubmitRequest{Experiment: "table3", Cycles: 2000, Warmup: 200, Trials: 8},
		Axes: api.SweepAxes{Seed: []int64{5, 6, 7}},
	}
}

// waitSweepTerminal long-polls until the sweep's aggregate state is terminal.
func waitSweepTerminal(t *testing.T, c *api.Client, id string) api.SweepStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.WaitSweep(ctx, id, 2*time.Second)
	if err != nil {
		t.Fatalf("sweep %s never reached a terminal state: %v", id, err)
	}
	return st
}

// TestSweepEndToEnd is the tentpole acceptance flow: a single submission
// pre-warms one point, then one POST runs the whole grid with a per-point
// cache hit, per-point results are fetchable, and an identical resubmission
// is fully cache-served — all observable via /metrics.
func TestSweepEndToEnd(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 2})
	c := api.NewClient(ts.URL)
	ctx := context.Background()

	// Pre-warm the seed-5 point through the single-experiment endpoint.
	code, single := postJSON(t, ts.URL, smallBody)
	if code != http.StatusAccepted {
		t.Fatalf("pre-warm submit: status %d", code)
	}
	pollDone(t, ts.URL, single.JobID)

	st, err := c.SubmitSweep(ctx, smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Progress.Total != 3 {
		t.Fatalf("sweep submit %+v, want 3 points", st)
	}
	if st.Progress.Cached != 1 {
		t.Fatalf("sweep submit cached = %d, want 1 (the pre-warmed seed-5 point)", st.Progress.Cached)
	}
	if p0 := st.Points[0]; !p0.Cached || p0.Status != api.StatusDone || p0.JobID != "" || p0.ResultHash != single.ResultHash {
		t.Fatalf("pre-warmed point %+v, want cached done with hash %s", p0, single.ResultHash)
	}
	for i, pt := range st.Points {
		if pt.Index != i || pt.Experiment != "table3" || pt.Params.Seed != int64(5+i) || pt.ResultHash == "" {
			t.Errorf("point %d = %+v", i, pt)
		}
	}

	final := waitSweepTerminal(t, c, st.ID)
	if final.Status != api.StatusDone || final.Progress.Done != 3 || final.Progress.Cached != 1 {
		t.Fatalf("final sweep %+v, want done 3/3 with 1 cached", final.Progress)
	}
	// Every point's result document is fetchable and self-consistent.
	for _, pt := range final.Points {
		res, err := c.Result(ctx, pt.ResultHash)
		if err != nil {
			t.Fatalf("point %d result: %v", pt.Index, err)
		}
		if res.Hash != pt.ResultHash || res.Params.Seed != pt.Params.Seed {
			t.Errorf("point %d result doc hash=%s seed=%d", pt.Index, res.Hash, res.Params.Seed)
		}
	}

	// Identical resubmission: every point is already cached, so the sweep is
	// terminal at submission time (HTTP 200 — checked via the raw status
	// below) and no new jobs exist.
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"base":{"experiment":"table3","cycles":2000,"warmup":200,"trials":8},"axes":{"seed":[5,6,7]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fully-cached resubmit: status %d, want 200", resp.StatusCode)
	}
	again, err := c.Sweep(ctx, "sweep-2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != api.StatusDone || again.Progress.Cached != 3 {
		t.Fatalf("resubmitted sweep %+v, want done with all 3 cached", again.Progress)
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	m := string(metrics)
	for _, want := range []string{
		"eccsimd_sweeps_total 2",
		"eccsimd_sweep_points_expanded_total 6",
		"eccsimd_sweep_points_cached_total 4",
		"eccsimd_sweep_points_computed_total 2",
		"eccsimd_sweep_cancel_requests_total 0",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q:\n%s", want, m)
		}
	}
}

// TestSweepCancelMidFlight reuses the cancel-latency harness: a sweep of
// hours-long points is canceled mid-run, every point must turn terminal
// promptly, and nothing partial may reach the cache.
func TestSweepCancelMidFlight(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1, JobWorkers: 1})
	c := api.NewClient(ts.URL)
	ctx := context.Background()

	st, err := c.SubmitSweep(ctx, api.SweepRequest{
		Base: api.SubmitRequest{Experiment: "fig9", Cycles: MaxCycles, Warmup: 100},
		Axes: api.SweepAxes{Seed: []int64{31, 32, 33}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Progress.Total != 3 || st.Progress.Cached != 0 {
		t.Fatalf("sweep submit %+v", st.Progress)
	}
	// Wait until a point is actually executing so the cancel interrupts a
	// running engine, not just queued jobs.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, err = c.Sweep(ctx, st.ID, 0); err != nil {
			t.Fatal(err)
		}
		if st.Progress.Running > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no sweep point ever started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	canceledAt := time.Now()
	if _, err := c.CancelSweep(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitSweepTerminal(t, c, st.ID)
	t.Logf("sweep cancel → terminal in %v", time.Since(canceledAt))
	if final.Status != api.StatusCanceled || final.Progress.Canceled != 3 {
		t.Fatalf("final sweep %s %+v, want canceled 3/3", final.Status, final.Progress)
	}
	// The cache must hold nothing for any point.
	for _, pt := range final.Points {
		if code, _ := getBody(t, ts.URL+"/v1/results/"+pt.ResultHash); code != http.StatusNotFound {
			t.Errorf("point %d result fetch after cancel: status %d, want 404", pt.Index, code)
		}
	}
	// Canceling a terminal sweep is a no-op returning the final state.
	again, err := c.CancelSweep(ctx, st.ID)
	if err != nil || again.Status != api.StatusCanceled {
		t.Fatalf("idempotent cancel: %v %s", err, again.Status)
	}
	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "eccsimd_sweep_cancel_requests_total 1") {
		t.Errorf("/metrics should count exactly the first sweep cancel:\n%s", metrics)
	}
}

// TestSweepWorkerCountInvariance extends the determinism contract to whole
// grids: the same sweep on daemons with different worker pools produces
// byte-identical per-point results, index by index.
func TestSweepWorkerCountInvariance(t *testing.T) {
	req := api.SweepRequest{
		Base: api.SubmitRequest{Experiment: "table3", Cycles: 2000, Warmup: 200, Trials: 8},
		Axes: api.SweepAxes{Seed: []int64{41, 42}},
	}
	run := func(workers int) (api.SweepStatus, [][]byte) {
		_, ts := newServer(t, Options{Workers: workers})
		c := api.NewClient(ts.URL)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		st, results, err := c.RunSweep(ctx, req, 2*time.Second)
		if err != nil {
			t.Fatalf("workers=%d: RunSweep: %v", workers, err)
		}
		if len(results) != 2 {
			t.Fatalf("workers=%d: %d results, want 2", workers, len(results))
		}
		raw := make([][]byte, len(st.Points))
		for i, pt := range st.Points {
			if results[i].Hash != pt.ResultHash {
				t.Fatalf("workers=%d: point %d result hash %s != %s", workers, i, results[i].Hash, pt.ResultHash)
			}
			b, err := c.ResultBytes(ctx, pt.ResultHash)
			if err != nil {
				t.Fatal(err)
			}
			raw[i] = b
		}
		return st, raw
	}
	st1, raw1 := run(1)
	st8, raw8 := run(8)
	for i := range st1.Points {
		if st1.Points[i].ResultHash != st8.Points[i].ResultHash {
			t.Errorf("point %d hash differs: workers=1 %s, workers=8 %s",
				i, st1.Points[i].ResultHash, st8.Points[i].ResultHash)
		}
		if !bytes.Equal(raw1[i], raw8[i]) {
			t.Errorf("point %d result bytes differ between workers=1 and workers=8", i)
		}
	}
}

// TestSweepLongPoll pins the ?wait= semantics: a terminal sweep answers a
// long wait immediately, an in-progress sweep is held no longer than the
// wait, and malformed waits are 400s.
func TestSweepLongPoll(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1, JobWorkers: 1})
	c := api.NewClient(ts.URL)
	ctx := context.Background()

	// An hours-long point keeps the sweep non-terminal for the whole test.
	st, err := c.SubmitSweep(ctx, api.SweepRequest{
		Base: api.SubmitRequest{Experiment: "fig9", Cycles: MaxCycles, Warmup: 100, Seed: 51},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Held for roughly the wait, no longer: nothing completes meanwhile.
	startAt := time.Now()
	held, err := c.Sweep(ctx, st.ID, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(startAt); elapsed < 100*time.Millisecond || elapsed > 10*time.Second {
		t.Errorf("long-poll on a stuck sweep returned after %v, want ≈150ms", elapsed)
	}
	if held.Status != api.StatusRunning {
		t.Errorf("stuck sweep status %s, want running", held.Status)
	}

	// Cancel makes it terminal; a long wait now answers immediately.
	if _, err := c.CancelSweep(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	waitSweepTerminal(t, c, st.ID)
	startAt = time.Now()
	if _, err := c.Sweep(ctx, st.ID, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(startAt); elapsed > 5*time.Second {
		t.Errorf("long-poll on a terminal sweep took %v, want immediate", elapsed)
	}

	for _, wait := range []string{"abc", "-1s", "5"} {
		code, body := getBody(t, ts.URL+"/v1/sweeps/"+st.ID+"?wait="+wait)
		if code != http.StatusBadRequest {
			t.Errorf("wait=%q: status %d, want 400: %s", wait, code, body)
		}
	}
}

// TestSweepValidation covers the rejection surface of POST /v1/sweeps.
func TestSweepValidation(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1, MaxSweepPoints: 4})
	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	cases := []struct {
		name, body, wantCode string
	}{
		{"bad json", `{"base":`, api.CodeInvalidRequest},
		{"unknown field", `{"base":{"experiment":"fig1"},"bogus":1}`, api.CodeInvalidRequest},
		{"negative base trials", `{"base":{"experiment":"fig8","trials":-4}}`, api.CodeInvalidRequest},
		{"unknown base experiment", `{"base":{"experiment":"fig99"}}`, api.CodeUnknownExperiment},
		{"unknown axis experiment", `{"base":{"experiment":"fig8"},"axes":{"experiment":["fig8","fig99"]}}`, api.CodeUnknownExperiment},
		{"negative axis value", `{"base":{"experiment":"fig8"},"axes":{"trials":[-1]}}`, api.CodeInvalidRequest},
		{"duplicate points", `{"base":{"experiment":"fig8"},"axes":{"seed":[0,1]}}`, api.CodeInvalidRequest},
		{"too many points", `{"base":{"experiment":"fig8"},"axes":{"seed":[1,2,3,4,5]}}`, api.CodeBudgetTooLarge},
		{"point over budget", fmt.Sprintf(`{"base":{"experiment":"fig8"},"axes":{"trials":[%d]}}`, MaxTrials+1), api.CodeBudgetTooLarge},
	}
	for _, tc := range cases {
		code, body := post(tc.body)
		if code != http.StatusBadRequest || !strings.Contains(body, tc.wantCode) {
			t.Errorf("%s: status %d body %s, want 400 with %q", tc.name, code, body, tc.wantCode)
		}
	}

	if code, _ := getBody(t, ts.URL+"/v1/sweeps/sweep-404"); code != http.StatusNotFound {
		t.Errorf("unknown sweep GET: status %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/sweep-404", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep DELETE: status %d, want 404", resp.StatusCode)
	}
}

// TestSweepQueueFullRollsBack pins all-or-nothing admission: a sweep whose
// uncached points overflow the bounded queue is rejected with 429 and a
// Retry-After hint, registers nothing, and leaves no stray jobs running.
func TestSweepQueueFullRollsBack(t *testing.T) {
	s, ts := newServer(t, Options{Workers: 1, JobWorkers: 1, QueueCap: 1})
	c := api.NewClient(ts.URL)
	ctx := context.Background()

	// 4 hours-long points against 1 worker + 1 buffer slot: admission must
	// overflow partway through and roll back.
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(
		`{"base":{"experiment":"fig9","cycles":100000000,"warmup":100},"axes":{"seed":[61,62,63,64]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflowing sweep: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 sweep response missing Retry-After header")
	}
	// Nothing registered: the allocated id is not fetchable.
	if _, err := c.Sweep(ctx, "sweep-1", 0); err == nil {
		t.Error("rejected sweep is fetchable")
	}

	// The rolled-back jobs were canceled; once they unwind, the queue is
	// empty and a fresh single submission is accepted.
	deadline := time.Now().Add(30 * time.Second)
	for s.queue.Depth() > 0 || s.queue.InFlight() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("rolled-back sweep jobs still occupy the queue (depth %d, inflight %d)",
				s.queue.Depth(), s.queue.InFlight())
		}
		time.Sleep(2 * time.Millisecond)
	}
	qc := s.queue.Stats()
	if qc.Canceled != qc.Submitted || qc.Submitted == 0 {
		t.Errorf("queue counts %+v: every admitted sweep point must be canceled", qc)
	}
	sr, err := c.Submit(ctx, api.SubmitRequest{Experiment: "fig1"})
	if err != nil {
		t.Fatalf("post-rollback submit: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if js, err := c.Wait(waitCtx, sr.JobID, 2*time.Millisecond); err != nil || js.Status != api.StatusDone {
		t.Fatalf("post-rollback job: %v %+v", err, js)
	}
	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "eccsimd_rejected_full_total 1") {
		t.Errorf("/metrics should count the sweep rejection:\n%s", metrics)
	}
}

// TestRetryAfterDerivation pins the Retry-After hint: derived from the
// submitted experiment's mean compute latency, falling back to the
// all-experiment mean, clamped to the floor and ceiling.
func TestRetryAfterDerivation(t *testing.T) {
	s := &Server{metrics: newMetrics()}
	if got := s.retryAfterFor("fig8"); got != retryAfterFloorSeconds {
		t.Errorf("cold server hint = %d, want floor %d", got, retryAfterFloorSeconds)
	}
	s.metrics.observe("fig8", 4200)
	s.metrics.observe("fig8", 4800) // mean 4500ms → ceil → 5s
	if got := s.retryAfterFor("fig8"); got != 5 {
		t.Errorf("fig8 hint = %d, want 5", got)
	}
	// Unobserved experiment falls back to the all-experiment mean.
	if got := s.retryAfterFor("table3"); got != 5 {
		t.Errorf("fallback hint = %d, want 5 (all-experiment mean)", got)
	}
	// Sub-second means clamp to the floor.
	fast := &Server{metrics: newMetrics()}
	fast.metrics.observe("fig1", 12)
	if got := fast.retryAfterFor("fig1"); got != retryAfterFloorSeconds {
		t.Errorf("fast hint = %d, want floor %d", got, retryAfterFloorSeconds)
	}
	// Pathological histograms clamp to the ceiling.
	slow := &Server{metrics: newMetrics()}
	slow.metrics.observe("fig9", 1e7)
	if got := slow.retryAfterFor("fig9"); got != retryAfterCeilingSeconds {
		t.Errorf("slow hint = %d, want ceiling %d", got, retryAfterCeilingSeconds)
	}
}
