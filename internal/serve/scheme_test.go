package serve

// Scheme-layer API tests: the /v1/schemes listing, scheme-aware submission
// and sweeps, and — most load-bearing — the hash-compatibility pin that
// keeps every pre-scheme-layer request at its original content address.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"eccparity/internal/ecc"
	"eccparity/internal/resultcache"
	"eccparity/internal/sim/report"
	"eccparity/pkg/api"
)

// TestPreSchemeHashCompat pins content addresses recorded before the scheme
// fields existed. These are external contracts: cached result documents,
// on-disk cache entries and cluster ring placements all key on them, so a
// Params field addition (or a normalization change) that perturbs any of
// these hashes is a breaking change, not a refactor. The submit path must
// map each config — with scheme fields absent OR spelled as the default —
// to exactly these addresses.
func TestPreSchemeHashCompat(t *testing.T) {
	pins := []struct {
		experiment string
		params     report.Params
		want       string
	}{
		{"fig8", report.DefaultParams(), "3a393a4d27284abc11d3f07dab1fa476bbc31879249ad8d3900893c77ccc422f"},
		{"fig8", report.Params{Trials: 40, Seed: 7}, "05a92d4da88ff12fd3b3dcfc8fbad5e7c1494a196bd03f2d03fb99707a3e049d"},
		{"table2", report.DefaultParams(), "1b91b54629df6ae42945cf2aaf1bc21eeac09d5a8deaf92481a7f032805bae77"},
		{"fig10", report.Params{Cycles: 1500, Warmup: 200, Trials: 2, Seed: 1}, "5650f10e0b0e78c09293df05e02224137c7517279566b04108391bc76d1d488e"},
		{"fig9", report.Params{Cycles: 2000, Warmup: 100, Trials: 2, Seed: 3, CSV: true}, "011356a8c1620ee36d9fe942690694b798b6df9b24ef5ead4651340081e7ec1e"},
		{"counters", report.Params{Cycles: 400000, Warmup: 60000, Trials: 2000, Seed: 42}, "eb8736e9e427671a3807068c649b4ea383d494c03a6e59baf32a6e5a13fcdd85"},
	}
	for _, pin := range pins {
		p, err := pin.params.NormalizedFor(pin.experiment)
		if err != nil {
			t.Fatalf("%s: %v", pin.experiment, err)
		}
		key, err := resultcache.Key(canonicalConfig{Experiment: pin.experiment, Params: p})
		if err != nil {
			t.Fatal(err)
		}
		if key != pin.want {
			t.Errorf("%s %+v: hash %s, want pinned pre-scheme-layer %s", pin.experiment, pin.params, key, pin.want)
		}
	}
}

// TestSchemesEndpoint: GET /v1/schemes serves the full registry in key
// order, and GET /v1/experiments marks which experiments take a scheme.
func TestSchemesEndpoint(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1})
	c := api.NewClient(ts.URL)

	schemes, err := c.ListSchemes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := ecc.Names()
	if len(schemes) != len(want) {
		t.Fatalf("got %d schemes, want %d", len(schemes), len(want))
	}
	byKey := map[string]api.SchemeInfo{}
	for i, si := range schemes {
		if si.Key != want[i] {
			t.Errorf("scheme %d = %q, want %q (key order)", i, si.Key, want[i])
		}
		if si.Description == "" {
			t.Errorf("scheme %q: empty description", si.Key)
		}
		byKey[si.Key] = si
	}
	if si := byKey["ondie+chipkill"]; !si.ChipKillCorrect || len(si.Options) != 1 || si.Options[0].Name != "passthrough" {
		t.Errorf("ondie+chipkill entry %+v, want chip-kill-correct with a passthrough option", si)
	}
	if si := byKey["ondie-sec"]; si.ChipKillCorrect {
		t.Errorf("bare on-die rank must not advertise chip-kill correct: %+v", si)
	}

	exps, err := c.Experiments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]api.ExperimentInfo{}
	for _, e := range exps {
		byID[e.ID] = e
	}
	if e := byID["faultinject"]; !e.SchemeAware || e.DefaultScheme != "ondie+chipkill" {
		t.Errorf("faultinject listing %+v, want scheme-aware with default ondie+chipkill", e)
	}
	if e := byID["fig8"]; e.SchemeAware || e.DefaultScheme != "" {
		t.Errorf("fig8 listing %+v, want scheme-blind", e)
	}
}

// TestSchemeSubmitEndToEnd runs a composite-scheme experiment through
// submit → poll → fetch, asserts the result document echoes the canonical
// scheme identity, and verifies equivalent spellings of the default
// selection collapse to the scheme-omitted content address.
func TestSchemeSubmitEndToEnd(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 2})

	code, sr := postJSON(t, ts.URL, `{"experiment":"faultinject","trials":8,"seed":5,"scheme":"ondie+raim18"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollDone(t, ts.URL, sr.JobID)
	code, b := getBody(t, ts.URL+"/v1/results/"+sr.ResultHash)
	if code != http.StatusOK {
		t.Fatalf("result fetch: status %d: %s", code, b)
	}
	var doc api.Result
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Params.Scheme != "ondie+raim18" || doc.Params.SchemeOptions != "" {
		t.Errorf("result params %+v, want scheme ondie+raim18", doc.Params)
	}
	if !strings.Contains(doc.Report.Text, "chip-kill") {
		t.Errorf("faultinject text missing the chip-kill pattern row:\n%s", doc.Report.Text)
	}

	// A different scheme is a different content address.
	code, other := postJSON(t, ts.URL, `{"experiment":"faultinject","trials":8,"seed":5,"scheme":"ondie-sec"}`)
	if code != http.StatusAccepted {
		t.Fatalf("ondie-sec submit: status %d", code)
	}
	if other.ResultHash == sr.ResultHash {
		t.Error("distinct schemes must not share a content address")
	}
	pollDone(t, ts.URL, other.JobID)

	// The default scheme, however spelled, is the scheme-omitted identity.
	code, base := postJSON(t, ts.URL, `{"experiment":"faultinject","trials":8,"seed":5}`)
	if code != http.StatusAccepted {
		t.Fatalf("default submit: status %d", code)
	}
	pollDone(t, ts.URL, base.JobID)
	for _, body := range []string{
		`{"experiment":"faultinject","trials":8,"seed":5,"scheme":"ondie+chipkill"}`,
		`{"experiment":"faultinject","trials":8,"seed":5,"scheme":"ondie+chipkill","scheme_options":{}}`,
		`{"experiment":"faultinject","trials":8,"seed":5,"scheme":"ondie+chipkill","scheme_options":{"passthrough":false}}`,
	} {
		code, again := postJSON(t, ts.URL, body)
		if code != http.StatusOK || !again.Cached || again.ResultHash != base.ResultHash {
			t.Errorf("%s: code=%d cached=%v hash=%s, want cache hit on %s",
				body, code, again.Cached, again.ResultHash, base.ResultHash)
		}
	}

	// A non-default option set is its own identity and round-trips in
	// canonical form.
	code, pass := postJSON(t, ts.URL, `{"experiment":"faultinject","trials":8,"seed":5,"scheme_options":{ "passthrough" : true }}`)
	if code != http.StatusAccepted {
		t.Fatalf("passthrough submit: status %d", code)
	}
	if pass.ResultHash == base.ResultHash {
		t.Error("passthrough variant must not share the default's content address")
	}
	pollDone(t, ts.URL, pass.JobID)
	_, pb := getBody(t, ts.URL+"/v1/results/"+pass.ResultHash)
	var pdoc api.Result
	if err := json.Unmarshal(pb, &pdoc); err != nil {
		t.Fatal(err)
	}
	if pdoc.Params.Scheme != "ondie+chipkill" || pdoc.Params.SchemeOptions != `{"passthrough":true}` {
		t.Errorf("passthrough result params %+v, want canonical options", pdoc.Params)
	}
}

// TestSchemeSubmitValidation: scheme mistakes answer 400 with the
// unknown_scheme code, pointing at the listing endpoint.
func TestSchemeSubmitValidation(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 1})
	for name, body := range map[string]string{
		"unknown scheme":           `{"experiment":"faultinject","scheme":"nope"}`,
		"scheme on blind exp":      `{"experiment":"fig8","scheme":"chipkill36"}`,
		"options on blind exp":     `{"experiment":"fig8","scheme_options":{"passthrough":true}}`,
		"unknown option":           `{"experiment":"faultinject","scheme_options":{"bogus":1}}`,
		"options on fixed scheme":  `{"experiment":"faultinject","scheme":"chipkill36","scheme_options":{"passthrough":true}}`,
		"engine-only on codec exp": `{"experiment":"faultinject","scheme":"lotecc5+parity"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var env api.ErrorEnvelope
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != api.CodeUnknownScheme {
			t.Errorf("%s: status %d code %q, want 400 %q", name, resp.StatusCode, env.Error.Code, api.CodeUnknownScheme)
		}
	}
}

// TestSweepSchemeAxisEndToEnd runs one grid across three schemes, checks
// the default folds into the scheme-omitted identity (cache hit against a
// prior plain submission), and that per-point results are scheme-labeled.
func TestSweepSchemeAxisEndToEnd(t *testing.T) {
	_, ts := newServer(t, Options{Workers: 2})
	c := api.NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Pre-warm the default-scheme point through the single endpoint.
	code, single := postJSON(t, ts.URL, `{"experiment":"faultinject","trials":8,"seed":5}`)
	if code != http.StatusAccepted {
		t.Fatalf("pre-warm: status %d", code)
	}
	pollDone(t, ts.URL, single.JobID)

	st, results, err := c.RunSweep(ctx, api.SweepRequest{
		Base: api.SubmitRequest{Experiment: "faultinject", Trials: 8, Seed: 5},
		Axes: api.SweepAxes{Scheme: []string{"ondie-sec", "ondie+chipkill", "ondie+raim18"}},
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Progress.Total != 3 || st.Progress.Cached != 1 {
		t.Fatalf("sweep progress %+v, want 3 points with the default-scheme point cached", st.Progress)
	}
	wantSchemes := []string{"ondie-sec", "", "ondie+raim18"} // default folds to ""
	for i, pt := range st.Points {
		if pt.Params.Scheme != wantSchemes[i] {
			t.Errorf("point %d scheme %q, want %q", i, pt.Params.Scheme, wantSchemes[i])
		}
	}
	if st.Points[1].ResultHash != single.ResultHash {
		t.Errorf("default-scheme point hash %s, want the pre-warmed %s", st.Points[1].ResultHash, single.ResultHash)
	}
	var texts []string
	for i, res := range results {
		if res.Experiment != "faultinject" {
			t.Errorf("point %d experiment %q", i, res.Experiment)
		}
		texts = append(texts, res.Report.Text)
	}
	if texts[0] == texts[1] || texts[1] == texts[2] {
		t.Error("distinct schemes produced identical report text")
	}

	// Resubmitting the identical grid is fully cache-served and
	// byte-identical per point.
	st2, err := c.SubmitSweep(ctx, api.SweepRequest{
		Base: api.SubmitRequest{Experiment: "faultinject", Trials: 8, Seed: 5},
		Axes: api.SweepAxes{Scheme: []string{"ondie-sec", "ondie+chipkill", "ondie+raim18"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Status != api.StatusDone || st2.Progress.Cached != 3 {
		t.Fatalf("resubmitted grid %+v, want fully cached", st2.Progress)
	}
	for i, pt := range st2.Points {
		b1, err := c.ResultBytes(ctx, st.Points[i].ResultHash)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := c.ResultBytes(ctx, pt.ResultHash)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("point %d bytes differ across submissions", i)
		}
	}

	// Scheme-axis mistakes surface as unknown_scheme at expansion.
	_, err = c.SubmitSweep(ctx, api.SweepRequest{
		Base: api.SubmitRequest{Experiment: "fig8"},
		Axes: api.SweepAxes{Scheme: []string{"chipkill36"}},
	})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnknownScheme {
		t.Errorf("scheme axis over scheme-blind experiment: %v, want code %q", err, api.CodeUnknownScheme)
	}
}
