// Package jobqueue is the bounded FIFO work queue behind the eccsimd
// daemon: submitted tasks run on a fixed pool of worker goroutines (the
// pool itself is one parallel.ForEach fan-out, reusing the repo's standard
// pool plumbing), every job carries an externally visible status, and the
// whole queue drains gracefully on shutdown — no accepted job is ever lost
// or reported twice.
package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"eccparity/internal/parallel"
)

// Submission errors.
var (
	// ErrFull is returned when the queue's bounded buffer is at capacity.
	ErrFull = errors.New("jobqueue: queue full")
	// ErrClosed is returned once Close or Drain has been called.
	ErrClosed = errors.New("jobqueue: closed")
)

// Status is a job's lifecycle state.
type Status string

// The job lifecycle: Queued → Running → one terminal state. A queued job
// canceled before a worker picks it up goes straight to StatusCanceled.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether s is a final state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Task is one unit of work. The context is canceled when the job is
// canceled or the queue force-drains; tasks that can stop early should
// honor it.
type Task func(ctx context.Context) (any, error)

// Snapshot is a consistent copy of a job's externally visible state.
type Snapshot struct {
	ID       string    `json:"id"`
	Status   Status    `json:"status"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Result holds the task's return value once Status == StatusDone.
	Result any `json:"-"`
}

// job is the internal record; all fields past task are guarded by Queue.mu.
type job struct {
	id      string
	group   string // "" = ungrouped; see SubmitGroup / CancelGroup
	task    Task
	ctx     context.Context
	cancel  context.CancelFunc
	timeout time.Duration // 0 = no deadline; counted from job start

	status   Status
	err      string
	result   any
	created  time.Time
	started  time.Time
	finished time.Time
}

// Counts aggregates terminal outcomes for metrics.
type Counts struct {
	Submitted, Done, Failed, Canceled uint64
}

// Queue is a bounded FIFO job queue with a fixed worker pool. All methods
// are safe for concurrent use.
type Queue struct {
	mu       sync.Mutex
	jobs     map[string]*job
	groups   map[string][]*job
	closed   bool
	nextID   uint64
	inflight int
	counts   Counts
	change   chan struct{} // closed and replaced on every status transition

	ch         chan *job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	poolDone   chan struct{}
}

// New starts a queue holding at most capacity queued jobs, executed by
// exactly workers goroutines. Both are clamped to ≥1.
func New(capacity, workers int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	if workers < 1 {
		workers = 1
	}
	q := &Queue{
		jobs:     map[string]*job{},
		groups:   map[string][]*job{},
		ch:       make(chan *job, capacity),
		change:   make(chan struct{}),
		poolDone: make(chan struct{}),
	}
	q.baseCtx, q.baseCancel = context.WithCancel(context.Background())
	go func() {
		defer close(q.poolDone)
		// The pool is a parallel.ForEach with one long-lived loop per worker
		// slot, running under the queue's base context so a forced Drain
		// cancels workers through the same plumbing that cancels the jobs.
		// Task panics are captured per job inside run, so the fan-out itself
		// never errors and a bad job cannot kill the pool.
		_ = parallel.ForEach(q.baseCtx, workers, workers, func(ctx context.Context, _ int) error {
			for {
				select {
				case j, ok := <-q.ch:
					if !ok {
						return nil
					}
					q.run(j)
				case <-ctx.Done():
					// Forced drain: stop executing new work. The buffer is
					// already closed (Drain closes before canceling), so this
					// sweep terminates; every remaining job's context is a
					// child of the canceled base context, so run marks it
					// canceled without invoking the task.
					for j := range q.ch {
						q.run(j)
					}
					return nil
				}
			}
		})
		// If cancellation raced the pool's startup, ForEach may have exited
		// before any worker ran its loop; sweep whatever is left so every
		// accepted job still reaches a terminal state.
		for j := range q.ch {
			q.run(j)
		}
	}()
	return q
}

// Submit enqueues a task FIFO and returns its job id. It never blocks:
// a full buffer returns ErrFull, a closed queue ErrClosed.
func (q *Queue) Submit(task Task) (string, error) {
	return q.SubmitTimeout(task, 0)
}

// SubmitTimeout is Submit with a per-job deadline, counted from the moment
// a worker starts the job (queue wait doesn't burn the budget). When the
// deadline expires, the task's context is canceled; the job finishes
// StatusFailed with context.DeadlineExceeded, distinct from an explicit
// Cancel's StatusCanceled. A timeout of 0 means no deadline.
func (q *Queue) SubmitTimeout(task Task, timeout time.Duration) (string, error) {
	return q.SubmitGroup("", task, timeout)
}

// SubmitGroup is SubmitTimeout for a job tagged with a group name: every
// non-terminal job of a group can be canceled in one call with CancelGroup
// (the daemon uses one group per sweep). An empty group means ungrouped.
func (q *Queue) SubmitGroup(group string, task Task, timeout time.Duration) (string, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return "", ErrClosed
	}
	q.nextID++
	id := fmt.Sprintf("job-%d", q.nextID)
	ctx, cancel := context.WithCancel(q.baseCtx)
	j := &job{id: id, group: group, task: task, ctx: ctx, cancel: cancel, timeout: timeout, status: StatusQueued, created: time.Now()}
	// The send happens under the lock so it cannot race Close's close(ch).
	select {
	case q.ch <- j:
		q.jobs[id] = j
		if group != "" {
			q.groups[group] = append(q.groups[group], j)
		}
		q.counts.Submitted++
		q.mu.Unlock()
		return id, nil
	default:
		q.mu.Unlock()
		cancel()
		return "", ErrFull
	}
}

// run executes one job on a pool worker, moving it through exactly one
// terminal transition.
func (q *Queue) run(j *job) {
	q.mu.Lock()
	if j.status != StatusQueued {
		// Canceled while queued; already terminal.
		q.mu.Unlock()
		return
	}
	if j.ctx.Err() != nil {
		q.finishLocked(j, StatusCanceled, nil, j.ctx.Err().Error())
		q.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	q.inflight++
	q.bumpLocked()
	if j.timeout > 0 {
		// The deadline clock starts here, not at Submit, so a job that sat
		// in the buffer still gets its full budget. Replacing j.ctx under mu
		// keeps Cancel's j.cancel() effective: it cancels the parent.
		var cancelTimeout context.CancelFunc
		j.ctx, cancelTimeout = context.WithTimeout(j.ctx, j.timeout)
		defer cancelTimeout()
	}
	q.mu.Unlock()

	res, err := runTask(j)

	q.mu.Lock()
	q.inflight--
	switch {
	case err == nil:
		q.finishLocked(j, StatusDone, res, "")
	case errors.Is(err, context.Canceled):
		q.finishLocked(j, StatusCanceled, nil, err.Error())
	default:
		q.finishLocked(j, StatusFailed, nil, err.Error())
	}
	q.mu.Unlock()
	j.cancel()
}

// finishLocked records a job's single terminal transition (mu held).
func (q *Queue) finishLocked(j *job, s Status, res any, errMsg string) {
	j.status = s
	j.result = res
	j.err = errMsg
	j.finished = time.Now()
	switch s {
	case StatusDone:
		q.counts.Done++
	case StatusFailed:
		q.counts.Failed++
	case StatusCanceled:
		q.counts.Canceled++
	}
	q.bumpLocked()
}

// bumpLocked wakes everyone blocked on Changed (mu held).
func (q *Queue) bumpLocked() {
	close(q.change)
	q.change = make(chan struct{})
}

// Changed returns a channel that is closed at the next job status
// transition (queued→running or any terminal move). Grab the channel, read
// whatever state is of interest, then wait on it: the close-and-replace
// discipline means no transition between the grab and the wait is lost.
func (q *Queue) Changed() <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.change
}

// runTask invokes the task, converting a panic into an error so one bad
// job cannot take down the daemon's worker pool.
func runTask(j *job) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobqueue: job %s panicked: %v\n%s", j.id, r, debug.Stack())
		}
	}()
	return j.task(j.ctx)
}

// Get returns a snapshot of the job's current state.
func (q *Queue) Get(id string) (Snapshot, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return Snapshot{
		ID: j.id, Status: j.status, Error: j.err,
		Created: j.created, Started: j.started, Finished: j.finished,
		Result: j.result,
	}, true
}

// Cancel cancels a job: a queued job becomes terminal immediately, a
// running job has its context canceled (tasks that honor it will stop).
// It reports whether the job exists and was not already terminal.
func (q *Queue) Cancel(id string) bool {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || j.status.Terminal() {
		q.mu.Unlock()
		return false
	}
	if j.status == StatusQueued {
		q.finishLocked(j, StatusCanceled, nil, "canceled before start")
	}
	q.mu.Unlock()
	j.cancel()
	return true
}

// CancelGroup cancels every non-terminal job submitted under group, exactly
// as per-job Cancel would: queued jobs become terminal immediately, running
// jobs have their contexts canceled. It returns how many jobs it canceled.
func (q *Queue) CancelGroup(group string) int {
	if group == "" {
		return 0
	}
	q.mu.Lock()
	var hit []*job
	for _, j := range q.groups[group] {
		if j.status.Terminal() {
			continue
		}
		if j.status == StatusQueued {
			q.finishLocked(j, StatusCanceled, nil, "canceled before start")
		}
		hit = append(hit, j)
	}
	q.mu.Unlock()
	for _, j := range hit {
		j.cancel()
	}
	return len(hit)
}

// Depth returns the number of jobs waiting in the buffer.
func (q *Queue) Depth() int { return len(q.ch) }

// InFlight returns the number of jobs currently executing.
func (q *Queue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inflight
}

// Stats returns the cumulative submission/outcome counters.
func (q *Queue) Stats() Counts {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.counts
}

// Close stops accepting submissions. Already-queued and running jobs keep
// going; use Drain to wait for them.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// Drain closes the queue and blocks until every accepted job has reached a
// terminal state. If ctx expires first, all remaining job contexts are
// canceled (queued jobs become StatusCanceled without running; running
// tasks see cancellation) and Drain still waits for the workers to finish
// before returning ctx's error.
func (q *Queue) Drain(ctx context.Context) error {
	q.Close()
	select {
	case <-q.poolDone:
		return nil
	case <-ctx.Done():
		q.baseCancel()
		<-q.poolDone
		return ctx.Err()
	}
}
