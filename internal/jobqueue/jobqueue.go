// Package jobqueue is the bounded work queue behind the eccsimd daemon:
// submitted tasks run on a fixed pool of worker goroutines (the pool itself
// is one parallel.ForEach fan-out, reusing the repo's standard pool
// plumbing), every job carries an externally visible status, and the whole
// queue drains gracefully on shutdown — no accepted job is ever lost or
// reported twice.
//
// Dispatch is fair, not FIFO: jobs queue under a (submitter, group)
// fairness key inside one of three priority classes (interactive > sweep >
// batch), lanes within a class drain round-robin one job per turn, and
// classes share the workers by deficit-weighted round-robin (see sched).
// FIFO order is preserved within a lane, so one submitter's jobs still run
// in submission order, but a 10k-point sweep can no longer starve the
// interactive submitter behind it. NewFIFO restores the old single-lane
// global FIFO for A/B load measurements.
package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"eccparity/internal/parallel"
	"eccparity/internal/stats"
)

// Submission errors.
var (
	// ErrFull is returned when the queue's bounded buffer is at capacity.
	ErrFull = errors.New("jobqueue: queue full")
	// ErrClosed is returned once Close or Drain has been called.
	ErrClosed = errors.New("jobqueue: closed")
)

// Status is a job's lifecycle state.
type Status string

// The job lifecycle: Queued → Running → one terminal state. A queued job
// canceled before a worker picks it up goes straight to StatusCanceled.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether s is a final state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Task is one unit of work. The context is canceled when the job is
// canceled or the queue force-drains; tasks that can stop early should
// honor it.
type Task func(ctx context.Context) (any, error)

// SubmitOptions tags a submission with its scheduling identity. The zero
// value reproduces plain Submit: ungrouped, anonymous, interactive, no
// deadline.
type SubmitOptions struct {
	// Group names the cancellation/notification group (the daemon uses one
	// group per sweep; CancelGroup and ChangedGroup address it). "" means
	// ungrouped.
	Group string
	// Submitter is the fairness identity: each (Submitter, Group) pair gets
	// its own FIFO lane, so distinct submitters interleave instead of
	// queueing behind each other. "" is the shared anonymous lane.
	Submitter string
	// Origin is the cluster peer that forwarded this submission ("" = a
	// direct client submission). Admission treats a forwarded job like any
	// other — same capacity check, same classes — but when Submitter is
	// empty the origin seeds the fairness lane ("peer/<origin>"), so one
	// peer's forwarded backlog interleaves with local traffic instead of
	// flooding the shared anonymous lane.
	Origin string
	// Class is the priority class (default ClassInteractive).
	Class Class
	// Timeout is the per-job execution deadline counted from job start
	// (0 = none); see SubmitTimeout.
	Timeout time.Duration
}

// Snapshot is a consistent copy of a job's externally visible state.
type Snapshot struct {
	ID       string    `json:"id"`
	Status   Status    `json:"status"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Group and Class echo the submission's scheduling identity; Origin is
	// the forwarding peer for jobs relayed across a cluster.
	Group  string `json:"group,omitempty"`
	Class  Class  `json:"class"`
	Origin string `json:"origin,omitempty"`
	// Result holds the task's return value once Status == StatusDone.
	Result any `json:"-"`
}

// job is the internal record; all fields past timeout are guarded by
// Queue.mu.
type job struct {
	id       string
	group    string // "" = ungrouped; see SubmitOptions.Group
	origin   string // forwarding peer; see SubmitOptions.Origin
	schedKey string // fairness lane: schedKey(submitter, group)
	class    Class
	task     Task
	ctx      context.Context
	cancel   context.CancelFunc
	timeout  time.Duration // 0 = no deadline; counted from job start
	status   Status
	err      string
	result   any
	created  time.Time
	started  time.Time
	finished time.Time
}

// Counts aggregates terminal outcomes for metrics.
type Counts struct {
	Submitted, Done, Failed, Canceled uint64
}

// Queue is a bounded job queue with a fixed worker pool and fair dispatch.
// All methods are safe for concurrent use.
type Queue struct {
	mu       sync.Mutex
	jobs     map[string]*job
	groups   map[string][]*job
	sched    sched
	capacity int
	closed   bool
	nextID   uint64
	inflight int
	counts   Counts
	change   chan struct{}               // closed and replaced on every status transition
	changeG  map[string]chan struct{}    // per-group transition channels (ChangedGroup)
	dispatch chan struct{}               // closed and replaced whenever a job is queued (or on Close)
	waitHist [numClasses]stats.Histogram // queue-wait ms per class

	baseCtx    context.Context
	baseCancel context.CancelFunc
	poolDone   chan struct{}
}

// New starts a fair-dispatch queue holding at most capacity queued jobs,
// executed by exactly workers goroutines. Both are clamped to ≥1.
func New(capacity, workers int) *Queue {
	return newQueue(capacity, workers, false)
}

// NewFIFO starts a queue identical to New's except that dispatch is the
// pre-scheduler global FIFO: one lane, priorities ignored. It exists so the
// load generator can measure the fair scheduler against its baseline.
func NewFIFO(capacity, workers int) *Queue {
	return newQueue(capacity, workers, true)
}

func newQueue(capacity, workers int, fifo bool) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	if workers < 1 {
		workers = 1
	}
	q := &Queue{
		jobs:     map[string]*job{},
		groups:   map[string][]*job{},
		sched:    sched{fifo: fifo},
		capacity: capacity,
		change:   make(chan struct{}),
		changeG:  map[string]chan struct{}{},
		dispatch: make(chan struct{}),
		poolDone: make(chan struct{}),
	}
	q.baseCtx, q.baseCancel = context.WithCancel(context.Background())
	go func() {
		defer close(q.poolDone)
		// The pool is a parallel.ForEach with one long-lived loop per worker
		// slot, running under the queue's base context so a forced Drain
		// cancels workers through the same plumbing that cancels the jobs.
		// Task panics are captured per job inside run, so the fan-out itself
		// never errors and a bad job cannot kill the pool.
		_ = parallel.ForEach(q.baseCtx, workers, workers, func(ctx context.Context, _ int) error {
			q.workerLoop(ctx)
			return nil
		})
		// If cancellation raced the pool's startup, ForEach may have exited
		// before any worker ran its loop; sweep whatever is left so every
		// accepted job still reaches a terminal state.
		q.sweepRemaining()
	}()
	return q
}

// workerLoop pops and runs scheduled jobs until the queue is closed and
// empty, or the base context forces a drain.
func (q *Queue) workerLoop(ctx context.Context) {
	for {
		q.mu.Lock()
		if j := q.sched.pop(); j != nil {
			q.mu.Unlock()
			q.run(j)
			continue
		}
		if q.closed {
			q.mu.Unlock()
			return
		}
		// Grab the dispatch channel before unlocking: a push (or Close)
		// between the failed pop and the wait closes exactly this channel,
		// so no wakeup is lost.
		wait := q.dispatch
		q.mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			// Forced drain: every queued job's context is a child of the
			// canceled base context, so run marks it canceled without
			// invoking the task.
			q.sweepRemaining()
			return
		}
	}
}

// sweepRemaining drains the scheduler, running (and, post-force, canceling)
// every job still queued.
func (q *Queue) sweepRemaining() {
	for {
		q.mu.Lock()
		j := q.sched.pop()
		q.mu.Unlock()
		if j == nil {
			return
		}
		q.run(j)
	}
}

// Submit enqueues a task on the anonymous interactive lane and returns its
// job id. It never blocks: a full buffer returns ErrFull, a closed queue
// ErrClosed.
func (q *Queue) Submit(task Task) (string, error) {
	return q.SubmitWith(task, SubmitOptions{})
}

// SubmitTimeout is Submit with a per-job deadline, counted from the moment
// a worker starts the job (queue wait doesn't burn the budget). When the
// deadline expires, the task's context is canceled; the job finishes
// StatusFailed with context.DeadlineExceeded, distinct from an explicit
// Cancel's StatusCanceled. A timeout of 0 means no deadline.
func (q *Queue) SubmitTimeout(task Task, timeout time.Duration) (string, error) {
	return q.SubmitWith(task, SubmitOptions{Timeout: timeout})
}

// SubmitGroup is SubmitTimeout for a job tagged with a group name: every
// non-terminal job of a group can be canceled in one call with CancelGroup
// (the daemon uses one group per sweep, which is why a grouped submission
// defaults to ClassSweep). An empty group means ungrouped and interactive.
func (q *Queue) SubmitGroup(group string, task Task, timeout time.Duration) (string, error) {
	class := ClassInteractive
	if group != "" {
		class = ClassSweep
	}
	return q.SubmitWith(task, SubmitOptions{Group: group, Class: class, Timeout: timeout})
}

// SubmitWith enqueues a task under explicit scheduling options. It never
// blocks: a full buffer returns ErrFull, a closed queue ErrClosed.
func (q *Queue) SubmitWith(task Task, o SubmitOptions) (string, error) {
	if o.Class < 0 || int(o.Class) >= numClasses {
		return "", fmt.Errorf("jobqueue: unknown class %d", o.Class)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return "", ErrClosed
	}
	if q.sched.queued >= q.capacity {
		return "", ErrFull
	}
	q.nextID++
	id := fmt.Sprintf("job-%d", q.nextID)
	ctx, cancel := context.WithCancel(q.baseCtx)
	submitter := o.Submitter
	if submitter == "" && o.Origin != "" {
		submitter = "peer/" + o.Origin
	}
	j := &job{
		id: id, group: o.Group, origin: o.Origin,
		schedKey: schedKey(submitter, o.Group),
		class:    o.Class, task: task, ctx: ctx, cancel: cancel,
		timeout: o.Timeout, status: StatusQueued, created: time.Now(),
	}
	q.jobs[id] = j
	if o.Group != "" {
		q.groups[o.Group] = append(q.groups[o.Group], j)
	}
	q.counts.Submitted++
	q.sched.push(j)
	q.bumpDispatchLocked()
	return id, nil
}

// run executes one job on a pool worker, moving it through exactly one
// terminal transition.
func (q *Queue) run(j *job) {
	q.mu.Lock()
	if j.status != StatusQueued {
		// Canceled while queued; already terminal.
		q.mu.Unlock()
		return
	}
	if j.ctx.Err() != nil {
		q.finishLocked(j, StatusCanceled, nil, j.ctx.Err().Error())
		q.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	q.waitHist[j.class].Add(float64(j.started.Sub(j.created).Nanoseconds()) / 1e6)
	q.inflight++
	q.bumpLocked(j)
	if j.timeout > 0 {
		// The deadline clock starts here, not at Submit, so a job that sat
		// in the buffer still gets its full budget. Replacing j.ctx under mu
		// keeps Cancel's j.cancel() effective: it cancels the parent.
		var cancelTimeout context.CancelFunc
		j.ctx, cancelTimeout = context.WithTimeout(j.ctx, j.timeout)
		defer cancelTimeout()
	}
	q.mu.Unlock()

	res, err := runTask(j)

	q.mu.Lock()
	q.inflight--
	switch {
	case err == nil:
		q.finishLocked(j, StatusDone, res, "")
	case errors.Is(err, context.Canceled):
		q.finishLocked(j, StatusCanceled, nil, err.Error())
	default:
		q.finishLocked(j, StatusFailed, nil, err.Error())
	}
	q.mu.Unlock()
	j.cancel()
}

// finishLocked records a job's single terminal transition (mu held).
func (q *Queue) finishLocked(j *job, s Status, res any, errMsg string) {
	j.status = s
	j.result = res
	j.err = errMsg
	j.finished = time.Now()
	switch s {
	case StatusDone:
		q.counts.Done++
	case StatusFailed:
		q.counts.Failed++
	case StatusCanceled:
		q.counts.Canceled++
	}
	q.bumpLocked(j)
}

// bumpLocked wakes everyone blocked on Changed, plus — when the job is
// grouped — everyone blocked on its group's ChangedGroup channel (mu held).
// Ungrouped transitions never touch a group channel: that isolation is the
// fix for the thundering-herd wakeups the global broadcast caused.
func (q *Queue) bumpLocked(j *job) {
	close(q.change)
	q.change = make(chan struct{})
	if j.group != "" {
		if ch, ok := q.changeG[j.group]; ok {
			close(ch)
			q.changeG[j.group] = make(chan struct{})
		}
	}
}

// bumpDispatchLocked wakes idle workers after a push or Close (mu held).
func (q *Queue) bumpDispatchLocked() {
	close(q.dispatch)
	q.dispatch = make(chan struct{})
}

// Changed returns a channel that is closed at the next job status
// transition (queued→running or any terminal move), across all groups. Grab
// the channel, read whatever state is of interest, then wait on it: the
// close-and-replace discipline means no transition between the grab and the
// wait is lost.
func (q *Queue) Changed() <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.change
}

// ChangedGroup is Changed scoped to one group: the returned channel is
// closed at the next status transition of a job submitted under that group,
// and only then — transitions elsewhere in the queue do not touch it. A
// sweep long-poller waiting on its own group is therefore never woken (and
// never rescans its point list) because an unrelated job finished.
func (q *Queue) ChangedGroup(group string) <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	ch, ok := q.changeG[group]
	if !ok {
		ch = make(chan struct{})
		q.changeG[group] = ch
	}
	return ch
}

// runTask invokes the task, converting a panic into an error so one bad
// job cannot take down the daemon's worker pool.
func runTask(j *job) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobqueue: job %s panicked: %v\n%s", j.id, r, debug.Stack())
		}
	}()
	return j.task(j.ctx)
}

// Get returns a snapshot of the job's current state.
func (q *Queue) Get(id string) (Snapshot, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return Snapshot{
		ID: j.id, Status: j.status, Error: j.err,
		Created: j.created, Started: j.started, Finished: j.finished,
		Group: j.group, Class: j.class, Origin: j.origin,
		Result: j.result,
	}, true
}

// Cancel cancels a job: a queued job becomes terminal immediately (and
// leaves its dispatch lane), a running job has its context canceled (tasks
// that honor it will stop). It reports whether the job exists and was not
// already terminal.
func (q *Queue) Cancel(id string) bool {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || j.status.Terminal() {
		q.mu.Unlock()
		return false
	}
	if j.status == StatusQueued {
		q.sched.remove(j)
		q.finishLocked(j, StatusCanceled, nil, "canceled before start")
	}
	q.mu.Unlock()
	j.cancel()
	return true
}

// CancelGroup cancels every non-terminal job submitted under group, exactly
// as per-job Cancel would: queued jobs become terminal immediately, running
// jobs have their contexts canceled. It returns how many jobs it canceled.
func (q *Queue) CancelGroup(group string) int {
	if group == "" {
		return 0
	}
	q.mu.Lock()
	var hit []*job
	for _, j := range q.groups[group] {
		if j.status.Terminal() {
			continue
		}
		if j.status == StatusQueued {
			q.sched.remove(j)
			q.finishLocked(j, StatusCanceled, nil, "canceled before start")
		}
		hit = append(hit, j)
	}
	q.mu.Unlock()
	for _, j := range hit {
		j.cancel()
	}
	return len(hit)
}

// Depth returns the number of jobs waiting to be dispatched.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sched.queued
}

// ClassDepth returns how many queued jobs class c holds. A FIFO queue files
// everything under ClassInteractive.
func (q *Queue) ClassDepth(c Class) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sched.classDepth(c)
}

// OldestQueuedAge returns how long class c's oldest queued job has been
// waiting, and whether the class has any queued job at all. It is the
// starvation gauge: under a sustained higher-priority flood this age keeps
// growing only if the weighted scheduler stops serving the class — which the
// credit rounds make impossible.
func (q *Queue) OldestQueuedAge(c Class) (time.Duration, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.sched.oldestCreated(c)
	if !ok {
		return 0, false
	}
	return time.Since(t), true
}

// QueueWait returns a copy of class c's time-in-queue histogram
// (milliseconds from submission to dispatch).
func (q *Queue) QueueWait(c Class) stats.Histogram {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waitHist[c]
}

// InFlight returns the number of jobs currently executing.
func (q *Queue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inflight
}

// Stats returns the cumulative submission/outcome counters.
func (q *Queue) Stats() Counts {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.counts
}

// Close stops accepting submissions. Already-queued and running jobs keep
// going; use Drain to wait for them.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		// Wake idle workers so they observe closed-and-empty and exit.
		q.bumpDispatchLocked()
	}
}

// Drain closes the queue and blocks until every accepted job has reached a
// terminal state. If ctx expires first, all remaining job contexts are
// canceled (queued jobs become StatusCanceled without running; running
// tasks see cancellation) and Drain still waits for the workers to finish
// before returning ctx's error.
func (q *Queue) Drain(ctx context.Context) error {
	q.Close()
	select {
	case <-q.poolDone:
		return nil
	case <-ctx.Done():
		q.baseCancel()
		<-q.poolDone
		return ctx.Err()
	}
}
