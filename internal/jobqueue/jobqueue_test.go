package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, q *Queue, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if s.Status.Terminal() {
			return s
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Snapshot{}
}

func TestSubmitRunGet(t *testing.T) {
	q := New(8, 2)
	defer q.Drain(context.Background())
	id, err := q.Submit(func(context.Context) (any, error) { return 42, nil })
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, q, id)
	if s.Status != StatusDone || s.Result != 42 {
		t.Fatalf("snapshot %+v, want done/42", s)
	}
	if _, ok := q.Get("job-999"); ok {
		t.Error("Get of unknown id succeeded")
	}
}

func TestFailedJobCarriesError(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())
	id, _ := q.Submit(func(context.Context) (any, error) { return nil, errors.New("boom") })
	s := waitTerminal(t, q, id)
	if s.Status != StatusFailed || s.Error != "boom" {
		t.Fatalf("snapshot %+v, want failed/boom", s)
	}
}

func TestPanicBecomesFailure(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())
	id, _ := q.Submit(func(context.Context) (any, error) { panic("kaboom") })
	s := waitTerminal(t, q, id)
	if s.Status != StatusFailed {
		t.Fatalf("status %s, want failed", s.Status)
	}
	// The pool must survive a panicking job.
	id2, err := q.Submit(func(context.Context) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, q, id2); s.Status != StatusDone {
		t.Fatalf("post-panic job status %s, want done", s.Status)
	}
}

func TestBoundedQueueRejectsWhenFull(t *testing.T) {
	q := New(1, 1)
	gate := make(chan struct{})
	blocker := func(context.Context) (any, error) { <-gate; return nil, nil }

	first, err := q.Submit(blocker) // picked up by the single worker
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker holds the first job so the buffer is empty.
	for i := 0; ; i++ {
		if s, _ := q.Get(first); s.Status == StatusRunning {
			break
		}
		if i > 5000 {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := q.Submit(blocker); err != nil { // fills the buffer
		t.Fatal(err)
	}
	if _, err := q.Submit(blocker); !errors.Is(err, ErrFull) {
		t.Fatalf("third submit: err = %v, want ErrFull", err)
	}
	close(gate)
	q.Drain(context.Background())
}

func TestSubmitAfterCloseReturnsErrClosed(t *testing.T) {
	q := New(4, 1)
	q.Close()
	if _, err := q.Submit(func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	q.Drain(context.Background())
}

func TestCancelQueuedJob(t *testing.T) {
	q := New(4, 1)
	gate := make(chan struct{})
	q.Submit(func(context.Context) (any, error) { <-gate; return nil, nil })
	var ran atomic.Bool
	id, _ := q.Submit(func(context.Context) (any, error) { ran.Store(true); return nil, nil })
	if !q.Cancel(id) {
		t.Fatal("Cancel returned false for a queued job")
	}
	close(gate)
	s := waitTerminal(t, q, id)
	if s.Status != StatusCanceled {
		t.Fatalf("status %s, want canceled", s.Status)
	}
	q.Drain(context.Background())
	if ran.Load() {
		t.Error("canceled queued job still executed")
	}
	if q.Cancel(id) {
		t.Error("Cancel of a terminal job returned true")
	}
}

// TestDrainUnderLoad is the shutdown-drain race test: many concurrent
// submitters racing a graceful Drain must leave every accepted job in
// exactly one terminal state with its result intact — nothing lost, nothing
// double-reported. Run under -race this also exercises the status
// transitions against concurrent Get polling.
func TestDrainUnderLoad(t *testing.T) {
	q := New(64, 4)
	var executed atomic.Int64
	runs := map[string]*atomic.Int64{} // per-job execution count
	var mu sync.Mutex

	var accepted []string
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				n := &atomic.Int64{}
				id, err := q.Submit(func(context.Context) (any, error) {
					n.Add(1)
					executed.Add(1)
					time.Sleep(time.Duration(i%3) * time.Millisecond)
					return fmt.Sprintf("g%d-i%d", g, i), nil
				})
				if err != nil {
					continue // full/closed: rejected at the door, never tracked
				}
				mu.Lock()
				runs[id] = n
				accepted = append(accepted, id)
				mu.Unlock()
			}
		}(g)
	}

	// Concurrent status polling while the drain races the submitters.
	stopPoll := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopPoll:
				return
			default:
				mu.Lock()
				for _, id := range accepted {
					q.Get(id)
				}
				mu.Unlock()
				q.Depth()
				q.InFlight()
			}
		}
	}()

	time.Sleep(5 * time.Millisecond)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	close(stopPoll)

	mu.Lock()
	defer mu.Unlock()
	var done int64
	for _, id := range accepted {
		s, ok := q.Get(id)
		if !ok {
			t.Fatalf("accepted job %s lost", id)
		}
		if !s.Status.Terminal() {
			t.Fatalf("job %s not terminal after Drain: %s", id, s.Status)
		}
		if s.Status == StatusDone {
			done++
			if s.Result == nil {
				t.Fatalf("done job %s has nil result", id)
			}
		}
		if n := runs[id].Load(); n > 1 {
			t.Fatalf("job %s executed %d times", id, n)
		}
	}
	if executed.Load() != done {
		t.Errorf("executed %d tasks but %d reported done", executed.Load(), done)
	}
	c := q.Stats()
	if got := c.Done + c.Failed + c.Canceled; got != c.Submitted {
		t.Errorf("terminal outcomes %d != submitted %d", got, c.Submitted)
	}
	if int(c.Submitted) != len(accepted) {
		t.Errorf("Stats.Submitted = %d, accepted %d", c.Submitted, len(accepted))
	}
}

// TestForcedDrainCancelsQueuedJobs: when the drain context expires, queued
// jobs are canceled without running and running jobs' contexts fire.
func TestForcedDrainCancelsQueuedJobs(t *testing.T) {
	q := New(16, 1)
	release := make(chan struct{})
	var canceledSeen atomic.Bool
	first, _ := q.Submit(func(ctx context.Context) (any, error) {
		<-release
		if ctx.Err() != nil {
			canceledSeen.Store(true)
			return nil, ctx.Err()
		}
		return nil, nil
	})
	var queued []string
	for i := 0; i < 5; i++ {
		id, err := q.Submit(func(context.Context) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, id)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- q.Drain(ctx) }()
	// Let the drain deadline expire while the first job blocks, then
	// release it so the pool can exit.
	time.Sleep(30 * time.Millisecond)
	close(release)
	if err := <-drained; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain err = %v, want deadline exceeded", err)
	}

	if s, _ := q.Get(first); s.Status != StatusCanceled {
		t.Errorf("running job status %s, want canceled (ctx fired mid-run)", s.Status)
	}
	if !canceledSeen.Load() {
		t.Error("running job never observed its context cancellation")
	}
	for _, id := range queued {
		s, _ := q.Get(id)
		if s.Status != StatusCanceled {
			t.Errorf("queued job %s status %s, want canceled", id, s.Status)
		}
	}
}

// TestSubmitTimeoutExpires: a job whose deadline fires mid-run sees its
// context canceled with DeadlineExceeded and finishes StatusFailed —
// distinct from an explicit cancel's StatusCanceled.
func TestSubmitTimeoutExpires(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())
	id, err := q.SubmitTimeout(func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s := waitTerminal(t, q, id)
	if s.Status != StatusFailed {
		t.Fatalf("status = %s, want failed (deadline)", s.Status)
	}
	if s.Error != context.DeadlineExceeded.Error() {
		t.Fatalf("error = %q, want %q", s.Error, context.DeadlineExceeded)
	}
}

// TestSubmitTimeoutClockStartsAtRun: the deadline budget starts when a
// worker picks the job up, so time spent queued behind other work does not
// expire it.
func TestSubmitTimeoutClockStartsAtRun(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())
	release := make(chan struct{})
	q.Submit(func(context.Context) (any, error) { <-release; return nil, nil })
	// Queued behind the blocker for longer than its own deadline.
	id, _ := q.SubmitTimeout(func(ctx context.Context) (any, error) {
		return "ran", ctx.Err()
	}, 30*time.Millisecond)
	time.Sleep(60 * time.Millisecond)
	close(release)
	s := waitTerminal(t, q, id)
	if s.Status != StatusDone || s.Result != "ran" {
		t.Fatalf("snapshot %+v, want done/ran (queue wait must not burn the deadline)", s)
	}
}

// TestCancelGroup: canceling a group takes down its running and queued
// members in one call, leaves ungrouped work alone, and is idempotent.
func TestCancelGroup(t *testing.T) {
	q := New(8, 1)
	defer q.Drain(context.Background())
	started := make(chan struct{})
	running, err := q.SubmitGroup("sweep-1", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker now holds the running member
	var ran atomic.Bool
	queued, err := q.SubmitGroup("sweep-1", func(context.Context) (any, error) { ran.Store(true); return nil, nil }, 0)
	if err != nil {
		t.Fatal(err)
	}
	other, err := q.Submit(func(context.Context) (any, error) { return "bystander", nil })
	if err != nil {
		t.Fatal(err)
	}

	if n := q.CancelGroup("sweep-1"); n != 2 {
		t.Fatalf("CancelGroup = %d, want 2", n)
	}
	if s := waitTerminal(t, q, running); s.Status != StatusCanceled {
		t.Errorf("running member status %s, want canceled", s.Status)
	}
	if s := waitTerminal(t, q, queued); s.Status != StatusCanceled {
		t.Errorf("queued member status %s, want canceled", s.Status)
	}
	if ran.Load() {
		t.Error("canceled queued member still executed")
	}
	if s := waitTerminal(t, q, other); s.Status != StatusDone || s.Result != "bystander" {
		t.Errorf("ungrouped job %+v, want done/bystander", s)
	}
	if n := q.CancelGroup("sweep-1"); n != 0 {
		t.Errorf("second CancelGroup = %d, want 0 (all members terminal)", n)
	}
	if n := q.CancelGroup(""); n != 0 {
		t.Errorf(`CancelGroup("") = %d, want 0`, n)
	}
	if n := q.CancelGroup("no-such-group"); n != 0 {
		t.Errorf("CancelGroup(unknown) = %d, want 0", n)
	}
}

// TestForcedDrainReleasesBlockedPool is the regression test for the pool
// wiring bug: the worker pool used to run under context.Background(), so a
// task blocked on anything but its own job context could hold a pool
// goroutine past a forced Drain forever. With the pool on the queue's base
// context, Drain's force cancels the job context the task is blocked on and
// the pool exits.
func TestForcedDrainReleasesBlockedPool(t *testing.T) {
	q := New(4, 2)
	id, err := q.Submit(func(ctx context.Context) (any, error) {
		<-ctx.Done() // only cancellation can release this task
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to hold the job so the force hits a running task.
	for i := 0; ; i++ {
		if s, _ := q.Get(id); s.Status == StatusRunning {
			break
		}
		if i > 5000 {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired from the start: Drain must force immediately
	done := make(chan error, 1)
	go func() { done <- q.Drain(ctx) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Drain err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned: pool goroutine leaked behind a blocked task")
	}
	if s, _ := q.Get(id); s.Status != StatusCanceled {
		t.Errorf("blocked job status %s, want canceled", s.Status)
	}
}

// TestChangedSignalsTransitions pins the close-and-replace discipline: a
// channel grabbed before a transition is closed by it, and a channel grabbed
// after the last transition stays open.
func TestChangedSignalsTransitions(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())
	ch := q.Changed()
	id, err := q.Submit(func(context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("Changed channel never closed after a job transition")
	}
	waitTerminal(t, q, id)
	select {
	case <-q.Changed():
		t.Fatal("Changed channel grabbed after the last transition is already closed")
	default:
	}
}

// TestCancelBeatsTimeout: an explicit cancel of a deadline-carrying job
// still reports StatusCanceled.
func TestCancelBeatsTimeout(t *testing.T) {
	q := New(4, 1)
	defer q.Drain(context.Background())
	started := make(chan struct{})
	id, _ := q.SubmitTimeout(func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}, time.Hour)
	<-started
	if !q.Cancel(id) {
		t.Fatal("Cancel returned false for a running job")
	}
	s := waitTerminal(t, q, id)
	if s.Status != StatusCanceled {
		t.Fatalf("status = %s, want canceled", s.Status)
	}
}
