package jobqueue

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// mkJob builds a minimal queued job for white-box scheduler tests.
func mkJob(id string, c Class, submitter, group string, created time.Time) *job {
	return &job{
		id: id, group: group, schedKey: schedKey(submitter, group),
		class: c, status: StatusQueued, created: created,
	}
}

// TestSchedClassWeights pins the deficit round-robin drain ratio: with all
// three classes backlogged, each credit round serves 8 interactive, 2 sweep
// and 1 batch job — weighted sharing, not strict priority.
func TestSchedClassWeights(t *testing.T) {
	var s sched
	now := time.Now()
	for i := 0; i < 33; i++ {
		s.push(mkJob(fmt.Sprintf("i%d", i), ClassInteractive, "", "", now))
		s.push(mkJob(fmt.Sprintf("s%d", i), ClassSweep, "", "g", now))
		s.push(mkJob(fmt.Sprintf("b%d", i), ClassBatch, "", "", now))
	}
	counts := map[Class]int{}
	for n := 0; n < 11; n++ { // exactly one credit round
		j := s.pop()
		counts[j.class]++
	}
	if counts[ClassInteractive] != 8 || counts[ClassSweep] != 2 || counts[ClassBatch] != 1 {
		t.Fatalf("one credit round served %v, want interactive:8 sweep:2 batch:1", counts)
	}
	// A second round repeats the ratio — credits refill.
	for n := 0; n < 11; n++ {
		counts[s.pop().class]++
	}
	if counts[ClassInteractive] != 16 || counts[ClassSweep] != 4 || counts[ClassBatch] != 2 {
		t.Fatalf("two credit rounds served %v", counts)
	}
}

// TestSchedGroupRoundRobinFIFOWithin: lanes of one class drain round-robin
// one job per turn, and each lane keeps submission order.
func TestSchedGroupRoundRobinFIFOWithin(t *testing.T) {
	var s sched
	now := time.Now()
	for i := 0; i < 3; i++ {
		s.push(mkJob(fmt.Sprintf("a%d", i), ClassSweep, "", "A", now))
	}
	for i := 0; i < 3; i++ {
		s.push(mkJob(fmt.Sprintf("b%d", i), ClassSweep, "", "B", now))
	}
	var order []string
	for j := s.pop(); j != nil; j = s.pop() {
		order = append(order, j.id)
	}
	want := []string{"a0", "b0", "a1", "b1", "a2", "b2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("pop order %v, want %v", order, want)
	}
}

// TestSchedSubmitterLanes: the same group name under two submitters is two
// lanes — one tenant's backlog does not serialize another's.
func TestSchedSubmitterLanes(t *testing.T) {
	var s sched
	now := time.Now()
	for i := 0; i < 2; i++ {
		s.push(mkJob(fmt.Sprintf("x%d", i), ClassInteractive, "alice", "", now))
	}
	s.push(mkJob("y0", ClassInteractive, "bob", "", now))
	var order []string
	for j := s.pop(); j != nil; j = s.pop() {
		order = append(order, j.id)
	}
	if fmt.Sprint(order) != fmt.Sprint([]string{"x0", "y0", "x1"}) {
		t.Fatalf("pop order %v, want bob interleaved between alice's jobs", order)
	}
}

// TestSchedFIFOModeIgnoresClassAndGroup: NewFIFO's scheduler is one global
// lane in submission order, whatever the tags say.
func TestSchedFIFOModeIgnoresClassAndGroup(t *testing.T) {
	s := sched{fifo: true}
	now := time.Now()
	s.push(mkJob("1", ClassBatch, "a", "G", now))
	s.push(mkJob("2", ClassInteractive, "b", "", now))
	s.push(mkJob("3", ClassSweep, "c", "H", now))
	var order []string
	for j := s.pop(); j != nil; j = s.pop() {
		order = append(order, j.id)
	}
	if fmt.Sprint(order) != fmt.Sprint([]string{"1", "2", "3"}) {
		t.Fatalf("fifo pop order %v, want submission order", order)
	}
}

// TestSchedRemove: removing queued jobs (the cancellation path) keeps
// depths, ring membership and oldest-age bookkeeping consistent.
func TestSchedRemove(t *testing.T) {
	var s sched
	t0 := time.Now()
	j1 := mkJob("1", ClassSweep, "", "A", t0)
	j2 := mkJob("2", ClassSweep, "", "A", t0.Add(time.Second))
	j3 := mkJob("3", ClassSweep, "", "B", t0.Add(2*time.Second))
	s.push(j1)
	s.push(j2)
	s.push(j3)
	if !s.remove(j1) {
		t.Fatal("remove(j1) = false")
	}
	if s.remove(j1) {
		t.Fatal("second remove(j1) = true")
	}
	if got := s.classDepth(ClassSweep); got != 2 {
		t.Fatalf("classDepth = %d, want 2", got)
	}
	if oldest, ok := s.oldestCreated(ClassSweep); !ok || !oldest.Equal(j2.created) {
		t.Fatalf("oldestCreated = %v/%v, want j2's time", oldest, ok)
	}
	if !s.remove(j2) || !s.remove(j3) {
		t.Fatal("removing remaining jobs failed")
	}
	if s.queued != 0 || s.pop() != nil {
		t.Fatalf("scheduler not empty after removals: queued=%d", s.queued)
	}
	if _, ok := s.oldestCreated(ClassSweep); ok {
		t.Fatal("oldestCreated reports a job in an empty class")
	}
}

// TestChangedGroupIsolation is the thundering-herd regression test: a
// status bump in group A must close A's channel and must NOT wake a waiter
// holding group B's channel.
func TestChangedGroupIsolation(t *testing.T) {
	q := New(8, 1)
	defer q.Drain(context.Background())
	chB := q.ChangedGroup("B")
	chA := q.ChangedGroup("A")

	id, err := q.SubmitGroup("A", func(context.Context) (any, error) { return nil, nil }, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, id)
	select {
	case <-chA:
	case <-time.After(5 * time.Second):
		t.Fatal("group A channel never closed after its job's transitions")
	}
	select {
	case <-chB:
		t.Fatal("group B waiter woken by a transition in group A")
	default:
	}

	// Ungrouped transitions touch no group channel either.
	chB = q.ChangedGroup("B")
	id, err = q.Submit(func(context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, q, id)
	select {
	case <-chB:
		t.Fatal("group B waiter woken by an ungrouped job")
	default:
	}
}

// TestBatchSurvivesInteractiveFlood is the starvation regression test: one
// low-priority batch job queued behind a continuously replenished stream of
// interactive jobs still completes promptly — the credit rounds guarantee
// the batch class a share of every 11 dispatches.
func TestBatchSurvivesInteractiveFlood(t *testing.T) {
	q := New(256, 1)
	gate := make(chan struct{})
	if _, err := q.Submit(func(context.Context) (any, error) { <-gate; return nil, nil }); err != nil {
		t.Fatal(err)
	}
	batchID, err := q.SubmitWith(func(context.Context) (any, error) { return "batch", nil },
		SubmitOptions{Class: ClassBatch})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-load a big interactive backlog and keep topping it up while the
	// batch job waits.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var interactiveDone atomic.Int64
	feed := func() (string, error) {
		return q.Submit(func(context.Context) (any, error) {
			interactiveDone.Add(1)
			return nil, nil
		})
	}
	for i := 0; i < 64; i++ {
		if _, err := feed(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				feed() // ErrFull is fine: the backlog is already deep
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	close(gate)
	s := waitTerminal(t, q, batchID)
	close(stop)
	wg.Wait()
	if s.Status != StatusDone || s.Result != "batch" {
		t.Fatalf("batch job %+v, want done under interactive flood", s)
	}
	if interactiveDone.Load() == 0 {
		t.Fatal("test never actually ran interactive jobs alongside the batch job")
	}
	q.Drain(context.Background())
}

// TestQueueClassStats: per-class depth, queue-wait histogram and the
// starvation gauge reflect the scheduler's state.
func TestQueueClassStats(t *testing.T) {
	q := New(16, 1)
	defer q.Drain(context.Background())
	gate := make(chan struct{})
	first, _ := q.Submit(func(context.Context) (any, error) { <-gate; return nil, nil })
	for i := 0; ; i++ {
		if s, _ := q.Get(first); s.Status == StatusRunning {
			break
		}
		if i > 5000 {
			t.Fatal("gate job never started")
		}
		time.Sleep(time.Millisecond)
	}
	id, err := q.SubmitWith(func(context.Context) (any, error) { return nil, nil },
		SubmitOptions{Class: ClassBatch, Submitter: "bench"})
	if err != nil {
		t.Fatal(err)
	}
	if d := q.ClassDepth(ClassBatch); d != 1 {
		t.Fatalf("ClassDepth(batch) = %d, want 1", d)
	}
	if _, ok := q.OldestQueuedAge(ClassBatch); !ok {
		t.Fatal("OldestQueuedAge(batch) reports empty with a job queued")
	}
	if _, ok := q.OldestQueuedAge(ClassSweep); ok {
		t.Fatal("OldestQueuedAge(sweep) reports a job in an empty class")
	}
	close(gate)
	waitTerminal(t, q, id)
	if d := q.ClassDepth(ClassBatch); d != 0 {
		t.Fatalf("ClassDepth(batch) after drain = %d, want 0", d)
	}
	if h := q.QueueWait(ClassBatch); h.N != 1 {
		t.Fatalf("QueueWait(batch).N = %d, want 1", h.N)
	}
	snap, _ := q.Get(id)
	if snap.Class != ClassBatch {
		t.Fatalf("snapshot class %v, want batch", snap.Class)
	}
}
