package jobqueue

import (
	"context"
	"testing"
	"time"
)

// A forwarded submission records its origin and, absent an explicit
// submitter, is filed under the peer's own fairness lane rather than the
// anonymous one.
func TestOriginLaneAndSnapshot(t *testing.T) {
	q := New(8, 1)
	defer q.Drain(context.Background())

	id, err := q.SubmitWith(func(ctx context.Context) (any, error) { return nil, nil },
		SubmitOptions{Origin: "node-b"})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := q.Get(id)
	if !ok || snap.Origin != "node-b" {
		t.Fatalf("snapshot = %+v, want Origin node-b", snap)
	}

	// White-box: the lane key must be the peer lane, not the anonymous one,
	// and an explicit submitter must win over the origin.
	q.mu.Lock()
	peerKey := q.jobs[id].schedKey
	q.mu.Unlock()
	if want := schedKey("peer/node-b", ""); peerKey != want {
		t.Fatalf("schedKey = %q, want %q", peerKey, want)
	}
	id2, err := q.SubmitWith(func(ctx context.Context) (any, error) { return nil, nil },
		SubmitOptions{Origin: "node-b", Submitter: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	q.mu.Lock()
	aliceKey := q.jobs[id2].schedKey
	q.mu.Unlock()
	if want := schedKey("alice", ""); aliceKey != want {
		t.Fatalf("schedKey with explicit submitter = %q, want %q", aliceKey, want)
	}

	deadline := time.After(5 * time.Second)
	for {
		s1, _ := q.Get(id)
		s2, _ := q.Get(id2)
		if s1.Status.Terminal() && s2.Status.Terminal() {
			break
		}
		select {
		case <-deadline:
			t.Fatal("jobs did not finish")
		case <-time.After(5 * time.Millisecond):
		}
	}
}
