package jobqueue

import "time"

// Class is a job's priority class. Dispatch across classes is
// weight-proportional, not strict: interactive work is served roughly
// classWeights[ClassInteractive] times as often as batch work when both are
// backlogged, but every class with pending jobs makes progress each credit
// round — a sustained interactive flood cannot starve a queued batch job.
type Class int

// The three priority classes, highest-weight first. The daemon maps single
// experiment submissions to ClassInteractive and sweep points to ClassSweep
// by default; ClassBatch is the explicit bulk tier.
const (
	ClassInteractive Class = iota
	ClassSweep
	ClassBatch
	numClasses int = iota
)

// classWeights is each class's dispatch credit per round-robin refill round:
// with full backlogs the drain ratio is 8:2:1.
var classWeights = [numClasses]int{8, 2, 1}

// String returns the class name used on the wire and in metrics labels.
func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassSweep:
		return "sweep"
	case ClassBatch:
		return "batch"
	default:
		return "unknown"
	}
}

// Classes lists every class in dispatch-priority order, for metrics ranges.
func Classes() []Class {
	return []Class{ClassInteractive, ClassSweep, ClassBatch}
}

// sched is the fair dispatch structure behind Queue: per-(submitter, group)
// FIFO queues, round-robin across the queues of one class, deficit-weighted
// round-robin across classes. All methods require Queue.mu.
//
// In fifo mode every job lands in one implicit queue and dispatch degrades
// to the pre-scheduler global FIFO — the load generator's A/B baseline.
type sched struct {
	fifo    bool
	queued  int
	classes [numClasses]classQueue
}

// classQueue holds one priority class's group ring. ring is the round-robin
// order of non-empty groups; next is the cursor of the group served next.
type classQueue struct {
	groups map[string]*groupQueue
	ring   []*groupQueue
	next   int
	credit int
	depth  int
}

// groupQueue is one fairness key's FIFO backlog. head indexes the next job
// so a pop is O(1); the slice is compacted when the dead prefix dominates.
type groupQueue struct {
	key  string
	jobs []*job
	head int
}

func (g *groupQueue) len() int { return len(g.jobs) - g.head }

func (g *groupQueue) push(j *job) { g.jobs = append(g.jobs, j) }

func (g *groupQueue) pop() *job {
	j := g.jobs[g.head]
	g.jobs[g.head] = nil
	g.head++
	if g.head > 64 && g.head*2 >= len(g.jobs) {
		g.jobs = append(g.jobs[:0], g.jobs[g.head:]...)
		g.head = 0
	}
	return j
}

// remove deletes one job from the group's pending window; it reports whether
// the job was found. O(n) in the group's backlog — only cancellation paths
// pay it.
func (g *groupQueue) remove(j *job) bool {
	for i := g.head; i < len(g.jobs); i++ {
		if g.jobs[i] == j {
			g.jobs = append(g.jobs[:i], g.jobs[i+1:]...)
			return true
		}
	}
	return false
}

// schedKey is the fairness identity jobs are queued under: one FIFO lane per
// (submitter, group) pair, so two submitters' interactive jobs interleave
// and two concurrent sweeps drain point-by-point instead of sweep-by-sweep.
func schedKey(submitter, group string) string {
	return submitter + "\x00" + group
}

// push enqueues j under its class and fairness key.
func (s *sched) push(j *job) {
	class, key := j.class, j.schedKey
	if s.fifo {
		class, key = ClassInteractive, ""
	}
	cq := &s.classes[class]
	if cq.groups == nil {
		cq.groups = map[string]*groupQueue{}
	}
	g, ok := cq.groups[key]
	if !ok {
		g = &groupQueue{key: key}
		cq.groups[key] = g
		cq.ring = append(cq.ring, g)
	}
	g.push(j)
	cq.depth++
	s.queued++
}

// pop returns the next job to dispatch, or nil when nothing is queued.
//
// Class selection is deficit-weighted round-robin: classes are scanned in
// priority order and served while they hold credit; when every backlogged
// class is out of credit, all credits refill to the class weights and the
// scan restarts. Within a class, groups are served round-robin, one job per
// turn, FIFO within each group.
func (s *sched) pop() *job {
	if s.queued == 0 {
		return nil
	}
	for {
		for c := range s.classes {
			cq := &s.classes[c]
			if cq.depth == 0 {
				continue
			}
			if cq.credit > 0 {
				cq.credit--
				return s.popClass(cq)
			}
		}
		// Every backlogged class exhausted its credit: start a new round.
		for c := range s.classes {
			s.classes[c].credit = classWeights[c]
		}
	}
}

// popClass serves the cursor group's head job and advances the ring.
func (s *sched) popClass(cq *classQueue) *job {
	if cq.next >= len(cq.ring) {
		cq.next = 0
	}
	g := cq.ring[cq.next]
	j := g.pop()
	if g.len() == 0 {
		cq.ring = append(cq.ring[:cq.next], cq.ring[cq.next+1:]...)
		delete(cq.groups, g.key)
	} else {
		cq.next++
	}
	cq.depth--
	s.queued--
	return j
}

// remove takes a still-queued job out of its lane (cancellation path). It
// reports whether the job was found; a job already handed to a worker is not.
func (s *sched) remove(j *job) bool {
	class, key := j.class, j.schedKey
	if s.fifo {
		class, key = ClassInteractive, ""
	}
	cq := &s.classes[class]
	g, ok := cq.groups[key]
	if !ok || !g.remove(j) {
		return false
	}
	cq.depth--
	s.queued--
	if g.len() == 0 {
		for i, rg := range cq.ring {
			if rg == g {
				cq.ring = append(cq.ring[:i], cq.ring[i+1:]...)
				if cq.next > i {
					cq.next--
				}
				break
			}
		}
		delete(cq.groups, g.key)
	}
	return true
}

// classDepth returns how many jobs class c has queued. In fifo mode the
// scheduler files everything under ClassInteractive, so depths reflect the
// single lane.
func (s *sched) classDepth(c Class) int { return s.classes[c].depth }

// oldestCreated returns the enqueue time of class c's oldest queued job and
// whether the class has any. Group heads are each lane's oldest entry, so
// scanning heads is enough.
func (s *sched) oldestCreated(c Class) (time.Time, bool) {
	var oldest time.Time
	found := false
	for _, g := range s.classes[c].groups {
		if g.len() == 0 {
			continue
		}
		if t := g.jobs[g.head].created; !found || t.Before(oldest) {
			oldest, found = t, true
		}
	}
	return oldest, found
}
