package core

import (
	"math"
	"testing"
)

func testLayout() *PhysicalLayout {
	// 4 channels, R=0.25: one parity row covers 12 data rows.
	return NewPhysicalLayout(4, 8, 128, 64, 64, 0.25)
}

func TestLayoutRowBudget(t *testing.T) {
	l := testLayout()
	if l.DataRows()+l.ParityRows() != 128 {
		t.Fatalf("rows don't add up: %d + %d", l.DataRows(), l.ParityRows())
	}
	// Reserved fraction ≈ R/(N−1) of the data (slightly more in row
	// granularity).
	want := 0.25 / 3
	got := float64(l.ParityRows()) / float64(l.DataRows())
	if math.Abs(got-want)/want > 0.35 {
		t.Fatalf("parity row fraction %.4f, want ≈%.4f", got, want)
	}
}

func TestParityPlacementInvariants(t *testing.T) {
	l := testLayout()
	n := l.Channels
	type key struct {
		line    LineAddr
		subSlot int
	}
	seen := map[key]GroupKey{}
	for c := 0; c < n; c++ {
		for line := 0; line < l.DataRows()*l.SlotsPerRow; line++ {
			g := GroupOf(c, line, n, 3)
			loc := l.ParityLineOf(g)
			if loc.Line.Channel != g.K {
				t.Fatalf("parity of %+v placed in channel %d, want %d", g, loc.Line.Channel, g.K)
			}
			if loc.Line.Bank != g.Bank {
				t.Fatalf("parity of %+v left its bank: %+v", g, loc.Line)
			}
			if loc.Line.Row < l.DataRows() || loc.Line.Row >= l.TotalRows {
				t.Fatalf("parity of %+v outside reserved rows: %+v", g, loc.Line)
			}
			if loc.Line.Slot < 0 || loc.Line.Slot >= l.SlotsPerRow {
				t.Fatalf("bad slot: %+v", loc.Line)
			}
			// Two different groups must never share a physical chunk.
			k := key{loc.Line, loc.SubSlot}
			if prev, ok := seen[k]; ok && prev != g {
				t.Fatalf("groups %+v and %+v collide at %+v", prev, g, k)
			}
			seen[k] = g
		}
	}
}

func TestCorrectionPlacementInSibling(t *testing.T) {
	l := testLayout()
	for _, a := range []LineAddr{
		{Channel: 0, Bank: 0, Row: 0, Slot: 0},
		{Channel: 2, Bank: 5, Row: l.DataRows() - 1, Slot: l.SlotsPerRow - 1},
	} {
		loc := l.CorrectionLineOf(a)
		if loc.Line.Bank != a.Bank^1 {
			t.Fatalf("correction bits of %+v must live in the sibling bank, got %+v", a, loc.Line)
		}
		if loc.Line.Channel != a.Channel {
			t.Fatal("correction bits must stay in the data's channel")
		}
		// Correction bits repurpose the TOP of the sibling's data region
		// (§VI-B's capacity reduction), never the parity rows.
		if loc.Line.Row < l.DataRows()-l.CorrectionRowsPerBank() || loc.Line.Row >= l.DataRows() {
			t.Fatalf("correction bits misplaced: %+v (data rows %d, corr rows %d)",
				loc.Line, l.DataRows(), l.CorrectionRowsPerBank())
		}
	}
}

func TestCapacityLossOnMark(t *testing.T) {
	l := testLayout()
	// ≈ 2·R of the pair's data rows are given up on marking.
	if got := l.CapacityLossOnMark(); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("capacity loss %v, want ≈2R=0.5", got)
	}
}

func TestCorrectionPlacementDistinct(t *testing.T) {
	l := testLayout()
	type key struct {
		line    LineAddr
		subSlot int
	}
	seen := map[key]LineAddr{}
	for row := 0; row < l.DataRows(); row++ {
		for slot := 0; slot < l.SlotsPerRow; slot++ {
			a := LineAddr{Channel: 1, Bank: 2, Row: row, Slot: slot}
			loc := l.CorrectionLineOf(a)
			k := key{loc.Line, loc.SubSlot}
			if prev, ok := seen[k]; ok {
				t.Fatalf("lines %+v and %+v share a correction chunk", prev, a)
			}
			seen[k] = a
		}
	}
}

func TestCorrectionRowBudget(t *testing.T) {
	l := testLayout()
	// 2·R·dataRows rows (plus rounding) host a bank's correction bits.
	want := 2 * 0.25 * float64(l.DataRows())
	got := float64(l.CorrectionRowsPerBank())
	if got < want || got > want+2 {
		t.Fatalf("correction rows %v, want ≈%v", got, want)
	}
}

func TestLayoutPanics(t *testing.T) {
	cases := []func(){
		func() { NewPhysicalLayout(1, 8, 128, 64, 64, 0.25) }, // 1 channel
		func() { NewPhysicalLayout(4, 7, 128, 64, 64, 0.25) }, // odd banks
		func() { NewPhysicalLayout(4, 8, 128, 64, 64, 0) },    // R=0
		func() { NewPhysicalLayout(4, 8, 128, 64, 64, 1.5) },  // R>1
		func() { NewPhysicalLayout(4, 8, 1, 64, 64, 0.25) },   // no room
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d must panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLayoutRAIMGeometry(t *testing.T) {
	// R = 0.5 with 10 channels (the RAIM+Parity row of Table III).
	l := NewPhysicalLayout(10, 8, 256, 64, 64, 0.5)
	// One parity row per (N−1)/R = 18 data rows.
	ratio := float64(l.DataRows()) / float64(l.ParityRows())
	if ratio < 14 || ratio > 18.5 {
		t.Fatalf("data:parity row ratio %.1f, want ≈18", ratio)
	}
	// All groups place in range.
	for line := 0; line < l.DataRows()*l.SlotsPerRow; line++ {
		g := GroupOf(3, line, 10, 0)
		loc := l.ParityLineOf(g)
		if loc.Line.Row >= l.TotalRows {
			t.Fatalf("overflow at line %d: %+v", line, loc)
		}
	}
}
