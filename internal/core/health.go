// Package core implements the paper's contribution: the ECC Parity overlay
// for multi-channel memory systems.
//
// Instead of storing each channel's ECC correction bits in memory, the
// overlay stores only their bitwise XOR ("ECC parity") across groups of N−1
// channels, for fault-free memory. Detection bits stay per-line, so reads
// are unchanged. When a bank pair accumulates enough detected errors, the
// overlay reconstructs the pair's actual correction bits from the parities
// and the peer channels, materializes them in memory (at 2× the parity
// allocation, to cover the correction bits' own ECC), recomputes the
// affected parity lines to exclude the faulty banks, and from then on uses
// the stored correction bits directly.
//
// The package has two halves: a functional System that stores real encoded
// bytes and survives injected device faults end-to-end, and the layout /
// health-table / capacity machinery shared with the performance simulator
// in internal/sim.
package core

import "fmt"

// PairKey identifies one bank pair (the granularity at which the overlay
// tracks whether parities or materialized correction bits protect memory).
type PairKey struct {
	Channel int
	Pair    int // bank index / 2
}

// HealthTable is the on-chip SRAM structure of §III-C/E: a saturating
// 4-bit error counter per bank pair plus the faulty mark. The LLC
// controller consults it in parallel with every request (steps A1/A2 of
// Fig. 6).
type HealthTable struct {
	channels     int
	banksPerChan int
	threshold    uint8
	counters     []uint8
	marked       []bool
	markedCount  int
}

// NewHealthTable builds the table. threshold is the error count at which a
// pair is recorded faulty (the paper uses 4).
func NewHealthTable(channels, banksPerChannel int, threshold uint8) *HealthTable {
	if channels <= 0 || banksPerChannel <= 0 || banksPerChannel%2 != 0 || threshold == 0 {
		panic(fmt.Sprintf("core: invalid health table geometry: %d channels, %d banks, threshold %d",
			channels, banksPerChannel, threshold))
	}
	pairs := channels * banksPerChannel / 2
	return &HealthTable{
		channels:     channels,
		banksPerChan: banksPerChannel,
		threshold:    threshold,
		counters:     make([]uint8, pairs),
		marked:       make([]bool, pairs),
	}
}

func (h *HealthTable) index(channel, bank int) int {
	if channel < 0 || channel >= h.channels || bank < 0 || bank >= h.banksPerChan {
		panic(fmt.Sprintf("core: bank (%d,%d) out of range", channel, bank))
	}
	return channel*(h.banksPerChan/2) + bank/2
}

// Pair returns the pair key for a bank.
func (h *HealthTable) Pair(channel, bank int) PairKey {
	return PairKey{Channel: channel, Pair: bank / 2}
}

// IsMarked reports whether the bank's pair is recorded faulty (step A1/A2).
func (h *HealthTable) IsMarked(channel, bank int) bool {
	return h.marked[h.index(channel, bank)]
}

// RecordError increments the pair's saturating counter and returns true
// exactly when the increment crosses the threshold — the moment the pair
// must transition from ECC parities to stored correction bits.
func (h *HealthTable) RecordError(channel, bank int) bool {
	i := h.index(channel, bank)
	if h.marked[i] {
		return false
	}
	if h.counters[i] < h.threshold {
		h.counters[i]++
	}
	if h.counters[i] >= h.threshold {
		h.marked[i] = true
		h.markedCount++
		return true
	}
	return false
}

// Mark force-marks a pair (used when a device-level fault is diagnosed
// directly, e.g. by the scrubber attributing many errors to one bank).
func (h *HealthTable) Mark(channel, bank int) {
	i := h.index(channel, bank)
	if !h.marked[i] {
		h.marked[i] = true
		h.markedCount++
	}
}

// Counter returns the current error count of the bank's pair.
func (h *HealthTable) Counter(channel, bank int) uint8 {
	return h.counters[h.index(channel, bank)]
}

// MarkedPairs returns how many pairs are recorded faulty.
func (h *HealthTable) MarkedPairs() int { return h.markedCount }

// MarkedFraction returns the fraction of memory protected by materialized
// correction bits (marked pairs over all pairs) — Fig. 8's y-axis.
func (h *HealthTable) MarkedFraction() float64 {
	return float64(h.markedCount) / float64(len(h.marked))
}

// SRAMBytes returns the on-chip budget of the table: half a byte (a 4-bit
// counter) per pair, per §III-E.
func (h *HealthTable) SRAMBytes() int { return (len(h.counters) + 1) / 2 }
