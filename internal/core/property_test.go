package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"eccparity/internal/ecc"
	"eccparity/internal/faultmodel"
)

// TestPropertySingleChannelFaultsAlwaysRecoverable: for random write
// sequences and a random single-channel device fault, every line reads
// back exactly — the overlay's core guarantee ("the same error correction
// coverage as provided by the underlying ECC correction bits for faults
// within a single channel").
func TestPropertySingleChannelFaultsAlwaysRecoverable(t *testing.T) {
	f := func(seed int64, chRaw, bankRaw, shardRaw, mask byte) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSystem(Config{
			Base:             ecc.NewLOTECC5(),
			Channels:         4,
			BanksPerChannel:  2,
			RowsPerBank:      3,
			SlotsPerRow:      3,
			CounterThreshold: 4,
		})
		want := map[LineAddr][]byte{}
		// Random writes, including overwrites.
		for i := 0; i < 80; i++ {
			a := LineAddr{r.Intn(4), r.Intn(2), r.Intn(3), r.Intn(3)}
			d := make([]byte, s.LineSize())
			r.Read(d)
			if err := s.Write(a, d); err != nil {
				return false
			}
			want[a] = d
		}
		if mask == 0 {
			mask = 1
		}
		s.InjectFault(InjectedFault{
			Channel: int(chRaw) % 4,
			Bank:    int(bankRaw) % 2,
			Row:     -1,
			Shard:   int(shardRaw) % 4,
			Mask:    mask,
		})
		for a, d := range want {
			got, err := s.Read(a)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMarkingPreservesData: after an arbitrary fault drives a pair
// to marked, every line in the system still reads back exactly.
func TestPropertyMarkingPreservesData(t *testing.T) {
	f := func(seed int64, shardRaw, mask byte) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSystem(Config{
			Base:             ecc.NewRAIMParity(),
			Channels:         5,
			BanksPerChannel:  2,
			RowsPerBank:      5,
			SlotsPerRow:      2,
			CounterThreshold: 2,
		})
		want := map[LineAddr][]byte{}
		for ch := 0; ch < 5; ch++ {
			for b := 0; b < 2; b++ {
				for row := 0; row < 5; row++ {
					for slot := 0; slot < 2; slot++ {
						a := LineAddr{ch, b, row, slot}
						d := make([]byte, s.LineSize())
						r.Read(d)
						if s.Write(a, d) != nil {
							return false
						}
						want[a] = d
					}
				}
			}
		}
		if mask == 0 {
			mask = 1
		}
		s.InjectFault(InjectedFault{Channel: 1, Bank: 0, Row: -1, Shard: int(shardRaw) % 4, Mask: mask})
		s.Scrub() // drives detection → retirement → marking
		for a, d := range want {
			got, err := s.Read(a)
			if err != nil || !bytes.Equal(got, d) {
				return false
			}
		}
		return s.Health().IsMarked(1, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestLifetimeIntegration drives the functional system with a fault
// sequence sampled from the faultmodel package — the cross-module path the
// faultinjection example demonstrates, asserted end to end.
func TestLifetimeIntegration(t *testing.T) {
	const channels = 4
	s := NewSystem(Config{
		Base:             ecc.NewLOTECC5(),
		Channels:         channels,
		BanksPerChannel:  8,
		RowsPerBank:      4,
		SlotsPerRow:      2,
		CounterThreshold: 4,
	})
	r := rand.New(rand.NewSource(77))
	want := map[LineAddr][]byte{}
	for ch := 0; ch < channels; ch++ {
		for b := 0; b < 8; b++ {
			for row := 0; row < 4; row++ {
				for slot := 0; slot < 2; slot++ {
					a := LineAddr{ch, b, row, slot}
					d := make([]byte, s.LineSize())
					r.Read(d)
					if err := s.Write(a, d); err != nil {
						t.Fatal(err)
					}
					want[a] = d
				}
			}
		}
	}

	topo := faultmodel.Topology{Channels: channels, RanksPerChannel: 1, ChipsPerRank: 5, BanksPerRank: 8}
	model := faultmodel.NewModel(topo, faultmodel.DefaultRates().Scaled(4000))
	faults := model.SampleLifetime(rand.New(rand.NewSource(3)), 7*faultmodel.HoursPerYear)
	if len(faults) == 0 {
		t.Skip("no faults sampled at this seed/rate")
	}
	usedChannels := map[int]bool{}
	for _, f := range faults {
		if usedChannels[f.Channel] {
			continue // keep the scenario within single-channel-per-location coverage
		}
		usedChannels[f.Channel] = true
		inj := InjectedFault{Channel: f.Channel, Bank: f.Bank, Row: -1, Shard: f.Chip % 4, Mask: byte(1 + r.Intn(255))}
		if !f.Type.IsLarge() {
			inj.Row = r.Intn(4)
		}
		s.InjectFault(inj)
		s.Scrub()
	}
	// Every line must still read back exactly; no data loss.
	for a, d := range want {
		got, err := s.Read(a)
		if err != nil {
			t.Fatalf("read %+v after lifetime: %v", a, err)
		}
		if !bytes.Equal(got, d) {
			t.Fatalf("data loss at %+v", a)
		}
	}
	if s.Stats.Uncorrectable != 0 {
		t.Fatalf("uncorrectable events: %d", s.Stats.Uncorrectable)
	}
}
