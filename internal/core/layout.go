package core

import "fmt"

// This file implements the ECC parity group construction (§III-A, Fig. 4),
// the synthetic address spaces for parity/ECC/XOR lines consumed by the
// traffic model, and the capacity-overhead arithmetic of Table III.

// Grouping: within one bank, the data lines of every channel are cut into
// runs of N−1 lines ("macro-stripes"). Macro-stripe m contributes one line
// per channel to N different parity groups; group (m, k) takes line
// m·(N−1) + j from each channel c ≠ k, with j = (k−c−1) mod N, and stores
// the XOR of those lines' ECC correction bits in channel k's reserved
// parity rows. Every data line belongs to exactly one group, every group
// spans N−1 distinct channels, and each channel stores 1/(N−1)·R of its
// data capacity as parity — matching the paper's overhead formula.

// GroupKey identifies one ECC parity group.
type GroupKey struct {
	Bank int
	M    int // macro-stripe index
	K    int // parity channel (stores the parity, contributes no data line)
}

// GroupOf returns the parity group of data line index `line` (a flattened
// row·slots+slot index within one bank) in channel c of an n-channel
// system.
func GroupOf(c, line, n, bank int) GroupKey {
	if n < 2 {
		panic("core: parity groups need at least 2 channels")
	}
	j := line % (n - 1)
	k := (c + 1 + j) % n
	return GroupKey{Bank: bank, M: line / (n - 1), K: k}
}

// MemberLine returns the data line index contributed to group g by channel
// c, and whether c contributes at all (the parity channel does not).
func (g GroupKey) MemberLine(c, n int) (int, bool) {
	if c == g.K {
		return 0, false
	}
	j := ((g.K-c-1)%n + n) % n
	return g.M*(n-1) + j, true
}

// Peers lists the channels contributing data lines to the group.
func (g GroupKey) Peers(n int) []int {
	out := make([]int, 0, n-1)
	for c := 0; c < n; c++ {
		if c != g.K {
			out = append(out, c)
		}
	}
	return out
}

// Synthetic address spaces for the traffic model. Data addresses live below
// 1<<40; ECC-related lines get disjoint high ranges so they never collide
// with data in the LLC index.
const (
	eccSpace = uint64(1) << 44 // materialized correction-bit lines
	xorSpace = uint64(1) << 45 // XOR cachelines / parity lines
	gecSpace = uint64(1) << 43 // baseline LOT-ECC / Multi-ECC ECC lines
)

// PageBytes is the physical page (and DRAM row) size.
const PageBytes = 4096

// XORCachelineAddr maps a data line address to the address of the XOR
// cacheline accumulating its parity updates. Per §IV-C, one XOR cacheline
// covers the same group of four logically adjacent data lines in N−1
// logically adjacent physical pages (pages interleave across channels, so
// N adjacent pages hit N distinct channels).
func XORCachelineAddr(dataAddr uint64, channels int) uint64 {
	page := dataAddr / PageBytes
	pageGroup := page / uint64(channels)
	region := (dataAddr % PageBytes) / 256 // four adjacent 64B lines
	return xorSpace + (pageGroup*(PageBytes/256)+region)*64
}

// ECCLineAddr maps a data line address to its materialized correction-bit
// line, for banks recorded faulty. The correction bits of a line occupy
// 2·R·lineBytes (the doubling of §III-B), so one 64B ECC line covers
// 64/(2·R·lineBytes) ≥ 1 data lines.
func ECCLineAddr(dataAddr uint64, r float64, lineBytes int) uint64 {
	cover := int(64.0 / (2 * r * float64(lineBytes)) * float64(lineBytes))
	if cover < lineBytes {
		cover = lineBytes
	}
	return eccSpace + dataAddr/uint64(cover)*64
}

// GECLineAddr maps a data line address to the baseline tiered-ECC line
// covering it (LOT-ECC's GEC line or Multi-ECC's compacted T2EC line),
// given how many data lines share one ECC line.
func GECLineAddr(dataAddr uint64, linesCovered, lineBytes int) uint64 {
	return gecSpace + dataAddr/uint64(linesCovered*lineBytes)*64
}

// ParityLinePlacement returns the physical location of the parity line
// backing one XOR cacheline (addressed by XORCachelineAddr's synthetic
// address), for the traffic model: the parity lives in the channel the
// page group rotates onto (Fig. 4's distribution), in the reserved high
// rows, spread across ranks and banks by the group index.
func ParityLinePlacement(xorAddr uint64, channels, ranks, banks, rowsPerBank int) (channel, rank, bank, row int) {
	idx := (xorAddr - xorSpace) / 64
	pageGroup := idx / (PageBytes / 256)
	// Rotate the parity channel by group so no channel specializes.
	channel = int(pageGroup % uint64(channels))
	rank = int((idx / uint64(banks)) % uint64(ranks))
	bank = int(idx % uint64(banks))
	// Reserved region: the top 1/16th of rows (ample for R ≤ 0.5, N ≥ 2).
	reserved := rowsPerBank / 16
	if reserved < 1 {
		reserved = 1
	}
	row = rowsPerBank - 1 - int(idx/uint64(ranks*banks))%reserved
	return channel, rank, bank, row
}

// StaticOverhead returns the paper's Table III capacity overhead for an
// ECC-Parity system: 12.5% detection (dedicated ECC chips) plus the parity
// lines, (1+12.5%)·R/(N−1), where R is correction bits per data bit.
func StaticOverhead(r float64, channels int) float64 {
	if channels < 2 {
		panic(fmt.Sprintf("core: ECC Parity needs ≥2 channels, got %d", channels))
	}
	return 0.125 + 1.125*r/float64(channels-1)
}

// EOLOverhead returns the end-of-life expected overhead: the static cost
// plus materialized correction bits (2·R with their own 12.5% detection
// overhead) for the marked fraction of memory.
func EOLOverhead(r float64, channels int, markedFraction float64) float64 {
	return StaticOverhead(r, channels) + markedFraction*2*r*1.125
}

// ParityRowsPerBank returns how many rows must be reserved per bank for
// parity lines, given data rows per bank: each parity row covers (N−1)/R
// data rows (§III-A).
func ParityRowsPerBank(dataRows int, r float64, channels int) int {
	cover := float64(channels-1) / r
	rows := int(float64(dataRows)/cover) + 1
	return rows
}
