package core

import (
	"errors"
	"fmt"
	"sort"

	"eccparity/internal/ecc"
)

// Config assembles a functional ECC-Parity memory system.
type Config struct {
	// Base is the underlying ECC whose correction bits are XOR-shared.
	Base ecc.Scheme
	// Channels is N, the number of channels sharing parities.
	Channels int
	// BanksPerChannel is the rank-level bank count per channel (even).
	BanksPerChannel int
	// RowsPerBank and SlotsPerRow bound the data address space; one row is
	// one 4KB physical page.
	RowsPerBank int
	SlotsPerRow int
	// CounterThreshold is the bank-pair error count that triggers
	// materializing correction bits (the paper uses 4).
	CounterThreshold uint8
}

// LineAddr locates one data line.
type LineAddr struct {
	Channel, Bank, Row, Slot int
}

// PageKey identifies a physical page (one DRAM row).
type PageKey struct {
	Channel, Bank, Row int
}

// Page returns the page containing the line.
func (a LineAddr) Page() PageKey { return PageKey{a.Channel, a.Bank, a.Row} }

// lineIndex flattens (row, slot) into the per-bank line index used by the
// parity grouping.
func (a LineAddr) lineIndex(slotsPerRow int) int { return a.Row*slotsPerRow + a.Slot }

// InjectedFault is a persistent hardware fault: reads of matching lines see
// the given shard XORed with Mask. Writes do not clear it — exactly like a
// stuck device.
type InjectedFault struct {
	Channel int
	Bank    int
	Row     int // -1 matches every row in the bank (a bank-level fault)
	Shard   int // codeword shard (device / DIMM group) affected
	Mask    byte
}

// Stats counts the overlay's fault-handling activity.
type Stats struct {
	Reads            uint64
	Writes           uint64
	ErrorsDetected   uint64
	ErrorsCorrected  uint64
	Reconstructions  uint64 // correction bits rebuilt from ECC parity
	StoredBitsUses   uint64 // correction bits served from materialized store
	PagesRetired     uint64
	PairsMarked      uint64
	Uncorrectable    uint64
	PeerDirtyAborts  uint64 // reconstructions foiled by a faulty peer channel
	ScrubErrorsFound uint64
}

// System is the functional overlay: it stores real encoded lines, maintains
// real parities, and corrects real injected faults.
type System struct {
	cfg    Config
	scheme ecc.Scheme
	health *HealthTable

	store   map[LineAddr]*ecc.Codeword // clean encoded lines as written
	parity  map[GroupKey][]byte        // ECC parities (XOR of correction bits)
	corr    map[LineAddr][]byte        // materialized correction bits
	faults  []InjectedFault
	retired map[PageKey]bool

	Stats Stats
}

// Errors returned by the functional system.
var (
	ErrUnwritten     = errors.New("core: line never written")
	ErrUncorrectable = errors.New("core: uncorrectable error")
	ErrBadAddress    = errors.New("core: address out of range")
)

// NewSystem builds a functional system.
func NewSystem(cfg Config) *System {
	if cfg.Channels < 2 {
		panic("core: ECC Parity requires at least two channels")
	}
	if cfg.CounterThreshold == 0 {
		cfg.CounterThreshold = 4
	}
	return &System{
		cfg:     cfg,
		scheme:  cfg.Base,
		health:  NewHealthTable(cfg.Channels, cfg.BanksPerChannel, cfg.CounterThreshold),
		store:   make(map[LineAddr]*ecc.Codeword),
		parity:  make(map[GroupKey][]byte),
		corr:    make(map[LineAddr][]byte),
		retired: make(map[PageKey]bool),
	}
}

// Health exposes the bank-pair health table.
func (s *System) Health() *HealthTable { return s.health }

// LineSize returns the data line size in bytes.
func (s *System) LineSize() int { return s.scheme.Geometry().LineSize }

// Retired reports whether a page has been retired by the OS.
func (s *System) Retired(p PageKey) bool { return s.retired[p] }

func (s *System) checkAddr(a LineAddr) error {
	if a.Channel < 0 || a.Channel >= s.cfg.Channels ||
		a.Bank < 0 || a.Bank >= s.cfg.BanksPerChannel ||
		a.Row < 0 || a.Row >= s.cfg.RowsPerBank ||
		a.Slot < 0 || a.Slot >= s.cfg.SlotsPerRow {
		return fmt.Errorf("%w: %+v", ErrBadAddress, a)
	}
	return nil
}

// group returns the parity group of a line.
func (s *System) group(a LineAddr) GroupKey {
	return GroupOf(a.Channel, a.lineIndex(s.cfg.SlotsPerRow), s.cfg.Channels, a.Bank)
}

// InjectFault adds a persistent hardware fault.
func (s *System) InjectFault(f InjectedFault) {
	s.faults = append(s.faults, f)
}

// ClearFaults removes all injected faults (end of a test scenario).
func (s *System) ClearFaults() { s.faults = nil }

// readRaw returns the codeword as the memory controller would see it: the
// stored bits distorted by every matching injected fault.
func (s *System) readRaw(a LineAddr) (*ecc.Codeword, bool) {
	stored, ok := s.store[a]
	if !ok {
		return nil, false
	}
	cw := stored
	cloned := false
	for _, f := range s.faults {
		if f.Channel == a.Channel && f.Bank == a.Bank && (f.Row == -1 || f.Row == a.Row) {
			if !cloned {
				cw = cw.Clone()
				cloned = true
			}
			cw.XorChip(f.Shard, f.Mask)
		}
	}
	return cw, true
}

// Write stores a data line, updating either the materialized correction
// bits (faulty bank, step D of Fig. 6) or the ECC parity via
// ECCPnew = ECCPold ⊕ ECCold ⊕ ECCnew (healthy bank, step E / Eq. 1).
func (s *System) Write(a LineAddr, data []byte) error {
	if err := s.checkAddr(a); err != nil {
		return err
	}
	if len(data) != s.LineSize() {
		return fmt.Errorf("core: line size %d, want %d", len(data), s.LineSize())
	}
	s.Stats.Writes++
	corrNew := s.scheme.CorrectionBits(data)
	var corrOld []byte
	if old, ok := s.store[a]; ok {
		corrOld = s.scheme.CorrectionBits(s.scheme.Data(old))
	}
	cw, _ := s.scheme.Encode(data)
	s.store[a] = cw

	if s.health.IsMarked(a.Channel, a.Bank) {
		s.corr[a] = corrNew
		return nil
	}
	g := s.group(a)
	p, ok := s.parity[g]
	if !ok {
		p = make([]byte, s.scheme.CorrectionSize())
		s.parity[g] = p
	}
	for i := range p {
		p[i] ^= corrNew[i]
		if corrOld != nil {
			p[i] ^= corrOld[i]
		}
	}
	return nil
}

// Read returns the corrected data of a line, exercising the full Fig. 6
// flow: detection on the critical path, then — only if an error is
// detected — correction bits from the materialized store (marked banks) or
// reconstructed from the ECC parity and the peer channels.
func (s *System) Read(a LineAddr) ([]byte, error) {
	if err := s.checkAddr(a); err != nil {
		return nil, err
	}
	s.Stats.Reads++
	cw, ok := s.readRaw(a)
	if !ok {
		return nil, ErrUnwritten
	}
	if det := s.scheme.Detect(cw); !det.ErrorDetected {
		return s.scheme.Data(cw), nil
	}
	s.Stats.ErrorsDetected++

	bits, err := s.correctionBitsFor(a)
	if err != nil {
		s.Stats.Uncorrectable++
		return nil, err
	}
	data, _, err := s.scheme.Correct(cw, bits)
	if err != nil {
		s.Stats.Uncorrectable++
		return nil, fmt.Errorf("%w: %v", ErrUncorrectable, err)
	}
	s.Stats.ErrorsCorrected++
	s.noteError(a)
	return data, nil
}

// correctionBitsFor fetches or reconstructs a line's ECC correction bits.
func (s *System) correctionBitsFor(a LineAddr) ([]byte, error) {
	if s.health.IsMarked(a.Channel, a.Bank) {
		bits, ok := s.corr[a]
		if !ok {
			return nil, fmt.Errorf("%w: no stored correction bits for %+v", ErrUncorrectable, a)
		}
		s.Stats.StoredBitsUses++
		return bits, nil
	}
	return s.reconstruct(a)
}

// reconstruct rebuilds the correction bits of line a from its group's ECC
// parity XORed with the correction bits of every peer line, which are
// computed directly from the peers' (error-free) data (§III-A).
func (s *System) reconstruct(a LineAddr) ([]byte, error) {
	g := s.group(a)
	bits := make([]byte, s.scheme.CorrectionSize())
	if p, ok := s.parity[g]; ok {
		copy(bits, p)
	}
	for _, c := range g.Peers(s.cfg.Channels) {
		if c == a.Channel {
			continue
		}
		if s.health.IsMarked(c, g.Bank) {
			// A marked peer's contribution was stripped from the parity
			// when its pair transitioned to stored correction bits, so it
			// no longer participates — this is what restores correction
			// coverage after a second channel fails at the same location.
			continue
		}
		idx, contributes := g.MemberLine(c, s.cfg.Channels)
		if !contributes {
			continue
		}
		peer := LineAddr{Channel: c, Bank: g.Bank, Row: idx / s.cfg.SlotsPerRow, Slot: idx % s.cfg.SlotsPerRow}
		cw, ok := s.readRaw(peer)
		if !ok {
			continue // unwritten peer contributed zeros to the parity
		}
		if det := s.scheme.Detect(cw); det.ErrorDetected {
			// A second channel is faulty at the same relative location:
			// the parity cannot isolate either channel's bits.
			s.Stats.PeerDirtyAborts++
			return nil, fmt.Errorf("%w: peer channel %d also faulty", ErrUncorrectable, c)
		}
		peerBits := s.scheme.CorrectionBits(s.scheme.Data(cw))
		for i := range bits {
			bits[i] ^= peerBits[i]
		}
	}
	s.Stats.Reconstructions++
	return bits, nil
}

// noteError performs the §III-C response to a corrected error: bump the
// bank pair's counter; below threshold, retire the page and every page
// sharing its ECC parities; at threshold, transition the pair to stored
// correction bits.
func (s *System) noteError(a LineAddr) {
	if s.health.IsMarked(a.Channel, a.Bank) {
		return
	}
	if s.retired[a.Page()] {
		// The OS already retired this page; a permanent bit/row fault must
		// not keep incrementing the counter (§III-C).
		return
	}
	crossed := s.health.RecordError(a.Channel, a.Bank)
	if crossed {
		s.markPair(a.Channel, a.Bank)
		return
	}
	s.retirePageGroup(a)
}

// retirePageGroup retires the faulty page plus the peer pages protected by
// the same parities.
func (s *System) retirePageGroup(a LineAddr) {
	s.retire(a.Page())
	g := s.group(a)
	for _, c := range g.Peers(s.cfg.Channels) {
		if c == a.Channel {
			continue
		}
		idx, contributes := g.MemberLine(c, s.cfg.Channels)
		if !contributes {
			continue
		}
		s.retire(PageKey{Channel: c, Bank: g.Bank, Row: idx / s.cfg.SlotsPerRow})
	}
}

func (s *System) retire(p PageKey) {
	if !s.retired[p] {
		s.retired[p] = true
		s.Stats.PagesRetired++
	}
}

// markPair transitions both banks of the pair containing `bank` to stored
// correction bits (§III-B): reconstruct every line's correction bits (the
// bank is faulty, so its lines go through the parity path), store them,
// and strip the banks' contributions from every parity they touched.
func (s *System) markPair(channel, bank int) {
	b0 := bank &^ 1
	s.health.Mark(channel, b0)
	s.Stats.PairsMarked++

	for _, b := range []int{b0, b0 + 1} {
		for _, a := range s.linesIn(channel, b) {
			stored := s.store[a]
			// Materialize the line's correction bits. If the stored (clean)
			// copy decodes fine against a fresh read, prefer deriving the
			// bits from corrected data; reconstruction handles the faulty
			// case.
			cw, _ := s.readRaw(a)
			var data []byte
			if det := s.scheme.Detect(cw); !det.ErrorDetected {
				data = s.scheme.Data(cw)
			} else if bits, err := s.reconstruct(a); err == nil {
				if d, _, cerr := s.scheme.Correct(cw, bits); cerr == nil {
					data = d
				}
			}
			if data == nil {
				// Unrecoverable at marking time; fall back to the stored
				// clean copy (the write path keeps it) so future reads can
				// still correct against it.
				data = s.scheme.Data(stored)
			}
			s.corr[a] = s.scheme.CorrectionBits(data)

			// Remove this line's contribution from its parity group, using
			// the clean stored value that was added at write time.
			g := s.group(a)
			if p, ok := s.parity[g]; ok {
				bits := s.scheme.CorrectionBits(s.scheme.Data(stored))
				for i := range p {
					p[i] ^= bits[i]
				}
			}
		}
	}
}

// linesIn returns the written lines of one bank in deterministic order.
func (s *System) linesIn(channel, bank int) []LineAddr {
	var out []LineAddr
	for a := range s.store {
		if a.Channel == channel && a.Bank == bank {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Row != out[j].Row {
			return out[i].Row < out[j].Row
		}
		return out[i].Slot < out[j].Slot
	})
	return out
}

// Scrub walks every written line, reading (and therefore detecting and
// correcting) each, as the periodic scrubber of §III-C does. It returns
// the number of erroneous lines encountered.
func (s *System) Scrub() (errorsFound int, uncorrectable int) {
	addrs := make([]LineAddr, 0, len(s.store))
	for a := range s.store {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		ai, aj := addrs[i], addrs[j]
		if ai.Channel != aj.Channel {
			return ai.Channel < aj.Channel
		}
		if ai.Bank != aj.Bank {
			return ai.Bank < aj.Bank
		}
		if ai.Row != aj.Row {
			return ai.Row < aj.Row
		}
		return ai.Slot < aj.Slot
	})
	before := s.Stats.ErrorsDetected
	for _, a := range addrs {
		if _, err := s.Read(a); err != nil && errors.Is(err, ErrUncorrectable) {
			uncorrectable++
		}
	}
	errorsFound = int(s.Stats.ErrorsDetected - before)
	s.Stats.ScrubErrorsFound += uint64(errorsFound)
	return errorsFound, uncorrectable
}
