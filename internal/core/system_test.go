package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"eccparity/internal/ecc"
)

func lot5System() *System {
	return NewSystem(Config{
		Base:             ecc.NewLOTECC5(),
		Channels:         4,
		BanksPerChannel:  4,
		RowsPerBank:      8,
		SlotsPerRow:      6,
		CounterThreshold: 4,
	})
}

func fillSystem(t *testing.T, s *System, seed int64) map[LineAddr][]byte {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	want := map[LineAddr][]byte{}
	for ch := 0; ch < s.cfg.Channels; ch++ {
		for b := 0; b < s.cfg.BanksPerChannel; b++ {
			for row := 0; row < s.cfg.RowsPerBank; row++ {
				for slot := 0; slot < s.cfg.SlotsPerRow; slot++ {
					a := LineAddr{ch, b, row, slot}
					d := make([]byte, s.LineSize())
					r.Read(d)
					if err := s.Write(a, d); err != nil {
						t.Fatalf("write %+v: %v", a, err)
					}
					want[a] = d
				}
			}
		}
	}
	return want
}

func verifyAll(t *testing.T, s *System, want map[LineAddr][]byte) {
	t.Helper()
	for a, d := range want {
		got, err := s.Read(a)
		if err != nil {
			t.Fatalf("read %+v: %v", a, err)
		}
		if !bytes.Equal(got, d) {
			t.Fatalf("read %+v: wrong data", a)
		}
	}
}

func TestCleanRoundTrip(t *testing.T) {
	s := lot5System()
	want := fillSystem(t, s, 1)
	verifyAll(t, s, want)
	if s.Stats.ErrorsDetected != 0 || s.Stats.Reconstructions != 0 {
		t.Fatalf("clean system performed corrections: %+v", s.Stats)
	}
}

func TestUnwrittenLine(t *testing.T) {
	s := lot5System()
	if _, err := s.Read(LineAddr{0, 0, 0, 0}); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("want ErrUnwritten, got %v", err)
	}
}

func TestBadAddressRejected(t *testing.T) {
	s := lot5System()
	if _, err := s.Read(LineAddr{9, 0, 0, 0}); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("want ErrBadAddress, got %v", err)
	}
	if err := s.Write(LineAddr{0, 0, 99, 0}, make([]byte, s.LineSize())); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("want ErrBadAddress, got %v", err)
	}
	if err := s.Write(LineAddr{0, 0, 0, 0}, make([]byte, 3)); err == nil {
		t.Fatal("short line accepted")
	}
}

// TestChipFaultCorrectedViaParity is the headline property: a device fault
// in one channel is corrected by reconstructing the line's correction bits
// from the ECC parity and the peer channels — no correction bits were ever
// stored for this line.
func TestChipFaultCorrectedViaParity(t *testing.T) {
	s := lot5System()
	want := fillSystem(t, s, 2)
	s.InjectFault(InjectedFault{Channel: 1, Bank: 2, Row: 3, Shard: 0, Mask: 0x5A})

	a := LineAddr{1, 2, 3, 4}
	got, err := s.Read(a)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, want[a]) {
		t.Fatal("wrong data after parity reconstruction")
	}
	if s.Stats.Reconstructions == 0 {
		t.Fatal("correction did not use parity reconstruction")
	}
	if s.Stats.StoredBitsUses != 0 {
		t.Fatal("no correction bits should be stored yet")
	}
}

// TestParityTracksOverwrites: Eq. 1 (ECCPnew = ECCPold ⊕ ECCold ⊕ ECCnew)
// must keep parities exact across arbitrary overwrite sequences.
func TestParityTracksOverwrites(t *testing.T) {
	s := lot5System()
	want := fillSystem(t, s, 3)
	r := rand.New(rand.NewSource(33))
	// Overwrite many lines several times.
	for i := 0; i < 200; i++ {
		a := LineAddr{r.Intn(4), r.Intn(4), r.Intn(8), r.Intn(6)}
		d := make([]byte, s.LineSize())
		r.Read(d)
		if err := s.Write(a, d); err != nil {
			t.Fatal(err)
		}
		want[a] = d
	}
	// Now break a chip and verify reconstruction still works everywhere in
	// the faulty bank.
	s.InjectFault(InjectedFault{Channel: 2, Bank: 1, Row: -1, Shard: 1, Mask: 0xC3})
	for slot := 0; slot < 6; slot++ {
		for row := 0; row < 8; row++ {
			a := LineAddr{2, 1, row, slot}
			got, err := s.Read(a)
			if err != nil {
				t.Fatalf("read %+v: %v", a, err)
			}
			if !bytes.Equal(got, want[a]) {
				t.Fatalf("wrong data at %+v after overwrites", a)
			}
		}
	}
}

// TestTwoChannelsSameLocationUncorrectable: the documented limitation —
// parities cannot isolate two channels faulty at the same relative
// location (before any bank is marked).
func TestTwoChannelsSameLocationUncorrectable(t *testing.T) {
	s := lot5System()
	fillSystem(t, s, 4)
	s.InjectFault(InjectedFault{Channel: 0, Bank: 0, Row: 0, Shard: 0, Mask: 0x11})
	s.InjectFault(InjectedFault{Channel: 1, Bank: 0, Row: 0, Shard: 0, Mask: 0x22})

	// A line in channel 0 whose parity group includes the channel-1 line
	// at the same location will fail to reconstruct. Scan the faulty row:
	// at least one line must hit the dirty-peer abort.
	var aborted bool
	for slot := 0; slot < 6; slot++ {
		_, err := s.Read(LineAddr{0, 0, 0, slot})
		if err != nil && errors.Is(err, ErrUncorrectable) {
			aborted = true
		}
	}
	if !aborted {
		t.Fatal("overlapping two-channel fault must be uncorrectable somewhere")
	}
	if s.Stats.PeerDirtyAborts == 0 {
		t.Fatal("dirty-peer abort not recorded")
	}
}

// TestTwoChannelsDifferentLocationsBothCorrectable: faults in different
// channels at different relative locations retain full coverage.
func TestTwoChannelsDifferentLocationsBothCorrectable(t *testing.T) {
	s := lot5System()
	want := fillSystem(t, s, 5)
	s.InjectFault(InjectedFault{Channel: 0, Bank: 0, Row: 1, Shard: 0, Mask: 0x11})
	s.InjectFault(InjectedFault{Channel: 3, Bank: 2, Row: 5, Shard: 2, Mask: 0x44})
	for _, a := range []LineAddr{{0, 0, 1, 2}, {3, 2, 5, 0}} {
		got, err := s.Read(a)
		if err != nil {
			t.Fatalf("read %+v: %v", a, err)
		}
		if !bytes.Equal(got, want[a]) {
			t.Fatalf("wrong data at %+v", a)
		}
	}
}

// TestPageRetirementBelowThreshold: small-fault errors retire the page and
// its parity-sharing peers without marking the pair.
func TestPageRetirementBelowThreshold(t *testing.T) {
	s := lot5System()
	fillSystem(t, s, 6)
	s.InjectFault(InjectedFault{Channel: 1, Bank: 0, Row: 2, Shard: 0, Mask: 0x08})
	a := LineAddr{1, 0, 2, 0}
	if _, err := s.Read(a); err != nil {
		t.Fatal(err)
	}
	if !s.Retired(a.Page()) {
		t.Fatal("faulty page not retired")
	}
	if s.Stats.PagesRetired < 2 {
		t.Fatalf("peer pages sharing the parity must also retire, got %d", s.Stats.PagesRetired)
	}
	if s.Health().IsMarked(1, 0) {
		t.Fatal("single error must not mark the pair")
	}
	// Re-reading the same retired page must not advance the counter.
	before := s.Health().Counter(1, 0)
	if _, err := s.Read(a); err != nil {
		t.Fatal(err)
	}
	if s.Health().Counter(1, 0) != before {
		t.Fatal("retired page kept incrementing the counter")
	}
}

// TestBankFaultMarksPairAndMaterializes: a bank-level fault produces errors
// in many pages; the counter saturates, the pair is marked, correction bits
// are materialized, and subsequent reads use them (no more reconstruction).
func TestBankFaultMarksPairAndMaterializes(t *testing.T) {
	s := lot5System()
	want := fillSystem(t, s, 7)
	s.InjectFault(InjectedFault{Channel: 2, Bank: 2, Row: -1, Shard: 3, Mask: 0x99})

	// Touch errors in enough distinct pages to saturate the counter.
	for row := 0; row < 4; row++ {
		if _, err := s.Read(LineAddr{2, 2, row, 0}); err != nil {
			t.Fatalf("row %d: %v", row, err)
		}
	}
	if !s.Health().IsMarked(2, 2) || !s.Health().IsMarked(2, 3) {
		t.Fatal("bank pair must be marked after threshold errors")
	}
	if s.Stats.PairsMarked != 1 {
		t.Fatalf("pairs marked %d", s.Stats.PairsMarked)
	}

	// All data in the marked banks must decode via stored correction bits.
	recBefore := s.Stats.Reconstructions
	usesBefore := s.Stats.StoredBitsUses
	for row := 0; row < 8; row++ {
		for slot := 0; slot < 6; slot++ {
			a := LineAddr{2, 2, row, slot}
			got, err := s.Read(a)
			if err != nil {
				t.Fatalf("read %+v: %v", a, err)
			}
			if !bytes.Equal(got, want[a]) {
				t.Fatalf("wrong data at %+v after marking", a)
			}
		}
	}
	if s.Stats.Reconstructions != recBefore {
		t.Fatal("marked bank reads must not reconstruct from parity")
	}
	if s.Stats.StoredBitsUses == usesBefore {
		t.Fatal("marked bank reads must use stored correction bits")
	}
}

// TestSecondChannelFaultAfterMarking is the paper's motivation for
// materializing correction bits: once channel A's faulty pair is marked and
// excluded from the parities, a LATER fault in channel B at the same
// relative location is still correctable — B reconstructs from parities
// that no longer involve A, and A uses its stored bits.
func TestSecondChannelFaultAfterMarking(t *testing.T) {
	s := lot5System()
	want := fillSystem(t, s, 8)

	// Fault 1: bank fault in channel 0, bank 0. Saturate and mark.
	s.InjectFault(InjectedFault{Channel: 0, Bank: 0, Row: -1, Shard: 0, Mask: 0x77})
	for row := 0; row < 4; row++ {
		if _, err := s.Read(LineAddr{0, 0, row, 1}); err != nil {
			t.Fatalf("marking phase: %v", err)
		}
	}
	if !s.Health().IsMarked(0, 0) {
		t.Fatal("pair not marked")
	}

	// Fault 2: later, channel 1 fails at the same bank/rows.
	s.InjectFault(InjectedFault{Channel: 1, Bank: 0, Row: -1, Shard: 1, Mask: 0xEE})

	// Both channels' data must still be fully recoverable.
	for row := 0; row < 8; row++ {
		for slot := 0; slot < 6; slot++ {
			for _, ch := range []int{0, 1} {
				a := LineAddr{ch, 0, row, slot}
				got, err := s.Read(a)
				if err != nil {
					t.Fatalf("read %+v: %v", a, err)
				}
				if !bytes.Equal(got, want[a]) {
					t.Fatalf("wrong data at %+v", a)
				}
			}
		}
	}
}

// TestWritesToMarkedBankUpdateStoredBits: step D of Fig. 6.
func TestWritesToMarkedBankUpdateStoredBits(t *testing.T) {
	s := lot5System()
	fillSystem(t, s, 9)
	s.InjectFault(InjectedFault{Channel: 3, Bank: 0, Row: -1, Shard: 0, Mask: 0x3C})
	for row := 0; row < 4; row++ {
		if _, err := s.Read(LineAddr{3, 0, row, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Health().IsMarked(3, 0) {
		t.Fatal("pair not marked")
	}
	// Overwrite a line in the marked bank; the new data must be
	// recoverable through the fault.
	a := LineAddr{3, 0, 5, 5}
	newData := bytes.Repeat([]byte{0xAB}, s.LineSize())
	if err := s.Write(a, newData); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("overwrite in marked bank lost")
	}
}

// TestScrubFindsAndHandlesErrors: the periodic scrubber drives the same
// error-handling machinery.
func TestScrubFindsAndHandlesErrors(t *testing.T) {
	s := lot5System()
	fillSystem(t, s, 10)
	found, unc := s.Scrub()
	if found != 0 || unc != 0 {
		t.Fatalf("clean scrub found %d/%d", found, unc)
	}
	s.InjectFault(InjectedFault{Channel: 0, Bank: 2, Row: -1, Shard: 2, Mask: 0x42})
	found, unc = s.Scrub()
	if found == 0 {
		t.Fatal("scrub missed a bank fault")
	}
	if unc != 0 {
		t.Fatalf("scrub hit %d uncorrectable lines", unc)
	}
	if !s.Health().IsMarked(0, 2) {
		t.Fatal("scrub must drive the pair to marked")
	}
}

// TestRAIMParityBase runs the core scenario with the DIMM-kill base scheme,
// exercising the overlay's scheme-independence (it is "a general
// optimization that can be applied on top of diverse memory ECCs").
func TestRAIMParityBase(t *testing.T) {
	s := NewSystem(Config{
		Base:             ecc.NewRAIMParity(),
		Channels:         5,
		BanksPerChannel:  2,
		RowsPerBank:      4,
		SlotsPerRow:      4,
		CounterThreshold: 4,
	})
	want := fillSystem(t, s, 11)
	// Kill one DIMM group in one channel.
	s.InjectFault(InjectedFault{Channel: 4, Bank: 1, Row: -1, Shard: 2, Mask: 0xF0})
	for row := 0; row < 4; row++ {
		for slot := 0; slot < 4; slot++ {
			a := LineAddr{4, 1, row, slot}
			got, err := s.Read(a)
			if err != nil {
				t.Fatalf("read %+v: %v", a, err)
			}
			if !bytes.Equal(got, want[a]) {
				t.Fatalf("wrong data at %+v", a)
			}
		}
	}
	if s.Stats.Reconstructions == 0 {
		t.Fatal("expected parity reconstructions")
	}
}

// TestChipkill36Base checks the overlay over the commercial chipkill code.
func TestChipkill36Base(t *testing.T) {
	s := NewSystem(Config{
		Base:             ecc.NewChipkill36(),
		Channels:         3,
		BanksPerChannel:  2,
		RowsPerBank:      2,
		SlotsPerRow:      4,
		CounterThreshold: 4,
	})
	want := fillSystem(t, s, 12)
	s.InjectFault(InjectedFault{Channel: 1, Bank: 0, Row: 1, Shard: 7, Mask: 0x21})
	a := LineAddr{1, 0, 1, 2}
	got, err := s.Read(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[a]) {
		t.Fatal("wrong data")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := lot5System()
	want := fillSystem(t, s, 13)
	if s.Stats.Writes != uint64(len(want)) {
		t.Fatalf("writes %d, want %d", s.Stats.Writes, len(want))
	}
	n := s.Stats.Reads
	verifyAll(t, s, want)
	if s.Stats.Reads != n+uint64(len(want)) {
		t.Fatal("read count wrong")
	}
}

// TestDoubleChipkillBase: the overlay over a double-chipkill base ECC
// corrects TWO simultaneously dead devices in one channel via parity
// reconstruction — the "double chipkill correct" generality the paper
// claims for the technique.
func TestDoubleChipkillBase(t *testing.T) {
	s := NewSystem(Config{
		Base:             ecc.NewDoubleChipkill(),
		Channels:         4,
		BanksPerChannel:  2,
		RowsPerBank:      2,
		SlotsPerRow:      3,
		CounterThreshold: 4,
	})
	want := fillSystem(t, s, 14)
	s.InjectFault(InjectedFault{Channel: 2, Bank: 1, Row: -1, Shard: 3, Mask: 0x17})
	s.InjectFault(InjectedFault{Channel: 2, Bank: 1, Row: -1, Shard: 21, Mask: 0xE4})
	for row := 0; row < 2; row++ {
		for slot := 0; slot < 3; slot++ {
			a := LineAddr{2, 1, row, slot}
			got, err := s.Read(a)
			if err != nil {
				t.Fatalf("read %+v: %v", a, err)
			}
			if !bytes.Equal(got, want[a]) {
				t.Fatalf("wrong data at %+v", a)
			}
		}
	}
	if s.Stats.Reconstructions == 0 {
		t.Fatal("expected parity reconstructions")
	}
}

func BenchmarkOverlayWrite(b *testing.B) {
	s := lot5System()
	d := make([]byte, s.LineSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := LineAddr{i % 4, (i / 4) % 4, (i / 16) % 8, (i / 128) % 6}
		if err := s.Write(a, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverlayCleanRead(b *testing.B) {
	s := lot5System()
	d := make([]byte, s.LineSize())
	a := LineAddr{1, 1, 1, 1}
	if err := s.Write(a, d); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverlayReconstruction(b *testing.B) {
	s := lot5System()
	d := make([]byte, s.LineSize())
	for ch := 0; ch < 4; ch++ {
		for slot := 0; slot < 6; slot++ {
			if err := s.Write(LineAddr{ch, 0, 0, slot}, d); err != nil {
				b.Fatal(err)
			}
		}
	}
	s.InjectFault(InjectedFault{Channel: 2, Bank: 0, Row: 0, Shard: 0, Mask: 0x42})
	a := LineAddr{2, 0, 0, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(a); err != nil {
			b.Fatal(err)
		}
	}
}
