package core

import "fmt"

// PhysicalLayout places ECC parities and materialized correction bits in
// real DRAM rows, following Figs. 4 and 5 of the paper:
//
//   - the last rows of every bank are reserved for parity lines; the
//     parities protecting one bank of data are distributed across the same
//     bank index of all channels (each group's parity lives in its parity
//     channel g.K);
//   - one parity line of lineBytes holds ⌊1/R⌋ groups' parities (each
//     R·lineBytes wide), so one parity row covers (N−1)/R data rows;
//   - when a bank pair is marked faulty, each bank of the pair stores the
//     correction bits of the OTHER bank's data (letting the data access and
//     its correction-bit access overlap), at 2·R·lineBytes per data line.
type PhysicalLayout struct {
	Channels    int
	Banks       int // banks per channel
	TotalRows   int // rows per bank, data + reserved
	SlotsPerRow int // lines per row
	LineBytes   int
	R           float64 // correction bits per data bit of the base ECC

	dataRows       int
	parityRows     int
	groupsPerLine  int
	corrPerLine    int // data lines covered per correction-bit line
	corrRowsPerBnk int
}

// NewPhysicalLayout computes the row budget. It panics on geometries that
// cannot host their own parity (tiny configs), since layout parameters are
// fixed at design time.
func NewPhysicalLayout(channels, banks, totalRows, slotsPerRow, lineBytes int, r float64) *PhysicalLayout {
	if channels < 2 || banks < 2 || banks%2 != 0 || totalRows < 2 || slotsPerRow < 1 || r <= 0 || r > 1 {
		panic(fmt.Sprintf("core: invalid physical layout (%d ch, %d banks, %d rows, %d slots, R=%v)",
			channels, banks, totalRows, slotsPerRow, r))
	}
	l := &PhysicalLayout{
		Channels: channels, Banks: banks, TotalRows: totalRows,
		SlotsPerRow: slotsPerRow, LineBytes: lineBytes, R: r,
	}
	l.groupsPerLine = int(1 / r)
	if l.groupsPerLine < 1 {
		l.groupsPerLine = 1
	}
	l.corrPerLine = int(1 / (2 * r))
	if l.corrPerLine < 1 {
		l.corrPerLine = 1
	}
	// Each parity row covers (N−1)/R data rows; solve
	// dataRows + ceil(dataRows·R/(N−1)) ≤ totalRows.
	cover := float64(channels-1) / r
	l.dataRows = int(float64(totalRows) / (1 + 1/cover))
	l.parityRows = totalRows - l.dataRows
	if l.dataRows < 1 || l.parityRows < 1 {
		panic("core: bank too small to host its parity rows")
	}
	l.corrRowsPerBnk = (l.dataRows*slotsPerRow+l.corrPerLine-1)/l.corrPerLine/slotsPerRow + 1
	return l
}

// DataRows returns rows available for data per bank.
func (l *PhysicalLayout) DataRows() int { return l.dataRows }

// ParityRows returns the reserved parity rows per bank.
func (l *PhysicalLayout) ParityRows() int { return l.parityRows }

// CorrectionRowsPerBank returns the rows needed to host one bank's
// correction bits (at the doubled allocation) in its sibling.
func (l *PhysicalLayout) CorrectionRowsPerBank() int { return l.corrRowsPerBnk }

// ParityLocation is a physical placement of a parity (or correction-bit)
// chunk: a line address plus the sub-slot within the line.
type ParityLocation struct {
	Line    LineAddr
	SubSlot int
}

// ParityLineOf places group g's parity: in the group's parity channel, the
// same bank, packed into the reserved rows after the data region.
func (l *PhysicalLayout) ParityLineOf(g GroupKey) ParityLocation {
	idx := g.M
	lineIdx := idx / l.groupsPerLine
	row := l.dataRows + lineIdx/l.SlotsPerRow
	if row >= l.TotalRows {
		panic(fmt.Sprintf("core: parity overflow for group %+v (row %d of %d)", g, row, l.TotalRows))
	}
	return ParityLocation{
		Line: LineAddr{
			Channel: g.K,
			Bank:    g.Bank,
			Row:     row,
			Slot:    lineIdx % l.SlotsPerRow,
		},
		SubSlot: idx % l.groupsPerLine,
	}
}

// CorrectionLineOf places the materialized correction bits of data line a:
// in the SIBLING bank of a's pair (Fig. 5), repurposing the top of that
// bank's DATA region. This is why "the effective memory capacity reduces
// when a device-level fault occurs" (§VI-B): a marked pair gives up
// CapacityLossOnMark of each bank's data rows to host the other bank's
// correction bits, and the OS migrates/retires the displaced pages.
func (l *PhysicalLayout) CorrectionLineOf(a LineAddr) ParityLocation {
	idx := a.lineIndex(l.SlotsPerRow)
	lineIdx := idx / l.corrPerLine
	row := l.dataRows - l.corrRowsPerBnk + lineIdx/l.SlotsPerRow
	if row < 0 {
		row = 0
	}
	return ParityLocation{
		Line: LineAddr{
			Channel: a.Channel,
			Bank:    a.Bank ^ 1, // the sibling bank of the pair
			Row:     row,
			Slot:    lineIdx % l.SlotsPerRow,
		},
		SubSlot: idx % l.corrPerLine,
	}
}

// CapacityLossOnMark returns the fraction of a marked pair's data rows
// repurposed for correction bits (≈ 2·R, the doubled allocation).
func (l *PhysicalLayout) CapacityLossOnMark() float64 {
	return float64(l.corrRowsPerBnk) / float64(l.dataRows)
}

// ReservedFraction returns the fraction of each bank devoted to parity
// rows — the physical realization of the R/(N−1) overhead term.
func (l *PhysicalLayout) ReservedFraction() float64 {
	return float64(l.parityRows) / float64(l.TotalRows)
}
