package core

import "testing"

func TestHealthTableBasics(t *testing.T) {
	h := NewHealthTable(4, 8, 4)
	if h.IsMarked(0, 0) {
		t.Fatal("fresh table must be clean")
	}
	for i := 0; i < 3; i++ {
		if h.RecordError(1, 5) {
			t.Fatalf("crossed threshold at %d errors", i+1)
		}
	}
	if h.Counter(1, 5) != 3 || h.Counter(1, 4) != 3 {
		t.Fatal("counter must be shared by the bank pair")
	}
	if !h.RecordError(1, 4) {
		t.Fatal("fourth error must cross the threshold")
	}
	if !h.IsMarked(1, 5) || !h.IsMarked(1, 4) {
		t.Fatal("both banks of the pair must be marked")
	}
	if h.IsMarked(1, 6) || h.IsMarked(0, 5) {
		t.Fatal("marking leaked to another pair")
	}
	if h.MarkedPairs() != 1 {
		t.Fatalf("marked pairs %d", h.MarkedPairs())
	}
}

func TestRecordErrorAfterMarkIsNoop(t *testing.T) {
	h := NewHealthTable(2, 4, 1)
	if !h.RecordError(0, 0) {
		t.Fatal("threshold 1 must mark immediately")
	}
	if h.RecordError(0, 1) {
		t.Fatal("marked pair must not cross again")
	}
	if h.MarkedPairs() != 1 {
		t.Fatal("double counting")
	}
}

func TestMarkIdempotent(t *testing.T) {
	h := NewHealthTable(2, 4, 4)
	h.Mark(1, 2)
	h.Mark(1, 3)
	if h.MarkedPairs() != 1 {
		t.Fatalf("marked pairs %d, want 1", h.MarkedPairs())
	}
}

func TestMarkedFraction(t *testing.T) {
	h := NewHealthTable(4, 8, 4) // 16 pairs
	h.Mark(0, 0)
	h.Mark(2, 6)
	if got := h.MarkedFraction(); got != 2.0/16.0 {
		t.Fatalf("fraction %v", got)
	}
}

func TestSRAMBudget(t *testing.T) {
	// §III-E: a 512GB system with 1024 banks uses 0.5B per pair.
	h := NewHealthTable(8, 128, 4) // 1024 banks → 512 pairs → 256B
	if got := h.SRAMBytes(); got != 256 {
		t.Fatalf("SRAM bytes %d, want 256", got)
	}
}

func TestHealthTablePanics(t *testing.T) {
	cases := []func(){
		func() { NewHealthTable(0, 8, 4) },
		func() { NewHealthTable(4, 7, 4) }, // odd banks cannot pair
		func() { NewHealthTable(4, 8, 0) },
		func() { NewHealthTable(4, 8, 4).IsMarked(4, 0) },
		func() { NewHealthTable(4, 8, 4).RecordError(0, 8) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d must panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPairKey(t *testing.T) {
	h := NewHealthTable(4, 8, 4)
	if h.Pair(2, 5) != (PairKey{Channel: 2, Pair: 2}) {
		t.Fatal("bank 5 belongs to pair 2")
	}
}
