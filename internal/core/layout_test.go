package core

import (
	"math"
	"testing"
)

// TestGroupPartition verifies the structural invariants of the parity
// grouping for several channel counts: every line belongs to exactly one
// group, every group has N−1 members from distinct channels, and the
// mapping is involutive (GroupOf ↔ MemberLine).
func TestGroupPartition(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 10} {
		lines := 6 * (n - 1) // a few macro-stripes
		members := map[GroupKey]map[int]bool{}
		for c := 0; c < n; c++ {
			for i := 0; i < lines; i++ {
				g := GroupOf(c, i, n, 0)
				if g.K == c {
					t.Fatalf("n=%d: line (%d,%d) grouped with its own parity channel", n, c, i)
				}
				back, ok := g.MemberLine(c, n)
				if !ok || back != i {
					t.Fatalf("n=%d: MemberLine(%d) = %d,%v; want %d", n, c, back, ok, i)
				}
				if members[g] == nil {
					members[g] = map[int]bool{}
				}
				if members[g][c] {
					t.Fatalf("n=%d: channel %d contributes twice to %+v", n, c, g)
				}
				members[g][c] = true
			}
		}
		for g, chans := range members {
			if len(chans) != n-1 {
				t.Fatalf("n=%d: group %+v has %d members, want %d", n, g, len(chans), n-1)
			}
			if chans[g.K] {
				t.Fatalf("n=%d: parity channel contributes data to its own group", n)
			}
		}
		// Group count: N·lines data lines, N−1 per group.
		wantGroups := n * lines / (n - 1)
		if len(members) != wantGroups {
			t.Fatalf("n=%d: %d groups, want %d", n, len(members), wantGroups)
		}
	}
}

func TestGroupParityChannelBalanced(t *testing.T) {
	// Parity storage must spread over channels (Fig. 4's distribution).
	n := 4
	counts := make([]int, n)
	for c := 0; c < n; c++ {
		for i := 0; i < 300; i++ {
			counts[GroupOf(c, i, n, 0).K]++
		}
	}
	for k, got := range counts {
		if got == 0 {
			t.Fatalf("channel %d never stores parity", k)
		}
	}
}

func TestGroupPeers(t *testing.T) {
	g := GroupKey{Bank: 0, M: 0, K: 2}
	peers := g.Peers(4)
	if len(peers) != 3 {
		t.Fatalf("peers %v", peers)
	}
	for _, p := range peers {
		if p == 2 {
			t.Fatal("parity channel listed as peer")
		}
	}
}

func TestGroupOfPanicsOnOneChannel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	GroupOf(0, 0, 1, 0)
}

// TestStaticOverheadTableIII pins the paper's Table III values exactly.
func TestStaticOverheadTableIII(t *testing.T) {
	cases := []struct {
		r        float64
		channels int
		want     float64
	}{
		{0.25, 8, 0.165},  // 8-chan LOT-ECC5 + ECC Parity: 16.5%
		{0.25, 4, 0.219},  // 4-chan LOT-ECC5 + ECC Parity: 21.9%
		{0.50, 10, 0.188}, // 10-chan RAIM + ECC Parity: 18.8%
		{0.50, 5, 0.266},  // 5-chan RAIM + ECC Parity: 26.6%
	}
	for _, tc := range cases {
		got := StaticOverhead(tc.r, tc.channels)
		if math.Abs(got-tc.want) > 0.0012 {
			t.Errorf("StaticOverhead(%v,%d) = %.4f, want %.3f", tc.r, tc.channels, got, tc.want)
		}
	}
}

// TestEOLOverheadTableIII checks the end-of-life deltas: with the paper's
// ≈0.4% marked fraction, 8-chan LOT5 goes 16.5% → ≈16.7%.
func TestEOLOverheadTableIII(t *testing.T) {
	cases := []struct {
		r        float64
		channels int
		frac     float64
		want     float64
	}{
		{0.25, 8, 0.004, 0.167},
		{0.25, 4, 0.004, 0.221},
		{0.50, 10, 0.004, 0.191},
		{0.50, 5, 0.004, 0.269},
	}
	for _, tc := range cases {
		got := EOLOverhead(tc.r, tc.channels, tc.frac)
		if math.Abs(got-tc.want) > 0.004 {
			t.Errorf("EOLOverhead(%v,%d,%v) = %.4f, want ≈%.3f", tc.r, tc.channels, tc.frac, got, tc.want)
		}
	}
}

func TestStaticOverheadDecreasesWithChannels(t *testing.T) {
	prev := math.Inf(1)
	for n := 2; n <= 16; n++ {
		o := StaticOverhead(0.25, n)
		if o >= prev {
			t.Fatalf("overhead must shrink with channel count: n=%d o=%v prev=%v", n, o, prev)
		}
		prev = o
	}
}

func TestStaticOverheadPanicsOnOneChannel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	StaticOverhead(0.25, 1)
}

func TestXORCachelineCoverage(t *testing.T) {
	// One XOR cacheline covers four adjacent 64B lines of one page...
	n := 4
	base := uint64(0)
	x0 := XORCachelineAddr(base, n)
	for off := uint64(64); off < 256; off += 64 {
		if XORCachelineAddr(base+off, n) != x0 {
			t.Fatalf("offset %d must share the XOR cacheline", off)
		}
	}
	if XORCachelineAddr(base+256, n) == x0 {
		t.Fatal("fifth line must map to a new XOR cacheline")
	}
	// ...and the same region of the N−1 adjacent pages (same page group).
	for p := uint64(1); p < uint64(n); p++ {
		if XORCachelineAddr(base+p*PageBytes, n) != x0 {
			t.Fatalf("page %d of the group must share the XOR cacheline", p)
		}
	}
	if XORCachelineAddr(base+uint64(n)*PageBytes, n) == x0 {
		t.Fatal("next page group must get its own XOR cacheline")
	}
}

func TestXORAddrDistinctFromData(t *testing.T) {
	if XORCachelineAddr(0, 4) < (1 << 44) {
		t.Fatal("XOR cachelines must live in their own address space")
	}
	if ECCLineAddr(0, 0.25, 64) == XORCachelineAddr(0, 4) {
		t.Fatal("ECC and XOR spaces must not collide")
	}
}

func TestECCLineCoverage(t *testing.T) {
	// R=0.25, 64B lines: correction bits with 2× allocation are 32B per
	// line, so one 64B ECC line covers two data lines.
	a0 := ECCLineAddr(0, 0.25, 64)
	a1 := ECCLineAddr(64, 0.25, 64)
	a2 := ECCLineAddr(128, 0.25, 64)
	if a0 != a1 {
		t.Fatal("two adjacent lines must share an ECC line at R=0.25")
	}
	if a2 == a0 {
		t.Fatal("third line must use the next ECC line")
	}
	// R=0.5: one ECC line per data line.
	if ECCLineAddr(0, 0.5, 64) == ECCLineAddr(64, 0.5, 64) {
		t.Fatal("R=0.5 must give one ECC line per data line")
	}
}

func TestGECLineCoverage(t *testing.T) {
	if GECLineAddr(0, 4, 64) != GECLineAddr(3*64, 4, 64) {
		t.Fatal("4-line GEC coverage broken")
	}
	if GECLineAddr(0, 4, 64) == GECLineAddr(4*64, 4, 64) {
		t.Fatal("GEC line must advance after 4 lines")
	}
}

func TestParityRowsPerBank(t *testing.T) {
	// N=4, R=0.5: one parity row per 6 data rows (the paper's example).
	got := ParityRowsPerBank(60, 0.5, 4)
	if got < 10 || got > 11 {
		t.Fatalf("60 data rows need ≈10 parity rows, got %d", got)
	}
}

func TestParityLinePlacement(t *testing.T) {
	const channels, ranks, banks, rows = 4, 2, 8, 1 << 16
	seenCh := map[int]bool{}
	for pg := uint64(0); pg < 64; pg++ {
		for region := uint64(0); region < 16; region++ {
			// Reconstruct the XOR address the engine would evict.
			dataAddr := pg * uint64(channels) * PageBytes
			xa := XORCachelineAddr(dataAddr+region*256, channels)
			ch, rk, bk, row := ParityLinePlacement(xa, channels, ranks, banks, rows)
			if ch < 0 || ch >= channels || rk < 0 || rk >= ranks || bk < 0 || bk >= banks {
				t.Fatalf("placement out of range: ch=%d rk=%d bk=%d", ch, rk, bk)
			}
			if row < rows-rows/16 || row >= rows {
				t.Fatalf("parity row %d outside the reserved top region", row)
			}
			seenCh[ch] = true
		}
	}
	if len(seenCh) != channels {
		t.Fatalf("parity channel must rotate over all %d channels, saw %d", channels, len(seenCh))
	}
}
