package faultmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRatesTotalIs44(t *testing.T) {
	got := DefaultRates().Total()
	if math.Abs(got-44.0) > 1e-9 {
		t.Fatalf("default rates total %v FIT, want 44", got)
	}
}

func TestScaledPreservesMix(t *testing.T) {
	r := DefaultRates()
	s := r.Scaled(100)
	if math.Abs(s.Total()-100) > 1e-9 {
		t.Fatalf("scaled total %v, want 100", s.Total())
	}
	for i := range r {
		ratio := s[i] / r[i]
		if math.Abs(ratio-100.0/44.0) > 1e-9 {
			t.Fatalf("type %v not scaled proportionally", FaultType(i))
		}
	}
}

func TestFaultTypeClassification(t *testing.T) {
	small := []FaultType{FaultBit, FaultWord, FaultColumn, FaultRow}
	large := []FaultType{FaultBank, FaultMultiBank, FaultMultiRank}
	for _, ft := range small {
		if ft.IsLarge() {
			t.Errorf("%v must be a small fault", ft)
		}
	}
	for _, ft := range large {
		if !ft.IsLarge() {
			t.Errorf("%v must be a large fault", ft)
		}
	}
}

func TestFaultTypeStrings(t *testing.T) {
	for ft := FaultBit; ft < numFaultTypes; ft++ {
		if ft.String() == "unknown" {
			t.Errorf("fault type %d has no name", ft)
		}
	}
}

func TestTopologyCounts(t *testing.T) {
	topo := PaperTopology(8)
	if topo.TotalChips() != 8*4*9 {
		t.Fatalf("total chips %d", topo.TotalChips())
	}
	if topo.ChipsPerChannel() != 36 {
		t.Fatalf("chips per channel %d", topo.ChipsPerChannel())
	}
	if topo.TotalBanks() != 8*4*8 {
		t.Fatalf("total banks %d", topo.TotalBanks())
	}
}

func TestSampleLifetimeRate(t *testing.T) {
	// Over many trials, the observed fault count must match λT.
	topo := PaperTopology(8)
	rates := DefaultRates()
	hours := 7 * HoursPerYear
	want := rates.Total() * 1e-9 * float64(topo.TotalChips()) * hours
	var got float64
	const trials = 3000
	m := NewModel(topo, rates)
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		got += float64(len(m.SampleLifetime(rng, hours)))
	}
	got /= trials
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("observed %.3f faults per lifetime, want ≈%.3f", got, want)
	}
}

func TestSampleLifetimeDeterministic(t *testing.T) {
	topo := PaperTopology(4)
	m := NewModel(topo, DefaultRates())
	a := m.SampleLifetime(rand.New(rand.NewSource(42)), 100*HoursPerYear)
	b := m.SampleLifetime(rand.New(rand.NewSource(42)), 100*HoursPerYear)
	if len(a) != len(b) {
		t.Fatal("same seed produced different fault counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different faults")
		}
	}
}

func TestSampleFaultsInBounds(t *testing.T) {
	topo := PaperTopology(8)
	m := NewModel(topo, DefaultRates().Scaled(5000))
	faults := m.SampleLifetime(rand.New(rand.NewSource(7)), 7*HoursPerYear)
	if len(faults) == 0 {
		t.Fatal("expected faults at inflated rate")
	}
	for _, f := range faults {
		if f.Channel < 0 || f.Channel >= topo.Channels ||
			f.Rank < 0 || f.Rank >= topo.RanksPerChannel ||
			f.Chip < 0 || f.Chip >= topo.ChipsPerRank ||
			f.Bank < 0 || f.Bank >= topo.BanksPerRank {
			t.Fatalf("fault out of bounds: %+v", f)
		}
		if f.Time <= 0 || f.Time > 7*HoursPerYear {
			t.Fatalf("fault time out of range: %v", f.Time)
		}
	}
}

func TestAffectedBanks(t *testing.T) {
	topo := PaperTopology(8)
	bank := Fault{Type: FaultBank, Channel: 1, Rank: 2, Bank: 3}
	if got := bank.AffectedBanks(topo); len(got) != 1 || got[0] != (BankID{1, 2, 3}) {
		t.Fatalf("bank fault affected %v", got)
	}
	mb := Fault{Type: FaultMultiBank, Channel: 0, Rank: 0, Bank: 5}
	if got := mb.AffectedBanks(topo); len(got) != 4 {
		t.Fatalf("multi-bank fault affected %d banks, want 4", len(got))
	}
	mr := Fault{Type: FaultMultiRank, Channel: 0, Rank: 3, Bank: 0}
	got := mr.AffectedBanks(topo)
	if len(got) != 16 {
		t.Fatalf("multi-rank fault affected %d banks, want 16", len(got))
	}
	for _, b := range got {
		if b.Rank != 3 && b.Rank != 0 { // rank 3 wraps to rank 0
			t.Fatalf("multi-rank affected unexpected rank %d", b.Rank)
		}
	}
	small := Fault{Type: FaultRow}
	if got := small.AffectedBanks(topo); got != nil {
		t.Fatalf("row fault must not mark banks, got %v", got)
	}
}

func TestPairID(t *testing.T) {
	if (BankID{0, 0, 5}).PairID() != (BankID{0, 0, 4}) {
		t.Fatal("bank 5 pairs with 4")
	}
	if (BankID{0, 0, 4}).PairID() != (BankID{0, 0, 4}) {
		t.Fatal("bank 4 is its own pair head")
	}
}

func TestMeanTimeBetweenChannelFaultsAnalytic(t *testing.T) {
	topo := PaperTopology(8)
	// At 44 FIT/chip: λ = 44e-9·288 per hour; mean gap to a fault in a
	// different channel = 1/(λ·7/8).
	got := MeanTimeBetweenChannelFaults(44, topo)
	want := 1 / (44e-9 * 288 * 7 / 8)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
	// Inverse proportionality in the FIT rate (Fig. 2's shape).
	if r := MeanTimeBetweenChannelFaults(22, topo) / got; math.Abs(r-2) > 1e-9 {
		t.Fatalf("halving FIT must double the gap, ratio %v", r)
	}
}

func TestMonteCarloMatchesAnalyticGap(t *testing.T) {
	topo := PaperTopology(8)
	fit := 2000.0 // inflated rate so trials are cheap
	want := MeanTimeBetweenChannelFaults(fit, topo)
	got := MeasureChannelFaultGaps(fit, topo, 60, 99, 1)
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("MC gap %v, analytic %v", got, want)
	}
}

func TestProbMultiChannelWindowPaperPoint(t *testing.T) {
	// §VI-C: eight-hour window, 100 FIT/chip, 7 years → ≈0.0002.
	topo := PaperTopology(8)
	got := ProbMultiChannelInWindow(100, topo, 8, 7*HoursPerYear)
	if got < 1.0e-4 || got > 3.0e-4 {
		t.Fatalf("P = %v, want ≈2e-4 (paper)", got)
	}
}

func TestProbMultiChannelWindowMonotonic(t *testing.T) {
	topo := PaperTopology(8)
	f := func(rawW, rawF uint8) bool {
		w := 1 + float64(rawW%100)
		fit := 10 + float64(rawF%200)
		p1 := ProbMultiChannelInWindow(fit, topo, w, 7*HoursPerYear)
		p2 := ProbMultiChannelInWindow(fit, topo, 2*w, 7*HoursPerYear)
		p3 := ProbMultiChannelInWindow(2*fit, topo, w, 7*HoursPerYear)
		return p2 >= p1 && p3 >= p1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateEOLPaperRange(t *testing.T) {
	// Fig. 8: about 0.4% of memory on average ends up with correction bits
	// after seven years for the paper's topology and rates.
	topo := PaperTopology(8)
	res := SimulateEOL(topo, DefaultRates(), 7*HoursPerYear, 4000, 11, 0)
	if res.MeanFraction < 0.001 || res.MeanFraction > 0.012 {
		t.Fatalf("mean EOL fraction %v, expected order of 0.4%%", res.MeanFraction)
	}
	if res.P999Fraction < res.MeanFraction {
		t.Fatal("99.9th percentile below mean")
	}
	if len(res.Fractions) != 4000 {
		t.Fatal("missing per-trial fractions")
	}
}

func TestSimulateEOLMoreChannelsMoreAbsoluteFaults(t *testing.T) {
	// The FRACTION marked stays roughly flat across channel counts (each
	// channel adds both faults and capacity); check it doesn't blow up.
	r2 := SimulateEOL(PaperTopology(2), DefaultRates(), 7*HoursPerYear, 2000, 3, 0)
	r16 := SimulateEOL(PaperTopology(16), DefaultRates(), 7*HoursPerYear, 2000, 3, 0)
	if r16.MeanFraction > 5*r2.MeanFraction+0.01 {
		t.Fatalf("fraction not stable: 2ch=%v 16ch=%v", r2.MeanFraction, r16.MeanFraction)
	}
}

// TestSimulateEOLWorkerCountInvariance is the determinism regression test:
// the same campaign seed must produce bit-identical results whether trials
// run serially or spread over many goroutines.
func TestSimulateEOLWorkerCountInvariance(t *testing.T) {
	topo := PaperTopology(8)
	serial := SimulateEOL(topo, DefaultRates(), 7*HoursPerYear, 600, 11, 1)
	wide := SimulateEOL(topo, DefaultRates(), 7*HoursPerYear, 600, 11, 8)
	if serial.MeanFraction != wide.MeanFraction || serial.P999Fraction != wide.P999Fraction {
		t.Fatalf("workers=1 (%v/%v) diverged from workers=8 (%v/%v)",
			serial.MeanFraction, serial.P999Fraction, wide.MeanFraction, wide.P999Fraction)
	}
	for i := range serial.Fractions {
		if serial.Fractions[i] != wide.Fractions[i] {
			t.Fatalf("per-trial fraction %d diverged: %v vs %v", i, serial.Fractions[i], wide.Fractions[i])
		}
	}
}

func TestMeasureChannelFaultGapsWorkerCountInvariance(t *testing.T) {
	topo := PaperTopology(8)
	serial := MeasureChannelFaultGaps(2000, topo, 30, 99, 1)
	wide := MeasureChannelFaultGaps(2000, topo, 30, 99, 8)
	if serial != wide {
		t.Fatalf("workers=1 gap %v diverged from workers=8 gap %v", serial, wide)
	}
}

func TestTrialSeedsDistinct(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := TrialSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("trials %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
}

func TestHPCStallFraction(t *testing.T) {
	// §VI-B: the paper estimates 0.35% for 2PB/128GB-nodes/1GB-s NICs.
	// Our fault mix differs slightly; require the same order of magnitude.
	got := DefaultHPCConfig().StallFraction()
	if got < 0.0005 || got > 0.02 {
		t.Fatalf("stall fraction %v, want order of 0.35%%", got)
	}
}

func TestCounterSRAMBytes(t *testing.T) {
	// §III-E: 512B for a 512GB system with 1024 banks.
	if got := CounterSRAMBytes(1024); got != 256 {
		// 1024 banks = 512 pairs × 0.5B = 256B; the paper says 512B for
		// 1024 banks at 0.5B per pair — i.e. it counts 1024 PAIRS. Accept
		// the paper's own arithmetic by checking pairs→bytes directly.
		t.Fatalf("CounterSRAMBytes(1024) = %d, want 256 (0.5B per pair)", got)
	}
}

func TestMaxRetiredPages(t *testing.T) {
	// §III-E: threshold 4 in an N-channel system retires ≤ 4·(N−1) pages.
	if got := MaxRetiredPages(4, 8); got != 28 {
		t.Fatalf("got %d want 28", got)
	}
}

func TestUndetectedErrorYears(t *testing.T) {
	// §VI-D: once per ~300,000 years for an eight-channel system.
	got := UndetectedErrorYears(PaperTopology(8), DefaultRates(), 4)
	if got < 3e4 || got > 3e7 {
		t.Fatalf("undetected-error interval %v years, want order of 3e5", got)
	}
}
