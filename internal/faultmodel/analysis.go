package faultmodel

import "math"

// This file holds the closed-form system-level estimates of §III-E, §VI-B
// and §VI-D of the paper.

// HPCConfig parameterizes the §VI-B large-HPC-system stall estimate.
type HPCConfig struct {
	TotalMemoryBytes float64 // e.g. 2 PB
	NodeMemoryBytes  float64 // e.g. 128 GB
	NICBandwidth     float64 // bytes/s, e.g. 1 GB/s
	MemBandwidth     float64 // bytes/s per node, for the reconstruction read
	ChipCapacityBits float64 // e.g. 2 Gb devices
	Rates            Rates
}

// DefaultHPCConfig returns the paper's §VI-B scenario.
func DefaultHPCConfig() HPCConfig {
	return HPCConfig{
		TotalMemoryBytes: 2e15,
		NodeMemoryBytes:  128e9,
		NICBandwidth:     1e9,
		MemBandwidth:     12.8e9, // one DDR3-1600 channel's worth
		ChipCapacityBits: 2e9,
		Rates:            DefaultRates(),
	}
}

// StallFraction returns the expected fraction of time the whole HPC system
// is stalled for thread migration plus ECC-correction-bit reconstruction.
// Migration is performed on every column, bank, multi-bank or multi-rank
// fault (§VI-B).
func (c HPCConfig) StallFraction() float64 {
	chipsPerNode := c.NodeMemoryBytes * 8 / c.ChipCapacityBits
	nodes := c.TotalMemoryBytes / c.NodeMemoryBytes
	migRate := c.Rates[FaultColumn] + c.Rates[FaultBank] + c.Rates[FaultMultiBank] + c.Rates[FaultMultiRank]
	eventsPerHour := nodes * chipsPerNode * migRate * 1e-9
	stallSeconds := c.NodeMemoryBytes/c.NICBandwidth + c.NodeMemoryBytes/c.MemBandwidth
	return eventsPerHour * stallSeconds / 3600
}

// CounterSRAMBytes returns the on-chip error-counter storage required by
// ECC Parity for a memory system with the given number of rank-level banks
// (§III-E: half a byte per bank pair; 512B for 1024 banks).
func CounterSRAMBytes(totalBanks int) int {
	pairs := totalBanks / 2
	return (pairs + 1) / 2 // 0.5 B per pair
}

// MaxRetiredPages returns the worst-case number of pages retired before a
// bank pair's error counter saturates (§III-E: 4·(N−1) pages for threshold
// 4 in an N-channel system).
func MaxRetiredPages(threshold, channels int) int {
	return threshold * (channels - 1)
}

// UndetectedErrorYears estimates the §VI-D mean time (in years) between
// undetected errors across all banks not yet recorded as faulty, for the
// modified LOT-ECC5+Parity encoding: a single check symbol per word can
// miss an error affecting two data symbols with probability 2^-16; at most
// `threshold` errors slip through per fault before the bank pair is marked.
func UndetectedErrorYears(topo Topology, rates Rates, threshold int) float64 {
	// Faults per hour that produce multi-symbol errors in a rank (x16
	// devices contribute two symbols per word): pessimistically, all
	// device-level faults.
	lambda := (rates[FaultColumn] + rates[FaultRow] + rates[FaultBank] +
		rates[FaultMultiBank] + rates[FaultMultiRank]) * 1e-9 * float64(topo.TotalChips())
	pMissPerError := math.Pow(2, -16)
	// Each fault is exposed to at most `threshold` unverified errors
	// before marking.
	undetectedPerHour := lambda * float64(threshold) * pMissPerError
	return 1 / undetectedPerHour / HoursPerYear
}
