package faultmodel

import (
	"context"
	"reflect"
	"testing"
)

func harpCfg(workers int) HarpConfig {
	return HarpConfig{
		Words: 64, AtRiskPerWord: 3, ErrorProb: 0.25,
		Rounds: 12, Trials: 40, Seed: 9, Workers: workers,
	}
}

// TestHarpDeterminism: the campaign is bit-identical at any worker count.
func TestHarpDeterminism(t *testing.T) {
	a := ProfileHarp(harpCfg(1))
	b := ProfileHarp(harpCfg(8))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("harp campaign differs between 1 and 8 workers")
	}
}

// TestHarpCoverage: raw (bypass) profiling dominates active profiling —
// the corrector hides single-bit fires — both curves are monotone
// cumulative fractions, and active reads observe miscorrection artifacts.
func TestHarpCoverage(t *testing.T) {
	res := ProfileHarp(harpCfg(0))
	if len(res.Rounds) != 12 {
		t.Fatalf("got %d rounds", len(res.Rounds))
	}
	prev := HarpRound{}
	for _, r := range res.Rounds {
		if r.RawCoverage < r.ActiveCoverage {
			t.Fatalf("round %d: active coverage %.3f exceeds raw %.3f", r.Round, r.ActiveCoverage, r.RawCoverage)
		}
		if r.RawCoverage < prev.RawCoverage || r.ActiveCoverage < prev.ActiveCoverage {
			t.Fatalf("round %d: coverage regressed", r.Round)
		}
		if r.RawCoverage < 0 || r.RawCoverage > 1 || r.MiscorrectionRate < 0 || r.MiscorrectionRate > 1 {
			t.Fatalf("round %d: out-of-range fractions %+v", r.Round, r)
		}
		prev = r
	}
	final := res.Final()
	if final.RawCoverage < 0.9 {
		t.Errorf("12 rounds at p=0.25 should locate most at-risk bits raw, got %.3f", final.RawCoverage)
	}
	if !(final.RawCoverage > final.ActiveCoverage) {
		t.Errorf("raw profiling should strictly beat active by end of campaign (%.3f vs %.3f)", final.RawCoverage, final.ActiveCoverage)
	}
	if final.MiscorrectionRate == 0 {
		t.Error("multi-bit fires should pollute active observations with miscorrections")
	}
}

// TestHarpValidate: degenerate configs are rejected before any work.
func TestHarpValidate(t *testing.T) {
	base := harpCfg(1)
	for name, mut := range map[string]func(*HarpConfig){
		"words":    func(c *HarpConfig) { c.Words = 0 },
		"atrisk":   func(c *HarpConfig) { c.AtRiskPerWord = 65 },
		"prob":     func(c *HarpConfig) { c.ErrorProb = 0 },
		"probHigh": func(c *HarpConfig) { c.ErrorProb = 1.5 },
		"rounds":   func(c *HarpConfig) { c.Rounds = -1 },
		"trials":   func(c *HarpConfig) { c.Trials = 0 },
	} {
		c := base
		mut(&c)
		if _, err := ProfileHarpContext(context.Background(), c); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

// TestHarpCancel: a canceled context aborts the campaign with its error.
func TestHarpCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ProfileHarpContext(ctx, harpCfg(1)); err == nil {
		t.Fatal("canceled campaign should fail")
	}
}
