// Package faultmodel implements the DRAM device-failure model used by the
// paper's reliability studies: per-chip FIT rates split by fault granularity
// (after the Sridharan et al. DDR3 field studies the paper cites), an
// exponential/Poisson arrival process, and Monte Carlo simulation of
// multi-year system lifetimes over configurable channel/rank/chip
// topologies.
//
// It regenerates Fig. 2 (mean time between faults in different channels),
// Fig. 8 (fraction of memory with materialized correction bits at end of
// life), Fig. 18 (probability of faults in more than one channel within a
// scrub window), and the EOL columns of Table III.
package faultmodel

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"eccparity/internal/parallel"
)

// FaultType is the granularity of a DRAM device fault.
type FaultType int

// Fault granularities, small to large. The paper's error-counter threshold
// exists precisely to separate the first four (handled by page retirement)
// from the device-level ones (which mark a bank pair as faulty).
const (
	FaultBit FaultType = iota
	FaultWord
	FaultColumn
	FaultRow
	FaultBank
	FaultMultiBank
	FaultMultiRank
	numFaultTypes
)

// String returns the conventional name of the fault type.
func (t FaultType) String() string {
	switch t {
	case FaultBit:
		return "bit"
	case FaultWord:
		return "word"
	case FaultColumn:
		return "column"
	case FaultRow:
		return "row"
	case FaultBank:
		return "bank"
	case FaultMultiBank:
		return "multi-bank"
	case FaultMultiRank:
		return "multi-rank"
	}
	return "unknown"
}

// IsLarge reports whether the fault is device-level, i.e. expected to
// saturate a bank pair's error counter and trigger materialization of the
// ECC correction bits (§III-C).
func (t FaultType) IsLarge() bool { return t >= FaultBank }

// Rates holds the per-chip FIT (failures per 10^9 device-hours) of each
// fault type.
type Rates [numFaultTypes]float64

// Total returns the summed per-chip FIT.
func (r Rates) Total() float64 {
	var s float64
	for _, v := range r {
		s += v
	}
	return s
}

// Scaled returns the rates scaled so the total equals fit.
func (r Rates) Scaled(fit float64) Rates {
	t := r.Total()
	var out Rates
	for i, v := range r {
		out[i] = v * fit / t
	}
	return out
}

// DefaultRates approximates the vendor-average DDR3 fault mix of Sridharan
// et al. (the paper's reference [21]) normalized to the paper's quoted
// average of 44 FIT per chip. The split (≈40% bit, 2% word, 12% column,
// 18% row, 22% bank, 3.5% multi-bank, 2.5% multi-rank) follows the relative
// magnitudes reported in the field studies.
func DefaultRates() Rates {
	return Rates{
		FaultBit:       17.6,
		FaultWord:      0.9,
		FaultColumn:    5.3,
		FaultRow:       7.9,
		FaultBank:      9.7,
		FaultMultiBank: 1.5,
		FaultMultiRank: 1.1,
	}
}

// Topology describes a memory system for the reliability model.
type Topology struct {
	Channels        int
	RanksPerChannel int
	ChipsPerRank    int
	BanksPerRank    int // rank-level banks (DDR3: 8)
}

// PaperTopology returns the configuration used throughout the paper's
// reliability sections: four ranks per channel, nine chips per rank,
// eight banks.
func PaperTopology(channels int) Topology {
	return Topology{Channels: channels, RanksPerChannel: 4, ChipsPerRank: 9, BanksPerRank: 8}
}

// ChipsPerChannel returns the device count of one channel.
func (t Topology) ChipsPerChannel() int { return t.RanksPerChannel * t.ChipsPerRank }

// TotalChips returns the device count of the system.
func (t Topology) TotalChips() int { return t.Channels * t.ChipsPerChannel() }

// TotalBanks returns the rank-level bank count of the system.
func (t Topology) TotalBanks() int { return t.Channels * t.RanksPerChannel * t.BanksPerRank }

// HoursPerYear is the conversion used throughout (365.25 days).
const HoursPerYear = 8766.0

// Fault is one sampled device fault.
type Fault struct {
	Time    float64 // hours since system start
	Type    FaultType
	Channel int
	Rank    int
	Chip    int
	Bank    int // primary affected rank-level bank
}

// Model samples fault sequences for a topology. A Model holds no mutable
// state — randomness is passed into each sampling call — so one Model is
// safe to share across concurrent Monte Carlo trials; each trial owns a
// private RNG derived with TrialSeed.
type Model struct {
	Topo  Topology
	Rates Rates
}

// NewModel builds a sampler for the topology.
func NewModel(topo Topology, rates Rates) *Model {
	return &Model{Topo: topo, Rates: rates}
}

// trialSeedPrime spreads trial indices across the seed space (the golden-
// ratio prime ⌊2^32/φ⌋).
const trialSeedPrime = 2654435761

// TrialSeed derives the private RNG seed of Monte Carlo trial i from a
// campaign seed. A trial's random stream depends only on (seed, trial) —
// never on scheduling or worker count — which is what makes campaign
// results bit-identical whether they run on one goroutine or NumCPU.
func TrialSeed(seed int64, trial int) int64 {
	return seed ^ int64(trial)*trialSeedPrime
}

// SampleLifetime draws the system's fault sequence over the given horizon
// as a Poisson process with the model's aggregate rate; each fault is
// attributed to a uniformly random chip and typed by the rate mix. The
// caller owns rng — per-trial generators keep concurrent trials independent
// and deterministic.
func (m *Model) SampleLifetime(rng *rand.Rand, hours float64) []Fault {
	lambda := m.Rates.Total() * 1e-9 * float64(m.Topo.TotalChips()) // faults per hour
	var faults []Fault
	t := 0.0
	for {
		t += rng.ExpFloat64() / lambda
		if t > hours {
			break
		}
		faults = append(faults, m.sampleFault(rng, t))
	}
	return faults
}

// sampleFault places one fault at time t.
func (m *Model) sampleFault(rng *rand.Rand, t float64) Fault {
	f := Fault{
		Time:    t,
		Type:    m.sampleType(rng),
		Channel: rng.Intn(m.Topo.Channels),
		Rank:    rng.Intn(m.Topo.RanksPerChannel),
		Chip:    rng.Intn(m.Topo.ChipsPerRank),
		Bank:    rng.Intn(m.Topo.BanksPerRank),
	}
	return f
}

func (m *Model) sampleType(rng *rand.Rand) FaultType {
	x := rng.Float64() * m.Rates.Total()
	for i, v := range m.Rates {
		if x < v {
			return FaultType(i)
		}
		x -= v
	}
	return FaultType(numFaultTypes - 1)
}

// AffectedBanks returns the rank-level banks whose bank pair would be
// marked faulty by this fault, per the paper's policy: only device-level
// faults mark banks; a bank fault marks its bank, a multi-bank fault marks
// a contiguous half of the chip's banks, and a multi-rank fault marks every
// bank of two adjacent ranks.
func (f Fault) AffectedBanks(topo Topology) []BankID {
	switch f.Type {
	case FaultBank:
		return []BankID{{f.Channel, f.Rank, f.Bank}}
	case FaultMultiBank:
		n := topo.BanksPerRank / 2
		start := (f.Bank / n) * n
		out := make([]BankID, 0, n)
		for b := start; b < start+n; b++ {
			out = append(out, BankID{f.Channel, f.Rank, b})
		}
		return out
	case FaultMultiRank:
		r2 := (f.Rank + 1) % topo.RanksPerChannel
		out := make([]BankID, 0, 2*topo.BanksPerRank)
		for b := 0; b < topo.BanksPerRank; b++ {
			out = append(out, BankID{f.Channel, f.Rank, b}, BankID{f.Channel, r2, b})
		}
		return out
	default:
		return nil
	}
}

// BankID identifies one rank-level bank in the system.
type BankID struct {
	Channel, Rank, Bank int
}

// PairID returns the bank-pair identifier the error counters track (banks
// are paired with their neighbour within the same rank, §III-B).
func (b BankID) PairID() BankID {
	return BankID{b.Channel, b.Rank, b.Bank &^ 1}
}

// MeanTimeBetweenChannelFaults returns the expected time in hours between
// consecutive faults that land in *different* channels, for a per-chip rate
// of fit (Fig. 2): the system inter-fault time scaled by the probability
// that the next fault hits another channel.
func MeanTimeBetweenChannelFaults(fit float64, topo Topology) float64 {
	lambda := fit * 1e-9 * float64(topo.TotalChips())
	pDifferent := float64(topo.Channels-1) / float64(topo.Channels)
	return 1 / (lambda * pDifferent)
}

// ProbMultiChannelInWindow returns the probability that, somewhere within a
// lifetime of lifetimeHours, two or more channels develop faults inside the
// same detection window of windowHours (Fig. 18). Analytic form: per
// window, channels fault independently with p = 1−exp(−λ_chan·w); the
// lifetime is lifetimeHours/windowHours independent windows.
func ProbMultiChannelInWindow(fit float64, topo Topology, windowHours, lifetimeHours float64) float64 {
	lambdaChan := fit * 1e-9 * float64(topo.ChipsPerChannel())
	p := 1 - math.Exp(-lambdaChan*windowHours)
	n := topo.Channels
	// P(≥2 channels fault in one window) = 1 − (1−p)^n − n·p·(1−p)^(n−1).
	pw := 1 - math.Pow(1-p, float64(n)) - float64(n)*p*math.Pow(1-p, float64(n-1))
	windows := lifetimeHours / windowHours
	return 1 - math.Pow(1-pw, windows)
}

// EOLResult summarizes a Monte Carlo end-of-life study (Fig. 8).
type EOLResult struct {
	MeanFraction float64 // average fraction of memory with correction bits
	P999Fraction float64 // 99.9th percentile across simulated systems
	Fractions    []float64
}

// SimulateEOL runs trials independent 7-year (or custom-horizon) system
// lifetimes and reports the fraction of memory whose bank pairs were marked
// faulty — i.e. ended up with the actual ECC correction bits stored in
// memory rather than ECC parities. Trials fan out over at most workers
// goroutines (≤0 means NumCPU); each trial's RNG derives from TrialSeed, so
// the result is bit-identical at any worker count. It is the uninterruptible
// form of SimulateEOLContext.
func SimulateEOL(topo Topology, rates Rates, hours float64, trials int, seed int64, workers int) EOLResult {
	res, err := SimulateEOLContext(context.Background(), topo, rates, hours, trials, seed, workers)
	if err != nil {
		panic(err) // Background is never canceled
	}
	return res
}

// SimulateEOLContext is SimulateEOL with cancellation: the trial pool polls
// ctx between trials and returns ctx's error once canceled, discarding any
// partial campaign. A completed campaign is byte-identical to SimulateEOL.
func SimulateEOLContext(ctx context.Context, topo Topology, rates Rates, hours float64, trials int, seed int64, workers int) (EOLResult, error) {
	if trials <= 0 {
		return EOLResult{}, nil
	}
	m := NewModel(topo, rates)
	fractions, err := parallel.CollectCtx(ctx, trials, workers, func(i int) float64 {
		rng := rand.New(rand.NewSource(TrialSeed(seed, i)))
		faults := m.SampleLifetime(rng, hours)
		marked := map[BankID]bool{}
		for _, f := range faults {
			for _, b := range f.AffectedBanks(topo) {
				p := b.PairID()
				marked[p] = true
				marked[BankID{p.Channel, p.Rank, p.Bank + 1}] = true
			}
		}
		return float64(len(marked)) / float64(topo.TotalBanks())
	})
	if err != nil {
		return EOLResult{}, err
	}
	sort.Float64s(fractions)
	var sum float64
	for _, f := range fractions {
		sum += f
	}
	idx := int(math.Ceil(0.999*float64(trials))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= trials {
		idx = trials - 1
	}
	return EOLResult{
		MeanFraction: sum / float64(trials),
		P999Fraction: fractions[idx],
		Fractions:    fractions,
	}, nil
}

// MeasureChannelFaultGaps runs a Monte Carlo estimate of the Fig. 2
// quantity: the mean time between consecutive faults in different channels.
// Trials fan out over at most workers goroutines (≤0 means NumCPU);
// per-trial partial sums are reduced in trial order so the result is
// bit-identical at any worker count. It is the uninterruptible form of
// MeasureChannelFaultGapsContext.
func MeasureChannelFaultGaps(fit float64, topo Topology, trials int, seed int64, workers int) float64 {
	v, err := MeasureChannelFaultGapsContext(context.Background(), fit, topo, trials, seed, workers)
	if err != nil {
		panic(err) // Background is never canceled
	}
	return v
}

// MeasureChannelFaultGapsContext is MeasureChannelFaultGaps with
// cancellation: the trial pool polls ctx between trials and returns ctx's
// error once canceled.
func MeasureChannelFaultGapsContext(ctx context.Context, fit float64, topo Topology, trials int, seed int64, workers int) (float64, error) {
	m := NewModel(topo, DefaultRates().Scaled(fit))
	// Long horizon so that most trials observe several faults.
	horizon := 400 * HoursPerYear
	type gapSum struct {
		sum float64
		n   int
	}
	parts, err := parallel.CollectCtx(ctx, trials, workers, func(i int) gapSum {
		rng := rand.New(rand.NewSource(TrialSeed(seed, i)))
		faults := m.SampleLifetime(rng, horizon)
		// For each fault, the time until the NEXT fault in a different
		// channel (skipping same-channel arrivals), matching the paper's
		// "mean time between faults in different channels".
		var g gapSum
		for j := 0; j < len(faults); j++ {
			for k := j + 1; k < len(faults); k++ {
				if faults[k].Channel != faults[j].Channel {
					g.sum += faults[k].Time - faults[j].Time
					g.n++
					break
				}
			}
		}
		return g
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	var n int
	for _, g := range parts {
		sum += g.sum
		n += g.n
	}
	if n == 0 {
		return math.Inf(1), nil
	}
	return sum / float64(n), nil
}
