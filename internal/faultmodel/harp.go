package faultmodel

// HARP-style error profiling of a memory with per-chip on-die ECC (after
// "HARP: Practically and Effectively Identifying Uncorrectable Errors in
// Memory Chips That Use On-Die ECC"). The profiler repeatedly reads words
// that contain a fixed set of at-risk (weak) cells, each of which flips
// with some probability per round, and tries to locate every at-risk bit:
//
//   - reading through the active on-die corrector, single-bit errors are
//     repaired invisibly (the profiler learns nothing) and multi-bit
//     errors may surface as miscorrections — error positions that were
//     never at risk — so coverage climbs slowly and the observed position
//     set is polluted;
//   - reading raw (corrector bypassed), every error that fires is visible
//     directly, which is HARP's case for a bypass-read profiling mode.
//
// ProfileHarp measures both curves round by round over a Monte Carlo
// campaign, with the same TrialSeed fan-out discipline as the EOL studies
// so results are bit-identical at any worker count.

import (
	"context"
	"fmt"
	"math/rand"

	"eccparity/internal/dram"
	"eccparity/internal/parallel"
)

// HarpConfig parameterizes one profiling campaign.
type HarpConfig struct {
	Words         int     // profiled on-die codewords (64 data bits each)
	AtRiskPerWord int     // weak data bits per word
	ErrorProb     float64 // per-round flip probability of each at-risk bit
	Rounds        int     // profiling rounds
	Trials        int     // Monte Carlo trials
	Seed          int64
	Workers       int // trial-pool size (<=0 means NumCPU)
}

// Validate rejects degenerate campaigns.
func (c HarpConfig) Validate() error {
	switch {
	case c.Words <= 0:
		return fmt.Errorf("faultmodel: harp: words must be positive, got %d", c.Words)
	case c.AtRiskPerWord <= 0 || c.AtRiskPerWord > 64:
		return fmt.Errorf("faultmodel: harp: at-risk bits per word must be in 1..64, got %d", c.AtRiskPerWord)
	case c.ErrorProb <= 0 || c.ErrorProb > 1:
		return fmt.Errorf("faultmodel: harp: error probability must be in (0,1], got %g", c.ErrorProb)
	case c.Rounds <= 0:
		return fmt.Errorf("faultmodel: harp: rounds must be positive, got %d", c.Rounds)
	case c.Trials <= 0:
		return fmt.Errorf("faultmodel: harp: trials must be positive, got %d", c.Trials)
	}
	return nil
}

// HarpRound is the campaign state after one profiling round, averaged over
// trials. Coverages are cumulative fractions of all at-risk bits located so
// far; MiscorrectionRate is the cumulative fraction of active-read observed
// error positions that were never at risk (on-die miscorrection artifacts).
type HarpRound struct {
	Round             int
	RawCoverage       float64
	ActiveCoverage    float64
	MiscorrectionRate float64
}

// HarpResult is a full profiling campaign.
type HarpResult struct {
	Rounds []HarpRound
}

// Final returns the last round's state.
func (r HarpResult) Final() HarpRound {
	if len(r.Rounds) == 0 {
		return HarpRound{}
	}
	return r.Rounds[len(r.Rounds)-1]
}

// harpWordBytes is the profiled word size: one x8 chip's 64-bit fetch.
const harpWordBytes = 8

// harpAcc is one trial's cumulative counters after one round.
type harpAcc struct {
	rawFound    int // at-risk bits located by raw reads
	activeFound int // at-risk bits located through the corrector
	trueObs     int // active-read observations at genuine at-risk positions
	falseObs    int // active-read observations at never-at-risk positions
}

// ProfileHarp runs the campaign; it is the uninterruptible form of
// ProfileHarpContext.
func ProfileHarp(cfg HarpConfig) HarpResult {
	res, err := ProfileHarpContext(context.Background(), cfg)
	if err != nil {
		panic(err) // Background is never canceled; cfg errors surface here
	}
	return res
}

// ProfileHarpContext runs the campaign with cancellation. Trials fan out
// over at most cfg.Workers goroutines; each trial's RNG derives from
// TrialSeed(cfg.Seed, trial) and partial counters reduce in trial order, so
// a completed campaign is bit-identical at any worker count.
func ProfileHarpContext(ctx context.Context, cfg HarpConfig) (HarpResult, error) {
	if err := cfg.Validate(); err != nil {
		return HarpResult{}, err
	}
	codec := dram.NewOnDieSEC(harpWordBytes)
	perTrial, err := parallel.CollectCtx(ctx, cfg.Trials, cfg.Workers, func(i int) []harpAcc {
		rng := rand.New(rand.NewSource(TrialSeed(cfg.Seed, i)))
		return harpTrial(rng, codec, cfg)
	})
	if err != nil {
		return HarpResult{}, err
	}
	atRiskTotal := cfg.Trials * cfg.Words * cfg.AtRiskPerWord
	out := HarpResult{Rounds: make([]HarpRound, cfg.Rounds)}
	for round := 0; round < cfg.Rounds; round++ {
		var sum harpAcc
		for _, rounds := range perTrial {
			sum.rawFound += rounds[round].rawFound
			sum.activeFound += rounds[round].activeFound
			sum.trueObs += rounds[round].trueObs
			sum.falseObs += rounds[round].falseObs
		}
		hr := HarpRound{
			Round:          round + 1,
			RawCoverage:    float64(sum.rawFound) / float64(atRiskTotal),
			ActiveCoverage: float64(sum.activeFound) / float64(atRiskTotal),
		}
		if obs := sum.trueObs + sum.falseObs; obs > 0 {
			hr.MiscorrectionRate = float64(sum.falseObs) / float64(obs)
		}
		out.Rounds[round] = hr
	}
	return out, nil
}

// harpTrial profiles one trial's word population and returns cumulative
// counters per round.
func harpTrial(rng *rand.Rand, codec *dram.OnDieSEC, cfg HarpConfig) []harpAcc {
	type word struct {
		data   []byte
		checks []byte
		atRisk []int        // weak data-bit positions
		isAt   map[int]bool // membership of atRisk
		rawHit []bool       // located by raw reads, indexed like atRisk
		actHit []bool       // located through the corrector
	}
	words := make([]word, cfg.Words)
	for w := range words {
		data := make([]byte, harpWordBytes)
		rng.Read(data)
		perm := rng.Perm(codec.DataBits())[:cfg.AtRiskPerWord]
		isAt := make(map[int]bool, len(perm))
		for _, b := range perm {
			isAt[b] = true
		}
		words[w] = word{
			data: data, checks: codec.Encode(data),
			atRisk: perm, isAt: isAt,
			rawHit: make([]bool, len(perm)), actHit: make([]bool, len(perm)),
		}
	}
	rounds := make([]harpAcc, cfg.Rounds)
	var acc harpAcc
	falseSeen := map[[2]int]bool{} // (word, bit) miscorrection artifacts counted once
	for round := 0; round < cfg.Rounds; round++ {
		for w := range words {
			wd := &words[w]
			var flipped []int
			for _, b := range wd.atRisk {
				if rng.Float64() < cfg.ErrorProb {
					flipped = append(flipped, b)
				}
			}
			if len(flipped) == 0 {
				continue
			}
			// Raw read: every fired bit is visible directly.
			for _, b := range flipped {
				for j, ar := range wd.atRisk {
					if ar == b && !wd.rawHit[j] {
						wd.rawHit[j] = true
						acc.rawFound++
					}
				}
			}
			// Active read: the corrector runs first; the profiler compares
			// the post-correction word against the expected data.
			data := append([]byte(nil), wd.data...)
			checks := append([]byte(nil), wd.checks...)
			for _, b := range flipped {
				data[b/8] ^= 1 << uint(b%8)
			}
			codec.Scrub(data, checks)
			for b := 0; b < codec.DataBits(); b++ {
				if (data[b/8]^wd.data[b/8])&(1<<uint(b%8)) == 0 {
					continue
				}
				if wd.isAt[b] {
					acc.trueObs++
					for j, ar := range wd.atRisk {
						if ar == b && !wd.actHit[j] {
							wd.actHit[j] = true
							acc.activeFound++
						}
					}
				} else if key := [2]int{w, b}; !falseSeen[key] {
					falseSeen[key] = true
					acc.falseObs++
				}
			}
		}
		rounds[round] = acc
	}
	return rounds
}
