package ecc

// Intra-chip checksums used for localizing error detection (LOT-ECC's LED
// tier, RAIM's per-DIMM channel checksums, Multi-ECC's line checksum).
//
// These are CRC-16/CCITT sums. CRC's GF(2)-linearity gives the guarantee
// the schemes rely on: for any fixed nonzero error pattern e,
// crc(x⊕e) = crc(x) ⊕ crc(e) ≠ crc(x), so a stuck bit-lane, a dead device
// driving a constant pattern, or any repeated-mask corruption is detected
// for EVERY data value — where an additive Fletcher sum can cancel. The
// 0xFFFF initial value makes an all-zero (dead-low) shard checksum nonzero.

// crc16Table is the CRC-16/CCITT (poly 0x1021) lookup table.
var crc16Table [256]uint16

func init() {
	for i := 0; i < 256; i++ {
		c := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if c&0x8000 != 0 {
				c = c<<1 ^ 0x1021
			} else {
				c <<= 1
			}
		}
		crc16Table[i] = c
	}
}

// checksum16 computes the 2-byte CRC of p.
func checksum16(p []byte) [2]byte {
	crc := uint16(0xFFFF)
	for _, x := range p {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^x]
	}
	return [2]byte{byte(crc >> 8), byte(crc)}
}

// checksum8 computes a 1-byte check of p (LOT-ECC9's per-chip LED budget
// is a single byte per 8-byte shard, so detection of an arbitrary fixed
// pattern can only be probabilistic at this width — as in real LOT-ECC).
func checksum8(p []byte) byte {
	s := checksum16(p)
	return s[0] ^ s[1]
}

// checksumMatches reports whether stored equals the recomputed checksum16.
func checksumMatches(shard []byte, stored [2]byte) bool {
	return checksum16(shard) == stored
}
