// Package ecc implements the base memory error-correction schemes evaluated
// in the ECC Parity paper (Jian & Kumar, SC'14) as real codecs over
// per-chip data shards:
//
//   - Chipkill36: 36-device commercial chipkill correct (32+4 x4 chips, 128B)
//   - Chipkill18: 18-device commercial chipkill correct (16+2 x4 chips, 64B)
//   - LOTECC5:    LOT-ECC with 5 chips/rank (4 x16 + 1 x8, 64B)
//   - LOTECC9:    LOT-ECC with 9 chips/rank (9 x8, 64B)
//   - MultiECC:   Multi-ECC (9 x8, 64B, multi-line compacted correction)
//   - RAIM:       commercial DIMM-kill correct (45 x4 = 5 DIMMs, 128B)
//   - RAIMParity: the 18-device RAIM rank used under RAIM + ECC Parity
//
// Every scheme separates its redundancy into DETECTION bits, which are
// recomputed and checked on each read, and CORRECTION bits, which are only
// consumed when an error has been detected. The correction-bit function of
// every scheme is GF(2)-linear in the data line — the property the ECC
// Parity overlay (package core) depends on: the XOR of the correction bits
// of lines in different channels is itself a meaningful parity from which
// any one line's correction bits can be re-derived.
//
// Fidelity note: the commercial chipkill codes are modelled as a detection
// code RS(34,32) over the data symbols plus a correction code RS(36,34)
// over data+detection symbols (one 8-bit symbol per chip), rather than the
// proprietary single 4-check-symbol code. Both structures devote two
// symbols to detection and two to correction, tolerate any single-chip
// failure, and have identical storage geometry, which is what the paper's
// evaluation consumes.
package ecc

import (
	"errors"
	"fmt"
)

// Common errors returned by scheme codecs.
var (
	ErrUncorrectable = errors.New("ecc: detected error exceeds correction capability")
	ErrBadLineSize   = errors.New("ecc: data length does not match scheme line size")
	ErrBadShards     = errors.New("ecc: codeword shard shape does not match scheme geometry")
)

// ChipClass describes a DRAM device type within a rank.
type ChipClass struct {
	Width int // I/O width in bits: 4, 8 or 16
	Count int // number of such chips in the rank
	// HalfCapacity marks devices with half the capacity of the rank's
	// widest device (LOT-ECC5's x8 LED chip).
	HalfCapacity bool
}

// Geometry captures the physical shape of one rank of a scheme plus the
// system-level configuration rows of Table II.
type Geometry struct {
	RankConfig      string      // e.g. "36 x4" or "4 x16 + 1 x8"
	Chips           []ChipClass // device mix of one rank
	LineSize        int         // data bytes delivered per access
	RanksPerChannel int
	// Logical channel counts for the two evaluated system sizes:
	// "dual-equivalent" and "quad-equivalent" commercial ECC systems.
	ChannelsDualEq int
	ChannelsQuadEq int
	PinsDualEq     int
	PinsQuadEq     int
}

// ChipsPerRank returns the total device count of one rank.
func (g Geometry) ChipsPerRank() int {
	n := 0
	for _, c := range g.Chips {
		n += c.Count
	}
	return n
}

// DataPinWidth returns the summed I/O width of the rank in bits.
func (g Geometry) DataPinWidth() int {
	w := 0
	for _, c := range g.Chips {
		w += c.Width * c.Count
	}
	return w
}

// Overheads reports the storage cost of a scheme as fractions of data
// capacity, split the way Fig. 1 of the paper splits them.
type Overheads struct {
	Detection  float64 // capacity overhead fraction due to detection bits
	Correction float64 // capacity overhead fraction due to correction bits
}

// Total returns the combined capacity overhead fraction.
func (o Overheads) Total() float64 { return o.Detection + o.Correction }

// Codeword is an encoded line as stored in one rank: one shard per chip.
// Shards[i] is the byte content contributed by chip i for this line.
// Correction bits are NOT part of the codeword; they are returned separately
// by Encode and stored wherever the configuration dictates (dedicated chips,
// separate memory lines, or the cross-channel ECC parity of package core).
type Codeword struct {
	Shards [][]byte
}

// Clone deep-copies the codeword, for fault-injection experiments.
func (c *Codeword) Clone() *Codeword {
	out := &Codeword{Shards: make([][]byte, len(c.Shards))}
	for i, s := range c.Shards {
		out.Shards[i] = append([]byte(nil), s...)
	}
	return out
}

// CorruptChip overwrites every byte of one chip's shard, simulating a
// device-level fault on the access path.
func (c *Codeword) CorruptChip(chip int, pattern byte) {
	for i := range c.Shards[chip] {
		c.Shards[chip][i] = pattern
	}
}

// XorChip flips bits within one chip's shard.
func (c *Codeword) XorChip(chip int, mask byte) {
	for i := range c.Shards[chip] {
		c.Shards[chip][i] ^= mask
	}
}

// DetectResult reports the outcome of the on-the-fly detection check.
type DetectResult struct {
	ErrorDetected bool
	// SuspectChips lists chips whose intra-chip check failed, for schemes
	// with localizing detection (LOT-ECC, RAIM DIMM checksums). Empty for
	// pure inter-chip detection codes.
	SuspectChips []int
}

// CorrectReport describes what a successful correction did.
type CorrectReport struct {
	CorrectedChips []int // chips whose contribution was repaired
	UsedErasure    bool  // correction used known-location (erasure) decoding
}

// Scheme is one complete memory resilience scheme.
type Scheme interface {
	// Name returns the paper's name for the scheme.
	Name() string
	// Geometry returns the rank/system shape (Table II row).
	Geometry() Geometry
	// Overheads returns the capacity overhead split (Fig. 1 / Table III).
	Overheads() Overheads

	// Encode splits a LineSize-byte data line into per-chip shards with
	// embedded detection bits, and returns the correction bits separately.
	Encode(data []byte) (*Codeword, []byte)
	// Detect recomputes detection bits and reports mismatches. It never
	// consumes correction bits; this is the read-critical-path check.
	Detect(cw *Codeword) DetectResult
	// Correct recovers the original data line from a (possibly corrupted)
	// codeword using the supplied correction bits. The correction bits are
	// trusted (the caller reconstructs or fetches them per its layout).
	Correct(cw *Codeword, corr []byte) ([]byte, *CorrectReport, error)
	// CorrectionBits computes the correction bits of a clean data line.
	// This function is GF(2)-linear in data.
	CorrectionBits(data []byte) []byte
	// CorrectionSize returns len(CorrectionBits) in bytes. The paper's R
	// ratio is CorrectionSize()/LineSize().
	CorrectionSize() int
	// Data extracts the data portion of a codeword without any checking.
	Data(cw *Codeword) []byte
}

// R returns the paper's R ratio (correction bits per data bit) for a scheme.
func R(s Scheme) float64 {
	return float64(s.CorrectionSize()) / float64(s.Geometry().LineSize)
}

// checkLine validates the input line length for a scheme.
func checkLine(s Scheme, data []byte) {
	if len(data) != s.Geometry().LineSize {
		panic(fmt.Sprintf("%s: %v: got %d want %d", s.Name(), ErrBadLineSize, len(data), s.Geometry().LineSize))
	}
}

// xorInto accumulates src into dst (dst ^= src); lengths must match.
func xorInto(dst, src []byte) {
	if len(dst) != len(src) {
		panic("ecc: xorInto length mismatch")
	}
	for i := range src {
		dst[i] ^= src[i]
	}
}

// XorBytes returns the bitwise XOR of two equal-length byte slices.
func XorBytes(a, b []byte) []byte {
	if len(a) != len(b) {
		panic("ecc: XorBytes length mismatch")
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}
