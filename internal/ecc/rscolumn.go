package ecc

import "eccparity/internal/gf"

// rsColumn wraps an RS(10,8) code applied per byte column of a line striped
// over 8 chips, for Multi-ECC's tier-2 correction.
type rsColumn struct {
	code *gf.RS
}

func newRSColumn() *rsColumn { return &rsColumn{code: gf.NewRS(10, 8)} }

// checks returns the 2 check symbols for one 8-byte column.
func (r *rsColumn) checks(col []byte) []byte { return r.code.Checks(col) }

// consistent reports whether every column of the line agrees with the
// supplied check bytes.
func (r *rsColumn) consistent(line, corr []byte) bool {
	cw := make([]byte, 10)
	for j := 0; j < meShard; j++ {
		for c := 0; c < meDataChips; c++ {
			cw[c] = line[c*meShard+j]
		}
		cw[8] = corr[2*j]
		cw[9] = corr[2*j+1]
		if r.code.HasError(cw) {
			return false
		}
	}
	return true
}

// eraseChip erasure-decodes every column with chip c erased and returns the
// repaired line.
func (r *rsColumn) eraseChip(line, corr []byte, c int) ([]byte, error) {
	out := append([]byte(nil), line...)
	cw := make([]byte, 10)
	for j := 0; j < meShard; j++ {
		for i := 0; i < meDataChips; i++ {
			cw[i] = line[i*meShard+j]
		}
		cw[8] = corr[2*j]
		cw[9] = corr[2*j+1]
		decoded, err := r.code.DecodeErasures(cw, []int{c})
		if err != nil {
			return nil, err
		}
		out[c*meShard+j] = decoded[c]
	}
	return out, nil
}
