package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randLine(r *rand.Rand, s Scheme) []byte {
	d := make([]byte, s.Geometry().LineSize)
	r.Read(d)
	return d
}

// TestEncodeDecodeClean: every scheme round-trips clean data with no error
// detected and no correction applied.
func TestEncodeDecodeClean(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, name := range Names() {
		s := ByName(name)
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				d := randLine(r, s)
				cw, corr := s.Encode(d)
				if res := s.Detect(cw); res.ErrorDetected {
					t.Fatalf("clean codeword flagged: %+v", res)
				}
				if !bytes.Equal(s.Data(cw), d) {
					t.Fatal("Data() does not round-trip")
				}
				got, rep, err := s.Correct(cw, corr)
				if err != nil {
					t.Fatalf("Correct on clean codeword: %v", err)
				}
				if len(rep.CorrectedChips) != 0 {
					t.Fatalf("clean codeword needed correction: %+v", rep)
				}
				if !bytes.Equal(got, d) {
					t.Fatal("corrected data mismatch")
				}
			}
		})
	}
}

// TestSingleChipKill: for every scheme, killing any single data shard is
// detected and corrected.
func TestSingleChipKill(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	patterns := []byte{0x00, 0xFF, 0xA5}
	for _, name := range Names() {
		s := ByName(name)
		info, _ := Info(name)
		t.Run(name, func(t *testing.T) {
			if !info.ChipKillCorrect {
				t.Skipf("%s has no rank-level code: a chip kill is beyond it by design", name)
			}
			d := randLine(r, s)
			cwClean, corr := s.Encode(d)
			nData := dataShardCount(s, cwClean)
			for chip := 0; chip < nData; chip++ {
				for _, pat := range patterns {
					cw := cwClean.Clone()
					cw.CorruptChip(chip, pat)
					if bytes.Equal(cw.Shards[chip], cwClean.Shards[chip]) {
						continue // pattern equals original shard
					}
					if res := s.Detect(cw); !res.ErrorDetected {
						// Short per-chip checksums can collide (≈2^-8 for
						// LOT-ECC9's one-byte LED — true of real LOT-ECC
						// too). The correction-bit consistency check (the
						// scrubber's path) must still catch and repair it.
						got, _, err := s.Correct(cw, corr)
						if err != nil || !bytes.Equal(got, d) {
							t.Fatalf("chip %d pattern %#x: undetected AND unrepairable (err=%v)", chip, pat, err)
						}
						continue
					}
					got, rep, err := s.Correct(cw, corr)
					if err != nil {
						t.Fatalf("chip %d pattern %#x: %v", chip, pat, err)
					}
					if !bytes.Equal(got, d) {
						t.Fatalf("chip %d pattern %#x: wrong data", chip, pat)
					}
					if len(rep.CorrectedChips) == 0 {
						t.Fatalf("chip %d pattern %#x: no chip reported corrected", chip, pat)
					}
				}
			}
		})
	}
}

// dataShardCount returns how many leading shards carry data for a scheme.
func dataShardCount(s Scheme, cw *Codeword) int {
	switch v := s.(type) {
	case *OnDie:
		// Composite shards map 1:1 onto the base scheme's.
		return dataShardCount(v.Base(), cw)
	}
	switch s.(type) {
	case *Chipkill36:
		return 32
	case *DoubleChipkill:
		return 32
	case *Chipkill18:
		return 16
	case *RAIM:
		return 4
	case *RAIMParity:
		return 4
	case *LOTECC:
		return len(cw.Shards) - 1
	case *LOTECC5RS:
		return len(cw.Shards) - 1
	case *MultiECC:
		return len(cw.Shards) - 1
	}
	return len(cw.Shards)
}

// TestSingleBitFlip: a one-bit error anywhere in a data shard is detected
// and corrected by every scheme.
func TestSingleBitFlip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, name := range Names() {
		s := ByName(name)
		t.Run(name, func(t *testing.T) {
			var onDie bool
			switch s.(type) {
			case *OnDie, *OnDieOnly:
				onDie = true
			}
			for trial := 0; trial < 30; trial++ {
				d := randLine(r, s)
				cw, corr := s.Encode(d)
				nData := dataShardCount(s, cw)
				chip := r.Intn(nData)
				byteIdx := r.Intn(len(cw.Shards[chip]))
				cw.Shards[chip][byteIdx] ^= 1 << uint(r.Intn(8))
				res := s.Detect(cw)
				if onDie {
					// The chip's corrector repairs a single-bit error
					// before the rank-level code ever sees it — the flip
					// must be INVISIBLE, not detected.
					if res.ErrorDetected {
						t.Fatalf("trial %d: on-die corrector leaked a single-bit flip in chip %d", trial, chip)
					}
				} else if !res.ErrorDetected {
					t.Fatalf("trial %d: bit flip in chip %d not detected", trial, chip)
				}
				got, _, err := s.Correct(cw, corr)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !bytes.Equal(got, d) {
					t.Fatalf("trial %d: wrong data", trial)
				}
			}
		})
	}
}

// TestDetectionChipFailure: killing the detection/checksum device must not
// corrupt data — correction recognizes the data as intact.
func TestDetectionChipFailure(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	cases := []struct {
		name    string
		s       Scheme
		detChip func(cw *Codeword) int
	}{
		{"lotecc5", NewLOTECC5(), func(cw *Codeword) int { return len(cw.Shards) - 1 }},
		{"lotecc9", NewLOTECC9(), func(cw *Codeword) int { return len(cw.Shards) - 1 }},
		{"multiecc", NewMultiECC(), func(cw *Codeword) int { return len(cw.Shards) - 1 }},
		{"raim18", NewRAIMParity(), func(cw *Codeword) int { return len(cw.Shards) - 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := randLine(r, tc.s)
			cw, corr := tc.s.Encode(d)
			cw.CorruptChip(tc.detChip(cw), 0x3C)
			got, _, err := tc.s.Correct(cw, corr)
			if err != nil {
				t.Fatalf("detection-chip failure not tolerated: %v", err)
			}
			if !bytes.Equal(got, d) {
				t.Fatal("data corrupted by detection-chip failure")
			}
		})
	}
}

// TestCorrectionBitsLinear: correction bits are GF(2)-linear in the data
// for the paper's evaluated schemes. (Linearity is a nice property, not a
// requirement: the overlay's parity stores XORs of correction-bit VALUES
// and recomputes peers' values from their data during reconstruction, so
// even non-linear functions — LOTECC5RS's embedded CRCs, which are affine
// because of their nonzero initial value — work.)
func TestCorrectionBitsLinear(t *testing.T) {
	for _, name := range Names() {
		if name == "lotecc5rs" {
			continue // embeds CRCs (affine, not linear, due to the 0xFFFF init)
		}
		s := ByName(name)
		if s.CorrectionSize() == 0 {
			continue
		}
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				a := randLine(r, s)
				b := randLine(r, s)
				ab := XorBytes(a, b)
				return bytes.Equal(s.CorrectionBits(ab),
					XorBytes(s.CorrectionBits(a), s.CorrectionBits(b)))
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCorrectionSizeMatchesBits ensures CorrectionSize agrees with the
// actual encoder output and with Encode's second return value.
func TestCorrectionSizeMatchesBits(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for _, name := range Names() {
		s := ByName(name)
		d := randLine(r, s)
		bits := s.CorrectionBits(d)
		if len(bits) != s.CorrectionSize() {
			t.Fatalf("%s: CorrectionBits len %d != CorrectionSize %d", name, len(bits), s.CorrectionSize())
		}
		_, corr := s.Encode(d)
		if !bytes.Equal(corr, bits) {
			t.Fatalf("%s: Encode correction bits disagree with CorrectionBits", name)
		}
	}
}

// TestRRatios verifies the paper's R values used in the Table III capacity
// formulas: 0.25 for LOT-ECC5, 0.5 for the RAIM ECC Parity base.
func TestRRatios(t *testing.T) {
	if got := R(NewLOTECC5()); got != 0.25 {
		t.Fatalf("LOT-ECC5 R = %v, want 0.25", got)
	}
	if got := R(NewRAIMParity()); got != 0.5 {
		t.Fatalf("RAIM-18 R = %v, want 0.5", got)
	}
	if got := R(NewLOTECC9()); got != 0.125 {
		t.Fatalf("LOT-ECC9 R = %v, want 0.125", got)
	}
}

// TestCapacityOverheads checks the Fig. 1 / Table III static overhead rows.
func TestCapacityOverheads(t *testing.T) {
	cases := []struct {
		name  string
		total float64
	}{
		{"chipkill36", 0.125},
		{"chipkill18", 0.125},
		{"lotecc9", 0.2656},
		{"lotecc5", 0.40625},
		{"raim", 0.40625},
	}
	for _, tc := range cases {
		s := ByName(tc.name)
		got := s.Overheads().Total()
		if diff := got - tc.total; diff > 0.005 || diff < -0.005 {
			t.Errorf("%s overhead = %.4f, want ≈%.4f", tc.name, got, tc.total)
		}
	}
	// Paper Fig. 1 claim: ≥50%-ish of overhead is correction bits for the
	// schemes it plots (chipkill36, RAIM, LOT-ECC I & II).
	for _, name := range []string{"chipkill36", "raim", "lotecc5"} {
		o := ByName(name).Overheads()
		if o.Correction < o.Detection {
			t.Errorf("%s: correction share (%.3f) below detection (%.3f)", name, o.Correction, o.Detection)
		}
	}
}

// TestGeometryTableII pins the Table II configuration rows.
func TestGeometryTableII(t *testing.T) {
	cases := []struct {
		name      string
		rank      string
		line      int
		ranksChan int
		chanDual  int
		chanQuad  int
		pinsDual  int
	}{
		{"chipkill36", "36 x4", 128, 1, 2, 4, 288},
		{"chipkill18", "18 x4", 64, 1, 4, 8, 288},
		{"lotecc5", "4 x16 + 1 x8", 64, 4, 4, 8, 288},
		{"lotecc9", "9 x8", 64, 2, 4, 8, 288},
		{"multiecc", "9 x8", 64, 2, 4, 8, 288},
		{"raim", "45 x4", 128, 1, 2, 4, 360},
		{"raim18", "18 x4", 64, 1, 5, 10, 360},
	}
	for _, tc := range cases {
		g := ByName(tc.name).Geometry()
		if g.RankConfig != tc.rank || g.LineSize != tc.line ||
			g.RanksPerChannel != tc.ranksChan || g.ChannelsDualEq != tc.chanDual ||
			g.ChannelsQuadEq != tc.chanQuad || g.PinsDualEq != tc.pinsDual {
			t.Errorf("%s geometry mismatch: %+v", tc.name, g)
		}
	}
}

// TestChipsPerRank checks device counts and pin widths.
func TestChipsPerRank(t *testing.T) {
	cases := map[string]struct{ chips, pins int }{
		"chipkill36": {36, 144},
		"chipkill18": {18, 72},
		"lotecc5":    {5, 72},
		"lotecc9":    {9, 72},
		"multiecc":   {9, 72},
		"raim":       {45, 180},
		"raim18":     {18, 72},
	}
	for name, want := range cases {
		g := ByName(name).Geometry()
		if g.ChipsPerRank() != want.chips {
			t.Errorf("%s: chips/rank = %d, want %d", name, g.ChipsPerRank(), want.chips)
		}
		if g.DataPinWidth() != want.pins {
			t.Errorf("%s: pin width = %d, want %d", name, g.DataPinWidth(), want.pins)
		}
	}
}

// TestWrongLineSizePanics: codec inputs are validated.
func TestWrongLineSizePanics(t *testing.T) {
	for _, name := range Names() {
		s := ByName(name)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Encode of wrong-size line must panic", name)
				}
			}()
			s.Encode(make([]byte, 3))
		}()
	}
}

// TestXorBytesPanicsOnMismatch guards the helper contract.
func TestXorBytesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("XorBytes with mismatched lengths must panic")
		}
	}()
	XorBytes(make([]byte, 3), make([]byte, 4))
}

// TestCloneIsDeep verifies fault injection on a clone never leaks into the
// original codeword.
func TestCloneIsDeep(t *testing.T) {
	s := NewLOTECC9()
	d := make([]byte, 64)
	cw, _ := s.Encode(d)
	cl := cw.Clone()
	cl.CorruptChip(0, 0xFF)
	if bytes.Equal(cw.Shards[0], cl.Shards[0]) {
		t.Fatal("Clone shares shard storage")
	}
}

func BenchmarkSchemeEncode(b *testing.B) {
	for _, name := range Names() {
		s := ByName(name)
		d := make([]byte, s.Geometry().LineSize)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Encode(d)
			}
		})
	}
}

func BenchmarkSchemeDetect(b *testing.B) {
	for _, name := range Names() {
		s := ByName(name)
		d := make([]byte, s.Geometry().LineSize)
		cw, _ := s.Encode(d)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Detect(cw)
			}
		})
	}
}

func BenchmarkSchemeCorrectChipKill(b *testing.B) {
	for _, name := range []string{"chipkill36", "lotecc5", "multiecc", "raim18"} {
		s := ByName(name)
		d := make([]byte, s.Geometry().LineSize)
		for i := range d {
			d[i] = byte(i)
		}
		cwClean, corr := s.Encode(d)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cw := cwClean.Clone()
				cw.CorruptChip(0, 0x5A)
				if _, _, err := s.Correct(cw, corr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
