package ecc

import "eccparity/internal/gf"

// Chipkill36 models the 36-device commercial chipkill correct scheme: each
// 128B line is striped across 36 x4 chips (32 data, 2 detection, 2
// correction), one 8-bit code symbol per chip per word, four words per line.
//
// A single RS(36,32) code (distance 5) protects each word, exactly as the
// commercial four-check-symbol code does. Per the paper, two of the four
// check symbols are the DETECTION bits (chips 32–33, recomputed and compared
// on every read) and two are the CORRECTION bits (chips 34–35 in the
// conventional layout, or replaced by the cross-channel ECC parity under the
// overlay in package core). The decode policy is the commercial
// correct-one/detect-two: any single-chip failure is corrected, any
// double-chip failure is flagged uncorrectable rather than risked.
type Chipkill36 struct {
	code *gf.RS // (36,32), distance 5
}

// NewChipkill36 constructs the scheme.
func NewChipkill36() *Chipkill36 {
	return &Chipkill36{code: gf.NewRS(36, 32)}
}

const (
	ck36Words     = 4   // words per 128B line
	ck36DataChips = 32  // data symbols per word
	ck36Line      = 128 // bytes
)

// Name implements Scheme.
func (s *Chipkill36) Name() string { return "36-device commercial chipkill" }

// Geometry implements Scheme (Table II row 1).
func (s *Chipkill36) Geometry() Geometry {
	return Geometry{
		RankConfig:      "36 x4",
		Chips:           []ChipClass{{Width: 4, Count: 36}},
		LineSize:        ck36Line,
		RanksPerChannel: 1,
		ChannelsDualEq:  2,
		ChannelsQuadEq:  4,
		PinsDualEq:      288,
		PinsQuadEq:      576,
	}
}

// Overheads implements Scheme: 4 check chips per 32 data chips, split evenly
// between detection and correction (Fig. 1).
func (s *Chipkill36) Overheads() Overheads {
	return Overheads{Detection: 2.0 / 32.0, Correction: 2.0 / 32.0}
}

// CorrectionSize implements Scheme: 2 symbols × 4 words.
func (s *Chipkill36) CorrectionSize() int { return 2 * ck36Words }

// Encode implements Scheme. The codeword holds 34 shards (32 data chips + 2
// detection chips) of 4 bytes each; the returned correction bits are the 8
// RS(36,34) check bytes.
func (s *Chipkill36) Encode(data []byte) (*Codeword, []byte) {
	checkLine(s, data)
	cw := &Codeword{Shards: make([][]byte, 34)}
	for i := range cw.Shards {
		cw.Shards[i] = make([]byte, ck36Words)
	}
	corrBits := make([]byte, 0, s.CorrectionSize())
	word := make([]byte, ck36DataChips)
	for w := 0; w < ck36Words; w++ {
		for c := 0; c < ck36DataChips; c++ {
			b := data[w*ck36DataChips+c]
			cw.Shards[c][w] = b
			word[c] = b
		}
		checks := s.code.Checks(word)
		cw.Shards[32][w] = checks[0]
		cw.Shards[33][w] = checks[1]
		corrBits = append(corrBits, checks[2], checks[3])
	}
	return cw, corrBits
}

// Data implements Scheme.
func (s *Chipkill36) Data(cw *Codeword) []byte {
	out := make([]byte, ck36Line)
	for w := 0; w < ck36Words; w++ {
		for c := 0; c < ck36DataChips; c++ {
			out[w*ck36DataChips+c] = cw.Shards[c][w]
		}
	}
	return out
}

// Detect implements Scheme: recomputes the two detection check symbols of
// every word and compares them against the stored ones. Inter-chip
// detection has no localization, so SuspectChips is empty.
func (s *Chipkill36) Detect(cw *Codeword) DetectResult {
	if len(cw.Shards) != 34 {
		panic(ErrBadShards)
	}
	word := make([]byte, ck36DataChips)
	for w := 0; w < ck36Words; w++ {
		for c := 0; c < ck36DataChips; c++ {
			word[c] = cw.Shards[c][w]
		}
		checks := s.code.Checks(word)
		if checks[0] != cw.Shards[32][w] || checks[1] != cw.Shards[33][w] {
			return DetectResult{ErrorDetected: true}
		}
	}
	return DetectResult{}
}

// CorrectionBits implements Scheme: the last two RS(36,32) check symbols of
// every word.
func (s *Chipkill36) CorrectionBits(data []byte) []byte {
	checkLine(s, data)
	out := make([]byte, 0, s.CorrectionSize())
	word := make([]byte, ck36DataChips)
	for w := 0; w < ck36Words; w++ {
		copy(word, data[w*ck36DataChips:(w+1)*ck36DataChips])
		checks := s.code.Checks(word)
		out = append(out, checks[2], checks[3])
	}
	return out
}

// Correct implements Scheme: per-word RS(36,32) decoding with the supplied
// correction symbols restored into positions 34–35. Distance 5 decodes any
// ≤2-symbol pattern unambiguously; the commercial correct-one/detect-two
// policy then accepts single-chip repairs and flags double-chip patterns as
// detected-uncorrectable.
func (s *Chipkill36) Correct(cw *Codeword, corr []byte) ([]byte, *CorrectReport, error) {
	if len(cw.Shards) != 34 {
		return nil, nil, ErrBadShards
	}
	if len(corr) != s.CorrectionSize() {
		return nil, nil, ErrUncorrectable
	}
	out := make([]byte, ck36Line)
	report := &CorrectReport{}
	corrected := map[int]bool{}
	full := make([]byte, 36)
	for w := 0; w < ck36Words; w++ {
		for c := 0; c < 34; c++ {
			full[c] = cw.Shards[c][w]
		}
		full[34] = corr[2*w]
		full[35] = corr[2*w+1]
		before := append([]byte(nil), full...)
		decoded, err := s.code.Decode(full)
		if err != nil {
			return nil, nil, ErrUncorrectable
		}
		fixes := 0
		for c := 0; c < 36; c++ {
			if full[c] != before[c] {
				fixes++
				if c < 34 {
					corrected[c] = true
				}
			}
		}
		if fixes > 1 {
			// Two chips disagreed: the commercial policy detects double
			// failures rather than correcting them.
			return nil, nil, ErrUncorrectable
		}
		copy(out[w*ck36DataChips:], decoded)
	}
	for c := range corrected {
		report.CorrectedChips = append(report.CorrectedChips, c)
	}
	return out, report, nil
}

// Chipkill18 models the 18-device commercial chipkill correct scheme
// (AMD family 15h): each 64B line is striped across 18 x4 chips with a
// single RS(18,16) code whose two check symbols both detect and correct.
// There are no separate correction bits (CorrectionSize is 0), so the ECC
// Parity overlay is never applied to this scheme; it serves as the
// low-capacity-overhead, high-power baseline.
type Chipkill18 struct {
	code *gf.RS
}

// NewChipkill18 constructs the scheme.
func NewChipkill18() *Chipkill18 { return &Chipkill18{code: gf.NewRS(18, 16)} }

const (
	ck18Words     = 4
	ck18DataChips = 16
	ck18Line      = 64
)

// Name implements Scheme.
func (s *Chipkill18) Name() string { return "18-device commercial chipkill" }

// Geometry implements Scheme (Table II row 2).
func (s *Chipkill18) Geometry() Geometry {
	return Geometry{
		RankConfig:      "18 x4",
		Chips:           []ChipClass{{Width: 4, Count: 18}},
		LineSize:        ck18Line,
		RanksPerChannel: 1,
		ChannelsDualEq:  4,
		ChannelsQuadEq:  8,
		PinsDualEq:      288,
		PinsQuadEq:      576,
	}
}

// Overheads implements Scheme. The two check symbols serve detection and
// correction jointly; the paper accounts them as detection-class overhead
// since they are read on every access.
func (s *Chipkill18) Overheads() Overheads {
	return Overheads{Detection: 2.0 / 16.0, Correction: 0}
}

// CorrectionSize implements Scheme.
func (s *Chipkill18) CorrectionSize() int { return 0 }

// Encode implements Scheme: 18 shards of 4 bytes, no separate correction.
func (s *Chipkill18) Encode(data []byte) (*Codeword, []byte) {
	checkLine(s, data)
	cw := &Codeword{Shards: make([][]byte, 18)}
	for i := range cw.Shards {
		cw.Shards[i] = make([]byte, ck18Words)
	}
	word := make([]byte, ck18DataChips)
	for w := 0; w < ck18Words; w++ {
		for c := 0; c < ck18DataChips; c++ {
			b := data[w*ck18DataChips+c]
			cw.Shards[c][w] = b
			word[c] = b
		}
		checks := s.code.Checks(word)
		cw.Shards[16][w] = checks[0]
		cw.Shards[17][w] = checks[1]
	}
	return cw, nil
}

// Data implements Scheme.
func (s *Chipkill18) Data(cw *Codeword) []byte {
	out := make([]byte, ck18Line)
	for w := 0; w < ck18Words; w++ {
		for c := 0; c < ck18DataChips; c++ {
			out[w*ck18DataChips+c] = cw.Shards[c][w]
		}
	}
	return out
}

// Detect implements Scheme.
func (s *Chipkill18) Detect(cw *Codeword) DetectResult {
	if len(cw.Shards) != 18 {
		panic(ErrBadShards)
	}
	word := make([]byte, 18)
	for w := 0; w < ck18Words; w++ {
		for c := 0; c < 18; c++ {
			word[c] = cw.Shards[c][w]
		}
		if s.code.HasError(word) {
			return DetectResult{ErrorDetected: true}
		}
	}
	return DetectResult{}
}

// CorrectionBits implements Scheme (none stored separately).
func (s *Chipkill18) CorrectionBits(data []byte) []byte {
	checkLine(s, data)
	return nil
}

// Correct implements Scheme: single-symbol-per-word RS decoding using the
// in-codeword check symbols; the corr argument is ignored.
func (s *Chipkill18) Correct(cw *Codeword, corr []byte) ([]byte, *CorrectReport, error) {
	if len(cw.Shards) != 18 {
		return nil, nil, ErrBadShards
	}
	out := make([]byte, ck18Line)
	report := &CorrectReport{}
	corrected := map[int]bool{}
	word := make([]byte, 18)
	for w := 0; w < ck18Words; w++ {
		for c := 0; c < 18; c++ {
			word[c] = cw.Shards[c][w]
		}
		before := append([]byte(nil), word...)
		decoded, err := s.code.Decode(word)
		if err != nil {
			return nil, nil, ErrUncorrectable
		}
		for c := 0; c < 18; c++ {
			if word[c] != before[c] {
				corrected[c] = true
			}
		}
		copy(out[w*ck18DataChips:], decoded)
	}
	for c := range corrected {
		report.CorrectedChips = append(report.CorrectedChips, c)
	}
	return out, report, nil
}
