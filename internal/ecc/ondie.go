package ecc

// Cross-layer (Cerberus-style) schemes: a per-chip on-die SEC code
// (internal/dram.OnDieSEC) underneath a rank-level scheme. The rank-level
// code never sees the raw array error profile — every shard it reads has
// already been through the chip's corrector, so single-bit faults vanish
// and multi-bit faults may arrive distorted (a miscorrection flips a
// third bit). OnDie models exactly that read path; OnDieOnly is the bare
// chip-corrector rank with no inter-chip code at all, the weakest point
// of comparison and the HARP profiler's subject.

import "eccparity/internal/dram"

// OnDie composes a base rank-level scheme with per-chip on-die SEC: each
// codeword shard carries the base shard's bytes followed by that shard's
// Hamming check bytes, and every read-side operation (Detect, Correct)
// first runs the chip corrector on a copy of each shard — the base scheme
// observes post-correction shards only. Correction bits are the base
// scheme's unchanged (the on-die checks are per-chip and never leave the
// device), so the composite keeps the base's GF(2)-linearity and R ratio.
type OnDie struct {
	base        Scheme
	passthrough bool
	shardLens   []int            // base shard sizes, probed at construction
	codecs      []*dram.OnDieSEC // one per shard, keyed by shard index
}

// NewOnDie wraps base with per-chip on-die SEC. passthrough disables the
// in-chip corrector (checks are stored but never consumed) — the raw-read
// configuration HARP-style profiling compares against.
func NewOnDie(base Scheme, passthrough bool) *OnDie {
	probe, _ := base.Encode(make([]byte, base.Geometry().LineSize))
	s := &OnDie{
		base:        base,
		passthrough: passthrough,
		shardLens:   make([]int, len(probe.Shards)),
		codecs:      make([]*dram.OnDieSEC, len(probe.Shards)),
	}
	byLen := map[int]*dram.OnDieSEC{}
	for i, shard := range probe.Shards {
		n := len(shard)
		if byLen[n] == nil {
			byLen[n] = dram.NewOnDieSEC(n)
		}
		s.shardLens[i] = n
		s.codecs[i] = byLen[n]
	}
	return s
}

// Base returns the wrapped rank-level scheme.
func (s *OnDie) Base() Scheme { return s.base }

// Passthrough reports whether the in-chip corrector is disabled.
func (s *OnDie) Passthrough() bool { return s.passthrough }

// OnDieOverhead returns the in-array redundancy fraction of the widest
// per-chip code (check bits per data bit) — the energy model's knob.
func (s *OnDie) OnDieOverhead() float64 {
	o := 0.0
	for _, c := range s.codecs {
		if v := c.Overhead(); v > o {
			o = v
		}
	}
	return o
}

// Name implements Scheme.
func (s *OnDie) Name() string { return "on-die SEC + " + s.base.Name() }

// Geometry implements Scheme: the external rank shape is the base's — the
// on-die check bits live inside the arrays and never cross the pins.
func (s *OnDie) Geometry() Geometry { return s.base.Geometry() }

// Overheads implements Scheme. The on-die check bits are always-read
// in-array redundancy, so they are accounted detection-class on top of
// the base split, like every other overhead consumed on the critical
// read path.
func (s *OnDie) Overheads() Overheads {
	o := s.base.Overheads()
	o.Detection += s.OnDieOverhead()
	return o
}

// CorrectionSize implements Scheme: the base's (on-die checks are not
// rank-level correction bits).
func (s *OnDie) CorrectionSize() int { return s.base.CorrectionSize() }

// CorrectionBits implements Scheme, delegating to the base — still
// GF(2)-linear in the data line.
func (s *OnDie) CorrectionBits(data []byte) []byte { return s.base.CorrectionBits(data) }

// Encode implements Scheme: base shards, each extended with its chip's
// on-die check bytes.
func (s *OnDie) Encode(data []byte) (*Codeword, []byte) {
	inner, corr := s.base.Encode(data)
	cw := &Codeword{Shards: make([][]byte, len(inner.Shards))}
	for i, shard := range inner.Shards {
		cw.Shards[i] = append(append([]byte(nil), shard...), s.codecs[i].Encode(shard)...)
	}
	return cw, corr
}

// splitShard views one composite shard as its base bytes and check bytes.
func (s *OnDie) splitShard(i int, shard []byte) (data, checks []byte) {
	return shard[:s.shardLens[i]], shard[s.shardLens[i]:]
}

// checkShape validates the composite codeword's shard shapes.
func (s *OnDie) checkShape(cw *Codeword) bool {
	if len(cw.Shards) != len(s.shardLens) {
		return false
	}
	for i, shard := range cw.Shards {
		if len(shard) != s.shardLens[i]+s.codecs[i].CheckBytes() {
			return false
		}
	}
	return true
}

// Scrub runs every chip's on-die corrector over the codeword IN PLACE and
// returns the per-chip outcomes — the fault-injection experiments' window
// into what the chips silently repaired, miscorrected, or flagged. With
// passthrough set, nothing is touched and every outcome is ScrubClean.
func (s *OnDie) Scrub(cw *Codeword) []dram.ScrubResult {
	if !s.checkShape(cw) {
		panic(ErrBadShards)
	}
	out := make([]dram.ScrubResult, len(cw.Shards))
	for i := range out {
		out[i] = dram.ScrubResult{Outcome: dram.ScrubClean, Bit: -1}
	}
	if s.passthrough {
		return out
	}
	for i, shard := range cw.Shards {
		data, checks := s.splitShard(i, shard)
		out[i] = s.codecs[i].Scrub(data, checks)
	}
	return out
}

// postCorrection builds the base-scheme view of the codeword: every shard
// copied and run through its chip's corrector (unless passthrough).
func (s *OnDie) postCorrection(cw *Codeword) *Codeword {
	inner := &Codeword{Shards: make([][]byte, len(cw.Shards))}
	for i, shard := range cw.Shards {
		data := append([]byte(nil), shard[:s.shardLens[i]]...)
		if !s.passthrough {
			checks := append([]byte(nil), shard[s.shardLens[i]:]...)
			s.codecs[i].Scrub(data, checks)
		}
		inner.Shards[i] = data
	}
	return inner
}

// Detect implements Scheme over the post-correction shards: errors the
// chips repaired (or miscorrected into codewords) are invisible here —
// exactly the masking the rank-level code experiences on real devices.
func (s *OnDie) Detect(cw *Codeword) DetectResult {
	if !s.checkShape(cw) {
		panic(ErrBadShards)
	}
	return s.base.Detect(s.postCorrection(cw))
}

// Correct implements Scheme: the base decodes the post-correction shards
// with its own correction bits.
func (s *OnDie) Correct(cw *Codeword, corr []byte) ([]byte, *CorrectReport, error) {
	if !s.checkShape(cw) {
		return nil, nil, ErrBadShards
	}
	return s.base.Correct(s.postCorrection(cw), corr)
}

// Data implements Scheme: the base data bytes, no checking, no scrubbing.
func (s *OnDie) Data(cw *Codeword) []byte {
	if !s.checkShape(cw) {
		panic(ErrBadShards)
	}
	inner := &Codeword{Shards: make([][]byte, len(cw.Shards))}
	for i, shard := range cw.Shards {
		inner.Shards[i] = shard[:s.shardLens[i]]
	}
	return s.base.Data(inner)
}

// OnDieOnly is the bare on-die configuration: a conventional non-ECC rank
// of eight x8 chips whose only protection is each chip's internal SEC
// code. There is no inter-chip code — a whole-chip failure is beyond it —
// which makes it the floor of the cross-layer comparison and the subject
// the HARP profiler experiment studies.
type OnDieOnly struct {
	passthrough bool
	codec       *dram.OnDieSEC
}

// NewOnDieOnly constructs the scheme; passthrough disables the corrector.
func NewOnDieOnly(passthrough bool) *OnDieOnly {
	return &OnDieOnly{passthrough: passthrough, codec: dram.NewOnDieSEC(odoShard)}
}

const (
	odoChips = 8  // x8 devices, no rank-level redundancy
	odoShard = 8  // data bytes per chip per 64B line
	odoLine  = 64 // bytes
)

// Name implements Scheme.
func (s *OnDieOnly) Name() string { return "on-die SEC only (non-ECC rank)" }

// Passthrough reports whether the in-chip corrector is disabled.
func (s *OnDieOnly) Passthrough() bool { return s.passthrough }

// OnDieOverhead returns the in-array redundancy fraction (energy knob).
func (s *OnDieOnly) OnDieOverhead() float64 { return s.codec.Overhead() }

// Geometry implements Scheme: a plain 64-bit non-ECC channel.
func (s *OnDieOnly) Geometry() Geometry {
	return Geometry{
		RankConfig:      "8 x8",
		Chips:           []ChipClass{{Width: 8, Count: odoChips}},
		LineSize:        odoLine,
		RanksPerChannel: 1,
		ChannelsDualEq:  4,
		ChannelsQuadEq:  8,
		PinsDualEq:      256,
		PinsQuadEq:      512,
	}
}

// Overheads implements Scheme: only the in-array check bits, which never
// occupy externally-visible capacity — both rank-level fractions are zero.
func (s *OnDieOnly) Overheads() Overheads { return Overheads{} }

// CorrectionSize implements Scheme: no rank-level correction bits.
func (s *OnDieOnly) CorrectionSize() int { return 0 }

// CorrectionBits implements Scheme (none).
func (s *OnDieOnly) CorrectionBits(data []byte) []byte {
	checkLine(s, data)
	return nil
}

// Encode implements Scheme: one shard per chip, data plus its on-die
// check byte.
func (s *OnDieOnly) Encode(data []byte) (*Codeword, []byte) {
	checkLine(s, data)
	cw := &Codeword{Shards: make([][]byte, odoChips)}
	for i := 0; i < odoChips; i++ {
		chunk := data[i*odoShard : (i+1)*odoShard]
		cw.Shards[i] = append(append([]byte(nil), chunk...), s.codec.Encode(chunk)...)
	}
	return cw, nil
}

// Data implements Scheme.
func (s *OnDieOnly) Data(cw *Codeword) []byte {
	if len(cw.Shards) != odoChips {
		panic(ErrBadShards)
	}
	out := make([]byte, 0, odoLine)
	for _, shard := range cw.Shards {
		out = append(out, shard[:odoShard]...)
	}
	return out
}

// scrub runs every chip's corrector over shard copies, returning the
// corrected data view and per-chip outcomes.
func (s *OnDieOnly) scrub(cw *Codeword) (*Codeword, []dram.ScrubResult) {
	out := &Codeword{Shards: make([][]byte, odoChips)}
	res := make([]dram.ScrubResult, odoChips)
	for i, shard := range cw.Shards {
		data := append([]byte(nil), shard[:odoShard]...)
		res[i] = dram.ScrubResult{Outcome: dram.ScrubClean, Bit: -1}
		if !s.passthrough {
			checks := append([]byte(nil), shard[odoShard:]...)
			res[i] = s.codec.Scrub(data, checks)
		}
		out.Shards[i] = data
	}
	return out, res
}

// Scrub runs every chip's on-die corrector over the codeword IN PLACE and
// returns the per-chip outcomes (ScrubClean everywhere under passthrough).
func (s *OnDieOnly) Scrub(cw *Codeword) []dram.ScrubResult {
	if len(cw.Shards) != odoChips {
		panic(ErrBadShards)
	}
	res := make([]dram.ScrubResult, odoChips)
	for i, shard := range cw.Shards {
		res[i] = dram.ScrubResult{Outcome: dram.ScrubClean, Bit: -1}
		if !s.passthrough {
			res[i] = s.codec.Scrub(shard[:odoShard], shard[odoShard:])
		}
	}
	return res
}

// Detect implements Scheme: only errors the chip correctors themselves
// flag are visible; silently corrected (or miscorrected) patterns pass.
func (s *OnDieOnly) Detect(cw *Codeword) DetectResult {
	if len(cw.Shards) != odoChips {
		panic(ErrBadShards)
	}
	_, res := s.scrub(cw)
	var out DetectResult
	for i, r := range res {
		if r.Outcome == dram.ScrubDetected {
			out.ErrorDetected = true
			out.SuspectChips = append(out.SuspectChips, i)
		}
	}
	return out
}

// Correct implements Scheme: the chip correctors are the only correction
// there is; a pattern any chip flags as beyond SEC is uncorrectable.
func (s *OnDieOnly) Correct(cw *Codeword, corr []byte) ([]byte, *CorrectReport, error) {
	if len(cw.Shards) != odoChips {
		return nil, nil, ErrBadShards
	}
	scrubbed, res := s.scrub(cw)
	report := &CorrectReport{}
	for i, r := range res {
		switch r.Outcome {
		case dram.ScrubDetected:
			return nil, nil, ErrUncorrectable
		case dram.ScrubCorrected:
			report.CorrectedChips = append(report.CorrectedChips, i)
		}
	}
	return s.Data(scrubbed), report, nil
}

var _ Scheme = (*OnDie)(nil)
var _ Scheme = (*OnDieOnly)(nil)
