package ecc

import "eccparity/internal/gf"

// RAIM models the IBM zEnterprise redundant array of independent memory:
// DIMM-kill correct. Each 128B line is striped across five DIMMs of nine x4
// chips each (45 chips per rank). Four DIMMs carry 32B of data plus a 4B
// channel checksum; the fifth DIMM stores the bitwise XOR of the other
// four. A complete DIMM failure is localized by its checksum and repaired
// by erasure from the parity DIMM.
//
// The codec's shards are per-DIMM (the scheme's fault granularity); the
// Geometry still reports the 45 physical chips for the energy model.
type RAIM struct{}

// NewRAIM constructs the scheme.
func NewRAIM() *RAIM { return &RAIM{} }

const (
	raimDIMMs     = 4   // data DIMMs
	raimDataShard = 32  // data bytes per DIMM per line
	raimShard     = 36  // data + checksum bytes per DIMM per line
	raimLine      = 128 // bytes
)

// Name implements Scheme.
func (s *RAIM) Name() string { return "RAIM" }

// Geometry implements Scheme (Table II row 7).
func (s *RAIM) Geometry() Geometry {
	return Geometry{
		RankConfig:      "45 x4",
		Chips:           []ChipClass{{Width: 4, Count: 45}},
		LineSize:        raimLine,
		RanksPerChannel: 1,
		ChannelsDualEq:  2,
		ChannelsQuadEq:  4,
		PinsDualEq:      360,
		PinsQuadEq:      720,
	}
}

// Overheads implements Scheme: 13 of 45 chips are redundancy — 4 checksum
// chips (detection) and the 9-chip parity DIMM (correction).
func (s *RAIM) Overheads() Overheads {
	return Overheads{Detection: 4.0 / 32.0, Correction: 9.0 / 32.0}
}

// CorrectionSize implements Scheme: the parity-DIMM data content. (The
// physical parity DIMM also mirrors checksum chips, but those are
// re-derivable from data, so only the 32B data XOR is the scheme's
// correction-bit payload — GF(2)-linear by construction.)
func (s *RAIM) CorrectionSize() int { return raimDataShard }

// dimmShard builds one data DIMM's 36B shard: 32B data + two checksum16
// checksums over its halves.
func dimmShard(data []byte) []byte {
	shard := make([]byte, 0, raimShard)
	shard = append(shard, data...)
	a := checksum16(data[:16])
	b := checksum16(data[16:])
	return append(shard, a[0], a[1], b[0], b[1])
}

// dimmShardOK verifies a shard's embedded checksums.
func dimmShardOK(shard []byte) bool {
	a := checksum16(shard[:16])
	b := checksum16(shard[16:32])
	return shard[32] == a[0] && shard[33] == a[1] && shard[34] == b[0] && shard[35] == b[1]
}

// Encode implements Scheme: four data-DIMM shards; correction bits are the
// parity-DIMM shard (XOR of the four).
func (s *RAIM) Encode(data []byte) (*Codeword, []byte) {
	checkLine(s, data)
	cw := &Codeword{Shards: make([][]byte, raimDIMMs)}
	for d := 0; d < raimDIMMs; d++ {
		cw.Shards[d] = dimmShard(data[d*raimDataShard : (d+1)*raimDataShard])
	}
	return cw, s.CorrectionBits(data)
}

// Data implements Scheme.
func (s *RAIM) Data(cw *Codeword) []byte {
	out := make([]byte, 0, raimLine)
	for d := 0; d < raimDIMMs; d++ {
		out = append(out, cw.Shards[d][:raimDataShard]...)
	}
	return out
}

// CorrectionBits implements Scheme: XOR of the four DIMMs' data payloads.
func (s *RAIM) CorrectionBits(data []byte) []byte {
	checkLine(s, data)
	parity := make([]byte, raimDataShard)
	for d := 0; d < raimDIMMs; d++ {
		xorInto(parity, data[d*raimDataShard:(d+1)*raimDataShard])
	}
	return parity
}

// Detect implements Scheme: per-DIMM checksum verification; a mismatching
// DIMM index is reported as a suspect.
func (s *RAIM) Detect(cw *Codeword) DetectResult {
	if len(cw.Shards) != raimDIMMs {
		panic(ErrBadShards)
	}
	var res DetectResult
	for d := 0; d < raimDIMMs; d++ {
		if !dimmShardOK(cw.Shards[d]) {
			res.ErrorDetected = true
			res.SuspectChips = append(res.SuspectChips, d)
		}
	}
	return res
}

// Correct implements Scheme: erasure-repairs the suspect DIMM from the
// parity shard; with no suspect but a parity mismatch, trial-erases each
// DIMM (covers checksum-colliding corruption and parity-DIMM faults).
func (s *RAIM) Correct(cw *Codeword, corr []byte) ([]byte, *CorrectReport, error) {
	if len(cw.Shards) != raimDIMMs {
		return nil, nil, ErrBadShards
	}
	if len(corr) != raimDataShard {
		return nil, nil, ErrUncorrectable
	}
	det := s.Detect(cw)
	switch len(det.SuspectChips) {
	case 0:
		if eqBytes(s.xorShards(cw), corr) {
			return s.Data(cw), &CorrectReport{}, nil
		}
		// Parity inconsistent but all checksums pass: either the stored
		// parity itself is the faulty party (data fine) or a shard
		// collided its checksum. Trial-erase to disambiguate; if no trial
		// yields a different consistent line, trust the checksums.
		for d := 0; d < raimDIMMs; d++ {
			fixedData := s.eraseDIMM(cw, corr, d)
			fixed := dimmShard(fixedData)
			if !eqBytes(fixed, cw.Shards[d]) && dimmShardOK(fixed) {
				out := s.Data(cw)
				copy(out[d*raimDataShard:], fixedData)
				return out, &CorrectReport{CorrectedChips: []int{d}, UsedErasure: true}, nil
			}
		}
		return s.Data(cw), &CorrectReport{}, nil
	case 1:
		d := det.SuspectChips[0]
		fixedData := s.eraseDIMM(cw, corr, d)
		out := s.Data(cw)
		copy(out[d*raimDataShard:], fixedData)
		return out, &CorrectReport{CorrectedChips: []int{d}, UsedErasure: true}, nil
	default:
		return nil, nil, ErrUncorrectable
	}
}

// xorShards XORs the data payloads of the stored shards.
func (s *RAIM) xorShards(cw *Codeword) []byte {
	parity := make([]byte, raimDataShard)
	for d := 0; d < raimDIMMs; d++ {
		xorInto(parity, cw.Shards[d][:raimDataShard])
	}
	return parity
}

// eraseDIMM reconstructs DIMM d's data payload from the parity and the
// other shards' payloads.
func (s *RAIM) eraseDIMM(cw *Codeword, corr []byte, d int) []byte {
	fixed := append([]byte(nil), corr...)
	for i := 0; i < raimDIMMs; i++ {
		if i != d {
			xorInto(fixed, cw.Shards[i][:raimDataShard])
		}
	}
	return fixed
}

// RAIMParity is the 18-device rank used when ECC Parity is applied to
// DIMM-kill correct (Table II row 8): 64B lines across 16 x4 data chips
// organized as four DIMM groups of four chips, plus two x4 detection chips
// holding per-group checksums. The correction bits (stored as cross-channel
// ECC parity by package core) are a P/Q pair over the DIMM groups — P is
// the plain XOR, Q the GF(2^8) α-weighted XOR — giving DIMM-kill erasure
// correction with self-contained localization, 32B per 64B line (the
// paper's R = 0.5 for RAIM, Table III).
type RAIMParity struct{}

// NewRAIMParity constructs the scheme.
func NewRAIMParity() *RAIMParity { return &RAIMParity{} }

const (
	rpGroups     = 4  // DIMM groups
	rpShard      = 16 // data bytes per group per line
	rpLine       = 64
	rpDetBytes   = 2 // checksum bytes per group, stored in detection chips
	rpGroupChips = 4 // x4 chips per group
)

// Name implements Scheme.
func (s *RAIMParity) Name() string { return "RAIM-18 (ECC Parity base)" }

// Geometry implements Scheme (Table II row 8).
func (s *RAIMParity) Geometry() Geometry {
	return Geometry{
		RankConfig:      "18 x4",
		Chips:           []ChipClass{{Width: 4, Count: 18}},
		LineSize:        rpLine,
		RanksPerChannel: 1,
		ChannelsDualEq:  5,
		ChannelsQuadEq:  10,
		PinsDualEq:      360,
		PinsQuadEq:      720,
	}
}

// Overheads implements Scheme: detection is the two extra chips (12.5%);
// the correction-bit cost depends on the overlay's channel count and is
// accounted by package core, so only R is meaningful here.
func (s *RAIMParity) Overheads() Overheads {
	return Overheads{Detection: 2.0 / 16.0, Correction: 0.5}
}

// CorrectionSize implements Scheme: P and Q, one group shard each.
func (s *RAIMParity) CorrectionSize() int { return 2 * rpShard }

// Encode implements Scheme: five shards — four 16B group shards plus one 8B
// detection shard of per-group checksum16 sums (physically two x4 chips).
func (s *RAIMParity) Encode(data []byte) (*Codeword, []byte) {
	checkLine(s, data)
	cw := &Codeword{Shards: make([][]byte, rpGroups+1)}
	det := make([]byte, 0, rpGroups*rpDetBytes)
	for g := 0; g < rpGroups; g++ {
		shard := append([]byte(nil), data[g*rpShard:(g+1)*rpShard]...)
		cw.Shards[g] = shard
		sum := checksum16(shard)
		det = append(det, sum[0], sum[1])
	}
	cw.Shards[rpGroups] = det
	return cw, s.CorrectionBits(data)
}

// Data implements Scheme.
func (s *RAIMParity) Data(cw *Codeword) []byte {
	out := make([]byte, 0, rpLine)
	for g := 0; g < rpGroups; g++ {
		out = append(out, cw.Shards[g]...)
	}
	return out
}

// CorrectionBits implements Scheme: P = ⊕ shard_g, Q = ⊕ α^g·shard_g,
// both GF(2)-linear in the data.
func (s *RAIMParity) CorrectionBits(data []byte) []byte {
	checkLine(s, data)
	out := make([]byte, 2*rpShard)
	p := out[:rpShard]
	q := out[rpShard:]
	for g := 0; g < rpGroups; g++ {
		coef := gf.Exp(g)
		for i := 0; i < rpShard; i++ {
			b := data[g*rpShard+i]
			p[i] ^= b
			q[i] ^= gf.Mul(coef, b)
		}
	}
	return out
}

// Detect implements Scheme: per-group checksum verification.
func (s *RAIMParity) Detect(cw *Codeword) DetectResult {
	if len(cw.Shards) != rpGroups+1 {
		panic(ErrBadShards)
	}
	det := cw.Shards[rpGroups]
	var res DetectResult
	for g := 0; g < rpGroups; g++ {
		if !checksumMatches(cw.Shards[g], [2]byte{det[2*g], det[2*g+1]}) {
			res.ErrorDetected = true
			res.SuspectChips = append(res.SuspectChips, g)
		}
	}
	return res
}

// Correct implements Scheme using the P/Q pair:
//   - one suspect group: erasure via P, cross-checked against Q;
//   - two suspect groups: two-erasure solve via P and Q;
//   - no suspects (checksum collision or detection-chip fault): locate the
//     single bad group from the P/Q syndrome relation ΔQ = α^g·ΔP.
func (s *RAIMParity) Correct(cw *Codeword, corr []byte) ([]byte, *CorrectReport, error) {
	if len(cw.Shards) != rpGroups+1 {
		return nil, nil, ErrBadShards
	}
	if len(corr) != s.CorrectionSize() {
		return nil, nil, ErrUncorrectable
	}
	pStored := corr[:rpShard]
	qStored := corr[rpShard:]
	dp, dq := s.syndromes(cw, pStored, qStored)
	det := s.Detect(cw)

	switch len(det.SuspectChips) {
	case 0:
		if allZeroBytes(dp) && allZeroBytes(dq) {
			return s.Data(cw), &CorrectReport{}, nil
		}
		// Locate a single corrupted group: ΔQ must equal α^g·ΔP bytewise.
		g, ok := locateGroup(dp, dq)
		if !ok {
			// Data consistent with neither syndrome pattern; if ΔP is
			// zero everywhere the corruption is confined to the stored
			// correction bits or detection chips — data is intact.
			if allZeroBytes(dp) || allZeroBytes(dq) {
				return s.Data(cw), &CorrectReport{}, nil
			}
			return nil, nil, ErrUncorrectable
		}
		out := s.Data(cw)
		for i := 0; i < rpShard; i++ {
			out[g*rpShard+i] ^= dp[i]
		}
		return out, &CorrectReport{CorrectedChips: []int{g}, UsedErasure: false}, nil
	case 1:
		g := det.SuspectChips[0]
		out := s.Data(cw)
		for i := 0; i < rpShard; i++ {
			out[g*rpShard+i] ^= dp[i]
		}
		// Cross-check the repair against Q.
		if !s.verify(out, pStored, qStored) {
			return nil, nil, ErrUncorrectable
		}
		return out, &CorrectReport{CorrectedChips: []int{g}, UsedErasure: true}, nil
	case 2:
		a, b := det.SuspectChips[0], det.SuspectChips[1]
		out := s.Data(cw)
		// Solve e_a ⊕ e_b = ΔP and α^a·e_a ⊕ α^b·e_b = ΔQ bytewise.
		ca, cb := gf.Exp(a), gf.Exp(b)
		denom := ca ^ cb
		for i := 0; i < rpShard; i++ {
			ea := gf.Div(dq[i]^gf.Mul(cb, dp[i]), denom)
			eb := dp[i] ^ ea
			out[a*rpShard+i] ^= ea
			out[b*rpShard+i] ^= eb
		}
		if !s.verify(out, pStored, qStored) {
			return nil, nil, ErrUncorrectable
		}
		return out, &CorrectReport{CorrectedChips: []int{a, b}, UsedErasure: true}, nil
	default:
		// Three or more suspect groups is consistent with a failed
		// detection device (all its checksums garbage). If P and Q agree
		// with the raw data, the data is intact.
		if allZeroBytes(dp) && allZeroBytes(dq) {
			return s.Data(cw), &CorrectReport{CorrectedChips: []int{rpGroups}}, nil
		}
		return nil, nil, ErrUncorrectable
	}
}

// syndromes returns ΔP and ΔQ between stored correction bits and the
// codeword's current contents.
func (s *RAIMParity) syndromes(cw *Codeword, pStored, qStored []byte) (dp, dq []byte) {
	dp = append([]byte(nil), pStored...)
	dq = append([]byte(nil), qStored...)
	for g := 0; g < rpGroups; g++ {
		coef := gf.Exp(g)
		for i := 0; i < rpShard; i++ {
			b := cw.Shards[g][i]
			dp[i] ^= b
			dq[i] ^= gf.Mul(coef, b)
		}
	}
	return dp, dq
}

// verify recomputes P/Q over a candidate line and compares with stored.
func (s *RAIMParity) verify(line, pStored, qStored []byte) bool {
	recomputed := s.CorrectionBits(line)
	return eqBytes(recomputed[:rpShard], pStored) && eqBytes(recomputed[rpShard:], qStored)
}

// locateGroup finds g with dq = α^g·dp bytewise, requiring at least one
// nonzero byte and full consistency.
func locateGroup(dp, dq []byte) (int, bool) {
	for g := 0; g < rpGroups; g++ {
		coef := gf.Exp(g)
		consistent := true
		nonzero := false
		for i := range dp {
			if dq[i] != gf.Mul(coef, dp[i]) {
				consistent = false
				break
			}
			if dp[i] != 0 {
				nonzero = true
			}
		}
		if consistent && nonzero {
			return g, true
		}
	}
	return 0, false
}

func allZeroBytes(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
