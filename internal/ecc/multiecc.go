package ecc

// MultiECC models Multi-ECC (Jian et al., SC'13): 64B lines across 9 x8
// chips. Tier 1 is a per-line checksum in the ninth chip, verified on every
// read (detecting but not localizing). Tier 2 is a pair of RS(10,8) check
// symbols per byte column (16B per line), stored compacted — the XOR of the
// check bits of many lines shares one ECC line — which is the very technique
// the ECC Parity paper borrows for its XOR cachelines.
//
// Correction localizes the failed device by trial: erase each candidate
// chip in turn, erasure-decode, and accept the unique repair that satisfies
// the line checksum.
type MultiECC struct {
	rs *rsColumn
}

// NewMultiECC constructs the scheme.
func NewMultiECC() *MultiECC { return &MultiECC{rs: newRSColumn()} }

const (
	meDataChips = 8
	meShard     = 8  // bytes per chip per line
	meLine      = 64 // bytes
	// meLinesPerECCLine is how many data lines share one compacted ECC
	// line; with 16B of T2 checks per line and XOR compaction of groups of
	// 64 lines, correction storage is 16·1.125/(64·64) ≈ 0.44% (12.9% total
	// with the 12.5% checksum chip, Table III).
	meLinesPerECCLine = 64
)

// Name implements Scheme.
func (s *MultiECC) Name() string { return "Multi-ECC" }

// Geometry implements Scheme (Table II row 5).
func (s *MultiECC) Geometry() Geometry {
	return Geometry{
		RankConfig:      "9 x8",
		Chips:           []ChipClass{{Width: 8, Count: 9}},
		LineSize:        meLine,
		RanksPerChannel: 2,
		ChannelsDualEq:  4,
		ChannelsQuadEq:  8,
		PinsDualEq:      288,
		PinsQuadEq:      576,
	}
}

// Overheads implements Scheme.
func (s *MultiECC) Overheads() Overheads {
	return Overheads{
		Detection:  0.125,
		Correction: 16.0 * 1.125 / (meLine * meLinesPerECCLine),
	}
}

// LinesPerECCLine returns how many data lines share one compacted ECC line.
func (s *MultiECC) LinesPerECCLine() int { return meLinesPerECCLine }

// CorrectionSize implements Scheme: 2 RS check bytes per byte column.
func (s *MultiECC) CorrectionSize() int { return 2 * meShard }

// lineChecksum computes the 8B tier-1 checksum: checksum16 of each 16B
// quarter of the line.
func lineChecksum(data []byte) []byte {
	out := make([]byte, 0, 8)
	for q := 0; q < 4; q++ {
		sum := checksum16(data[q*16 : (q+1)*16])
		out = append(out, sum[0], sum[1])
	}
	return out
}

// Encode implements Scheme: 8 data shards + 1 checksum shard.
func (s *MultiECC) Encode(data []byte) (*Codeword, []byte) {
	checkLine(s, data)
	cw := &Codeword{Shards: make([][]byte, meDataChips+1)}
	for c := 0; c < meDataChips; c++ {
		cw.Shards[c] = append([]byte(nil), data[c*meShard:(c+1)*meShard]...)
	}
	cw.Shards[meDataChips] = lineChecksum(data)
	return cw, s.CorrectionBits(data)
}

// Data implements Scheme.
func (s *MultiECC) Data(cw *Codeword) []byte {
	out := make([]byte, 0, meLine)
	for c := 0; c < meDataChips; c++ {
		out = append(out, cw.Shards[c]...)
	}
	return out
}

// Detect implements Scheme: recomputes the line checksum. Multi-ECC's
// checksum does not localize, so SuspectChips stays empty.
func (s *MultiECC) Detect(cw *Codeword) DetectResult {
	if len(cw.Shards) != meDataChips+1 {
		panic(ErrBadShards)
	}
	if !eqBytes(lineChecksum(s.Data(cw)), cw.Shards[meDataChips]) {
		return DetectResult{ErrorDetected: true}
	}
	return DetectResult{}
}

// CorrectionBits implements Scheme: RS(10,8) checks of every byte column
// (column j holds byte j of each chip shard). Linear in the data.
func (s *MultiECC) CorrectionBits(data []byte) []byte {
	checkLine(s, data)
	out := make([]byte, 2*meShard)
	col := make([]byte, meDataChips)
	for j := 0; j < meShard; j++ {
		for c := 0; c < meDataChips; c++ {
			col[c] = data[c*meShard+j]
		}
		checks := s.rs.checks(col)
		out[2*j] = checks[0]
		out[2*j+1] = checks[1]
	}
	return out
}

// Correct implements Scheme. Multi-ECC has no localizing detection, so it
// erases each candidate device in turn and keeps the unique erasure repair
// whose line checksum verifies. A failed checksum chip (data intact,
// checksum garbage) is recognized by the T2 code validating the raw data.
func (s *MultiECC) Correct(cw *Codeword, corr []byte) ([]byte, *CorrectReport, error) {
	if len(cw.Shards) != meDataChips+1 {
		return nil, nil, ErrBadShards
	}
	if len(corr) != s.CorrectionSize() {
		return nil, nil, ErrUncorrectable
	}
	raw := s.Data(cw)
	stored := cw.Shards[meDataChips]

	// Fast path: checksum consistent and T2 syndromes clean.
	if eqBytes(lineChecksum(raw), stored) && s.rs.consistent(raw, corr) {
		return raw, &CorrectReport{}, nil
	}
	// If the T2 code validates the raw data, the detection checksum itself
	// is the corrupted party.
	if s.rs.consistent(raw, corr) {
		return raw, &CorrectReport{CorrectedChips: []int{meDataChips}}, nil
	}
	// Trial-erase each data chip.
	winner := -1
	var winnerLine []byte
	for c := 0; c < meDataChips; c++ {
		cand, err := s.rs.eraseChip(raw, corr, c)
		if err != nil {
			continue
		}
		if eqBytes(cand, raw) {
			continue
		}
		if eqBytes(lineChecksum(cand), stored) {
			if winner >= 0 {
				return nil, nil, ErrUncorrectable
			}
			winner = c
			winnerLine = cand
		}
	}
	if winner < 0 {
		return nil, nil, ErrUncorrectable
	}
	return winnerLine, &CorrectReport{CorrectedChips: []int{winner}, UsedErasure: true}, nil
}
