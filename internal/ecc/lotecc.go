package ecc

import "fmt"

// LOTECC models LOT-ECC (Udipi et al., ISCA'12), the localized-and-tiered
// chipkill scheme, in its two rank shapes evaluated by the paper:
//
//   - LOT-ECC5: 4 x16 data chips + 1 half-capacity x8 chip, 64B lines.
//   - LOT-ECC9: 8 x8 data chips + 1 x8 chip, 64B lines.
//
// Tier 1 (LED, local error detection): a per-chip checksum of each data
// shard, stored in the extra chip and verified on every read. LED both
// detects errors and LOCALIZES them to a device, enabling erasure
// correction. Tier 2 (GEC, global error correction): the bitwise XOR of the
// data shards, stored in separate data-memory lines (one GEC line serves
// several data lines). GEC is the scheme's correction bits: GF(2)-linear,
// consumed only after LED flags a device.
type LOTECC struct {
	name       string
	dataChips  int
	shardSize  int // bytes per data chip per line
	ledPerChip int // LED checksum bytes per data chip (1 or 2)
	geom       Geometry
	over       Overheads
	// linesPerGEC is how many logically adjacent data lines share one GEC
	// memory line (4 for LOT-ECC5, 8 for LOT-ECC9); used by the traffic
	// model for ECC-cacheline coverage.
	linesPerGEC int
}

// NewLOTECC5 constructs the five-chip-per-rank LOT-ECC implementation.
func NewLOTECC5() *LOTECC {
	return &LOTECC{
		name:       "LOT-ECC5",
		dataChips:  4,
		shardSize:  16,
		ledPerChip: 2,
		geom: Geometry{
			RankConfig: "4 x16 + 1 x8",
			Chips: []ChipClass{
				{Width: 16, Count: 4},
				{Width: 8, Count: 1, HalfCapacity: true},
			},
			LineSize:        64,
			RanksPerChannel: 4,
			ChannelsDualEq:  4,
			ChannelsQuadEq:  8,
			PinsDualEq:      288,
			PinsQuadEq:      576,
		},
		// LED chip is 1/8 of data capacity; each 72B GEC line (64B of GEC
		// + 8B of its own LED) covers four 64B data lines: 72/256.
		over:        Overheads{Detection: 0.125, Correction: 72.0 / 256.0},
		linesPerGEC: 4,
	}
}

// NewLOTECC9 constructs the nine-chip-per-rank LOT-ECC implementation.
func NewLOTECC9() *LOTECC {
	return &LOTECC{
		name:       "LOT-ECC9",
		dataChips:  8,
		shardSize:  8,
		ledPerChip: 1,
		geom: Geometry{
			RankConfig:      "9 x8",
			Chips:           []ChipClass{{Width: 8, Count: 9}},
			LineSize:        64,
			RanksPerChannel: 2,
			ChannelsDualEq:  4,
			ChannelsQuadEq:  8,
			PinsDualEq:      288,
			PinsQuadEq:      576,
		},
		// Each 72B GEC line covers eight 64B data lines: 72/512.
		over:        Overheads{Detection: 0.125, Correction: 72.0 / 512.0},
		linesPerGEC: 8,
	}
}

// Name implements Scheme.
func (s *LOTECC) Name() string { return s.name }

// Geometry implements Scheme.
func (s *LOTECC) Geometry() Geometry { return s.geom }

// Overheads implements Scheme.
func (s *LOTECC) Overheads() Overheads { return s.over }

// LinesPerGECLine returns how many data lines one GEC memory line covers.
func (s *LOTECC) LinesPerGECLine() int { return s.linesPerGEC }

// CorrectionSize implements Scheme: the GEC shard-XOR, one shard wide.
func (s *LOTECC) CorrectionSize() int { return s.shardSize }

// ledShard computes the LED chip contents for the given data shards.
func (s *LOTECC) ledShard(shards [][]byte) []byte {
	led := make([]byte, s.dataChips*s.ledPerChip)
	for c := 0; c < s.dataChips; c++ {
		if s.ledPerChip == 2 {
			sum := checksum16(shards[c])
			led[2*c] = sum[0]
			led[2*c+1] = sum[1]
		} else {
			led[c] = checksum8(shards[c])
		}
	}
	return led
}

// ledMatches reports whether data shard c matches its LED entry.
func (s *LOTECC) ledMatches(led []byte, shard []byte, c int) bool {
	if s.ledPerChip == 2 {
		return checksumMatches(shard, [2]byte{led[2*c], led[2*c+1]})
	}
	return checksum8(shard) == led[c]
}

// Encode implements Scheme. The codeword holds dataChips+1 shards: the data
// shards followed by the LED shard. The returned correction bits are the GEC.
func (s *LOTECC) Encode(data []byte) (*Codeword, []byte) {
	checkLine(s, data)
	cw := &Codeword{Shards: make([][]byte, s.dataChips+1)}
	for c := 0; c < s.dataChips; c++ {
		cw.Shards[c] = append([]byte(nil), data[c*s.shardSize:(c+1)*s.shardSize]...)
	}
	cw.Shards[s.dataChips] = s.ledShard(cw.Shards[:s.dataChips])
	return cw, s.CorrectionBits(data)
}

// Data implements Scheme.
func (s *LOTECC) Data(cw *Codeword) []byte {
	out := make([]byte, 0, s.geom.LineSize)
	for c := 0; c < s.dataChips; c++ {
		out = append(out, cw.Shards[c]...)
	}
	return out
}

// CorrectionBits implements Scheme: bitwise XOR of the data shards.
func (s *LOTECC) CorrectionBits(data []byte) []byte {
	checkLine(s, data)
	gec := make([]byte, s.shardSize)
	for c := 0; c < s.dataChips; c++ {
		xorInto(gec, data[c*s.shardSize:(c+1)*s.shardSize])
	}
	return gec
}

// Detect implements Scheme: verifies every shard's LED checksum. Mismatches
// localize the error to specific devices.
func (s *LOTECC) Detect(cw *Codeword) DetectResult {
	if len(cw.Shards) != s.dataChips+1 {
		panic(ErrBadShards)
	}
	led := cw.Shards[s.dataChips]
	var res DetectResult
	for c := 0; c < s.dataChips; c++ {
		if !s.ledMatches(led, cw.Shards[c], c) {
			res.ErrorDetected = true
			res.SuspectChips = append(res.SuspectChips, c)
		}
	}
	return res
}

// gecOf computes the XOR of the codeword's data shards.
func (s *LOTECC) gecOf(cw *Codeword) []byte {
	gec := make([]byte, s.shardSize)
	for c := 0; c < s.dataChips; c++ {
		xorInto(gec, cw.Shards[c])
	}
	return gec
}

// Correct implements Scheme: erasure-corrects the shard(s) localized by LED
// using the GEC correction bits.
//
// Cases handled, mirroring LOT-ECC's tiered protocol:
//   - one suspect shard: erasure-correct it from GEC ⊕ remaining shards and
//     re-verify its checksum;
//   - several suspects but data consistent with GEC: the LED device itself
//     failed, data is intact;
//   - no suspects but the caller still requested correction (e.g. scrubber
//     found a GEC mismatch): locate the shard whose replacement restores
//     checksum consistency.
func (s *LOTECC) Correct(cw *Codeword, corr []byte) ([]byte, *CorrectReport, error) {
	if len(cw.Shards) != s.dataChips+1 {
		return nil, nil, ErrBadShards
	}
	if len(corr) != s.shardSize {
		return nil, nil, fmt.Errorf("%s: correction bits size %d, want %d: %w",
			s.name, len(corr), s.shardSize, ErrUncorrectable)
	}
	det := s.Detect(cw)
	led := cw.Shards[s.dataChips]

	switch len(det.SuspectChips) {
	case 0:
		// Data checksums pass. If GEC agrees too, nothing to do.
		if eqBytes(s.gecOf(cw), corr) {
			return s.Data(cw), &CorrectReport{}, nil
		}
		// GEC disagrees while every checksum passes: a shard was corrupted
		// into a checksum collision, or the GEC itself is stale/corrupt.
		// Try each single-shard repair and accept the unique one whose
		// checksum still passes (the repaired shard must differ).
		return s.trialCorrect(cw, corr, led)
	case 1:
		c := det.SuspectChips[0]
		fixed := s.eraseShard(cw, corr, c)
		if s.ledMatches(led, fixed, c) {
			out := s.Data(cw)
			copy(out[c*s.shardSize:], fixed)
			return out, &CorrectReport{CorrectedChips: []int{c}, UsedErasure: true}, nil
		}
		// Repair failed its checksum: perhaps the LED entry is the corrupt
		// party. Data intact iff GEC agrees with the raw shards.
		if eqBytes(s.gecOf(cw), corr) {
			return s.Data(cw), &CorrectReport{CorrectedChips: []int{s.dataChips}}, nil
		}
		return nil, nil, ErrUncorrectable
	default:
		// Multiple suspects: consistent with a dead LED device (all its
		// checksums garbage) while data is fine. Verify against GEC.
		if eqBytes(s.gecOf(cw), corr) {
			return s.Data(cw), &CorrectReport{CorrectedChips: []int{s.dataChips}}, nil
		}
		return nil, nil, ErrUncorrectable
	}
}

// eraseShard computes what shard c must be for the codeword to satisfy the
// GEC: corr ⊕ XOR of every other data shard.
func (s *LOTECC) eraseShard(cw *Codeword, corr []byte, c int) []byte {
	fixed := append([]byte(nil), corr...)
	for i := 0; i < s.dataChips; i++ {
		if i != c {
			xorInto(fixed, cw.Shards[i])
		}
	}
	return fixed
}

// trialCorrect attempts every single-shard erasure and returns the unique
// consistent repair.
func (s *LOTECC) trialCorrect(cw *Codeword, corr []byte, led []byte) ([]byte, *CorrectReport, error) {
	winner := -1
	var winnerShard []byte
	for c := 0; c < s.dataChips; c++ {
		fixed := s.eraseShard(cw, corr, c)
		if eqBytes(fixed, cw.Shards[c]) {
			continue // no change: not a repair
		}
		if s.ledMatches(led, fixed, c) {
			if winner >= 0 {
				return nil, nil, ErrUncorrectable // ambiguous
			}
			winner = c
			winnerShard = fixed
		}
	}
	if winner < 0 {
		return nil, nil, ErrUncorrectable
	}
	out := s.Data(cw)
	copy(out[winner*s.shardSize:], winnerShard)
	return out, &CorrectReport{CorrectedChips: []int{winner}, UsedErasure: true}, nil
}

func eqBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
