package ecc

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"eccparity/internal/dram"
)

// TestRegistrySharing: the registry is built once — ByName and All hand
// out the same shared instances on every call, and the containers they
// return (map, name slice) are caller-owned copies.
func TestRegistrySharing(t *testing.T) {
	for _, name := range Names() {
		if ByName(name) != ByName(name) {
			t.Errorf("ByName(%q) allocated a fresh scheme per call", name)
		}
	}
	a, b := All(), All()
	if len(a) != len(b) {
		t.Fatalf("All() sizes differ: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if a[k] != b[k] {
			t.Errorf("All()[%q] is not the shared instance", k)
		}
		if a[k] != ByName(k) {
			t.Errorf("All()[%q] differs from ByName", k)
		}
	}
	a["bogus"] = nil
	if _, ok := All()["bogus"]; ok {
		t.Error("mutating the map All() returned leaked into the registry")
	}
	names := Names()
	names[0] = "mutated"
	if Names()[0] == "mutated" {
		t.Error("mutating the slice Names() returned leaked into the registry")
	}
}

// TestRegistryEntries: Entries is sorted, complete, and documents the
// passthrough option exactly on the on-die schemes.
func TestRegistryEntries(t *testing.T) {
	entries := Entries()
	if len(entries) != len(Names()) {
		t.Fatalf("Entries has %d rows, registry has %d names", len(entries), len(Names()))
	}
	for i, e := range entries {
		if e.Key != Names()[i] {
			t.Errorf("entry %d: key %q out of order (want %q)", i, e.Key, Names()[i])
		}
		if e.Description == "" {
			t.Errorf("entry %q: empty description", e.Key)
		}
		wantOpts := strings.HasPrefix(e.Key, "ondie")
		if gotOpts := len(e.Options) > 0; gotOpts != wantOpts {
			t.Errorf("entry %q: options declared = %v, want %v", e.Key, gotOpts, wantOpts)
		}
		if _, ok := Info(e.Key); !ok {
			t.Errorf("Info(%q) not found", e.Key)
		}
	}
	if _, ok := Info("nope"); ok {
		t.Error("Info of unknown scheme should report !ok")
	}
}

// TestCanonicalOptions: equivalent payloads canonicalize identically,
// defaults canonicalize to the empty string, and invalid payloads —
// unknown fields, trailing data, options on an optionless scheme, unknown
// scheme — are rejected.
func TestCanonicalOptions(t *testing.T) {
	for _, raw := range []string{"", "{}", `{"passthrough":false}`, " {\n} "} {
		got, err := CanonicalOptions("ondie-sec", []byte(raw))
		if err != nil || got != "" {
			t.Errorf("default payload %q: got (%q, %v), want (\"\", nil)", raw, got, err)
		}
	}
	for _, raw := range []string{`{"passthrough":true}`, `{ "passthrough" : true }`} {
		got, err := CanonicalOptions("ondie+chipkill", []byte(raw))
		if err != nil || got != `{"passthrough":true}` {
			t.Errorf("payload %q: got (%q, %v)", raw, got, err)
		}
	}
	for name, raw := range map[string]string{
		"unknown field":     `{"bogus":1}`,
		"trailing data":     `{} {}`,
		"not an object":     `[1,2]`,
		"undeclared option": `{"passthrough":true}`,
	} {
		scheme := "ondie-sec"
		if name == "undeclared option" {
			scheme = "chipkill36" // accepts no options
		}
		if _, err := CanonicalOptions(scheme, []byte(raw)); err == nil {
			t.Errorf("%s: %q accepted", name, raw)
		}
	}
	if _, err := CanonicalOptions("nope", nil); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestBuild: the default configuration is the shared instance; a
// parameterized build is fresh and carries the option.
func TestBuild(t *testing.T) {
	s, err := Build("ondie+raim18", "")
	if err != nil {
		t.Fatal(err)
	}
	if s != ByName("ondie+raim18") {
		t.Error("default Build should return the shared instance")
	}
	p, err := Build("ondie+raim18", `{"passthrough":true}`)
	if err != nil {
		t.Fatal(err)
	}
	od, ok := p.(*OnDie)
	if !ok || !od.Passthrough() {
		t.Fatalf("parameterized Build: got %T passthrough=%v", p, ok && od.Passthrough())
	}
	if p == s {
		t.Error("parameterized Build must not alias the shared default")
	}
	if _, err := Build("chipkill36", `{"passthrough":true}`); err == nil {
		t.Error("options on an optionless scheme accepted")
	}
	if _, err := Build("nope", ""); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestOnDieScrubObservesSingleBit: a single-bit fault is repaired in
// place by the chip's corrector and reported via Scrub — the window the
// fault-injection experiments use — while Detect stays clean.
func TestOnDieScrubObservesSingleBit(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, name := range []string{"ondie-sec", "ondie+chipkill", "ondie+raim18"} {
		t.Run(name, func(t *testing.T) {
			s := ByName(name)
			type scrubber interface {
				Scrub(*Codeword) []dram.ScrubResult
			}
			d := randLine(r, s)
			clean, _ := s.Encode(d)
			cw := clean.Clone()
			chip := r.Intn(len(cw.Shards))
			bit := r.Intn(8 * len(cw.Shards[chip]))
			cw.Shards[chip][bit/8] ^= 1 << uint(bit%8)
			if res := s.Detect(cw.Clone()); res.ErrorDetected {
				t.Fatal("single-bit fault must be invisible to Detect")
			}
			res := s.(scrubber).Scrub(cw)
			for i, sr := range res {
				want := dram.ScrubClean
				if i == chip {
					want = dram.ScrubCorrected
				}
				if sr.Outcome != want {
					t.Fatalf("chip %d outcome %v, want %v", i, sr.Outcome, want)
				}
			}
			for i := range cw.Shards {
				if !bytes.Equal(cw.Shards[i], clean.Shards[i]) {
					t.Fatalf("scrub did not restore chip %d in place", i)
				}
			}
		})
	}
}

// TestOnDieCompositeChipKill: the cross-layer schemes correct a whole-chip
// failure on any shard — data, rank-check, or detection — because the
// rank-level code underneath is chip-kill correct regardless of what the
// dead chip's on-die corrector does to garbage.
func TestOnDieCompositeChipKill(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, name := range []string{"ondie+chipkill", "ondie+raim18"} {
		t.Run(name, func(t *testing.T) {
			s := ByName(name)
			for trial := 0; trial < 25; trial++ {
				d := randLine(r, s)
				cw, corr := s.Encode(d)
				chip := r.Intn(len(cw.Shards))
				r.Read(cw.Shards[chip])
				got, _, err := s.Correct(cw, corr)
				if err != nil {
					t.Fatalf("trial %d chip %d: %v", trial, chip, err)
				}
				if !bytes.Equal(got, d) {
					t.Fatalf("trial %d chip %d: wrong data", trial, chip)
				}
			}
		})
	}
}

// TestOnDieRAIM18GroupKill: ondie+raim18 survives a whole RAIM group
// (channel) failure — every chip of one group killed at once — via the
// rank's P/Q erasure decode, the paper's channel-kill scenario.
func TestOnDieRAIM18GroupKill(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	s := ByName("ondie+raim18")
	for trial := 0; trial < 25; trial++ {
		d := randLine(r, s)
		cw, corr := s.Encode(d)
		group := r.Intn(len(cw.Shards) - 1) // any data group; shard 4 is detection
		r.Read(cw.Shards[group])
		if res := s.Detect(cw.Clone()); !res.ErrorDetected {
			t.Fatalf("trial %d: dead group %d not detected", trial, group)
		}
		got, rep, err := s.Correct(cw, corr)
		if err != nil {
			t.Fatalf("trial %d group %d: %v", trial, group, err)
		}
		if !bytes.Equal(got, d) {
			t.Fatalf("trial %d group %d: wrong data", trial, group)
		}
		if rep == nil || len(rep.CorrectedChips) == 0 {
			t.Fatalf("trial %d: erasure correction not reported", trial)
		}
	}
}

// TestOnDieOnlyChipKill: the bare on-die rank has no inter-chip code — a
// dead chip is either flagged uncorrectable or silently miscorrected, but
// never silently returned as the true data.
func TestOnDieOnlyChipKill(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	s := ByName("ondie-sec")
	flagged, silent := 0, 0
	for trial := 0; trial < 100; trial++ {
		d := randLine(r, s)
		cw, corr := s.Encode(d)
		chip := r.Intn(len(cw.Shards))
		orig := append([]byte(nil), cw.Shards[chip]...)
		r.Read(cw.Shards[chip])
		if bytes.Equal(cw.Shards[chip], orig) {
			continue
		}
		got, _, err := s.Correct(cw, corr)
		switch {
		case err != nil:
			flagged++
		case bytes.Equal(got, d):
			t.Fatalf("trial %d: dead chip %d silently decoded to the truth", trial, chip)
		default:
			silent++ // silent data corruption — the scheme's designed weakness
		}
	}
	if flagged == 0 || silent == 0 {
		t.Fatalf("chip-kill campaign should see both detections (%d) and silent corruptions (%d)", flagged, silent)
	}
}

// TestOnDiePassthrough: with the corrector disabled the base scheme sees
// raw array errors — a single-bit fault is detected at rank level and
// Scrub neither reports nor repairs anything.
func TestOnDiePassthrough(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	s, err := Build("ondie+chipkill", `{"passthrough":true}`)
	if err != nil {
		t.Fatal(err)
	}
	od := s.(*OnDie)
	d := randLine(r, s)
	cw, corr := s.Encode(d)
	cw.Shards[5][2] ^= 0x08
	before := cw.Clone()
	res := od.Scrub(cw)
	for i, sr := range res {
		if sr.Outcome != dram.ScrubClean {
			t.Fatalf("passthrough scrub reported chip %d as %v", i, sr.Outcome)
		}
	}
	for i := range cw.Shards {
		if !bytes.Equal(cw.Shards[i], before.Shards[i]) {
			t.Fatalf("passthrough scrub mutated chip %d", i)
		}
	}
	if det := s.Detect(cw); !det.ErrorDetected {
		t.Fatal("raw single-bit fault must be visible to the rank-level code under passthrough")
	}
	got, _, err := s.Correct(cw, corr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, d) {
		t.Fatal("rank-level code failed to correct the raw fault")
	}
}

// TestOnDieOnlyPassthroughIsNonECC: ondie-sec with passthrough is a plain
// non-ECC rank — a bit flip sails through Detect and Correct undetected.
// This is the profiler's bypass-read configuration, not a bug.
func TestOnDieOnlyPassthroughIsNonECC(t *testing.T) {
	r := rand.New(rand.NewSource(46))
	s, err := Build("ondie-sec", `{"passthrough":true}`)
	if err != nil {
		t.Fatal(err)
	}
	d := randLine(r, s)
	cw, corr := s.Encode(d)
	cw.Shards[0][0] ^= 0x01
	if det := s.Detect(cw); det.ErrorDetected {
		t.Fatal("non-ECC rank cannot detect anything")
	}
	got, _, err := s.Correct(cw, corr)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, d) {
		t.Fatal("flip should surface as silent corruption in the returned data")
	}
}

// TestOnDieMiscorrectionConfined: a double-bit fault inside one chip may
// be miscorrected by that chip's SEC code into a third flipped bit, but
// the distortion stays confined to the chip — the chip-kill-correct base
// still recovers the true line.
func TestOnDieMiscorrectionConfined(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	s := ByName("ondie+chipkill").(*OnDie)
	miscorrected := 0
	for trial := 0; trial < 200; trial++ {
		d := randLine(r, s)
		cw, corr := s.Encode(d)
		chip := r.Intn(len(cw.Shards))
		nBits := 8 * len(cw.Shards[chip])
		a, b := r.Intn(nBits), r.Intn(nBits)
		if a == b {
			continue
		}
		cw.Shards[chip][a/8] ^= 1 << uint(a%8)
		cw.Shards[chip][b/8] ^= 1 << uint(b%8)
		if res := s.Scrub(cw.Clone()); res[chip].Outcome == dram.ScrubCorrected {
			miscorrected++
		}
		got, _, err := s.Correct(cw, corr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, d) {
			t.Fatalf("trial %d: distortion escaped chip %d", trial, chip)
		}
	}
	if miscorrected == 0 {
		t.Fatal("double-bit campaign should observe at least one on-die miscorrection")
	}
}
