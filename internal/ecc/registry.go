package ecc

import "sort"

// All returns one instance of every base scheme, keyed by the paper's name.
func All() map[string]Scheme {
	return map[string]Scheme{
		"chipkill36":     NewChipkill36(),
		"chipkill18":     NewChipkill18(),
		"doublechipkill": NewDoubleChipkill(),
		"lotecc5":        NewLOTECC5(),
		"lotecc5rs":      NewLOTECC5RS(),
		"lotecc9":        NewLOTECC9(),
		"multiecc":       NewMultiECC(),
		"raim":           NewRAIM(),
		"raim18":         NewRAIMParity(),
	}
}

// Names returns the registry keys in deterministic order.
func Names() []string {
	m := All()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ByName returns the scheme registered under name, or nil.
func ByName(name string) Scheme { return All()[name] }
