package ecc

// The scheme registry: every base and cross-layer scheme this repository
// evaluates, keyed by its serving name, as parameterized constructors
// rather than a flat map of instances. The registry is built exactly once
// (sync.Once) and the default instance of every scheme is shared — Scheme
// implementations are immutable after construction and safe for concurrent
// use — so ByName/Names on a hot path cost a map read and a slice copy,
// not a fresh allocation of every codec's tables.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// OptionSpec documents one constructor option of a registry entry, in the
// shape GET /v1/schemes serves: a JSON field name, its JSON type, and what
// it does.
type OptionSpec struct {
	Name        string `json:"name"`
	Type        string `json:"type"`
	Description string `json:"description"`
}

// Options is the decoded form of a scheme's constructor options. One
// struct covers every entry — entries that accept no options reject any
// non-empty payload in CanonicalOptions/Build.
type Options struct {
	// Passthrough disables the on-die corrector of the on-die entries:
	// check bits are stored but never consumed, so the rank-level code
	// sees the raw array error profile (the HARP comparison point).
	Passthrough bool `json:"passthrough,omitempty"`
}

// Entry describes one registered scheme.
type Entry struct {
	// Key is the serving name (api scheme field, sweep axis value).
	Key string
	// Description is the one-line summary GET /v1/schemes serves.
	Description string
	// ChipKillCorrect reports whether the scheme corrects any single-chip
	// failure — the capability the generic chip-kill tests gate on (the
	// bare on-die rank cannot).
	ChipKillCorrect bool
	// Options lists the constructor options the entry accepts (empty for
	// fixed schemes).
	Options []OptionSpec

	build func(o Options) Scheme
}

// passthroughOpt is the option schema shared by the on-die entries.
var passthroughOpt = []OptionSpec{{
	Name: "passthrough", Type: "boolean",
	Description: "disable the on-die corrector so the rank-level code sees raw array errors",
}}

var (
	regOnce    sync.Once
	regEntries map[string]*Entry
	regNames   []string          // sorted keys, shared — Names() copies
	regShared  map[string]Scheme // default (zero-Options) instances
)

func buildRegistry() {
	entries := []*Entry{
		{Key: "chipkill36", Description: "36-device commercial chipkill correct (32+4 x4, 128B lines)",
			ChipKillCorrect: true, build: func(Options) Scheme { return NewChipkill36() }},
		{Key: "chipkill18", Description: "18-device commercial chipkill correct (16+2 x4, 64B lines)",
			ChipKillCorrect: true, build: func(Options) Scheme { return NewChipkill18() }},
		{Key: "doublechipkill", Description: "40-device double-chipkill correct (32+8 x4, 128B lines)",
			ChipKillCorrect: true, build: func(Options) Scheme { return NewDoubleChipkill() }},
		{Key: "lotecc5", Description: "LOT-ECC with 5 chips per rank (4 x16 + 1 x8, 64B lines)",
			ChipKillCorrect: true, build: func(Options) Scheme { return NewLOTECC5() }},
		{Key: "lotecc5rs", Description: "LOT-ECC5 variant with RS second-tier symbols",
			ChipKillCorrect: true, build: func(Options) Scheme { return NewLOTECC5RS() }},
		{Key: "lotecc9", Description: "LOT-ECC with 9 chips per rank (9 x8, 64B lines)",
			ChipKillCorrect: true, build: func(Options) Scheme { return NewLOTECC9() }},
		{Key: "multiecc", Description: "Multi-ECC (9 x8, 64B lines, compacted multi-line T2EC)",
			ChipKillCorrect: true, build: func(Options) Scheme { return NewMultiECC() }},
		{Key: "raim", Description: "IBM-style RAIM: DIMM-kill correct (45 x4 = 5 DIMMs, 128B lines)",
			ChipKillCorrect: true, build: func(Options) Scheme { return NewRAIM() }},
		{Key: "raim18", Description: "18-device RAIM rank with P/Q group parity (ECC Parity base)",
			ChipKillCorrect: true, build: func(Options) Scheme { return NewRAIMParity() }},
		{Key: "ondie-sec", Description: "bare on-die SEC: non-ECC 8 x8 rank, per-chip Hamming correction only",
			Options: passthroughOpt,
			build:   func(o Options) Scheme { return NewOnDieOnly(o.Passthrough) }},
		{Key: "ondie+chipkill", Description: "cross-layer: per-chip on-die SEC under 36-device chipkill correct",
			ChipKillCorrect: true, Options: passthroughOpt,
			build: func(o Options) Scheme { return NewOnDie(NewChipkill36(), o.Passthrough) }},
		{Key: "ondie+raim18", Description: "cross-layer: per-chip on-die SEC under the 18-device RAIM rank",
			ChipKillCorrect: true, Options: passthroughOpt,
			build: func(o Options) Scheme { return NewOnDie(NewRAIMParity(), o.Passthrough) }},
	}
	regEntries = make(map[string]*Entry, len(entries))
	regShared = make(map[string]Scheme, len(entries))
	regNames = make([]string, 0, len(entries))
	for _, e := range entries {
		regEntries[e.Key] = e
		regShared[e.Key] = e.build(Options{})
		regNames = append(regNames, e.Key)
	}
	sort.Strings(regNames)
}

func reg() map[string]*Entry {
	regOnce.Do(buildRegistry)
	return regEntries
}

// All returns one shared instance of every registered scheme, keyed by
// name. The map is the caller's to modify; the Scheme instances inside are
// shared, immutable after construction, and safe for concurrent use.
func All() map[string]Scheme {
	reg()
	out := make(map[string]Scheme, len(regShared))
	for k, v := range regShared {
		out[k] = v
	}
	return out
}

// Names returns the registry keys in deterministic (sorted) order. The
// slice is a copy; the underlying registry is built once per process.
func Names() []string {
	reg()
	return append([]string(nil), regNames...)
}

// ByName returns the shared default instance of the scheme registered
// under name, or nil.
func ByName(name string) Scheme {
	reg()
	return regShared[name]
}

// Known reports whether name is a registered scheme key.
func Known(name string) bool {
	_, ok := reg()[name]
	return ok
}

// Info returns the registry entry for a key.
func Info(name string) (Entry, bool) {
	e, ok := reg()[name]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Entries returns every registry entry in key order, for GET /v1/schemes.
func Entries() []Entry {
	reg()
	out := make([]Entry, 0, len(regNames))
	for _, k := range regNames {
		out = append(out, *regEntries[k])
	}
	return out
}

// decodeOptions parses an options payload strictly: unknown fields are
// rejected, as is any option the entry does not declare.
func decodeOptions(e *Entry, raw []byte) (Options, error) {
	var o Options
	if len(raw) == 0 {
		return o, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&o); err != nil {
		return Options{}, fmt.Errorf("ecc: scheme %q options: %w", e.Key, err)
	}
	if dec.More() {
		return Options{}, fmt.Errorf("ecc: scheme %q options: trailing data after JSON object", e.Key)
	}
	if o.Passthrough && len(e.Options) == 0 {
		return Options{}, fmt.Errorf("ecc: scheme %q accepts no options", e.Key)
	}
	return o, nil
}

// CanonicalOptions validates an options payload against a scheme's entry
// and returns its canonical encoding: "" for defaults (nil, "{}", or all
// zero values), a minimal deterministic JSON object otherwise. Two
// payloads meaning the same configuration always canonicalize to the same
// string — the property the result cache's content addressing hashes.
func CanonicalOptions(name string, raw []byte) (string, error) {
	e, ok := reg()[name]
	if !ok {
		return "", fmt.Errorf("ecc: unknown scheme %q", name)
	}
	o, err := decodeOptions(e, raw)
	if err != nil {
		return "", err
	}
	if o == (Options{}) {
		return "", nil
	}
	b, err := json.Marshal(o)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// Build constructs a scheme from its key and a canonical-or-raw options
// payload. The default configuration ("" options) returns the shared
// instance; parameterized variants are constructed fresh (callers cache).
func Build(name, options string) (Scheme, error) {
	e, ok := reg()[name]
	if !ok {
		return nil, fmt.Errorf("ecc: unknown scheme %q", name)
	}
	o, err := decodeOptions(e, []byte(options))
	if err != nil {
		return nil, err
	}
	if o == (Options{}) {
		return regShared[name], nil
	}
	return e.build(o), nil
}
