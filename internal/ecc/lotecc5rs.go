package ecc

import "eccparity/internal/gf"

// LOTECC5RS is the §VI-D modification of LOT-ECC5: the inter-device ECC is
// a Reed–Solomon code instead of a plain parity, restoring detection of
// address-decoder errors (which intra-chip checksums cannot see, because a
// chip answering with the WRONG row returns data and checksum that are
// mutually consistent).
//
// Each 64B line is four words of eight 16-bit data symbols interleaved
// evenly across the four x16 chips (two symbols per chip per word). Two
// 16-bit check symbols protect each word; the FIRST is stored in the x8
// ECC chip and verified on every read (inter-chip, so a swapped row breaks
// it), while the SECOND, together with the per-chip localizing checksums,
// forms the correction bits carried by the ECC parity. Detected errors are
// localized by the checksums (or by trial) and repaired by two-symbol
// erasure decoding using both check symbols. Rank shape, line size and
// R = 0.25 are identical to plain LOT-ECC5, as §VI-D requires.
//
// 16-bit symbols are realized as two parallel byte lanes of an RS(10,8)
// code over GF(2^8) — identical erasure and detection structure, stdlib
// arithmetic.
type LOTECC5RS struct {
	rs *gf.RS // (10,8) per byte lane
}

// NewLOTECC5RS constructs the scheme.
func NewLOTECC5RS() *LOTECC5RS { return &LOTECC5RS{rs: gf.NewRS(10, 8)} }

const (
	l5rChips = 4  // x16 data chips
	l5rShard = 16 // bytes per chip per line
	l5rWords = 4
	l5rLine  = 64
)

// Name implements Scheme.
func (s *LOTECC5RS) Name() string { return "LOT-ECC5 (RS inter-device, §VI-D)" }

// Geometry implements Scheme: identical to LOT-ECC5.
func (s *LOTECC5RS) Geometry() Geometry { return NewLOTECC5().Geometry() }

// Overheads implements Scheme: identical split to LOT-ECC5 (the check bits
// move around but their quantity does not change).
func (s *LOTECC5RS) Overheads() Overheads { return NewLOTECC5().Overheads() }

// CorrectionSize implements Scheme: 8B of second check symbols plus 8B of
// per-chip localizing checksums — R = 0.25 like plain LOT-ECC5.
func (s *LOTECC5RS) CorrectionSize() int { return 16 }

// symOff returns the byte offset of symbol sym of word w within its chip
// shard (two symbols per chip per word, two bytes per symbol).
func symOff(w, sym int) (chip, off int) {
	return sym % l5rChips, w*4 + (sym/l5rChips)*2
}

// wordLane gathers one byte lane (0 or 1) of word w from the data shards.
func wordLane(shards [][]byte, w, lane int) []byte {
	out := make([]byte, 8)
	for sym := 0; sym < 8; sym++ {
		chip, off := symOff(w, sym)
		out[sym] = shards[chip][off+lane]
	}
	return out
}

// checksPerWord computes both 16-bit check symbols of word w: four bytes
// (first-symbol hi/lo, second-symbol hi/lo).
func (s *LOTECC5RS) checksPerWord(shards [][]byte, w int) [4]byte {
	var out [4]byte
	for lane := 0; lane < 2; lane++ {
		c := s.rs.Checks(wordLane(shards, w, lane))
		out[lane] = c[0]
		out[2+lane] = c[1]
	}
	return out
}

// Encode implements Scheme: five shards — four x16 data shards plus the
// x8 shard holding the first check symbol of every word (8B).
func (s *LOTECC5RS) Encode(data []byte) (*Codeword, []byte) {
	checkLine(s, data)
	cw := &Codeword{Shards: make([][]byte, l5rChips+1)}
	for c := 0; c < l5rChips; c++ {
		cw.Shards[c] = append([]byte(nil), data[c*l5rShard:(c+1)*l5rShard]...)
	}
	first := make([]byte, 2*l5rWords)
	for w := 0; w < l5rWords; w++ {
		ck := s.checksPerWord(cw.Shards[:l5rChips], w)
		first[2*w] = ck[0]
		first[2*w+1] = ck[1]
	}
	cw.Shards[l5rChips] = first
	return cw, s.CorrectionBits(data)
}

// Data implements Scheme. Note the data layout is chip-major (chip c holds
// data[c*16:(c+1)*16]), with the word/symbol interleaving applied on top.
func (s *LOTECC5RS) Data(cw *Codeword) []byte {
	out := make([]byte, 0, l5rLine)
	for c := 0; c < l5rChips; c++ {
		out = append(out, cw.Shards[c]...)
	}
	return out
}

// CorrectionBits implements Scheme: the second check symbol of every word
// (8B) followed by a checksum16 per chip shard (8B).
func (s *LOTECC5RS) CorrectionBits(data []byte) []byte {
	checkLine(s, data)
	shards := make([][]byte, l5rChips)
	for c := 0; c < l5rChips; c++ {
		shards[c] = data[c*l5rShard : (c+1)*l5rShard]
	}
	out := make([]byte, 0, 16)
	for w := 0; w < l5rWords; w++ {
		ck := s.checksPerWord(shards, w)
		out = append(out, ck[2], ck[3])
	}
	for c := 0; c < l5rChips; c++ {
		sum := checksum16(shards[c])
		out = append(out, sum[0], sum[1])
	}
	return out
}

// Detect implements Scheme: recompute the first check symbol of every word
// and compare with the x8 shard. Inter-chip, so address-decoder errors
// (a chip returning another row) are caught — the whole point of §VI-D.
func (s *LOTECC5RS) Detect(cw *Codeword) DetectResult {
	if len(cw.Shards) != l5rChips+1 {
		panic(ErrBadShards)
	}
	for w := 0; w < l5rWords; w++ {
		ck := s.checksPerWord(cw.Shards[:l5rChips], w)
		if ck[0] != cw.Shards[l5rChips][2*w] || ck[1] != cw.Shards[l5rChips][2*w+1] {
			return DetectResult{ErrorDetected: true}
		}
	}
	return DetectResult{}
}

// Correct implements Scheme: localize the failed chip via the checksums in
// the correction bits (or by trial), then erasure-decode its two symbol
// positions per word using both check symbols.
func (s *LOTECC5RS) Correct(cw *Codeword, corr []byte) ([]byte, *CorrectReport, error) {
	if len(cw.Shards) != l5rChips+1 {
		return nil, nil, ErrBadShards
	}
	if len(corr) != s.CorrectionSize() {
		return nil, nil, ErrUncorrectable
	}
	second := corr[:8]
	sums := corr[8:]

	var suspects []int
	for c := 0; c < l5rChips; c++ {
		if !checksumMatches(cw.Shards[c], [2]byte{sums[2*c], sums[2*c+1]}) {
			suspects = append(suspects, c)
		}
	}
	switch len(suspects) {
	case 0:
		// Data shards match their checksums. If the stored first checks
		// disagree, the x8 chip is the faulty party; data is intact either
		// way, but verify against the second checks for address errors
		// that happen to collide with a checksum.
		if s.consistentWithSecond(cw.Shards[:l5rChips], second) {
			return s.Data(cw), &CorrectReport{}, nil
		}
		return s.trialErase(cw, second, sums)
	case 1:
		out, err := s.eraseChip(cw, second, suspects[0])
		if err != nil {
			return nil, nil, err
		}
		return out, &CorrectReport{CorrectedChips: suspects, UsedErasure: true}, nil
	default:
		return nil, nil, ErrUncorrectable
	}
}

// consistentWithSecond verifies the second check symbols against the data.
func (s *LOTECC5RS) consistentWithSecond(shards [][]byte, second []byte) bool {
	for w := 0; w < l5rWords; w++ {
		ck := s.checksPerWord(shards, w)
		if ck[2] != second[2*w] || ck[3] != second[2*w+1] {
			return false
		}
	}
	return true
}

// eraseChip erasure-decodes chip c's two symbols of every word using the
// stored first check (x8 shard) and the second check (correction bits).
func (s *LOTECC5RS) eraseChip(cw *Codeword, second []byte, c int) ([]byte, error) {
	repaired := make([][]byte, l5rChips)
	for i := 0; i < l5rChips; i++ {
		repaired[i] = append([]byte(nil), cw.Shards[i]...)
	}
	for w := 0; w < l5rWords; w++ {
		for lane := 0; lane < 2; lane++ {
			full := make([]byte, 10)
			copy(full, wordLane(repaired, w, lane))
			full[8] = cw.Shards[l5rChips][2*w+lane]
			full[9] = second[2*w+lane]
			// Chip c contributes symbols c and c+4 of the word.
			decoded, err := s.rs.DecodeErasures(full, []int{c, c + 4})
			if err != nil {
				return nil, ErrUncorrectable
			}
			for _, sym := range []int{c, c + 4} {
				chip, off := symOff(w, sym)
				repaired[chip][off+lane] = decoded[sym]
			}
		}
	}
	out := make([]byte, 0, l5rLine)
	for i := 0; i < l5rChips; i++ {
		out = append(out, repaired[i]...)
	}
	return out, nil
}

// trialErase handles errors the checksums missed (address errors whose
// wrong-row data carries a consistent checksum): erase each chip in turn
// and accept the unique repair consistent with both check symbols and the
// stored checksums.
func (s *LOTECC5RS) trialErase(cw *Codeword, second, sums []byte) ([]byte, *CorrectReport, error) {
	winner := -1
	var winnerData []byte
	for c := 0; c < l5rChips; c++ {
		out, err := s.eraseChip(cw, second, c)
		if err != nil {
			continue
		}
		shard := out[c*l5rShard : (c+1)*l5rShard]
		if eqBytes(shard, cw.Shards[c]) {
			continue
		}
		if checksumMatches(shard, [2]byte{sums[2*c], sums[2*c+1]}) {
			if winner >= 0 {
				return nil, nil, ErrUncorrectable
			}
			winner = c
			winnerData = out
		}
	}
	if winner < 0 {
		return nil, nil, ErrUncorrectable
	}
	return winnerData, &CorrectReport{CorrectedChips: []int{winner}, UsedErasure: true}, nil
}
