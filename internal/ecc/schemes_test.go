package ecc

import (
	"bytes"
	"math/rand"
	"testing"
)

// Scheme-specific behaviours beyond the generic contract.

func TestChipkill36DoubleChipDetectedNotMiscorrected(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	s := NewChipkill36()
	for trial := 0; trial < 50; trial++ {
		d := randLine(r, s)
		cw, corr := s.Encode(d)
		a, b := r.Intn(32), r.Intn(32)
		for a == b {
			b = r.Intn(32)
		}
		cw.XorChip(a, byte(1+r.Intn(255)))
		cw.XorChip(b, byte(1+r.Intn(255)))
		if res := s.Detect(cw); !res.ErrorDetected {
			t.Fatalf("trial %d: double chip error not detected", trial)
		}
		got, _, err := s.Correct(cw, corr)
		if err == nil && bytes.Equal(got, d) {
			t.Fatalf("trial %d: double chip error silently produced original data", trial)
		}
		// The correct-one/detect-two policy should flag this.
		if err == nil {
			t.Fatalf("trial %d: double chip error miscorrected without flag", trial)
		}
	}
}

func TestChipkill36CorruptedCorrectionBitsTolerated(t *testing.T) {
	// A fault in the chips storing correction bits must not corrupt data:
	// RS(36,34) treats the bad check symbol as the single error.
	r := rand.New(rand.NewSource(21))
	s := NewChipkill36()
	d := randLine(r, s)
	cw, corr := s.Encode(d)
	corr[0] ^= 0x55
	got, _, err := s.Correct(cw, corr)
	if err != nil {
		t.Fatalf("corrupted correction symbol not tolerated: %v", err)
	}
	if !bytes.Equal(got, d) {
		t.Fatal("data corrupted")
	}
}

func TestChipkill18DetectionCoverageReduced(t *testing.T) {
	// With only 2 check symbols, a 2-chip error can miscorrect — the
	// paper's "potentially slightly impacts error detection coverage".
	// We only require that *single* chip errors always decode correctly,
	// which the generic tests cover; here we document the failure mode by
	// checking that at least some double errors are NOT flagged as
	// uncorrectable (they alias into a valid single-error syndrome).
	r := rand.New(rand.NewSource(22))
	s := NewChipkill18()
	aliased := 0
	for trial := 0; trial < 200; trial++ {
		d := randLine(r, s)
		cw, _ := s.Encode(d)
		cw.XorChip(0, byte(1+r.Intn(255)))
		cw.XorChip(1, byte(1+r.Intn(255)))
		if got, _, err := s.Correct(cw, nil); err == nil && !bytes.Equal(got, d) {
			aliased++
		}
	}
	if aliased == 0 {
		t.Skip("no aliasing observed in 200 trials (acceptable: stronger than commercial)")
	}
}

func TestLOTECCGECGroupFactors(t *testing.T) {
	if NewLOTECC5().LinesPerGECLine() != 4 {
		t.Error("LOT-ECC5 GEC line must cover 4 data lines")
	}
	if NewLOTECC9().LinesPerGECLine() != 8 {
		t.Error("LOT-ECC9 GEC line must cover 8 data lines")
	}
}

func TestLOTECC5StaleGECDetected(t *testing.T) {
	// Correcting with stale correction bits (wrong line version) must not
	// fabricate data: either error out or return the line as stored.
	r := rand.New(rand.NewSource(23))
	s := NewLOTECC5()
	d1 := randLine(r, s)
	d2 := randLine(r, s)
	cw, _ := s.Encode(d1)
	_, staleCorr := s.Encode(d2)
	cw.CorruptChip(0, 0xEE)
	if got, _, err := s.Correct(cw, staleCorr); err == nil && bytes.Equal(got, d1) {
		t.Fatal("stale GEC produced a confident wrong repair equal to original (impossible)")
	}
}

func TestLOTECCTwoChipFailureUncorrectable(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for _, s := range []*LOTECC{NewLOTECC5(), NewLOTECC9()} {
		d := randLine(r, s)
		cw, corr := s.Encode(d)
		cw.CorruptChip(0, 0x11)
		cw.CorruptChip(1, 0x22)
		if _, _, err := s.Correct(cw, corr); err == nil {
			t.Errorf("%s: two dead data chips must be uncorrectable", s.Name())
		}
	}
}

func TestMultiECCLocalizationByTrial(t *testing.T) {
	// Multi-ECC has no localizing checksum; verify the trial decoder finds
	// the right chip for every position.
	r := rand.New(rand.NewSource(25))
	s := NewMultiECC()
	d := randLine(r, s)
	cwClean, corr := s.Encode(d)
	for chip := 0; chip < meDataChips; chip++ {
		cw := cwClean.Clone()
		cw.CorruptChip(chip, 0x99)
		got, rep, err := s.Correct(cw, corr)
		if err != nil {
			t.Fatalf("chip %d: %v", chip, err)
		}
		if !bytes.Equal(got, d) {
			t.Fatalf("chip %d: wrong data", chip)
		}
		if len(rep.CorrectedChips) != 1 || rep.CorrectedChips[0] != chip {
			t.Fatalf("chip %d: localized to %v", chip, rep.CorrectedChips)
		}
	}
}

func TestRAIMFullDIMMKill(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	s := NewRAIM()
	d := randLine(r, s)
	cwClean, corr := s.Encode(d)
	for dimm := 0; dimm < raimDIMMs; dimm++ {
		for _, pat := range []byte{0x00, 0xFF} {
			cw := cwClean.Clone()
			cw.CorruptChip(dimm, pat)
			got, rep, err := s.Correct(cw, corr)
			if err != nil {
				t.Fatalf("DIMM %d pattern %#x: %v", dimm, pat, err)
			}
			if !bytes.Equal(got, d) {
				t.Fatalf("DIMM %d: wrong data", dimm)
			}
			if !rep.UsedErasure {
				t.Fatalf("DIMM %d: expected erasure correction", dimm)
			}
		}
	}
}

func TestRAIMTwoDIMMsUncorrectable(t *testing.T) {
	r := rand.New(rand.NewSource(27))
	s := NewRAIM()
	d := randLine(r, s)
	cw, corr := s.Encode(d)
	cw.CorruptChip(0, 0xDE)
	cw.CorruptChip(2, 0xAD)
	if _, _, err := s.Correct(cw, corr); err == nil {
		t.Fatal("two dead DIMMs must be uncorrectable")
	}
}

func TestRAIMParityDoubleGroupErasure(t *testing.T) {
	// The P/Q pair corrects two group failures when both are localized by
	// their checksums.
	r := rand.New(rand.NewSource(28))
	s := NewRAIMParity()
	for trial := 0; trial < 30; trial++ {
		d := randLine(r, s)
		cw, corr := s.Encode(d)
		perm := r.Perm(rpGroups)
		cw.CorruptChip(perm[0], byte(1+r.Intn(255)))
		cw.CorruptChip(perm[1], byte(1+r.Intn(255)))
		got, rep, err := s.Correct(cw, corr)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, d) {
			t.Fatalf("trial %d: wrong data", trial)
		}
		if len(rep.CorrectedChips) != 2 {
			t.Fatalf("trial %d: corrected %v", trial, rep.CorrectedChips)
		}
	}
}

func TestRAIMParityLocateWithoutChecksum(t *testing.T) {
	// Corrupt a group AND its checksum entry so detection is blind in the
	// right place but P/Q still locate and repair it... here instead we
	// corrupt data in a way that keeps the group checksum accidentally
	// valid is hard to construct; so we test the no-suspect path directly
	// by zapping the detection shard to match the corrupted data.
	r := rand.New(rand.NewSource(29))
	s := NewRAIMParity()
	d := randLine(r, s)
	cw, corr := s.Encode(d)
	g := 2
	cw.XorChip(g, 0x40)
	// Recompute the detection entry so Detect sees nothing.
	sum := checksum16(cw.Shards[g])
	cw.Shards[rpGroups][2*g] = sum[0]
	cw.Shards[rpGroups][2*g+1] = sum[1]
	if res := s.Detect(cw); res.ErrorDetected {
		t.Fatal("setup: detection should be blind")
	}
	got, rep, err := s.Correct(cw, corr)
	if err != nil {
		t.Fatalf("P/Q localization failed: %v", err)
	}
	if !bytes.Equal(got, d) {
		t.Fatal("wrong data")
	}
	if len(rep.CorrectedChips) != 1 || rep.CorrectedChips[0] != g {
		t.Fatalf("localized to %v, want [%d]", rep.CorrectedChips, g)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"chipkill18", "chipkill36", "doublechipkill", "lotecc5", "lotecc5rs", "lotecc9", "multiecc", "ondie+chipkill", "ondie+raim18", "ondie-sec", "raim", "raim18"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d schemes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry order: got %v", got)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("unknown name must return nil")
	}
}

func TestChecksumDetectsStuckAt(t *testing.T) {
	// Dead-device patterns must not collide with typical shard sums.
	shard := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	sum := checksum16(shard)
	zero := make([]byte, 8)
	if checksum16(zero) == sum {
		t.Fatal("stuck-at-zero collides")
	}
	ones := bytes.Repeat([]byte{0xFF}, 8)
	if checksum16(ones) == sum {
		t.Fatal("stuck-at-one collides")
	}
	if checksum16(zero) == [2]byte{} {
		t.Fatal("all-zero shard must not checksum to zero (0xFFFF init)")
	}
}

// TestChecksumNeverMissesFixedXORPattern: the CRC guarantee the schemes
// rely on — any fixed nonzero XOR pattern changes the checksum for EVERY
// data value (an additive Fletcher sum can cancel; a CRC cannot).
func TestChecksumNeverMissesFixedXORPattern(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	for trial := 0; trial < 300; trial++ {
		shard := make([]byte, 16)
		r.Read(shard)
		mask := byte(1 + r.Intn(255))
		corrupted := make([]byte, 16)
		for i := range shard {
			corrupted[i] = shard[i] ^ mask
		}
		if checksum16(shard) == checksum16(corrupted) {
			t.Fatalf("trial %d: CRC missed constant mask %#x", trial, mask)
		}
	}
}

func TestDoubleChipkillTwoChipKill(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	s := NewDoubleChipkill()
	for trial := 0; trial < 50; trial++ {
		d := randLine(r, s)
		cw, corr := s.Encode(d)
		perm := r.Perm(34)
		cw.CorruptChip(perm[0], byte(1+r.Intn(255)))
		cw.CorruptChip(perm[1], byte(1+r.Intn(255)))
		got, rep, err := s.Correct(cw, corr)
		if err != nil {
			t.Fatalf("trial %d: two dead chips must correct: %v", trial, err)
		}
		if !bytes.Equal(got, d) {
			t.Fatalf("trial %d: wrong data", trial)
		}
		if len(rep.CorrectedChips) == 0 {
			t.Fatalf("trial %d: no repair reported", trial)
		}
	}
}

func TestDoubleChipkillThreeChipsFlagged(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	s := NewDoubleChipkill()
	for trial := 0; trial < 50; trial++ {
		d := randLine(r, s)
		cw, corr := s.Encode(d)
		perm := r.Perm(32)
		for i := 0; i < 3; i++ {
			cw.XorChip(perm[i], byte(1+r.Intn(255)))
		}
		if got, _, err := s.Correct(cw, corr); err == nil && bytes.Equal(got, d) == false {
			t.Fatalf("trial %d: three dead chips silently miscorrected", trial)
		} else if err == nil {
			t.Fatalf("trial %d: three dead chips must be flagged (distance 9 locates 3 but policy detects)", trial)
		}
	}
}

func TestDoubleChipkillROverhead(t *testing.T) {
	s := NewDoubleChipkill()
	if got := R(s); got != 0.1875 {
		t.Fatalf("R = %v, want 0.1875 (24B per 128B line)", got)
	}
	if got := s.Overheads().Total(); got != 0.25 {
		t.Fatalf("overhead %v, want 25%% (8 of 32)", got)
	}
}

// TestLOTECC5RSAddressErrorDetected is the §VI-D scenario: a chip with an
// address-decoder fault returns another row's (self-consistent) data. An
// intra-chip checksum travels with the wrong data and matches it, so
// plain LOT-ECC cannot see the error; the RS inter-device code can.
func TestLOTECC5RSAddressErrorDetected(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	s := NewLOTECC5RS()
	lineA := randLine(r, s)
	lineB := randLine(r, s)
	cwA, corrA := s.Encode(lineA)
	cwB, _ := s.Encode(lineB)

	// Chip 1 answers with row B's shard instead of row A's.
	cwA.Shards[1] = append([]byte(nil), cwB.Shards[1]...)

	if det := s.Detect(cwA); !det.ErrorDetected {
		t.Fatal("inter-device RS code must detect the address error on the fly")
	}
	got, rep, err := s.Correct(cwA, corrA)
	if err != nil {
		t.Fatalf("address error must be correctable: %v", err)
	}
	if !bytes.Equal(got, lineA) {
		t.Fatal("wrong data after address-error repair")
	}
	if len(rep.CorrectedChips) != 1 || rep.CorrectedChips[0] != 1 {
		t.Fatalf("localized to %v, want [1]", rep.CorrectedChips)
	}
}

// TestLOTECC5RSAddressErrorInvisibleToIntraChipChecksum documents the
// baseline blind spot §VI-D fixes: if detection were purely intra-chip,
// wrong-row data carrying its own checksum passes (here emulated by
// CRC-checking the swapped shard in isolation).
func TestLOTECC5RSAddressErrorInvisibleToIntraChipChecksum(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	s := NewLOTECC5RS()
	lineB := randLine(r, s)
	cwB, _ := s.Encode(lineB)
	// The wrong-row shard is internally consistent: an intra-chip checksum
	// computed over it matches, so a LOT-ECC-style check would pass.
	swapped := cwB.Shards[1]
	if !checksumMatches(swapped, checksum16(swapped)) {
		t.Fatal("sanity: the shard must be self-consistent")
	}
}

// TestLOTECC5RSGeometryMatchesLOTECC5: §VI-D requires no change to rank
// size, line size or capacity overhead.
func TestLOTECC5RSGeometryMatchesLOTECC5(t *testing.T) {
	a, b := NewLOTECC5RS(), NewLOTECC5()
	if a.Geometry().RankConfig != b.Geometry().RankConfig ||
		a.Geometry().LineSize != b.Geometry().LineSize {
		t.Fatal("geometry must match LOT-ECC5")
	}
	if a.Overheads() != b.Overheads() {
		t.Fatal("capacity overhead must match LOT-ECC5")
	}
	if R(a) != R(b) {
		t.Fatalf("R must stay 0.25, got %v", R(a))
	}
}

// TestLOTECC5RSX8ChipFailure: losing the chip holding the first check
// symbols must not lose data.
func TestLOTECC5RSX8ChipFailure(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	s := NewLOTECC5RS()
	d := randLine(r, s)
	cw, corr := s.Encode(d)
	cw.CorruptChip(l5rChips, 0x77)
	if det := s.Detect(cw); !det.ErrorDetected {
		t.Fatal("x8 failure must be detected")
	}
	got, _, err := s.Correct(cw, corr)
	if err != nil {
		t.Fatalf("x8 failure must be tolerated: %v", err)
	}
	if !bytes.Equal(got, d) {
		t.Fatal("data corrupted by x8 failure")
	}
}
