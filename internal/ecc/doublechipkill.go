package ecc

import "eccparity/internal/gf"

// DoubleChipkill models a double-chipkill-correct ECC — one of the
// "diverse memory ECCs (e.g., chipkill correct, double chipkill correct,
// DIMM-kill correct)" the paper names as overlay substrates but does not
// evaluate. Each 128B line is striped across 40 x4 chips: 32 data, 2
// detection, and 6 correction symbols per word under a single RS(40,32)
// code (distance 9). The decode policy corrects up to TWO simultaneous
// chip failures and flags three.
//
// The detection/correction split mirrors Chipkill36: the first two check
// symbols are recomputed and compared on every read; the remaining six are
// the correction bits (24B per 128B line, R = 0.1875) that the ECC Parity
// overlay replaces with a cross-channel parity for fault-free memory.
type DoubleChipkill struct {
	code *gf.RS // (40,32), distance 9
}

// NewDoubleChipkill constructs the scheme.
func NewDoubleChipkill() *DoubleChipkill {
	return &DoubleChipkill{code: gf.NewRS(40, 32)}
}

const (
	dckWords     = 4
	dckDataChips = 32
	dckLine      = 128
	dckDetChips  = 2
	dckCorrChips = 6
)

// Name implements Scheme.
func (s *DoubleChipkill) Name() string { return "double chipkill correct" }

// Geometry implements Scheme. The extra correction chips widen the rank to
// 40 devices; channel counts follow the 128B-line commercial layout.
func (s *DoubleChipkill) Geometry() Geometry {
	return Geometry{
		RankConfig:      "40 x4",
		Chips:           []ChipClass{{Width: 4, Count: 40}},
		LineSize:        dckLine,
		RanksPerChannel: 1,
		ChannelsDualEq:  2,
		ChannelsQuadEq:  4,
		PinsDualEq:      320,
		PinsQuadEq:      640,
	}
}

// Overheads implements Scheme: 2 detection + 6 correction chips per 32.
func (s *DoubleChipkill) Overheads() Overheads {
	return Overheads{Detection: float64(dckDetChips) / 32, Correction: float64(dckCorrChips) / 32}
}

// CorrectionSize implements Scheme: 6 symbols × 4 words.
func (s *DoubleChipkill) CorrectionSize() int { return dckCorrChips * dckWords }

// Encode implements Scheme: 34 shards (data + detection) of 4 bytes; the
// 24 correction bytes are returned separately.
func (s *DoubleChipkill) Encode(data []byte) (*Codeword, []byte) {
	checkLine(s, data)
	cw := &Codeword{Shards: make([][]byte, dckDataChips+dckDetChips)}
	for i := range cw.Shards {
		cw.Shards[i] = make([]byte, dckWords)
	}
	corr := make([]byte, 0, s.CorrectionSize())
	word := make([]byte, dckDataChips)
	for w := 0; w < dckWords; w++ {
		for c := 0; c < dckDataChips; c++ {
			b := data[w*dckDataChips+c]
			cw.Shards[c][w] = b
			word[c] = b
		}
		checks := s.code.Checks(word)
		cw.Shards[32][w] = checks[0]
		cw.Shards[33][w] = checks[1]
		corr = append(corr, checks[2:]...)
	}
	return cw, corr
}

// Data implements Scheme.
func (s *DoubleChipkill) Data(cw *Codeword) []byte {
	out := make([]byte, dckLine)
	for w := 0; w < dckWords; w++ {
		for c := 0; c < dckDataChips; c++ {
			out[w*dckDataChips+c] = cw.Shards[c][w]
		}
	}
	return out
}

// Detect implements Scheme: recompute-and-compare on the two detection
// symbols of every word.
func (s *DoubleChipkill) Detect(cw *Codeword) DetectResult {
	if len(cw.Shards) != dckDataChips+dckDetChips {
		panic(ErrBadShards)
	}
	word := make([]byte, dckDataChips)
	for w := 0; w < dckWords; w++ {
		for c := 0; c < dckDataChips; c++ {
			word[c] = cw.Shards[c][w]
		}
		checks := s.code.Checks(word)
		if checks[0] != cw.Shards[32][w] || checks[1] != cw.Shards[33][w] {
			return DetectResult{ErrorDetected: true}
		}
	}
	return DetectResult{}
}

// CorrectionBits implements Scheme: check symbols 2–7 of every word.
func (s *DoubleChipkill) CorrectionBits(data []byte) []byte {
	checkLine(s, data)
	out := make([]byte, 0, s.CorrectionSize())
	word := make([]byte, dckDataChips)
	for w := 0; w < dckWords; w++ {
		copy(word, data[w*dckDataChips:(w+1)*dckDataChips])
		checks := s.code.Checks(word)
		out = append(out, checks[2:]...)
	}
	return out
}

// Correct implements Scheme: full RS(40,32) decoding; distance 9 corrects
// any ≤4-symbol pattern, and the correct-two/detect-more policy accepts up
// to two repaired chips per word.
func (s *DoubleChipkill) Correct(cw *Codeword, corr []byte) ([]byte, *CorrectReport, error) {
	if len(cw.Shards) != dckDataChips+dckDetChips {
		return nil, nil, ErrBadShards
	}
	if len(corr) != s.CorrectionSize() {
		return nil, nil, ErrUncorrectable
	}
	out := make([]byte, dckLine)
	corrected := map[int]bool{}
	full := make([]byte, 40)
	for w := 0; w < dckWords; w++ {
		for c := 0; c < dckDataChips+dckDetChips; c++ {
			full[c] = cw.Shards[c][w]
		}
		copy(full[34:], corr[w*dckCorrChips:(w+1)*dckCorrChips])
		before := append([]byte(nil), full...)
		decoded, err := s.code.Decode(full)
		if err != nil {
			return nil, nil, ErrUncorrectable
		}
		fixes := 0
		for c := 0; c < 40; c++ {
			if full[c] != before[c] {
				fixes++
				if c < 34 {
					corrected[c] = true
				}
			}
		}
		if fixes > 2 {
			return nil, nil, ErrUncorrectable
		}
		copy(out[w*dckDataChips:], decoded)
	}
	report := &CorrectReport{}
	for c := range corrected {
		report.CorrectedChips = append(report.CorrectedChips, c)
	}
	return out, report, nil
}
