package gf

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatal("Add must be XOR")
	}
}

func TestMulIdentity(t *testing.T) {
	for a := 0; a < Order; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for a=%d", a)
		}
		if Mul(byte(a), 0) != 0 {
			t.Fatalf("a*0 != 0 for a=%d", a)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivInvertsMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInv(t *testing.T) {
	for a := 1; a < Order; a++ {
		if Mul(byte(a), Inv(byte(a))) != 1 {
			t.Fatalf("a*a^-1 != 1 for a=%d", a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) must panic")
		}
	}()
	Inv(0)
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero must panic")
		}
	}()
	Div(1, 0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < Order; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(a)) != a for a=%d", a)
		}
	}
}

func TestExpGeneratesField(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < Order-1; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != Order-1 {
		t.Fatalf("α must generate all %d nonzero elements, got %d", Order-1, len(seen))
	}
}

func TestPolyEvalConstant(t *testing.T) {
	if PolyEval([]byte{7}, 123) != 7 {
		t.Fatal("constant polynomial must evaluate to itself")
	}
}

func TestPolyEvalLinear(t *testing.T) {
	// p(x) = 3x + 5 at x=2 → Mul(3,2)^5
	want := Mul(3, 2) ^ 5
	if got := PolyEval([]byte{3, 5}, 2); got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestPolyMulDegree(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5}
	p := PolyMul(a, b)
	if len(p) != len(a)+len(b)-1 {
		t.Fatalf("product degree wrong: len=%d", len(p))
	}
}

func TestPolyMulEvalHomomorphism(t *testing.T) {
	f := func(a0, a1, b0, b1, x byte) bool {
		a := []byte{a0, a1}
		b := []byte{b0, b1}
		return PolyEval(PolyMul(a, b), x) == Mul(PolyEval(a, x), PolyEval(b, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolyAdd(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{5}
	got := PolyAdd(a, b)
	want := []byte{1, 2, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PolyAdd got %v want %v", got, want)
		}
	}
}

func TestPolyTrim(t *testing.T) {
	got := polyTrim([]byte{0, 0, 7, 0})
	if len(got) != 2 || got[0] != 7 {
		t.Fatalf("polyTrim got %v", got)
	}
	got = polyTrim([]byte{0, 0, 0})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("polyTrim of zero poly got %v", got)
	}
}
