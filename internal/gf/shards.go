package gf

import (
	"errors"
	"fmt"
)

// Striper is a systematic (k+m, k) erasure coder for shard striping: a
// payload split into k equal-length data shards gains m parity shards, and
// any k surviving shards — data or parity, in any combination — rebuild
// the rest. Column i across the shard set is one codeword of the same
// Reed–Solomon family the memory schemes use (NewRS(k+m, k)), so the
// striper inherits the code's MDS guarantee: every k×k submatrix of its
// generator is invertible and m lost shards are always recoverable.
//
// This is the paper's core move lifted one level up: one set of parity
// resources amortized across k independent channels — here, shard
// directories on independent machines — rebuilding any failed one. All
// hot loops run on precomputed MulTable product rows (one table index per
// byte), the same technique the RS codec's encode path uses, and a Striper
// is read-only after NewStriper so one instance is safe to share across
// goroutines.
type Striper struct {
	k, m int
	// coef[d][j] is the generator coefficient mapping data shard d into
	// parity shard j, derived from the systematic RS code by encoding unit
	// vectors; parityMul[d][j] is its precomputed product row.
	coef      [][]byte
	parityMul [][][Order]byte
}

// ErrShortShards reports fewer surviving shards than the k needed to
// reconstruct.
var ErrShortShards = errors.New("gf: not enough shards to reconstruct")

// NewStriper builds a (k+m, k) striper. Like NewRS it panics on invalid
// geometry (k ≥ 1, m ≥ 1, k+m ≤ 255): geometry is a deployment constant,
// validated at the flag layer, never data-dependent.
func NewStriper(k, m int) *Striper {
	if k < 1 || m < 1 || k+m > Order-1 {
		panic(fmt.Sprintf("gf: invalid striper geometry k=%d m=%d", k, m))
	}
	rs := NewRS(k+m, k)
	s := &Striper{k: k, m: m}
	s.coef = make([][]byte, k)
	s.parityMul = make([][][Order]byte, k)
	unit := make([]byte, k)
	for d := 0; d < k; d++ {
		unit[d] = 1
		checks := rs.Checks(unit)
		unit[d] = 0
		s.coef[d] = checks
		s.parityMul[d] = make([][Order]byte, m)
		for j := 0; j < m; j++ {
			s.parityMul[d][j] = MulTable(checks[j])
		}
	}
	return s
}

// K returns the data shard count.
func (s *Striper) K() int { return s.k }

// M returns the parity shard count.
func (s *Striper) M() int { return s.m }

// N returns the total shard count k+m.
func (s *Striper) N() int { return s.k + s.m }

// EncodeShards fills the m parity shards (the last m entries) from the k
// data shards (the first k), all equal-length and preallocated. Parity
// contents are overwritten.
func (s *Striper) EncodeShards(shards [][]byte) error {
	if err := s.checkLengths(shards); err != nil {
		return err
	}
	size := len(shards[0])
	for j := 0; j < s.m; j++ {
		clearBytes(shards[s.k+j])
	}
	for d := 0; d < s.k; d++ {
		data := shards[d]
		for j := 0; j < s.m; j++ {
			row := &s.parityMul[d][j]
			parity := shards[s.k+j]
			for i := 0; i < size; i++ {
				parity[i] ^= row[data[i]]
			}
		}
	}
	return nil
}

// ReconstructShards rebuilds every nil entry of shards in place from the
// non-nil survivors. At least k shards must be present (ErrShortShards
// otherwise) and all present shards must share one length. Missing data
// shards are solved through the inverse of the surviving generator rows;
// missing parity shards are re-encoded from the completed data.
func (s *Striper) ReconstructShards(shards [][]byte) error {
	if len(shards) != s.N() {
		return fmt.Errorf("gf: %d shards for a (%d,%d) striper", len(shards), s.N(), s.k)
	}
	present := make([]int, 0, s.N())
	size := -1
	for i, sh := range shards {
		if sh == nil {
			continue
		}
		if size == -1 {
			size = len(sh)
		} else if len(sh) != size {
			return fmt.Errorf("gf: shard %d length %d != %d", i, len(sh), size)
		}
		present = append(present, i)
	}
	if len(present) < s.k {
		return ErrShortShards
	}
	if len(present) == s.N() {
		return nil
	}

	var missingData bool
	for d := 0; d < s.k; d++ {
		if shards[d] == nil {
			missingData = true
			break
		}
	}
	if missingData {
		// Solve D = A⁻¹·P where A is the k surviving generator rows used
		// and P their shard bytes; only the first k survivors are needed.
		rows := present[:s.k]
		inv := s.invertRows(rows)
		for d := 0; d < s.k; d++ {
			if shards[d] != nil {
				continue
			}
			out := make([]byte, size)
			for r, src := range rows {
				c := inv[d][r]
				if c == 0 {
					continue
				}
				row := MulTable(c)
				in := shards[src]
				for i := 0; i < size; i++ {
					out[i] ^= row[in[i]]
				}
			}
			shards[d] = out
		}
	}
	// Data is complete; re-encode any missing parity shards.
	for j := 0; j < s.m; j++ {
		if shards[s.k+j] != nil {
			continue
		}
		out := make([]byte, size)
		for d := 0; d < s.k; d++ {
			row := &s.parityMul[d][j]
			in := shards[d]
			for i := 0; i < size; i++ {
				out[i] ^= row[in[i]]
			}
		}
		shards[s.k+j] = out
	}
	return nil
}

// generatorRow returns row r of the (k+m)×k generator matrix: identity for
// data rows, the derived coefficients for parity rows.
func (s *Striper) generatorRow(r int) []byte {
	row := make([]byte, s.k)
	if r < s.k {
		row[r] = 1
		return row
	}
	for d := 0; d < s.k; d++ {
		row[d] = s.coef[d][r-s.k]
	}
	return row
}

// invertRows inverts the k×k matrix formed by the given generator rows via
// Gauss–Jordan elimination over GF(2^8). The RS code is MDS, so any k rows
// are linearly independent; a singular matrix here is a codec bug and
// panics like the field's own division by zero.
func (s *Striper) invertRows(rows []int) [][]byte {
	k := s.k
	a := make([][]byte, k)   // working copy, reduced to identity
	inv := make([][]byte, k) // starts as identity, becomes the inverse
	for i, r := range rows {
		a[i] = s.generatorRow(r)
		inv[i] = make([]byte, k)
		inv[i][i] = 1
	}
	for col := 0; col < k; col++ {
		pivot := -1
		for r := col; r < k; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			panic("gf: singular shard matrix (MDS violation)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if p := a[col][col]; p != 1 {
			pinv := Inv(p)
			scaleRow(a[col], pinv)
			scaleRow(inv[col], pinv)
		}
		for r := 0; r < k; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			addScaledRow(a[r], a[col], f)
			addScaledRow(inv[r], inv[col], f)
		}
	}
	return inv
}

func (s *Striper) checkLengths(shards [][]byte) error {
	if len(shards) != s.N() {
		return fmt.Errorf("gf: %d shards for a (%d,%d) striper", len(shards), s.N(), s.k)
	}
	size := len(shards[0])
	for i, sh := range shards {
		if len(sh) != size {
			return fmt.Errorf("gf: shard %d length %d != %d", i, len(sh), size)
		}
	}
	return nil
}

func scaleRow(row []byte, f byte) {
	for i, c := range row {
		row[i] = Mul(c, f)
	}
}

func addScaledRow(dst, src []byte, f byte) {
	for i, c := range src {
		dst[i] ^= Mul(c, f)
	}
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
