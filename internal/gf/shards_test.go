package gf

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// randShards builds k random data shards plus m empty parity shards.
func randShards(rng *rand.Rand, k, m, size int) [][]byte {
	shards := make([][]byte, k+m)
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < k {
			rng.Read(shards[i])
		}
	}
	return shards
}

func cloneShards(shards [][]byte) [][]byte {
	out := make([][]byte, len(shards))
	for i, s := range shards {
		out[i] = append([]byte(nil), s...)
	}
	return out
}

// Every column of an encoded shard set must be a consistent codeword of the
// underlying RS code — the striper is the same code family, transposed.
func TestStriperColumnsAreRSCodewords(t *testing.T) {
	const k, m, size = 4, 2, 64
	s := NewStriper(k, m)
	rs := NewRS(k+m, k)
	shards := randShards(rand.New(rand.NewSource(1)), k, m, size)
	if err := s.EncodeShards(shards); err != nil {
		t.Fatal(err)
	}
	cw := make([]byte, k+m)
	for i := 0; i < size; i++ {
		for p := range shards {
			cw[p] = shards[p][i]
		}
		if rs.HasError(cw) {
			t.Fatalf("column %d is not a valid RS codeword", i)
		}
	}
}

// Reconstruction must succeed for every erasure pattern of up to m shards,
// data and parity alike, restoring byte-identical contents.
func TestStriperReconstructAllErasurePatterns(t *testing.T) {
	for _, geo := range []struct{ k, m int }{{4, 2}, {2, 1}, {1, 2}, {5, 3}} {
		s := NewStriper(geo.k, geo.m)
		n := geo.k + geo.m
		orig := randShards(rand.New(rand.NewSource(int64(n))), geo.k, geo.m, 37)
		if err := s.EncodeShards(orig); err != nil {
			t.Fatal(err)
		}
		// Every subset of positions with 1..m members erased.
		for mask := 1; mask < 1<<n; mask++ {
			erased := 0
			for p := 0; p < n; p++ {
				if mask&(1<<p) != 0 {
					erased++
				}
			}
			if erased > geo.m {
				continue
			}
			work := cloneShards(orig)
			for p := 0; p < n; p++ {
				if mask&(1<<p) != 0 {
					work[p] = nil
				}
			}
			if err := s.ReconstructShards(work); err != nil {
				t.Fatalf("(%d,%d) mask %b: %v", geo.k, geo.m, mask, err)
			}
			for p := range work {
				if !bytes.Equal(work[p], orig[p]) {
					t.Fatalf("(%d,%d) mask %b: shard %d differs after reconstruction", geo.k, geo.m, mask, p)
				}
			}
		}
	}
}

// More than m erasures must be reported, never silently mis-reconstructed.
func TestStriperTooManyErasures(t *testing.T) {
	s := NewStriper(4, 2)
	shards := randShards(rand.New(rand.NewSource(7)), 4, 2, 16)
	if err := s.EncodeShards(shards); err != nil {
		t.Fatal(err)
	}
	shards[0], shards[3], shards[5] = nil, nil, nil
	if err := s.ReconstructShards(shards); !errors.Is(err, ErrShortShards) {
		t.Fatalf("ReconstructShards with 3 erasures = %v, want ErrShortShards", err)
	}
}

// Length mismatches are rejected up front for both operations.
func TestStriperLengthMismatch(t *testing.T) {
	s := NewStriper(2, 1)
	shards := [][]byte{make([]byte, 8), make([]byte, 9), make([]byte, 8)}
	if err := s.EncodeShards(shards); err == nil {
		t.Fatal("EncodeShards accepted mismatched lengths")
	}
	shards[1] = nil
	shards[2] = make([]byte, 7)
	if err := s.ReconstructShards(shards); err == nil {
		t.Fatal("ReconstructShards accepted mismatched lengths")
	}
	if err := s.EncodeShards([][]byte{nil, nil}); err == nil {
		t.Fatal("EncodeShards accepted wrong shard count")
	}
}

// Zero-length shards are a valid degenerate stripe (an empty payload).
func TestStriperZeroLength(t *testing.T) {
	s := NewStriper(4, 2)
	shards := make([][]byte, 6)
	for i := range shards {
		shards[i] = []byte{}
	}
	if err := s.EncodeShards(shards); err != nil {
		t.Fatal(err)
	}
	shards[1], shards[4] = nil, nil
	if err := s.ReconstructShards(shards); err != nil {
		t.Fatal(err)
	}
	for i, sh := range shards {
		if len(sh) != 0 {
			t.Fatalf("shard %d length %d after zero-length reconstruction", i, len(sh))
		}
	}
}

// A full shard set reconstructs to itself (no-op) and re-encoding after a
// repair yields the same parity — idempotence of the whole cycle.
func TestStriperIdempotent(t *testing.T) {
	s := NewStriper(3, 2)
	orig := randShards(rand.New(rand.NewSource(9)), 3, 2, 128)
	if err := s.EncodeShards(orig); err != nil {
		t.Fatal(err)
	}
	work := cloneShards(orig)
	if err := s.ReconstructShards(work); err != nil {
		t.Fatal(err)
	}
	for p := range work {
		if !bytes.Equal(work[p], orig[p]) {
			t.Fatalf("no-op reconstruction changed shard %d", p)
		}
	}
	work[4] = nil
	if err := s.ReconstructShards(work); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(work[4], orig[4]) {
		t.Fatal("repaired parity differs from the original encoding")
	}
}
