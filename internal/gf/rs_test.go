package gf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// geometries used by the memory ECCs in this repository.
var geometries = []struct{ n, k int }{
	{36, 32}, // 36-device commercial chipkill: 4 check symbols
	{18, 16}, // 18-device commercial chipkill: 2 check symbols
	{10, 8},  // modified LOT-ECC5 inter-device code (§VI-D)
	{5, 4},   // RAIM-style cross-DIMM stripe
	{255, 223},
}

func randData(r *rand.Rand, k int) []byte {
	d := make([]byte, k)
	r.Read(d)
	return d
}

func TestEncodeIsSystematic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, g := range geometries {
		c := NewRS(g.n, g.k)
		d := randData(r, g.k)
		cw := c.Encode(d)
		if !bytes.Equal(cw[:g.k], d) {
			t.Fatalf("(%d,%d): codeword prefix must equal data", g.n, g.k)
		}
	}
}

func TestCleanCodewordHasZeroSyndromes(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, g := range geometries {
		c := NewRS(g.n, g.k)
		for trial := 0; trial < 50; trial++ {
			cw := c.Encode(randData(r, g.k))
			if c.HasError(cw) {
				t.Fatalf("(%d,%d): clean codeword reported errors", g.n, g.k)
			}
		}
	}
}

func TestSingleErrorCorrection(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, g := range geometries {
		c := NewRS(g.n, g.k)
		if c.R() < 2 {
			// A single check symbol only detects; unknown-position
			// correction needs R ≥ 2 (RAIM corrects via erasures instead).
			continue
		}
		for trial := 0; trial < 100; trial++ {
			d := randData(r, g.k)
			cw := c.Encode(d)
			pos := r.Intn(g.n)
			cw[pos] ^= byte(1 + r.Intn(255))
			got, err := c.Decode(cw)
			if err != nil {
				t.Fatalf("(%d,%d) trial %d: decode failed: %v", g.n, g.k, trial, err)
			}
			if !bytes.Equal(got, d) {
				t.Fatalf("(%d,%d) trial %d: wrong correction", g.n, g.k, trial)
			}
		}
	}
}

func TestMaxErrorCorrection(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, g := range geometries {
		c := NewRS(g.n, g.k)
		tmax := c.R() / 2
		if tmax == 0 {
			continue
		}
		for trial := 0; trial < 50; trial++ {
			d := randData(r, g.k)
			cw := c.Encode(d)
			positions := r.Perm(g.n)[:tmax]
			for _, p := range positions {
				cw[p] ^= byte(1 + r.Intn(255))
			}
			got, err := c.Decode(cw)
			if err != nil {
				t.Fatalf("(%d,%d): decode of %d errors failed: %v", g.n, g.k, tmax, err)
			}
			if !bytes.Equal(got, d) {
				t.Fatalf("(%d,%d): wrong correction of %d errors", g.n, g.k, tmax)
			}
		}
	}
}

func TestTooManyErrorsDetected(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	// With r check symbols, r/2+1 errors must not be silently "corrected"
	// to the original data; they should usually be flagged. (Miscorrection
	// to a *different* valid codeword is possible for any RS code; what must
	// never happen is returning the original data unflagged.)
	for _, g := range geometries {
		c := NewRS(g.n, g.k)
		overload := c.R()/2 + 1
		flagged := 0
		const trials = 100
		for trial := 0; trial < trials; trial++ {
			d := randData(r, g.k)
			cw := c.Encode(d)
			positions := r.Perm(g.n)[:overload]
			for _, p := range positions {
				cw[p] ^= byte(1 + r.Intn(255))
			}
			got, err := c.Decode(cw)
			if err != nil {
				flagged++
				continue
			}
			if bytes.Equal(got, d) {
				t.Fatalf("(%d,%d): %d errors silently vanished", g.n, g.k, overload)
			}
		}
		if flagged == 0 {
			t.Fatalf("(%d,%d): no overload pattern was ever flagged", g.n, g.k)
		}
	}
}

func TestErasureOnlyDecoding(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, g := range geometries {
		c := NewRS(g.n, g.k)
		// Up to R erasures are correctable when positions are known.
		for numErase := 1; numErase <= c.R(); numErase++ {
			d := randData(r, g.k)
			cw := c.Encode(d)
			positions := r.Perm(g.n)[:numErase]
			for _, p := range positions {
				cw[p] ^= byte(1 + r.Intn(255))
			}
			got, err := c.DecodeErasures(cw, positions)
			if err != nil {
				t.Fatalf("(%d,%d): %d-erasure decode failed: %v", g.n, g.k, numErase, err)
			}
			if !bytes.Equal(got, d) {
				t.Fatalf("(%d,%d): wrong %d-erasure correction", g.n, g.k, numErase)
			}
		}
	}
}

func TestErasurePlusErrorDecoding(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// 2·errors + erasures ≤ R. Use the (36,32) chipkill geometry: 1 erasure
	// + 1 unknown error fits in R=4.
	c := NewRS(36, 32)
	for trial := 0; trial < 100; trial++ {
		d := randData(r, 32)
		cw := c.Encode(d)
		perm := r.Perm(36)
		erasePos, errPos := perm[0], perm[1]
		cw[erasePos] ^= byte(1 + r.Intn(255))
		cw[errPos] ^= byte(1 + r.Intn(255))
		got, err := c.DecodeErasures(cw, []int{erasePos})
		if err != nil {
			t.Fatalf("trial %d: decode failed: %v", trial, err)
		}
		if !bytes.Equal(got, d) {
			t.Fatalf("trial %d: wrong correction", trial)
		}
	}
}

func TestErasureAtZeroMagnitudeIsNoop(t *testing.T) {
	// Declaring an erasure at a position that is actually intact must still
	// decode to the original data.
	r := rand.New(rand.NewSource(8))
	c := NewRS(18, 16)
	d := randData(r, 16)
	cw := c.Encode(d)
	got, err := c.DecodeErasures(cw, []int{5})
	if err != nil {
		t.Fatalf("decode failed: %v", err)
	}
	if !bytes.Equal(got, d) {
		t.Fatal("intact erasure position corrupted data")
	}
}

func TestTooManyErasuresRejected(t *testing.T) {
	c := NewRS(10, 8)
	cw := c.Encode(make([]byte, 8))
	if _, err := c.DecodeErasures(cw, []int{0, 1, 2}); err == nil {
		t.Fatal("3 erasures with R=2 must be rejected")
	}
}

func TestBadLengthRejected(t *testing.T) {
	c := NewRS(10, 8)
	if _, err := c.Decode(make([]byte, 9)); err != ErrBadLength {
		t.Fatalf("want ErrBadLength, got %v", err)
	}
}

func TestDecodePreservesCleanData(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewRS(18, 16)
		d := randData(r, 16)
		cw := c.Encode(d)
		got, err := c.Decode(cw)
		return err == nil && bytes.Equal(got, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	// Property: for all data and all single-symbol corruptions, decode
	// restores the data exactly.
	f := func(seed int64, posRaw, magRaw byte) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewRS(36, 32)
		d := randData(r, 32)
		cw := c.Encode(d)
		pos := int(posRaw) % 36
		mag := magRaw
		if mag == 0 {
			mag = 1
		}
		cw[pos] ^= mag
		got, err := c.Decode(cw)
		return err == nil && bytes.Equal(got, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksMatchEncode(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	c := NewRS(36, 32)
	d := randData(r, 32)
	cw := c.Encode(d)
	if !bytes.Equal(c.Checks(d), cw[32:]) {
		t.Fatal("Checks must equal the check portion of Encode")
	}
}

func TestChecksAreLinear(t *testing.T) {
	// RS over GF(2^8) is linear: checks(a⊕b) = checks(a)⊕checks(b).
	// The ECC Parity overlay depends on this property: XORing correction
	// bits across channels is meaningful only because the code is linear.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewRS(18, 16)
		a := randData(r, 16)
		b := randData(r, 16)
		ab := make([]byte, 16)
		for i := range ab {
			ab[i] = a[i] ^ b[i]
		}
		ca, cb, cab := c.Checks(a), c.Checks(b), c.Checks(ab)
		for i := range cab {
			if cab[i] != ca[i]^cb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRSInvalidGeometryPanics(t *testing.T) {
	for _, g := range []struct{ n, k int }{{256, 128}, {10, 10}, {10, 0}, {5, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewRS(%d,%d) must panic", g.n, g.k)
				}
			}()
			NewRS(g.n, g.k)
		}()
	}
}

func BenchmarkEncode36(b *testing.B) {
	c := NewRS(36, 32)
	d := make([]byte, 32)
	for i := range d {
		d[i] = byte(i * 7)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode(d)
	}
}

func BenchmarkDecodeClean36(b *testing.B) {
	c := NewRS(36, 32)
	d := make([]byte, 32)
	cw := c.Encode(d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := append([]byte(nil), cw...)
		if _, err := c.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeOneError36(b *testing.B) {
	c := NewRS(36, 32)
	d := make([]byte, 32)
	for i := range d {
		d[i] = byte(i)
	}
	cw := c.Encode(d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := append([]byte(nil), cw...)
		buf[5] ^= 0xA5
		if _, err := c.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErasureDecode10(b *testing.B) {
	c := NewRS(10, 8)
	d := make([]byte, 8)
	cw := c.Encode(d)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := append([]byte(nil), cw...)
		buf[3] ^= 0xFF
		if _, err := c.DecodeErasures(buf, []int{3}); err != nil {
			b.Fatal(err)
		}
	}
}
