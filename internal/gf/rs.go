package gf

import (
	"errors"
	"fmt"
)

// RS is a systematic Reed–Solomon code over GF(2^8) with n total symbols of
// which k are data and r = n−k are check symbols. It corrects up to r/2
// symbol errors at unknown positions, up to r erasures at known positions,
// or any combination with 2·errors + erasures ≤ r.
//
// Memory ECCs in this repository map one DRAM device to one code symbol, so
// "chip kill" is either a single-symbol error (position unknown, found by the
// decoder) or a single-symbol erasure (position known from a chip-level fault
// record, which halves the check-symbol cost).
type RS struct {
	n, k int
	gen  []byte // generator polynomial, highest degree first, degree r
	// genMul[j] is the product row of gen[j+1]; Encode's long-division
	// inner loop becomes one table index per check symbol. rootMul[i] is
	// the product row of α^i, driving Syndromes' Horner evaluation the
	// same way. Both are read-only after NewRS, so one codec is safe to
	// share across worker goroutines.
	genMul  [][Order]byte
	rootMul [][Order]byte
}

// Errors reported by the decoder. ErrDetected means errors were detected but
// exceeded the code's correction capability.
var (
	ErrDetected  = errors.New("gf/rs: uncorrectable error detected")
	ErrBadLength = errors.New("gf/rs: codeword length mismatch")
)

// NewRS builds an (n, k) code. It panics on invalid geometry since code
// geometry is always a compile-time-style constant in this repository.
func NewRS(n, k int) *RS {
	if n > Order-1 || k <= 0 || k >= n {
		panic(fmt.Sprintf("gf/rs: invalid geometry n=%d k=%d", n, k))
	}
	r := n - k
	gen := []byte{1}
	for i := 0; i < r; i++ {
		gen = PolyMul(gen, []byte{1, Exp(i)})
	}
	c := &RS{n: n, k: k, gen: gen}
	c.genMul = make([][Order]byte, r)
	c.rootMul = make([][Order]byte, r)
	for i := 0; i < r; i++ {
		c.genMul[i] = MulTable(gen[i+1])
		c.rootMul[i] = MulTable(Exp(i))
	}
	return c
}

// N returns the total number of symbols per codeword.
func (c *RS) N() int { return c.n }

// K returns the number of data symbols per codeword.
func (c *RS) K() int { return c.k }

// R returns the number of check symbols per codeword.
func (c *RS) R() int { return c.n - c.k }

// Encode appends r check symbols to data (len(data) must be k) and returns
// the full n-symbol codeword: data followed by checks.
func (c *RS) Encode(data []byte) []byte {
	if len(data) != c.k {
		panic(ErrBadLength)
	}
	r := c.R()
	cw := make([]byte, c.n)
	copy(cw, data)
	// Polynomial long division of data·x^r by the generator; the remainder
	// is the check-symbol block.
	rem := make([]byte, r)
	for _, d := range data {
		factor := d ^ rem[0]
		copy(rem, rem[1:])
		rem[r-1] = 0
		if factor != 0 {
			for j := 0; j < r; j++ {
				// gen[0] is always 1; skip it, apply to the rest.
				rem[j] ^= c.genMul[j][factor]
			}
		}
	}
	copy(cw[c.k:], rem)
	return cw
}

// Checks returns only the r check symbols for data.
func (c *RS) Checks(data []byte) []byte {
	cw := c.Encode(data)
	return cw[c.k:]
}

// Syndromes computes the r syndromes of a codeword. All-zero syndromes mean
// the codeword is consistent (no detectable error).
func (c *RS) Syndromes(cw []byte) []byte {
	if len(cw) != c.n {
		panic(ErrBadLength)
	}
	r := c.R()
	syn := make([]byte, r)
	for i := 0; i < r; i++ {
		// Horner evaluation at α^i through the precomputed product row.
		row := &c.rootMul[i]
		var y byte
		for _, cwb := range cw {
			y = row[y] ^ cwb
		}
		syn[i] = y
	}
	return syn
}

// HasError reports whether the codeword fails the consistency check.
func (c *RS) HasError(cw []byte) bool {
	for _, s := range c.Syndromes(cw) {
		if s != 0 {
			return true
		}
	}
	return false
}

// Decode corrects the codeword in place using unknown-position error
// decoding, then returns the data portion. It returns ErrDetected if the
// error pattern exceeds r/2 symbol errors.
func (c *RS) Decode(cw []byte) ([]byte, error) {
	return c.DecodeErasures(cw, nil)
}

// DecodeErasures corrects the codeword in place given a (possibly empty) set
// of known-bad symbol positions, handling additional unknown-position errors
// while 2·errors + erasures ≤ r. It returns the corrected data portion.
func (c *RS) DecodeErasures(cw []byte, erasures []int) ([]byte, error) {
	if len(cw) != c.n {
		return nil, ErrBadLength
	}
	r := c.R()
	if len(erasures) > r {
		return nil, ErrDetected
	}
	for _, p := range erasures {
		if p < 0 || p >= c.n {
			return nil, fmt.Errorf("gf/rs: erasure position %d out of range", p)
		}
	}
	syn := c.Syndromes(cw)
	if allZero(syn) {
		return cw[:c.k], nil
	}

	// Erasure locator Γ(x) = Π (1 − x·α^{e_i}) where e_i is the power
	// coordinate of the erased position. Positions index the codeword
	// left-to-right, i.e. coefficient of x^{n-1-pos}.
	gamma := []byte{1}
	for _, p := range erasures {
		gamma = PolyMul(gamma, []byte{Exp(c.n - 1 - p), 1})
	}

	// Modified syndromes: Ξ(x) = Γ(x)·S(x) mod x^r, with S as a polynomial
	// whose coefficient of x^i is syn[i] (lowest degree first).
	modSyn := modifiedSyndromes(syn, gamma, r)

	// Berlekamp–Massey on the modified syndromes finds the error locator
	// for the unknown-position errors.
	numErasures := len(erasures)
	sigma, err := berlekampMassey(modSyn, r, numErasures)
	if err != nil {
		return nil, err
	}

	// Combined locator Ψ = σ·Γ covers both errors and erasures.
	psi := polyTrim(PolyMul(sigma, gamma))

	positions, err := chienSearch(psi, c.n)
	if err != nil {
		return nil, err
	}

	// Forney: error evaluator Ω(x) = Ψ(x)·S(x) mod x^r.
	omega := polyMulMod(reverse(psi), syn, r)

	if err := forneyCorrect(cw, psi, omega, positions, c.n); err != nil {
		return nil, err
	}
	if c.HasError(cw) {
		return nil, ErrDetected
	}
	return cw[:c.k], nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// reverse returns p with coefficient order flipped (highest-first ↔
// lowest-first).
func reverse(p []byte) []byte {
	out := make([]byte, len(p))
	for i, c := range p {
		out[len(p)-1-i] = c
	}
	return out
}

// polyMulMod multiplies two lowest-degree-first polynomials modulo x^r.
func polyMulMod(a, b []byte, r int) []byte {
	out := make([]byte, r)
	for i, ca := range a {
		if ca == 0 || i >= r {
			continue
		}
		for j, cb := range b {
			if i+j >= r {
				break
			}
			out[i+j] ^= Mul(ca, cb)
		}
	}
	return out
}

// modifiedSyndromes computes Γ(x)·S(x) mod x^r with both polynomials in
// lowest-degree-first order. gamma arrives highest-first.
func modifiedSyndromes(syn, gamma []byte, r int) []byte {
	return polyMulMod(reverse(gamma), syn, r)
}

// berlekampMassey finds the error locator polynomial (lowest-degree-first,
// returned highest-first) for the given syndrome sequence. numErasures check
// symbols are already consumed by the erasure locator, so at most
// (r − numErasures)/2 unknown errors can be located.
func berlekampMassey(syn []byte, r, numErasures int) ([]byte, error) {
	// Work lowest-degree-first internally.
	sigma := []byte{1}
	prev := []byte{1}
	var l int
	var m = 1
	var b byte = 1
	for n := 0; n < r-numErasures; n++ {
		var d byte
		d = syn[n+numErasures]
		for i := 1; i <= l; i++ {
			if i < len(sigma) && n+numErasures-i >= 0 {
				d ^= Mul(sigma[i], syn[n+numErasures-i])
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= n {
			tmp := make([]byte, len(sigma))
			copy(tmp, sigma)
			coef := Div(d, b)
			shifted := make([]byte, len(prev)+m)
			for i, c := range prev {
				shifted[i+m] = Mul(c, coef)
			}
			sigma = addLow(sigma, shifted)
			l = n + 1 - l
			prev = tmp
			b = d
			m = 1
		} else {
			coef := Div(d, b)
			shifted := make([]byte, len(prev)+m)
			for i, c := range prev {
				shifted[i+m] = Mul(c, coef)
			}
			sigma = addLow(sigma, shifted)
			m++
		}
	}
	if 2*l > r-numErasures {
		return nil, ErrDetected
	}
	// Return highest-degree-first for PolyEval-style use.
	return polyTrim(reverse(sigma)), nil
}

// addLow adds two lowest-degree-first polynomials.
func addLow(a, b []byte) []byte {
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make([]byte, len(a))
	copy(out, a)
	for i, c := range b {
		out[i] ^= c
	}
	return out
}

// chienSearch finds codeword positions whose field points are roots of the
// locator polynomial psi (highest-degree-first).
func chienSearch(psi []byte, n int) ([]int, error) {
	degree := len(psi) - 1
	if degree == 0 {
		return nil, ErrDetected
	}
	positions := make([]int, 0, degree)
	for pos := 0; pos < n; pos++ {
		// Position pos corresponds to locator root α^{−(n−1−pos)}.
		x := Exp((Order - 1) - (n-1-pos)%(Order-1))
		if PolyEval(psi, x) == 0 {
			positions = append(positions, pos)
		}
	}
	if len(positions) != degree {
		return nil, ErrDetected
	}
	return positions, nil
}

// forneyCorrect applies Forney's algorithm to compute error magnitudes and
// repair the codeword in place.
func forneyCorrect(cw, psi, omega []byte, positions []int, n int) error {
	// psi is highest-first; omega is lowest-first (mod x^r).
	// Formal derivative of psi in lowest-first order.
	psiLow := reverse(psi)
	deriv := make([]byte, 0, len(psiLow)-1)
	for i := 1; i < len(psiLow); i++ {
		if i%2 == 1 {
			deriv = append(deriv, psiLow[i])
		} else {
			deriv = append(deriv, 0)
		}
	}
	// deriv as lowest-first polynomial where term i is coefficient of x^i
	// from the derivative: d/dx Σ c_i x^i = Σ i·c_i x^{i−1}; over GF(2)
	// i·c_i is c_i when i odd, 0 when even.
	for _, pos := range positions {
		e := (n - 1 - pos) % (Order - 1)
		xInv := Exp((Order - 1) - e) // α^{−e}, i.e. X_i^{−1}
		num := evalLow(omega, xInv)
		den := evalLow(deriv, xInv)
		if den == 0 {
			return ErrDetected
		}
		// Syndromes start at α^0 (b = 0), so the Forney magnitude carries
		// an extra factor of X_i: e_i = X_i·Ω(X_i^{−1})/Λ'(X_i^{−1}).
		mag := Mul(Exp(e), Div(num, den))
		cw[pos] ^= mag
	}
	return nil
}

// evalLow evaluates a lowest-degree-first polynomial at x.
func evalLow(p []byte, x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = Mul(y, x) ^ p[i]
	}
	return y
}
