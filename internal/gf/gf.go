// Package gf implements arithmetic over the finite field GF(2^8) and a
// systematic Reed–Solomon codec with error, erasure, and combined
// error-and-erasure decoding.
//
// The field uses the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D),
// the same polynomial used by many memory and storage ECCs. All chipkill-style
// codes in this repository (36-device and 18-device commercial chipkill, the
// modified LOT-ECC5 inter-device code from §VI-D of the paper, and Multi-ECC's
// corrector) are instantiated on top of this package.
package gf

// Poly is the primitive polynomial defining the field representation.
const Poly = 0x11D

// Order is the number of elements in GF(2^8).
const Order = 256

var (
	expTable [2 * Order]byte // expTable[i] = α^i, doubled to avoid mod in Mul
	logTable [Order]byte     // logTable[α^i] = i; logTable[0] unused
)

func init() {
	x := 1
	for i := 0; i < Order-1; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	// Duplicate the table so exp lookups for summed logs need no reduction.
	for i := Order - 1; i < 2*Order; i++ {
		expTable[i] = expTable[i-(Order-1)]
	}
}

// Add returns a+b in GF(2^8). Addition and subtraction coincide.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// MulTable returns the full product row of x: t[b] = Mul(x, b). Hot codec
// loops (RS encoding, syndrome evaluation) index one precomputed row per
// fixed operand instead of paying Mul's zero checks and two log lookups
// for every byte.
func MulTable(x byte) (t [Order]byte) {
	if x == 0 {
		return
	}
	lx := int(logTable[x])
	for b := 1; b < Order; b++ {
		t[b] = expTable[lx+int(logTable[b])]
	}
	return
}

// Div returns a/b in GF(2^8). Division by zero panics: it indicates a
// decoder bug, never a data-dependent condition.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+Order-1-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return expTable[Order-1-int(logTable[a])]
}

// Exp returns α^n for n ≥ 0.
func Exp(n int) byte { return expTable[n%(Order-1)] }

// Log returns the discrete log of a (a must be nonzero).
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(logTable[a])
}

// PolyEval evaluates the polynomial p (p[0] is the highest-degree
// coefficient) at the point x.
func PolyEval(p []byte, x byte) byte {
	var y byte
	for _, c := range p {
		y = Mul(y, x) ^ c
	}
	return y
}

// PolyMul returns the product of polynomials a and b (highest degree first).
func PolyMul(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			out[i+j] ^= Mul(ca, cb)
		}
	}
	return out
}

// PolyAdd returns the sum of polynomials a and b (highest degree first).
func PolyAdd(a, b []byte) []byte {
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make([]byte, len(a))
	copy(out, a)
	off := len(a) - len(b)
	for i, c := range b {
		out[off+i] ^= c
	}
	return out
}

// polyScale multiplies every coefficient of p by x.
func polyScale(p []byte, x byte) []byte {
	out := make([]byte, len(p))
	for i, c := range p {
		out[i] = Mul(c, x)
	}
	return out
}

// polyTrim removes leading zero coefficients, keeping at least one term.
func polyTrim(p []byte) []byte {
	i := 0
	for i < len(p)-1 && p[i] == 0 {
		i++
	}
	return p[i:]
}
