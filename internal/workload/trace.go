package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace support: access streams can be recorded to a compact binary format
// and replayed later, so a simulation can be driven by a captured trace
// (the moral equivalent of the paper's SimPoint checkpoints) instead of a
// live generator, and so experiments are exactly repeatable across
// machines and Go versions.
//
// Format: a 8-byte magic+version header, then one record per access:
// uvarint instruction gap, uvarint address delta (zigzag), and a flags
// byte (bit0 = write). Addresses are delta-encoded because generators emit
// mostly small strides.

// Source produces an access stream; both live Generators and trace
// replayers implement it.
type Source interface {
	Next() Access
}

var traceMagic = [8]byte{'e', 'c', 'c', 'p', 't', 'r', '0', '1'}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("workload: malformed trace")

// WriteTrace records n accesses from src to w.
func WriteTrace(w io.Writer, src Source, n int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	var prev uint64
	for i := 0; i < n; i++ {
		a := src.Next()
		k := binary.PutUvarint(buf[:], uint64(a.InstrGap))
		if _, err := bw.Write(buf[:k]); err != nil {
			return err
		}
		delta := int64(a.Addr) - int64(prev)
		k = binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:k]); err != nil {
			return err
		}
		prev = a.Addr
		flags := byte(0)
		if a.Write {
			flags = 1
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TraceReader replays a recorded access stream. When the trace is
// exhausted it loops back to the beginning (steady-state simulations need
// an endless stream), which requires the trace to have been read fully
// into memory.
type TraceReader struct {
	accesses []Access
	pos      int
}

// ReadTrace parses an entire trace.
func ReadTrace(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	tr := &TraceReader{}
	var prev uint64
	for {
		gap, err := binary.ReadUvarint(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: gap: %v", ErrBadTrace, err)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: address: %v", ErrBadTrace, err)
		}
		addr := uint64(int64(prev) + delta)
		prev = addr
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: flags: %v", ErrBadTrace, err)
		}
		if flags > 1 {
			return nil, fmt.Errorf("%w: flags %#x", ErrBadTrace, flags)
		}
		tr.accesses = append(tr.accesses, Access{
			InstrGap: int(gap),
			Addr:     addr,
			Write:    flags == 1,
		})
	}
	if len(tr.accesses) == 0 {
		return nil, fmt.Errorf("%w: empty", ErrBadTrace)
	}
	return tr, nil
}

// Len returns the number of recorded accesses.
func (t *TraceReader) Len() int { return len(t.accesses) }

// Next implements Source, looping at the end of the trace.
func (t *TraceReader) Next() Access {
	a := t.accesses[t.pos]
	t.pos++
	if t.pos == len(t.accesses) {
		t.pos = 0
	}
	return a
}
