package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	spec, _ := ByName("mcf")
	g := NewGenerator(spec, 2, 99)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 5000); err != nil {
		t.Fatal(err)
	}
	// Replaying must reproduce the exact stream.
	g2 := NewGenerator(spec, 2, 99)
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 {
		t.Fatalf("trace length %d", tr.Len())
	}
	for i := 0; i < 5000; i++ {
		want := g2.Next()
		got := tr.Next()
		if want != got {
			t.Fatalf("access %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestTraceLoops(t *testing.T) {
	spec, _ := ByName("sjeng")
	g := NewGenerator(spec, 0, 1)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 10); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]Access, 10)
	for i := range first {
		first[i] = tr.Next()
	}
	for i := 0; i < 10; i++ {
		if tr.Next() != first[i] {
			t.Fatalf("loop replay diverged at %d", i)
		}
	}
}

func TestTraceBadInputs(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("short")); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := ReadTrace(strings.NewReader("notmagic" + "xxxx")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Valid header, no records.
	var buf bytes.Buffer
	buf.Write(traceMagic[:])
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("empty trace accepted")
	}
	// Valid header, garbage flags.
	buf.Reset()
	buf.Write(traceMagic[:])
	buf.Write([]byte{1, 2, 9}) // gap=1, delta=1, flags=9
	if _, err := ReadTrace(&buf); err == nil {
		t.Fatal("bad flags accepted")
	}
}

func TestTraceCompactness(t *testing.T) {
	// Sequential workloads delta-encode tightly: well under 8 bytes per
	// access.
	spec, _ := ByName("streamcluster")
	g := NewGenerator(spec, 0, 5)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 10000); err != nil {
		t.Fatal(err)
	}
	if perAcc := float64(buf.Len()) / 10000; perAcc > 8 {
		t.Fatalf("%.1f bytes per access, want compact encoding", perAcc)
	}
}

func TestGeneratorImplementsSource(t *testing.T) {
	var _ Source = (*Generator)(nil)
	var _ Source = (*TraceReader)(nil)
}
