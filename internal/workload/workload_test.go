package workload

import (
	"math"
	"testing"
)

func TestSixteenWorkloads(t *testing.T) {
	specs := Specs()
	if len(specs) != 16 {
		t.Fatalf("%d workloads, want 16", len(specs))
	}
	spec, parsec := 0, 0
	for _, s := range specs {
		if s.Parsec {
			parsec++
		} else {
			spec++
		}
	}
	if spec != 12 || parsec != 4 {
		t.Fatalf("split %d SPEC / %d PARSEC, want 12/4", spec, parsec)
	}
}

func TestBinsSplitEvenly(t *testing.T) {
	b1, b2 := Bin1Names(), Bin2Names()
	if len(b1) != 8 || len(b2) != 8 {
		t.Fatalf("bins %d/%d, want 8/8", len(b1), len(b2))
	}
	seen := map[string]bool{}
	for _, n := range append(append([]string{}, b1...), b2...) {
		if seen[n] {
			t.Fatalf("workload %s in both bins", n)
		}
		seen[n] = true
	}
}

func TestBin2IsHigherIntensity(t *testing.T) {
	// Every Bin2 workload must have APKI at least as high as every Bin1
	// workload's... not strictly (the bins are by measured bandwidth), but
	// the MEANS must clearly separate.
	mean := func(names []string) float64 {
		var s float64
		for _, n := range names {
			sp, _ := ByName(n)
			s += sp.APKI
		}
		return s / float64(len(names))
	}
	m1, m2 := mean(Bin1Names()), mean(Bin2Names())
	if m2 < 2*m1 {
		t.Fatalf("bin means not separated: Bin1=%.1f Bin2=%.1f", m1, m2)
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("streamcluster")
	if !ok || !s.Parsec || s.Seq < 0.9 {
		t.Fatalf("streamcluster lookup: %+v ok=%v", s, ok)
	}
	if _, ok := ByName("doom"); ok {
		t.Fatal("unknown workload must not resolve")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	s, _ := ByName("mcf")
	a := NewGenerator(s, 3, 42)
	b := NewGenerator(s, 3, 42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed+core diverged")
		}
	}
	c := NewGenerator(s, 4, 42)
	same := 0
	a2 := NewGenerator(s, 3, 42)
	for i := 0; i < 1000; i++ {
		if a2.Next() == c.Next() {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different cores produced %d/1000 identical accesses", same)
	}
}

func TestGapMatchesAPKI(t *testing.T) {
	for _, name := range []string{"sjeng", "lbm"} {
		s, _ := ByName(name)
		g := NewGenerator(s, 0, 7)
		var instr, accesses float64
		for i := 0; i < 20000; i++ {
			a := g.Next()
			instr += float64(a.InstrGap)
			accesses++
		}
		gotAPKI := accesses / instr * 1000
		if math.Abs(gotAPKI-s.APKI)/s.APKI > 0.1 {
			t.Fatalf("%s: measured APKI %.2f, want %.2f", name, gotAPKI, s.APKI)
		}
	}
}

func TestWriteFraction(t *testing.T) {
	s, _ := ByName("lbm")
	g := NewGenerator(s, 0, 8)
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	got := float64(writes) / n
	if math.Abs(got-s.WriteFrac) > 0.02 {
		t.Fatalf("write fraction %.3f, want %.3f", got, s.WriteFrac)
	}
}

func TestAddressesWithinWorkingSet(t *testing.T) {
	s, _ := ByName("astar")
	g := NewGenerator(s, 2, 9)
	base := uint64(2) << 30
	for i := 0; i < 10000; i++ {
		a := g.Next()
		if a.Addr < base || a.Addr >= base+s.WorkingSetBytes {
			t.Fatalf("address %#x outside instance space", a.Addr)
		}
		if a.Addr%LineBytes != 0 {
			t.Fatalf("address %#x not line aligned", a.Addr)
		}
	}
}

func TestParsecSharesAddressSpace(t *testing.T) {
	s, _ := ByName("canneal")
	g0 := NewGenerator(s, 0, 10)
	g7 := NewGenerator(s, 7, 10)
	if g0.base != 0 || g7.base != 0 {
		t.Fatal("PARSEC threads must share base 0")
	}
	_ = g0.Next()
	_ = g7.Next()
}

func TestSequentialityObservable(t *testing.T) {
	// streamcluster must emit far more +64B successors than canneal.
	count := func(name string) float64 {
		s, _ := ByName(name)
		g := NewGenerator(s, 0, 11)
		prev := g.Next().Addr
		seq := 0
		const n = 10000
		for i := 0; i < n; i++ {
			a := g.Next()
			if a.Addr == prev+LineBytes {
				seq++
			}
			prev = a.Addr
		}
		return float64(seq) / n
	}
	if sc, cn := count("streamcluster"), count("canneal"); sc < 0.85 || cn > 0.3 {
		t.Fatalf("sequentiality: streamcluster %.2f (want >0.85), canneal %.2f (want <0.3)", sc, cn)
	}
}
