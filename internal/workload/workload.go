// Package workload provides synthetic memory-access generators standing in
// for the paper's 12 multiprogrammed SPEC CPU2006 and 4 multithreaded
// PARSEC workloads. Each generator is parameterized along the axes that
// drive every result in the evaluation: post-L1 access rate (APKI),
// working-set size, spatial locality (sequential-run probability), and
// write fraction. Parameters are calibrated so the relative bandwidth
// ordering matches Fig. 9 and so the paper's Bin1 (lower-bandwidth) /
// Bin2 (higher-bandwidth) split is preserved.
package workload

import (
	"math/rand"
	"sort"
)

// Spec declares one benchmark's memory behaviour.
type Spec struct {
	Name string
	// APKI is LLC-side (post-L1) accesses per kilo-instruction.
	APKI float64
	// WorkingSetBytes is the per-instance resident set touched by the
	// generator.
	WorkingSetBytes uint64
	// Seq is the probability that an access continues a sequential run —
	// the spatial-locality knob that decides who benefits from 128B lines.
	Seq float64
	// WriteFrac is the fraction of accesses that are stores.
	WriteFrac float64
	// Parsec marks the multithreaded (shared-address-space) workloads.
	Parsec bool
	// Bin2 marks the paper's higher-memory-access-rate bin.
	Bin2 bool
}

const mb = 1 << 20

// Specs returns the 16 evaluated workloads. SPEC entries model eight
// instances of the same benchmark (one per core, disjoint address spaces);
// PARSEC entries model eight threads sharing one space.
func Specs() []Spec {
	return []Spec{
		// SPEC CPU2006-like, Bin2 (memory-intensive).
		{Name: "mcf", APKI: 17, WorkingSetBytes: 256 * mb, Seq: 0.10, WriteFrac: 0.25, Bin2: true},
		{Name: "lbm", APKI: 21, WorkingSetBytes: 384 * mb, Seq: 0.85, WriteFrac: 0.45, Bin2: true},
		{Name: "libquantum", APKI: 28, WorkingSetBytes: 64 * mb, Seq: 0.95, WriteFrac: 0.30, Bin2: true},
		{Name: "milc", APKI: 18, WorkingSetBytes: 128 * mb, Seq: 0.60, WriteFrac: 0.35, Bin2: true},
		{Name: "GemsFDTD", APKI: 20, WorkingSetBytes: 256 * mb, Seq: 0.75, WriteFrac: 0.35, Bin2: true},
		{Name: "soplex", APKI: 18, WorkingSetBytes: 96 * mb, Seq: 0.55, WriteFrac: 0.30, Bin2: true},
		{Name: "leslie3d", APKI: 16, WorkingSetBytes: 128 * mb, Seq: 0.70, WriteFrac: 0.35, Bin2: true},
		// SPEC CPU2006-like, Bin1.
		{Name: "sphinx3", APKI: 14, WorkingSetBytes: 64 * mb, Seq: 0.50, WriteFrac: 0.15},
		{Name: "omnetpp", APKI: 12, WorkingSetBytes: 128 * mb, Seq: 0.20, WriteFrac: 0.35},
		{Name: "astar", APKI: 8, WorkingSetBytes: 32 * mb, Seq: 0.30, WriteFrac: 0.25},
		{Name: "gobmk", APKI: 3, WorkingSetBytes: 16 * mb, Seq: 0.40, WriteFrac: 0.30},
		{Name: "sjeng", APKI: 2, WorkingSetBytes: 12 * mb, Seq: 0.30, WriteFrac: 0.30},
		// PARSEC-like.
		{Name: "streamcluster", APKI: 20, WorkingSetBytes: 128 * mb, Seq: 0.97, WriteFrac: 0.20, Parsec: true, Bin2: true},
		{Name: "canneal", APKI: 12, WorkingSetBytes: 256 * mb, Seq: 0.15, WriteFrac: 0.20, Parsec: true},
		{Name: "facesim", APKI: 10, WorkingSetBytes: 96 * mb, Seq: 0.65, WriteFrac: 0.40, Parsec: true},
		{Name: "ferret", APKI: 6, WorkingSetBytes: 48 * mb, Seq: 0.50, WriteFrac: 0.30, Parsec: true},
	}
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists all workloads in declaration order.
func Names() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Bin1Names and Bin2Names return the paper's bandwidth bins, sorted.
func Bin1Names() []string { return binNames(false) }

// Bin2Names returns the higher-bandwidth bin.
func Bin2Names() []string { return binNames(true) }

func binNames(bin2 bool) []string {
	var out []string
	for _, s := range Specs() {
		if s.Bin2 == bin2 {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Access is one memory operation emitted by a generator.
type Access struct {
	// InstrGap is the number of instructions executed since the previous
	// access (the compute between memory operations).
	InstrGap int
	// Addr is a byte address at 64B granularity within the generator's
	// address space.
	Addr uint64
	// Write marks stores.
	Write bool
}

// LineBytes is the generator's addressing granularity (one L1 block).
const LineBytes = 64

// Generator produces a deterministic access stream for one core.
type Generator struct {
	spec    Spec
	rng     *rand.Rand
	base    uint64 // address-space offset of this instance
	lines   uint64 // working-set size in 64B lines
	cur     uint64 // current line within the working set
	meanGap float64
}

// NewGenerator builds the stream for one core. SPEC instances get disjoint
// address spaces (base separated per core); PARSEC threads share base 0 and
// interleave over a common working set.
func NewGenerator(spec Spec, core int, seed int64) *Generator {
	g := &Generator{rng: rand.New(rand.NewSource(0))}
	g.Reset(spec, core, seed)
	return g
}

// Reset re-initializes the generator in place to the exact state
// NewGenerator(spec, core, seed) would produce, re-seeding the existing
// random source instead of allocating a new one. It is how the engine
// arena (internal/sim) reuses generators across runs without changing the
// emitted stream.
func (g *Generator) Reset(spec Spec, core int, seed int64) {
	base := uint64(0)
	if !spec.Parsec {
		// Disjoint 1GB-aligned spaces per instance.
		base = uint64(core) << 30
	}
	lines := spec.WorkingSetBytes / LineBytes
	if lines == 0 {
		lines = 1
	}
	g.spec = spec
	g.rng.Seed(seed ^ int64(core)*1000003)
	g.base = base
	g.lines = lines
	g.meanGap = 1000 / spec.APKI
	g.cur = uint64(g.rng.Int63n(int64(lines)))
}

// Next emits the next access.
func (g *Generator) Next() Access {
	// Exponentially distributed instruction gap with the spec's mean
	// (memoryless compute bursts between accesses).
	gap := int(g.rng.ExpFloat64()*g.meanGap) + 1
	if gap > 100000 {
		gap = 100000
	}
	if g.rng.Float64() < g.spec.Seq {
		g.cur = (g.cur + 1) % g.lines
	} else {
		g.cur = uint64(g.rng.Int63n(int64(g.lines)))
	}
	return Access{
		InstrGap: gap,
		Addr:     g.base + g.cur*LineBytes,
		Write:    g.rng.Float64() < g.spec.WriteFrac,
	}
}
