package sim

import (
	"context"
	"testing"

	"eccparity/internal/raceflag"
)

// TestHandleAccessSteadyStateAllocs drives a warmed engine far enough into
// its measurement phase that every pooled structure (cache, inflight
// prefetch table, eviction-cascade queue, bus rings) has reached its
// working size, then asserts that a full demand access — LLC lookup,
// eviction cascade, ECC maintenance, controller traffic — performs zero
// heap allocations. This is the property that keeps a Run's cost flat in
// the GC regardless of budget.
func TestHandleAccessSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	cfg := DefaultConfig("chipkill18", QuadEq, "mcf")
	cfg.WarmupAccesses = 8000
	cfg.MeasureCycles = 30000
	e := NewArena().prepare(cfg)
	if err := e.warmup(context.Background()); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	if err := e.measure(context.Background()); err != nil {
		t.Fatalf("measure: %v", err)
	}
	// Deeper into steady state: grow-once structures stop growing.
	for i := 0; i < 20000; i++ {
		acc := e.gens[0].Next()
		e.cores[0].AdvanceCompute(acc.InstrGap)
		e.handleAccess(0, acc)
		e.ctrl.Release(e.cores[0].Time())
	}
	n := testing.AllocsPerRun(200, func() {
		acc := e.gens[0].Next()
		e.cores[0].AdvanceCompute(acc.InstrGap)
		e.handleAccess(0, acc)
	})
	if n != 0 {
		t.Fatalf("handleAccess allocates %v per access in steady state, want 0", n)
	}
}
