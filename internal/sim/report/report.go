// Package report exposes every experiment of the paper's evaluation as a
// library call returning a structured result, instead of a CLI printing to
// stdout. cmd/eccsim, cmd/faultmc and the eccsimd daemon all dispatch
// through the one registry here, so the rendered bytes of an experiment are
// identical no matter which front end asked for it.
//
// The determinism contract the daemon's result cache is built on lives at
// this boundary: a Report's Text and Data depend only on the experiment id
// and the Params identity fields (Cycles, Warmup, Trials, Seed, CSV) —
// never on Workers, which is purely a throughput knob, and never on
// scheduling (see internal/parallel).
package report

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"

	"eccparity/internal/sim"
)

// Params carries the experiment knobs. Workers is deliberately excluded
// from result identity (same seed ⇒ same bytes at any worker count), so
// callers hashing a Params for caching must leave it out — the json tag
// enforces that for the common encoding/json path.
type Params struct {
	Cycles float64 `json:"cycles"`
	Warmup int     `json:"warmup"`
	Trials int     `json:"trials"`
	Seed   int64   `json:"seed"`
	CSV    bool    `json:"csv,omitempty"`
	// Scheme selects the resilience scheme of scheme-aware experiments
	// (empty means the experiment's default). SchemeOptions carries the
	// scheme's constructor options in ecc.CanonicalOptions form. Both are
	// omitempty so requests that predate the scheme layer keep their exact
	// serialized identity — and therefore their content-address.
	Scheme        string `json:"scheme,omitempty"`
	SchemeOptions string `json:"scheme_options,omitempty"`
	Workers       int    `json:"-"`
}

// DefaultParams returns the full-fidelity budget of cmd/eccsim.
func DefaultParams() Params {
	return Params{Cycles: 400000, Warmup: 60000, Trials: 2000, Seed: 1}
}

// Normalized fills zero-valued knobs from DefaultParams, so partial
// requests (e.g. over HTTP) resolve to one canonical identity before
// hashing. A zero seed normalizes to the default seed 1.
func (p Params) Normalized() Params {
	d := DefaultParams()
	if p.Cycles <= 0 {
		p.Cycles = d.Cycles
	}
	if p.Warmup <= 0 {
		p.Warmup = d.Warmup
	}
	if p.Trials <= 0 {
		p.Trials = d.Trials
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// Report is one experiment's result: the exact text the CLI prints plus the
// structured rows behind it (figure-specific types, JSON-serializable).
type Report struct {
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	Text       string `json:"text"`
	Data       any    `json:"data,omitempty"`
}

// Runner executes experiments for one Params, sharing the expensive
// (scheme × workload) evaluation matrices across figures the way
// `eccsim -exp all` always has. A Runner is not safe for concurrent use;
// create one per request.
type Runner struct {
	p        Params
	progress io.Writer
	ctx      context.Context // the active RunContext's context; Background between runs
	evals    map[sim.SystemClass]*sim.Evaluation
	// store, when non-nil, shares evaluation matrices and Fig. 9 campaigns
	// across the Runners of one Executor (the batch sweep path). A plain
	// NewRunner has no store and keeps the historical per-Runner caching.
	store *evalStore
}

// NewRunner builds a Runner. progress receives the done/total tickers of
// long campaigns (the CLIs pass stderr); nil silences them. Text output is
// never written to progress, so rendered bytes stay identical regardless.
func NewRunner(p Params, progress io.Writer) *Runner {
	return &Runner{p: p, progress: progress, ctx: context.Background(), evals: map[sim.SystemClass]*sim.Evaluation{}}
}

// Params returns the Runner's parameters.
func (r *Runner) Params() Params { return r.p }

// opts translates Params into simulation options.
func (r *Runner) opts() []sim.Option {
	opts := []sim.Option{
		sim.WithCycles(r.p.Cycles), sim.WithWarmup(r.p.Warmup),
		sim.WithSeed(r.p.Seed), sim.WithWorkers(r.p.Workers),
	}
	if r.progress != nil {
		opts = append(opts, sim.WithProgress(r.progress))
	}
	return opts
}

// eval returns the cached (scheme × workload) matrix for a system class,
// running it on first use under the active run's context. A canceled run
// caches nothing, so a later retry recomputes the matrix from scratch.
// When the Runner rides in an Executor, the matrix is first looked up in —
// and published to — the batch-wide store, keyed by the Params fields that
// determine its contents (Cycles, Warmup, Seed) plus the class.
func (r *Runner) eval(class sim.SystemClass) (*sim.Evaluation, error) {
	if ev, ok := r.evals[class]; ok {
		return ev, nil
	}
	key := evalKey{cycles: r.p.Cycles, warmup: r.p.Warmup, seed: r.p.Seed, class: class}
	if r.store != nil {
		if ev, ok := r.store.evals[key]; ok {
			r.evals[class] = ev
			return ev, nil
		}
	}
	s, err := sim.New(r.opts()...)
	if err != nil {
		return nil, err
	}
	ev, err := s.Evaluate(r.ctx, class, nil, nil)
	if err != nil {
		return nil, err
	}
	r.evals[class] = ev
	if r.store != nil {
		r.store.putEval(key, ev)
	}
	return ev, nil
}

// fig9Rows returns the Fig. 9 bandwidth campaign for the Runner's Params,
// consulting the batch store when present. The returned slice is shared —
// callers must not mutate it (the renderer sorts a copy).
func (r *Runner) fig9Rows() ([]sim.Fig9Row, error) {
	key := fig9Key{cycles: r.p.Cycles, warmup: r.p.Warmup, seed: r.p.Seed}
	if r.store != nil {
		if rows, ok := r.store.fig9[key]; ok {
			return rows, nil
		}
	}
	rows, err := sim.Fig9BandwidthContext(r.ctx, r.opts()...)
	if err != nil {
		return nil, err
	}
	if r.store != nil {
		r.store.putFig9(key, rows)
	}
	return rows, nil
}

// spec is one registry entry. run renders the experiment's text into w and
// returns its structured data; the error is the underlying campaign's
// (typically ctx.Err() after a cancel), in which case the partial text is
// discarded.
type spec struct {
	source string // "eccsim", "faultmc" or "serve": which front end owns the id
	title  string
	run    func(r *Runner, w io.Writer) (any, error)
	// schemeAware experiments honour Params.Scheme/SchemeOptions;
	// defaultScheme is what an empty Params.Scheme resolves to, and
	// engineDomain additionally admits engine-only configurations
	// (sim.Schemes keys with no ecc registry entry, e.g. the parity
	// overlays).
	schemeAware   bool
	defaultScheme string
	engineDomain  bool
}

// Run executes one experiment id and returns its Report. It cannot be
// interrupted; prefer RunContext.
func (r *Runner) Run(id string) (Report, error) {
	return r.RunContext(context.Background(), id)
}

// RunContext executes one experiment id under ctx and returns its Report.
// Canceling ctx interrupts the underlying simulation or Monte Carlo
// campaign at its checkpoint interval; the error then wraps ctx.Err() and
// no Report is produced. A completed Report is byte-identical regardless
// of ctx.
func (r *Runner) RunContext(ctx context.Context, id string) (Report, error) {
	sp, ok := registry[id]
	if !ok {
		return Report{}, fmt.Errorf("report: unknown experiment %q", id)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r.ctx = ctx
	defer func() { r.ctx = context.Background() }()
	var buf bytes.Buffer
	data, err := sp.run(r, &buf)
	if err != nil {
		return Report{}, err
	}
	return Report{Experiment: id, Title: sp.title, Text: buf.String(), Data: data}, nil
}

// Known reports whether id names a registered experiment.
func Known(id string) bool {
	_, ok := registry[id]
	return ok
}

// Title returns the registered experiment's title ("" if unknown).
func Title(id string) string { return registry[id].title }

// IDs returns every registered experiment id, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// EccsimIDs returns the ids `eccsim -exp all` runs, in its (sorted)
// execution order.
func EccsimIDs() []string {
	out := []string{}
	for id, sp := range registry {
		if sp.source == "eccsim" {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// FaultmcIDs returns the ids `faultmc -exp all` runs, in its execution
// order (fig2 first: its output opens without a leading blank line).
func FaultmcIDs() []string { return []string{"fig2", "fig8", "fig18"} }

// ServeIDs returns the daemon-first experiment ids, sorted: registered
// experiments outside both CLIs' historical `-exp all` sets (the CLIs
// still run them when named explicitly).
func ServeIDs() []string {
	out := []string{}
	for id, sp := range registry {
		if sp.source == "serve" {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
