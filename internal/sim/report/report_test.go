package report

import (
	"strings"
	"testing"
)

// smallParams is a reduced budget: big enough to exercise the real code
// paths, small enough for -race CI.
var smallParams = Params{Cycles: 4000, Warmup: 500, Trials: 12, Seed: 1}

func TestRegistryCoversBothCLIs(t *testing.T) {
	if got := len(EccsimIDs()); got != 17 {
		t.Errorf("EccsimIDs: %d ids, want 17 (%v)", got, EccsimIDs())
	}
	if got := FaultmcIDs(); len(got) != 3 || got[0] != "fig2" {
		t.Errorf("FaultmcIDs = %v, want [fig2 fig8 fig18]", got)
	}
	if len(IDs()) != 23 {
		t.Errorf("IDs: %d ids, want 23", len(IDs()))
	}
	if got := ServeIDs(); len(got) != 3 {
		t.Errorf("ServeIDs = %v, want the three daemon-first ids", got)
	}
	for _, id := range IDs() {
		if !Known(id) {
			t.Errorf("Known(%q) = false", id)
		}
		if Title(id) == "" {
			t.Errorf("Title(%q) empty", id)
		}
	}
	if Known("fig99") {
		t.Error(`Known("fig99") = true`)
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := NewRunner(smallParams, nil).Run("fig99"); err == nil {
		t.Fatal("Run(fig99) must error")
	}
}

// TestWorkerInvariantText asserts the API contract the result cache depends
// on: a Report's Text is byte-identical at workers=1 and workers=8. The
// three ids cover the simulation grid (fig9), the Monte Carlo campaigns
// (table3, fig8) and the shared-evaluation figures are pinned end-to-end by
// the cmd/eccsim golden test.
func TestWorkerInvariantText(t *testing.T) {
	for _, id := range []string{"fig9", "table3", "fig8", "fig2"} {
		var texts []string
		for _, workers := range []int{1, 8} {
			p := smallParams
			p.Workers = workers
			rep, err := NewRunner(p, nil).Run(id)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", id, workers, err)
			}
			if rep.Text == "" {
				t.Fatalf("%s workers=%d: empty text", id, workers)
			}
			texts = append(texts, rep.Text)
		}
		if texts[0] != texts[1] {
			t.Errorf("%s: text differs between workers=1 and workers=8", id)
		}
	}
}

// TestSeedChangesMonteCarloText guards against an experiment silently
// ignoring the seed (the request hash includes it, so two seeds must not
// collapse to one cached byte stream for seed-dependent experiments).
func TestSeedChangesMonteCarloText(t *testing.T) {
	run := func(seed int64) string {
		p := smallParams
		p.Seed = seed
		rep, err := NewRunner(p, nil).Run("fig8")
		if err != nil {
			t.Fatal(err)
		}
		return rep.Text
	}
	if run(1) == run(99) {
		t.Error("fig8: seeds 1 and 99 produced identical text")
	}
}

func TestCSVChangesComparisonRendering(t *testing.T) {
	p := smallParams
	p.CSV = true
	r := NewRunner(p, nil)
	rep, err := r.Run("fig13")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "workload,vs_") {
		t.Errorf("CSV rendering missing header row:\n%s", rep.Text)
	}
}

func TestNormalizedFillsDefaults(t *testing.T) {
	got := Params{Seed: 7}.Normalized()
	want := DefaultParams()
	want.Seed = 7
	if got != want {
		t.Errorf("Normalized() = %+v, want %+v", got, want)
	}
	if p := (Params{}).Normalized(); p != DefaultParams() {
		t.Errorf("zero Params normalized to %+v, want defaults", p)
	}
}
