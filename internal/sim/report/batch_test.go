package report

import (
	"context"
	"encoding/json"
	"testing"
)

// batchTestPoints is a mixed sweep: matrix figures over both classes (the
// quad points share one evaluation matrix, the dual points another), the
// Fig. 9 campaign, a Monte Carlo table, a CSV rendering variant, and a
// Trials variant — the last two share the simulated identity of earlier
// points, so the batch path reuses their matrices while the independent
// baseline recomputes everything.
func batchTestPoints() []SweepPoint {
	p := Params{Cycles: 10000, Warmup: 1000, Trials: 30, Seed: 1}
	csv := p
	csv.CSV = true
	trials2 := p
	trials2.Trials = 60
	return []SweepPoint{
		{Experiment: "fig10", Params: p},
		{Experiment: "fig12", Params: p},
		{Experiment: "fig11", Params: p},
		{Experiment: "fig9", Params: p},
		{Experiment: "table3", Params: p},
		{Experiment: "fig10", Params: csv},
		{Experiment: "fig13", Params: trials2},
		{Experiment: "fig9", Params: trials2},
	}
}

// TestRunBatchMatchesIndependentRuns is the batch determinism contract: a
// multi-point sweep through one Executor's shared store must produce, per
// point, byte-identical Text and Data to N independent single-Runner runs
// — at worker counts 1 and 8.
func TestRunBatchMatchesIndependentRuns(t *testing.T) {
	ctx := context.Background()
	base := batchTestPoints()
	for _, workers := range []int{1, 8} {
		points := make([]SweepPoint, len(base))
		copy(points, base)
		for i := range points {
			points[i].Params.Workers = workers
		}
		batch, err := RunBatch(ctx, points, nil)
		if err != nil {
			t.Fatalf("workers=%d: RunBatch: %v", workers, err)
		}
		if len(batch) != len(points) {
			t.Fatalf("workers=%d: got %d reports for %d points", workers, len(batch), len(points))
		}
		for i, pt := range points {
			single, err := NewRunner(pt.Params, nil).RunContext(ctx, pt.Experiment)
			if err != nil {
				t.Fatalf("workers=%d point %d (%s): single run: %v", workers, i, pt.Experiment, err)
			}
			if batch[i].Text != single.Text {
				t.Errorf("workers=%d point %d (%s): batch Text diverges from independent run\nbatch:\n%s\nsingle:\n%s",
					workers, i, pt.Experiment, batch[i].Text, single.Text)
			}
			bd, err := json.Marshal(batch[i].Data)
			if err != nil {
				t.Fatalf("marshal batch data: %v", err)
			}
			sd, err := json.Marshal(single.Data)
			if err != nil {
				t.Fatalf("marshal single data: %v", err)
			}
			if string(bd) != string(sd) {
				t.Errorf("workers=%d point %d (%s): batch Data diverges from independent run", workers, i, pt.Experiment)
			}
		}
	}
}

// TestExecutorCancellationCachesNothing pins the cancel-retry behaviour:
// a point canceled mid-matrix must leave the store empty, so a later
// retry through the same Executor recomputes — and matches — a fresh run.
func TestExecutorCancellationCachesNothing(t *testing.T) {
	p := Params{Cycles: 10000, Warmup: 1000, Trials: 30, Seed: 1}
	x := NewExecutor(nil)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := x.Run(canceled, "fig10", p); err == nil {
		t.Fatal("canceled point unexpectedly succeeded")
	}
	if n := len(x.store.evals) + len(x.store.fig9); n != 0 {
		t.Fatalf("canceled point left %d cached entries in the store", n)
	}
	got, err := x.Run(context.Background(), "fig10", p)
	if err != nil {
		t.Fatalf("retry after cancel: %v", err)
	}
	want, err := NewRunner(p, nil).RunContext(context.Background(), "fig10")
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != want.Text {
		t.Error("retry after cancel diverges from fresh run")
	}
}

// TestRunBatchSchemeAxis extends the batch determinism contract to the
// scheme axis: a grid expanded over schemes runs through one Executor
// byte-identically to independent single Runners, at worker counts 1 and 8
// — the property that lets the daemon's sweep path serve scheme axes from
// its pooled executors.
func TestRunBatchSchemeAxis(t *testing.T) {
	ctx := context.Background()
	base := Params{Cycles: 4000, Warmup: 500, Trials: 8, Seed: 1}
	expanded, err := ExpandSweep("faultinject", base,
		SweepAxes{Schemes: []string{"ondie-sec", "ondie+chipkill", "ondie+raim18"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pass := base
	pass.Scheme, pass.SchemeOptions = "ondie+chipkill", `{"passthrough":true}`
	expanded = append(expanded,
		SweepPoint{Experiment: "faultinject", Params: pass},
		SweepPoint{Experiment: "schemeeval", Params: base},
		SweepPoint{Experiment: "harpprofile", Params: base},
	)

	var prev []Report
	for _, workers := range []int{1, 8} {
		points := make([]SweepPoint, len(expanded))
		copy(points, expanded)
		for i := range points {
			points[i].Params.Workers = workers
		}
		batch, err := RunBatch(ctx, points, nil)
		if err != nil {
			t.Fatalf("workers=%d: RunBatch: %v", workers, err)
		}
		for i, pt := range points {
			single, err := NewRunner(pt.Params, nil).RunContext(ctx, pt.Experiment)
			if err != nil {
				t.Fatalf("workers=%d point %d (%s %s): single run: %v", workers, i, pt.Experiment, pt.Params.Scheme, err)
			}
			if batch[i].Text != single.Text {
				t.Errorf("workers=%d point %d (%s %s): batch Text diverges from independent run",
					workers, i, pt.Experiment, pt.Params.Scheme)
			}
			if prev != nil && batch[i].Text != prev[i].Text {
				t.Errorf("point %d (%s %s): Text differs between workers=1 and workers=8",
					i, pt.Experiment, pt.Params.Scheme)
			}
		}
		prev = batch
	}
}
