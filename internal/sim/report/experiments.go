package report

import (
	"fmt"
	"io"
	"sort"
	"time"

	"eccparity/internal/cpu"
	"eccparity/internal/ecc"
	"eccparity/internal/faultmodel"
	"eccparity/internal/sim"
)

// This file holds the renderer for every experiment id: the text each one
// emits is byte-for-byte what the CLIs have always printed (the cmd/eccsim
// golden SHA-256 test pins the eccsim set), plus the structured rows behind
// the text for JSON consumers.

// registry maps experiment id → renderer. The eccsim/faultmc split mirrors
// which CLI historically owned the id; the daemon serves both sets.
var registry = map[string]spec{
	"fig1":       {source: "eccsim", title: "Fig. 1 — capacity overhead breakdown", run: fig1},
	"table1":     {source: "eccsim", title: "Table I — processor microarchitecture", run: table1},
	"table2":     {source: "eccsim", title: "Table II — evaluated ECC configurations", run: table2},
	"table3":     {source: "eccsim", title: "Table III — capacity overheads", run: table3},
	"fig9":       {source: "eccsim", title: "Fig. 9 — workload bandwidth utilization", run: fig9},
	"fig10":      {source: "eccsim", title: "Fig. 10 — memory EPI reduction (quad)", run: func(r *Runner, w io.Writer) (any, error) { return figEPI(r, w, sim.QuadEq) }},
	"fig11":      {source: "eccsim", title: "Fig. 11 — memory EPI reduction (dual)", run: func(r *Runner, w io.Writer) (any, error) { return figEPI(r, w, sim.DualEq) }},
	"fig12":      {source: "eccsim", title: "Fig. 12 — dynamic EPI reduction (quad)", run: figDyn},
	"fig13":      {source: "eccsim", title: "Fig. 13 — background EPI reduction (quad)", run: figBg},
	"fig14":      {source: "eccsim", title: "Fig. 14 — performance normalized (quad)", run: func(r *Runner, w io.Writer) (any, error) { return figPerf(r, w, sim.QuadEq) }},
	"fig15":      {source: "eccsim", title: "Fig. 15 — performance normalized (dual)", run: func(r *Runner, w io.Writer) (any, error) { return figPerf(r, w, sim.DualEq) }},
	"fig16":      {source: "eccsim", title: "Fig. 16 — accesses per instruction normalized (quad)", run: func(r *Runner, w io.Writer) (any, error) { return figAcc(r, w, sim.QuadEq) }},
	"fig17":      {source: "eccsim", title: "Fig. 17 — accesses per instruction normalized (dual)", run: func(r *Runner, w io.Writer) (any, error) { return figAcc(r, w, sim.DualEq) }},
	"counters":   {source: "eccsim", title: "§III-E — error-counter SRAM budget", run: counters},
	"hpcstall":   {source: "eccsim", title: "§VI-B — HPC system stall estimate", run: hpcStall},
	"undetected": {source: "eccsim", title: "§VI-D — undetectable error estimate", run: undetected},
	"mixedrank":  {source: "eccsim", title: "§VI-A — mixed narrow/wide ranks", run: mixedRank},
	"fig2":       {source: "faultmc", title: "Fig. 2 — mean time between faults in different channels", run: fig2},
	"fig8":       {source: "faultmc", title: "Fig. 8 — EOL fraction with materialized correction bits", run: fig8},
	"fig18":      {source: "faultmc", title: "Fig. 18 — P(multi-channel faults within one scrub window)", run: fig18},
	"schemeeval": {source: "serve", title: "Scheme evaluation — per-workload IPC/EPI/bandwidth for one configuration", run: schemeEval,
		schemeAware: true, defaultScheme: "ondie+chipkill", engineDomain: true},
	"faultinject": {source: "serve", title: "Fault injection — codeword-level Monte Carlo outcomes for one scheme", run: faultInject,
		schemeAware: true, defaultScheme: "ondie+chipkill"},
	"harpprofile": {source: "serve", title: "HARP profiling — at-risk bit coverage, on-die ECC active vs bypassed", run: harpProfile},
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// stage emits a progress line and returns a func that stamps the stage's
// wall-clock time when the work is done. Progress only — never Text.
func (r *Runner) stage(format string, args ...any) func() {
	if r.progress == nil {
		return func() {}
	}
	fmt.Fprintf(r.progress, format+"\n", args...)
	start := time.Now()
	return func() {
		fmt.Fprintf(r.progress, "  done in %v\n", time.Since(start).Round(time.Millisecond))
	}
}

func fig1(r *Runner, w io.Writer) (any, error) {
	header(w, "Fig. 1 — capacity overhead breakdown (detection vs correction bits)")
	rows := sim.Fig1CapacityBreakdown()
	for _, r := range rows {
		fmt.Fprintf(w, "%-38s detection %5.1f%%  correction %5.1f%%  total %5.1f%%\n",
			r.Scheme, 100*r.Detection, 100*r.Correction, 100*(r.Detection+r.Correction))
	}
	return rows, nil
}

func table1(r *Runner, w io.Writer) (any, error) {
	header(w, "Table I — processor microarchitecture")
	p := cpu.DefaultParams()
	fmt.Fprintf(w, "Issue width %d | bounded MLP %d | LLC hit %d cycles | 8 cores, 2GHz\n",
		p.IssueWidth, p.MaxOutstanding, p.LLCHitCycles)
	fmt.Fprintln(w, "L2 (LLC): 8MB, 16 ways, 64B/128B lines per scheme")
	return p, nil
}

// Table2Row is one evaluated configuration's geometry (Table II).
type Table2Row struct {
	Key      string       `json:"key"`
	Display  string       `json:"display"`
	Geometry ecc.Geometry `json:"geometry"`
}

func table2(r *Runner, w io.Writer) (any, error) {
	header(w, "Table II — evaluated ECC configurations")
	fmt.Fprintf(w, "%-32s %-14s %5s %10s %9s %9s\n", "", "Rank", "Line", "Ranks/Chan", "Channels", "I/O pins")
	rows := []Table2Row{}
	for _, key := range []string{"chipkill36", "chipkill18", "lotecc5", "lotecc9", "multiecc", "lotecc5+parity", "raim", "raim+parity"} {
		sc := sim.SchemeByKey(key)
		g := sc.Base.Geometry()
		fmt.Fprintf(w, "%-32s %-14s %4dB %10d %5d,%3d %5d,%4d\n",
			sc.Display, g.RankConfig, g.LineSize, g.RanksPerChannel,
			g.ChannelsDualEq, g.ChannelsQuadEq, g.PinsDualEq, g.PinsQuadEq)
		rows = append(rows, Table2Row{Key: key, Display: sc.Display, Geometry: g})
	}
	return rows, nil
}

func table3(r *Runner, w io.Writer) (any, error) {
	header(w, "Table III — capacity overheads (EOL = end of life)")
	rows, err := sim.Table3CapacityContext(r.ctx, r.p.Trials, r.p.Seed, r.p.Workers)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if r.EOL > 0 {
			fmt.Fprintf(w, "%-40s %5.1f%%, EOL avg: %5.1f%%\n", r.Config, 100*r.Overhead, 100*r.EOL)
		} else {
			fmt.Fprintf(w, "%-40s %5.1f%%\n", r.Config, 100*r.Overhead)
		}
	}
	return rows, nil
}

func fig9(r *Runner, w io.Writer) (any, error) {
	header(w, "Fig. 9 — workload bandwidth utilization (dual-channel commercial ECC)")
	cached, err := r.fig9Rows()
	if err != nil {
		return nil, err
	}
	// Sort a copy: the campaign rows may be shared with later batch points,
	// and re-sorting an already-sorted slice with a non-stable sort could
	// reorder ties. Each render sorts the same pristine order instead.
	rows := append([]sim.Fig9Row(nil), cached...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Utilization > rows[j].Utilization })
	for _, r := range rows {
		bin := "Bin1"
		if r.Bin2 {
			bin = "Bin2"
		}
		fmt.Fprintf(w, "%-15s %s  %5.1f%% of peak  (%.1f GB/s)\n", r.Workload, bin, 100*r.Utilization, r.GBs)
	}
	return rows, nil
}

// printComparison renders one figure's comparison table, as text or (when
// Params.CSV is set) machine-readable CSV rows.
func (r *Runner) printComparison(w io.Writer, c sim.Comparison, unit string) {
	if r.p.CSV {
		fmt.Fprintf(w, "workload")
		for _, b := range c.Baselines {
			fmt.Fprintf(w, ",vs_%s", b)
		}
		fmt.Fprintln(w)
		for _, row := range c.Rows {
			fmt.Fprintf(w, "%s", row.Workload)
			for _, b := range c.Baselines {
				fmt.Fprintf(w, ",%.3f", row.Value[b])
			}
			fmt.Fprintln(w)
		}
		for _, agg := range []struct {
			label string
			m     map[string]float64
		}{{"bin1_mean", c.Bin1Mean}, {"bin2_mean", c.Bin2Mean}, {"mean", c.Mean}} {
			fmt.Fprintf(w, "%s", agg.label)
			for _, b := range c.Baselines {
				fmt.Fprintf(w, ",%.3f", agg.m[b])
			}
			fmt.Fprintln(w)
		}
		return
	}
	fmt.Fprintf(w, "%-15s", "workload")
	for _, b := range c.Baselines {
		fmt.Fprintf(w, " %14s", "vs "+b)
	}
	fmt.Fprintln(w)
	for _, row := range c.Rows {
		fmt.Fprintf(w, "%-15s", row.Workload)
		for _, b := range c.Baselines {
			fmt.Fprintf(w, " %13.1f%s", row.Value[b], unit)
		}
		fmt.Fprintln(w)
	}
	for _, label := range []string{"Bin1 mean", "Bin2 mean", "mean"} {
		fmt.Fprintf(w, "%-15s", label)
		for _, b := range c.Baselines {
			var v float64
			switch label {
			case "Bin1 mean":
				v = c.Bin1Mean[b]
			case "Bin2 mean":
				v = c.Bin2Mean[b]
			default:
				v = c.Mean[b]
			}
			fmt.Fprintf(w, " %13.1f%s", v, unit)
		}
		fmt.Fprintln(w)
	}
}

// ComparisonPair holds the two comparisons of the EPI/performance figures:
// LOT-ECC5+Parity vs its baselines and RAIM+Parity vs RAIM.
type ComparisonPair struct {
	Parity sim.Comparison `json:"parity"`
	RAIM   sim.Comparison `json:"raim"`
}

func figEPI(r *Runner, w io.Writer, class sim.SystemClass) (any, error) {
	header(w, fmt.Sprintf("Fig. %s — memory EPI reduction, %s systems", figNo(class, "10", "11"), class))
	ev, err := r.eval(class)
	if err != nil {
		return nil, err
	}
	data := ComparisonPair{Parity: ev.Fig10EPI(), RAIM: ev.FigRAIMEPI()}
	fmt.Fprintln(w, "LOT-ECC5 + ECC Parity:")
	r.printComparison(w, data.Parity, "%")
	fmt.Fprintln(w, "RAIM + ECC Parity:")
	r.printComparison(w, data.RAIM, "%")
	return data, nil
}

func figDyn(r *Runner, w io.Writer) (any, error) {
	header(w, "Fig. 12 — dynamic EPI reduction, quad-equivalent systems")
	ev, err := r.eval(sim.QuadEq)
	if err != nil {
		return nil, err
	}
	data := ComparisonPair{Parity: ev.Fig12Dynamic(), RAIM: ev.Fig12DynamicRAIM()}
	r.printComparison(w, data.Parity, "%")
	fmt.Fprintln(w, "RAIM + ECC Parity:")
	r.printComparison(w, data.RAIM, "%")
	return data, nil
}

func figBg(r *Runner, w io.Writer) (any, error) {
	header(w, "Fig. 13 — background EPI reduction, quad-equivalent systems")
	ev, err := r.eval(sim.QuadEq)
	if err != nil {
		return nil, err
	}
	data := ev.Fig13Background()
	r.printComparison(w, data, "%")
	return data, nil
}

func figPerf(r *Runner, w io.Writer, class sim.SystemClass) (any, error) {
	header(w, fmt.Sprintf("Fig. %s — performance normalized to baselines, %s systems", figNo(class, "14", "15"), class))
	ev, err := r.eval(class)
	if err != nil {
		return nil, err
	}
	data := ComparisonPair{Parity: ev.Fig14Perf(), RAIM: ev.Fig14PerfRAIM()}
	r.printComparison(w, data.Parity, "x")
	fmt.Fprintln(w, "RAIM + ECC Parity:")
	r.printComparison(w, data.RAIM, "x")
	return data, nil
}

func figAcc(r *Runner, w io.Writer, class sim.SystemClass) (any, error) {
	header(w, fmt.Sprintf("Fig. %s — memory accesses per instruction normalized (lower is better), %s systems", figNo(class, "16", "17"), class))
	ev, err := r.eval(class)
	if err != nil {
		return nil, err
	}
	data := ev.Fig16Accesses()
	r.printComparison(w, data, "x")
	return data, nil
}

func figNo(class sim.SystemClass, quad, dual string) string {
	if class == sim.QuadEq {
		return quad
	}
	return dual
}

// CountersData is the §III-E error-counter SRAM budget.
type CountersData struct {
	SRAMBytes       int `json:"sram_bytes"`
	MaxRetiredPages int `json:"max_retired_pages"`
}

func counters(r *Runner, w io.Writer) (any, error) {
	header(w, "§III-E — error-counter SRAM budget")
	data := CountersData{
		SRAMBytes:       faultmodel.CounterSRAMBytes(1024) * 2,
		MaxRetiredPages: faultmodel.MaxRetiredPages(4, 8),
	}
	fmt.Fprintf(w, "512GB system, 1024 rank-level banks: %dB of on-chip counters (0.5B per pair)\n",
		data.SRAMBytes)
	fmt.Fprintf(w, "Max pages retired before a pair saturates (threshold 4, 8 channels): %d\n",
		data.MaxRetiredPages)
	return data, nil
}

// HPCStallData is the §VI-B stall estimate.
type HPCStallData struct {
	StallFraction float64 `json:"stall_fraction"`
}

func hpcStall(r *Runner, w io.Writer) (any, error) {
	header(w, "§VI-B — HPC system stall estimate")
	cfg := faultmodel.DefaultHPCConfig()
	data := HPCStallData{StallFraction: cfg.StallFraction()}
	fmt.Fprintf(w, "2PB system, 128GB/node, 1GB/s NIC: stalled %.2f%% of the time (paper: 0.35%%)\n",
		100*data.StallFraction)
	return data, nil
}

// MixedRankPoint pairs one hot-fraction sweep point with its result.
type MixedRankPoint struct {
	HotFraction float64 `json:"hot_fraction"`
	sim.MixedRankResult
}

func mixedRank(r *Runner, w io.Writer) (any, error) {
	header(w, "§VI-A — mixed narrow/wide ranks (2 wide + 2 narrow per channel, 8 channels)")
	fmt.Fprintln(w, "hot%   dyn pJ/access   vs all-narrow   capacity vs all-narrow   ECC overhead (parity vs none)")
	hots := []float64{0, 0.5, 0.8, 0.9, 0.95, 1.0}
	points := []MixedRankPoint{}
	for i, r := range sim.MixedRankSweep() {
		fmt.Fprintf(w, "%4.0f%%  %13.0f   %12.2fx   %21.2fx   %.1f%% vs %.1f%%\n",
			100*hots[i], r.Blended, r.BlendedVsAllNarrow, r.RelativeCapacity,
			100*r.OverheadWithParity, 100*r.OverheadWithoutParity)
		points = append(points, MixedRankPoint{HotFraction: hots[i], MixedRankResult: r})
	}
	return points, nil
}

// UndetectedData is the §VI-D undetectable-error estimate.
type UndetectedData struct {
	Years float64 `json:"years"`
}

func undetected(r *Runner, w io.Writer) (any, error) {
	header(w, "§VI-D — undetectable error rate, modified LOT-ECC5 encoding")
	years := faultmodel.UndetectedErrorYears(faultmodel.PaperTopology(8), faultmodel.DefaultRates(), 4)
	fmt.Fprintf(w, "One undetected error per %.0f years (paper: ~300,000; target: 1000)\n", years)
	return UndetectedData{Years: years}, nil
}

// Fig2Data is the analytic curve plus its Monte Carlo cross-check.
type Fig2Data struct {
	Rows           []sim.Fig2Row `json:"rows"`
	CrossCheckFIT  float64       `json:"cross_check_fit"`
	MonteCarloDays float64       `json:"monte_carlo_days"`
	AnalyticDays   float64       `json:"analytic_days"`
}

func fig2(r *Runner, w io.Writer) (any, error) {
	fmt.Fprintln(w, "=== Fig. 2 — mean time between faults in different channels ===")
	fmt.Fprintln(w, "(8 channels × 4 ranks × 9 chips, exponential failure distribution)")
	rows := sim.Fig2ChannelFaultGaps()
	for _, r := range rows {
		fmt.Fprintf(w, "%6.0f FIT/chip: %8.0f days\n", r.FITPerChip, r.MeanDays)
	}
	// Cross-check one point against Monte Carlo (40 trials suffice).
	done := r.stage("fig2: Monte Carlo cross-check, 40 trials, workers=%d", r.p.Workers)
	topo := faultmodel.PaperTopology(8)
	mc, err := faultmodel.MeasureChannelFaultGapsContext(r.ctx, 44, topo, 40, r.p.Seed, r.p.Workers)
	if err != nil {
		return nil, err
	}
	done()
	data := Fig2Data{
		Rows:           rows,
		CrossCheckFIT:  44,
		MonteCarloDays: mc / 24,
		AnalyticDays:   faultmodel.MeanTimeBetweenChannelFaults(44, topo) / 24,
	}
	fmt.Fprintf(w, "Monte Carlo cross-check at 44 FIT: %.0f days (analytic %.0f)\n",
		data.MonteCarloDays, data.AnalyticDays)
	return data, nil
}

func fig8(r *Runner, w io.Writer) (any, error) {
	fmt.Fprintln(w, "\n=== Fig. 8 — fraction of memory with stored correction bits after 7 years ===")
	done := r.stage("fig8: %d trials × 4 channel counts, seed=%d, workers=%d", r.p.Trials, r.p.Seed, r.p.Workers)
	rows, err := sim.Fig8EOLFractionsContext(r.ctx, r.p.Trials, r.p.Seed, r.p.Workers)
	if err != nil {
		return nil, err
	}
	done()
	for _, r := range rows {
		fmt.Fprintf(w, "%2d channels: mean %5.2f%%   99.9th pct %5.2f%%\n",
			r.Channels, 100*r.Mean, 100*r.P999)
	}
	return rows, nil
}

func fig18(r *Runner, w io.Writer) (any, error) {
	fmt.Fprintln(w, "\n=== Fig. 18 — P(faults in >1 channel within one detection window, 7-year life) ===")
	rows := sim.Fig18ScrubWindows()
	last := 0.0
	for _, r := range rows {
		if r.FITPerChip != last {
			fmt.Fprintf(w, "-- %.0f FIT/chip --\n", r.FITPerChip)
			last = r.FITPerChip
		}
		fmt.Fprintf(w, "window %6.0f h: %.6f\n", r.WindowHours, r.Probability)
	}
	fmt.Fprintln(w, "(paper reference point: 8h window at 100 FIT → 0.0002)")
	return rows, nil
}
