package report

// The scheme layer of the experiment registry: which experiments honour
// Params.Scheme, what an empty scheme resolves to, and the one
// normalization path every front end (daemon, CLIs, sweeps) shares so that
// equivalent scheme selections always reach the result cache as one
// canonical identity.

import (
	"fmt"

	"eccparity/internal/ecc"
	"eccparity/internal/sim"
)

// SchemeAware reports whether the experiment honours Params.Scheme.
func SchemeAware(id string) bool { return registry[id].schemeAware }

// DefaultScheme returns what an empty Params.Scheme resolves to for a
// scheme-aware experiment ("" for unknown or scheme-blind ids).
func DefaultScheme(id string) string { return registry[id].defaultScheme }

// NormalizedFor resolves p to the canonical identity the result cache
// hashes for experiment id: the plain Normalized knobs plus canonicalized
// scheme fields. Scheme fields on a scheme-blind experiment are an error;
// on a scheme-aware one the scheme must be registered (ecc registry keys,
// plus engine-only sim configurations where the experiment admits them),
// options must validate against the scheme, and the explicit default
// selection normalizes to empty fields — so "scheme omitted" and "scheme
// set to the default" are one cache entry, and every pre-scheme-layer
// request keeps its original content-address.
func (p Params) NormalizedFor(id string) (Params, error) {
	sp, ok := registry[id]
	if !ok {
		return Params{}, fmt.Errorf("report: unknown experiment %q", id)
	}
	p = p.Normalized()
	if !sp.schemeAware {
		if p.Scheme != "" || p.SchemeOptions != "" {
			return Params{}, fmt.Errorf("report: experiment %q is not scheme-aware", id)
		}
		return p, nil
	}
	scheme := p.Scheme
	if scheme == "" {
		scheme = sp.defaultScheme
	}
	var canon string
	switch {
	case ecc.Known(scheme):
		c, err := ecc.CanonicalOptions(scheme, []byte(p.SchemeOptions))
		if err != nil {
			return Params{}, fmt.Errorf("report: experiment %q: %w", id, err)
		}
		canon = c
	case sp.engineDomain && sim.KnownScheme(scheme):
		if p.SchemeOptions != "" {
			return Params{}, fmt.Errorf("report: experiment %q: engine-only scheme %q accepts no options", id, scheme)
		}
	default:
		return Params{}, fmt.Errorf("report: experiment %q: unknown scheme %q", id, scheme)
	}
	if scheme == sp.defaultScheme && canon == "" {
		p.Scheme, p.SchemeOptions = "", ""
	} else {
		p.Scheme, p.SchemeOptions = scheme, canon
	}
	return p, nil
}

// schemeFor resolves the Runner's effective (scheme, canonical options),
// falling back to the experiment's default. The default is passed in
// rather than read from the registry so renderer functions stay free of
// initialization cycles with the registry literal.
func (r *Runner) schemeFor(defaultScheme string) (scheme, options string) {
	scheme = r.p.Scheme
	if scheme == "" {
		scheme = defaultScheme
	}
	return scheme, r.p.SchemeOptions
}
