package report

import (
	"errors"
	"strings"
	"testing"

	"eccparity/internal/sim"
)

// configErr asserts err is a *sim.ConfigError on the given field.
func configErr(t *testing.T, err error, field string) {
	t.Helper()
	var ce *sim.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *sim.ConfigError", err, err)
	}
	if ce.Field != field {
		t.Fatalf("ConfigError field = %q, want %q (err: %v)", ce.Field, field, err)
	}
}

func TestExpandSweepCrossProduct(t *testing.T) {
	pts, err := ExpandSweep("fig8", Params{Trials: 40}, SweepAxes{
		Experiments: []string{"fig8", "fig9"},
		Seeds:       []int64{1, 2, 3},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("expanded %d points, want 6", len(pts))
	}
	// Declaration order: experiment outermost, seed innermost.
	wantOrder := []struct {
		exp  string
		seed int64
	}{
		{"fig8", 1}, {"fig8", 2}, {"fig8", 3},
		{"fig9", 1}, {"fig9", 2}, {"fig9", 3},
	}
	d := DefaultParams()
	for i, pt := range pts {
		if pt.Experiment != wantOrder[i].exp || pt.Params.Seed != wantOrder[i].seed {
			t.Errorf("point %d = %s seed=%d, want %s seed=%d",
				i, pt.Experiment, pt.Params.Seed, wantOrder[i].exp, wantOrder[i].seed)
		}
		// The base's explicit trials survive; untouched knobs normalize to
		// the full-fidelity defaults.
		if pt.Params.Trials != 40 || pt.Params.Cycles != d.Cycles || pt.Params.Warmup != d.Warmup {
			t.Errorf("point %d params %+v, want trials 40 and normalized defaults", i, pt.Params)
		}
	}
}

func TestExpandSweepBaseOnly(t *testing.T) {
	pts, err := ExpandSweep("table3", Params{Cycles: 2000, Warmup: 200, Trials: 8, Seed: 5}, SweepAxes{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("empty axes expanded to %d points, want 1 (the base)", len(pts))
	}
	if p := pts[0]; p.Experiment != "table3" || p.Params.Seed != 5 || p.Params.Cycles != 2000 {
		t.Fatalf("base point %+v", p)
	}
}

func TestExpandSweepUnknownExperiment(t *testing.T) {
	_, err := ExpandSweep("fig8", Params{}, SweepAxes{Experiments: []string{"fig8", "fig99"}}, 0)
	configErr(t, err, "experiment")
	_, err = ExpandSweep("fig99", Params{}, SweepAxes{}, 0)
	configErr(t, err, "experiment")
}

func TestExpandSweepNegativeAxisValues(t *testing.T) {
	_, err := ExpandSweep("fig8", Params{}, SweepAxes{Cycles: []float64{1000, -1}}, 0)
	configErr(t, err, "cycles")
	_, err = ExpandSweep("fig8", Params{}, SweepAxes{Warmup: []int{-5}}, 0)
	configErr(t, err, "warmup")
	_, err = ExpandSweep("fig8", Params{}, SweepAxes{Trials: []int{-2}}, 0)
	configErr(t, err, "trials")
}

func TestExpandSweepMaxPoints(t *testing.T) {
	_, err := ExpandSweep("fig8", Params{}, SweepAxes{Seeds: []int64{1, 2, 3, 4, 5}}, 4)
	configErr(t, err, "axes")
	// At exactly the cap the sweep is accepted.
	pts, err := ExpandSweep("fig8", Params{}, SweepAxes{Seeds: []int64{1, 2, 3, 4}}, 4)
	if err != nil || len(pts) != 4 {
		t.Fatalf("at-cap sweep: %v (%d points)", err, len(pts))
	}
}

func TestExpandSweepRejectsDuplicatePoints(t *testing.T) {
	// Seed 0 normalizes to seed 1, colliding with the explicit 1.
	_, err := ExpandSweep("fig8", Params{}, SweepAxes{Seeds: []int64{0, 1}}, 0)
	configErr(t, err, "points")
	if !strings.Contains(err.Error(), "normalize to the same config") {
		t.Fatalf("duplicate error %v should name the collision", err)
	}
	// Zero cycles normalize to the default, colliding with the explicit
	// default value on another axis entry.
	_, err = ExpandSweep("fig8", Params{}, SweepAxes{Cycles: []float64{0, DefaultParams().Cycles}}, 0)
	configErr(t, err, "points")
}
