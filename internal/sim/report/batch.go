package report

import (
	"context"
	"fmt"
	"io"

	"eccparity/internal/sim"
)

// evalKey is the identity of one (scheme × workload) evaluation matrix:
// the Params fields that change simulated behaviour (Cycles, Warmup, Seed)
// plus the system class. Trials (Monte Carlo only), CSV (rendering only)
// and Workers (scheduling only) are deliberately excluded — points that
// differ only in those share the same matrix.
type evalKey struct {
	cycles float64
	warmup int
	seed   int64
	class  sim.SystemClass
}

// fig9Key is the identity of a Fig. 9 bandwidth campaign (no class: Fig. 9
// is always the dual-channel commercial-ECC system).
type fig9Key struct {
	cycles float64
	warmup int
	seed   int64
}

// Bounds on the store: an identity is ~128 simulation results, so a
// runaway sweep over many (cycles, warmup, seed) combinations must not
// accumulate matrices without limit. Oldest-inserted is evicted first;
// within one sweep identities repeat heavily, so the bound is rarely hit.
const (
	maxStoredEvals = 8
	maxStoredFig9  = 8
)

// evalStore caches evaluation matrices and Fig. 9 campaigns across the
// points of a batch. It is not safe for concurrent use — it rides inside
// an Executor, which is checked out by one worker at a time.
type evalStore struct {
	evals     map[evalKey]*sim.Evaluation
	evalOrder []evalKey
	fig9      map[fig9Key][]sim.Fig9Row
	fig9Order []fig9Key
}

func newEvalStore() *evalStore {
	return &evalStore{
		evals: map[evalKey]*sim.Evaluation{},
		fig9:  map[fig9Key][]sim.Fig9Row{},
	}
}

func (s *evalStore) putEval(k evalKey, ev *sim.Evaluation) {
	if len(s.evalOrder) >= maxStoredEvals {
		delete(s.evals, s.evalOrder[0])
		s.evalOrder = s.evalOrder[1:]
	}
	s.evals[k] = ev
	s.evalOrder = append(s.evalOrder, k)
}

func (s *evalStore) putFig9(k fig9Key, rows []sim.Fig9Row) {
	if len(s.fig9Order) >= maxStoredFig9 {
		delete(s.fig9, s.fig9Order[0])
		s.fig9Order = s.fig9Order[1:]
	}
	s.fig9[k] = rows
	s.fig9Order = append(s.fig9Order, k)
}

// Executor runs experiment points back to back through one shared
// evaluation store, so points whose Params agree on the simulated identity
// (Cycles, Warmup, Seed) reuse each other's (scheme × workload) matrices
// and Fig. 9 campaigns instead of recomputing them. This is the engine of
// the batch sweep path: a grid that varies only Trials, CSV, or the
// experiment id runs its expensive simulations once.
//
// Results are unaffected by sharing — a matrix's bytes depend only on its
// identity, which is exactly the store key — and a canceled point caches
// nothing, matching the single-Runner behaviour. An Executor is not safe
// for concurrent use; the daemon keeps one per job worker.
type Executor struct {
	progress io.Writer
	store    *evalStore
}

// NewExecutor builds an Executor. progress receives campaign tickers (nil
// silences them); it never receives report text.
func NewExecutor(progress io.Writer) *Executor {
	return &Executor{progress: progress, store: newEvalStore()}
}

// Run executes one experiment point under ctx, exactly like
// NewRunner(p, progress).RunContext(ctx, experiment) except that the
// expensive intermediates are shared with the Executor's previous points.
func (x *Executor) Run(ctx context.Context, experiment string, p Params) (Report, error) {
	r := NewRunner(p, x.progress)
	r.store = x.store
	return r.RunContext(ctx, experiment)
}

// RunBatch executes an ordered slice of sweep points through one Executor
// and returns their Reports in order. Execution is sequential and
// fail-fast: the first error (typically ctx.Err() after a cancel) aborts
// the batch. Each point's Report is byte-identical to what
// NewRunner(pt.Params, progress).RunContext(ctx, pt.Experiment) returns —
// the batch only removes redundant recomputation, never changes results.
// Callers should pass normalized Params (Params.Normalized) so that points
// meant to share an identity actually do.
func RunBatch(ctx context.Context, points []SweepPoint, progress io.Writer) ([]Report, error) {
	x := NewExecutor(progress)
	out := make([]Report, len(points))
	for i, pt := range points {
		rep, err := x.Run(ctx, pt.Experiment, pt.Params)
		if err != nil {
			return nil, fmt.Errorf("report: batch point %d (%s): %w", i, pt.Experiment, err)
		}
		out[i] = rep
	}
	return out, nil
}
