package report

// The daemon-first experiments added with the scheme layer: none of them
// belongs to a CLI's historical `-exp all` set (source "serve"), so the
// golden byte-identity of cmd/eccsim and cmd/faultmc is untouched, but all
// three run through the same Runner/registry plumbing — servable, cacheable
// and sweepable like every figure.

import (
	"fmt"
	"io"
	"math/rand"

	"eccparity/internal/dram"
	"eccparity/internal/ecc"
	"eccparity/internal/faultmodel"
	"eccparity/internal/sim"
)

// SchemeEvalRow is one workload's full-system metrics under the selected
// scheme (quad-equivalent class).
type SchemeEvalRow struct {
	Workload         string  `json:"workload"`
	IPC              float64 `json:"ipc"`
	EPI              float64 `json:"epi_pj"`
	DynamicEPI       float64 `json:"dynamic_epi_pj"`
	BackgroundEPI    float64 `json:"background_epi_pj"`
	AccessesPerInstr float64 `json:"accesses_per_instr"`
	BandwidthUtil    float64 `json:"bandwidth_util"`
	BandwidthGBs     float64 `json:"bandwidth_gbs"`
}

// SchemeEvalData is the schemeeval experiment's structured result.
type SchemeEvalData struct {
	Scheme        string          `json:"scheme"`
	Options       string          `json:"options,omitempty"`
	Display       string          `json:"display"`
	OnDieOverhead float64         `json:"on_die_overhead,omitempty"`
	Rows          []SchemeEvalRow `json:"rows"`
}

func schemeEval(r *Runner, w io.Writer) (any, error) {
	scheme, options := r.schemeFor("ondie+chipkill")
	sc, err := sim.SchemeVariant(scheme, options)
	if err != nil {
		return nil, err
	}
	header(w, fmt.Sprintf("Scheme evaluation — %s, quad-equivalent systems", sc.Display))
	s, err := sim.New(r.opts()...)
	if err != nil {
		return nil, err
	}
	done := r.stage("schemeeval: %s across all workloads, workers=%d", sc.Key, r.p.Workers)
	ev, err := s.Evaluate(r.ctx, sim.QuadEq, []string{sc.Key}, nil)
	if err != nil {
		return nil, err
	}
	done()
	data := SchemeEvalData{
		Scheme: scheme, Options: options,
		Display: sc.Display, OnDieOverhead: sc.OnDieOverhead,
	}
	fmt.Fprintf(w, "%-15s %6s %10s %10s %10s %8s %9s\n",
		"workload", "IPC", "EPI pJ", "dyn pJ", "bg pJ", "acc/inst", "BW util")
	for _, wl := range ev.Workloads() {
		res := ev.Results[sc.Key][wl]
		fmt.Fprintf(w, "%-15s %6.3f %10.1f %10.1f %10.1f %8.4f %8.1f%%\n",
			wl, res.IPC, res.EPI, res.DynamicEPI, res.BackgroundEPI,
			res.AccessesPerInstr, 100*res.BandwidthUtil)
		data.Rows = append(data.Rows, SchemeEvalRow{
			Workload: wl, IPC: res.IPC, EPI: res.EPI,
			DynamicEPI: res.DynamicEPI, BackgroundEPI: res.BackgroundEPI,
			AccessesPerInstr: res.AccessesPerInstr,
			BandwidthUtil:    res.BandwidthUtil, BandwidthGBs: res.BandwidthGBs,
		})
	}
	return data, nil
}

// FaultInjectRow is one fault pattern's Monte Carlo outcome counts.
type FaultInjectRow struct {
	Pattern string `json:"pattern"`
	Trials  int    `json:"trials"`
	// OnDieCorrected counts trials in which at least one chip's on-die
	// corrector acted (repair or miscorrection) — zero for rank-only
	// schemes and under passthrough.
	OnDieCorrected   int `json:"on_die_corrected"`
	Corrected        int `json:"corrected"`
	Uncorrectable    int `json:"uncorrectable"`
	SilentCorruption int `json:"silent_corruption"`
}

// FaultInjectData is the faultinject experiment's structured result.
type FaultInjectData struct {
	Scheme  string           `json:"scheme"`
	Options string           `json:"options,omitempty"`
	Rows    []FaultInjectRow `json:"rows"`
}

// faultInjectPatterns enumerates the injected fault classes, smallest to
// largest: the paper's single-bit fault, a double-bit fault inside one
// device (the on-die miscorrection trigger), and a dead device.
var faultInjectPatterns = []struct {
	name   string
	inject func(rng *rand.Rand, cw *ecc.Codeword)
}{
	{"single-bit", func(rng *rand.Rand, cw *ecc.Codeword) {
		chip := rng.Intn(len(cw.Shards))
		bit := rng.Intn(8 * len(cw.Shards[chip]))
		cw.Shards[chip][bit/8] ^= 1 << uint(bit%8)
	}},
	{"double-bit-chip", func(rng *rand.Rand, cw *ecc.Codeword) {
		chip := rng.Intn(len(cw.Shards))
		n := 8 * len(cw.Shards[chip])
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		cw.Shards[chip][a/8] ^= 1 << uint(a%8)
		cw.Shards[chip][b/8] ^= 1 << uint(b%8)
	}},
	{"chip-kill", func(rng *rand.Rand, cw *ecc.Codeword) {
		rng.Read(cw.Shards[rng.Intn(len(cw.Shards))])
	}},
}

func faultInject(r *Runner, w io.Writer) (any, error) {
	scheme, options := r.schemeFor("ondie+chipkill")
	s, err := ecc.Build(scheme, options)
	if err != nil {
		return nil, err
	}
	header(w, fmt.Sprintf("Fault injection — %s, %d trials per pattern", s.Name(), r.p.Trials))
	data := FaultInjectData{Scheme: scheme, Options: options}
	fmt.Fprintf(w, "%-16s %8s %8s %8s %8s %8s\n",
		"pattern", "trials", "on-die", "corr", "uncorr", "silent")
	line := make([]byte, s.Geometry().LineSize)
	for pi, pat := range faultInjectPatterns {
		// One private stream per pattern, derived with the campaign-seed
		// discipline: results depend only on (seed, pattern), never on the
		// other patterns' draw counts.
		rng := rand.New(rand.NewSource(faultmodel.TrialSeed(r.p.Seed, pi)))
		row := FaultInjectRow{Pattern: pat.name, Trials: r.p.Trials}
		for trial := 0; trial < r.p.Trials; trial++ {
			if err := r.ctx.Err(); err != nil {
				return nil, err
			}
			rng.Read(line)
			cw, corr := s.Encode(line)
			pat.inject(rng, cw)
			if od, ok := s.(interface {
				Scrub(*ecc.Codeword) []dram.ScrubResult
			}); ok {
				for _, sr := range od.Scrub(cw.Clone()) {
					if sr.Outcome == dram.ScrubCorrected {
						row.OnDieCorrected++
						break
					}
				}
			}
			got, _, err := s.Correct(cw, corr)
			switch {
			case err != nil:
				row.Uncorrectable++
			case eqBytes(got, line):
				row.Corrected++
			default:
				row.SilentCorruption++
			}
		}
		fmt.Fprintf(w, "%-16s %8d %8d %8d %8d %8d\n", row.Pattern,
			row.Trials, row.OnDieCorrected, row.Corrected, row.Uncorrectable, row.SilentCorruption)
		data.Rows = append(data.Rows, row)
	}
	return data, nil
}

// HarpProfileData is the harpprofile experiment's structured result.
type HarpProfileData struct {
	Words         int                    `json:"words"`
	AtRiskPerWord int                    `json:"at_risk_per_word"`
	ErrorProb     float64                `json:"error_prob"`
	Trials        int                    `json:"trials"`
	Rounds        []faultmodel.HarpRound `json:"rounds"`
}

func harpProfile(r *Runner, w io.Writer) (any, error) {
	header(w, "HARP profiling — at-risk bit coverage, on-die ECC active vs bypassed")
	cfg := faultmodel.HarpConfig{
		Words: 64, AtRiskPerWord: 3, ErrorProb: 0.25, Rounds: 16,
		Trials: r.p.Trials, Seed: r.p.Seed, Workers: r.p.Workers,
	}
	done := r.stage("harpprofile: %d trials × %d words × %d rounds, workers=%d",
		cfg.Trials, cfg.Words, cfg.Rounds, r.p.Workers)
	res, err := faultmodel.ProfileHarpContext(r.ctx, cfg)
	if err != nil {
		return nil, err
	}
	done()
	fmt.Fprintf(w, "%d words, %d at-risk bits/word, p(flip)=%.2f per round, %d trials\n",
		cfg.Words, cfg.AtRiskPerWord, cfg.ErrorProb, cfg.Trials)
	fmt.Fprintf(w, "%5s %12s %12s %14s\n", "round", "raw cov", "active cov", "miscorr rate")
	for _, hr := range res.Rounds {
		fmt.Fprintf(w, "%5d %11.2f%% %11.2f%% %13.4f\n",
			hr.Round, 100*hr.RawCoverage, 100*hr.ActiveCoverage, hr.MiscorrectionRate)
	}
	final := res.Final()
	fmt.Fprintf(w, "after %d rounds: bypass reads cover %.1f%% of at-risk bits vs %.1f%% through the corrector\n",
		final.Round, 100*final.RawCoverage, 100*final.ActiveCoverage)
	return HarpProfileData{
		Words: cfg.Words, AtRiskPerWord: cfg.AtRiskPerWord,
		ErrorProb: cfg.ErrorProb, Trials: cfg.Trials, Rounds: res.Rounds,
	}, nil
}

// eqBytes reports byte equality (len-aware).
func eqBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
