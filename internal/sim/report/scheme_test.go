package report

import (
	"strings"
	"testing"
)

// TestNormalizedFor pins the canonicalization the result cache's content
// addressing depends on: pre-scheme-layer requests keep their identity,
// equivalent scheme selections collapse to one identity, and invalid
// selections are rejected before any work.
func TestNormalizedFor(t *testing.T) {
	base := Params{Trials: 40, Seed: 7}

	// Scheme-blind experiments: identical to the historical normalization.
	got, err := base.NormalizedFor("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if got != base.Normalized() {
		t.Fatalf("fig8: NormalizedFor %+v != Normalized %+v", got, base.Normalized())
	}
	bad := base
	bad.Scheme = "chipkill36"
	if _, err := bad.NormalizedFor("fig8"); err == nil {
		t.Fatal("scheme on a scheme-blind experiment must be rejected")
	}

	// The default selection folds to empty fields, however it is spelled.
	for _, p := range []Params{
		base,
		{Trials: 40, Seed: 7, Scheme: "ondie+chipkill"},
		{Trials: 40, Seed: 7, Scheme: "ondie+chipkill", SchemeOptions: "{}"},
		{Trials: 40, Seed: 7, Scheme: "ondie+chipkill", SchemeOptions: `{"passthrough":false}`},
	} {
		got, err := p.NormalizedFor("faultinject")
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if got.Scheme != "" || got.SchemeOptions != "" {
			t.Fatalf("default selection %+v should fold to empty scheme fields, got %+v", p, got)
		}
	}

	// Non-default selections survive with canonical options.
	p := base
	p.Scheme, p.SchemeOptions = "ondie-sec", `{ "passthrough" : true }`
	got, err = p.NormalizedFor("faultinject")
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != "ondie-sec" || got.SchemeOptions != `{"passthrough":true}` {
		t.Fatalf("canonicalization lost the selection: %+v", got)
	}

	// The default scheme with non-default options is NOT the default.
	p = base
	p.Scheme, p.SchemeOptions = "ondie+chipkill", `{"passthrough":true}`
	got, err = p.NormalizedFor("faultinject")
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != "ondie+chipkill" || got.SchemeOptions != `{"passthrough":true}` {
		t.Fatalf("passthrough variant folded away: %+v", got)
	}

	// Engine-only configurations: admitted by schemeeval, not faultinject,
	// and never with options.
	p = base
	p.Scheme = "lotecc5+parity"
	if _, err := p.NormalizedFor("schemeeval"); err != nil {
		t.Fatalf("schemeeval should admit engine-only schemes: %v", err)
	}
	if _, err := p.NormalizedFor("faultinject"); err == nil {
		t.Fatal("faultinject is codec-level: engine-only schemes have no codeword path")
	}
	p.SchemeOptions = `{"passthrough":true}`
	if _, err := p.NormalizedFor("schemeeval"); err == nil {
		t.Fatal("engine-only scheme with options must be rejected")
	}

	// Unknown ids and schemes.
	if _, err := base.NormalizedFor("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	p = base
	p.Scheme = "nope"
	if _, err := p.NormalizedFor("faultinject"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// TestExpandSweepSchemeAxis: the scheme axis cross-multiplies like every
// other knob, folds the default spelling, and rejects invalid combinations.
func TestExpandSweepSchemeAxis(t *testing.T) {
	base := Params{Trials: 10, Seed: 3}
	axes := SweepAxes{Schemes: []string{"ondie-sec", "ondie+chipkill", "ondie+raim18"}}
	points, err := ExpandSweep("faultinject", base, axes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	wantSchemes := []string{"ondie-sec", "", "ondie+raim18"} // default folds to ""
	for i, pt := range points {
		if pt.Params.Scheme != wantSchemes[i] {
			t.Errorf("point %d: scheme %q, want %q", i, pt.Params.Scheme, wantSchemes[i])
		}
	}

	// Two spellings of the default are one identity — a duplicate.
	if _, err := ExpandSweep("faultinject", base, SweepAxes{Schemes: []string{"ondie+chipkill", ""}}, 0); err == nil {
		t.Fatal("duplicate scheme points must be rejected")
	}
	// A scheme axis cannot apply to a scheme-blind experiment.
	if _, err := ExpandSweep("fig8", base, SweepAxes{Schemes: []string{"chipkill36"}}, 0); err == nil {
		t.Fatal("scheme axis over a scheme-blind experiment must be rejected")
	}
	// Unknown scheme values are rejected at expansion.
	if _, err := ExpandSweep("faultinject", base, SweepAxes{Schemes: []string{"nope"}}, 0); err == nil {
		t.Fatal("unknown scheme in axis must be rejected")
	}
	// The cap counts the scheme axis.
	if _, err := ExpandSweep("faultinject", base, axes, 2); err == nil {
		t.Fatal("cap must count scheme-axis points")
	}
}

// TestServeExperimentsWorkerInvariant extends the cache's determinism
// contract to the scheme-aware experiments: byte-identical text at any
// worker count, and distinct schemes produce distinct results.
func TestServeExperimentsWorkerInvariant(t *testing.T) {
	for _, id := range []string{"faultinject", "harpprofile", "schemeeval"} {
		var texts []string
		for _, workers := range []int{1, 8} {
			p := smallParams
			p.Workers = workers
			rep, err := NewRunner(p, nil).Run(id)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", id, workers, err)
			}
			texts = append(texts, rep.Text)
		}
		if texts[0] != texts[1] {
			t.Errorf("%s: text differs between workers=1 and workers=8", id)
		}
		if !strings.Contains(texts[0], "===") {
			t.Errorf("%s: missing header", id)
		}
	}
}

// TestFaultInjectSchemeSelection: the scheme knob actually changes what
// runs — the bare on-die rank leaves chip kills unrecovered while the
// composite corrects them, and passthrough silences the on-die counters.
func TestFaultInjectSchemeSelection(t *testing.T) {
	run := func(scheme, options string) FaultInjectData {
		t.Helper()
		p := smallParams
		p.Scheme, p.SchemeOptions = scheme, options
		rep, err := NewRunner(p, nil).Run("faultinject")
		if err != nil {
			t.Fatal(err)
		}
		return rep.Data.(FaultInjectData)
	}
	rowByName := func(d FaultInjectData, name string) FaultInjectRow {
		for _, r := range d.Rows {
			if r.Pattern == name {
				return r
			}
		}
		t.Fatalf("no %s row", name)
		return FaultInjectRow{}
	}

	composite := run("", "") // default ondie+chipkill
	if kill := rowByName(composite, "chip-kill"); kill.Corrected != kill.Trials {
		t.Errorf("composite should correct every chip kill: %+v", kill)
	}
	if single := rowByName(composite, "single-bit"); single.OnDieCorrected != single.Trials {
		t.Errorf("every single-bit fault should be on-die corrected: %+v", single)
	}

	bare := run("ondie-sec", "")
	if kill := rowByName(bare, "chip-kill"); kill.Uncorrectable+kill.SilentCorruption == 0 {
		t.Errorf("bare on-die rank cannot correct chip kills: %+v", kill)
	}

	bypass := run("ondie+chipkill", `{"passthrough":true}`)
	for _, row := range bypass.Rows {
		if row.OnDieCorrected != 0 {
			t.Errorf("passthrough must silence the on-die counters: %+v", row)
		}
	}
	if kill := rowByName(bypass, "chip-kill"); kill.Corrected != kill.Trials {
		t.Errorf("rank-level code still corrects chip kills under passthrough: %+v", kill)
	}
}
