package report

// Sweep expansion: the paper's headline results (Figs. 8–14) are parameter
// grids — the same experiment evaluated across seeds, budgets, and
// experiment ids. This file turns one base config plus per-knob axes into
// the deterministic cross-product of fully normalized points, so callers
// (the eccsimd sweep endpoint) get one validated work list with one
// content-address per point. Validation failures are *sim.ConfigError, the
// same typed error the engine's own entry points return.

import (
	"fmt"

	"eccparity/internal/sim"
)

// SweepAxes lists, per knob, the values a sweep substitutes into its base
// config. An empty axis keeps the base value; a non-empty axis contributes
// every listed value to the cross-product.
type SweepAxes struct {
	Experiments []string
	Schemes     []string
	Cycles      []float64
	Warmup      []int
	Trials      []int
	Seeds       []int64
}

// SweepPoint is one expanded configuration: a registered experiment id and
// its normalized parameter identity.
type SweepPoint struct {
	Experiment string
	Params     Params
}

// ExpandSweep expands base × axes into the cross-product of sweep points,
// ordered experiment-outermost / seed-innermost (the declaration order of
// SweepAxes), each with normalized Params. The expansion is rejected with a
// *sim.ConfigError when an experiment id is unregistered (Field
// "experiment"), an axis value is negative (the knob's name), the product
// exceeds maxPoints > 0 (Field "axes"), or two points normalize to the same
// identity (Field "points") — a duplicate would silently compute one result
// twice or, worse, read as a bigger grid than was actually evaluated.
func ExpandSweep(baseExperiment string, base Params, axes SweepAxes, maxPoints int) ([]SweepPoint, error) {
	experiments := axes.Experiments
	if len(experiments) == 0 {
		experiments = []string{baseExperiment}
	}
	for _, id := range experiments {
		if !Known(id) {
			return nil, &sim.ConfigError{Field: "experiment", Reason: fmt.Sprintf("unknown experiment %q (axes may only name registered ids)", id)}
		}
	}
	schemes := axes.Schemes
	if len(schemes) == 0 {
		schemes = []string{base.Scheme}
	}
	cycles := axes.Cycles
	if len(cycles) == 0 {
		cycles = []float64{base.Cycles}
	}
	warmups := axes.Warmup
	if len(warmups) == 0 {
		warmups = []int{base.Warmup}
	}
	trials := axes.Trials
	if len(trials) == 0 {
		trials = []int{base.Trials}
	}
	seeds := axes.Seeds
	if len(seeds) == 0 {
		seeds = []int64{base.Seed}
	}
	for _, v := range cycles {
		if v < 0 {
			return nil, &sim.ConfigError{Field: "cycles", Reason: fmt.Sprintf("axis values must be non-negative (got %g)", v)}
		}
	}
	for _, v := range warmups {
		if v < 0 {
			return nil, &sim.ConfigError{Field: "warmup", Reason: fmt.Sprintf("axis values must be non-negative (got %d)", v)}
		}
	}
	for _, v := range trials {
		if v < 0 {
			return nil, &sim.ConfigError{Field: "trials", Reason: fmt.Sprintf("axis values must be non-negative (got %d)", v)}
		}
	}

	// Stepwise product so absurd axis lengths cannot overflow before the
	// cap check fires.
	n := 1
	for _, k := range []int{len(experiments), len(schemes), len(cycles), len(warmups), len(trials), len(seeds)} {
		n *= k
		if maxPoints > 0 && n > maxPoints {
			return nil, &sim.ConfigError{Field: "axes", Reason: fmt.Sprintf("sweep expands to at least %d points, max %d", n, maxPoints)}
		}
	}

	points := make([]SweepPoint, 0, n)
	seen := make(map[SweepPoint]int, n)
	for _, exp := range experiments {
		for _, sch := range schemes {
			for _, cy := range cycles {
				for _, wu := range warmups {
					for _, tr := range trials {
						for _, sd := range seeds {
							p := base
							p.Scheme = sch
							p.Cycles, p.Warmup, p.Trials, p.Seed = cy, wu, tr, sd
							norm, err := p.NormalizedFor(exp)
							if err != nil {
								return nil, &sim.ConfigError{Field: "scheme", Reason: err.Error()}
							}
							pt := SweepPoint{Experiment: exp, Params: norm}
							if prev, dup := seen[pt]; dup {
								return nil, &sim.ConfigError{Field: "points", Reason: fmt.Sprintf(
									"points %d and %d normalize to the same config (%s scheme=%q seed=%d cycles=%g warmup=%d trials=%d)",
									prev, len(points), pt.Experiment, pt.Params.Scheme, pt.Params.Seed, pt.Params.Cycles, pt.Params.Warmup, pt.Params.Trials)}
							}
							seen[pt] = len(points)
							points = append(points, pt)
						}
					}
				}
			}
		}
	}
	return points, nil
}
