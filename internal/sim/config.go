// Package sim assembles the full system simulation: eight workload-driven
// cores (internal/cpu) over a shared LLC (internal/cache) over the
// multi-channel memory controller (internal/mem), with each resilience
// scheme's ECC-maintenance traffic modelled per §IV-C of the paper, and the
// experiment runners that regenerate every evaluation figure.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"eccparity/internal/dram"
	"eccparity/internal/ecc"
	"eccparity/internal/mem"
)

// SystemClass selects one of the two evaluated system sizes (§IV-B):
// systems equivalent in physical bandwidth and size to a dual-channel or a
// quad-channel commercial-ECC memory system.
type SystemClass int

// The two system classes.
const (
	DualEq SystemClass = iota
	QuadEq
)

// String names the class.
func (c SystemClass) String() string {
	if c == DualEq {
		return "dual-equivalent"
	}
	return "quad-equivalent"
}

// TrafficModel selects the ECC-maintenance traffic flows of a scheme.
type TrafficModel int

// Traffic models.
const (
	// TrafficInline: ECC bits live in the accessed rank; no extra requests
	// (commercial chipkill, RAIM).
	TrafficInline TrafficModel = iota
	// TrafficECCLine: tiered schemes storing correction bits in separate
	// memory lines, cached in the LLC; dirty-data evictions update the
	// covering ECC line (fetch on miss, write on eviction) — LOT-ECC,
	// Multi-ECC.
	TrafficECCLine
	// TrafficParity: the ECC Parity overlay; dirty-data evictions update
	// an XOR cacheline (no fetch on miss — it is an accumulator), whose
	// eviction costs a parity-line read plus write (§III-D / Fig. 7).
	TrafficParity
)

// SchemeConfig is one evaluated resilience configuration (a Table II row).
type SchemeConfig struct {
	Key     string
	Display string
	Base    ecc.Scheme
	Traffic TrafficModel
	// LinesPerECCLine is the data-line coverage of one cached ECC line for
	// TrafficECCLine schemes (4 for LOT-ECC5, 8 for LOT-ECC9, 16 for
	// Multi-ECC's compacted T2EC).
	LinesPerECCLine int
	// OnDieOverhead is the in-array check-bit fraction of schemes with a
	// per-chip on-die code; buildMemConfig scales the chips' dynamic
	// energies by it (dram.Chip.WithOnDieECC). Zero for rank-only schemes.
	OnDieOverhead float64
}

// Channels returns the logical channel count for a system class.
func (s SchemeConfig) Channels(class SystemClass) int {
	g := s.Base.Geometry()
	if class == DualEq {
		return g.ChannelsDualEq
	}
	return g.ChannelsQuadEq
}

// The shared immutable tier of the engine: scheme configurations (whose
// ecc.Scheme instances carry the precomputed GF/RS product tables),
// per-(scheme, class) controller-config prototypes, and address mappers
// (pow2 shift tables) are built once per process and shared read-only
// across every engine, so a sweep pays the table wiring once instead of
// per run. Everything reachable from these caches is treated as immutable
// after construction — engines copy before mutating (see the arena's
// speed-bin path).
var (
	schemesOnce   sync.Once
	schemesShared map[string]SchemeConfig

	memCfgMu     sync.Mutex
	memCfgShared = map[memCfgKey]mem.Config{}

	mapperMu     sync.Mutex
	mapperShared = map[mapperKey]*mem.AddressMapper{}
)

type memCfgKey struct {
	scheme string
	class  SystemClass
}

type mapperKey struct {
	channels, ranks, banks, line int
	rowFriendly                  bool
}

// schemes returns the process-wide scheme table. Callers must not mutate
// the map or anything reachable from it.
func schemes() map[string]SchemeConfig {
	schemesOnce.Do(func() { schemesShared = buildSchemes() })
	return schemesShared
}

// Schemes returns every evaluated configuration keyed as in the paper. The
// returned map is the caller's to modify; the ecc.Scheme instances inside
// are shared, immutable after construction, and safe for concurrent use.
func Schemes() map[string]SchemeConfig {
	shared := schemes()
	out := make(map[string]SchemeConfig, len(shared))
	for k, v := range shared {
		out[k] = v
	}
	return out
}

func buildSchemes() map[string]SchemeConfig {
	onDieSec := ecc.NewOnDieOnly(false)
	onDieCk := ecc.NewOnDie(ecc.NewChipkill36(), false)
	onDieRaim := ecc.NewOnDie(ecc.NewRAIMParity(), false)
	return map[string]SchemeConfig{
		"chipkill36": {
			Key: "chipkill36", Display: "36-device commercial chipkill",
			Base: ecc.NewChipkill36(), Traffic: TrafficInline,
		},
		"chipkill18": {
			Key: "chipkill18", Display: "18-device commercial chipkill",
			Base: ecc.NewChipkill18(), Traffic: TrafficInline,
		},
		"lotecc5": {
			Key: "lotecc5", Display: "LOT-ECC5",
			Base: ecc.NewLOTECC5(), Traffic: TrafficECCLine, LinesPerECCLine: 4,
		},
		"lotecc9": {
			Key: "lotecc9", Display: "LOT-ECC9",
			Base: ecc.NewLOTECC9(), Traffic: TrafficECCLine, LinesPerECCLine: 8,
		},
		"multiecc": {
			Key: "multiecc", Display: "Multi-ECC",
			Base: ecc.NewMultiECC(), Traffic: TrafficECCLine, LinesPerECCLine: 16,
		},
		"lotecc5+parity": {
			Key: "lotecc5+parity", Display: "LOT-ECC5 + ECC Parity",
			Base: ecc.NewLOTECC5(), Traffic: TrafficParity,
		},
		"raim": {
			Key: "raim", Display: "RAIM",
			Base: ecc.NewRAIM(), Traffic: TrafficInline,
		},
		"raim+parity": {
			Key: "raim+parity", Display: "RAIM + ECC Parity",
			Base: ecc.NewRAIMParity(), Traffic: TrafficParity,
		},
		"doublechipkill": {
			Key: "doublechipkill", Display: "Double chipkill",
			Base: ecc.NewDoubleChipkill(), Traffic: TrafficInline,
		},
		"lotecc5rs": {
			Key: "lotecc5rs", Display: "LOT-ECC5/RS",
			Base: ecc.NewLOTECC5RS(), Traffic: TrafficECCLine, LinesPerECCLine: 4,
		},
		"raim18": {
			// Standalone 18-device RAIM rank: the P/Q group parity lives in
			// dedicated ECC lines (32B per 64B data line -> one ECC line
			// covers two data lines) rather than the ECC Parity overlay.
			Key: "raim18", Display: "18-device RAIM",
			Base: ecc.NewRAIMParity(), Traffic: TrafficECCLine, LinesPerECCLine: 2,
		},
		"ondie-sec": {
			Key: "ondie-sec", Display: "On-die SEC (non-ECC rank)",
			Base: onDieSec, Traffic: TrafficInline,
			OnDieOverhead: onDieSec.OnDieOverhead(),
		},
		"ondie+chipkill": {
			Key: "ondie+chipkill", Display: "On-die SEC + chipkill",
			Base: onDieCk, Traffic: TrafficInline,
			OnDieOverhead: onDieCk.OnDieOverhead(),
		},
		"ondie+raim18": {
			Key: "ondie+raim18", Display: "On-die SEC + RAIM18 + ECC Parity",
			Base: onDieRaim, Traffic: TrafficParity,
			OnDieOverhead: onDieRaim.OnDieOverhead(),
		},
	}
}

// KnownScheme reports whether key names a registered evaluated
// configuration (parameterized variants resolve through SchemeVariant).
func KnownScheme(key string) bool {
	_, ok := schemes()[key]
	return ok
}

// SchemeKeys returns every evaluated configuration key in sorted order.
func SchemeKeys() []string {
	shared := schemes()
	keys := make([]string, 0, len(shared))
	for k := range shared {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Parameterized scheme variants: (registry key, canonical options) pairs
// interned once per process, so repeated experiment submissions with the
// same options share the constructed codec tables and the memConfig
// prototype cache stays coherent (each variant gets a distinct Key).
var (
	variantMu     sync.Mutex
	variantShared = map[variantKey]SchemeConfig{}
)

type variantKey struct {
	scheme, options string
}

// SchemeVariant resolves a scheme key plus canonical constructor options
// (ecc.CanonicalOptions form; "" means defaults) to an evaluated
// configuration. Defaults resolve to the shared registry entry; non-default
// options intern a variant whose Key carries the options string.
func SchemeVariant(key, options string) (SchemeConfig, error) {
	if options == "" {
		sc, ok := schemes()[key]
		if !ok {
			return SchemeConfig{}, &ConfigError{Field: "scheme", Reason: fmt.Sprintf("unknown scheme %q", key)}
		}
		return sc, nil
	}
	base, ok := schemes()[key]
	if !ok {
		return SchemeConfig{}, &ConfigError{Field: "scheme", Reason: fmt.Sprintf("unknown scheme %q", key)}
	}
	vk := variantKey{scheme: key, options: options}
	variantMu.Lock()
	defer variantMu.Unlock()
	if sc, ok := variantShared[vk]; ok {
		return sc, nil
	}
	s, err := ecc.Build(key, options)
	if err != nil {
		return SchemeConfig{}, &ConfigError{Field: "scheme_options", Reason: err.Error()}
	}
	sc := base
	sc.Key = key + "?" + options
	sc.Display = base.Display + " " + options
	sc.Base = s
	if od, ok := s.(interface{ OnDieOverhead() float64 }); ok {
		sc.OnDieOverhead = od.OnDieOverhead()
	}
	variantShared[vk] = sc
	return sc, nil
}

// SchemeByKey fetches a configuration; it panics on unknown keys (keys are
// compile-time constants throughout this repository, or variant keys
// already interned by SchemeVariant).
func SchemeByKey(key string) SchemeConfig {
	if s, ok := schemes()[key]; ok {
		return s
	}
	if s, ok := lookupVariant(key); ok {
		return s
	}
	panic(fmt.Sprintf("sim: unknown scheme %q", key))
}

// lookupVariant resolves a "key?options" variant key interned earlier by
// SchemeVariant.
func lookupVariant(key string) (SchemeConfig, bool) {
	i := strings.Index(key, "?")
	if i < 0 {
		return SchemeConfig{}, false
	}
	variantMu.Lock()
	defer variantMu.Unlock()
	sc, ok := variantShared[variantKey{scheme: key[:i], options: key[i+1:]}]
	return sc, ok
}

// memConfig returns the controller configuration of a scheme in a class
// from the shared prototype cache. The returned Config is a value copy,
// but its Chips slice is shared: callers that mutate Chips (the speed-bin
// path) must copy it first.
func memConfig(sc SchemeConfig, class SystemClass) mem.Config {
	key := memCfgKey{scheme: sc.Key, class: class}
	memCfgMu.Lock()
	defer memCfgMu.Unlock()
	if mc, ok := memCfgShared[key]; ok && sc.Key != "" {
		return mc
	}
	mc := buildMemConfig(sc, class)
	if sc.Key != "" {
		memCfgShared[key] = mc
	}
	return mc
}

// buildMemConfig constructs a controller configuration from scratch.
func buildMemConfig(sc SchemeConfig, class SystemClass) mem.Config {
	g := sc.Base.Geometry()
	chips := make([]dram.Chip, 0, g.ChipsPerRank())
	widest := dram.X4
	for _, cls := range g.Chips {
		for i := 0; i < cls.Count; i++ {
			chips = append(chips, dram.Chip2GbDDR3(dram.Width(cls.Width)).WithOnDieECC(sc.OnDieOverhead))
		}
		if dram.Width(cls.Width) > widest {
			widest = dram.Width(cls.Width)
		}
	}
	return mem.Config{
		Channels:           sc.Channels(class),
		RanksPerChannel:    g.RanksPerChannel,
		BanksPerRank:       mem.DefaultBanksPerRank,
		Chips:              chips,
		Timing:             dram.TimingForWidth(widest),
		PowerDownThreshold: mem.DefaultPowerDownThreshold,
		LineBytes:          g.LineSize,
	}
}

// mapperFor returns the shared address mapper for a geometry. Mappers are
// immutable after construction (Map is a pure read), so one instance
// serves any number of concurrent engines.
func mapperFor(channels, ranks, banks, line int, rowFriendly bool) *mem.AddressMapper {
	key := mapperKey{channels: channels, ranks: ranks, banks: banks, line: line, rowFriendly: rowFriendly}
	mapperMu.Lock()
	defer mapperMu.Unlock()
	if m, ok := mapperShared[key]; ok {
		return m
	}
	m := mem.NewAddressMapper(channels, ranks, banks, line)
	m.RowBufferFriendly = rowFriendly
	mapperShared[key] = m
	return m
}
