// Package sim assembles the full system simulation: eight workload-driven
// cores (internal/cpu) over a shared LLC (internal/cache) over the
// multi-channel memory controller (internal/mem), with each resilience
// scheme's ECC-maintenance traffic modelled per §IV-C of the paper, and the
// experiment runners that regenerate every evaluation figure.
package sim

import (
	"fmt"

	"eccparity/internal/dram"
	"eccparity/internal/ecc"
	"eccparity/internal/mem"
)

// SystemClass selects one of the two evaluated system sizes (§IV-B):
// systems equivalent in physical bandwidth and size to a dual-channel or a
// quad-channel commercial-ECC memory system.
type SystemClass int

// The two system classes.
const (
	DualEq SystemClass = iota
	QuadEq
)

// String names the class.
func (c SystemClass) String() string {
	if c == DualEq {
		return "dual-equivalent"
	}
	return "quad-equivalent"
}

// TrafficModel selects the ECC-maintenance traffic flows of a scheme.
type TrafficModel int

// Traffic models.
const (
	// TrafficInline: ECC bits live in the accessed rank; no extra requests
	// (commercial chipkill, RAIM).
	TrafficInline TrafficModel = iota
	// TrafficECCLine: tiered schemes storing correction bits in separate
	// memory lines, cached in the LLC; dirty-data evictions update the
	// covering ECC line (fetch on miss, write on eviction) — LOT-ECC,
	// Multi-ECC.
	TrafficECCLine
	// TrafficParity: the ECC Parity overlay; dirty-data evictions update
	// an XOR cacheline (no fetch on miss — it is an accumulator), whose
	// eviction costs a parity-line read plus write (§III-D / Fig. 7).
	TrafficParity
)

// SchemeConfig is one evaluated resilience configuration (a Table II row).
type SchemeConfig struct {
	Key     string
	Display string
	Base    ecc.Scheme
	Traffic TrafficModel
	// LinesPerECCLine is the data-line coverage of one cached ECC line for
	// TrafficECCLine schemes (4 for LOT-ECC5, 8 for LOT-ECC9, 16 for
	// Multi-ECC's compacted T2EC).
	LinesPerECCLine int
}

// Channels returns the logical channel count for a system class.
func (s SchemeConfig) Channels(class SystemClass) int {
	g := s.Base.Geometry()
	if class == DualEq {
		return g.ChannelsDualEq
	}
	return g.ChannelsQuadEq
}

// Schemes returns every evaluated configuration keyed as in the paper.
func Schemes() map[string]SchemeConfig {
	return map[string]SchemeConfig{
		"chipkill36": {
			Key: "chipkill36", Display: "36-device commercial chipkill",
			Base: ecc.NewChipkill36(), Traffic: TrafficInline,
		},
		"chipkill18": {
			Key: "chipkill18", Display: "18-device commercial chipkill",
			Base: ecc.NewChipkill18(), Traffic: TrafficInline,
		},
		"lotecc5": {
			Key: "lotecc5", Display: "LOT-ECC5",
			Base: ecc.NewLOTECC5(), Traffic: TrafficECCLine, LinesPerECCLine: 4,
		},
		"lotecc9": {
			Key: "lotecc9", Display: "LOT-ECC9",
			Base: ecc.NewLOTECC9(), Traffic: TrafficECCLine, LinesPerECCLine: 8,
		},
		"multiecc": {
			Key: "multiecc", Display: "Multi-ECC",
			Base: ecc.NewMultiECC(), Traffic: TrafficECCLine, LinesPerECCLine: 16,
		},
		"lotecc5+parity": {
			Key: "lotecc5+parity", Display: "LOT-ECC5 + ECC Parity",
			Base: ecc.NewLOTECC5(), Traffic: TrafficParity,
		},
		"raim": {
			Key: "raim", Display: "RAIM",
			Base: ecc.NewRAIM(), Traffic: TrafficInline,
		},
		"raim+parity": {
			Key: "raim+parity", Display: "RAIM + ECC Parity",
			Base: ecc.NewRAIMParity(), Traffic: TrafficParity,
		},
	}
}

// SchemeByKey fetches a configuration; it panics on unknown keys (keys are
// compile-time constants throughout this repository).
func SchemeByKey(key string) SchemeConfig {
	s, ok := Schemes()[key]
	if !ok {
		panic(fmt.Sprintf("sim: unknown scheme %q", key))
	}
	return s
}

// memConfig builds the controller configuration of a scheme in a class.
func memConfig(sc SchemeConfig, class SystemClass) mem.Config {
	g := sc.Base.Geometry()
	chips := make([]dram.Chip, 0, g.ChipsPerRank())
	widest := dram.X4
	for _, cls := range g.Chips {
		for i := 0; i < cls.Count; i++ {
			chips = append(chips, dram.Chip2GbDDR3(dram.Width(cls.Width)))
		}
		if dram.Width(cls.Width) > widest {
			widest = dram.Width(cls.Width)
		}
	}
	return mem.Config{
		Channels:           sc.Channels(class),
		RanksPerChannel:    g.RanksPerChannel,
		BanksPerRank:       mem.DefaultBanksPerRank,
		Chips:              chips,
		Timing:             dram.TimingForWidth(widest),
		PowerDownThreshold: mem.DefaultPowerDownThreshold,
		LineBytes:          g.LineSize,
	}
}
