package sim

// addrTable maps in-flight prefetch line addresses to fill-completion
// times. It replaces a map[uint64]float64 on the hot path with an
// open-addressed, linear-probed table: keys are line-aligned byte
// addresses (multiples of the cache line, never 0), so 0 can mark an
// empty slot, and deletion uses backward-shift compaction instead of
// tombstones. Steady-state get/put/take never allocate; the table only
// grows (load factor ≤ ½) as the working footprint does.
type addrTable struct {
	keys  []uint64
	vals  []float64
	live  int
	mask  uint64
	shift uint
}

const addrTableInitial = 1024 // slots; must be a power of two

func newAddrTable() *addrTable {
	t := &addrTable{}
	t.init(addrTableInitial)
	return t
}

// reset returns the table to the exact post-newAddrTable state. A grown
// table is shrunk back to the initial capacity on purpose: pruneBelow's
// leftover-stale-entry behaviour depends on the capacity at prune time, so
// a reused table must retrace a fresh table's growth trajectory for a
// rerun to stay bit-identical.
func (t *addrTable) reset() {
	if len(t.keys) != addrTableInitial {
		t.init(addrTableInitial)
	} else {
		clear(t.keys)
		clear(t.vals)
	}
	t.live = 0
}

func (t *addrTable) init(size int) {
	t.keys = make([]uint64, size)
	t.vals = make([]float64, size)
	t.mask = uint64(size - 1)
	t.shift = 64
	for s := size; s > 1; s >>= 1 {
		t.shift--
	}
}

// home is the preferred slot for key k (Fibonacci hashing: line addresses
// share low zero bits, so the multiply spreads the high entropy down).
func (t *addrTable) home(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> t.shift
}

func (t *addrTable) len() int { return t.live }

// put inserts or updates k → v.
func (t *addrTable) put(k uint64, v float64) {
	i := t.home(k)
	for {
		switch t.keys[i] {
		case k:
			t.vals[i] = v
			return
		case 0:
			t.keys[i] = k
			t.vals[i] = v
			t.live++
			if 2*t.live >= len(t.keys) {
				t.grow()
			}
			return
		}
		i = (i + 1) & t.mask
	}
}

// take returns k's value and deletes it, if present.
func (t *addrTable) take(k uint64) (float64, bool) {
	i := t.home(k)
	for {
		switch t.keys[i] {
		case k:
			v := t.vals[i]
			t.deleteSlot(i)
			return v, true
		case 0:
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// deleteSlot empties slot i and backward-shifts the rest of its probe
// cluster so every remaining key stays reachable from its home slot
// (Knuth's linear-probing deletion; no tombstones to compact later).
func (t *addrTable) deleteSlot(i uint64) {
	t.live--
	for {
		t.keys[i] = 0
		j := i
		for {
			j = (j + 1) & t.mask
			if t.keys[j] == 0 {
				return
			}
			h := t.home(t.keys[j])
			// Entry j may move into the hole at i unless its home lies
			// cyclically inside (i, j] — then probing still reaches it.
			if i <= j {
				if h <= i || h > j {
					break
				}
			} else if h <= i && h > j {
				break
			}
		}
		t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
		i = j
	}
}

// pruneBelow deletes every entry whose value is ≤ cutoff. Backward shifts
// can slide a wrapped cluster's entries behind the cursor, leaving an
// occasional stale entry for the next prune — the caller uses this purely
// to bound the table, so that is fine.
func (t *addrTable) pruneBelow(cutoff float64) {
	for i := uint64(0); i < uint64(len(t.keys)); {
		if t.keys[i] != 0 && t.vals[i] <= cutoff {
			t.deleteSlot(i) // may pull a new candidate into slot i
		} else {
			i++
		}
	}
}

// grow doubles the table.
func (t *addrTable) grow() {
	oldK, oldV := t.keys, t.vals
	t.init(2 * len(oldK))
	t.live = 0
	for i, k := range oldK {
		if k != 0 {
			t.put(k, oldV[i])
		}
	}
}
