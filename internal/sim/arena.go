package sim

import (
	"context"
	"fmt"
	"sync"

	"eccparity/internal/cache"
	"eccparity/internal/cpu"
	"eccparity/internal/dram"
	"eccparity/internal/ecc"
	"eccparity/internal/mem"
	"eccparity/internal/workload"
)

// Arena owns the pooled mutable tier of one simulation engine: the memory
// controller (bank/bus rings, rank activity windows), the LLC array, the
// core models, live workload generators, the in-flight prefetch table, and
// the measure loop's heap scratch. Running a point through an Arena resets
// these structures in place instead of reallocating them, so a sweep of N
// points pays the engine's allocation cost once per worker rather than
// once per point. The immutable tier — scheme tables, controller-config
// prototypes, address mappers — is process-wide and shared by every Arena
// (see config.go).
//
// Reuse never changes results: every reset restores the exact
// post-construction state a fresh engine would start from (the in-flight
// table even shrinks back to its initial capacity, because its pruning
// behaviour is capacity-dependent), so a run through a used Arena is
// byte-identical to a run through a fresh one. The cross-scheme
// interleaving test in arena_test.go and the golden CLI test pin this.
//
// An Arena is not safe for concurrent use; give each worker its own.
type Arena struct {
	e engine
	// genPool keeps the concrete live-workload generators across points so
	// a new point reseeds them instead of reallocating generator + RNG.
	genPool []*workload.Generator
	// ready marks that e holds components from a previous prepare (the
	// zero Arena must not try to reset nil structures).
	ready bool
}

// NewArena returns an empty Arena; the first run populates it.
func NewArena() *Arena { return &Arena{} }

// RunContext executes one simulation point exactly like the package-level
// RunContext — same determinism, same cancellation checkpoints — reusing
// the Arena's pooled engine state.
func (a *Arena) RunContext(ctx context.Context, cfg Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e := a.prepare(cfg)
	if err := e.warmup(ctx); err != nil {
		return Result{}, err
	}
	if err := e.measure(ctx); err != nil {
		return Result{}, err
	}
	return e.collect(), nil
}

// prepare configures the arena's engine for one run, reusing every
// component whose shape still matches and rebuilding the ones that don't.
func (a *Arena) prepare(cfg Config) *engine {
	if cfg.Sources != nil && len(cfg.Sources) != cfg.Cores {
		panic(fmt.Sprintf("sim: %d sources for %d cores", len(cfg.Sources), cfg.Cores))
	}
	mc := memConfig(cfg.Scheme, cfg.Class)
	if cfg.PowerDownThreshold > 0 {
		mc.PowerDownThreshold = cfg.PowerDownThreshold
	}
	if cfg.SpeedBinFactor > 0 && cfg.SpeedBinFactor != 1 {
		// mc.Chips aliases the shared prototype: copy before rebinning.
		chips := append([]dram.Chip(nil), mc.Chips...)
		for i := range chips {
			chips[i], mc.Timing = dram.SpeedBin(chips[i], dram.DDR3Timing1GHz(), cfg.SpeedBinFactor)
		}
		mc.Chips = chips
	}
	mc.OpenPage = cfg.OpenPage
	g := cfg.Scheme.Base.Geometry()

	e := &a.e
	prev := e.cfg
	reuse := a.ready
	a.ready = true

	e.cfg = cfg
	e.mapper = mapperFor(mc.Channels, mc.RanksPerChannel, mc.BanksPerRank, g.LineSize, cfg.OpenPage)
	e.channels = mc.Channels
	e.r = ecc.R(cfg.Scheme.Base)
	e.line = g.LineSize
	e.warm = false

	if reuse {
		e.ctrl.Reset(mc)
	} else {
		e.ctrl = mem.NewController(mc)
	}

	sameLLC := reuse && prev.LLCBytes == cfg.LLCBytes && prev.LLCWays == cfg.LLCWays &&
		prev.Scheme.Base.Geometry().LineSize == g.LineSize
	if sameLLC {
		e.llc.Reset()
	} else {
		e.llc = cache.New(cfg.LLCBytes, cfg.LLCWays, g.LineSize)
	}

	if reuse && len(e.cores) == cfg.Cores {
		for _, c := range e.cores {
			c.Reset(cpu.DefaultParams())
		}
	} else {
		e.cores = make([]*cpu.Core, cfg.Cores)
		for i := range e.cores {
			e.cores[i] = cpu.New(cpu.DefaultParams())
		}
	}

	if len(e.gens) != cfg.Cores {
		e.gens = make([]workload.Source, cfg.Cores)
	}
	if cfg.Sources != nil {
		copy(e.gens, cfg.Sources)
	} else {
		for len(a.genPool) < cfg.Cores {
			a.genPool = append(a.genPool, nil)
		}
		for i := 0; i < cfg.Cores; i++ {
			if a.genPool[i] == nil {
				a.genPool[i] = workload.NewGenerator(cfg.Workload, i, cfg.Seed)
			} else {
				a.genPool[i].Reset(cfg.Workload, i, cfg.Seed)
			}
			e.gens[i] = a.genPool[i]
		}
	}

	if len(e.lastMiss) == cfg.Cores {
		clear(e.lastMiss)
	} else {
		e.lastMiss = make([]uint64, cfg.Cores)
	}

	if e.inflight == nil {
		e.inflight = newAddrTable()
	} else {
		e.inflight.reset()
	}

	if e.vq == nil {
		e.vq = make([]cache.Evicted, 0, 16)
	} else {
		e.vq = e.vq[:0]
	}

	banks := mc.RanksPerChannel * mc.BanksPerRank
	if len(e.marked) == mc.Channels && (mc.Channels == 0 || len(e.marked[0]) == banks) {
		for ch := range e.marked {
			clear(e.marked[ch])
		}
	} else {
		e.marked = make([][]bool, mc.Channels)
		for ch := range e.marked {
			e.marked[ch] = make([]bool, banks)
		}
	}
	total := mc.Channels * banks
	quota := int(cfg.MarkedBankFraction*float64(total) + 0.5)
	// Round up to whole pairs.
	quota = (quota + 1) &^ 1
	for i := 0; i < quota; i++ {
		ch := i % mc.Channels
		idx := (i / mc.Channels) % banks
		e.marked[ch][idx] = true
	}
	return e
}

// arenaPool backs the package-level Run/RunContext entry points, so even
// callers that never touch the Arena API (the grid runners' worker cells,
// single-job daemon computes) reuse engine state across runs on the same
// goroutine-processor.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}
