package sim

import (
	"bytes"
	"math"
	"testing"

	"eccparity/internal/workload"
)

// fastCfg shrinks a run for test speed while keeping statistics meaningful.
func fastCfg(scheme string, class SystemClass, wl string) Config {
	cfg := DefaultConfig(scheme, class, wl)
	cfg.WarmupAccesses = 20000
	cfg.MeasureCycles = 150000
	return cfg
}

func TestRunDeterministic(t *testing.T) {
	a := Run(fastCfg("lotecc5+parity", QuadEq, "mcf"))
	b := Run(fastCfg("lotecc5+parity", QuadEq, "mcf"))
	if a.EPI != b.EPI || a.IPC != b.IPC || a.AccessesPerInstr != b.AccessesPerInstr {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunProducesActivity(t *testing.T) {
	r := Run(fastCfg("chipkill36", QuadEq, "lbm"))
	if r.Instructions == 0 || r.IPC <= 0 || r.EPI <= 0 {
		t.Fatalf("dead simulation: %+v", r)
	}
	if r.Mem.TotalReads() == 0 || r.Mem.TotalWrites() == 0 {
		t.Fatal("no memory traffic")
	}
	if r.Cache.Misses[0] == 0 {
		t.Fatal("no cache misses")
	}
}

// TestHeadlineEPIOrdering checks the paper's central result on a
// memory-intensive workload: LOT-ECC5+ECC Parity reduces memory EPI by a
// large factor vs 36-device commercial chipkill, a substantial factor vs
// the other baselines, and is nearly identical to LOT-ECC5 itself.
func TestHeadlineEPIOrdering(t *testing.T) {
	results := map[string]Result{}
	for _, key := range []string{"chipkill36", "chipkill18", "lotecc9", "multiecc", "lotecc5", "lotecc5+parity"} {
		results[key] = Run(fastCfg(key, QuadEq, "mcf"))
	}
	p := results["lotecc5+parity"].EPI
	if red := 100 * (results["chipkill36"].EPI - p) / results["chipkill36"].EPI; red < 40 {
		t.Errorf("EPI reduction vs chipkill36 = %.1f%%, want large (paper: ~59%%)", red)
	}
	if red := 100 * (results["chipkill18"].EPI - p) / results["chipkill18"].EPI; red < 10 {
		t.Errorf("EPI reduction vs chipkill18 = %.1f%%, want substantial (paper: ~49%%)", red)
	}
	if red := 100 * (results["lotecc9"].EPI - p) / results["lotecc9"].EPI; red < 5 {
		t.Errorf("EPI reduction vs lotecc9 = %.1f%%, want positive (paper: ~23%%)", red)
	}
	if red := 100 * (results["multiecc"].EPI - p) / results["multiecc"].EPI; red < 5 {
		t.Errorf("EPI reduction vs multiecc = %.1f%%, want positive (paper: ~21%%)", red)
	}
	_ = results["lotecc5"]
}

// TestParityMatchesLOTECC5Energy: the overlay's EPI is essentially
// LOT-ECC5's (its advantage is capacity, §V-A). Full-scale runs are needed
// for the ECC/XOR-cacheline steady state to settle.
func TestParityMatchesLOTECC5Energy(t *testing.T) {
	lot := Run(DefaultConfig("lotecc5", QuadEq, "mcf"))
	p := Run(DefaultConfig("lotecc5+parity", QuadEq, "mcf"))
	if diff := math.Abs(lot.EPI-p.EPI) / lot.EPI; diff > 0.06 {
		t.Errorf("EPI vs lotecc5 differs %.1f%%, want ≈0 (the overlay only saves capacity)", 100*diff)
	}
}

func TestRAIMParityEPI(t *testing.T) {
	raim := Run(fastCfg("raim", QuadEq, "lbm"))
	rp := Run(fastCfg("raim+parity", QuadEq, "lbm"))
	red := 100 * (raim.EPI - rp.EPI) / raim.EPI
	if red < 10 {
		t.Errorf("RAIM+Parity EPI reduction %.1f%%, want substantial (paper: ~21%%)", red)
	}
}

// TestBin2SavingsExceedBin1: the access-rate dependence of the savings.
func TestBin2SavingsExceedBin1(t *testing.T) {
	red := func(wl string) float64 {
		base := Run(fastCfg("chipkill36", QuadEq, wl))
		p := Run(fastCfg("lotecc5+parity", QuadEq, wl))
		return 100 * (base.EPI - p.EPI) / base.EPI
	}
	bin2 := red("lbm")   // memory intensive
	bin1 := red("gobmk") // light
	if bin2 <= bin1 {
		t.Errorf("Bin2 savings (%.1f%%) must exceed Bin1 (%.1f%%)", bin2, bin1)
	}
}

// TestDynamicSavingsComeFromFewerChips: dynamic EPI of LOT5+Parity must be
// far below the 18-device baseline's (5 chips vs 18 per access).
func TestDynamicSavingsComeFromFewerChips(t *testing.T) {
	ck := Run(fastCfg("chipkill18", QuadEq, "mcf"))
	p := Run(fastCfg("lotecc5+parity", QuadEq, "mcf"))
	if p.DynamicEPI > 0.7*ck.DynamicEPI {
		t.Errorf("dynamic EPI %.0f vs %.0f: expected ≥30%% reduction", p.DynamicEPI, ck.DynamicEPI)
	}
}

// TestAccessOverheadVsChipkill18: Fig. 16's +13.3% average — the parity
// updates cost extra accesses vs a scheme with in-rank ECC. Random-access
// workloads sit above the average, sequential ones below.
func TestAccessOverheadVsChipkill18(t *testing.T) {
	ckRand := Run(fastCfg("chipkill18", QuadEq, "mcf"))
	pRand := Run(fastCfg("lotecc5+parity", QuadEq, "mcf"))
	if pRand.AccessesPerInstr <= ckRand.AccessesPerInstr {
		t.Error("parity updates must cost extra accesses on random workloads")
	}
	ckSeq := Run(fastCfg("chipkill18", QuadEq, "streamcluster"))
	pSeq := Run(fastCfg("lotecc5+parity", QuadEq, "streamcluster"))
	overheadSeq := pSeq.AccessesPerInstr / ckSeq.AccessesPerInstr
	overheadRand := pRand.AccessesPerInstr / ckRand.AccessesPerInstr
	if overheadSeq >= overheadRand {
		t.Errorf("sequential XOR-cacheline reuse must cut the overhead: seq %.2f rand %.2f",
			overheadSeq, overheadRand)
	}
}

// TestLargeLineSpatialLocality: Fig. 14's streamcluster effect — the 128B
// baselines never lose on highly sequential workloads (they win outright
// when bandwidth is the bottleneck; at lower pressure both ride the
// compute ceiling), and LOT5+Parity moves fewer 64B-equivalent accesses
// than chipkill36 on random ones (Fig. 16's 20% average).
func TestLargeLineSpatialLocality(t *testing.T) {
	ck36 := Run(DefaultConfig("chipkill36", QuadEq, "streamcluster"))
	p := Run(DefaultConfig("lotecc5+parity", QuadEq, "streamcluster"))
	if p.IPC > ck36.IPC*1.03 {
		t.Errorf("parity must not meaningfully beat 128B lines on streamcluster: ck36 %.2f vs parity %.2f", ck36.IPC, p.IPC)
	}
	ck36r := Run(fastCfg("chipkill36", QuadEq, "mcf"))
	pr := Run(fastCfg("lotecc5+parity", QuadEq, "mcf"))
	if pr.AccessesPerInstr >= ck36r.AccessesPerInstr {
		t.Error("64B lines must move less data on random-access workloads")
	}
}

// TestDualEqOverheadHigher: Figs. 16–17 — fewer channels per parity group
// means fewer lines per XOR cacheline and a higher miss rate, so the
// dual-equivalent system pays more traffic overhead than the quad.
func TestDualEqOverheadHigher(t *testing.T) {
	ratio := func(class SystemClass) float64 {
		ck := Run(fastCfg("chipkill18", class, "omnetpp"))
		p := Run(fastCfg("lotecc5+parity", class, "omnetpp"))
		return p.AccessesPerInstr / ck.AccessesPerInstr
	}
	dual, quad := ratio(DualEq), ratio(QuadEq)
	if dual < quad*0.98 {
		t.Errorf("dual-equivalent overhead (%.3f) should not be below quad (%.3f)", dual, quad)
	}
}

// TestMarkedBanksCostTraffic: the steady-state Step B/D flows — reads to
// faulty banks fetch ECC lines.
func TestMarkedBanksCostTraffic(t *testing.T) {
	clean := fastCfg("lotecc5+parity", QuadEq, "mcf")
	faulty := clean
	faulty.MarkedBankFraction = 0.5
	rc := Run(clean)
	rf := Run(faulty)
	if rf.Mem.Reads[1] <= rc.Mem.Reads[1] {
		t.Errorf("marked banks must add ECC reads: %d vs %d", rf.Mem.Reads[1], rc.Mem.Reads[1])
	}
	if rf.AccessesPerInstr <= rc.AccessesPerInstr {
		t.Error("marked banks must raise traffic")
	}
}

func TestBaselineSchemesHaveNoECCTraffic(t *testing.T) {
	r := Run(fastCfg("chipkill36", QuadEq, "lbm"))
	if r.Mem.Reads[1] != 0 || r.Mem.Writes[1] != 0 {
		t.Fatalf("inline-ECC scheme generated ECC traffic: %+v", r.Mem)
	}
	p := Run(fastCfg("lotecc5+parity", QuadEq, "lbm"))
	if p.Mem.Reads[1] == 0 || p.Mem.Writes[1] == 0 {
		t.Fatal("parity scheme must generate parity-line read+write traffic")
	}
}

func TestFig9Characterization(t *testing.T) {
	rows := Fig9Bandwidth(WithCycles(100000), WithWarmup(8000))
	if len(rows) != 16 {
		t.Fatalf("%d rows, want 16", len(rows))
	}
	util := map[string]float64{}
	for _, r := range rows {
		if r.Utilization < 0 || r.Utilization > 1 {
			t.Fatalf("utilization out of range: %+v", r)
		}
		util[r.Workload] = r.Utilization
	}
	if util["lbm"] <= util["sjeng"] {
		t.Errorf("lbm (%.3f) must use more bandwidth than sjeng (%.3f)", util["lbm"], util["sjeng"])
	}
}

func TestComparisonBins(t *testing.T) {
	ev := NewEvaluation(QuadEq,
		[]string{"chipkill36", "lotecc5+parity"},
		[]string{"lbm", "sjeng"},
		WithCycles(100000), WithWarmup(8000))
	cmp := ev.compare("lotecc5+parity", []string{"chipkill36"}, MetricEPI, true)
	if len(cmp.Rows) != 2 {
		t.Fatalf("rows %d", len(cmp.Rows))
	}
	if cmp.Bin2Mean["chipkill36"] <= cmp.Bin1Mean["chipkill36"] {
		t.Errorf("Bin2 mean (%.1f) must exceed Bin1 (%.1f)",
			cmp.Bin2Mean["chipkill36"], cmp.Bin1Mean["chipkill36"])
	}
	if cmp.Mean["chipkill36"] <= 0 {
		t.Error("mean reduction must be positive")
	}
}

func TestFig1Rows(t *testing.T) {
	rows := Fig1CapacityBreakdown()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Correction < r.Detection {
			t.Errorf("%s: correction bits must dominate the overhead (Fig. 1)", r.Scheme)
		}
	}
}

func TestTable3StaticValues(t *testing.T) {
	rows := Table3Capacity(200, 5, 0)
	want := map[string]float64{
		"36-device commercial chipkill correct": 0.125,
		"LOT-ECC5":                              0.406,
		"8 chan LOT-ECC5 + ECC Parity":          0.165,
		"4 chan LOT-ECC5 + ECC Parity":          0.219,
		"RAIM":                                  0.406,
		"10 chan RAIM + ECC Parity":             0.188,
		"5 chan RAIM + ECC Parity":              0.266,
	}
	seen := 0
	for _, r := range rows {
		if w, ok := want[r.Config]; ok {
			seen++
			if math.Abs(r.Overhead-w) > 0.002 {
				t.Errorf("%s: overhead %.4f, want %.3f", r.Config, r.Overhead, w)
			}
		}
		if r.EOL != 0 && (r.EOL < r.Overhead || r.EOL > r.Overhead+0.02) {
			t.Errorf("%s: EOL %.4f implausible vs static %.4f", r.Config, r.EOL, r.Overhead)
		}
	}
	if seen != len(want) {
		t.Fatalf("matched %d of %d expected rows", seen, len(want))
	}
}

func TestFig2Shape(t *testing.T) {
	rows := Fig2ChannelFaultGaps()
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanDays >= rows[i-1].MeanDays {
			t.Fatal("mean gap must shrink as FIT grows")
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows := Fig8EOLFractions(400, 7, 0)
	for _, r := range rows {
		if r.Mean <= 0 || r.Mean > 0.05 {
			t.Errorf("channels=%d: mean fraction %.4f out of plausible range", r.Channels, r.Mean)
		}
		if r.P999 < r.Mean {
			t.Errorf("channels=%d: p99.9 below mean", r.Channels)
		}
	}
}

func TestFig18PaperPoint(t *testing.T) {
	rows := Fig18ScrubWindows()
	var found bool
	for _, r := range rows {
		if r.FITPerChip == 100 && r.WindowHours == 8 {
			found = true
			if r.Probability < 1e-4 || r.Probability > 3e-4 {
				t.Errorf("8h/100FIT probability %.6f, paper says ≈0.0002", r.Probability)
			}
		}
	}
	if !found {
		t.Fatal("missing the paper's reference point")
	}
}

// TestEvaluationWorkerCountInvariance is the determinism regression test
// for the simulation grid: the (scheme × workload) matrix must be
// bit-identical whether cells run serially or spread over many goroutines.
func TestEvaluationWorkerCountInvariance(t *testing.T) {
	run := func(workers int) *Evaluation {
		return NewEvaluation(QuadEq,
			[]string{"chipkill18", "lotecc5+parity"},
			[]string{"mcf", "lbm"},
			WithCycles(60000), WithWarmup(5000), WithWorkers(workers))
	}
	serial, wide := run(1), run(8)
	for scheme, m := range serial.Results {
		for wl, a := range m {
			b := wide.Results[scheme][wl]
			if a.EPI != b.EPI || a.IPC != b.IPC || a.AccessesPerInstr != b.AccessesPerInstr ||
				a.Mem != b.Mem || a.Cache != b.Cache {
				t.Fatalf("%s/%s diverged across worker counts:\nworkers=1: %+v\nworkers=8: %+v",
					scheme, wl, a, b)
			}
		}
	}
}

// TestFig9WorkerCountInvariance: the per-workload characterization keeps
// spec order and identical numbers at any worker count.
func TestFig9WorkerCountInvariance(t *testing.T) {
	opts := func(w int) []Option {
		return []Option{WithCycles(40000), WithWarmup(4000), WithWorkers(w)}
	}
	serial := Fig9Bandwidth(opts(1)...)
	wide := Fig9Bandwidth(opts(8)...)
	if len(serial) != len(wide) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(wide))
	}
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("row %d diverged: %+v vs %+v", i, serial[i], wide[i])
		}
	}
}

func TestWithSeedChangesWorkloadStream(t *testing.T) {
	base := fastCfg("chipkill18", QuadEq, "mcf")
	WithSeed(2)(&base)
	if base.Seed != 2 {
		t.Fatalf("WithSeed not applied: %d", base.Seed)
	}
	a := Run(base)
	b := Run(fastCfg("chipkill18", QuadEq, "mcf")) // seed 1
	if a.Instructions == b.Instructions && a.EPI == b.EPI {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestSchemeRegistryComplete(t *testing.T) {
	keys := []string{"chipkill36", "chipkill18", "lotecc5", "lotecc9", "multiecc", "lotecc5+parity", "raim", "raim+parity"}
	for _, k := range keys {
		sc := SchemeByKey(k)
		if sc.Base == nil {
			t.Fatalf("%s has no base scheme", k)
		}
		if sc.Channels(DualEq) <= 0 || sc.Channels(QuadEq) <= sc.Channels(DualEq)-1 {
			t.Fatalf("%s has bad channel config", k)
		}
	}
}

func TestUnknownSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	SchemeByKey("nope")
}

// TestDisableECCCachingCostsTraffic: the Fig. 7 optimizations are worth
// real bandwidth — switching them off must raise accesses per instruction.
func TestDisableECCCachingCostsTraffic(t *testing.T) {
	on := fastCfg("lotecc5+parity", QuadEq, "lbm")
	off := on
	off.DisableECCCaching = true
	rOn, rOff := Run(on), Run(off)
	if rOff.AccessesPerInstr <= rOn.AccessesPerInstr {
		t.Errorf("uncached ECC updates must cost traffic: on=%.4f off=%.4f",
			rOn.AccessesPerInstr, rOff.AccessesPerInstr)
	}
	base := fastCfg("lotecc5", QuadEq, "lbm")
	baseOff := base
	baseOff.DisableECCCaching = true
	bOn, bOff := Run(base), Run(baseOff)
	if bOff.AccessesPerInstr <= bOn.AccessesPerInstr {
		t.Error("uncached GEC updates must cost traffic for baseline LOT-ECC too")
	}
}

// TestScrubTraffic: the scrubber's reads show up in their own class and in
// the energy, at a rate set by the interval.
func TestScrubTraffic(t *testing.T) {
	cfg := fastCfg("lotecc5+parity", QuadEq, "gobmk")
	cfg.ScrubLineInterval = 100
	r := Run(cfg)
	if r.Mem.Reads[2] == 0 {
		t.Fatal("no scrub reads recorded")
	}
	want := uint64(cfg.MeasureCycles / cfg.ScrubLineInterval)
	if r.Mem.Reads[2] > want || r.Mem.Reads[2] < want/2 {
		t.Errorf("scrub reads %d, want ≈%d", r.Mem.Reads[2], want)
	}
	cfg2 := cfg
	cfg2.ScrubLineInterval = 1000
	r2 := Run(cfg2)
	if r2.Mem.Reads[2] >= r.Mem.Reads[2] {
		t.Error("longer interval must mean fewer scrub reads")
	}
}

// TestMixedRankAnalysis: §VI-A — hot pages in wide-DRAM ranks capture most
// of the energy advantage while narrow ranks keep capacity high, and the
// Parity overlay makes the shared high-strength ECC affordable.
func TestMixedRankAnalysis(t *testing.T) {
	res := MixedRankAnalysis(MixedRankConfig{WideRanks: 2, NarrowRanks: 2, HotFraction: 0.9, Channels: 8})
	if res.WideAccess >= res.NarrowAccess {
		t.Fatalf("5-chip rank access (%.0f pJ) must be cheaper than 18-chip (%.0f pJ)",
			res.WideAccess, res.NarrowAccess)
	}
	// 90% hot placement must capture most of the all-wide saving.
	allWide := res.WideAccess / res.NarrowAccess
	if res.BlendedVsAllNarrow > allWide+0.15 {
		t.Fatalf("90%% hot placement ratio %.2f too far from all-wide %.2f",
			res.BlendedVsAllNarrow, allWide)
	}
	// Half the slots narrow keeps well over half the all-narrow capacity.
	if res.RelativeCapacity < 0.6 {
		t.Fatalf("relative capacity %.2f", res.RelativeCapacity)
	}
	if res.OverheadWithParity >= res.OverheadWithoutParity {
		t.Fatal("the overlay must cut the shared ECC's capacity overhead")
	}
}

func TestMixedRankSweepMonotone(t *testing.T) {
	rows := MixedRankSweep()
	for i := 1; i < len(rows); i++ {
		if rows[i].Blended > rows[i-1].Blended {
			t.Fatal("energy must fall as hot placement improves")
		}
	}
	if rows[0].BlendedVsAllNarrow != 1 {
		t.Fatalf("h=0 must match all-narrow, got %v", rows[0].BlendedVsAllNarrow)
	}
}

// TestTraceDrivenRunMatchesLive: recording a workload and replaying the
// trace must produce bit-identical simulation results.
func TestTraceDrivenRunMatchesLive(t *testing.T) {
	cfg := fastCfg("lotecc5+parity", QuadEq, "milc")
	live := Run(cfg)

	srcs := make([]workload.Source, cfg.Cores)
	// Enough accesses for warmup plus measurement (the trace loops if it
	// runs short, which would diverge, so record generously).
	perCore := cfg.WarmupAccesses + 40000
	for i := 0; i < cfg.Cores; i++ {
		var buf bytes.Buffer
		g := workload.NewGenerator(cfg.Workload, i, cfg.Seed)
		if err := workload.WriteTrace(&buf, g, perCore); err != nil {
			t.Fatal(err)
		}
		tr, err := workload.ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = tr
	}
	cfg.Sources = srcs
	replayed := Run(cfg)
	if live.EPI != replayed.EPI || live.IPC != replayed.IPC ||
		live.AccessesPerInstr != replayed.AccessesPerInstr {
		t.Fatalf("trace replay diverged: live %+v vs replay %+v", live, replayed)
	}
}

func TestSourcesLengthValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Sources length must panic")
		}
	}()
	cfg := fastCfg("chipkill18", QuadEq, "sjeng")
	cfg.Sources = make([]workload.Source, 3)
	Run(cfg)
}

// TestOpenPagePolicy: the row-policy ablation — open-page earns row hits
// (cutting activate energy) on sequential workloads, while close-page
// keeps background energy lower via rank sleep; the paper's configuration
// choice (§IV-B) is the background side of this trade.
func TestOpenPagePolicy(t *testing.T) {
	cfg := fastCfg("lotecc5+parity", QuadEq, "streamcluster")
	closed := Run(cfg)
	cfg.OpenPage = true
	open := Run(cfg)
	if open.Mem.RowHits == 0 {
		t.Fatal("open-page on a sequential workload must earn row hits")
	}
	if closed.Mem.RowHits != 0 {
		t.Fatal("close-page must not register row hits")
	}
	// Row hits save activates: per-access dynamic energy must drop.
	dynPerAccOpen := open.Mem.DynamicEnergy() / float64(open.Mem.TotalReads()+open.Mem.TotalWrites())
	dynPerAccClosed := closed.Mem.DynamicEnergy() / float64(closed.Mem.TotalReads()+closed.Mem.TotalWrites())
	if dynPerAccOpen >= dynPerAccClosed {
		t.Fatalf("open-page row hits must cut dynamic energy per access: open %.0f closed %.0f",
			dynPerAccOpen, dynPerAccClosed)
	}
}

func BenchmarkSimulationCell(b *testing.B) {
	// One (scheme, workload) matrix cell at test scale — the unit of work
	// behind Figs. 9–17.
	for i := 0; i < b.N; i++ {
		Run(fastCfg("lotecc5+parity", QuadEq, "milc"))
	}
}
