package sim

import (
	"context"
	"io"
	"sort"

	"eccparity/internal/core"
	"eccparity/internal/ecc"
	"eccparity/internal/faultmodel"
	"eccparity/internal/parallel"
	"eccparity/internal/stats"
	"eccparity/internal/workload"
)

// This file contains the experiment runners, one per table/figure of the
// paper's evaluation (see DESIGN.md §4 for the index).

// ParityScheme and RAIMParityScheme are the two ECC-Parity configurations;
// Baselines lists what each is compared against in Figs. 10–17.
var (
	ParityBaselines = []string{"chipkill36", "chipkill18", "lotecc9", "multiecc", "lotecc5"}
	RAIMBaselines   = []string{"raim"}
)

// Option tweaks an Evaluation (tests shrink the runs).
type Option func(*Config)

// WithCycles overrides the measured window.
func WithCycles(cycles float64) Option {
	return func(c *Config) { c.MeasureCycles = cycles }
}

// WithWarmup overrides the per-core warmup accesses.
func WithWarmup(n int) Option {
	return func(c *Config) { c.WarmupAccesses = n }
}

// WithSeed overrides the per-cell workload seed. Same seed ⇒ same numbers,
// at any worker count.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithWorkers bounds the worker pool of the grid runners (≤0 = NumCPU).
// Purely a throughput knob: results do not depend on it.
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithProgress directs the grid runners' done/total ticker to w.
func WithProgress(w io.Writer) Option {
	return func(c *Config) { c.ProgressW = w }
}

// Evaluation holds the full (scheme × workload) result matrix for one
// system class, from which Figs. 9–17 all derive.
type Evaluation struct {
	Class   SystemClass
	Results map[string]map[string]Result // scheme key → workload → result
}

// NewEvaluation runs the matrix for the given schemes and workloads; nil
// slices mean "all". It is the uninterruptible form of EvaluationContext;
// prefer New(...).Evaluate for new code.
func NewEvaluation(class SystemClass, schemeKeys, workloads []string, opts ...Option) *Evaluation {
	ev, err := EvaluationContext(context.Background(), class, schemeKeys, workloads, opts...)
	if err != nil {
		panic(err) // Background is never canceled
	}
	return ev
}

// EvaluationContext runs the (scheme × workload) matrix with cancellation;
// nil slices mean "all". The cells are independent simulations, so they fan
// out over a bounded worker pool (WithWorkers; default NumCPU) — each
// cell's randomness derives only from its own Config, so a completed matrix
// is bit-identical at any worker count. Canceling ctx interrupts the
// in-flight cells at the engine's checkpoint interval and returns ctx's
// error; the partial matrix is discarded.
func EvaluationContext(ctx context.Context, class SystemClass, schemeKeys, workloads []string, opts ...Option) (*Evaluation, error) {
	if schemeKeys == nil {
		schemeKeys = []string{"chipkill36", "chipkill18", "lotecc9", "multiecc", "lotecc5", "lotecc5+parity", "raim", "raim+parity"}
	}
	if workloads == nil {
		workloads = workload.Names()
	}
	type cell struct{ scheme, wl string }
	cells := make([]cell, 0, len(schemeKeys)*len(workloads))
	for _, sk := range schemeKeys {
		for _, wl := range workloads {
			cells = append(cells, cell{sk, wl})
		}
	}
	cfgFor := func(c cell) Config {
		cfg := DefaultConfig(c.scheme, class, c.wl)
		for _, o := range opts {
			o(&cfg)
		}
		return cfg
	}
	ev := &Evaluation{Class: class, Results: map[string]map[string]Result{}}
	if len(cells) == 0 {
		return ev, nil
	}
	grid := cfgFor(cells[0]) // the grid-level knobs are cell-invariant
	prog := parallel.NewProgress(grid.ProgressW, "sim "+class.String(), len(cells))
	results, err := parallel.Map(ctx, len(cells), grid.Workers, func(ctx context.Context, i int) (Result, error) {
		r, err := RunContext(ctx, cfgFor(cells[i]))
		if err != nil {
			return Result{}, err
		}
		prog.Step()
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if ev.Results[c.scheme] == nil {
			ev.Results[c.scheme] = map[string]Result{}
		}
		ev.Results[c.scheme][c.wl] = results[i]
	}
	return ev, nil
}

// Workloads returns the evaluated workload names in stable order.
func (ev *Evaluation) Workloads() []string {
	var any map[string]Result
	for _, m := range ev.Results {
		any = m
		break
	}
	out := make([]string, 0, len(any))
	for wl := range any {
		out = append(out, wl)
	}
	sort.Strings(out)
	return out
}

// bin2Set returns the higher-bandwidth half of the evaluated workloads,
// binned — as the paper bins them — by measured bandwidth on the
// commercial chipkill system. Falls back to the static spec flags when the
// matrix does not include chipkill36.
func (ev *Evaluation) bin2Set() map[string]bool {
	out := map[string]bool{}
	ck, ok := ev.Results["chipkill36"]
	if !ok {
		for _, n := range workload.Bin2Names() {
			out[n] = true
		}
		return out
	}
	wls := ev.Workloads()
	sort.Slice(wls, func(i, j int) bool {
		return ck[wls[i]].BandwidthGBs > ck[wls[j]].BandwidthGBs
	})
	for i, wl := range wls {
		if i < len(wls)/2 {
			out[wl] = true
		}
	}
	return out
}

// Metric extracts one scalar from a Result.
type Metric func(Result) float64

// The metrics behind the figures.
var (
	MetricEPI           = func(r Result) float64 { return r.EPI }
	MetricDynamicEPI    = func(r Result) float64 { return r.DynamicEPI }
	MetricBackgroundEPI = func(r Result) float64 { return r.BackgroundEPI }
	MetricIPC           = func(r Result) float64 { return r.IPC }
	MetricAccesses      = func(r Result) float64 { return r.AccessesPerInstr }
)

// ComparisonRow is one workload's comparison of a subject scheme against
// each baseline.
type ComparisonRow struct {
	Workload string
	// Value[baseline] is either a reduction percentage (energy figures) or
	// a normalized ratio subject/baseline (performance, accesses).
	Value map[string]float64
}

// Comparison is a whole figure: per-workload rows plus Bin1/Bin2 means.
type Comparison struct {
	Subject   string
	Baselines []string
	Rows      []ComparisonRow
	Bin1Mean  map[string]float64
	Bin2Mean  map[string]float64
	Mean      map[string]float64
}

// compare builds a Comparison. When reduction is true, values are
// 100·(baseline−subject)/baseline; otherwise subject/baseline ratios.
func (ev *Evaluation) compare(subject string, baselines []string, m Metric, reduction bool) Comparison {
	cmp := Comparison{
		Subject:   subject,
		Baselines: baselines,
		Bin1Mean:  map[string]float64{},
		Bin2Mean:  map[string]float64{},
		Mean:      map[string]float64{},
	}
	bin2 := ev.bin2Set()
	acc := map[string]map[bool][]float64{}
	for _, b := range baselines {
		acc[b] = map[bool][]float64{}
	}
	for _, wl := range ev.Workloads() {
		row := ComparisonRow{Workload: wl, Value: map[string]float64{}}
		subj := m(ev.Results[subject][wl])
		for _, b := range baselines {
			base := m(ev.Results[b][wl])
			var v float64
			if reduction {
				v = stats.ReductionPct(base, subj)
			} else if base != 0 {
				v = subj / base
			}
			row.Value[b] = v
			acc[b][bin2[wl]] = append(acc[b][bin2[wl]], v)
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	for _, b := range baselines {
		cmp.Bin1Mean[b] = stats.Mean(acc[b][false])
		cmp.Bin2Mean[b] = stats.Mean(acc[b][true])
		cmp.Mean[b] = stats.Mean(append(append([]float64{}, acc[b][false]...), acc[b][true]...))
	}
	return cmp
}

// Fig10EPI (quad) / Fig11EPI (dual): memory EPI reduction of LOT-ECC5+ECC
// Parity over the chipkill baselines.
func (ev *Evaluation) Fig10EPI() Comparison {
	return ev.compare("lotecc5+parity", ParityBaselines, MetricEPI, true)
}

// FigRAIMEPI: RAIM+ECC Parity vs RAIM (part of Figs. 10–11).
func (ev *Evaluation) FigRAIMEPI() Comparison {
	return ev.compare("raim+parity", RAIMBaselines, MetricEPI, true)
}

// Fig12Dynamic: dynamic EPI reduction (quad).
func (ev *Evaluation) Fig12Dynamic() Comparison {
	return ev.compare("lotecc5+parity", ParityBaselines, MetricDynamicEPI, true)
}

// Fig12DynamicRAIM: dynamic EPI reduction of RAIM+Parity vs RAIM.
func (ev *Evaluation) Fig12DynamicRAIM() Comparison {
	return ev.compare("raim+parity", RAIMBaselines, MetricDynamicEPI, true)
}

// Fig13Background: background EPI reduction (quad).
func (ev *Evaluation) Fig13Background() Comparison {
	return ev.compare("lotecc5+parity", ParityBaselines, MetricBackgroundEPI, true)
}

// Fig14Perf / Fig15Perf: performance (IPC) normalized to the baselines.
func (ev *Evaluation) Fig14Perf() Comparison {
	return ev.compare("lotecc5+parity", ParityBaselines, MetricIPC, false)
}

// Fig14PerfRAIM: RAIM+Parity performance normalized to RAIM.
func (ev *Evaluation) Fig14PerfRAIM() Comparison {
	return ev.compare("raim+parity", RAIMBaselines, MetricIPC, false)
}

// Fig16Accesses / Fig17Accesses: 64B-normalized memory accesses per
// instruction, normalized to the baselines (lower is better).
func (ev *Evaluation) Fig16Accesses() Comparison {
	return ev.compare("lotecc5+parity", ParityBaselines, MetricAccesses, false)
}

// Fig9Row is one bar of the bandwidth characterization.
type Fig9Row struct {
	Workload    string
	Utilization float64
	GBs         float64
	Bin2        bool
}

// Fig9Bandwidth characterizes the workloads on the dual-channel commercial
// chipkill system, as the paper does. It is the uninterruptible form of
// Fig9BandwidthContext.
func Fig9Bandwidth(opts ...Option) []Fig9Row {
	rows, err := Fig9BandwidthContext(context.Background(), opts...)
	if err != nil {
		panic(err) // Background is never canceled
	}
	return rows
}

// Fig9BandwidthContext characterizes the workloads with cancellation. The
// sixteen per-workload simulations fan out over the worker pool
// (WithWorkers), results in spec order; canceling ctx interrupts the
// in-flight runs at the engine's checkpoint interval.
func Fig9BandwidthContext(ctx context.Context, opts ...Option) ([]Fig9Row, error) {
	specs := workload.Specs()
	cfgFor := func(name string) Config {
		cfg := DefaultConfig("chipkill36", DualEq, name)
		for _, o := range opts {
			o(&cfg)
		}
		return cfg
	}
	if len(specs) == 0 {
		return nil, nil
	}
	grid := cfgFor(specs[0].Name)
	prog := parallel.NewProgress(grid.ProgressW, "fig9", len(specs))
	return parallel.Map(ctx, len(specs), grid.Workers, func(ctx context.Context, i int) (Fig9Row, error) {
		spec := specs[i]
		r, err := RunContext(ctx, cfgFor(spec.Name))
		if err != nil {
			return Fig9Row{}, err
		}
		prog.Step()
		return Fig9Row{Workload: spec.Name, Utilization: r.BandwidthUtil, GBs: r.BandwidthGBs, Bin2: spec.Bin2}, nil
	})
}

// Fig1Row is one scheme's capacity-overhead breakdown.
type Fig1Row struct {
	Scheme     string
	Detection  float64
	Correction float64
}

// Fig1CapacityBreakdown regenerates the detection/correction split for the
// four schemes the paper plots.
func Fig1CapacityBreakdown() []Fig1Row {
	rows := []Fig1Row{}
	for _, key := range []string{"chipkill36", "raim", "lotecc9", "lotecc5"} {
		s := ecc.ByName(key)
		o := s.Overheads()
		rows = append(rows, Fig1Row{Scheme: s.Name(), Detection: o.Detection, Correction: o.Correction})
	}
	return rows
}

// Table3Row is one capacity-overhead row of Table III.
type Table3Row struct {
	Config   string
	Overhead float64
	EOL      float64 // zero when not applicable
}

// Table3Capacity regenerates Table III. It is the uninterruptible form of
// Table3CapacityContext.
func Table3Capacity(mcTrials int, seed int64, workers int) []Table3Row {
	rows, err := Table3CapacityContext(context.Background(), mcTrials, seed, workers)
	if err != nil {
		panic(err) // Background is never canceled
	}
	return rows
}

// Table3CapacityContext regenerates Table III with cancellation. The EOL
// columns use the Fig. 8 Monte Carlo marked fraction for the paper's
// 4-rank/9-chip topology; trials fan out over at most workers goroutines
// (≤0 = NumCPU) with worker-count-invariant results.
func Table3CapacityContext(ctx context.Context, mcTrials int, seed int64, workers int) ([]Table3Row, error) {
	var eolErr error
	frac := func(channels int) float64 {
		if eolErr != nil {
			return 0
		}
		res, err := faultmodel.SimulateEOLContext(ctx, faultmodel.PaperTopology(channels), faultmodel.DefaultRates(),
			7*faultmodel.HoursPerYear, mcTrials, seed, workers)
		if err != nil {
			eolErr = err
			return 0
		}
		return res.MeanFraction
	}
	lot5 := ecc.R(ecc.NewLOTECC5())
	raimR := ecc.R(ecc.NewRAIMParity())
	rows := []Table3Row{
		{Config: "36-device commercial chipkill correct", Overhead: ecc.NewChipkill36().Overheads().Total()},
		{Config: "18-device commercial chipkill correct", Overhead: ecc.NewChipkill18().Overheads().Total()},
		{Config: "LOT-ECC9", Overhead: ecc.NewLOTECC9().Overheads().Total()},
		{Config: "Multi-ECC", Overhead: ecc.NewMultiECC().Overheads().Total()},
		{Config: "LOT-ECC5", Overhead: ecc.NewLOTECC5().Overheads().Total()},
		{Config: "8 chan LOT-ECC5 + ECC Parity", Overhead: core.StaticOverhead(lot5, 8),
			EOL: core.EOLOverhead(lot5, 8, frac(8))},
		{Config: "4 chan LOT-ECC5 + ECC Parity", Overhead: core.StaticOverhead(lot5, 4),
			EOL: core.EOLOverhead(lot5, 4, frac(4))},
		{Config: "RAIM", Overhead: ecc.NewRAIM().Overheads().Total()},
		{Config: "10 chan RAIM + ECC Parity", Overhead: core.StaticOverhead(raimR, 10),
			EOL: core.EOLOverhead(raimR, 10, frac(10))},
		{Config: "5 chan RAIM + ECC Parity", Overhead: core.StaticOverhead(raimR, 5),
			EOL: core.EOLOverhead(raimR, 5, frac(5))},
	}
	if eolErr != nil {
		return nil, eolErr
	}
	return rows, nil
}

// Fig2Row is one point of the mean-time-between-channel-faults curve.
type Fig2Row struct {
	FITPerChip float64
	MeanDays   float64
}

// Fig2ChannelFaultGaps regenerates Fig. 2 analytically for the paper's
// eight-channel topology.
func Fig2ChannelFaultGaps() []Fig2Row {
	topo := faultmodel.PaperTopology(8)
	rows := []Fig2Row{}
	for _, fit := range []float64{10, 20, 30, 44, 60, 80, 100} {
		hours := faultmodel.MeanTimeBetweenChannelFaults(fit, topo)
		rows = append(rows, Fig2Row{FITPerChip: fit, MeanDays: hours / 24})
	}
	return rows
}

// Fig8Row is one bar of the EOL correction-bit fraction study.
type Fig8Row struct {
	Channels int
	Mean     float64
	P999     float64
}

// Fig8EOLFractions regenerates Fig. 8 across channel counts. It is the
// uninterruptible form of Fig8EOLFractionsContext.
func Fig8EOLFractions(trials int, seed int64, workers int) []Fig8Row {
	rows, err := Fig8EOLFractionsContext(context.Background(), trials, seed, workers)
	if err != nil {
		panic(err) // Background is never canceled
	}
	return rows
}

// Fig8EOLFractionsContext regenerates Fig. 8 with cancellation; each
// channel count's Monte Carlo trials fan out over at most workers
// goroutines (≤0 = NumCPU) with worker-count-invariant results.
func Fig8EOLFractionsContext(ctx context.Context, trials int, seed int64, workers int) ([]Fig8Row, error) {
	rows := []Fig8Row{}
	for _, n := range []int{2, 4, 8, 16} {
		res, err := faultmodel.SimulateEOLContext(ctx, faultmodel.PaperTopology(n), faultmodel.DefaultRates(),
			7*faultmodel.HoursPerYear, trials, seed, workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{Channels: n, Mean: res.MeanFraction, P999: res.P999Fraction})
	}
	return rows, nil
}

// Fig18Row is one curve point of the scrub-window study.
type Fig18Row struct {
	WindowHours float64
	FITPerChip  float64
	Probability float64
}

// Fig18ScrubWindows regenerates Fig. 18: probability of faults in more
// than one channel within any single detection window over seven years.
func Fig18ScrubWindows() []Fig18Row {
	topo := faultmodel.PaperTopology(8)
	rows := []Fig18Row{}
	for _, fit := range []float64{25, 44, 100} {
		for _, w := range []float64{1, 2, 4, 8, 24, 72, 168} {
			rows = append(rows, Fig18Row{
				WindowHours: w,
				FITPerChip:  fit,
				Probability: faultmodel.ProbMultiChannelInWindow(fit, topo, w, 7*faultmodel.HoursPerYear),
			})
		}
	}
	return rows
}
