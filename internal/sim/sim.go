package sim

import (
	"context"
	"fmt"
	"io"

	"eccparity/internal/cache"
	"eccparity/internal/core"
	"eccparity/internal/cpu"
	"eccparity/internal/mem"
	"eccparity/internal/workload"
)

// Config drives one simulation run.
type Config struct {
	Scheme   SchemeConfig
	Class    SystemClass
	Workload workload.Spec
	Cores    int
	// WarmupAccesses is the number of LLC-only accesses per core used to
	// reach cache steady state before timing begins (the paper warms the
	// cache for a billion instructions; here the cache is warmed directly).
	WarmupAccesses int
	// MeasureCycles is the timed simulation window (the paper uses 10M
	// cycles; the default here is smaller but statistics converge).
	MeasureCycles float64
	LLCBytes      int
	LLCWays       int
	Seed          int64
	// MarkedBankFraction pre-marks a fraction of bank pairs as faulty,
	// exercising the steady-state Step B/D flows of Fig. 6.
	MarkedBankFraction float64
	// DisableECCCaching turns off the Fig. 7 LLC optimizations: every
	// parity/ECC-line update goes straight to memory as a read-modify-
	// write. Used by the ablation benchmarks.
	DisableECCCaching bool
	// ScrubLineInterval, when nonzero, issues one scrubber read every
	// that many cycles (round-robin over memory), modelling the §III-C
	// periodic scan's bandwidth cost.
	ScrubLineInterval float64
	// PowerDownThreshold, when nonzero, overrides the rank idle-to-sleep
	// threshold (cycles). Used by the sleep-policy ablation.
	PowerDownThreshold float64
	// SpeedBinFactor, when nonzero and ≠1, scales the DRAM frequency per
	// §V-D's faster-speed-bin discussion (1.16 ≈ the paper's example).
	SpeedBinFactor float64
	// Sources, when non-nil, drives each core from the given access
	// stream (e.g. replayed traces) instead of live generators; its
	// length must equal Cores.
	Sources []workload.Source
	// OpenPage switches the controller to the open-page row-buffer policy
	// with a row-buffer-friendly address map (the row-policy ablation; the
	// paper evaluates close-page).
	OpenPage bool
	// Workers bounds the goroutines used by the grid runners
	// (NewEvaluation, Fig9Bandwidth) that fan independent Run calls out
	// over a worker pool; ≤0 means runtime.NumCPU(). A single Run is
	// always sequential, and because every cell's randomness derives only
	// from its own Config, grid results are bit-identical at any setting.
	Workers int
	// ProgressW, when non-nil, receives a done/total ticker line from the
	// grid runners, one step per completed simulation cell (the CLIs pass
	// os.Stderr so stdout stays byte-identical at any worker count).
	ProgressW io.Writer

	// optErr records the first Option that failed to apply (e.g. WithCell
	// with an unknown scheme key); New surfaces it as the validation error.
	optErr error
}

// baseConfig is the standard evaluation budget every entry point starts
// from: the paper's eight cores and 8MB/16-way LLC with the full-fidelity
// cycle/warmup window at seed 1, cell unselected.
func baseConfig() Config {
	return Config{
		Cores:          8,
		WarmupAccesses: 60000,
		MeasureCycles:  400000,
		LLCBytes:       8 << 20,
		LLCWays:        16,
		Seed:           1,
	}
}

// DefaultConfig returns the standard evaluation configuration for one
// scheme/class/workload cell.
func DefaultConfig(schemeKey string, class SystemClass, workloadName string) Config {
	spec, ok := workload.ByName(workloadName)
	if !ok {
		panic(fmt.Sprintf("sim: unknown workload %q", workloadName))
	}
	cfg := baseConfig()
	cfg.Scheme = SchemeByKey(schemeKey)
	cfg.Class = class
	cfg.Workload = spec
	return cfg
}

// Result is the outcome of one run.
type Result struct {
	SchemeKey    string
	Class        SystemClass
	Workload     string
	Instructions uint64
	Cycles       float64
	IPC          float64

	Mem   mem.Stats
	Cache cache.Stats

	// Derived metrics matching the paper's figures.
	EPI           float64 // memory energy per instruction, pJ (Figs. 10–11)
	DynamicEPI    float64 // Fig. 12
	BackgroundEPI float64 // Fig. 13
	// AccessesPerInstr counts each 64B read or written as one access
	// (Figs. 16–17).
	AccessesPerInstr float64
	// BandwidthUtil is the fraction of peak channel bandwidth used (Fig. 9).
	BandwidthUtil float64
	BandwidthGBs  float64
}

// engine holds one run's live state.
type engine struct {
	cfg      Config
	ctrl     *mem.Controller
	mapper   *mem.AddressMapper
	llc      *cache.Cache
	cores    []*cpu.Core
	gens     []workload.Source
	channels int
	r        float64
	line     int
	marked   [][]bool // [channel][rank*banks+bank]
	warm     bool
	// lastMiss tracks each core's previous demand-miss address for the
	// next-line stream prefetcher.
	lastMiss []uint64
	// inflight maps prefetched line addresses to their fill-completion
	// time: a demand hit before the fill lands pays the residue ("late
	// hit"), which keeps streams latency-sensitive.
	inflight *addrTable
	// vq is the reusable eviction-cascade queue for handleVictim.
	vq []cache.Evicted
	// times and heap are the measure loop's core-selection scratch, kept
	// on the engine so an arena reuses them across runs.
	times []float64
	heap  coreHeap
}

// Run executes one simulation deterministically. It is the uninterruptible
// form of RunContext; prefer New(...).Run for new code.
func Run(cfg Config) Result {
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		panic(err) // Background is never canceled
	}
	return res
}

// ctxCheckEvery is the engine's cancellation checkpoint interval, in
// simulation-loop iterations (must be a power of two). One iteration is one
// memory access plus its cascade — well under a microsecond of host time —
// so a cancel lands within single-digit milliseconds of wall clock, never
// at run end. The poll itself is one branch plus an atomic-ish ctx.Err()
// every 1024 iterations, far below the noise floor of the hot path.
const ctxCheckEvery = 1024

// RunContext executes one simulation deterministically, polling ctx at a
// bounded checkpoint interval (ctxCheckEvery loop iterations) during both
// warmup and the measured window. A run that completes is byte-identical
// to Run — the checkpoints only observe, never reorder — and a canceled
// run returns ctx's error with a zero Result.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	a := arenaPool.Get().(*Arena)
	defer arenaPool.Put(a)
	return a.RunContext(ctx, cfg)
}

func (e *engine) warmup(ctx context.Context) error {
	e.warm = true
	for i := 0; i < e.cfg.WarmupAccesses; i++ {
		// Each outer iteration issues one access per core, so this polls at
		// least every ctxCheckEvery accesses.
		if i&(ctxCheckEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		for c := range e.cores {
			e.handleAccess(c, e.gens[c].Next())
		}
	}
	e.warm = false
	return nil
}

// releaseStride batches the controller Release calls: the arrival floor
// must advance at least this many cycles before the engine pays for
// another retirement sweep of the bus rings.
const releaseStride = 2048.0

func (e *engine) measure(ctx context.Context) error {
	budget := e.cfg.MeasureCycles
	scrubbing := e.cfg.ScrubLineInterval > 0
	nextScrub := e.cfg.ScrubLineInterval
	var scrubAddr uint64

	// The per-iteration core selection runs off a min-heap keyed by
	// (local clock, core id); maxTime tracks the fastest core
	// incrementally so the scrubber's "due" test needs no scan either.
	if cap(e.times) < len(e.cores) {
		e.times = make([]float64, len(e.cores))
	}
	times := e.times[:len(e.cores)]
	maxTime := 0.0
	for i, c := range e.cores {
		times[i] = c.Time()
		if times[i] > maxTime {
			maxTime = times[i]
		}
	}
	e.heap.reset(times)
	h := &e.heap
	lastRelease := 0.0

	for iter := 0; ; iter++ {
		// Cancellation checkpoint: bounded to ctxCheckEvery iterations so a
		// cancel interrupts mid-run, not at budget exhaustion.
		if iter&(ctxCheckEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		// Scrubber reads proceed at their own fixed rate.
		if scrubbing {
			for nextScrub < budget && maxTime >= nextScrub {
				loc := e.mapper.Map(scrubAddr)
				e.ctrl.AccessRow(nextScrub, loc.Channel, loc.Rank, loc.Bank, loc.Row, false, mem.ClassScrub)
				scrubAddr += uint64(e.line)
				nextScrub += e.cfg.ScrubLineInterval
			}
		}
		// Advance the core with the earliest local clock still inside the
		// window (keeps controller arrivals near time order).
		sel, t := h.min()
		if t >= budget {
			break
		}
		// Every future controller arrival happens at or after the earliest
		// core's clock (core clocks advance monotonically and the root is
		// the global minimum) — or at the next scrub tick, whichever is
		// sooner. Let the controller retire bus bookkeeping below that.
		floor := t
		if scrubbing && nextScrub < floor {
			floor = nextScrub
		}
		if floor >= lastRelease+releaseStride {
			e.ctrl.Release(floor)
			lastRelease = floor
		}
		acc := e.gens[sel].Next()
		c := e.cores[sel]
		c.AdvanceCompute(acc.InstrGap)
		e.handleAccess(sel, acc)
		nt := c.Time()
		if nt > maxTime {
			maxTime = nt
		}
		h.fixMin(nt)
	}
	e.ctrl.Finish(budget)
	return nil
}

// handleAccess performs one LLC access with the full eviction and
// ECC-maintenance cascade.
func (e *engine) handleAccess(ci int, acc workload.Access) {
	c := e.cores[ci]
	hit, victim, evicted := e.llc.Access(acc.Addr, cache.Data, acc.Write)
	if evicted {
		e.handleVictim(c, victim)
	}
	e.prefetch(ci, acc.Addr)
	if hit {
		if e.warm {
			return
		}
		// A hit on a still-in-flight prefetch is a "late hit": the core
		// waits for the fill like a short miss.
		line := acc.Addr / uint64(e.line) * uint64(e.line)
		if ready, ok := e.inflight.take(line); ok {
			if !acc.Write && ready > c.Time() {
				at := c.BeginMiss()
				if ready < at {
					ready = at
				}
				c.CompleteMiss(ready)
				return
			}
		}
		c.Hit()
		return
	}
	if e.warm {
		return
	}
	// Demand fetch. Loads occupy a miss slot; stores are absorbed by the
	// LSQ/write buffers and fetch without stalling the core.
	t := c.Time()
	if !acc.Write {
		t = c.BeginMiss()
	}
	loc := e.mapper.Map(acc.Addr)
	done := e.ctrl.AccessRow(t, loc.Channel, loc.Rank, loc.Bank, loc.Row, false, mem.ClassData)

	// Step A1/B of Fig. 6: reads to banks recorded faulty fetch the ECC
	// line in parallel (cached in the LLC per the VECC-style optimization).
	if e.cfg.Scheme.Traffic == TrafficParity && e.isMarked(loc) {
		eccAddr := core.ECCLineAddr(acc.Addr, e.r, e.line)
		hitE, vE, evE := e.llc.Access(eccAddr, cache.ECC, false)
		if evE {
			e.handleVictim(c, vE)
		}
		if !hitE {
			el := e.mapper.Map(eccAddr)
			if doneE := e.ctrl.AccessRow(t, el.Channel, el.Rank, el.Bank, el.Row, false, mem.ClassECC); doneE > done {
				done = doneE
			}
		}
	}
	if !acc.Write {
		c.CompleteMiss(done)
	}
}

// prefetch implements a per-core next-line stream prefetcher: a sequential
// access (64B stride) fetches the following LLC line ahead of the demand
// stream. Prefetches fill the LLC and occupy memory bandwidth but never
// stall the core. This is what lets streaming workloads (lbm, libquantum,
// streamcluster) reach the high bandwidth utilizations of Fig. 9 despite
// the bounded per-core MLP.
func (e *engine) prefetch(ci int, addr uint64) {
	trained := addr == e.lastMiss[ci]+workload.LineBytes
	e.lastMiss[ci] = addr
	if !trained {
		return
	}
	la := uint64(e.line)
	pf := (addr/la + 1) * la
	// Allocate is the probe-then-fill pair in one set scan: a line already
	// present is left untouched.
	present, pfV, pfEv := e.llc.Allocate(pf, cache.Data)
	if present {
		return
	}
	if pfEv {
		e.handleVictim(e.cores[ci], pfV)
	}
	if !e.warm {
		pl := e.mapper.Map(pf)
		done := e.ctrl.AccessRow(e.cores[ci].Time(), pl.Channel, pl.Rank, pl.Bank, pl.Row, false, mem.ClassData)
		e.inflight.put(pf, done)
		if e.inflight.len() > 1<<15 {
			e.pruneInflight()
		}
	}
}

// pruneInflight drops fills that have long completed relative to the
// slowest core, bounding the tracking map.
func (e *engine) pruneInflight() {
	oldest := e.cores[0].Time()
	for _, c := range e.cores[1:] {
		if t := c.Time(); t < oldest {
			oldest = t
		}
	}
	e.inflight.pruneBelow(oldest)
}

// handleVictim processes an eviction (and any cascade it causes) at the
// core's current time. Writebacks never stall the core; they contend for
// banks and buses like all traffic.
func (e *engine) handleVictim(c *cpu.Core, v cache.Evicted) {
	// FIFO walk over the engine's reusable queue; maintainECC appends any
	// cascade victims to the tail.
	queue := append(e.vq[:0], v)
	for qi := 0; qi < len(queue); qi++ {
		ev := queue[qi]
		if !ev.Dirty {
			continue
		}
		t := c.Time()
		switch ev.Kind {
		case cache.Data:
			if !e.warm {
				loc := e.mapper.Map(ev.Addr)
				e.ctrl.AccessRow(t, loc.Channel, loc.Rank, loc.Bank, loc.Row, true, mem.ClassData)
			}
			queue = e.maintainECC(c, ev.Addr, queue)
		case cache.ECC:
			if !e.warm {
				loc := e.mapper.Map(ev.Addr)
				e.ctrl.AccessRow(t, loc.Channel, loc.Rank, loc.Bank, loc.Row, true, mem.ClassECC)
			}
		case cache.XOR:
			// Parity-line read-modify-write (§IV-C: "the memory controller
			// issues both a memory read request and then a memory write
			// request"). The parity line physically lives in the reserved
			// rows of a rotating parity channel (Fig. 4's distribution),
			// so the parity traffic never lands on the dirty data's bank.
			if !e.warm {
				mc := e.ctrl.Config()
				ch, rk, bk, row := core.ParityLinePlacement(ev.Addr, e.channels,
					mc.RanksPerChannel, mc.BanksPerRank, 1<<16)
				e.ctrl.AccessRow(t, ch, rk, bk, row, false, mem.ClassECC)
				e.ctrl.AccessRow(t, ch, rk, bk, row, true, mem.ClassECC)
			}
		}
	}
	e.vq = queue[:0]
}

// maintainECC applies the scheme's ECC-update flow for one dirty data
// writeback and returns the eviction queue with any new victim appended.
func (e *engine) maintainECC(c *cpu.Core, addr uint64, queue []cache.Evicted) []cache.Evicted {
	switch e.cfg.Scheme.Traffic {
	case TrafficInline:
		return queue
	case TrafficECCLine:
		eccAddr := core.GECLineAddr(addr, e.cfg.Scheme.LinesPerECCLine, e.line)
		if e.cfg.DisableECCCaching {
			if !e.warm {
				el := e.mapper.Map(eccAddr)
				e.ctrl.AccessRow(c.Time(), el.Channel, el.Rank, el.Bank, el.Row, false, mem.ClassECC)
				e.ctrl.AccessRow(c.Time(), el.Channel, el.Rank, el.Bank, el.Row, true, mem.ClassECC)
			}
			return queue
		}
		hit, v, ev := e.llc.Access(eccAddr, cache.ECC, true)
		if ev {
			queue = append(queue, v)
		}
		if !hit && !e.warm {
			// The ECC line holds other lines' bits: fetch before update.
			loc := e.mapper.Map(eccAddr)
			e.ctrl.AccessRow(c.Time(), loc.Channel, loc.Rank, loc.Bank, loc.Row, false, mem.ClassECC)
		}
		return queue
	case TrafficParity:
		loc := e.mapper.Map(addr)
		if e.cfg.DisableECCCaching {
			// Naive Eq. 1 path: read the old data line, read the parity
			// line, write it back (§III-C's three extra accesses).
			if !e.warm {
				e.ctrl.AccessRow(c.Time(), loc.Channel, loc.Rank, loc.Bank, loc.Row, false, mem.ClassECC)
				xl := e.mapper.Map(core.XORCachelineAddr(addr, e.channels))
				e.ctrl.AccessRow(c.Time(), xl.Channel, xl.Rank, xl.Bank, xl.Row, false, mem.ClassECC)
				e.ctrl.AccessRow(c.Time(), xl.Channel, xl.Rank, xl.Bank, xl.Row, true, mem.ClassECC)
			}
			return queue
		}
		if e.isMarked(loc) {
			// Step D: faulty bank — update the stored correction bits.
			eccAddr := core.ECCLineAddr(addr, e.r, e.line)
			hit, v, ev := e.llc.Access(eccAddr, cache.ECC, true)
			if ev {
				queue = append(queue, v)
			}
			if !hit && !e.warm {
				el := e.mapper.Map(eccAddr)
				e.ctrl.AccessRow(c.Time(), el.Channel, el.Rank, el.Bank, el.Row, false, mem.ClassECC)
			}
			return queue
		}
		// Step E via the XOR-cacheline optimization: accumulate the parity
		// update in the LLC. A miss allocates an empty accumulator — no
		// memory read (this is what kills the read-old-value access of the
		// naive Eq. 1 implementation).
		xorAddr := core.XORCachelineAddr(addr, e.channels)
		_, v, ev := e.llc.Access(xorAddr, cache.XOR, true)
		if ev {
			queue = append(queue, v)
		}
		return queue
	}
	return queue
}

func (e *engine) isMarked(loc mem.Location) bool {
	return e.marked[loc.Channel][loc.Rank*mem.DefaultBanksPerRank+loc.Bank]
}

func (e *engine) collect() Result {
	var instr uint64
	for _, c := range e.cores {
		instr += c.Instructions()
	}
	st := *e.ctrl.Stats()
	cycles := e.cfg.MeasureCycles
	res := Result{
		SchemeKey:    e.cfg.Scheme.Key,
		Class:        e.cfg.Class,
		Workload:     e.cfg.Workload.Name,
		Instructions: instr,
		Cycles:       cycles,
		Mem:          st,
		Cache:        *e.llc.Stats(),
	}
	if instr > 0 {
		fi := float64(instr)
		res.IPC = fi / cycles
		res.EPI = st.TotalEnergy() / fi
		res.DynamicEPI = st.DynamicEnergy() / fi
		res.BackgroundEPI = st.BackgroundEnergy() / fi
		accesses := float64(st.TotalReads()+st.TotalWrites()) * float64(e.line) / 64
		res.AccessesPerInstr = accesses / fi
	}
	// Bandwidth: bytes moved over the wall-clock window vs peak
	// (64B per tBurst per channel).
	bytes := float64(st.TotalReads()+st.TotalWrites()) * float64(e.line)
	ns := cycles * e.ctrl.Config().Timing.TCKNs
	res.BandwidthGBs = bytes / ns // bytes per ns == GB/s
	// Peak: one line per burst slot per channel.
	peak := float64(e.channels) * float64(e.line) / (float64(e.ctrl.Config().Timing.TBurst) * e.ctrl.Config().Timing.TCKNs)
	res.BandwidthUtil = res.BandwidthGBs / peak
	return res
}
