package sim

import (
	"eccparity/internal/core"
	"eccparity/internal/dram"
	"eccparity/internal/ecc"
)

// This file implements the §VI-A analysis: maximum memory capacity vs
// energy for channels mixing ranks of wide DRAMs (energy-efficient, low
// capacity per rank: the LOT-ECC5 rank) and ranks of narrow DRAMs (high
// capacity per rank: an 18×x4 rank). Hot pages placed in the wide ranks
// capture most of the energy benefit; the narrow ranks provide capacity.
// Both rank types must carry the same high-strength ECC (a faulty wide
// DRAM can corrupt several narrow DRAMs sharing its I/O lanes), which is
// exactly the high-capacity-overhead ECC the Parity overlay makes cheap.

// MixedRankConfig describes one mixed channel.
type MixedRankConfig struct {
	WideRanks   int // 4×x16 + 1×x8 ranks (LOT-ECC5 shape)
	NarrowRanks int // 18×x4 ranks
	// HotFraction is the fraction of accesses served by the wide ranks
	// (hot-page placement quality).
	HotFraction float64
	// Channels sharing ECC parities, for the capacity-overhead column.
	Channels int
}

// MixedRankResult is the outcome of the analysis.
type MixedRankResult struct {
	// Per-access dynamic energy, pJ.
	WideAccess   float64
	NarrowAccess float64
	Blended      float64
	// BlendedVsAllNarrow is the dynamic energy ratio against an all-narrow
	// channel (the capacity-maximal configuration).
	BlendedVsAllNarrow float64
	// RelativeCapacity is the channel's data capacity relative to an
	// all-narrow channel with the same number of rank slots.
	RelativeCapacity float64
	// Capacity overheads of the required high-strength ECC, with and
	// without the Parity overlay (Table III arithmetic, R = 0.25).
	OverheadWithParity    float64
	OverheadWithoutParity float64
}

// rankAccessEnergy sums activate+read energy across a rank's devices.
func rankAccessEnergy(chips []dram.Chip, t dram.Timing) float64 {
	var e float64
	for _, c := range chips {
		e += c.ActivateEnergy(t) + c.ReadBurstEnergy(t)
	}
	return e
}

// MixedRankAnalysis evaluates one configuration.
func MixedRankAnalysis(cfg MixedRankConfig) MixedRankResult {
	t := dram.DDR3Timing1GHz()
	wide := []dram.Chip{
		dram.Chip2GbDDR3(dram.X16), dram.Chip2GbDDR3(dram.X16),
		dram.Chip2GbDDR3(dram.X16), dram.Chip2GbDDR3(dram.X16),
		dram.Chip2GbDDR3(dram.X8),
	}
	narrow := make([]dram.Chip, 18)
	for i := range narrow {
		narrow[i] = dram.Chip2GbDDR3(dram.X4)
	}
	eWide := rankAccessEnergy(wide, t)
	eNarrow := rankAccessEnergy(narrow, t)

	h := cfg.HotFraction
	if cfg.WideRanks == 0 {
		h = 0
	}
	if cfg.NarrowRanks == 0 {
		h = 1
	}
	blended := h*eWide + (1-h)*eNarrow

	// Data capacity per rank: wide = 4×2Gb = 1GB; narrow = 16×2Gb = 4GB.
	slots := cfg.WideRanks + cfg.NarrowRanks
	capMixed := float64(cfg.WideRanks)*1 + float64(cfg.NarrowRanks)*4
	capAllNarrow := float64(slots) * 4

	r := ecc.R(ecc.NewLOTECC5())
	return MixedRankResult{
		WideAccess:            eWide,
		NarrowAccess:          eNarrow,
		Blended:               blended,
		BlendedVsAllNarrow:    blended / eNarrow,
		RelativeCapacity:      capMixed / capAllNarrow,
		OverheadWithParity:    core.StaticOverhead(r, cfg.Channels),
		OverheadWithoutParity: ecc.NewLOTECC5().Overheads().Total(),
	}
}

// MixedRankSweep evaluates the §VI-A trade-off across hot-fraction values
// for a half-wide/half-narrow channel in an 8-channel system.
func MixedRankSweep() []MixedRankResult {
	out := []MixedRankResult{}
	for _, h := range []float64{0, 0.5, 0.8, 0.9, 0.95, 1.0} {
		out = append(out, MixedRankAnalysis(MixedRankConfig{
			WideRanks: 2, NarrowRanks: 2, HotFraction: h, Channels: 8,
		}))
	}
	return out
}
